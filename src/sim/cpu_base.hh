/**
 * @file
 * Architecture-neutral simulated CPU core: a cycle clock, an event queue,
 * and run control (fiber entry, idle waiting, cross-CPU kicks).
 */

#ifndef KVMARM_SIM_CPU_BASE_HH
#define KVMARM_SIM_CPU_BASE_HH

#include <functional>
#include <memory>
#include <string>

#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace kvmarm {

class MachineBase;

/**
 * Base class for ArmCpu and X86Cpu. Owns the per-CPU clock and event queue
 * and cooperates with MachineBase's min-clock scheduler.
 *
 * Every CPU is Snapshottable: the base class serializes the clock, idle
 * accounting, event queue, and stats; architectures override
 * saveState/restoreState (calling the base first) to add their register
 * state. CPUs self-register on the machine at construction, so derived
 * machines get snapshot coverage of the sim-level CPU state for free.
 */
class CpuBase : public Snapshottable
{
  public:
    CpuBase(CpuId id, MachineBase &machine);
    virtual ~CpuBase();

    CpuBase(const CpuBase &) = delete;
    CpuBase &operator=(const CpuBase &) = delete;

    CpuId id() const { return id_; }
    MachineBase &machine() { return machine_; }

    /** Current cycle clock of this CPU. */
    Cycles now() const { return now_; }

    /**
     * Advance the clock by @p c cycles, servicing any events that come due
     * and yielding to the machine scheduler if another CPU has fallen
     * behind. This is the single place simulated time advances while a CPU
     * is executing.
     */
    void addCycles(Cycles c);

    /** Force the clock forward to @p t (idle fast-forward; never goes
     *  backwards). */
    void advanceTo(Cycles t);

    EventQueue &events() { return events_; }

    /** Per-CPU statistics. */
    StatGroup &stats() { return stats_; }

    /** Cycles this CPU spent idle (blocked with the clock fast-forwarded);
     *  feeds the utilization-based energy model. */
    Cycles idleCycles() const { return idleCycles_; }

    /**
     * Block until @p pred becomes true. The machine scheduler fast-forwards
     * this CPU's clock to its next event while blocked. Used for WFI/HLT
     * and for host-thread blocking.
     */
    void waitUntil(const std::function<bool()> &pred);

    /**
     * Wake a CPU that may be blocked in waitUntil by scheduling a no-op
     * event on it at max(target.now, when). Models the delivery latency of
     * whatever signal (IPI, device interrupt) does the waking.
     */
    void kickAt(Cycles when);

    /** True if an enabled interrupt is pending for the current context.
     *  Architectures implement this against their interrupt controller. */
    virtual bool interruptPending() const = 0;

    /**
     * Deliver any pending interrupts for the current execution context.
     * Called between operations and after time advances. Architectures
     * route to guest vectors, host vectors, or hypervisor traps.
     */
    virtual void serviceInterrupts() = 0;

    /// @name Scheduler interface (MachineBase only)
    /// @{
    void setEntry(std::function<void()> fn);
    bool hasEntry() const { return entry_ != nullptr; }
    bool fiberFinished() const;
    bool waiting() const { return waiting_; }
    void resumeFiber();
    void setYieldThreshold(Cycles t) { yieldThreshold_ = t; }
    /** Pull the yield point earlier (a cross-CPU wake appeared). */
    void
    lowerYieldThreshold(Cycles t)
    {
        if (t < yieldThreshold_)
            yieldThreshold_ = t;
    }
    /** Clock the scheduler should use to order this CPU. */
    Cycles effectiveClock() const;
    /// @}

    /// @name Snapshottable
    /// @{
    std::string snapshotKey() const override;
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /** Restored events must all have been claimed by their owners. */
    void snapshotVerify() override;
    /// @}

  protected:
    /** Run events due at the current clock, then deliver interrupts. */
    void drain();

    CpuId id_;
    MachineBase &machine_;
    Cycles now_ = 0;
    EventQueue events_;
    StatGroup stats_;

  private:
    std::function<void()> entry_;
    std::unique_ptr<Fiber> fiber_;
    bool waiting_ = false;
    Cycles yieldThreshold_ = kNoDeadline;
    Cycles idleCycles_ = 0;
};

} // namespace kvmarm

#endif // KVMARM_SIM_CPU_BASE_HH
