/**
 * @file
 * Fleet executor: runs many machine simulations concurrently on a pool of
 * host threads.
 *
 * Each job is one whole VM/machine run — the machine keeps its existing
 * single-threaded fiber scheduler and runs on exactly one worker thread at
 * a time, so its simulated cycle counts, stats, and event interleavings
 * are bit-identical no matter how many host threads the fleet uses. The
 * executor only decides *which* host thread runs *which* machine, never
 * how a machine executes internally.
 *
 * Scheduling is a per-worker deque with job stealing: jobs are dealt
 * round-robin at submission, a worker pops its own deque from the front,
 * and a worker that runs dry steals from the back of another worker's
 * deque. Heterogeneous fleets (a world-switch storm VM next to a
 * compute-bound VM) therefore keep every host thread busy until the global
 * queue is empty instead of idling behind a static partition.
 *
 * Communicating fleets (DESIGN.md §4.10) use *resumable* jobs: a StepFn
 * advances its machine until it must wait for a peer (e.g. a RingPacer
 * window blocked on the peer's horizon) and returns Blocked. The fleet
 * parks the job without occupying a worker; notify() — typically wired to
 * a RingChannel wake hook — re-queues it. A notify that races the step
 * (arriving while the job runs) is latched and converts the park into an
 * immediate re-queue, so wakeups are never lost. At one worker thread this
 * degrades to serial round-robin between the communicating jobs, which is
 * exactly the reference schedule the determinism gates compare against.
 * If every worker goes idle while unfinished jobs sit parked, nothing can
 * ever wake them (wakes originate from running jobs): the fleet fails
 * those jobs with a rendezvous-deadlock error instead of hanging.
 */

#ifndef KVMARM_SIM_FLEET_HH
#define KVMARM_SIM_FLEET_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/thread_annotations.hh"

namespace kvmarm {

/** A pool of host threads executing machine jobs with work stealing. */
class Fleet
{
  public:
    /** A job body: typically builds a machine, sets CPU entries, and calls
     *  machine.run(). Runs entirely on one worker thread. */
    using JobFn = std::function<void()>;

    /** What one step of a resumable job did. */
    enum class StepOutcome
    {
        Done,    //!< job complete; never stepped again
        Blocked, //!< waiting on a peer; park until notify()
    };

    /** A resumable job body: advances until done or blocked. Steps of one
     *  job never overlap, but successive steps may run on different
     *  workers. */
    using StepFn = std::function<StepOutcome()>;

    /** Outcome of one job. */
    struct JobResult
    {
        std::string name;
        bool ok = false;
        std::string error;      //!< exception text when !ok
        double wallSeconds = 0; //!< host wall-clock total across steps
        unsigned worker = 0;    //!< worker thread that ran the last step
        bool stolen = false;    //!< some step ran on a non-home worker
        std::uint64_t steps = 0; //!< times the body was entered
    };

    /** Pool-level counters for one run() call. */
    struct Stats
    {
        std::uint64_t jobsRun = 0;
        std::uint64_t jobsStolen = 0;
        std::uint64_t jobsParked = 0; //!< Blocked returns (park events)
    };

    /** @param threads Worker count; 0 means one per host hardware thread. */
    explicit Fleet(unsigned threads);

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    unsigned threads() const { return threads_; }

    /**
     * Queue a job for the next run(). Not thread-safe: submission happens
     * on the owning thread before run(); calling add() while run() is in
     * progress (e.g. from inside a job body) is a hard error — the deal
     * happened before the workers started, so a late job could be silently
     * dropped. Returns the job's index, which is also its slot in run()'s
     * result vector.
     */
    std::size_t add(std::string name, JobFn fn);

    /** Queue a resumable job (same rules as add()). */
    std::size_t addResumable(std::string name, StepFn fn);

    /**
     * Wake a parked job (thread-safe; callable from job bodies — the
     * usual caller is a RingChannel wake hook running on a peer's
     * worker). If the job is mid-step, the wake is latched so the
     * subsequent Blocked return re-queues instead of parking. No-op for
     * queued/finished jobs or outside run().
     */
    void notify(std::size_t index);

    /**
     * Execute every queued job to completion and return per-job results in
     * submission order. Exceptions escaping a job are captured in its
     * JobResult rather than tearing down the fleet. The queue is consumed;
     * add() + run() may be repeated.
     */
    std::vector<JobResult> run();

    /** Counters from the most recent run(). Quiesced-only: valid once
     *  run() has returned, when no worker thread is live — the analysis
     *  is waived here for the same reason. */
    const Stats &
    stats() const KVMARM_NO_THREAD_SAFETY_ANALYSIS
    {
        return stats_;
    }

  private:
    struct Job
    {
        std::string name;
        StepFn fn;
        std::size_t index; //!< submission order == result slot
        unsigned home;     //!< worker the job was dealt to
    };

    /** Lifecycle of one job during run(). */
    enum class JobState : std::uint8_t
    {
        Queued,   //!< in some worker's deque
        Running,  //!< a worker is inside the body
        Parked,   //!< Blocked; held in parked_ awaiting notify()
        Woken,    //!< Running with a latched notify()
        Finished, //!< done or failed
    };

    /** One worker's deque; the mutex covers only deque operations (job
     *  bodies run outside any lock). Lock order: schedMutex_ before any
     *  Worker::mutex, never the reverse. */
    struct Worker
    {
        Mutex mutex;
        std::deque<Job> jobs KVMARM_GUARDED_BY(mutex);
    };

    bool popOwn(unsigned w, Job &out);
    bool stealFrom(unsigned thief, Job &out);
    void enqueue(Job job) KVMARM_REQUIRES(schedMutex_);
    void workerMain(unsigned w, std::vector<JobResult> &results);

    unsigned threads_;
    /** True while run()'s worker pool is live; add() hard-errors then.
     *  Atomic so a misuse from a job body (worker thread) is still
     *  diagnosed race-free rather than corrupting pending_. */
    std::atomic<bool> running_{false};
    std::vector<Job> pending_;
    std::vector<std::unique_ptr<Worker>> workers_;

    /** Scheduling state shared by workers and notify(). */
    Mutex schedMutex_;
    std::condition_variable_any cv_;
    std::vector<JobState> state_ KVMARM_GUARDED_BY(schedMutex_);
    std::vector<Job> parked_ KVMARM_GUARDED_BY(schedMutex_);
    std::size_t unfinished_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    std::size_t queuedCount_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    unsigned runningCount_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    unsigned idleWorkers_ KVMARM_GUARDED_BY(schedMutex_) = 0;

    Mutex statsMutex_;
    Stats stats_ KVMARM_GUARDED_BY(statsMutex_);
};

} // namespace kvmarm

#endif // KVMARM_SIM_FLEET_HH
