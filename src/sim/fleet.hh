/**
 * @file
 * Fleet executor: runs many machine simulations concurrently on a pool of
 * host threads.
 *
 * Each job is one whole VM/machine run — the machine keeps its existing
 * single-threaded fiber scheduler and runs on exactly one worker thread at
 * a time, so its simulated cycle counts, stats, and event interleavings
 * are bit-identical no matter how many host threads the fleet uses. The
 * executor only decides *which* host thread runs *which* machine, never
 * how a machine executes internally.
 *
 * The fleet is a long-lived worker pool with a thread-safe submission
 * channel. submit() is legal before start() (jobs queue until workers
 * exist), while the pool runs, and — crucially — from inside a running job
 * body: a running VM may take a COW snapshot of itself (DESIGN.md §4.9)
 * and submit clone jobs mid-run, "VMs spawning VMs". drain() blocks until
 * every submitted job (including transitively spawned ones) has finished
 * and returns that epoch's results; shutdown() drains and retires the
 * workers, after which submission is a diagnosed hard error.
 *
 * Determinism does not come from arrival order — concurrent spawns race,
 * so arrival order differs run to run. Instead every submission is stamped
 * with a (submitter-id, submission-seq) key: the submitter is the
 * deterministic 64-bit id of the job that called submit() (0 for the
 * external owner thread), and the seq is that submitter's private
 * submission counter. Both are pure functions of simulated execution, so
 * the key — and everything dealt or ordered by it — is identical at any
 * worker count. Jobs are dealt to a home worker derived from the key, and
 * drain()/run() order results by key path (a parent's spawns sort directly
 * after the parent, in spawn order), never by completion or arrival order.
 * Per-VM sim_cycles and stat dumps therefore gate bit-identical across
 * serial and 1/2/4/8 workers (bench/fleet_pool), the same way fleet_tput
 * and fleet_clone already gate.
 *
 * Scheduling is a per-worker deque with job stealing: jobs are dealt by
 * key, a worker pops its own deque from the front, and a worker that runs
 * dry steals from the back of another worker's deque. Heterogeneous fleets
 * (a world-switch storm VM next to a compute-bound VM) therefore keep
 * every host thread busy until the global queue is empty instead of idling
 * behind a static partition.
 *
 * Communicating fleets (DESIGN.md §4.10) use *resumable* jobs: a StepFn
 * advances its machine until it must wait for a peer (e.g. a RingPacer
 * window blocked on the peer's horizon) and returns Blocked. The fleet
 * parks the job without occupying a worker; notify() — typically wired to
 * a RingChannel wake hook — re-queues it. A notify that races the step
 * (arriving while the job runs) is latched and converts the park into an
 * immediate re-queue, so wakeups are never lost. At one worker thread this
 * degrades to serial round-robin between the communicating jobs, which is
 * exactly the reference schedule the determinism gates compare against.
 * While a drain is in progress, a job parked with every worker idle and
 * nothing queued or running can never be woken (drain means the owner has
 * stopped submitting, and wakes otherwise only come from running jobs):
 * those jobs are failed with a rendezvous-deadlock error instead of
 * hanging the drain. Between drains, parked jobs legitimately wait for
 * future submissions or external notify() calls and are left alone.
 *
 * The legacy batch API (add()/addResumable() + run()) is a thin veneer
 * over the pool: run() starts the workers, drains, and retires them.
 * add() keeps its historical contract — calling it while workers are live
 * is a diagnosed hard error pointing at submit(), preserving the loud
 * failure for code written against the enqueue-everything-then-run model.
 */

#ifndef KVMARM_SIM_FLEET_HH
#define KVMARM_SIM_FLEET_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/thread_annotations.hh"

namespace kvmarm {

/** A pool of host threads executing machine jobs with work stealing. */
class Fleet
{
  public:
    /** A job body: typically builds a machine, sets CPU entries, and calls
     *  machine.run(). Runs entirely on one worker thread. */
    using JobFn = std::function<void()>;

    /** What one step of a resumable job did. */
    enum class StepOutcome
    {
        Done,    //!< job complete; never stepped again
        Blocked, //!< waiting on a peer; park until notify()
    };

    /** A resumable job body: advances until done or blocked. Steps of one
     *  job never overlap, but successive steps may run on different
     *  workers. */
    using StepFn = std::function<StepOutcome()>;

    /** Outcome of one job. */
    struct JobResult
    {
        std::string name;
        bool ok = false;
        std::string error;      //!< exception text when !ok
        double wallSeconds = 0; //!< host wall-clock total across steps
        unsigned worker = 0;    //!< worker thread that ran the last step
        bool stolen = false;    //!< some step ran on a non-home worker
        std::uint64_t steps = 0; //!< times the body was entered
        /** Deterministic submission key: the id of the submitting job
         *  (kExternalSubmitter for the owner thread) and that submitter's
         *  private submission sequence number. Identical at any worker
         *  count. */
        std::uint64_t submitter = 0;
        std::uint64_t seq = 0;
    };

    /** Pool-level counters, reset by start() (and so by each run()). */
    struct Stats
    {
        std::uint64_t jobsRun = 0;
        std::uint64_t jobsStolen = 0;
        std::uint64_t jobsParked = 0;  //!< Blocked returns (park events)
        std::uint64_t jobsSpawned = 0; //!< submissions from job bodies
        std::uint64_t epochs = 0;      //!< completed drain() epochs
    };

    /** Submitter id reported for jobs submitted from outside any job body
     *  (the pool owner's thread, or any non-worker thread). */
    static constexpr std::uint64_t kExternalSubmitter = 0;

    /** @param threads Worker count; 0 means one per host hardware thread. */
    explicit Fleet(unsigned threads);

    /** Retires the workers if the pool is still live (any unfinished
     *  parked jobs are failed by the implicit drain; results are
     *  discarded). Prefer an explicit shutdown(). */
    ~Fleet();

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    unsigned threads() const { return threads_; }

    /// @name Legacy batch API
    /// @{

    /**
     * Queue a job for the next run(). Calling add() while workers are live
     * (e.g. from inside a job body) is a hard error: code written against
     * the batch model expects every job dealt before the workers start,
     * so a late add() is a bug — the submission channel (submit()) is the
     * supported way to feed a running fleet. Returns the job's index,
     * which is also its slot in run()'s result vector (spawned jobs, if
     * any, sort after their submitter).
     */
    std::size_t add(std::string name, JobFn fn);

    /** Queue a resumable job (same rules as add()). */
    std::size_t addResumable(std::string name, StepFn fn);

    /**
     * Execute every queued job to completion and return per-job results in
     * deterministic key order (for a batch with no mid-run spawns that is
     * exactly submission order). Equivalent to start() + drain() +
     * retiring the workers, so job bodies may submit() spawns, which are
     * drained by the same call. Exceptions escaping a job are captured in
     * its JobResult rather than tearing down the fleet. The queue is
     * consumed; add() + run() may be repeated.
     */
    std::vector<JobResult> run();
    /// @}

    /// @name Long-lived pool API
    /// @{

    /**
     * Spin up the worker pool. Jobs already submitted are picked up
     * immediately; subsequent submissions feed the running workers. Hard
     * error if the pool is already live or was shut down.
     */
    void start();

    /** True from start() until the workers retire (run() end, shutdown()). */
    bool poolLive() const
    {
        return workersLive_.load(std::memory_order_acquire);
    }

    /**
     * Submit a job through the channel (thread-safe). Legal before
     * start() — the job queues until workers exist — and at any point
     * while the pool runs, including from inside a running job body (the
     * spawn case: the submission is stamped with the running job's id as
     * its submitter). Hard error after shutdown(). Returns the job's
     * handle for notify().
     */
    std::size_t submit(std::string name, JobFn fn);

    /** Submit a resumable job (same rules as submit()). */
    std::size_t submitResumable(std::string name, StepFn fn);

    /**
     * Wait until every submitted job — including jobs spawned while the
     * drain is in flight — has finished, then return the results of all
     * jobs completed since the previous drain (one *epoch*), ordered by
     * deterministic submission key. Jobs parked with no runnable peer
     * left to wake them are failed with a rendezvous-deadlock error (the
     * caller declared the submission channel idle by draining). The pool
     * stays live; submit() + drain() may be repeated. Must be called from
     * a non-worker thread; one drain at a time.
     */
    std::vector<JobResult> drain();

    /**
     * Drain the current epoch, retire the workers, and close the
     * submission channel: any later submit()/start() is a diagnosed hard
     * error. Returns the final epoch's results. Idempotent-hostile by
     * design — shutting down twice is also a hard error.
     */
    std::vector<JobResult> shutdown();

    /** Completed drain() epochs (published at each drain boundary;
     *  readable from any thread). */
    std::uint64_t epoch() const
    {
        return epochsDone_.load(std::memory_order_acquire);
    }
    /// @}

    /**
     * Wake a parked job (thread-safe; callable from job bodies — the
     * usual caller is a RingChannel wake hook running on a peer's
     * worker). If the job is mid-step, the wake is latched so the
     * subsequent Blocked return re-queues instead of parking. No-op for
     * queued/finished jobs or while no workers are live.
     */
    void notify(std::size_t index);

    /** Counters since the last start(). Quiesced-only: valid once run()
     *  or shutdown() has returned (or between drains with no external
     *  submitter racing), when no worker is mutating them — the analysis
     *  is waived here for the same reason. */
    const Stats &
    stats() const KVMARM_NO_THREAD_SAFETY_ANALYSIS
    {
        return stats_;
    }

  private:
    /** A queued/parked job instance. */
    struct Job
    {
        std::string name;
        StepFn fn;
        std::size_t slot;  //!< index into the per-slot bookkeeping arrays
        unsigned home;     //!< worker the job was dealt to
    };

    /** Per-slot metadata that outlives the queued Job instance. The key
     *  path is the submitter chain's seq numbers (external jobs have a
     *  one-element path); lexicographic path order is the deterministic
     *  result order. */
    struct JobMeta
    {
        std::uint64_t id = 0;        //!< deterministic id (key hash chain)
        std::uint64_t submitter = 0; //!< submitter's id (0 = external)
        std::uint64_t seq = 0;       //!< submitter-private sequence
        std::uint64_t childSeq = 0;  //!< next seq this job hands a spawn
        std::vector<std::uint64_t> path; //!< key path for result ordering
        bool returned = false;       //!< already handed out by a drain
    };

    /** Lifecycle of one job. */
    enum class JobState : std::uint8_t
    {
        Queued,   //!< in some worker's deque
        Running,  //!< a worker is inside the body
        Parked,   //!< Blocked; held in parked_ awaiting notify()
        Woken,    //!< Running with a latched notify()
        Finished, //!< done or failed
    };

    /** One worker's deque; the mutex covers only deque operations (job
     *  bodies run outside any lock). Lock order: schedMutex_ before any
     *  Worker::mutex, never the reverse. */
    struct Worker
    {
        Mutex mutex;
        std::deque<Job> jobs KVMARM_GUARDED_BY(mutex);
        /** Host thread identity, for resolving which job is submitting
         *  (written under schedMutex_ in start() before any job body can
         *  run; read under schedMutex_ by submit()). */
        std::thread::id tid;
        /** Slot of the job this worker is currently stepping, or npos. */
        std::size_t currentSlot = kNoSlot;
    };

    static constexpr std::size_t kNoSlot = ~std::size_t{0};

    std::size_t submitLocked(std::string name, StepFn fn)
        KVMARM_REQUIRES(schedMutex_);
    bool popOwn(unsigned w, Job &out);
    bool stealFrom(unsigned thief, Job &out);
    void enqueue(Job job) KVMARM_REQUIRES(schedMutex_);
    void failDeadlockedParked() KVMARM_REQUIRES(schedMutex_);
    std::vector<JobResult> collectEpoch() KVMARM_REQUIRES(schedMutex_);
    void startLocked() KVMARM_REQUIRES(schedMutex_);
    std::vector<JobResult> drainLocked(CondLock &lock)
        KVMARM_REQUIRES(schedMutex_);
    void retireWorkers();
    void workerMain(unsigned w);

    unsigned threads_;
    /** True while the worker pool is live. Atomic so notify()/poolLive()
     *  from job bodies (worker threads) stay race-free. */
    std::atomic<bool> workersLive_{false};
    std::atomic<std::uint64_t> epochsDone_{0};
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> pool_;

    /** Scheduling state shared by workers, submitters and notify().
     *  Deques, not vectors: slots grow while workers hold references to
     *  existing elements, and deque growth never moves them. */
    Mutex schedMutex_;
    /** Workers sleep on cvWork_ (signalled by submissions and wakes);
     *  drain() sleeps on cvDone_ (signalled when unfinished_ hits zero).
     *  Separate so a submission's notify_one can never be swallowed by
     *  the draining thread instead of a worker. */
    std::condition_variable_any cvWork_;
    std::condition_variable_any cvDone_;
    std::deque<JobState> state_ KVMARM_GUARDED_BY(schedMutex_);
    std::deque<Job> parked_ KVMARM_GUARDED_BY(schedMutex_);
    std::deque<JobMeta> meta_ KVMARM_GUARDED_BY(schedMutex_);
    std::deque<JobResult> results_ KVMARM_GUARDED_BY(schedMutex_);
    std::uint64_t externalSeq_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    std::size_t unfinished_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    std::size_t queuedCount_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    unsigned runningCount_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    unsigned idleWorkers_ KVMARM_GUARDED_BY(schedMutex_) = 0;
    bool draining_ KVMARM_GUARDED_BY(schedMutex_) = false;
    bool stopping_ KVMARM_GUARDED_BY(schedMutex_) = false;
    bool shutdown_ KVMARM_GUARDED_BY(schedMutex_) = false;

    Mutex statsMutex_;
    Stats stats_ KVMARM_GUARDED_BY(statsMutex_);
};

} // namespace kvmarm

#endif // KVMARM_SIM_FLEET_HH
