/**
 * @file
 * Fleet executor: runs many independent machine simulations concurrently
 * on a pool of host threads.
 *
 * Each job is one whole VM/machine run — the machine keeps its existing
 * single-threaded fiber scheduler and runs to completion on exactly one
 * worker thread, so its simulated cycle counts, stats, and event
 * interleavings are bit-identical no matter how many host threads the
 * fleet uses. The executor only decides *which* host thread runs *which*
 * machine, never how a machine executes internally.
 *
 * Scheduling is a per-worker deque with job stealing: jobs are dealt
 * round-robin at submission, a worker pops its own deque from the front,
 * and a worker that runs dry steals from the back of the busiest point of
 * another worker's deque. Heterogeneous fleets (a world-switch storm VM
 * next to a compute-bound VM) therefore keep every host thread busy until
 * the global queue is empty instead of idling behind a static partition.
 */

#ifndef KVMARM_SIM_FLEET_HH
#define KVMARM_SIM_FLEET_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/thread_annotations.hh"

namespace kvmarm {

/** A pool of host threads executing machine jobs with work stealing. */
class Fleet
{
  public:
    /** A job body: typically builds a machine, sets CPU entries, and calls
     *  machine.run(). Runs entirely on one worker thread. */
    using JobFn = std::function<void()>;

    /** Outcome of one job. */
    struct JobResult
    {
        std::string name;
        bool ok = false;
        std::string error;      //!< exception text when !ok
        double wallSeconds = 0; //!< host wall-clock duration of the body
        unsigned worker = 0;    //!< worker thread that ran the job
        bool stolen = false;    //!< ran on a worker it was not dealt to
    };

    /** Pool-level counters for one run() call. */
    struct Stats
    {
        std::uint64_t jobsRun = 0;
        std::uint64_t jobsStolen = 0;
    };

    /** @param threads Worker count; 0 means one per host hardware thread. */
    explicit Fleet(unsigned threads);

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    unsigned threads() const { return threads_; }

    /**
     * Queue a job for the next run(). Not thread-safe: submission happens
     * on the owning thread before run(); calling add() while run() is in
     * progress (e.g. from inside a job body) is a hard error — the deal
     * happened before the workers started, so a late job could be silently
     * dropped. Returns the job's index, which is also its slot in run()'s
     * result vector.
     */
    std::size_t add(std::string name, JobFn fn);

    /**
     * Execute every queued job to completion and return per-job results in
     * submission order. Exceptions escaping a job are captured in its
     * JobResult rather than tearing down the fleet. The queue is consumed;
     * add() + run() may be repeated.
     */
    std::vector<JobResult> run();

    /** Counters from the most recent run(). Quiesced-only: valid once
     *  run() has returned, when no worker thread is live — the analysis
     *  is waived here for the same reason. */
    const Stats &
    stats() const KVMARM_NO_THREAD_SAFETY_ANALYSIS
    {
        return stats_;
    }

  private:
    struct Job
    {
        std::string name;
        JobFn fn;
        std::size_t index; //!< submission order == result slot
        unsigned home;     //!< worker the job was dealt to
    };

    /** One worker's deque; the mutex covers only deque operations (job
     *  bodies run outside any lock). */
    struct Worker
    {
        Mutex mutex;
        std::deque<Job> jobs KVMARM_GUARDED_BY(mutex);
    };

    bool popOwn(unsigned w, Job &out);
    bool stealFrom(unsigned thief, Job &out);
    void workerMain(unsigned w, std::vector<JobResult> &results);

    unsigned threads_;
    /** True while run()'s worker pool is live; add() hard-errors then.
     *  Atomic so a misuse from a job body (worker thread) is still
     *  diagnosed race-free rather than corrupting pending_. */
    std::atomic<bool> running_{false};
    std::vector<Job> pending_;
    std::vector<std::unique_ptr<Worker>> workers_;
    Mutex statsMutex_;
    Stats stats_ KVMARM_GUARDED_BY(statsMutex_);
};

} // namespace kvmarm

#endif // KVMARM_SIM_FLEET_HH
