#include "sim/stats.hh"

#include <iomanip>

namespace kvmarm {

void
Scalar::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++count_;
}

void
Scalar::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : scalars_)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &kv : counters_) {
        os << std::left << std::setw(48) << (prefix + kv.first)
           << kv.second.value() << "\n";
    }
    for (const auto &kv : scalars_) {
        os << std::left << std::setw(48) << (prefix + kv.first)
           << "mean=" << kv.second.mean() << " min=" << kv.second.min()
           << " max=" << kv.second.max() << " n=" << kv.second.count()
           << "\n";
    }
}

} // namespace kvmarm
