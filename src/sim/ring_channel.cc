#include "sim/ring_channel.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/machine_base.hh"

namespace kvmarm {

RingChannel::RingChannel(std::string name, Cycles latency)
    : name_(std::move(name)), latency_(latency)
{
    if (latency_ == 0)
        fatal("RingChannel('%s'): zero latency — the delivery latency is "
              "the conservative lookahead, and zero lookahead leaves no "
              "window in which the two machines can run concurrently",
              name_.c_str());
    for (unsigned s = 0; s < 2; ++s) {
        ends_[s].ch_ = this;
        ends_[s].side_ = s;
    }
}

RingChannel::Endpoint &
RingChannel::end(unsigned side)
{
    if (side > 1)
        fatal("RingChannel('%s'): no side %u", name_.c_str(), side);
    return ends_[side];
}

std::function<void()>
RingChannel::wakeHookOf(unsigned side) const
{
    return sides_[side].wake;
}

std::uint64_t
RingChannel::Endpoint::send(Cycles now, std::vector<std::uint8_t> payload)
{
    return ch_->sendFrom(side_, now, std::move(payload));
}

void
RingChannel::Endpoint::setReceiver(std::function<void(const RingMessage &)> rx)
{
    MutexLock lock(ch_->mutex_);
    ch_->sides_[side_].receiver = std::move(rx);
}

void
RingChannel::Endpoint::setWakeHook(std::function<void()> wake)
{
    MutexLock lock(ch_->mutex_);
    ch_->sides_[side_].wake = std::move(wake);
}

std::uint64_t
RingChannel::sendFrom(unsigned side, Cycles now,
                      std::vector<std::uint8_t> payload)
{
    MutexLock lock(mutex_);
    Side &self = sides_[side];
    const Side &peer = sides_[1 - side];
    if (peer.aborted)
        fatal("RingChannel('%s') side %u: send at cycle %llu but the peer "
              "terminated abnormally: %s",
              name_.c_str(), side, static_cast<unsigned long long>(now),
              peer.abortReason.c_str());
    if (peer.closed)
        fatal("RingChannel('%s') side %u: send at cycle %llu but the peer "
              "endpoint is closed — the message could never be delivered",
              name_.c_str(), side, static_cast<unsigned long long>(now));
    if (now < self.horizon)
        fatal("RingChannel('%s') side %u: send at cycle %llu below the "
              "committed horizon %llu — the window protocol was violated",
              name_.c_str(), side, static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(self.horizon));
    RingMessage msg;
    msg.sendCycle = now;
    msg.deliverCycle = now + latency_;
    msg.seq = self.sendSeq++;
    msg.payload = std::move(payload);
    // Sends from a multi-CPU machine need not arrive in cycle order;
    // keep the outbox sorted by (deliverCycle, seq). Sends are nearly
    // ordered already, so insert from the back.
    auto it = self.outbox.end();
    while (it != self.outbox.begin()) {
        auto prev = std::prev(it);
        if (prev->deliverCycle < msg.deliverCycle ||
            (prev->deliverCycle == msg.deliverCycle && prev->seq < msg.seq))
            break;
        it = prev;
    }
    std::uint64_t seq = msg.seq;
    self.outbox.insert(it, std::move(msg));
    return seq;
}

void
RingChannel::publish(unsigned side, Cycles horizon, bool idleForever)
{
    std::function<void()> wake;
    {
        MutexLock lock(mutex_);
        Side &self = sides_[side];
        if (horizon < self.horizon)
            fatal("RingChannel('%s') side %u: horizon moved backwards "
                  "(%llu -> %llu)",
                  name_.c_str(), side,
                  static_cast<unsigned long long>(self.horizon),
                  static_cast<unsigned long long>(horizon));
        self.horizon = horizon;
        self.idleForever = idleForever;
        wake = wakeHookOf(1 - side);
    }
    if (wake)
        wake();
}

void
RingChannel::pull(unsigned side, Cycles from, Cycles to)
{
    std::vector<RingMessage> batch;
    std::function<void(const RingMessage &)> rx;
    {
        MutexLock lock(mutex_);
        Side &peer = sides_[1 - side];
        while (!peer.outbox.empty() &&
               peer.outbox.front().deliverCycle < to) {
            if (peer.outbox.front().deliverCycle < from)
                fatal("RingChannel('%s') side %u: message seq %llu with "
                      "deliver cycle %llu found below the pull window "
                      "[%llu, %llu) — window protocol violation",
                      name_.c_str(), side,
                      static_cast<unsigned long long>(
                          peer.outbox.front().seq),
                      static_cast<unsigned long long>(
                          peer.outbox.front().deliverCycle),
                      static_cast<unsigned long long>(from),
                      static_cast<unsigned long long>(to));
            batch.push_back(std::move(peer.outbox.front()));
            peer.outbox.pop_front();
        }
        // The pulled messages now live inside this side's machine, where
        // the peer's deadlock probe cannot see them. Clear the published
        // idle flag in the same critical section so the probe never
        // observes "idle with nothing in flight" between this pull and
        // the post-window publish.
        if (!batch.empty())
            sides_[side].idleForever = false;
        rx = sides_[side].receiver;
    }
    if (batch.empty())
        return;
    if (!rx)
        fatal("RingChannel('%s') side %u: %zu message(s) to deliver but no "
              "receiver is installed",
              name_.c_str(), side, batch.size());
    // Deliver outside the lock: the receiver runs machine-side code
    // (scheduling delivery events) that must never nest under the
    // channel mutex.
    for (const RingMessage &msg : batch)
        rx(msg);
}

RingChannel::PeerView
RingChannel::peerView(unsigned side) const
{
    MutexLock lock(mutex_);
    const Side &peer = sides_[1 - side];
    PeerView v;
    v.horizon = peer.horizon;
    v.closed = peer.closed;
    v.aborted = peer.aborted;
    v.idleForever = peer.idleForever;
    v.inboundPending = !peer.outbox.empty();
    v.outboundPending = !sides_[side].outbox.empty();
    v.abortReason = peer.abortReason;
    return v;
}

void
RingChannel::close(unsigned side)
{
    std::function<void()> wake;
    {
        MutexLock lock(mutex_);
        if (sides_[side].closed)
            return;
        sides_[side].closed = true;
        wake = wakeHookOf(1 - side);
    }
    if (wake)
        wake();
}

void
RingChannel::abort(unsigned side, std::string reason)
{
    std::function<void()> wake;
    {
        MutexLock lock(mutex_);
        Side &self = sides_[side];
        if (self.closed || self.aborted)
            return;
        self.aborted = true;
        self.abortReason = std::move(reason);
        wake = wakeHookOf(1 - side);
    }
    if (wake)
        wake();
}

std::uint64_t
RingChannel::messagesSent(unsigned side) const
{
    MutexLock lock(mutex_);
    return sides_[side].sendSeq;
}

RingPacer::RingPacer(MachineBase &machine, std::string name)
    : machine_(machine), name_(std::move(name))
{
}

RingPacer::~RingPacer()
{
    for (std::uint64_t token : blockerTokens_)
        machine_.removeSnapshotBlocker(token);
    // A pacer destroyed before its machine finished (job aborted, test
    // teardown) must not leave peers parked forever. abort() is a no-op
    // on sides that already closed cleanly.
    for (RingChannel::Endpoint *ep : eps_)
        ep->channel().abort(ep->side(), "ring pacer '" + name_ +
                                            "' destroyed before its "
                                            "machine finished");
}

void
RingPacer::attach(RingChannel::Endpoint &ep)
{
    if (window_ != 0)
        fatal("RingPacer('%s'): attach after the first step()",
              name_.c_str());
    eps_.push_back(&ep);
    blockerTokens_.push_back(machine_.addSnapshotBlocker(
        "ring endpoint '" + ep.channel().name() +
        "' is attached — in-flight ring messages live outside the "
        "machine and would be silently dropped"));
}

void
RingPacer::setWakeHook(std::function<void()> wake)
{
    for (RingChannel::Endpoint *ep : eps_)
        ep->setWakeHook(wake);
}

void
RingPacer::closeAll()
{
    for (RingChannel::Endpoint *ep : eps_)
        ep->channel().close(ep->side());
}

void
RingPacer::abortAll(const std::string &reason)
{
    for (RingChannel::Endpoint *ep : eps_)
        ep->channel().abort(ep->side(), reason);
}

RingPacer::Step
RingPacer::step()
{
    if (done_)
        return Step::Done;
    if (eps_.empty())
        fatal("RingPacer('%s'): step() with no attached endpoints",
              name_.c_str());
    if (window_ == 0) {
        window_ = kNoDeadline;
        for (RingChannel::Endpoint *ep : eps_)
            window_ = std::min(window_, ep->channel().latency());
    }

    while (true) {
        if (machine_.finished()) {
            closeAll();
            done_ = true;
            return Step::Done;
        }

        Cycles next = horizon_ + window_;
        Cycles allowed = kNoDeadline;
        for (RingChannel::Endpoint *ep : eps_) {
            RingChannel::PeerView v = ep->channel().peerView(ep->side());
            if (v.aborted) {
                done_ = true;
                abortAll("peer of ring '" + ep->channel().name() +
                         "' terminated abnormally");
                fatal("RingPacer('%s'): ring '%s' peer terminated "
                      "abnormally: %s",
                      name_.c_str(), ep->channel().name().c_str(),
                      v.abortReason.c_str());
            }
            if (!v.closed)
                allowed =
                    std::min(allowed, v.horizon + ep->channel().latency());
        }

        if (allowed < next)
            return Step::Blocked;

        if (machine_.nextActivity() == kNoDeadline) {
            // The machine cannot progress on its own. If no open peer can
            // ever feed it a message, no future window changes anything:
            // this is a rendezvous deadlock, not idleness. A peer counts
            // as a possible input source if it is still running, has
            // undelivered messages for us, or has undelivered messages
            // FROM us still in flight — those will wake it when its
            // horizon reaches their delivery cycle.
            bool inputPossible = false;
            for (RingChannel::Endpoint *ep : eps_) {
                RingChannel::PeerView v = ep->channel().peerView(ep->side());
                // A closed peer sends nothing new, but what it already
                // sent still gets delivered.
                if (v.inboundPending ||
                    (!v.closed && (v.outboundPending || !v.idleForever)))
                    inputPossible = true;
            }
            if (!inputPossible) {
                done_ = true;
                abortAll("rendezvous deadlock detected at machine '" +
                         name_ + "'");
                fatal("RingPacer('%s'): rendezvous deadlock — machine is "
                      "blocked with no pending events at horizon %llu and "
                      "every ring peer is closed or idle with nothing in "
                      "flight",
                      name_.c_str(),
                      static_cast<unsigned long long>(horizon_));
            }
        }

        for (RingChannel::Endpoint *ep : eps_)
            ep->channel().pull(ep->side(), horizon_, next);

        try {
            machine_.run(next);
        } catch (...) {
            done_ = true;
            abortAll("machine '" + name_ + "' terminated abnormally "
                     "inside a ring window");
            throw;
        }

        horizon_ = next;
        ++windowsRun_;
        bool idle =
            !machine_.finished() && machine_.nextActivity() == kNoDeadline;
        for (RingChannel::Endpoint *ep : eps_)
            ep->channel().publish(ep->side(), horizon_, idle);
    }
}

} // namespace kvmarm
