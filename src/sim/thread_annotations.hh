/**
 * @file
 * Clang thread-safety annotations (DESIGN.md §4.8): macros wrapping the
 * `-Wthread-safety` attribute family, plus an annotated mutex and scoped
 * lock. libstdc++'s std::mutex carries no capability attributes, so the
 * analysis only sees locking done through these wrappers; the shared-
 * ownership surfaces (invariant-engine facade registry, logging stream
 * writer, Fleet deques) use them so the clang CI leg
 * (-Werror=thread-safety-analysis) proves every access to guarded state
 * happens under the right lock. Under GCC every macro expands to nothing
 * and Mutex degrades to a plain std::mutex wrapper.
 */

#ifndef KVMARM_SIM_THREAD_ANNOTATIONS_HH
#define KVMARM_SIM_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define KVMARM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KVMARM_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability. */
#define KVMARM_CAPABILITY(x) KVMARM_THREAD_ANNOTATION(capability(x))
/** Marks an RAII type that acquires in its ctor and releases in its dtor. */
#define KVMARM_SCOPED_CAPABILITY KVMARM_THREAD_ANNOTATION(scoped_lockable)
/** Data member readable/writable only while holding @p x. */
#define KVMARM_GUARDED_BY(x) KVMARM_THREAD_ANNOTATION(guarded_by(x))
/** Pointee guarded by @p x (the pointer itself is not). */
#define KVMARM_PT_GUARDED_BY(x) KVMARM_THREAD_ANNOTATION(pt_guarded_by(x))
/** Caller must hold the capability on entry (and still holds it on exit). */
#define KVMARM_REQUIRES(...) \
    KVMARM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/** Function acquires the capability (held on exit, not on entry). */
#define KVMARM_ACQUIRE(...) \
    KVMARM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/** Function releases the capability. */
#define KVMARM_RELEASE(...) \
    KVMARM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/** Caller must NOT hold the capability (deadlock prevention). */
#define KVMARM_EXCLUDES(...) \
    KVMARM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/** Escape hatch for quiesced-only or conditionally-locked code; every use
 *  must carry a comment saying why the access is safe. */
#define KVMARM_NO_THREAD_SAFETY_ANALYSIS \
    KVMARM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace kvmarm {

/** std::mutex with the capability attribute the analysis needs. */
class KVMARM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() KVMARM_ACQUIRE() { m_.lock(); }
    void unlock() KVMARM_RELEASE() { m_.unlock(); }

  private:
    std::mutex m_;
};

/** std::lock_guard over Mutex, visible to the analysis. */
class KVMARM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) KVMARM_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() KVMARM_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/**
 * std::unique_lock over Mutex for condition-variable waits, visible to
 * the analysis. The analysis treats the capability as held for the whole
 * scope; a condition_variable_any wait on native() releases and reacquires
 * it atomically with the sleep, so guarded accesses around (and inside the
 * predicate of) the wait are in fact protected.
 */
class KVMARM_SCOPED_CAPABILITY CondLock
{
  public:
    explicit CondLock(Mutex &m) KVMARM_ACQUIRE(m) : lock_(m) {}
    ~CondLock() KVMARM_RELEASE() {}

    CondLock(const CondLock &) = delete;
    CondLock &operator=(const CondLock &) = delete;

    /** The underlying lock object, for condition_variable_any::wait. */
    std::unique_lock<Mutex> &native() { return lock_; }

  private:
    std::unique_lock<Mutex> lock_;
};

} // namespace kvmarm

#endif // KVMARM_SIM_THREAD_ANNOTATIONS_HH
