#include "sim/fleet.hh"

#include <chrono>
#include <exception>
#include <thread>

#include "sim/logging.hh"

namespace kvmarm {

Fleet::Fleet(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

std::size_t
Fleet::add(std::string name, JobFn fn)
{
    if (running_.load(std::memory_order_relaxed)) {
        fatal("Fleet::add: job '%s' submitted while run() is in progress — "
              "queue all jobs before run(), or use a second Fleet",
              name.c_str());
    }
    if (!fn)
        fatal("Fleet::add: job '%s' has no body", name.c_str());
    std::size_t index = pending_.size();
    pending_.push_back(Job{std::move(name), std::move(fn), index, 0});
    return index;
}

bool
Fleet::popOwn(unsigned w, Job &out)
{
    Worker &worker = *workers_[w];
    MutexLock lock(worker.mutex);
    if (worker.jobs.empty())
        return false;
    out = std::move(worker.jobs.front());
    worker.jobs.pop_front();
    return true;
}

bool
Fleet::stealFrom(unsigned thief, Job &out)
{
    // Scan the other workers starting just past the thief so steal traffic
    // spreads instead of always hammering worker 0. Victims are popped
    // from the back: the front is what the owner takes next, so stealing
    // the tail minimizes contention on the same job slot.
    for (unsigned off = 1; off < threads_; ++off) {
        Worker &victim = *workers_[(thief + off) % threads_];
        MutexLock lock(victim.mutex);
        if (victim.jobs.empty())
            continue;
        out = std::move(victim.jobs.back());
        victim.jobs.pop_back();
        return true;
    }
    return false;
}

void
Fleet::workerMain(unsigned w, std::vector<JobResult> &results)
{
    while (true) {
        Job job;
        bool stolen = false;
        if (!popOwn(w, job)) {
            if (!stealFrom(w, job))
                break; // every deque empty: all jobs claimed
            stolen = true;
        }

        JobResult &res = results[job.index];
        res.name = job.name;
        res.worker = w;
        res.stolen = stolen;

        // domlint: allow(wall-clock) — measurement only, never feeds sim state
        auto t0 = std::chrono::steady_clock::now();
        try {
            job.fn();
            res.ok = true;
        } catch (const std::exception &e) {
            res.error = e.what();
        } catch (...) {
            res.error = "unknown exception";
        }
        // domlint: allow(wall-clock) — measurement only, never feeds sim state
        auto t1 = std::chrono::steady_clock::now();
        res.wallSeconds = std::chrono::duration<double>(t1 - t0).count();

        {
            MutexLock lock(statsMutex_);
            ++stats_.jobsRun;
            stats_.jobsStolen += stolen;
        }
    }
}

std::vector<Fleet::JobResult>
Fleet::run()
{
    std::vector<JobResult> results(pending_.size());
    {
        MutexLock lock(statsMutex_);
        stats_ = Stats{};
    }
    if (pending_.empty())
        return results;

    // Deal jobs round-robin. Every job is queued before any worker starts,
    // so workers terminate as soon as all deques run dry: no job ever
    // appears after a worker decided to exit. No worker is live yet, so
    // the per-deal locks below are uncontended; they exist to keep the
    // deques' guarded_by contract exact for the thread-safety analysis.
    workers_.clear();
    for (unsigned w = 0; w < threads_; ++w)
        workers_.push_back(std::make_unique<Worker>());
    for (Job &job : pending_) {
        job.home = static_cast<unsigned>(job.index % threads_);
        Worker &home = *workers_[job.home];
        MutexLock lock(home.mutex);
        home.jobs.push_back(std::move(job));
    }
    pending_.clear();

    running_.store(true, std::memory_order_relaxed);
    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        pool.emplace_back([this, w, &results] { workerMain(w, results); });
    for (std::thread &t : pool)
        t.join();
    running_.store(false, std::memory_order_relaxed);

    return results;
}

} // namespace kvmarm
