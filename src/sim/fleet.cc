#include "sim/fleet.hh"

#include <chrono>
#include <exception>
#include <thread>

#include "sim/logging.hh"

namespace kvmarm {

Fleet::Fleet(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

std::size_t
Fleet::add(std::string name, JobFn fn)
{
    if (!fn)
        fatal("Fleet::add: job '%s' has no body", name.c_str());
    return addResumable(std::move(name),
                        [f = std::move(fn)]() -> StepOutcome {
                            f();
                            return StepOutcome::Done;
                        });
}

std::size_t
Fleet::addResumable(std::string name, StepFn fn)
{
    if (running_.load(std::memory_order_relaxed)) {
        fatal("Fleet::add: job '%s' submitted while run() is in progress — "
              "queue all jobs before run(), or use a second Fleet",
              name.c_str());
    }
    if (!fn)
        fatal("Fleet::add: job '%s' has no body", name.c_str());
    std::size_t index = pending_.size();
    pending_.push_back(Job{std::move(name), std::move(fn), index, 0});
    return index;
}

bool
Fleet::popOwn(unsigned w, Job &out)
{
    Worker &worker = *workers_[w];
    MutexLock lock(worker.mutex);
    if (worker.jobs.empty())
        return false;
    out = std::move(worker.jobs.front());
    worker.jobs.pop_front();
    return true;
}

bool
Fleet::stealFrom(unsigned thief, Job &out)
{
    // Scan the other workers starting just past the thief so steal traffic
    // spreads instead of always hammering worker 0. Victims are popped
    // from the back: the front is what the owner takes next, so stealing
    // the tail minimizes contention on the same job slot.
    for (unsigned off = 1; off < threads_; ++off) {
        Worker &victim = *workers_[(thief + off) % threads_];
        MutexLock lock(victim.mutex);
        if (victim.jobs.empty())
            continue;
        out = std::move(victim.jobs.back());
        victim.jobs.pop_back();
        return true;
    }
    return false;
}

void
Fleet::enqueue(Job job)
{
    ++queuedCount_;
    Worker &home = *workers_[job.home];
    MutexLock lock(home.mutex);
    home.jobs.push_back(std::move(job));
}

void
Fleet::notify(std::size_t index)
{
    if (!running_.load(std::memory_order_acquire))
        return;
    CondLock lock(schedMutex_);
    if (index >= state_.size())
        return;
    switch (state_[index]) {
      case JobState::Parked:
        state_[index] = JobState::Queued;
        enqueue(std::move(parked_[index]));
        cv_.notify_one();
        break;
      case JobState::Running:
        // Mid-step wake: latch it so a Blocked return re-queues instead
        // of parking. Without the latch this wake would be lost.
        state_[index] = JobState::Woken;
        break;
      case JobState::Queued:
      case JobState::Woken:
      case JobState::Finished:
        break;
    }
}

void
Fleet::workerMain(unsigned w, std::vector<JobResult> &results)
{
    while (true) {
        Job job;
        bool stolen = false;
        bool got = popOwn(w, job);
        if (!got && stealFrom(w, job)) {
            got = true;
            stolen = true;
        }
        if (!got) {
            CondLock lock(schedMutex_);
            if (unfinished_ == 0)
                return;
            ++idleWorkers_;
            if (idleWorkers_ == threads_ && queuedCount_ == 0 &&
                runningCount_ == 0) {
                // Every worker is idle, nothing is queued or running, yet
                // jobs remain: they are all parked, and wakes only come
                // from running jobs. Fail them rather than hang.
                for (std::size_t i = 0; i < state_.size(); ++i) {
                    if (state_[i] != JobState::Parked)
                        continue;
                    results[i].ok = false;
                    results[i].error =
                        "fleet rendezvous deadlock: job parked with no "
                        "runnable peer left to wake it";
                    state_[i] = JobState::Finished;
                    parked_[i] = Job{};
                    --unfinished_;
                }
                --idleWorkers_;
                cv_.notify_all();
                return;
            }
            while (unfinished_ != 0 && queuedCount_ == 0)
                cv_.wait(lock.native());
            --idleWorkers_;
            if (unfinished_ == 0)
                return;
            continue;
        }

        std::size_t idx = job.index;
        {
            CondLock lock(schedMutex_);
            // Parked->Queued and the deal both count the job as queued;
            // it is now running.
            --queuedCount_;
            ++runningCount_;
            state_[idx] = JobState::Running;
        }

        JobResult &res = results[idx];
        res.name = job.name;
        res.worker = w;
        res.stolen |= stolen;
        ++res.steps;

        // domlint: allow(wall-clock) — measurement only, never feeds sim state
        auto t0 = std::chrono::steady_clock::now();
        StepOutcome out = StepOutcome::Done;
        bool failed = false;
        try {
            out = job.fn();
            if (out == StepOutcome::Done)
                res.ok = true;
        } catch (const std::exception &e) {
            res.error = e.what();
            failed = true;
        } catch (...) {
            res.error = "unknown exception";
            failed = true;
        }
        // domlint: allow(wall-clock) — measurement only, never feeds sim state
        auto t1 = std::chrono::steady_clock::now();
        res.wallSeconds += std::chrono::duration<double>(t1 - t0).count();

        bool finished = failed || out == StepOutcome::Done;
        bool parkedNow = false;
        {
            CondLock lock(schedMutex_);
            --runningCount_;
            if (finished) {
                state_[idx] = JobState::Finished;
                --unfinished_;
                if (unfinished_ == 0)
                    cv_.notify_all();
            } else if (state_[idx] == JobState::Woken) {
                // notify() landed while the step ran; go straight back to
                // the queue.
                state_[idx] = JobState::Queued;
                enqueue(std::move(job));
                cv_.notify_one();
            } else {
                state_[idx] = JobState::Parked;
                parked_[idx] = std::move(job);
                parkedNow = true;
            }
        }

        {
            MutexLock lock(statsMutex_);
            stats_.jobsRun += finished;
            stats_.jobsStolen += stolen;
            stats_.jobsParked += parkedNow;
        }
    }
}

std::vector<Fleet::JobResult>
Fleet::run()
{
    std::vector<JobResult> results(pending_.size());
    {
        MutexLock lock(statsMutex_);
        stats_ = Stats{};
    }
    if (pending_.empty())
        return results;

    // Deal jobs round-robin. Every job is queued before any worker starts;
    // parked resumable jobs are re-dealt to their home deque by notify().
    // No worker is live yet, so the per-deal locks below are uncontended;
    // they exist to keep the deques' guarded_by contract exact for the
    // thread-safety analysis.
    workers_.clear();
    for (unsigned w = 0; w < threads_; ++w)
        workers_.push_back(std::make_unique<Worker>());
    {
        CondLock lock(schedMutex_);
        state_.assign(pending_.size(), JobState::Queued);
        parked_.clear();
        parked_.resize(pending_.size());
        unfinished_ = pending_.size();
        queuedCount_ = 0;
        runningCount_ = 0;
        idleWorkers_ = 0;
        for (Job &job : pending_) {
            job.home = static_cast<unsigned>(job.index % threads_);
            enqueue(std::move(job));
        }
    }
    pending_.clear();

    running_.store(true, std::memory_order_release);
    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        pool.emplace_back([this, w, &results] { workerMain(w, results); });
    for (std::thread &t : pool)
        t.join();
    running_.store(false, std::memory_order_release);

    {
        CondLock lock(schedMutex_);
        state_.clear();
        parked_.clear();
    }

    return results;
}

} // namespace kvmarm
