#include "sim/fleet.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "sim/logging.hh"

namespace kvmarm {

namespace {

// Deterministic job ids are an FNV-1a chain over the (submitter-id,
// submission-seq) key: a job's id hashes its submitter's id with its seq,
// so the id of any job — however deep the spawn tree — is a pure function
// of the submission key path and identical at any worker count.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnvChain(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

Fleet::Fleet(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
    // The Worker structs (deques + identity) exist for the Fleet's whole
    // life so submissions can be dealt to their home deque before the
    // worker threads are spawned; start()/retireWorkers() only manage the
    // threads.
    workers_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        workers_.push_back(std::make_unique<Worker>());
}

Fleet::~Fleet()
{
    if (!workersLive_.load(std::memory_order_acquire))
        return;
    {
        CondLock lock(schedMutex_);
        drainLocked(lock); // results discarded; parked jobs are failed
        shutdown_ = true;
    }
    retireWorkers();
}

std::size_t
Fleet::add(std::string name, JobFn fn)
{
    if (!fn)
        fatal("Fleet::add: job '%s' has no body", name.c_str());
    return addResumable(std::move(name),
                        [f = std::move(fn)]() -> StepOutcome {
                            f();
                            return StepOutcome::Done;
                        });
}

std::size_t
Fleet::addResumable(std::string name, StepFn fn)
{
    if (workersLive_.load(std::memory_order_acquire)) {
        fatal("Fleet::add: job '%s' submitted while run() is in progress — "
              "queue all jobs before run(), or submit() through the live "
              "channel",
              name.c_str());
    }
    if (!fn)
        fatal("Fleet::add: job '%s' has no body", name.c_str());
    CondLock lock(schedMutex_);
    return submitLocked(std::move(name), std::move(fn));
}

std::size_t
Fleet::submit(std::string name, JobFn fn)
{
    if (!fn)
        fatal("Fleet::submit: job '%s' has no body", name.c_str());
    return submitResumable(std::move(name),
                           [f = std::move(fn)]() -> StepOutcome {
                               f();
                               return StepOutcome::Done;
                           });
}

std::size_t
Fleet::submitResumable(std::string name, StepFn fn)
{
    if (!fn)
        fatal("Fleet::submit: job '%s' has no body", name.c_str());
    CondLock lock(schedMutex_);
    return submitLocked(std::move(name), std::move(fn));
}

std::size_t
Fleet::submitLocked(std::string name, StepFn fn)
{
    if (shutdown_) {
        fatal("Fleet::submit: job '%s' submitted after shutdown() — the "
              "submission channel is closed; create a new Fleet",
              name.c_str());
    }

    // Resolve the submitter: a submission from a worker thread that is
    // inside a job body is a spawn stamped with that job's id; anything
    // else (the owner thread, before start() or mid-run) is external.
    // Worker tids are recorded under schedMutex_ by each worker before it
    // pops any job, so by the time a job body can call submit() its own
    // worker's tid is visible here.
    std::size_t parentSlot = kNoSlot;
    const auto self = std::this_thread::get_id();
    for (const auto &wp : workers_) {
        if (wp->tid == self && wp->currentSlot != kNoSlot) {
            parentSlot = wp->currentSlot;
            break;
        }
    }

    JobMeta meta;
    unsigned home = 0;
    if (parentSlot != kNoSlot) {
        JobMeta &pm = meta_[parentSlot];
        meta.submitter = pm.id;
        meta.seq = pm.childSeq++;
        meta.id = fnvChain(pm.id, meta.seq);
        meta.path = pm.path;
        meta.path.push_back(meta.seq);
        // Spawn arrival order races across workers; the id does not.
        home = static_cast<unsigned>(meta.id % threads_);
    } else {
        meta.submitter = kExternalSubmitter;
        meta.seq = externalSeq_++;
        meta.id = fnvChain(kFnvOffset, meta.seq);
        meta.path = {meta.seq};
        // Round-robin deal, matching the historical batch behavior.
        home = static_cast<unsigned>(meta.seq % threads_);
    }

    std::size_t slot = state_.size();
    state_.push_back(JobState::Queued);
    parked_.emplace_back();
    JobResult res;
    res.name = name;
    res.submitter = meta.submitter;
    res.seq = meta.seq;
    results_.push_back(std::move(res));
    meta_.push_back(std::move(meta));
    ++unfinished_;
    enqueue(Job{std::move(name), std::move(fn), slot, home});
    cvWork_.notify_one();

    if (parentSlot != kNoSlot) {
        MutexLock stats(statsMutex_);
        ++stats_.jobsSpawned;
    }
    return slot;
}

bool
Fleet::popOwn(unsigned w, Job &out)
{
    Worker &worker = *workers_[w];
    MutexLock lock(worker.mutex);
    if (worker.jobs.empty())
        return false;
    out = std::move(worker.jobs.front());
    worker.jobs.pop_front();
    return true;
}

bool
Fleet::stealFrom(unsigned thief, Job &out)
{
    // Scan the other workers starting just past the thief so steal traffic
    // spreads instead of always hammering worker 0. Victims are popped
    // from the back: the front is what the owner takes next, so stealing
    // the tail minimizes contention on the same job slot.
    for (unsigned off = 1; off < threads_; ++off) {
        Worker &victim = *workers_[(thief + off) % threads_];
        MutexLock lock(victim.mutex);
        if (victim.jobs.empty())
            continue;
        out = std::move(victim.jobs.back());
        victim.jobs.pop_back();
        return true;
    }
    return false;
}

void
Fleet::enqueue(Job job)
{
    ++queuedCount_;
    Worker &home = *workers_[job.home];
    MutexLock lock(home.mutex);
    home.jobs.push_back(std::move(job));
}

void
Fleet::notify(std::size_t index)
{
    if (!workersLive_.load(std::memory_order_acquire))
        return;
    CondLock lock(schedMutex_);
    if (index >= state_.size())
        return;
    switch (state_[index]) {
      case JobState::Parked:
        state_[index] = JobState::Queued;
        enqueue(std::move(parked_[index]));
        cvWork_.notify_one();
        break;
      case JobState::Running:
        // Mid-step wake: latch it so a Blocked return re-queues instead
        // of parking. Without the latch this wake would be lost.
        state_[index] = JobState::Woken;
        break;
      case JobState::Queued:
      case JobState::Woken:
      case JobState::Finished:
        break;
    }
}

void
Fleet::failDeadlockedParked()
{
    // Only meaningful mid-drain: the owner has declared the channel idle,
    // so a parked job with no queued or running peer left has no possible
    // waker (wakes come from running jobs or from an owner that is now
    // blocked in drain()). Between drains a fully parked fleet is simply
    // waiting for future submissions or an external notify() and is left
    // alone.
    if (!draining_ || idleWorkers_ != threads_ || queuedCount_ != 0 ||
        runningCount_ != 0 || unfinished_ == 0) {
        return;
    }
    for (std::size_t i = 0; i < state_.size(); ++i) {
        if (state_[i] != JobState::Parked)
            continue;
        results_[i].ok = false;
        results_[i].error =
            "fleet rendezvous deadlock: job parked with no "
            "runnable peer left to wake it";
        state_[i] = JobState::Finished;
        parked_[i] = Job{};
        --unfinished_;
    }
    cvDone_.notify_all();
}

void
Fleet::workerMain(unsigned w)
{
    {
        CondLock lock(schedMutex_);
        workers_[w]->tid = std::this_thread::get_id();
    }
    while (true) {
        Job job;
        bool stolen = false;
        bool got = popOwn(w, job);
        if (!got && stealFrom(w, job)) {
            got = true;
            stolen = true;
        }
        if (!got) {
            CondLock lock(schedMutex_);
            ++idleWorkers_;
            // If this was the last worker to go idle during a drain, any
            // survivors are unwakeable parked jobs — fail them so the
            // drain completes instead of hanging.
            failDeadlockedParked();
            while (!stopping_ && queuedCount_ == 0)
                cvWork_.wait(lock.native());
            --idleWorkers_;
            if (stopping_ && queuedCount_ == 0)
                return;
            continue;
        }

        std::size_t slot = job.slot;
        JobResult *res = nullptr;
        {
            CondLock lock(schedMutex_);
            // Parked->Queued and the deal both count the job as queued;
            // it is now running.
            --queuedCount_;
            ++runningCount_;
            state_[slot] = JobState::Running;
            workers_[w]->currentSlot = slot;
            res = &results_[slot];
        }

        res->worker = w;
        res->stolen |= stolen;
        ++res->steps;

        // domlint: allow(wall-clock) — measurement only, never feeds sim state
        auto t0 = std::chrono::steady_clock::now();
        StepOutcome out = StepOutcome::Done;
        bool failed = false;
        try {
            out = job.fn();
            if (out == StepOutcome::Done)
                res->ok = true;
        } catch (const std::exception &e) {
            res->error = e.what();
            failed = true;
        } catch (...) {
            res->error = "unknown exception";
            failed = true;
        }
        // domlint: allow(wall-clock) — measurement only, never feeds sim state
        auto t1 = std::chrono::steady_clock::now();
        res->wallSeconds += std::chrono::duration<double>(t1 - t0).count();

        bool finished = failed || out == StepOutcome::Done;
        bool parkedNow = false;
        {
            CondLock lock(schedMutex_);
            --runningCount_;
            workers_[w]->currentSlot = kNoSlot;
            if (finished) {
                state_[slot] = JobState::Finished;
                --unfinished_;
                if (unfinished_ == 0)
                    cvDone_.notify_all();
            } else if (state_[slot] == JobState::Woken) {
                // notify() landed while the step ran; go straight back to
                // the queue.
                state_[slot] = JobState::Queued;
                enqueue(std::move(job));
                cvWork_.notify_one();
            } else {
                state_[slot] = JobState::Parked;
                parked_[slot] = std::move(job);
                parkedNow = true;
            }
        }

        {
            MutexLock lock(statsMutex_);
            stats_.jobsRun += finished;
            stats_.jobsStolen += stolen;
            stats_.jobsParked += parkedNow;
        }
    }
}

void
Fleet::startLocked()
{
    if (shutdown_)
        fatal("Fleet::start: the pool was shut down — create a new Fleet");
    if (workersLive_.load(std::memory_order_acquire))
        fatal("Fleet::start: the worker pool is already live");
    stopping_ = false;
    draining_ = false;
    idleWorkers_ = 0;
    runningCount_ = 0;
    for (auto &wp : workers_) {
        wp->tid = std::thread::id{};
        wp->currentSlot = kNoSlot;
    }
    workersLive_.store(true, std::memory_order_release);
}

void
Fleet::start()
{
    {
        MutexLock lock(statsMutex_);
        stats_ = Stats{};
    }
    {
        CondLock lock(schedMutex_);
        startLocked();
    }
    pool_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        pool_.emplace_back([this, w] { workerMain(w); });
}

std::vector<Fleet::JobResult>
Fleet::collectEpoch()
{
    // Deterministic result order: lexicographic on the submission key
    // path, so external jobs come out in submission order and a parent's
    // spawns sort directly after the parent in spawn order — never in
    // completion or arrival order.
    std::vector<std::pair<const std::vector<std::uint64_t> *, std::size_t>>
        order;
    for (std::size_t i = 0; i < state_.size(); ++i) {
        if (state_[i] == JobState::Finished && !meta_[i].returned)
            order.emplace_back(&meta_[i].path, i);
    }
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) { return *a.first < *b.first; });
    std::vector<JobResult> out;
    out.reserve(order.size());
    for (const auto &entry : order) {
        std::size_t slot = entry.second;
        meta_[slot].returned = true;
        out.push_back(std::move(results_[slot]));
    }
    return out;
}

std::vector<Fleet::JobResult>
Fleet::drainLocked(CondLock &lock)
{
    if (draining_)
        fatal("Fleet::drain: a drain is already in progress");
    const auto self = std::this_thread::get_id();
    for (const auto &wp : workers_) {
        if (wp->tid == self && wp->currentSlot != kNoSlot)
            fatal("Fleet::drain: called from inside a job body — only the "
                  "pool owner may quiesce the fleet");
    }
    draining_ = true;
    failDeadlockedParked(); // every worker may already be asleep
    while (unfinished_ != 0) {
        cvDone_.wait(lock.native());
        failDeadlockedParked();
    }
    draining_ = false;
    auto out = collectEpoch();
    epochsDone_.fetch_add(1, std::memory_order_release);
    {
        MutexLock stats(statsMutex_);
        ++stats_.epochs;
    }
    return out;
}

std::vector<Fleet::JobResult>
Fleet::drain()
{
    CondLock lock(schedMutex_);
    if (!workersLive_.load(std::memory_order_acquire))
        fatal("Fleet::drain: the worker pool is not live — start() it "
              "first");
    return drainLocked(lock);
}

std::vector<Fleet::JobResult>
Fleet::shutdown()
{
    std::vector<JobResult> out;
    {
        CondLock lock(schedMutex_);
        if (shutdown_)
            fatal("Fleet::shutdown: the pool was already shut down");
        if (!workersLive_.load(std::memory_order_acquire))
            fatal("Fleet::shutdown: the worker pool is not live — start() "
                  "it first");
        out = drainLocked(lock);
        shutdown_ = true;
    }
    retireWorkers();
    return out;
}

void
Fleet::retireWorkers()
{
    {
        CondLock lock(schedMutex_);
        stopping_ = true;
        cvWork_.notify_all();
    }
    for (std::thread &t : pool_)
        t.join();
    pool_.clear();
    workersLive_.store(false, std::memory_order_release);
    CondLock lock(schedMutex_);
    stopping_ = false;
    for (auto &wp : workers_) {
        wp->tid = std::thread::id{};
        wp->currentSlot = kNoSlot;
    }
}

std::vector<Fleet::JobResult>
Fleet::run()
{
    start();
    auto results = drain();
    retireWorkers();
    // The batch contract: the queue is consumed, slot numbering and the
    // external sequence restart, so add() + run() may be repeated with
    // result indices starting at zero each time.
    CondLock lock(schedMutex_);
    state_.clear();
    parked_.clear();
    meta_.clear();
    results_.clear();
    externalSeq_ = 0;
    return results;
}

} // namespace kvmarm
