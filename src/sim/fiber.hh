/**
 * @file
 * Cooperative fibers (ucontext-based), one per simulated CPU.
 *
 * Simulated software — guest kernels, the hypervisor, the host kernel — runs
 * as ordinary synchronous C++ on a fiber. The machine scheduler resumes the
 * runnable CPU with the smallest cycle clock, so multicore interactions
 * (IPIs, spinning on shared memory, WFI wakeups) interleave deterministically
 * without threads.
 */

#ifndef KVMARM_SIM_FIBER_HH
#define KVMARM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace kvmarm {

/** A single cooperative fiber with its own stack. */
class Fiber
{
  public:
    /**
     * @param fn Entry function; the fiber is finished when it returns.
     * @param stack_size Stack bytes; simulated software nests deeply
     *        (guest op -> trap -> world switch -> host -> QEMU), so the
     *        default is generous.
     */
    explicit Fiber(std::function<void()> fn,
                   std::size_t stack_size = 1024 * 1024);

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;
    ~Fiber();

    /** Switch from the caller into the fiber. Must not be called from a
     *  fiber (no nesting of resumes). */
    void resume();

    /** Yield from inside the currently running fiber back to its resumer. */
    static void yield();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /** The fiber currently executing, or nullptr if in the scheduler. */
    static Fiber *current();

  private:
    static void trampoline();

    std::function<void()> fn_;
    std::vector<unsigned char> stack_;
    ucontext_t ctx_;
    ucontext_t returnCtx_;
    bool started_ = false;
    bool finished_ = false;

    /** ThreadSanitizer fiber contexts (always present so the layout does
     *  not depend on the sanitizer config; only touched under TSan).
     *  TSan cannot follow raw swapcontext stack switches, so fiber.cc
     *  tells it about every switch via the __tsan_*_fiber interface. */
    void *tsanFiber_ = nullptr;
    void *tsanReturn_ = nullptr;
};

} // namespace kvmarm

#endif // KVMARM_SIM_FIBER_HH
