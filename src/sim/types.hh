/**
 * @file
 * Fundamental simulation types shared by every subsystem.
 */

#ifndef KVMARM_SIM_TYPES_HH
#define KVMARM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace kvmarm {

/** Simulated CPU cycles. All costs and clocks are expressed in cycles. */
using Cycles = std::uint64_t;

/** A physical, intermediate-physical, or virtual address. */
using Addr = std::uint64_t;

/** Interrupt identifier (GIC INTID or x86 vector). */
using IrqId = std::uint32_t;

/** Identifier of a physical CPU within a machine. */
using CpuId = std::uint32_t;

/** Sentinel for "no cycle deadline armed". */
inline constexpr Cycles kNoDeadline = std::numeric_limits<Cycles>::max();

inline constexpr Addr kKiB = 1024;
inline constexpr Addr kMiB = 1024 * kKiB;
inline constexpr Addr kGiB = 1024 * kMiB;

/** Simulated page size used by every translation regime. */
inline constexpr Addr kPageSize = 4 * kKiB;
inline constexpr Addr kPageShift = 12;

/** Round an address down to its containing page boundary. */
constexpr Addr pageAlignDown(Addr a) { return a & ~(kPageSize - 1); }

/** Round an address up to the next page boundary. */
constexpr Addr pageAlignUp(Addr a) { return (a + kPageSize - 1) & ~(kPageSize - 1); }

/** True if the address is page aligned. */
constexpr bool isPageAligned(Addr a) { return (a & (kPageSize - 1)) == 0; }

/** Extract bit @p n of @p v. */
constexpr bool bit(std::uint64_t v, unsigned n) { return (v >> n) & 1; }

/** Extract bits [hi:lo] of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((std::uint64_t{1} << (hi - lo + 1)) - 1);
}

} // namespace kvmarm

#endif // KVMARM_SIM_TYPES_HH
