#include "sim/snapshot.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace kvmarm {

void
SnapshotWriter::raw(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    bytes_.insert(bytes_.end(), b, b + n);
}

void
SnapshotWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
}

void
SnapshotWriter::attach(std::shared_ptr<const void> a)
{
    if (hasAttachment_)
        fatal("SnapshotWriter: a record may carry at most one attachment");
    attachment_ = std::move(a);
    hasAttachment_ = true;
}

SnapshotRecord
SnapshotWriter::finish(std::string key)
{
    return SnapshotRecord{std::move(key), std::move(bytes_),
                          std::move(attachment_)};
}

void
SnapshotReader::raw(void *p, std::size_t n)
{
    if (pos_ + n > rec_.bytes.size())
        fatal("SnapshotReader: record '%s' underflow (want %zu bytes, have "
              "%zu)",
              rec_.key.c_str(), n, rec_.bytes.size() - pos_);
    std::memcpy(p, rec_.bytes.data() + pos_, n);
    pos_ += n;
}

std::uint8_t
SnapshotReader::u8()
{
    std::uint8_t v;
    raw(&v, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    std::uint32_t n = u32();
    if (pos_ + n > rec_.bytes.size())
        fatal("SnapshotReader: record '%s' string underflow", rec_.key.c_str());
    std::string s(reinterpret_cast<const char *>(rec_.bytes.data() + pos_), n);
    pos_ += n;
    return s;
}

const std::shared_ptr<const void> &
SnapshotReader::attachment() const
{
    return rec_.attachment;
}

void
saveStats(SnapshotWriter &w, const StatGroup &stats)
{
    w.u32(static_cast<std::uint32_t>(stats.counters().size()));
    for (const auto &[name, c] : stats.counters()) {
        w.str(name);
        w.u64(c.value());
    }
    w.u32(static_cast<std::uint32_t>(stats.scalars().size()));
    for (const auto &[name, s] : stats.scalars()) {
        w.str(name);
        w.u64(s.count());
        w.f64(s.sum());
        w.f64(s.min());
        w.f64(s.max());
    }
}

void
restoreStats(SnapshotReader &r, StatGroup &stats)
{
    // Zero everything already present (CachedCounter holds raw pointers to
    // the map nodes, so nothing may be erased), then load snapshot values
    // into existing-or-new entries.
    stats.resetAll();
    std::uint32_t nc = r.u32();
    for (std::uint32_t i = 0; i < nc; ++i) {
        std::string name = r.str();
        stats.counter(name).set(r.u64());
    }
    std::uint32_t ns = r.u32();
    for (std::uint32_t i = 0; i < ns; ++i) {
        std::string name = r.str();
        std::uint64_t count = r.u64();
        double sum = r.f64();
        double mn = r.f64();
        double mx = r.f64();
        stats.scalar(name).load(count, sum, mn, mx);
    }
}

} // namespace kvmarm
