#include "sim/cpu_base.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/machine_base.hh"

namespace kvmarm {

CpuBase::CpuBase(CpuId id, MachineBase &machine) : id_(id), machine_(machine)
{
    events_.onSchedule = [this](Cycles when) {
        machine_.noteEventScheduled(*this, when);
    };
    machine_.registerSnapshottable(this);
}

CpuBase::~CpuBase()
{
    machine_.unregisterSnapshottable(this);
}

void
CpuBase::addCycles(Cycles c)
{
    now_ += c;
    drain();
    if (now_ >= yieldThreshold_ && Fiber::current()) {
        Fiber::yield();
        // Another CPU ran; cross-CPU events may now be due on our queue.
        drain();
    }
}

void
CpuBase::advanceTo(Cycles t)
{
    if (t > now_)
        now_ = t;
    drain();
}

void
CpuBase::drain()
{
    while (events_.runDue(now_)) {
    }
    serviceInterrupts();
}

void
CpuBase::waitUntil(const std::function<bool()> &pred)
{
    drain();
    while (!pred()) {
        waiting_ = true;
        Fiber::yield();
        waiting_ = false;
        // The scheduler advanced our clock to the next event time.
        drain();
    }
    waiting_ = false;
}

void
CpuBase::kickAt(Cycles when)
{
    events_.schedule(when, [] {}, EventQueue::Kind::Kick);
}

void
CpuBase::setEntry(std::function<void()> fn)
{
    entry_ = std::move(fn);
    fiber_.reset();
}

bool
CpuBase::fiberFinished() const
{
    return fiber_ && fiber_->finished();
}

Cycles
CpuBase::effectiveClock() const
{
    if (!waiting_)
        return now_;
    Cycles t = events_.nextEventTime();
    if (t == kNoDeadline)
        return kNoDeadline;
    return std::max(now_, t);
}

std::string
CpuBase::snapshotKey() const
{
    return "cpu" + std::to_string(id_);
}

void
CpuBase::saveState(SnapshotWriter &w)
{
    // Snapshots capture quiesced machines only: a suspended fiber's stack
    // cannot be serialized. A finished fiber (or one never started) is fine.
    if (fiber_ && !fiber_->finished())
        fatal("cpu%u: cannot snapshot while its fiber is suspended mid-run; "
              "snapshot after machine.run() returns",
              id_);
    w.u64(now_);
    w.u64(idleCycles_);
    w.b(waiting_);
    events_.saveState(w);
    saveStats(w, stats_);
}

void
CpuBase::restoreState(SnapshotReader &r)
{
    now_ = r.u64();
    idleCycles_ = r.u64();
    waiting_ = r.b();
    events_.restoreState(r);
    restoreStats(r, stats_);
    yieldThreshold_ = kNoDeadline;
    // The restored CPU runs whatever entry the clone installs next; any
    // finished boot fiber from this machine's own past is discarded.
    fiber_.reset();
}

void
CpuBase::snapshotVerify()
{
    events_.verifyAllClaimed();
}

void
CpuBase::resumeFiber()
{
    if (!entry_)
        panic("CpuBase::resumeFiber: cpu%u has no entry", id_);
    if (!fiber_)
        fiber_ = std::make_unique<Fiber>(entry_);
    if (waiting_) {
        Cycles eff = effectiveClock();
        if (eff != kNoDeadline && eff > now_) {
            idleCycles_ += eff - now_;
            now_ = eff;
        }
    }
    fiber_->resume();
}

} // namespace kvmarm
