/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*). Workload
 * models draw from this so that a given seed always produces the same
 * simulated cycle counts — required for reproducible benches and for the
 * determinism property tests.
 */

#ifndef KVMARM_SIM_RANDOM_HH
#define KVMARM_SIM_RANDOM_HH

#include <cstdint>

namespace kvmarm {

/** xorshift64* generator; small, fast, and seed-stable across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t range(std::uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) / 9007199254740992.0;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

} // namespace kvmarm

#endif // KVMARM_SIM_RANDOM_HH
