#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/thread_annotations.hh"

namespace kvmarm {

namespace {

std::atomic<bool> informEnabled{true};

/**
 * Serializes the actual stream writes. Machines running on fleet worker
 * threads share stderr/stdout; each message is formatted into one string
 * first (outside the lock) and emitted under the mutex so lines from
 * different VMs never interleave mid-line. The annotated Mutex keeps the
 * acquire/release pairing visible to clang's thread-safety analysis.
 */
Mutex &
writerMutex()
{
    static Mutex m;
    return m;
}

TraceLevel
traceLevelFromEnv()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once during static
    // init, before any fleet worker thread exists; nothing calls setenv.
    const char *env = std::getenv("KVMARM_TRACE");
    if (!env)
        return TraceLevel::Off;
    std::string v(env);
    if (v == "debug" || v == "2")
        return TraceLevel::Debug;
    if (v == "info" || v == "1")
        return TraceLevel::Info;
    return TraceLevel::Off;
}

} // namespace

namespace detail {
std::atomic<TraceLevel> traceLevel{traceLevelFromEnv()};
} // namespace detail

std::string
vstrfmt(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    {
        MutexLock lock(writerMutex());
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    }
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    MutexLock lock(writerMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    MutexLock lock(writerMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

TraceLevel
traceLevel()
{
    return detail::traceLevel.load(std::memory_order_relaxed);
}

void
setTraceLevel(TraceLevel lv)
{
    detail::traceLevel.store(lv, std::memory_order_relaxed);
}

void
traceMsg(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    MutexLock lock(writerMutex());
    std::fprintf(stderr, "trace: %s\n", msg.c_str());
}

} // namespace kvmarm
