/**
 * @file
 * Lightweight named statistics: counters and scalar samples with a
 * table-style dump, in the spirit of gem5's stats package.
 */

#ifndef KVMARM_SIM_STATS_HH
#define KVMARM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace kvmarm {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    /** Overwrite the value (snapshot restore only). */
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running scalar statistic: count, sum, min, max, mean. */
class Scalar
{
  public:
    void sample(double v);
    void reset();

    /** Overwrite all fields (snapshot restore only). */
    void
    load(std::uint64_t count, double sum, double min, double max)
    {
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

class StatGroup;

/**
 * A call-site cache for one StatGroup counter. Hot paths bump the same
 * named counter millions of times; resolving the name each time costs a
 * string construction and a map walk. Holding a CachedCounter next to the
 * group turns that into a null check plus an increment: the name is
 * resolved once and the Counter pointer kept (map nodes never move).
 * The counter is still created only when first bumped, so stat dumps are
 * unchanged for paths never taken.
 */
class CachedCounter
{
  public:
    /** Bump by @p n, resolving @p name in @p group on first use. */
    void inc(StatGroup &group, const char *name, std::uint64_t n = 1);

    /**
     * Bump by @p n; @p make_name() produces the name and is only invoked
     * on the first bump (for names composed at the call site).
     */
    template <typename NameFn>
    void
    inc(StatGroup &group, NameFn &&make_name, std::uint64_t n = 1)
    {
        if (!counter_)
            resolve(group, make_name());
        counter_->inc(n);
    }

  private:
    void resolve(StatGroup &group, const std::string &name);

    Counter *counter_ = nullptr;
};

/**
 * A registry of named counters and scalars. Subsystems hold a StatGroup and
 * name their stats hierarchically ("cpu0.traps.wfi").
 */
class StatGroup
{
  public:
    /** Find or create a counter by name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Find or create a scalar by name. */
    Scalar &scalar(const std::string &name) { return scalars_[name]; }

    /** Read a counter's value, 0 if it does not exist. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Reset every stat in the group. */
    void resetAll();

    /** Dump all stats, sorted by name, one per line. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::map<std::string, Counter> &counters() const { return counters_; }
    const std::map<std::string, Scalar> &scalars() const { return scalars_; }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Scalar> scalars_;
};

inline void
CachedCounter::inc(StatGroup &group, const char *name, std::uint64_t n)
{
    if (!counter_)
        resolve(group, name);
    counter_->inc(n);
}

inline void
CachedCounter::resolve(StatGroup &group, const std::string &name)
{
    counter_ = &group.counter(name);
}

} // namespace kvmarm

#endif // KVMARM_SIM_STATS_HH
