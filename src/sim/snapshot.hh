/**
 * @file
 * Machine snapshot/restore plumbing.
 *
 * A quiesced machine (no fiber suspended mid-run) can be captured into a
 * MachineSnapshot: every component that registered itself as Snapshottable
 * on the MachineBase contributes one byte record. Restoring the snapshot
 * into a freshly constructed machine of the same shape replays those
 * records in registration order, then gives each component a rebind pass
 * (to re-attach callbacks and pointers that cannot be serialized) and a
 * verify pass (to prove nothing was left dangling).
 *
 * Records are plain byte vectors plus an optional type-erased attachment:
 * a shared, immutable object the component wants to hand to its restored
 * twin without byte-copying (PhysMem uses this for the COW page image).
 * Snapshots are immutable once taken and safe to share across host threads;
 * every mutable structure a restore produces is owned by the restored
 * machine alone.
 */

#ifndef KVMARM_SIM_SNAPSHOT_HH
#define KVMARM_SIM_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace kvmarm {

class StatGroup;

/** One component's captured state: a key for pairing, raw bytes, and an
 *  optional shared immutable attachment. */
struct SnapshotRecord
{
    std::string key;
    std::vector<std::uint8_t> bytes;
    std::shared_ptr<const void> attachment;
};

/** A full machine capture: one record per registered Snapshottable, in
 *  registration (== construction) order. Immutable once taken. */
struct MachineSnapshot
{
    std::vector<SnapshotRecord> records;

    /** Serialized payload size (record bytes only — shared attachments
     *  such as the COW page image are referenced, not copied, which is
     *  exactly why spawning clone VMs from a live job is cheap; bench
     *  fleet_pool reports this figure). */
    std::size_t
    totalBytes() const
    {
        std::size_t n = 0;
        for (const SnapshotRecord &rec : records)
            n += rec.bytes.size();
        return n;
    }
};

/** Accumulates one component's snapshot record. */
class SnapshotWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
    void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
    void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }
    void str(const std::string &s);

    /** Write a trivially copyable aggregate verbatim. */
    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&v, sizeof(v));
    }

    /** Attach a shared immutable object to this record (at most one). */
    void attach(std::shared_ptr<const void> a);

    /** Move the accumulated record out (MachineBase::takeSnapshot). */
    SnapshotRecord finish(std::string key);

  private:
    void raw(const void *p, std::size_t n);

    std::vector<std::uint8_t> bytes_;
    std::shared_ptr<const void> attachment_;
    bool hasAttachment_ = false;
};

/** Replays one component's snapshot record. Reads must consume the record
 *  exactly; MachineBase checks done() after each restoreState. */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const SnapshotRecord &rec) : rec_(rec) {}

    std::uint8_t u8();
    bool b() { return u8() != 0; }
    std::uint16_t u16() { std::uint16_t v; raw(&v, sizeof(v)); return v; }
    std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof(v)); return v; }
    std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof(v)); return v; }
    double f64() { double v; raw(&v, sizeof(v)); return v; }
    std::string str();

    template <typename T>
    void
    pod(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&v, sizeof(v));
    }

    /** The record's shared attachment (null if none was written). */
    const std::shared_ptr<const void> &attachment() const;

    /** True when every byte of the record has been consumed. */
    bool done() const { return pos_ == rec_.bytes.size(); }

    std::size_t remaining() const { return rec_.bytes.size() - pos_; }

  private:
    void raw(void *p, std::size_t n);

    const SnapshotRecord &rec_;
    std::size_t pos_ = 0;
};

/**
 * Interface for components that participate in machine snapshots. Register
 * on the owning MachineBase in the constructor (registration order must be
 * deterministic and identical between the snapshot origin and any clone —
 * construction order guarantees this) and unregister in the destructor.
 */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    /** Stable identifier, checked against the record at restore. */
    virtual std::string snapshotKey() const = 0;

    /** Serialize state. Non-const: PhysMem's save mutates it into a COW
     *  client of the image it just published. */
    virtual void saveState(SnapshotWriter &w) = 0;

    /** Load state back. Pointers and callbacks stay unresolved until
     *  snapshotRebind(). */
    virtual void restoreState(SnapshotReader &r) = 0;

    /** Re-attach callbacks/pointers after every component restored. */
    virtual void snapshotRebind() {}

    /** Post-rebind consistency checks; fatal() on anything dangling. */
    virtual void snapshotVerify() {}
};

/// @name StatGroup serialization helpers
///
/// StatGroup restore must never clear the maps: CachedCounter call sites
/// hold raw Counter pointers into the map nodes (which never move), so the
/// restore resets existing values in place and find-or-creates the rest.
/// @{
void saveStats(SnapshotWriter &w, const StatGroup &stats);
void restoreStats(SnapshotReader &r, StatGroup &stats);
/// @}

} // namespace kvmarm

#endif // KVMARM_SIM_SNAPSHOT_HH
