/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user/config error
 * (throws FatalError so tests and embedding applications can recover);
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef KVMARM_SIM_LOGGING_HH
#define KVMARM_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace kvmarm {

/** Thrown by fatal(): the simulation cannot continue due to a usage error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Format a printf-style message into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);

/** Format a printf-style message into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a simulator bug and abort. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a usage/configuration error. Throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspect but non-stopping behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable or disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace kvmarm

#endif // KVMARM_SIM_LOGGING_HH
