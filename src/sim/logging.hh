/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user/config error
 * (throws FatalError so tests and embedding applications can recover);
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef KVMARM_SIM_LOGGING_HH
#define KVMARM_SIM_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <stdexcept>
#include <string>

namespace kvmarm {

/** Thrown by fatal(): the simulation cannot continue due to a usage error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Format a printf-style message into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);

/** Format a printf-style message into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a simulator bug and abort. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a usage/configuration error. Throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspect but non-stopping behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable or disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/// @name Leveled trace logging
///
/// Diagnostics that live on simulation hot paths (world switches, traps,
/// MMIO dispatch). The KVMARM_TRACE macro checks the level inline before
/// evaluating or formatting any argument, so a disabled trace point costs
/// one predictable branch — never a string format or a function call.
/// Enable with setTraceLevel() or the KVMARM_TRACE environment variable
/// ("info" or "debug").
/// @{

enum class TraceLevel : int
{
    Off = 0,
    Info = 1,
    Debug = 2,
};

namespace detail {
/**
 * Current level; read directly by KVMARM_TRACE's inline check. Initialized
 * once from the environment before main() and otherwise only written by
 * setTraceLevel() in single-threaded setup code (tests, bench main), so a
 * relaxed load keeps the disabled-trace cost at one predictable branch
 * while staying race-free when a machine fleet runs on many host threads.
 */
extern std::atomic<TraceLevel> traceLevel;
} // namespace detail

inline bool
traceEnabled(TraceLevel lv)
{
    return static_cast<int>(lv) <=
           static_cast<int>(detail::traceLevel.load(std::memory_order_relaxed));
}

TraceLevel traceLevel();
void setTraceLevel(TraceLevel lv);

/** Emit one trace line (already known to be enabled). */
void traceMsg(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

#define KVMARM_TRACE(level, ...)                                       \
    do {                                                               \
        if (kvmarm::traceEnabled(kvmarm::TraceLevel::level))           \
            kvmarm::traceMsg(__VA_ARGS__);                             \
    } while (0)

/// @}

} // namespace kvmarm

#endif // KVMARM_SIM_LOGGING_HH
