#include "sim/machine_base.hh"
#include <cstdio>

#include "sim/cpu_base.hh"
#include "sim/logging.hh"

namespace kvmarm {

namespace {
/** Factory hooks registered by the check layer (null until its static
 *  initializer runs; permanently null when invariants are compiled out or
 *  the binary links no check code). */
// domlint: allow(ownership-static) — written once by the check layer's static initializer before main(); read-only while any machine is live
MachineBase::CheckEngineCreate gCheckCreate = nullptr;
// domlint: allow(ownership-static) — written once by the check layer's static initializer before main(); read-only while any machine is live
MachineBase::CheckEngineDestroy gCheckDestroy = nullptr;
} // namespace

void
MachineBase::registerCheckEngineFactory(CheckEngineCreate create,
                                        CheckEngineDestroy destroy)
{
    gCheckCreate = create;
    gCheckDestroy = destroy;
}

void
MachineBase::CheckEngineDeleter::operator()(check::InvariantEngine *eng) const
{
    if (eng && gCheckDestroy)
        gCheckDestroy(eng);
}

MachineBase::MachineBase()
    : checkEngine_(gCheckCreate ? gCheckCreate() : nullptr)
{
}

MachineBase::~MachineBase() = default;

void
MachineBase::run()
{
    stopRequested_ = false;
    while (!stopRequested_) {
        CpuBase *best = nullptr;
        Cycles best_clock = kNoDeadline;
        Cycles second_clock = kNoDeadline;
        bool any_unfinished = false;

        for (CpuBase *c : cpusBase_) {
            if (!c->hasEntry() || c->fiberFinished())
                continue;
            any_unfinished = true;
            Cycles eff = c->effectiveClock();
            if (eff < best_clock) {
                second_clock = best_clock;
                best_clock = eff;
                best = c;
            } else if (eff < second_clock) {
                second_clock = eff;
            }
        }

        if (!any_unfinished)
            break;
        if (!best || best_clock == kNoDeadline) {
            for (CpuBase *c : cpusBase_) {
                std::fprintf(stderr,
                             "  cpu%u: now=%llu waiting=%d finished=%d "
                             "events=%zu\n",
                             c->id(), static_cast<unsigned long long>(c->now()),
                             c->waiting(), c->fiberFinished(),
                             c->events().size());
            }
            panic("MachineBase::run: deadlock — every CPU is blocked with "
                  "no pending events");
        }

        best->setYieldThreshold(second_clock == kNoDeadline
                                    ? kNoDeadline
                                    : second_clock + quantum_);
        running_ = best;
        best->resumeFiber();
        running_ = nullptr;
    }
}

void
MachineBase::noteEventScheduled(CpuBase &target, Cycles when)
{
    if (running_ && running_ != &target)
        running_->lowerYieldThreshold(when + quantum_);
}

} // namespace kvmarm
