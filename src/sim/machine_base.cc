#include "sim/machine_base.hh"
#include <algorithm>
#include <cstdio>

#include "sim/cpu_base.hh"
#include "sim/logging.hh"

namespace kvmarm {

namespace {
/** Factory hooks registered by the check layer (null until its static
 *  initializer runs; permanently null when invariants are compiled out or
 *  the binary links no check code). */
// domlint: allow(ownership-static) — written once by the check layer's static initializer before main(); read-only while any machine is live
MachineBase::CheckEngineCreate gCheckCreate = nullptr;
// domlint: allow(ownership-static) — written once by the check layer's static initializer before main(); read-only while any machine is live
MachineBase::CheckEngineDestroy gCheckDestroy = nullptr;
} // namespace

void
MachineBase::registerCheckEngineFactory(CheckEngineCreate create,
                                        CheckEngineDestroy destroy)
{
    gCheckCreate = create;
    gCheckDestroy = destroy;
}

void
MachineBase::CheckEngineDeleter::operator()(check::InvariantEngine *eng) const
{
    if (eng && gCheckDestroy)
        gCheckDestroy(eng);
}

MachineBase::MachineBase()
    : checkEngine_(gCheckCreate ? gCheckCreate() : nullptr)
{
}

MachineBase::~MachineBase() = default;

void
MachineBase::registerSnapshottable(Snapshottable *s)
{
    snapshottables_.push_back(s);
}

void
MachineBase::unregisterSnapshottable(Snapshottable *s)
{
    auto it = std::find(snapshottables_.begin(), snapshottables_.end(), s);
    if (it != snapshottables_.end())
        snapshottables_.erase(it);
}

std::shared_ptr<const MachineSnapshot>
MachineBase::takeSnapshot()
{
    if (running_)
        fatal("MachineBase::takeSnapshot: machine is running; snapshots "
              "require a quiesced machine");
    auto snap = std::make_shared<MachineSnapshot>();
    snap->records.reserve(snapshottables_.size());
    for (Snapshottable *s : snapshottables_) {
        SnapshotWriter w;
        s->saveState(w);
        snap->records.push_back(w.finish(s->snapshotKey()));
    }
    return snap;
}

void
MachineBase::restoreSnapshot(const MachineSnapshot &snap)
{
    if (running_)
        fatal("MachineBase::restoreSnapshot: machine is running");
    if (snap.records.size() != snapshottables_.size())
        fatal("MachineBase::restoreSnapshot: snapshot has %zu records but "
              "this machine registered %zu components — machine shapes "
              "differ",
              snap.records.size(), snapshottables_.size());
    for (std::size_t i = 0; i < snapshottables_.size(); ++i) {
        Snapshottable *s = snapshottables_[i];
        const SnapshotRecord &rec = snap.records[i];
        if (rec.key != s->snapshotKey())
            fatal("MachineBase::restoreSnapshot: record %zu is '%s' but "
                  "component %zu is '%s' — registration orders differ",
                  i, rec.key.c_str(), i, s->snapshotKey().c_str());
        SnapshotReader r(rec);
        s->restoreState(r);
        if (!r.done())
            fatal("MachineBase::restoreSnapshot: component '%s' left %zu "
                  "bytes of its record unconsumed",
                  rec.key.c_str(), r.remaining());
    }
    for (Snapshottable *s : snapshottables_)
        s->snapshotRebind();
    for (Snapshottable *s : snapshottables_)
        s->snapshotVerify();
    stopRequested_ = false;
}

void
MachineBase::runSingle()
{
    CpuBase *c = cpusBase_.front();
    while (!stopRequested_) {
        if (!c->hasEntry() || c->fiberFinished())
            break;
        if (c->effectiveClock() == kNoDeadline) {
            std::fprintf(stderr,
                         "  cpu%u: now=%llu waiting=%d finished=%d "
                         "events=%zu\n",
                         c->id(), static_cast<unsigned long long>(c->now()),
                         c->waiting(), c->fiberFinished(),
                         c->events().size());
            panic("MachineBase::run: deadlock — every CPU is blocked with "
                  "no pending events");
        }
        // With no second CPU there is no laggard to yield to; the same
        // threshold the general loop computes (second == kNoDeadline).
        c->setYieldThreshold(kNoDeadline);
        running_ = c;
        c->resumeFiber();
        running_ = nullptr;
    }
}

void
MachineBase::run()
{
    stopRequested_ = false;
    if (cpusBase_.size() == 1) {
        runSingle();
        return;
    }
    while (!stopRequested_) {
        CpuBase *best = nullptr;
        Cycles best_clock = kNoDeadline;
        Cycles second_clock = kNoDeadline;
        bool any_unfinished = false;

        for (CpuBase *c : cpusBase_) {
            if (!c->hasEntry() || c->fiberFinished())
                continue;
            any_unfinished = true;
            Cycles eff = c->effectiveClock();
            if (eff < best_clock) {
                second_clock = best_clock;
                best_clock = eff;
                best = c;
            } else if (eff < second_clock) {
                second_clock = eff;
            }
        }

        if (!any_unfinished)
            break;
        if (!best || best_clock == kNoDeadline) {
            for (CpuBase *c : cpusBase_) {
                std::fprintf(stderr,
                             "  cpu%u: now=%llu waiting=%d finished=%d "
                             "events=%zu\n",
                             c->id(), static_cast<unsigned long long>(c->now()),
                             c->waiting(), c->fiberFinished(),
                             c->events().size());
            }
            panic("MachineBase::run: deadlock — every CPU is blocked with "
                  "no pending events");
        }

        best->setYieldThreshold(second_clock == kNoDeadline
                                    ? kNoDeadline
                                    : second_clock + quantum_);
        running_ = best;
        best->resumeFiber();
        running_ = nullptr;
    }
}

void
MachineBase::noteEventScheduled(CpuBase &target, Cycles when)
{
    if (running_ && running_ != &target)
        running_->lowerYieldThreshold(when + quantum_);
}

} // namespace kvmarm
