#include "sim/machine_base.hh"
#include <algorithm>
#include <cstdio>

#include "sim/cpu_base.hh"
#include "sim/logging.hh"

namespace kvmarm {

namespace {
/** Factory hooks registered by the check layer (null until its static
 *  initializer runs; permanently null when invariants are compiled out or
 *  the binary links no check code). */
// domlint: allow(ownership-static) — written once by the check layer's static initializer before main(); read-only while any machine is live
MachineBase::CheckEngineCreate gCheckCreate = nullptr;
// domlint: allow(ownership-static) — written once by the check layer's static initializer before main(); read-only while any machine is live
MachineBase::CheckEngineDestroy gCheckDestroy = nullptr;
// domlint: allow(ownership-static) — written once by the check layer's static initializer before main(); read-only while any machine is live
MachineBase::CheckEnginePublish gCheckPublish = nullptr;
} // namespace

void
MachineBase::registerCheckEngineFactory(CheckEngineCreate create,
                                        CheckEngineDestroy destroy,
                                        CheckEnginePublish publish)
{
    gCheckCreate = create;
    gCheckDestroy = destroy;
    gCheckPublish = publish;
}

void
MachineBase::publishCheckEpoch()
{
    if (checkEngine_ && gCheckPublish)
        gCheckPublish(checkEngine_.get());
}

void
MachineBase::CheckEngineDeleter::operator()(check::InvariantEngine *eng) const
{
    if (eng && gCheckDestroy)
        gCheckDestroy(eng);
}

MachineBase::MachineBase()
    : checkEngine_(gCheckCreate ? gCheckCreate() : nullptr)
{
}

MachineBase::~MachineBase() = default;

void
MachineBase::registerSnapshottable(Snapshottable *s)
{
    snapshottables_.push_back(s);
}

void
MachineBase::unregisterSnapshottable(Snapshottable *s)
{
    auto it = std::find(snapshottables_.begin(), snapshottables_.end(), s);
    if (it != snapshottables_.end())
        snapshottables_.erase(it);
}

std::uint64_t
MachineBase::addSnapshotBlocker(std::string reason)
{
    std::uint64_t token = nextBlockerToken_++;
    snapshotBlockers_.emplace_back(token, std::move(reason));
    return token;
}

void
MachineBase::removeSnapshotBlocker(std::uint64_t token)
{
    auto it = std::find_if(snapshotBlockers_.begin(), snapshotBlockers_.end(),
                           [&](const auto &b) { return b.first == token; });
    if (it == snapshotBlockers_.end())
        fatal("MachineBase::removeSnapshotBlocker: unknown token %llu",
              static_cast<unsigned long long>(token));
    snapshotBlockers_.erase(it);
}

std::shared_ptr<const MachineSnapshot>
MachineBase::takeSnapshot()
{
    if (running_)
        fatal("MachineBase::takeSnapshot: machine is running; snapshots "
              "require a quiesced machine");
    if (!snapshotBlockers_.empty()) {
        std::string reasons;
        for (const auto &b : snapshotBlockers_) {
            if (!reasons.empty())
                reasons += "; ";
            reasons += b.second;
        }
        fatal("MachineBase::takeSnapshot: machine holds externally visible "
              "state a snapshot would silently drop: %s", reasons.c_str());
    }
    auto snap = std::make_shared<MachineSnapshot>();
    snap->records.reserve(snapshottables_.size());
    for (Snapshottable *s : snapshottables_) {
        SnapshotWriter w;
        s->saveState(w);
        snap->records.push_back(w.finish(s->snapshotKey()));
    }
    return snap;
}

void
MachineBase::restoreSnapshot(const MachineSnapshot &snap)
{
    if (running_)
        fatal("MachineBase::restoreSnapshot: machine is running");
    if (snap.records.size() != snapshottables_.size())
        fatal("MachineBase::restoreSnapshot: snapshot has %zu records but "
              "this machine registered %zu components — machine shapes "
              "differ",
              snap.records.size(), snapshottables_.size());
    for (std::size_t i = 0; i < snapshottables_.size(); ++i) {
        Snapshottable *s = snapshottables_[i];
        const SnapshotRecord &rec = snap.records[i];
        if (rec.key != s->snapshotKey())
            fatal("MachineBase::restoreSnapshot: record %zu is '%s' but "
                  "component %zu is '%s' — registration orders differ",
                  i, rec.key.c_str(), i, s->snapshotKey().c_str());
        SnapshotReader r(rec);
        s->restoreState(r);
        if (!r.done())
            fatal("MachineBase::restoreSnapshot: component '%s' left %zu "
                  "bytes of its record unconsumed",
                  rec.key.c_str(), r.remaining());
    }
    for (Snapshottable *s : snapshottables_)
        s->snapshotRebind();
    for (Snapshottable *s : snapshottables_)
        s->snapshotVerify();
    stopRequested_ = false;
    // A restore rewrites rule shadow state wholesale; it is a quiesce
    // boundary, so republish the violation counter for live aggregation.
    KVMARM_CHECK_PUBLISH(*this);
}

bool
MachineBase::finished() const
{
    for (const CpuBase *c : cpusBase_) {
        if (c->hasEntry() && !c->fiberFinished())
            return false;
    }
    return true;
}

Cycles
MachineBase::nextActivity() const
{
    Cycles best = kNoDeadline;
    for (CpuBase *c : cpusBase_) {
        if (c->hasEntry() && !c->fiberFinished())
            best = std::min(best, c->effectiveClock());
    }
    return best;
}

void
MachineBase::runSingle(Cycles haltAt)
{
    CpuBase *c = cpusBase_.front();
    while (!stopRequested_) {
        if (!c->hasEntry() || c->fiberFinished())
            break;
        // Only a bounded run treats the horizon as a quiesce point; in an
        // unbounded run an idle CPU (kNoDeadline) must fall through to the
        // deadlock diagnosis below, not match kNoDeadline >= kNoDeadline.
        if (haltAt != kNoDeadline && c->effectiveClock() >= haltAt)
            break;
        if (c->effectiveClock() == kNoDeadline) {
            std::fprintf(stderr,
                         "  cpu%u: now=%llu waiting=%d finished=%d "
                         "events=%zu\n",
                         c->id(), static_cast<unsigned long long>(c->now()),
                         c->waiting(), c->fiberFinished(),
                         c->events().size());
            panic("MachineBase::run: deadlock — every CPU is blocked with "
                  "no pending events");
        }
        // With no second CPU there is no laggard to yield to; the horizon
        // is the only thing to stop for (kNoDeadline when unbounded).
        c->setYieldThreshold(haltAt);
        running_ = c;
        c->resumeFiber();
        running_ = nullptr;
    }
}

void
MachineBase::run(Cycles haltAt)
{
    stopRequested_ = false;
    if (cpusBase_.size() == 1)
        runSingle(haltAt);
    else
        runMulti(haltAt);
    // Every exit from run() — completion, bounded horizon, requestStop —
    // leaves the machine quiesced on its own execution thread: publish
    // the invariant-violation counter so the check facade's epoch
    // aggregation (beginEpoch()/aggregateEpoch()) can read it live while
    // other machines keep running.
    KVMARM_CHECK_PUBLISH(*this);
}

void
MachineBase::runMulti(Cycles haltAt)
{
    while (!stopRequested_) {
        CpuBase *best = nullptr;
        Cycles best_clock = kNoDeadline;
        Cycles second_clock = kNoDeadline;
        bool any_unfinished = false;

        for (CpuBase *c : cpusBase_) {
            if (!c->hasEntry() || c->fiberFinished())
                continue;
            any_unfinished = true;
            Cycles eff = c->effectiveClock();
            if (eff < best_clock) {
                second_clock = best_clock;
                best_clock = eff;
                best = c;
            } else if (eff < second_clock) {
                second_clock = eff;
            }
        }

        if (!any_unfinished)
            break;
        // Every unfinished CPU is at or past a bounded horizon: quiesce and
        // hand control back to the caller (rendezvous boundary, not
        // deadlock). An unbounded run must keep the deadlock check below.
        if (haltAt != kNoDeadline && best_clock >= haltAt)
            break;
        if (!best || best_clock == kNoDeadline) {
            for (CpuBase *c : cpusBase_) {
                std::fprintf(stderr,
                             "  cpu%u: now=%llu waiting=%d finished=%d "
                             "events=%zu\n",
                             c->id(), static_cast<unsigned long long>(c->now()),
                             c->waiting(), c->fiberFinished(),
                             c->events().size());
            }
            panic("MachineBase::run: deadlock — every CPU is blocked with "
                  "no pending events");
        }

        Cycles threshold = second_clock == kNoDeadline
                               ? kNoDeadline
                               : second_clock + quantum_;
        best->setYieldThreshold(std::min(threshold, haltAt));
        running_ = best;
        best->resumeFiber();
        running_ = nullptr;
    }
}

void
MachineBase::noteEventScheduled(CpuBase &target, Cycles when)
{
    if (running_ && running_ != &target)
        running_->lowerYieldThreshold(when + quantum_);
}

} // namespace kvmarm
