#include "sim/event_queue.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace kvmarm {

EventQueue::~EventQueue()
{
    for (Event *ev : heap_)
        delete ev;
}

std::uint64_t
EventQueue::schedule(Cycles when, Callback cb)
{
    auto *ev = new Event{when, nextSeq_++, nextId_++, std::move(cb), false};
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    if (onSchedule)
        onSchedule(when);
    return ev->id;
}

bool
EventQueue::cancel(std::uint64_t id)
{
    for (Event *ev : heap_) {
        if (ev->id == id && !ev->cancelled) {
            ev->cancelled = true;
            --live_;
            return true;
        }
    }
    return false;
}

Cycles
EventQueue::nextEventTime() const
{
    // Skip over cancelled tombstones at the head without popping; scan is
    // cheap because queues stay small (a handful of timers per CPU).
    Cycles best = kNoDeadline;
    for (const Event *ev : heap_) {
        if (!ev->cancelled)
            best = std::min(best, ev->when);
    }
    return best;
}

unsigned
EventQueue::runDue(Cycles now)
{
    unsigned ran = 0;
    while (!heap_.empty()) {
        Event *head = heap_.front();
        if (!head->cancelled && head->when > now)
            break;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        std::unique_ptr<Event> ev(head);
        if (!ev->cancelled) {
            --live_;
            ++ran;
            ev->cb();
        }
    }
    return ran;
}

} // namespace kvmarm
