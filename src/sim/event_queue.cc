#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace kvmarm {

EventQueue::~EventQueue()
{
    for (Event *ev : heap_)
        delete ev;
    for (Event *ev : pool_)
        delete ev;
}

EventQueue::Event *
EventQueue::allocEvent()
{
    if (!pool_.empty()) {
        Event *ev = pool_.back();
        pool_.pop_back();
        return ev;
    }
    ++heapAllocs_;
    return new Event{};
}

void
EventQueue::recycle(Event *ev)
{
    ev->cb = nullptr; // release the closure's captures now, not at reuse
    pool_.push_back(ev);
}

void
EventQueue::forgetKick(std::uint64_t id)
{
    for (auto it = pendingKicks_.begin(); it != pendingKicks_.end(); ++it) {
        if (it->id == id) {
            *it = pendingKicks_.back();
            pendingKicks_.pop_back();
            return;
        }
    }
}

std::uint64_t
EventQueue::schedule(Cycles when, Callback cb, Kind kind)
{
    if (kind == Kind::Kick) {
        for (const PendingKick &pk : pendingKicks_) {
            if (pk.when == when) {
                // A kick at this cycle is already pending; a second Event
                // would run the same no-op twice. Elide it, but keep the
                // onSchedule notification: the machine scheduler's wake
                // bookkeeping must be identical whether or not we coalesce.
                ++kicksCoalesced_;
                if (onSchedule)
                    onSchedule(when);
                return pk.id;
            }
        }
    }
    Event *ev = allocEvent();
    ev->when = when;
    ev->seq = nextSeq_++;
    ev->id = nextId_++;
    ev->kind = kind;
    ev->cb = std::move(cb);
    ev->cancelled = false;
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    if (kind == Kind::Kick)
        pendingKicks_.push_back({when, ev->id});
    if (onSchedule)
        onSchedule(when);
    return ev->id;
}

bool
EventQueue::cancel(std::uint64_t id)
{
    for (Event *ev : heap_) {
        if (ev->id == id && !ev->cancelled) {
            ev->cancelled = true;
            --live_;
            if (ev->kind == Kind::Kick)
                forgetKick(id);
            return true;
        }
    }
    return false;
}

Cycles
EventQueue::nextEventTime() const
{
    // Skip over cancelled tombstones at the head without popping; scan is
    // cheap because queues stay small (a handful of timers per CPU).
    Cycles best = kNoDeadline;
    for (const Event *ev : heap_) {
        if (!ev->cancelled)
            best = std::min(best, ev->when);
    }
    return best;
}

unsigned
EventQueue::runDue(Cycles now)
{
    unsigned ran = 0;
    while (!heap_.empty()) {
        Event *head = heap_.front();
        if (!head->cancelled && head->when > now)
            break;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        bool due = !head->cancelled;
        if (due && head->kind == Kind::Kick)
            forgetKick(head->id);
        Callback cb = std::move(head->cb);
        // Recycle before running: cb may schedule and immediately reuse it.
        recycle(head);
        if (due) {
            --live_;
            ++ran;
            cb();
        }
    }
    return ran;
}

void
EventQueue::saveState(SnapshotWriter &w) const
{
    std::vector<const Event *> live;
    live.reserve(live_);
    for (const Event *ev : heap_) {
        if (!ev->cancelled)
            live.push_back(ev);
    }
    std::sort(live.begin(), live.end(), [](const Event *a, const Event *b) {
        if (a->when != b->when)
            return a->when < b->when;
        return a->seq < b->seq;
    });
    w.u32(static_cast<std::uint32_t>(live.size()));
    for (const Event *ev : live) {
        w.u64(ev->when);
        w.u64(ev->seq);
        w.u64(ev->id);
        w.u8(static_cast<std::uint8_t>(ev->kind));
    }
    w.u64(nextSeq_);
    w.u64(nextId_);
}

void
EventQueue::restoreState(SnapshotReader &r)
{
    for (Event *ev : heap_)
        recycle(ev);
    heap_.clear();
    pendingKicks_.clear();
    live_ = 0;

    std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        Event *ev = allocEvent();
        ev->when = r.u64();
        ev->seq = r.u64();
        ev->id = r.u64();
        ev->kind = static_cast<Kind>(r.u8());
        // Kick events are no-ops by definition and need no owner; anything
        // else waits for its component's rebind pass to claim() it.
        ev->cb = ev->kind == Kind::Kick ? Callback([] {}) : nullptr;
        ev->cancelled = false;
        heap_.push_back(ev);
        ++live_;
        if (ev->kind == Kind::Kick)
            pendingKicks_.push_back({ev->when, ev->id});
    }
    // Saved in (when, seq) order, which Later{} accepts as a valid heap,
    // but make the heap property explicit rather than rely on it.
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    nextSeq_ = r.u64();
    nextId_ = r.u64();
}

void
EventQueue::claim(std::uint64_t id, Callback cb)
{
    for (Event *ev : heap_) {
        if (ev->id == id && !ev->cancelled) {
            if (ev->cb)
                fatal("EventQueue::claim: event %llu already has a callback",
                      static_cast<unsigned long long>(id));
            ev->cb = std::move(cb);
            return;
        }
    }
    fatal("EventQueue::claim: no pending event %llu",
          static_cast<unsigned long long>(id));
}

void
EventQueue::verifyAllClaimed() const
{
    for (const Event *ev : heap_) {
        if (!ev->cancelled && !ev->cb)
            fatal("EventQueue: restored event %llu (t=%llu) was never "
                  "claimed by its owner",
                  static_cast<unsigned long long>(ev->id),
                  static_cast<unsigned long long>(ev->when));
    }
}

} // namespace kvmarm
