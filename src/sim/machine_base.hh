/**
 * @file
 * Machine-level deterministic fiber scheduler.
 *
 * Runs the unfinished CPU with the smallest effective clock; a blocked CPU's
 * effective clock is its next event time, so idle CPUs fast-forward. The
 * interleaving quantum bounds how far one CPU may run ahead of another,
 * giving deterministic, approximately lock-step SMP execution.
 */

#ifndef KVMARM_SIM_MACHINE_BASE_HH
#define KVMARM_SIM_MACHINE_BASE_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::check {
class InvariantEngine;
} // namespace kvmarm::check

namespace kvmarm {

class CpuBase;

/** Base class for ArmMachine and X86Machine. */
class MachineBase
{
  public:
    MachineBase();
    virtual ~MachineBase();

    /**
     * Run every CPU that has an entry function until all of them finish or
     * stop is requested. Throws via panic() on cross-CPU deadlock (all
     * blocked with no pending events).
     */
    void run() { run(kNoDeadline); }

    /**
     * Run until every unfinished CPU's effective clock reaches @p haltAt
     * (or all finish / stop is requested), then return with the machine
     * quiesced. The horizon caps yield thresholds, so a CPU overshoots
     * the boundary by at most one instruction's cycle cost — the same
     * deterministic overshoot regardless of how many run() calls the
     * execution is sliced into. A machine blocked with no pending events
     * under a finite horizon simply returns (the caller decides whether
     * that is idleness or deadlock); the deadlock panic fires only for
     * the unbounded form.
     */
    void run(Cycles haltAt);

    /** True when every CPU that has an entry has finished its fiber. */
    bool finished() const;

    /**
     * Earliest cycle at which an unfinished CPU can make progress (its
     * effective clock), or kNoDeadline when all unfinished CPUs are
     * blocked with no pending events.
     */
    Cycles nextActivity() const;

    /** Ask run() to return at the next scheduling point. Suspended fibers
     *  are abandoned (their stacks are reclaimed with the machine). */
    void requestStop() { stopRequested_ = true; }

    bool stopRequested() const { return stopRequested_; }

    /** How far (cycles) one CPU may run ahead of the laggard before
     *  yielding. */
    Cycles quantum() const { return quantum_; }
    void setQuantum(Cycles q) { quantum_ = q; }

    std::size_t numCpus() const { return cpusBase_.size(); }
    CpuBase &cpuBase(CpuId id) { return *cpusBase_.at(id); }

    /**
     * A new event landed on @p target's queue. If another CPU is
     * currently executing with a stale yield threshold beyond @p when,
     * pull it in so the wake is serviced promptly (otherwise a CPU
     * spin-waiting on the target could run far past the wake time).
     */
    void noteEventScheduled(CpuBase &target, Cycles when);

    /**
     * This machine's private invariant engine, or null when the check
     * layer is not linked in (or compiled out with KVMARM_INVARIANTS=OFF).
     * A machine is single-threaded by construction, so everything that
     * runs in machine context may feed this engine without locks via
     * KVMARM_CHECK_ON(). Owned by the machine; dies with it.
     *
     * The sim layer cannot link against the check layer (the dependency
     * points the other way), so creation and destruction go through a
     * factory the check layer registers at static initialization.
     */
    check::InvariantEngine *checkEngine() const { return checkEngine_.get(); }

    using CheckEngineCreate = check::InvariantEngine *(*)();
    using CheckEngineDestroy = void (*)(check::InvariantEngine *);
    using CheckEnginePublish = void (*)(check::InvariantEngine *);

    /** Called once by the check layer's static initializer; machines
     *  constructed while no factory is registered get a null engine.
     *  @p publish is the epoch hook: it snapshots an engine's live
     *  violation counter into its published counter (DESIGN.md §4.11). */
    static void registerCheckEngineFactory(CheckEngineCreate create,
                                           CheckEngineDestroy destroy,
                                           CheckEnginePublish publish);

    /**
     * Publish this machine's invariant-violation counter at a quiesce
     * boundary. Runs on the machine's own execution thread with the
     * machine quiesced, so the engine's lock-free publish is race-free;
     * the check facade's beginEpoch()/aggregateEpoch() then aggregate the
     * published values across the fleet without stopping any machine.
     * Called automatically at every run() exit and after a snapshot
     * restore (via KVMARM_CHECK_PUBLISH); no-op when no check layer is
     * linked. Job bodies that quiesce a machine by other means may call
     * it directly.
     */
    void publishCheckEpoch();

    /// @name Snapshot/clone support
    ///
    /// Components register in construction order; because machine
    /// construction is deterministic, the origin machine and a freshly
    /// constructed clone register identical sequences, which is what lets
    /// restoreSnapshot pair records with components positionally.
    /// @{

    /** Register a component for snapshot participation (construction). */
    void registerSnapshottable(Snapshottable *s);

    /** Remove a component (destruction; order need not match). */
    void unregisterSnapshottable(Snapshottable *s);

    /**
     * Capture the full machine state. The machine must be quiesced (not
     * inside run(); all fibers finished). The returned snapshot is
     * immutable and safe to share across host threads — any number of
     * machines on any workers may restore from it concurrently.
     */
    std::shared_ptr<const MachineSnapshot> takeSnapshot();

    /**
     * Restore @p snap into this machine. The machine must have the same
     * component shape as the snapshot origin (same config => same
     * registration sequence) and must be quiesced. Three passes:
     * restoreState on every component in registration order, then
     * snapshotRebind (callback/pointer fix-ups), then snapshotVerify.
     */
    void restoreSnapshot(const MachineSnapshot &snap);

    /**
     * Block takeSnapshot() while some component holds externally visible
     * state a positional record set cannot capture (e.g. a live inter-VM
     * ring endpoint with in-flight messages). takeSnapshot() fatals with
     * every registered reason rather than silently dropping that state.
     * Returns a token for removeSnapshotBlocker().
     */
    std::uint64_t addSnapshotBlocker(std::string reason);
    void removeSnapshotBlocker(std::uint64_t token);
    /// @}

  protected:
    /** Derived machines register their CPUs in id order. */
    void registerCpu(CpuBase *cpu) { cpusBase_.push_back(cpu); }

    std::vector<CpuBase *> cpusBase_;
    Cycles quantum_ = 500;
    bool stopRequested_ = false;
    CpuBase *running_ = nullptr;

  private:
    /** Run loop specialization for machines with one CPU: no second-best
     *  clock exists, so skip the scheduler scan and resume the lone fiber
     *  with the horizon as its yield threshold. */
    void runSingle(Cycles haltAt);

    /** The general scheduler scan for multi-CPU machines. Both loops exit
     *  back through run(), which publishes the check epoch. */
    void runMulti(Cycles haltAt);

    std::vector<Snapshottable *> snapshottables_;
    std::vector<std::pair<std::uint64_t, std::string>> snapshotBlockers_;
    std::uint64_t nextBlockerToken_ = 1;
    /** Deletes through the registered destroy hook (the sim layer never
     *  sees the complete InvariantEngine type). */
    struct CheckEngineDeleter
    {
        void operator()(check::InvariantEngine *eng) const;
    };

    std::unique_ptr<check::InvariantEngine, CheckEngineDeleter> checkEngine_;
};

} // namespace kvmarm

/**
 * Epoch-publish hook used at machine quiesce boundaries, part of the
 * KVMARM_CHECK hook-macro family (check/invariants.hh): it routes through
 * the publish function the check layer registered alongside the engine
 * factory, and degrades to a no-op when no check layer is linked. A macro
 * (rather than a bare method call) so domlint's hook-coverage rule can
 * hold the quiesce-boundary sites to the same manifest discipline as the
 * event hook sites.
 */
#define KVMARM_CHECK_PUBLISH(machine) ((machine).publishCheckEpoch())

#endif // KVMARM_SIM_MACHINE_BASE_HH
