/**
 * @file
 * Deterministic cross-machine message channel + conservative pacer.
 *
 * A RingChannel connects two machines (one Endpoint each). Messages are
 * cycle-stamped at the sender and delivered at send_cycle + latency; the
 * channel never invents ordering — delivery order is (deliver_cycle, send
 * seq), both of which are pure functions of simulated execution.
 *
 * RingPacer turns that into a conservative time-window protocol (DESIGN.md
 * §4.10): each machine advances in fixed windows of W = min attached
 * latency. Before executing window [h, h+W) it requires every open peer's
 * committed horizon to satisfy peer_h + latency >= h+W — which guarantees
 * every message deliverable inside the window has already been sent — then
 * pulls exactly that window's deliveries, runs the machine to h+W, and
 * publishes the new horizon. Because the pacer pauses at every boundary
 * unconditionally, a blocked ("parked") step differs from an unblocked one
 * only in wall-clock time, never in simulated behaviour: two communicating
 * machines on different fleet workers stay bit-identical to serial
 * round-robin execution.
 *
 * All Endpoint/pacer machine-side calls happen on whichever host thread is
 * currently running that machine's job (machines stay single-threaded by
 * construction); the channel's shared state is the one mutexed crossing
 * point between the two machines' threads.
 */

#ifndef KVMARM_SIM_RING_CHANNEL_HH
#define KVMARM_SIM_RING_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/thread_annotations.hh"
#include "sim/types.hh"

namespace kvmarm {

class MachineBase;

/** One cycle-stamped payload crossing a RingChannel. */
struct RingMessage
{
    Cycles sendCycle;
    Cycles deliverCycle; //!< sendCycle + channel latency
    std::uint64_t seq;   //!< per-direction send order, from 0
    std::vector<std::uint8_t> payload;
};

/**
 * Bidirectional channel between two machines with a fixed delivery
 * latency (the conservative lookahead). Thread-safe: the two sides may be
 * driven from different host threads.
 */
class RingChannel
{
  public:
    /** fatal() if @p latency is zero — zero lookahead admits no window in
     *  which the peers can run concurrently, so the config is rejected
     *  outright rather than silently serializing. */
    RingChannel(std::string name, Cycles latency);
    RingChannel(const RingChannel &) = delete;
    RingChannel &operator=(const RingChannel &) = delete;

    const std::string &name() const { return name_; }
    Cycles latency() const { return latency_; }

    /** What a pacer needs to know about its peer, read atomically. */
    struct PeerView
    {
        Cycles horizon = 0;       //!< peer's committed send horizon
        bool closed = false;      //!< peer finished cleanly
        bool aborted = false;     //!< peer terminated abnormally
        bool idleForever = false; //!< peer idle with no pending events
        bool inboundPending = false;  //!< undelivered peer->us messages
        bool outboundPending = false; //!< undelivered us->peer messages
        std::string abortReason;
    };

    /** One machine's attachment point. Obtain via end(0) / end(1). */
    class Endpoint
    {
      public:
        /**
         * Send @p payload from this side at cycle @p now (machine
         * context). Returns the per-direction sequence number. fatal() if
         * the peer endpoint is closed or aborted — a doorbell rung at a
         * torn-down peer is a protocol error, never a silent drop.
         */
        std::uint64_t send(Cycles now, std::vector<std::uint8_t> payload);

        /** Delivery callback, invoked once per message in (deliverCycle,
         *  seq) order during the owning pacer's window pulls. */
        void setReceiver(std::function<void(const RingMessage &)> rx);

        /** Invoked (without the channel lock) whenever the peer publishes
         *  progress, closes, or aborts — the fleet wake hook. */
        void setWakeHook(std::function<void()> wake);

        RingChannel &channel() { return *ch_; }
        unsigned side() const { return side_; }

      private:
        friend class RingChannel;
        RingChannel *ch_ = nullptr;
        unsigned side_ = 0;
    };

    Endpoint &end(unsigned side);

    /// @name Pacer protocol (any thread)
    /// @{

    /** Commit that @p side will never again send below @p horizon, and
     *  whether its machine is idle with no pending events. Wakes the
     *  peer. */
    void publish(unsigned side, Cycles horizon, bool idleForever);

    /** Deliver every message destined for @p side with deliverCycle in
     *  [from, to) to its receiver, in (deliverCycle, seq) order. fatal()
     *  if a message below @p from is found (window protocol violation). */
    void pull(unsigned side, Cycles from, Cycles to);

    /** Atomically observe the peer of @p side. */
    PeerView peerView(unsigned side) const;

    /** Mark @p side finished cleanly; wakes the peer. Idempotent. */
    void close(unsigned side);

    /** Mark @p side terminated abnormally with @p reason; wakes the peer.
     *  No-op after close() — a cleanly finished side stays clean. */
    void abort(unsigned side, std::string reason);
    /// @}

    /** Messages sent by @p side so far (monotonic; for tests/benches). */
    std::uint64_t messagesSent(unsigned side) const;

  private:
    struct Side
    {
        Cycles horizon = 0;
        bool closed = false;
        bool aborted = false;
        bool idleForever = false;
        std::string abortReason;
        std::uint64_t sendSeq = 0;
        /** Messages sent by this side, sorted by (deliverCycle, seq). */
        std::deque<RingMessage> outbox;
        std::function<void(const RingMessage &)> receiver;
        std::function<void()> wake;
    };

    std::uint64_t sendFrom(unsigned side, Cycles now,
                           std::vector<std::uint8_t> payload);

    /** Copy the peer's wake hook under the lock, run it after unlock. */
    std::function<void()> wakeHookOf(unsigned side) const
        KVMARM_REQUIRES(mutex_);

    std::string name_;
    Cycles latency_;
    Endpoint ends_[2];
    mutable Mutex mutex_;
    Side sides_[2] KVMARM_GUARDED_BY(mutex_);
};

/**
 * Drives one machine through the conservative window protocol. Resumable:
 * step() advances the machine window by window until the machine finishes
 * (Done) or a peer's horizon blocks the next window (Blocked — re-step
 * after a wake hook fires). Designed as a Fleet resumable job body.
 *
 * While any endpoint is attached the machine carries a snapshot blocker:
 * in-flight channel messages live outside the machine's snapshottable
 * component set, so takeSnapshot() fatals with a ring diagnostic instead
 * of silently dropping them.
 */
class RingPacer
{
  public:
    enum class Step
    {
        Done,
        Blocked,
    };

    RingPacer(MachineBase &machine, std::string name);
    ~RingPacer();
    RingPacer(const RingPacer &) = delete;
    RingPacer &operator=(const RingPacer &) = delete;

    /** Attach a channel endpoint this pacer paces. All endpoints must be
     *  attached before the first step(). */
    void attach(RingChannel::Endpoint &ep);

    /** Forwarded to every attached endpoint (peer-progress wake). */
    void setWakeHook(std::function<void()> wake);

    /**
     * Advance until blocked or done. On machine completion, closes every
     * endpoint. On abnormal termination (exception out of the machine, a
     * peer abort, or rendezvous deadlock) aborts every endpoint so peers
     * unblock with an error, then rethrows/fatals.
     */
    Step step();

    /** Committed horizon (cycles) of this pacer's machine. */
    Cycles horizon() const { return horizon_; }

    /** Windows executed so far (for tests). */
    std::uint64_t windowsRun() const { return windowsRun_; }

  private:
    void closeAll();
    void abortAll(const std::string &reason);

    MachineBase &machine_;
    std::string name_;
    std::vector<RingChannel::Endpoint *> eps_;
    std::vector<std::uint64_t> blockerTokens_;
    Cycles window_ = 0;
    Cycles horizon_ = 0;
    std::uint64_t windowsRun_ = 0;
    bool done_ = false;
};

} // namespace kvmarm

#endif // KVMARM_SIM_RING_CHANNEL_HH
