/**
 * @file
 * A per-CPU discrete event queue keyed by cycle time.
 *
 * Each simulated CPU owns one queue; events scheduled by other CPUs (IPI
 * deliveries, device completions) land here and are serviced when the owning
 * CPU's clock passes the event time, or immediately when the CPU idles and
 * fast-forwards its clock.
 */

#ifndef KVMARM_SIM_EVENT_QUEUE_HH
#define KVMARM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace kvmarm {

/** FIFO-stable priority queue of cycle-stamped callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Schedule @p cb to run at absolute cycle @p when. Returns an id. */
    std::uint64_t schedule(Cycles when, Callback cb);

    /** Invoked on every schedule(); the owning CPU uses this to tell the
     *  machine scheduler about cross-CPU wake events. */
    std::function<void(Cycles)> onSchedule;

    /** Cancel a previously scheduled event. Returns false if already run. */
    bool cancel(std::uint64_t id);

    /** Cycle of the earliest pending event, or kNoDeadline if empty. */
    Cycles nextEventTime() const;

    /** Run every event with time <= @p now. Returns number run. */
    unsigned runDue(Cycles now);

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return live_; }

  private:
    struct Event
    {
        Cycles when;
        std::uint64_t seq; //!< schedule order, for FIFO stability
        std::uint64_t id;
        Callback cb;
        bool cancelled = false;
    };

    struct Later
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    std::vector<Event *> heap_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextId_ = 1;
    std::size_t live_ = 0;
};

} // namespace kvmarm

#endif // KVMARM_SIM_EVENT_QUEUE_HH
