/**
 * @file
 * A per-CPU discrete event queue keyed by cycle time.
 *
 * Each simulated CPU owns one queue; events scheduled by other CPUs (IPI
 * deliveries, device completions) land here and are serviced when the owning
 * CPU's clock passes the event time, or immediately when the CPU idles and
 * fast-forwards its clock.
 *
 * Event objects are pooled per queue: runDue()/restoreState() recycle them
 * onto a free list that schedule() pops before touching the heap allocator,
 * so steady-state simulation performs no event allocations.
 */

#ifndef KVMARM_SIM_EVENT_QUEUE_HH
#define KVMARM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace kvmarm {

class SnapshotReader;
class SnapshotWriter;

/** FIFO-stable priority queue of cycle-stamped callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * What an event's callback does, for snapshot rehydration. Callbacks
     * are closures and cannot be serialized; a restored Generic event
     * starts with a null callback that its owning component must claim()
     * during its rebind pass. Kick events are known no-ops and rehydrate
     * themselves.
     */
    enum class Kind : std::uint8_t
    {
        Generic = 0,
        Kick = 1,
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Schedule @p cb to run at absolute cycle @p when. Returns an id.
     *
     * Kick events (cross-CPU wakes, known no-op callbacks) are coalesced:
     * if a live Kick is already pending at @p when, no second Event is
     * created and the existing event's id is returned. onSchedule still
     * fires for the coalesced call — the machine scheduler's wake
     * bookkeeping must see every kick request, or yield thresholds (and
     * therefore interleavings) would depend on coalescing.
     */
    std::uint64_t schedule(Cycles when, Callback cb, Kind kind = Kind::Generic);

    /** Invoked on every schedule(); the owning CPU uses this to tell the
     *  machine scheduler about cross-CPU wake events. */
    std::function<void(Cycles)> onSchedule;

    /** Cancel a previously scheduled event. Returns false if already run. */
    bool cancel(std::uint64_t id);

    /** Cycle of the earliest pending event, or kNoDeadline if empty. */
    Cycles nextEventTime() const;

    /** Run every event with time <= @p now. Returns number run. */
    unsigned runDue(Cycles now);

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return live_; }

    /** Event structs allocated from the heap (pool misses) so far. */
    std::uint64_t heapAllocs() const { return heapAllocs_; }

    /** Duplicate same-cycle Kick schedules elided so far. */
    std::uint64_t kicksCoalesced() const { return kicksCoalesced_; }

    /// @name Snapshot support (CpuBase drives these)
    /// @{

    /** Serialize live events (time, order, id, kind) plus the id/seq
     *  counters so restored events keep their exact FIFO tie-breaks. */
    void saveState(SnapshotWriter &w) const;

    /**
     * Drop everything pending and recreate the saved events. Kick events
     * come back runnable; Generic events come back with null callbacks
     * awaiting claim(). onSchedule is not fired (the machine is quiesced).
     */
    void restoreState(SnapshotReader &r);

    /** Re-attach the callback of restored event @p id. fatal() if the id
     *  is unknown or already claimed. */
    void claim(std::uint64_t id, Callback cb);

    /** fatal() if any restored Generic event is still unclaimed. */
    void verifyAllClaimed() const;
    /// @}

  private:
    struct Event
    {
        Cycles when;
        std::uint64_t seq; //!< schedule order, for FIFO stability
        std::uint64_t id;
        Kind kind;
        Callback cb;
        bool cancelled = false;
    };

    struct Later
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    struct PendingKick
    {
        Cycles when;
        std::uint64_t id;
    };

    Event *allocEvent();
    void recycle(Event *ev);
    void forgetKick(std::uint64_t id);

    std::vector<Event *> heap_;
    std::vector<Event *> pool_; //!< recycled Event structs, ready for reuse
    std::vector<PendingKick> pendingKicks_; //!< live Kicks, for coalescing
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextId_ = 1;
    std::size_t live_ = 0;
    std::uint64_t heapAllocs_ = 0;
    std::uint64_t kicksCoalesced_ = 0;
};

} // namespace kvmarm

#endif // KVMARM_SIM_EVENT_QUEUE_HH
