#include "sim/fiber.hh"

#include "sim/logging.hh"

// ThreadSanitizer cannot see through swapcontext's raw stack switch: it
// would keep attributing execution to the old stack and report spurious
// races (or lose real ones). Its fiber API exists for exactly this kind of
// user-level scheduler, so under TSan every context switch is announced
// with __tsan_switch_to_fiber immediately before the swapcontext.
#if defined(__SANITIZE_THREAD__)
#define KVMARM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KVMARM_TSAN_FIBERS 1
#endif
#endif
#ifndef KVMARM_TSAN_FIBERS
#define KVMARM_TSAN_FIBERS 0
#endif

#if KVMARM_TSAN_FIBERS
extern "C" {
void *__tsan_get_current_fiber(void);
void *__tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void *fiber);
void __tsan_switch_to_fiber(void *fiber, unsigned flags);
}
#endif

namespace kvmarm {

namespace {
// domlint: allow(ownership-static) — per-thread fiber context: each worker thread runs one machine, so this is machine-owned by construction
thread_local Fiber *currentFiber = nullptr;
} // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_size)
    : fn_(std::move(fn)), stack_(stack_size)
{
}

Fiber::~Fiber()
{
#if KVMARM_TSAN_FIBERS
    // Destruction happens from the scheduler context, never from inside
    // the fiber itself, so this is never the current TSan fiber (this
    // also covers fibers abandoned mid-run by MachineBase::requestStop).
    if (tsanFiber_)
        __tsan_destroy_fiber(tsanFiber_);
#endif
}

Fiber *
Fiber::current()
{
    return currentFiber;
}

void
Fiber::trampoline()
{
    Fiber *self = currentFiber;
    self->fn_();
    self->finished_ = true;
    // Return to the last resumer; the context set up by swapcontext in
    // resume() is restored via uc_link being unavailable with this pattern,
    // so swap back explicitly.
#if KVMARM_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanReturn_, 0);
#endif
    swapcontext(&self->ctx_, &self->returnCtx_);
    panic("Fiber: resumed a finished fiber");
}

void
Fiber::resume()
{
    if (finished_)
        panic("Fiber::resume on finished fiber");
    if (currentFiber)
        panic("Fiber::resume from inside a fiber (no nesting)");

    Fiber *prev = currentFiber;
    currentFiber = this;

    if (!started_) {
        started_ = true;
        getcontext(&ctx_);
        ctx_.uc_stack.ss_sp = stack_.data();
        ctx_.uc_stack.ss_size = stack_.size();
        ctx_.uc_link = nullptr;
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                    0);
    }
#if KVMARM_TSAN_FIBERS
    if (!tsanFiber_)
        tsanFiber_ = __tsan_create_fiber(0);
    tsanReturn_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsanFiber_, 0);
#endif
    swapcontext(&returnCtx_, &ctx_);
    currentFiber = prev;
}

void
Fiber::yield()
{
    Fiber *self = currentFiber;
    if (!self)
        panic("Fiber::yield outside any fiber");
#if KVMARM_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanReturn_, 0);
#endif
    swapcontext(&self->ctx_, &self->returnCtx_);
}

} // namespace kvmarm
