#include "sim/fiber.hh"

#include "sim/logging.hh"

namespace kvmarm {

namespace {
thread_local Fiber *currentFiber = nullptr;
} // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_size)
    : fn_(std::move(fn)), stack_(stack_size)
{
}

Fiber::~Fiber() = default;

Fiber *
Fiber::current()
{
    return currentFiber;
}

void
Fiber::trampoline()
{
    Fiber *self = currentFiber;
    self->fn_();
    self->finished_ = true;
    // Return to the last resumer; the context set up by swapcontext in
    // resume() is restored via uc_link being unavailable with this pattern,
    // so swap back explicitly.
    swapcontext(&self->ctx_, &self->returnCtx_);
    panic("Fiber: resumed a finished fiber");
}

void
Fiber::resume()
{
    if (finished_)
        panic("Fiber::resume on finished fiber");
    if (currentFiber)
        panic("Fiber::resume from inside a fiber (no nesting)");

    Fiber *prev = currentFiber;
    currentFiber = this;

    if (!started_) {
        started_ = true;
        getcontext(&ctx_);
        ctx_.uc_stack.ss_sp = stack_.data();
        ctx_.uc_stack.ss_size = stack_.size();
        ctx_.uc_link = nullptr;
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                    0);
    }
    swapcontext(&returnCtx_, &ctx_);
    currentFiber = prev;
}

void
Fiber::yield()
{
    Fiber *self = currentFiber;
    if (!self)
        panic("Fiber::yield outside any fiber");
    swapcontext(&self->ctx_, &self->returnCtx_);
}

} // namespace kvmarm
