/**
 * @file
 * A minimal bare-metal hypervisor that lives entirely in Hyp mode — the
 * design point the paper contrasts split-mode virtualization against
 * (§3.1, §7, Xen-style). Because there is no host kernel to return to,
 * traps it can handle itself need no world switch (no double trap); the
 * price is that it must bring its own memory allocator (static VM
 * partitioning here), its own scheduler (none — one VM per core), and
 * every device driver it wants (§3: "for every new SoC ... the developers
 * must implement a new serial device driver in the core hypervisor").
 *
 * Used by bench/ablation_split_mode to quantify what the split actually
 * costs and buys.
 */

#ifndef KVMARM_BAREMETAL_BAREMETAL_HV_HH
#define KVMARM_BAREMETAL_BAREMETAL_HV_HH

#include <functional>
#include <vector>

#include "arm/machine.hh"
#include "arm/pagetable.hh"
#include "arm/vectors.hh"

namespace kvmarm::baremetal {

/// Hypercall numbers of the bare-metal hypervisor.
namespace bmhvc {
inline constexpr std::uint32_t kTestHypercall = 0xB3000001;
inline constexpr std::uint32_t kStopGuest = 0xB3000002;
} // namespace bmhvc

/** The Hyp-resident hypervisor; boots directly from the loader. */
class BareMetalHv : public arm::HypVectors
{
  public:
    explicit BareMetalHv(arm::ArmMachine &machine);

    /**
     * Bring up the hypervisor on @p cpu: install the Hyp vectors, build
     * the (statically partitioned) Stage-2 tables and the Hyp Stage-1
     * tables from the hypervisor's own bump allocator.
     */
    void boot(arm::ArmCpu &cpu);

    /** Statically assign a guest RAM partition (one per VM). */
    void createGuest(Addr ipa_ram_size);

    /**
     * Enter the guest on @p cpu and run @p guest_main inside it. Traps
     * the hypervisor can dispose of are handled in Hyp mode without any
     * world switch.
     */
    void runGuest(arm::ArmCpu &cpu,
                  const std::function<void(arm::ArmCpu &)> &guest_main,
                  arm::OsVectors *guest_os);

    /** In-hypervisor emulated test device (for the I/O ablation). */
    static constexpr Addr kHypDevBase = 0x0B000000;

    /// @name arm::HypVectors
    /// @{
    void hypTrap(arm::ArmCpu &cpu, const arm::Hsr &hsr) override;
    const char *name() const override { return "baremetal-hv"; }
    /// @}

    StatGroup stats;

  private:
    Addr allocPage();
    void handleStage2Fault(arm::ArmCpu &cpu, const arm::Hsr &hsr);

    arm::ArmMachine &machine_;
    Addr bumpNext_ = 0; //!< the hypervisor's own static allocator
    Addr guestRamSize_ = 0;
    Addr guestRamPa_ = 0; //!< static partition base
    std::unique_ptr<arm::PageTableEditor> s2Editor_;
    Addr s2Root_ = 0;
    Addr hypRoot_ = 0;
    bool stopRequested_ = false;
};

} // namespace kvmarm::baremetal

#endif // KVMARM_BAREMETAL_BAREMETAL_HV_HH
