#include "baremetal/baremetal_hv.hh"

#include "sim/logging.hh"

namespace kvmarm::baremetal {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::ExcClass;
using arm::Hsr;
using arm::Mode;
using arm::Perms;

BareMetalHv::BareMetalHv(ArmMachine &machine) : machine_(machine)
{
}

Addr
BareMetalHv::allocPage()
{
    // Static hypervisor memory: a bump allocator over the top of RAM.
    // This *is* the "entire new memory allocation subsystem" the paper
    // says a bare-metal design must write (§3.3) — the minimal version.
    if (bumpNext_ == 0)
        bumpNext_ = machine_.ram().base() + machine_.ram().size();
    bumpNext_ -= kPageSize;
    machine_.ram().zeroPage(bumpNext_);
    return bumpNext_;
}

void
BareMetalHv::boot(ArmCpu &cpu)
{
    cpu.setMode(Mode::Hyp);
    cpu.setHypVectors(this);

    if (!hypRoot_) {
        arm::PageTableEditor hyp_editor(
            arm::PtFormat::HypLpae,
            [this](Addr pa) { return machine_.ram().read(pa, 8); },
            [this](Addr pa, std::uint64_t v) {
                machine_.ram().write(pa, v, 8);
            },
            [this] { return allocPage(); });
        hypRoot_ = hyp_editor.newRoot();
        Perms mem;
        mem.user = false;
        for (Addr off = 0; off < machine_.ram().size();
             off += arm::kBlock2MSize) {
            Addr pa = ArmMachine::kRamBase + off;
            hyp_editor.mapBlock2M(hypRoot_, pa, pa, mem);
        }
        Perms dev;
        dev.user = false;
        dev.exec = false;
        dev.device = true;
        hyp_editor.map(hypRoot_, ArmMachine::kGicdBase,
                       ArmMachine::kGicdBase, dev);
        hyp_editor.map(hypRoot_, ArmMachine::kGiccBase,
                       ArmMachine::kGiccBase, dev);
        if (machine_.config().hwVgic) {
            hyp_editor.map(hypRoot_, ArmMachine::kGichBase,
                           ArmMachine::kGichBase, dev);
            hyp_editor.map(hypRoot_, ArmMachine::kGicvBase,
                           ArmMachine::kGicvBase, dev);
        }
    }
    cpu.hyp().httbr = hypRoot_;
    cpu.hyp().hsctlrM = true;

    // The hypervisor owns the GIC outright.
    cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);
    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
}

void
BareMetalHv::createGuest(Addr ipa_ram_size)
{
    if (!s2Editor_) {
        s2Editor_ = std::make_unique<arm::PageTableEditor>(
            arm::PtFormat::Stage2,
            [this](Addr pa) { return machine_.ram().read(pa, 8); },
            [this](Addr pa, std::uint64_t v) {
                machine_.ram().write(pa, v, 8);
            },
            [this] { return allocPage(); });
    }
    s2Root_ = s2Editor_->newRoot();
    guestRamSize_ = ipa_ram_size;

    // Static allocation: carve the partition up front and map it eagerly
    // with 2 MiB pages would be nicer; page granularity keeps the editor
    // simple and the point identical.
    guestRamPa_ = ArmMachine::kRamBase + 64 * kMiB;
    Perms p;
    p.user = true;
    for (Addr off = 0; off < ipa_ram_size; off += kPageSize) {
        s2Editor_->map(s2Root_, ArmMachine::kRamBase + off,
                       guestRamPa_ + off, p);
    }
    if (machine_.config().hwVgic) {
        Perms dev;
        dev.user = true;
        dev.exec = false;
        dev.device = true;
        s2Editor_->map(s2Root_, ArmMachine::kGiccBase,
                       ArmMachine::kGicvBase, dev);
    }
}

void
BareMetalHv::runGuest(ArmCpu &cpu,
                      const std::function<void(ArmCpu &)> &guest_main,
                      arm::OsVectors *guest_os)
{
    const auto &cm = machine_.cost();

    // Enter the guest: configure traps + Stage-2 and drop to kernel mode.
    // There is no host context to save — the hypervisor's own state lives
    // in Hyp-banked registers (paper §2).
    arm::HypState &h = cpu.hyp();
    h.hcr.vm = true;
    h.hcr.imo = true;
    h.hcr.fmo = true;
    h.hcr.twi = true;
    h.hcr.tsc = true;
    h.hcr.tac = true;
    h.hcr.swio = true;
    h.hcr.tidcp = true;
    h.vttbr = s2Root_ | (1ull << 48);
    cpu.compute(arm::kWorldSwitchTrapConfigWrites * cm.ctrlRegAccess +
                cm.stage2Serialize);
    cpu.setOsVectors(guest_os);
    cpu.setMode(Mode::Svc);
    cpu.setIrqMasked(false);

    guest_main(cpu);
    cpu.hvc(bmhvc::kStopGuest);
}

void
BareMetalHv::handleStage2Fault(ArmCpu &cpu, const Hsr &hsr)
{
    Addr ipa = hsr.hpfar | (hsr.hdfar & (kPageSize - 1));
    if (ipa >= kHypDevBase && ipa < kHypDevBase + 0x1000) {
        // In-hypervisor device emulation: no world switch, no kernel.
        stats.counter("bm.iodev").inc();
        cpu.compute(300);
        cpu.completeMmio(0);
        return;
    }
    panic("baremetal-hv: unexpected Stage-2 fault at %#llx (static "
          "allocation maps all guest RAM up front)",
          static_cast<unsigned long long>(ipa));
}

void
BareMetalHv::hypTrap(ArmCpu &cpu, const Hsr &hsr)
{
    const auto &cm = machine_.cost();
    // The guest's trapped registers the handler clobbers are spilled to
    // the Hyp stack — a dozen registers, not the full Table 1 context.
    cpu.compute(12 * cm.gpRegSave);

    switch (hsr.ec) {
      case ExcClass::Hvc:
        if (hsr.iss == bmhvc::kTestHypercall) {
            stats.counter("bm.hypercall").inc();
            cpu.compute(140); // dispatch + handler
            return;
        }
        if (hsr.iss == bmhvc::kStopGuest) {
            cpu.hyp().hcr.vm = false;
            cpu.setHypReturn(Mode::Hyp, true);
            return;
        }
        return;
      case ExcClass::DataAbort:
        handleStage2Fault(cpu, hsr);
        return;
      case ExcClass::Wfi:
        stats.counter("bm.wfi").inc();
        // One VM per core: idle in the hypervisor until an interrupt.
        cpu.waitUntil([&] { return cpu.interruptPending(); });
        return;
      case ExcClass::Irq:
        // Hypervisor-owned interrupt: ACK/EOI right here in Hyp mode.
        stats.counter("bm.irq").inc();
        {
            std::uint32_t iar = static_cast<std::uint32_t>(cpu.memRead(
                ArmMachine::kGiccBase + arm::gicc::IAR, 4));
            if ((iar & 0x3FF) != arm::kSpuriousIrq) {
                cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR,
                             iar);
            }
        }
        return;
      default:
        stats.counter("bm.emul").inc();
        cpu.compute(300); // in-hypervisor emulation
        cpu.setTrappedReadValue(0);
        return;
    }
}

} // namespace kvmarm::baremetal
