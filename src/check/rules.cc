#include "check/rules.hh"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "arm/gic.hh"
#include "arm/vgic.hh"
#include "sim/logging.hh"

namespace kvmarm::check {

namespace {

using arm::Mode;

/** (machine/Mm, id) pair keying per-CPU or per-PA shadow state, so two
 *  machines in one process (migration tests) cannot alias. */
using DomainCpu = std::pair<const void *, CpuId>;
using DomainPa = std::pair<const void *, Addr>;

/**
 * Rule 1 — privilege: the registers backing split-mode operation (HCR,
 * VTTBR, HSR, HTTBR, Hyp vectors...) exist only in Hyp mode; any software
 * access from PL0/PL1 means the lowvisor/highvisor boundary leaked
 * (paper §3.2).
 */
class PrivilegeRule : public InvariantRule
{
  public:
    const char *name() const override { return "privilege"; }

    void
    onHypAccess(InvariantEngine &eng, const HypAccessEvent &ev) override
    {
        if (ev.mode != Mode::Hyp) {
            eng.report(*this,
                       strfmt("cpu%u: Hyp-only register '%s' accessed from "
                              "%s mode",
                              ev.cpu, ev.reg, arm::modeName(ev.mode)));
        }
    }
};

/**
 * Rule 2 — ws-pairing: a per-switch ledger proving the world switch moves
 * Table 1's state symmetrically. Every state group saved for the host on
 * toVm must be restored on toHost and vice versa; lazily switched state
 * (VFP via HCPTR traps) joins the ledger whenever its deferred transfer
 * actually happens (paper §3.2).
 */
class WsPairingRule : public InvariantRule
{
  public:
    const char *name() const override { return "ws-pairing"; }

    void reset() override { epochs_.clear(); }

    void
    onWorldSwitch(InvariantEngine &eng, const WorldSwitchEvent &ev) override
    {
        Epoch &ep = epochs_[{ev.domain, ev.cpu}];
        if (ev.dir == SwitchDir::ToVm && ev.begin) {
            if (ep.open) {
                eng.report(*this,
                           strfmt("cpu%u: toVm entered twice with no "
                                  "intervening toHost",
                                  ev.cpu));
            }
            ep = Epoch{};
            ep.open = true;
            return;
        }
        if (ev.dir == SwitchDir::ToVm && !ev.begin) {
            // Guest entry: the minimal Table 1 set must have moved.
            requireCls(eng, ev.cpu, ep.savedHost, StateClass::Gp,
                       "host gp registers not saved before guest entry");
            requireCls(eng, ev.cpu, ep.savedHost, StateClass::Ctrl,
                       "host ctrl registers not saved before guest entry");
            requireCls(eng, ev.cpu, ep.restoredGuest, StateClass::Gp,
                       "guest gp registers not restored before guest entry");
            requireCls(eng, ev.cpu, ep.restoredGuest, StateClass::Ctrl,
                       "guest ctrl registers not restored before guest "
                       "entry");
            return;
        }
        if (ev.dir == SwitchDir::ToHost && !ev.begin && ep.open) {
            checkSymmetry(eng, ev.cpu, ep);
            ep.open = false;
        }
    }

    void
    onStateTransfer(InvariantEngine &eng,
                    const StateTransferEvent &ev) override
    {
        (void)eng;
        auto it = epochs_.find({ev.domain, ev.cpu});
        if (it == epochs_.end() || !it->second.open)
            return; // transfer outside any switch epoch: unit-test traffic
        Epoch &ep = it->second;
        switch (ev.kind) {
          case Xfer::SaveHost:
            ep.savedHost.insert(ev.cls);
            break;
          case Xfer::RestoreGuest:
            ep.restoredGuest.insert(ev.cls);
            break;
          case Xfer::SaveGuest:
            ep.savedGuest.insert(ev.cls);
            break;
          case Xfer::RestoreHost:
            ep.restoredHost.insert(ev.cls);
            break;
        }
    }

  private:
    struct Epoch
    {
        bool open = false;
        std::set<StateClass> savedHost;
        std::set<StateClass> restoredGuest;
        std::set<StateClass> savedGuest;
        std::set<StateClass> restoredHost;
    };

    void
    requireCls(InvariantEngine &eng, CpuId cpu,
               const std::set<StateClass> &set, StateClass cls,
               const char *what)
    {
        if (!set.count(cls))
            eng.report(*this, strfmt("cpu%u: %s", cpu, what));
    }

    void
    checkSymmetry(InvariantEngine &eng, CpuId cpu, const Epoch &ep)
    {
        diff(eng, cpu, ep.savedHost, ep.restoredHost,
             "saved for the host in toVm but never restored in toHost");
        diff(eng, cpu, ep.restoredHost, ep.savedHost,
             "restored for the host in toHost but never saved in toVm");
        diff(eng, cpu, ep.restoredGuest, ep.savedGuest,
             "loaded for the guest but never saved back on exit");
        diff(eng, cpu, ep.savedGuest, ep.restoredGuest,
             "saved for the guest on exit but never loaded on entry");
    }

    void
    diff(InvariantEngine &eng, CpuId cpu, const std::set<StateClass> &a,
         const std::set<StateClass> &b, const char *what)
    {
        for (StateClass cls : a) {
            if (!b.count(cls)) {
                eng.report(*this, strfmt("cpu%u: %s state %s", cpu,
                                         stateClassName(cls), what));
            }
        }
    }

    std::map<DomainCpu, Epoch> epochs_;
};

/**
 * Rule 3 — stage2-isolation: Stage-2 tables are the VM's only window onto
 * physical memory (paper §3.3), so no VM may ever map a physical page
 * owned by another VM as RAM, nor any page of the protected hypervisor
 * region (Hyp Stage-1 tables, Stage-2 table pages).
 */
class Stage2IsolationRule : public InvariantRule
{
  public:
    const char *name() const override { return "stage2-isolation"; }

    void
    reset() override
    {
        ramOwner_.clear();
        protected_.clear();
    }

    void
    onStage2Update(InvariantEngine &eng, const Stage2Event &ev) override
    {
        DomainPa key{ev.domain, ev.pa};
        if (!ev.map) {
            auto it = ramOwner_.find(key);
            if (it != ramOwner_.end() && it->second == ev.vmid)
                ramOwner_.erase(it);
            return;
        }

        auto prot = protected_.find(key);
        if (prot != protected_.end()) {
            eng.report(*this,
                       strfmt("vm%u maps protected %s page pa=%#llx at "
                              "ipa=%#llx",
                              ev.vmid, prot->second,
                              static_cast<unsigned long long>(ev.pa),
                              static_cast<unsigned long long>(ev.ipa)));
            return;
        }
        auto owner = ramOwner_.find(key);
        if (owner != ramOwner_.end() && owner->second != ev.vmid) {
            eng.report(*this,
                       strfmt("vm%u maps pa=%#llx (ipa=%#llx, %s) owned by "
                              "vm%u",
                              ev.vmid, static_cast<unsigned long long>(ev.pa),
                              static_cast<unsigned long long>(ev.ipa),
                              ev.device ? "device" : "ram", owner->second));
            return;
        }
        if (!ev.device)
            ramOwner_[key] = ev.vmid;
    }

    void
    onPageGuard(InvariantEngine &eng, const PageGuardEvent &ev) override
    {
        DomainPa key{ev.domain, ev.pa};
        if (!ev.protect) {
            protected_.erase(key);
            return;
        }
        auto owner = ramOwner_.find(key);
        if (owner != ramOwner_.end()) {
            eng.report(*this,
                       strfmt("page pa=%#llx protected as '%s' while mapped "
                              "into vm%u",
                              static_cast<unsigned long long>(ev.pa), ev.tag,
                              owner->second));
        }
        protected_[key] = ev.tag;
    }

  private:
    std::map<DomainPa, std::uint16_t> ramOwner_;
    std::map<DomainPa, const char *> protected_;
};

/**
 * Rule 4 — trap-config: on guest entry the HCR trap set KVM/ARM relies on
 * (IMO/FMO/TWI/TWE/TSC/TAC/SWIO/TIDCP) must be programmed, Stage-2 must be
 * enabled with a valid VTTBR, and back in the host everything must be
 * clear again. Between switches, Stage-2 must be enabled iff a guest
 * world is executing at PL0/PL1.
 */
class TrapConfigRule : public InvariantRule
{
  public:
    const char *name() const override { return "trap-config"; }

    void reset() override { world_.clear(); }

    void
    onWorldSwitch(InvariantEngine &eng, const WorldSwitchEvent &ev) override
    {
        if (ev.begin)
            return;
        const arm::HypState &h = *ev.hyp;
        if (ev.dir == SwitchDir::ToVm) {
            requireTrap(eng, ev.cpu, h.hcr.imo, "imo");
            requireTrap(eng, ev.cpu, h.hcr.fmo, "fmo");
            requireTrap(eng, ev.cpu, h.hcr.twi, "twi");
            requireTrap(eng, ev.cpu, h.hcr.twe, "twe");
            requireTrap(eng, ev.cpu, h.hcr.tsc, "tsc");
            requireTrap(eng, ev.cpu, h.hcr.tac, "tac");
            requireTrap(eng, ev.cpu, h.hcr.swio, "swio");
            requireTrap(eng, ev.cpu, h.hcr.tidcp, "tidcp");
            if (!h.hcr.vm) {
                eng.report(*this,
                           strfmt("cpu%u: guest entry with Stage-2 "
                                  "translation disabled",
                                  ev.cpu));
            }
            if ((h.vttbr & ((1ull << 48) - 1)) == 0) {
                eng.report(*this,
                           strfmt("cpu%u: guest entry with null VTTBR",
                                  ev.cpu));
            }
            world_[{ev.domain, ev.cpu}] = World::Guest;
        } else {
            if (h.hcr.vm) {
                eng.report(*this,
                           strfmt("cpu%u: returned to host with Stage-2 "
                                  "translation still enabled",
                                  ev.cpu));
            }
            if (h.hcr.imo || h.hcr.fmo || h.hcr.twi || h.hcr.twe ||
                h.hcr.tsc || h.hcr.tac || h.hcr.swio || h.hcr.tidcp) {
                eng.report(*this,
                           strfmt("cpu%u: returned to host with guest trap "
                                  "bits still set",
                                  ev.cpu));
            }
            world_[{ev.domain, ev.cpu}] = World::Host;
        }
    }

    void
    onModeChange(InvariantEngine &eng, const ModeChangeEvent &ev) override
    {
        if (ev.to == Mode::Hyp || ev.to == Mode::Mon)
            return;
        auto it = world_.find({ev.domain, ev.cpu});
        if (it == world_.end())
            return; // no world switch seen yet (boot, bare-metal model)
        if (it->second == World::Guest && !ev.stage2On) {
            eng.report(*this,
                       strfmt("cpu%u: entered %s mode in the guest world "
                              "with Stage-2 disabled",
                              ev.cpu, arm::modeName(ev.to)));
        } else if (it->second == World::Host && ev.stage2On) {
            eng.report(*this,
                       strfmt("cpu%u: entered %s mode in the host world "
                              "with Stage-2 enabled",
                              ev.cpu, arm::modeName(ev.to)));
        }
    }

  private:
    enum class World { Host, Guest };

    void
    requireTrap(InvariantEngine &eng, CpuId cpu, bool bit, const char *nm)
    {
        if (!bit) {
            eng.report(*this,
                       strfmt("cpu%u: guest entry without HCR.%s trap set",
                              cpu, nm));
        }
    }

    std::map<DomainCpu, World> world_;
};

/**
 * Rule 5 — vgic: the list registers are a set, not a queue — one virtual
 * interrupt id may occupy at most one LR (hardware SGIs from distinct
 * sources excepted), and the maintenance interrupt may only be raised on
 * a genuine underflow condition (EN+UIE with every LR empty, paper §3.5).
 */
class VgicRule : public InvariantRule
{
  public:
    const char *name() const override { return "vgic"; }

    void
    onVgicLr(InvariantEngine &eng, const VgicLrEvent &ev) override
    {
        const arm::VgicBank &b = *ev.bank;
        const arm::ListReg &written = b.lr[ev.idx];
        if (written.state == arm::LrState::Empty)
            return;
        for (unsigned i = 0; i < arm::kNumListRegs; ++i) {
            if (i == ev.idx || b.lr[i].state == arm::LrState::Empty)
                continue;
            if (b.lr[i].virq != written.virq)
                continue;
            // SGIs from different source CPUs legitimately coexist.
            if (written.virq < arm::kNumSgis &&
                b.lr[i].source != written.source)
                continue;
            eng.report(*this,
                       strfmt("cpu%u: virq %u pending in LR%u and LR%u "
                              "simultaneously",
                              ev.cpu, written.virq, i, ev.idx));
        }
    }

    void
    onMaintenance(InvariantEngine &eng, const MaintenanceEvent &ev) override
    {
        const arm::VgicBank &b = *ev.bank;
        bool all_empty = true;
        for (const arm::ListReg &lr : b.lr)
            all_empty &= lr.state == arm::LrState::Empty;
        if (!b.en || !b.uie || !all_empty) {
            eng.report(*this,
                       strfmt("cpu%u: maintenance interrupt raised without "
                              "a genuine underflow (en=%d uie=%d "
                              "all_empty=%d)",
                              ev.cpu, b.en, b.uie, all_empty));
        }
    }
};

/**
 * Rule 6 — ring-order: the inter-VM ring protocol's observable order must
 * be a pure function of simulated execution (DESIGN.md §4.10). Per
 * (machine, ring, direction): message sequence numbers are gapless from
 * zero, their cycles never move backwards, and the guest-visible ring
 * index advances by exactly one per message. Any gap or reordering means
 * the rendezvous protocol leaked host-thread timing into the simulation.
 */
class RingOrderRule : public InvariantRule
{
  public:
    const char *name() const override { return "ring-order"; }

    void reset() override { dirs_.clear(); }

    void
    onRing(InvariantEngine &eng, const RingEvent &ev) override
    {
        DirState &st = dirs_[Key{ev.domain, ev.ring, ev.doorbell}];
        const char *what = ev.doorbell ? "doorbell" : "delivery";
        if (ev.seq != st.nextSeq) {
            eng.report(*this,
                       strfmt("cpu%u: ring '%s' %s seq %llu, expected %llu "
                              "(gap or replay)",
                              ev.cpu, ev.ring, what,
                              static_cast<unsigned long long>(ev.seq),
                              static_cast<unsigned long long>(st.nextSeq)));
        }
        if (st.nextSeq > 0 && ev.cycle < st.lastCycle) {
            eng.report(*this,
                       strfmt("cpu%u: ring '%s' %s seq %llu at cycle %llu "
                              "behind its predecessor at cycle %llu",
                              ev.cpu, ev.ring, what,
                              static_cast<unsigned long long>(ev.seq),
                              static_cast<unsigned long long>(ev.cycle),
                              static_cast<unsigned long long>(st.lastCycle)));
        }
        if (st.nextSeq > 0 && ev.ringIdx != st.lastRingIdx + 1) {
            eng.report(*this,
                       strfmt("cpu%u: ring '%s' %s index jumped %u -> %u "
                              "(must advance by one per message)",
                              ev.cpu, ev.ring, what, st.lastRingIdx,
                              ev.ringIdx));
        }
        st.nextSeq = ev.seq + 1;
        st.lastCycle = ev.cycle;
        st.lastRingIdx = ev.ringIdx;
    }

  private:
    using Key = std::tuple<const void *, std::string, bool>;
    struct DirState
    {
        std::uint64_t nextSeq = 0;
        Cycles lastCycle = 0;
        std::uint32_t lastRingIdx = 0;
    };
    std::map<Key, DirState> dirs_;
};

} // namespace

std::vector<std::unique_ptr<InvariantRule>>
builtinRules()
{
    std::vector<std::unique_ptr<InvariantRule>> rules;
    rules.push_back(std::make_unique<PrivilegeRule>());
    rules.push_back(std::make_unique<WsPairingRule>());
    rules.push_back(std::make_unique<Stage2IsolationRule>());
    rules.push_back(std::make_unique<TrapConfigRule>());
    rules.push_back(std::make_unique<VgicRule>());
    rules.push_back(std::make_unique<RingOrderRule>());
    return rules;
}

} // namespace kvmarm::check
