/**
 * @file
 * The built-in invariant rules (see DESIGN.md "Invariant checking layer"):
 *
 *  - privilege:        Hyp-only registers touched only from Hyp mode
 *  - ws-pairing:       world-switch save/restore ledger symmetry (Table 1)
 *  - stage2-isolation: no cross-VM or hyp-region Stage-2 mappings
 *  - trap-config:      guest entry trap set + Stage-2 enable discipline
 *  - vgic:             list-register uniqueness, genuine maintenance IRQs
 *
 * To add a rule: subclass InvariantRule, override the hooks you need, and
 * either append it in builtinRules() or install it at runtime with
 * InvariantEngine::addRule().
 */

#ifndef KVMARM_CHECK_RULES_HH
#define KVMARM_CHECK_RULES_HH

#include <memory>
#include <vector>

#include "check/invariants.hh"

namespace kvmarm::check {

/** Construct one instance of every built-in rule. */
std::vector<std::unique_ptr<InvariantRule>> builtinRules();

} // namespace kvmarm::check

#endif // KVMARM_CHECK_RULES_HH
