/**
 * @file
 * Split-mode invariant checker (paper §3): a pluggable rule engine that
 * audits the architectural invariants KVM/ARM's correctness rests on while
 * the simulation runs.
 *
 * The paper's split-mode design is only sound if (1) Hyp-only state is
 * touched exclusively from Hyp mode (§3.2), (2) the world switch moves
 * *all* of Table 1's state symmetrically, (3) Stage-2 translation isolates
 * each VM's IPA space and the protected Hyp region (§3.3), (4) guest entry
 * programs the full KVM/ARM trap configuration, and (5) the VGIC list
 * registers stay consistent (§3.5). The simulator executes those paths;
 * this engine *checks* them, so a silent save/restore asymmetry or a
 * cross-VM Stage-2 mapping fails loudly instead of corrupting results.
 *
 * Instrumented code reports events through the KVMARM_CHECK() macro, which
 * compiles to nothing when the build-time kill switch (CMake option
 * KVMARM_INVARIANTS) is off and costs one branch on a global flag when the
 * runtime mode is Off. No event ever charges simulated cycles: checking is
 * invisible to the cost model.
 *
 * Runtime modes: Off (default), Log (record + warn), Enforce (record +
 * throw FatalError). The KVMARM_CHECK environment variable ("off", "log",
 * "enforce") selects the initial mode, letting CI run the entire test
 * suite under enforcement without code changes.
 */

#ifndef KVMARM_CHECK_INVARIANTS_HH
#define KVMARM_CHECK_INVARIANTS_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arm/hyp_state.hh"
#include "arm/modes.hh"
#include "sim/types.hh"

#ifndef KVMARM_INVARIANTS_ENABLED
#define KVMARM_INVARIANTS_ENABLED 1
#endif

namespace kvmarm::arm {
struct VgicBank;
} // namespace kvmarm::arm

namespace kvmarm::check {

/** Runtime checking mode. */
enum class CheckMode
{
    Off,     //!< events are dropped at the hook site
    Log,     //!< violations are recorded and warn()ed
    Enforce, //!< violations are recorded and throw FatalError
};

/** Direction of a world switch. */
enum class SwitchDir
{
    ToVm,
    ToHost,
};

/** State groups of Table 1 moved by the world switch. */
enum class StateClass
{
    Gp,    //!< general-purpose registers (all banked modes)
    Ctrl,  //!< CP15 configuration registers
    Fpu,   //!< VFP/NEON data + control registers
    Vgic,  //!< VGIC control + list registers
    Timer, //!< architected timer control registers
};

/** What a world-switch state transfer did. */
enum class Xfer
{
    SaveHost,     //!< host copy parked (toVm step 1/4)
    RestoreGuest, //!< guest copy loaded (toVm step 5/9)
    SaveGuest,    //!< guest copy captured (toHost)
    RestoreHost,  //!< host copy reloaded (toHost)
};

const char *switchDirName(SwitchDir d);
const char *stateClassName(StateClass c);
const char *xferName(Xfer k);

/** One recorded invariant violation. */
struct Violation
{
    std::string rule;   //!< name of the rule that fired
    std::string detail; //!< human-readable diagnosis
};

/// @name Event payloads delivered to rules
/// @{

/** Software access to a Hyp-only configuration register. */
struct HypAccessEvent
{
    CpuId cpu;
    arm::Mode mode;  //!< CPU mode at the access
    const char *reg; //!< register (group) name, e.g. "hcr", "httbr"
};

/** A CPU mode transition. */
struct ModeChangeEvent
{
    const void *domain; //!< owning machine (disambiguates CPU ids)
    CpuId cpu;
    arm::Mode from;
    arm::Mode to;
    bool stage2On; //!< HCR.VM at the moment of the transition
};

/** World-switch entry/exit. @c hyp is only valid on end events. */
struct WorldSwitchEvent
{
    const void *domain;
    CpuId cpu;
    SwitchDir dir;
    bool begin;
    const arm::HypState *hyp; //!< Hyp state snapshot (end events)
};

/** One Table 1 state group moved by the world switch. */
struct StateTransferEvent
{
    const void *domain;
    CpuId cpu;
    StateClass cls;
    Xfer kind;
};

/** A Stage-2 mapping installed or removed. */
struct Stage2Event
{
    const void *domain; //!< owning host Mm (PA namespace)
    std::uint16_t vmid;
    Addr ipa;
    Addr pa;
    bool device; //!< device (MMIO passthrough) mapping
    bool map;    //!< true = map, false = unmap
};

/** A physical page entering/leaving the protected (hypervisor) set. */
struct PageGuardEvent
{
    const void *domain;
    Addr pa;
    const char *tag; //!< why it is protected, e.g. "hyp-table"
    bool protect;
};

/** A VGIC list register was written. */
struct VgicLrEvent
{
    CpuId cpu;
    unsigned idx;                  //!< list register index
    const arm::VgicBank *bank;     //!< full per-CPU VGIC bank
};

/** The VGIC maintenance interrupt is about to be raised. */
struct MaintenanceEvent
{
    CpuId cpu;
    const arm::VgicBank *bank;
};
/// @}

class InvariantEngine;

/**
 * One pluggable invariant rule. Override the hooks the rule cares about;
 * report violations through InvariantEngine::report(). Rules keep their
 * own shadow state and must clear it in reset().
 */
class InvariantRule
{
  public:
    virtual ~InvariantRule() = default;

    virtual const char *name() const = 0;

    /** Drop all shadow state (engine reset between test cases). */
    virtual void reset() {}

    virtual void onHypAccess(InvariantEngine &, const HypAccessEvent &) {}
    virtual void onModeChange(InvariantEngine &, const ModeChangeEvent &) {}
    virtual void onWorldSwitch(InvariantEngine &, const WorldSwitchEvent &) {}
    virtual void
    onStateTransfer(InvariantEngine &, const StateTransferEvent &)
    {
    }
    virtual void onStage2Update(InvariantEngine &, const Stage2Event &) {}
    virtual void onPageGuard(InvariantEngine &, const PageGuardEvent &) {}
    virtual void onVgicLr(InvariantEngine &, const VgicLrEvent &) {}
    virtual void onMaintenance(InvariantEngine &, const MaintenanceEvent &) {}
};

namespace detail {
/** Fast-path gate consulted by KVMARM_CHECK before touching the engine.
 *  Atomic so machines running on fleet worker threads can consult it
 *  race-free; a relaxed load keeps the Off-mode cost at one branch. */
extern std::atomic<bool> gActive;
} // namespace detail

/** True when the engine wants events (mode != Off). */
inline bool
engineActive()
{
    return detail::gActive.load(std::memory_order_relaxed);
}

/**
 * The process-wide invariant engine. Instrumented code funnels events in
 * through the entry points below; the engine fans them out to every
 * registered rule.
 *
 * The engine is the one deliberately process-global piece of checking
 * state (rules key their shadow state by machine/Mm domain pointer, so
 * several machines can feed one engine). Every entry point serializes on
 * an internal mutex: when a fleet of machines runs on multiple host
 * threads with checking enabled, events interleave across VMs but each
 * VM's own event stream stays ordered (one machine never leaves its
 * thread). With the default Off mode the hooks never reach the mutex.
 */
class InvariantEngine
{
  public:
    /** The engine singleton (created on first use; initial mode comes
     *  from the KVMARM_CHECK environment variable, default Off). */
    static InvariantEngine &instance();

    CheckMode mode() const { return mode_; }
    void setMode(CheckMode m);

    /** Register an additional rule (the five built-in rules are installed
     *  by the constructor). */
    void addRule(std::unique_ptr<InvariantRule> rule);

    /** Clear recorded violations and every rule's shadow state. */
    void reset();

    /// @name Results
    /// @{
    const std::vector<Violation> &violations() const { return violations_; }
    std::size_t violationCount() const { return violations_.size(); }
    /** Number of violations attributed to @p rule. */
    std::size_t violationCount(const std::string &rule) const;
    /// @}

    /** Record a violation (called by rules). Log mode warns; Enforce mode
     *  throws FatalError after recording. */
    void report(const InvariantRule &rule, std::string detail);

    /// @name Event entry points (hook sites call these via KVMARM_CHECK)
    /// @{
    void hypAccess(CpuId cpu, arm::Mode mode, const char *reg);
    void modeChange(const void *domain, CpuId cpu, arm::Mode from,
                    arm::Mode to, bool stage2_on);
    void worldSwitchBegin(const void *domain, CpuId cpu, SwitchDir dir);
    void worldSwitchEnd(const void *domain, CpuId cpu, SwitchDir dir,
                        const arm::HypState &hyp);
    void stateTransfer(const void *domain, CpuId cpu, StateClass cls,
                       Xfer kind);
    void stage2Map(const void *domain, std::uint16_t vmid, Addr ipa, Addr pa,
                   bool device);
    void stage2Unmap(const void *domain, std::uint16_t vmid, Addr ipa,
                     Addr pa);
    void protectPage(const void *domain, Addr pa, const char *tag);
    void unprotectPage(const void *domain, Addr pa);
    void vgicLrWrite(CpuId cpu, unsigned idx, const arm::VgicBank &bank);
    void maintenanceIrq(CpuId cpu, const arm::VgicBank &bank);
    /// @}

  private:
    InvariantEngine();

    /** Recursive because rules invoke report() while the engine holds the
     *  lock across an event fan-out. */
    mutable std::recursive_mutex mutex_;
    CheckMode mode_ = CheckMode::Off;
    std::vector<std::unique_ptr<InvariantRule>> rules_;
    std::vector<Violation> violations_;
};

/** Shorthand for the singleton. */
inline InvariantEngine &
engine()
{
    return InvariantEngine::instance();
}

/** RAII mode switch for tests: sets the mode, resets the engine, and
 *  restores Off + resets again on destruction. */
class ScopedCheckMode
{
  public:
    explicit ScopedCheckMode(CheckMode m)
    {
        engine().reset();
        engine().setMode(m);
    }
    ~ScopedCheckMode()
    {
        engine().setMode(CheckMode::Off);
        engine().reset();
    }
    ScopedCheckMode(const ScopedCheckMode &) = delete;
    ScopedCheckMode &operator=(const ScopedCheckMode &) = delete;
};

} // namespace kvmarm::check

/**
 * Hook macro used at instrumentation sites: KVMARM_CHECK(hypAccess(...)).
 * Arguments are not evaluated unless the engine is active; the whole
 * statement compiles away when KVMARM_INVARIANTS is off.
 */
#if KVMARM_INVARIANTS_ENABLED
#define KVMARM_CHECK(call)                                                  \
    do {                                                                    \
        if (::kvmarm::check::engineActive())                                \
            ::kvmarm::check::engine().call;                                 \
    } while (0)
#else
#define KVMARM_CHECK(call)                                                  \
    do {                                                                    \
    } while (0)
#endif

#endif // KVMARM_CHECK_INVARIANTS_HH
