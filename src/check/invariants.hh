/**
 * @file
 * Split-mode invariant checker (paper §3): a pluggable rule engine that
 * audits the architectural invariants KVM/ARM's correctness rests on while
 * the simulation runs.
 *
 * The paper's split-mode design is only sound if (1) Hyp-only state is
 * touched exclusively from Hyp mode (§3.2), (2) the world switch moves
 * *all* of Table 1's state symmetrically, (3) Stage-2 translation isolates
 * each VM's IPA space and the protected Hyp region (§3.3), (4) guest entry
 * programs the full KVM/ARM trap configuration, and (5) the VGIC list
 * registers stay consistent (§3.5). The simulator executes those paths;
 * this engine *checks* them, so a silent save/restore asymmetry or a
 * cross-VM Stage-2 mapping fails loudly instead of corrupting results.
 *
 * Engines are sharded per machine (DESIGN.md §4.3): every `MachineBase`
 * owns a private `InvariantEngine` instance holding its own rule shadow
 * state, violation log and event counter. A machine is single-threaded by
 * construction (§4.7), so a machine's engine runs plain single-threaded
 * code — the checked hot path takes no mutex and needs no atomics beyond
 * the per-engine mode flag, and a fleet of checked VMs never serializes
 * on the checker.
 *
 * A thin process-global facade (`engine()` / `InvariantEngine::instance()`)
 * remains for everything that is not a machine hot path: it carries the
 * KVMARM_CHECK environment selection, fans `setMode()`/`reset()` out to
 * every live engine, aggregates `violationCount()` across them (so tests
 * that drive a real machine and then ask the facade keep working), and
 * serves as the event sink for instrumented objects constructed without a
 * machine (unit-test traffic). The facade keeps a conditional recursive
 * mutex because it may be fed from several threads; machine engines never
 * touch one.
 *
 * Instrumented code reports events through the KVMARM_CHECK_ON() macro
 * (KVMARM_CHECK() for facade-routed sites), which compiles to nothing when
 * the build-time kill switch (CMake option KVMARM_INVARIANTS) is off and
 * costs a pointer load plus one branch on the engine's mode flag when the
 * runtime mode is Off. No event ever charges simulated cycles: checking is
 * invisible to the cost model.
 *
 * Runtime modes: Off (default), Log (record + warn), Enforce (record +
 * throw FatalError). The KVMARM_CHECK environment variable ("off", "log",
 * "enforce") selects the initial mode, letting CI run the entire test
 * suite under enforcement without code changes; machine engines inherit
 * the facade's mode at construction.
 */

#ifndef KVMARM_CHECK_INVARIANTS_HH
#define KVMARM_CHECK_INVARIANTS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arm/hyp_state.hh"
#include "arm/modes.hh"
#include "sim/thread_annotations.hh"
#include "sim/types.hh"

#ifndef KVMARM_INVARIANTS_ENABLED
#define KVMARM_INVARIANTS_ENABLED 1
#endif

namespace kvmarm::arm {
struct VgicBank;
} // namespace kvmarm::arm

namespace kvmarm::check {

/** Runtime checking mode. */
enum class CheckMode
{
    Off,     //!< events are dropped at the hook site
    Log,     //!< violations are recorded and warn()ed
    Enforce, //!< violations are recorded and throw FatalError
};

/** Direction of a world switch. */
enum class SwitchDir
{
    ToVm,
    ToHost,
};

/** State groups of Table 1 moved by the world switch. */
enum class StateClass
{
    Gp,    //!< general-purpose registers (all banked modes)
    Ctrl,  //!< CP15 configuration registers
    Fpu,   //!< VFP/NEON data + control registers
    Vgic,  //!< VGIC control + list registers
    Timer, //!< architected timer control registers
};

/** What a world-switch state transfer did. */
enum class Xfer
{
    SaveHost,     //!< host copy parked (toVm step 1/4)
    RestoreGuest, //!< guest copy loaded (toVm step 5/9)
    SaveGuest,    //!< guest copy captured (toHost)
    RestoreHost,  //!< host copy reloaded (toHost)
};

const char *switchDirName(SwitchDir d);
const char *stateClassName(StateClass c);
const char *xferName(Xfer k);

/** One recorded invariant violation. */
struct Violation
{
    std::string rule;   //!< name of the rule that fired
    std::string detail; //!< human-readable diagnosis
};

/** Result of one live aggregation window (facade beginEpoch() /
 *  aggregateEpoch(), DESIGN.md §4.11). */
struct EpochReport
{
    std::uint64_t epoch = 0;    //!< id returned by the pairing beginEpoch()
    std::uint64_t violations = 0; //!< published violations since beginEpoch()
    std::size_t engines = 0;    //!< live engines sampled
};

/// @name Event payloads delivered to rules
/// @{

/** Software access to a Hyp-only configuration register. */
struct HypAccessEvent
{
    CpuId cpu;
    arm::Mode mode;  //!< CPU mode at the access
    const char *reg; //!< register (group) name, e.g. "hcr", "httbr"
};

/** A CPU mode transition. */
struct ModeChangeEvent
{
    const void *domain; //!< owning machine (disambiguates CPU ids)
    CpuId cpu;
    arm::Mode from;
    arm::Mode to;
    bool stage2On; //!< HCR.VM at the moment of the transition
};

/** World-switch entry/exit. @c hyp is only valid on end events. */
struct WorldSwitchEvent
{
    const void *domain;
    CpuId cpu;
    SwitchDir dir;
    bool begin;
    const arm::HypState *hyp; //!< Hyp state snapshot (end events)
};

/** One Table 1 state group moved by the world switch. */
struct StateTransferEvent
{
    const void *domain;
    CpuId cpu;
    StateClass cls;
    Xfer kind;
};

/** A Stage-2 mapping installed or removed. */
struct Stage2Event
{
    const void *domain; //!< owning host Mm (PA namespace)
    std::uint16_t vmid;
    Addr ipa;
    Addr pa;
    bool device; //!< device (MMIO passthrough) mapping
    bool map;    //!< true = map, false = unmap
};

/** A physical page entering/leaving the protected (hypervisor) set. */
struct PageGuardEvent
{
    const void *domain;
    Addr pa;
    const char *tag; //!< why it is protected, e.g. "hyp-table"
    bool protect;
};

/** A VGIC list register was written. */
struct VgicLrEvent
{
    CpuId cpu;
    unsigned idx;                  //!< list register index
    const arm::VgicBank *bank;     //!< full per-CPU VGIC bank
};

/** The VGIC maintenance interrupt is about to be raised. */
struct MaintenanceEvent
{
    CpuId cpu;
    const arm::VgicBank *bank;
};

/** Inter-VM ring activity: a doorbell MMIO send or a message delivery. */
struct RingEvent
{
    const void *domain; //!< owning machine (disambiguates ring names)
    CpuId cpu;
    const char *ring; //!< channel name
    bool doorbell;    //!< true = doorbell (send); false = delivery
    std::uint64_t seq; //!< per-direction message sequence number
    Cycles cycle;      //!< send cycle (doorbell) / deliver cycle
    std::uint32_t ringIdx; //!< avail index (doorbell) / used index (deliver)
};
/// @}

class InvariantEngine;

/**
 * One pluggable invariant rule. Override the hooks the rule cares about;
 * report violations through InvariantEngine::report(). Rules keep their
 * own shadow state and must clear it in reset(). Each engine instance
 * owns a private set of rule instances, so one machine's shadow state can
 * never alias another's.
 */
class InvariantRule
{
  public:
    virtual ~InvariantRule() = default;

    virtual const char *name() const = 0;

    /** Drop all shadow state (engine reset between test cases). */
    virtual void reset() {}

    virtual void onHypAccess(InvariantEngine &, const HypAccessEvent &) {}
    virtual void onModeChange(InvariantEngine &, const ModeChangeEvent &) {}
    virtual void onWorldSwitch(InvariantEngine &, const WorldSwitchEvent &) {}
    virtual void
    onStateTransfer(InvariantEngine &, const StateTransferEvent &)
    {
    }
    virtual void onStage2Update(InvariantEngine &, const Stage2Event &) {}
    virtual void onPageGuard(InvariantEngine &, const PageGuardEvent &) {}
    virtual void onVgicLr(InvariantEngine &, const VgicLrEvent &) {}
    virtual void onMaintenance(InvariantEngine &, const MaintenanceEvent &) {}
    virtual void onRing(InvariantEngine &, const RingEvent &) {}
};

namespace detail {
/** Fast-path gate consulted by KVMARM_CHECK before touching the facade.
 *  Atomic so instrumented objects running on fleet worker threads can
 *  consult it race-free; a relaxed load keeps the Off-mode cost at one
 *  branch. Mirrors the *facade* engine's activity only — machine engines
 *  carry their own gate (InvariantEngine::active()). */
extern std::atomic<bool> gActive;
} // namespace detail

/** True when the facade engine wants events (mode != Off). */
inline bool
engineActive()
{
    return detail::gActive.load(std::memory_order_relaxed);
}

/**
 * An invariant engine instance: a set of rules, their shadow state, a
 * violation log and an event counter. Instrumented code funnels events in
 * through the entry points below; the engine fans them out to every
 * registered rule.
 *
 * Two ownership flavors:
 *
 *  - Machine (the default): owned by exactly one MachineBase and fed only
 *    from that machine's (single) execution thread. Entry points are plain
 *    single-threaded code — no mutex, no atomics beyond the mode flag.
 *  - Shared: the process facade returned by instance(). May be fed from
 *    any thread; entry points serialize on an internal recursive mutex
 *    (recursive because rules invoke report() while the engine holds the
 *    lock across an event fan-out).
 *
 * Every engine registers itself in a process registry so the facade can
 * fan out mode changes and resets and aggregate violation counts. The
 * registry is touched only on construction/destruction and from the
 * facade's cold paths, never by a machine engine's event entry points.
 */
class InvariantEngine
{
  public:
    enum class Ownership
    {
        Machine, //!< single-threaded, lock-free entry points
        Shared,  //!< process facade; entry points take a mutex
    };

    /** The facade singleton (created on first use; initial mode comes
     *  from the KVMARM_CHECK environment variable, default Off). */
    static InvariantEngine &instance();

    explicit InvariantEngine(Ownership ownership = Ownership::Machine);
    ~InvariantEngine();

    InvariantEngine(const InvariantEngine &) = delete;
    InvariantEngine &operator=(const InvariantEngine &) = delete;

    CheckMode mode() const { return mode_.load(std::memory_order_relaxed); }

    /** Set this engine's mode. On the facade, additionally propagates the
     *  mode to every live engine in the process. */
    void setMode(CheckMode m);

    /** True when this engine wants events (mode != Off, rules present) —
     *  the per-engine fast-path gate consulted by KVMARM_CHECK_ON. */
    bool
    active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /** Register an additional rule (the five built-in rules are installed
     *  by the constructor). */
    void addRule(std::unique_ptr<InvariantRule> rule);

    /** Clear recorded violations, the event counter and every rule's
     *  shadow state. On the facade, resets every live engine. */
    void reset();

    /// @name Results
    /// @{
    /** This engine's own violation log (never aggregated). */
    const std::vector<Violation> &violations() const { return violations_; }

    /** Number of recorded violations. On the facade this aggregates
     *  across every live engine, so a test that drove a real machine can
     *  keep interrogating the facade; on a machine engine it is that
     *  machine's own count. */
    std::size_t violationCount() const;
    /** Number of violations attributed to @p rule (same aggregation). */
    std::size_t violationCount(const std::string &rule) const;

    /** Events observed by this engine instance (post-gate, i.e. in Log or
     *  Enforce mode only). Never aggregated. */
    std::uint64_t eventCount() const { return events_; }
    /// @}

    /// @name Epoch protocol (live aggregation without stop-the-world)
    ///
    /// Exact violationCount() aggregation walks machine-engine violation
    /// logs and is therefore quiesced-only. The epoch protocol is the live
    /// path: every report() bumps the engine's atomic *live* counter, and
    /// each machine *publishes* (live → published, a lock-free store on
    /// the machine's own thread) at its quiesce boundaries — every
    /// MachineBase::run() exit and snapshot restore. The facade samples
    /// published counters only, so aggregation never reads state a machine
    /// thread is mutating and no machine ever stops for it. An engine that
    /// dies retires its live count into a process accumulator so completed
    /// fleet jobs keep counting. The sampled total is monotonic: published
    /// never exceeds live, and retirement only converts published values
    /// into (larger-or-equal) live ones.
    /// @{

    /** Snapshot this engine's live violation counter into its published
     *  counter. Lock-free; called on the owning machine's thread at a
     *  quiesce boundary (MachineBase::publishCheckEpoch routes here). On
     *  the facade the live counter is always considered published, so
     *  this is only meaningful for machine engines. */
    void publishEpoch();

    /** Facade only: open an aggregation window — record the current
     *  published total as the baseline and return the new epoch id. */
    std::uint64_t beginEpoch();

    /** Facade only: sample the published total (no stop-the-world; safe
     *  while machines run) and report the delta since beginEpoch(). With
     *  no beginEpoch() yet, the delta is since process start. */
    EpochReport aggregateEpoch() const;

    /** This engine's published violation counter. The facade's live
     *  counter counts as published (its log is mutex-fed, not machine-
     *  thread-local, so there is no quiesce boundary to wait for). */
    std::uint64_t publishedCount() const;
    /// @}

    /** Record a violation (called by rules). Log mode warns; Enforce mode
     *  throws FatalError after recording. */
    void report(const InvariantRule &rule, std::string detail);

    /// @name Event entry points (hook sites call these via KVMARM_CHECK_ON)
    /// @{
    void hypAccess(CpuId cpu, arm::Mode mode, const char *reg);
    void modeChange(const void *domain, CpuId cpu, arm::Mode from,
                    arm::Mode to, bool stage2_on);
    void worldSwitchBegin(const void *domain, CpuId cpu, SwitchDir dir);
    void worldSwitchEnd(const void *domain, CpuId cpu, SwitchDir dir,
                        const arm::HypState &hyp);
    void stateTransfer(const void *domain, CpuId cpu, StateClass cls,
                       Xfer kind);
    void stage2Map(const void *domain, std::uint16_t vmid, Addr ipa, Addr pa,
                   bool device);
    void stage2Unmap(const void *domain, std::uint16_t vmid, Addr ipa,
                     Addr pa);
    void protectPage(const void *domain, Addr pa, const char *tag);
    void unprotectPage(const void *domain, Addr pa);
    void vgicLrWrite(CpuId cpu, unsigned idx, const arm::VgicBank &bank);
    void maintenanceIrq(CpuId cpu, const arm::VgicBank &bank);
    void ringDoorbell(const void *domain, CpuId cpu, const char *ring,
                      std::uint64_t seq, Cycles cycle, std::uint32_t availIdx);
    void ringDeliver(const void *domain, CpuId cpu, const char *ring,
                     std::uint64_t seq, Cycles cycle, std::uint32_t usedIdx);
    /// @}

  private:
    /** Locks the engine mutex only for Shared ownership; a machine
     *  engine's OptionalLock is a no-op, keeping its hot path lock-free.
     *  Conditional acquisition is outside clang's lexical thread-safety
     *  model (and std::recursive_mutex carries no capability attribute),
     *  so this helper is explicitly exempt from the analysis; its safety
     *  argument is the Machine/Shared ownership split documented above. */
    class OptionalLock
    {
      public:
        explicit OptionalLock(const InvariantEngine &eng)
            KVMARM_NO_THREAD_SAFETY_ANALYSIS
            : mutex_(eng.ownership_ == Ownership::Shared ? &eng.mutex_
                                                         : nullptr)
        {
            if (mutex_)
                mutex_->lock();
        }
        ~OptionalLock() KVMARM_NO_THREAD_SAFETY_ANALYSIS
        {
            if (mutex_)
                mutex_->unlock();
        }
        OptionalLock(const OptionalLock &) = delete;
        OptionalLock &operator=(const OptionalLock &) = delete;

      private:
        std::recursive_mutex *mutex_;
    };

    bool isFacade() const;
    void refreshGate();
    std::size_t localViolationCount(const std::string *rule) const;
    std::size_t aggregateViolationCount(const std::string *rule) const;

    const Ownership ownership_;
    /** Taken only when ownership_ == Shared. Recursive because rules
     *  invoke report() while the engine holds it across a fan-out. */
    mutable std::recursive_mutex mutex_;
    std::atomic<CheckMode> mode_{CheckMode::Off};
    std::atomic<bool> active_{false};
    std::vector<std::unique_ptr<InvariantRule>> rules_;
    std::vector<Violation> violations_;
    std::uint64_t events_ = 0;
    /** Epoch protocol counters: live is bumped by every report();
     *  published is the copy visible to lock-free facade aggregation,
     *  refreshed by publishEpoch() at machine quiesce boundaries. */
    std::atomic<std::uint64_t> liveViolations_{0};
    std::atomic<std::uint64_t> publishedViolations_{0};
};

/** Shorthand for the facade singleton. */
inline InvariantEngine &
engine()
{
    return InvariantEngine::instance();
}

/** The facade as a pointer — the engine instrumented objects fall back to
 *  when they are constructed without an owning machine (unit tests). */
InvariantEngine *processEngine();

/** RAII mode switch for tests: sets the mode, resets every engine, and
 *  restores Off + resets again on destruction (all via the facade, so
 *  machine engines created before the scope follow along; engines created
 *  inside the scope inherit the facade's mode at construction). */
class ScopedCheckMode
{
  public:
    explicit ScopedCheckMode(CheckMode m)
    {
        engine().reset();
        engine().setMode(m);
    }
    ~ScopedCheckMode()
    {
        engine().setMode(CheckMode::Off);
        engine().reset();
    }
    ScopedCheckMode(const ScopedCheckMode &) = delete;
    ScopedCheckMode &operator=(const ScopedCheckMode &) = delete;
};

} // namespace kvmarm::check

/**
 * Hook macros used at instrumentation sites.
 *
 * KVMARM_CHECK_ON(eng, call) delivers to a specific engine instance —
 * every machine-owned hook site routes through the owning machine's
 * engine this way: KVMARM_CHECK_ON(ck, stateTransfer(...)). A null engine
 * (kill-switch builds register no factory) drops the event.
 *
 * KVMARM_CHECK(call) delivers to the process facade; it remains for
 * instrumented code with no machine association.
 *
 * Arguments are not evaluated unless the target engine is active; both
 * macros compile away when KVMARM_INVARIANTS is off.
 */
#if KVMARM_INVARIANTS_ENABLED
#define KVMARM_CHECK_ON(eng, call)                                          \
    do {                                                                    \
        ::kvmarm::check::InvariantEngine *kvmarm_check_e_ = (eng);          \
        if (kvmarm_check_e_ && kvmarm_check_e_->active())                   \
            kvmarm_check_e_->call;                                          \
    } while (0)
#define KVMARM_CHECK(call)                                                  \
    do {                                                                    \
        if (::kvmarm::check::engineActive())                                \
            ::kvmarm::check::engine().call;                                 \
    } while (0)
#else
#define KVMARM_CHECK_ON(eng, call)                                          \
    do {                                                                    \
    } while (0)
#define KVMARM_CHECK(call)                                                  \
    do {                                                                    \
    } while (0)
#endif

#endif // KVMARM_CHECK_INVARIANTS_HH
