#include "check/invariants.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "check/rules.hh"
#include "sim/logging.hh"
#include "sim/machine_base.hh"
#include "sim/thread_annotations.hh"

namespace kvmarm::check {

namespace detail {
std::atomic<bool> gActive{false};
} // namespace detail

namespace {

/**
 * Process registry of live engines. The facade walks it to propagate
 * setMode()/reset() and to aggregate violation counts; engines join in
 * their constructor and leave in their destructor. The mutex guards only
 * those cold paths — no event entry point ever touches it. Facade fan-out
 * of reset() and aggregation read machine-engine state directly, so they
 * must not run concurrently with machine execution (callers quiesce the
 * fleet first; tests and benches naturally do).
 */
Mutex gRegistryMutex;
std::vector<InvariantEngine *> gRegistry KVMARM_GUARDED_BY(gRegistryMutex);

/** The process facade (first Shared-ownership engine, set by instance()).
 *  Atomic rather than registry-guarded: isFacade() runs inside fan-outs
 *  that already hold gRegistryMutex, and the pointer is written exactly
 *  once (facade construction) before any concurrent reader exists. */
std::atomic<InvariantEngine *> gFacade{nullptr};

/** Published violations of engines that have died (a fleet job's machine
 *  retires its engine with it); folded into every epoch sample so
 *  completed jobs keep counting. Atomic because engine destructors run on
 *  fleet worker threads while the facade samples. */
std::atomic<std::uint64_t> gRetiredViolations{0};

/** Epoch window bookkeeping (facade beginEpoch()/aggregateEpoch()). */
std::uint64_t gEpochId KVMARM_GUARDED_BY(gRegistryMutex) = 0;
std::uint64_t gEpochBaseline KVMARM_GUARDED_BY(gRegistryMutex) = 0;

/** Sum of published violation counters across the live registry plus the
 *  retired accumulator. Reads only atomics — never a machine engine's
 *  violation log — so it is safe while machines run. */
std::uint64_t
samplePublished() KVMARM_REQUIRES(gRegistryMutex)
{
    std::uint64_t total =
        gRetiredViolations.load(std::memory_order_acquire);
    for (const InvariantEngine *eng : gRegistry)
        total += eng->publishedCount();
    return total;
}

#if KVMARM_INVARIANTS_ENABLED
InvariantEngine *
createMachineEngine()
{
    // Touch the facade first so KVMARM_CHECK env selection has happened
    // and the new engine can inherit the current process-wide mode.
    InvariantEngine::instance();
    return new InvariantEngine(InvariantEngine::Ownership::Machine);
}

void
destroyMachineEngine(InvariantEngine *eng)
{
    delete eng;
}

void
publishMachineEngine(InvariantEngine *eng)
{
    eng->publishEpoch();
}

/** Hand MachineBase the means to create per-machine engines, and make
 *  sure the facade exists (and has read KVMARM_CHECK) before any hook
 *  site consults the gActive gate. Gated on the compile-time kill
 *  switch: with KVMARM_INVARIANTS=OFF no factory is registered, machines
 *  carry a null engine, and the hook macros compile away anyway. */
const bool gEagerInit =
    (InvariantEngine::instance(),
     MachineBase::registerCheckEngineFactory(createMachineEngine,
                                             destroyMachineEngine,
                                             publishMachineEngine),
     true);
#endif

} // namespace

const char *
switchDirName(SwitchDir d)
{
    return d == SwitchDir::ToVm ? "toVm" : "toHost";
}

const char *
stateClassName(StateClass c)
{
    switch (c) {
      case StateClass::Gp: return "gp";
      case StateClass::Ctrl: return "ctrl";
      case StateClass::Fpu: return "fpu";
      case StateClass::Vgic: return "vgic";
      case StateClass::Timer: return "timer";
    }
    return "?";
}

const char *
xferName(Xfer k)
{
    switch (k) {
      case Xfer::SaveHost: return "save-host";
      case Xfer::RestoreGuest: return "restore-guest";
      case Xfer::SaveGuest: return "save-guest";
      case Xfer::RestoreHost: return "restore-host";
    }
    return "?";
}

InvariantEngine::InvariantEngine(Ownership ownership) : ownership_(ownership)
{
    for (auto &rule : builtinRules())
        rules_.push_back(std::move(rule));

    CheckMode initial = CheckMode::Off;
    {
        MutexLock lock(gRegistryMutex);
        InvariantEngine *facade = gFacade.load(std::memory_order_relaxed);
        if (ownership_ == Ownership::Shared && !facade) {
            facade = this;
            gFacade.store(this, std::memory_order_relaxed);
        }
        // A machine engine born into a checked process (ScopedCheckMode
        // already active, or KVMARM_CHECK set) starts in the facade's
        // current mode instead of Off.
        if (facade && facade != this)
            initial = facade->mode();
        gRegistry.push_back(this);
    }

    if (isFacade()) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): facade construction is
        // single-threaded (static init or first instance() call before
        // any worker thread starts); nothing calls setenv.
        if (const char *env = std::getenv("KVMARM_CHECK")) {
            if (!std::strcmp(env, "log"))
                initial = CheckMode::Log;
            else if (!std::strcmp(env, "enforce"))
                initial = CheckMode::Enforce;
            else if (std::strcmp(env, "off"))
                warn("KVMARM_CHECK=%s not recognised (off|log|enforce)",
                     env);
        }
    }
    if (initial != CheckMode::Off)
        setMode(initial);
}

InvariantEngine::~InvariantEngine()
{
    MutexLock lock(gRegistryMutex);
    gRegistry.erase(std::remove(gRegistry.begin(), gRegistry.end(), this),
                    gRegistry.end());
    // Retire the *live* count (>= published): a dying machine is quiesced
    // by definition, so the final value is exact and the epoch sample
    // stays monotonic — the engine's contribution only ever grows when it
    // switches from the registry term to the retired term.
    gRetiredViolations.fetch_add(
        liveViolations_.load(std::memory_order_relaxed),
        std::memory_order_acq_rel);
    InvariantEngine *self = this;
    gFacade.compare_exchange_strong(self, nullptr,
                                    std::memory_order_relaxed);
}

InvariantEngine &
InvariantEngine::instance()
{
    static InvariantEngine engine{Ownership::Shared};
    return engine;
}

InvariantEngine *
processEngine()
{
    return &InvariantEngine::instance();
}

bool
InvariantEngine::isFacade() const
{
    return this == gFacade.load(std::memory_order_relaxed);
}

void
InvariantEngine::refreshGate()
{
    const bool on = mode() != CheckMode::Off && !rules_.empty();
    active_.store(on, std::memory_order_relaxed);
    if (isFacade())
        detail::gActive.store(on, std::memory_order_relaxed);
}

void
InvariantEngine::setMode(CheckMode m)
{
    if (isFacade()) {
        // The facade owns the process-wide mode: fan the change out to
        // every live engine (mode_/active_ are atomics, so this is safe
        // even while machines run on fleet worker threads).
        MutexLock lock(gRegistryMutex);
        for (InvariantEngine *eng : gRegistry) {
            eng->mode_.store(m, std::memory_order_relaxed);
            eng->refreshGate();
        }
        return;
    }
    mode_.store(m, std::memory_order_relaxed);
    refreshGate();
}

void
InvariantEngine::addRule(std::unique_ptr<InvariantRule> rule)
{
    OptionalLock lock(*this);
    rules_.push_back(std::move(rule));
    refreshGate();
}

void
InvariantEngine::reset()
{
    if (isFacade()) {
        MutexLock lock(gRegistryMutex);
        for (InvariantEngine *eng : gRegistry) {
            OptionalLock elock(*eng);
            eng->violations_.clear();
            eng->events_ = 0;
            eng->liveViolations_.store(0, std::memory_order_relaxed);
            eng->publishedViolations_.store(0, std::memory_order_relaxed);
            for (auto &rule : eng->rules_)
                rule->reset();
        }
        // A facade reset starts the world over: drop retired history and
        // any open epoch window (quiesced-only, like the rest of reset).
        gRetiredViolations.store(0, std::memory_order_release);
        gEpochId = 0;
        gEpochBaseline = 0;
        return;
    }
    OptionalLock lock(*this);
    violations_.clear();
    events_ = 0;
    liveViolations_.store(0, std::memory_order_relaxed);
    publishedViolations_.store(0, std::memory_order_relaxed);
    for (auto &rule : rules_)
        rule->reset();
}

std::size_t
InvariantEngine::localViolationCount(const std::string *rule) const
{
    OptionalLock lock(*this);
    if (!rule)
        return violations_.size();
    std::size_t n = 0;
    for (const Violation &v : violations_)
        n += v.rule == *rule;
    return n;
}

std::size_t
InvariantEngine::aggregateViolationCount(const std::string *rule) const
{
    MutexLock lock(gRegistryMutex);
    std::size_t n = 0;
    for (const InvariantEngine *eng : gRegistry)
        n += eng->localViolationCount(rule);
    return n;
}

std::size_t
InvariantEngine::violationCount() const
{
    return isFacade() ? aggregateViolationCount(nullptr)
                      : localViolationCount(nullptr);
}

std::size_t
InvariantEngine::violationCount(const std::string &rule) const
{
    return isFacade() ? aggregateViolationCount(&rule)
                      : localViolationCount(&rule);
}

void
InvariantEngine::publishEpoch()
{
    // Release pairs with the acquire in publishedCount(): a sampler that
    // sees the new published value also sees everything the machine did
    // before its quiesce boundary.
    publishedViolations_.store(liveViolations_.load(std::memory_order_relaxed),
                               std::memory_order_release);
}

std::uint64_t
InvariantEngine::publishedCount() const
{
    if (isFacade())
        return liveViolations_.load(std::memory_order_acquire);
    return publishedViolations_.load(std::memory_order_acquire);
}

std::uint64_t
InvariantEngine::beginEpoch()
{
    if (!isFacade())
        fatal("InvariantEngine::beginEpoch: epochs are a facade protocol — "
              "call it on check::engine(), not a machine engine");
    MutexLock lock(gRegistryMutex);
    gEpochBaseline = samplePublished();
    return ++gEpochId;
}

EpochReport
InvariantEngine::aggregateEpoch() const
{
    if (!isFacade())
        fatal("InvariantEngine::aggregateEpoch: epochs are a facade "
              "protocol — call it on check::engine(), not a machine "
              "engine");
    MutexLock lock(gRegistryMutex);
    EpochReport rep;
    rep.epoch = gEpochId;
    rep.violations = samplePublished() - gEpochBaseline;
    rep.engines = gRegistry.size();
    return rep;
}

void
InvariantEngine::report(const InvariantRule &rule, std::string detail)
{
    OptionalLock lock(*this);
    violations_.push_back(Violation{rule.name(), std::move(detail)});
    liveViolations_.fetch_add(1, std::memory_order_relaxed);
    const Violation &v = violations_.back();
    if (mode() == CheckMode::Enforce) {
        fatal("invariant violation [%s]: %s", v.rule.c_str(),
              v.detail.c_str());
    }
    warn("invariant violation [%s]: %s", v.rule.c_str(), v.detail.c_str());
}

void
InvariantEngine::hypAccess(CpuId cpu, arm::Mode mode, const char *reg)
{
    OptionalLock lock(*this);
    ++events_;
    HypAccessEvent ev{cpu, mode, reg};
    for (auto &rule : rules_)
        rule->onHypAccess(*this, ev);
}

void
InvariantEngine::modeChange(const void *domain, CpuId cpu, arm::Mode from,
                            arm::Mode to, bool stage2_on)
{
    OptionalLock lock(*this);
    ++events_;
    ModeChangeEvent ev{domain, cpu, from, to, stage2_on};
    for (auto &rule : rules_)
        rule->onModeChange(*this, ev);
}

void
InvariantEngine::worldSwitchBegin(const void *domain, CpuId cpu,
                                  SwitchDir dir)
{
    OptionalLock lock(*this);
    ++events_;
    WorldSwitchEvent ev{domain, cpu, dir, true, nullptr};
    for (auto &rule : rules_)
        rule->onWorldSwitch(*this, ev);
}

void
InvariantEngine::worldSwitchEnd(const void *domain, CpuId cpu, SwitchDir dir,
                                const arm::HypState &hyp)
{
    OptionalLock lock(*this);
    ++events_;
    WorldSwitchEvent ev{domain, cpu, dir, false, &hyp};
    for (auto &rule : rules_)
        rule->onWorldSwitch(*this, ev);
}

void
InvariantEngine::stateTransfer(const void *domain, CpuId cpu, StateClass cls,
                               Xfer kind)
{
    OptionalLock lock(*this);
    ++events_;
    StateTransferEvent ev{domain, cpu, cls, kind};
    for (auto &rule : rules_)
        rule->onStateTransfer(*this, ev);
}

void
InvariantEngine::stage2Map(const void *domain, std::uint16_t vmid, Addr ipa,
                           Addr pa, bool device)
{
    OptionalLock lock(*this);
    ++events_;
    Stage2Event ev{domain, vmid, ipa, pa, device, true};
    for (auto &rule : rules_)
        rule->onStage2Update(*this, ev);
}

void
InvariantEngine::stage2Unmap(const void *domain, std::uint16_t vmid,
                             Addr ipa, Addr pa)
{
    OptionalLock lock(*this);
    ++events_;
    Stage2Event ev{domain, vmid, ipa, pa, false, false};
    for (auto &rule : rules_)
        rule->onStage2Update(*this, ev);
}

void
InvariantEngine::protectPage(const void *domain, Addr pa, const char *tag)
{
    OptionalLock lock(*this);
    ++events_;
    PageGuardEvent ev{domain, pa, tag, true};
    for (auto &rule : rules_)
        rule->onPageGuard(*this, ev);
}

void
InvariantEngine::unprotectPage(const void *domain, Addr pa)
{
    OptionalLock lock(*this);
    ++events_;
    PageGuardEvent ev{domain, pa, "", false};
    for (auto &rule : rules_)
        rule->onPageGuard(*this, ev);
}

void
InvariantEngine::vgicLrWrite(CpuId cpu, unsigned idx,
                             const arm::VgicBank &bank)
{
    OptionalLock lock(*this);
    ++events_;
    VgicLrEvent ev{cpu, idx, &bank};
    for (auto &rule : rules_)
        rule->onVgicLr(*this, ev);
}

void
InvariantEngine::maintenanceIrq(CpuId cpu, const arm::VgicBank &bank)
{
    OptionalLock lock(*this);
    ++events_;
    MaintenanceEvent ev{cpu, &bank};
    for (auto &rule : rules_)
        rule->onMaintenance(*this, ev);
}

void
InvariantEngine::ringDoorbell(const void *domain, CpuId cpu, const char *ring,
                              std::uint64_t seq, Cycles cycle,
                              std::uint32_t availIdx)
{
    OptionalLock lock(*this);
    ++events_;
    RingEvent ev{domain, cpu, ring, true, seq, cycle, availIdx};
    for (auto &rule : rules_)
        rule->onRing(*this, ev);
}

void
InvariantEngine::ringDeliver(const void *domain, CpuId cpu, const char *ring,
                             std::uint64_t seq, Cycles cycle,
                             std::uint32_t usedIdx)
{
    OptionalLock lock(*this);
    ++events_;
    RingEvent ev{domain, cpu, ring, false, seq, cycle, usedIdx};
    for (auto &rule : rules_)
        rule->onRing(*this, ev);
}

} // namespace kvmarm::check
