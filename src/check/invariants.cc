#include "check/invariants.hh"

#include <cstdlib>
#include <cstring>

#include "check/rules.hh"
#include "sim/logging.hh"

namespace kvmarm::check {

namespace detail {
std::atomic<bool> gActive{false};

/** Construct the engine at startup so the KVMARM_CHECK environment
 *  variable takes effect before any hook site consults gActive. */
#if KVMARM_INVARIANTS_ENABLED
const bool gEagerInit = (InvariantEngine::instance(), true);
#endif
} // namespace detail

const char *
switchDirName(SwitchDir d)
{
    return d == SwitchDir::ToVm ? "toVm" : "toHost";
}

const char *
stateClassName(StateClass c)
{
    switch (c) {
      case StateClass::Gp: return "gp";
      case StateClass::Ctrl: return "ctrl";
      case StateClass::Fpu: return "fpu";
      case StateClass::Vgic: return "vgic";
      case StateClass::Timer: return "timer";
    }
    return "?";
}

const char *
xferName(Xfer k)
{
    switch (k) {
      case Xfer::SaveHost: return "save-host";
      case Xfer::RestoreGuest: return "restore-guest";
      case Xfer::SaveGuest: return "save-guest";
      case Xfer::RestoreHost: return "restore-host";
    }
    return "?";
}

InvariantEngine::InvariantEngine()
{
    for (auto &rule : builtinRules())
        rules_.push_back(std::move(rule));

    if (const char *env = std::getenv("KVMARM_CHECK")) {
        if (!std::strcmp(env, "log"))
            setMode(CheckMode::Log);
        else if (!std::strcmp(env, "enforce"))
            setMode(CheckMode::Enforce);
        else if (std::strcmp(env, "off"))
            warn("KVMARM_CHECK=%s not recognised (off|log|enforce)", env);
    }
}

InvariantEngine &
InvariantEngine::instance()
{
    static InvariantEngine engine;
    return engine;
}

void
InvariantEngine::setMode(CheckMode m)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    mode_ = m;
    detail::gActive.store(mode_ != CheckMode::Off && !rules_.empty(),
                          std::memory_order_relaxed);
}

void
InvariantEngine::addRule(std::unique_ptr<InvariantRule> rule)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    rules_.push_back(std::move(rule));
    setMode(mode_); // refresh the fast-path gate
}

void
InvariantEngine::reset()
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    violations_.clear();
    for (auto &rule : rules_)
        rule->reset();
}

std::size_t
InvariantEngine::violationCount(const std::string &rule) const
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    std::size_t n = 0;
    for (const Violation &v : violations_)
        n += v.rule == rule;
    return n;
}

void
InvariantEngine::report(const InvariantRule &rule, std::string detail)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    violations_.push_back(Violation{rule.name(), std::move(detail)});
    const Violation &v = violations_.back();
    if (mode_ == CheckMode::Enforce) {
        fatal("invariant violation [%s]: %s", v.rule.c_str(),
              v.detail.c_str());
    }
    warn("invariant violation [%s]: %s", v.rule.c_str(), v.detail.c_str());
}

void
InvariantEngine::hypAccess(CpuId cpu, arm::Mode mode, const char *reg)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    HypAccessEvent ev{cpu, mode, reg};
    for (auto &rule : rules_)
        rule->onHypAccess(*this, ev);
}

void
InvariantEngine::modeChange(const void *domain, CpuId cpu, arm::Mode from,
                            arm::Mode to, bool stage2_on)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    ModeChangeEvent ev{domain, cpu, from, to, stage2_on};
    for (auto &rule : rules_)
        rule->onModeChange(*this, ev);
}

void
InvariantEngine::worldSwitchBegin(const void *domain, CpuId cpu,
                                  SwitchDir dir)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    WorldSwitchEvent ev{domain, cpu, dir, true, nullptr};
    for (auto &rule : rules_)
        rule->onWorldSwitch(*this, ev);
}

void
InvariantEngine::worldSwitchEnd(const void *domain, CpuId cpu, SwitchDir dir,
                                const arm::HypState &hyp)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    WorldSwitchEvent ev{domain, cpu, dir, false, &hyp};
    for (auto &rule : rules_)
        rule->onWorldSwitch(*this, ev);
}

void
InvariantEngine::stateTransfer(const void *domain, CpuId cpu, StateClass cls,
                               Xfer kind)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    StateTransferEvent ev{domain, cpu, cls, kind};
    for (auto &rule : rules_)
        rule->onStateTransfer(*this, ev);
}

void
InvariantEngine::stage2Map(const void *domain, std::uint16_t vmid, Addr ipa,
                           Addr pa, bool device)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    Stage2Event ev{domain, vmid, ipa, pa, device, true};
    for (auto &rule : rules_)
        rule->onStage2Update(*this, ev);
}

void
InvariantEngine::stage2Unmap(const void *domain, std::uint16_t vmid,
                             Addr ipa, Addr pa)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    Stage2Event ev{domain, vmid, ipa, pa, false, false};
    for (auto &rule : rules_)
        rule->onStage2Update(*this, ev);
}

void
InvariantEngine::protectPage(const void *domain, Addr pa, const char *tag)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    PageGuardEvent ev{domain, pa, tag, true};
    for (auto &rule : rules_)
        rule->onPageGuard(*this, ev);
}

void
InvariantEngine::unprotectPage(const void *domain, Addr pa)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    PageGuardEvent ev{domain, pa, "", false};
    for (auto &rule : rules_)
        rule->onPageGuard(*this, ev);
}

void
InvariantEngine::vgicLrWrite(CpuId cpu, unsigned idx,
                             const arm::VgicBank &bank)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    VgicLrEvent ev{cpu, idx, &bank};
    for (auto &rule : rules_)
        rule->onVgicLr(*this, ev);
}

void
InvariantEngine::maintenanceIrq(CpuId cpu, const arm::VgicBank &bank)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    MaintenanceEvent ev{cpu, &bank};
    for (auto &rule : rules_)
        rule->onMaintenance(*this, ev);
}

} // namespace kvmarm::check
