/**
 * @file
 * System bus: routes physical addresses to RAM or MMIO devices and charges
 * per-device access latencies.
 *
 * All I/O on the modelled ARM machine is memory mapped (the paper, §3.4:
 * "all I/O mechanisms on the ARM architecture are based on load/store
 * operations to MMIO device regions"). The x86 machine additionally routes
 * port I/O through its own CPU model.
 */

#ifndef KVMARM_MEM_BUS_HH
#define KVMARM_MEM_BUS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace kvmarm {

/**
 * A device with memory-mapped registers. Accesses carry the initiating CPU
 * so that per-CPU banked interfaces (GIC CPU interface, VGIC, timers) can
 * dispatch to the right bank.
 */
class MmioDevice
{
  public:
    virtual ~MmioDevice() = default;

    /** Device instance name for diagnostics. */
    virtual std::string name() const = 0;

    /** Read @p len bytes at @p offset within the device's region. */
    virtual std::uint64_t read(CpuId cpu, Addr offset, unsigned len) = 0;

    /** Write @p value (@p len bytes) at @p offset within the region. */
    virtual void write(CpuId cpu, Addr offset, std::uint64_t value,
                       unsigned len) = 0;

    /**
     * Cycles one register access costs the initiating CPU. Device MMIO is
     * typically far slower than cached memory (paper §3.5); the GIC models
     * override this.
     */
    virtual Cycles accessLatency() const { return 50; }
};

/** Result of a bus access: the value read (for loads) plus cycles charged. */
struct BusAccess
{
    std::uint64_t value = 0;
    Cycles latency = 0;
    bool ok = false; //!< false: address decodes to neither RAM nor a device
};

/** Physical address decoder for one machine. */
class Bus
{
  public:
    explicit Bus(PhysMem &ram) : ram_(ram) {}

    /**
     * Register a device region [base, base+size). Regions must not overlap
     * RAM or each other.
     */
    void addDevice(Addr base, Addr size, MmioDevice *dev);

    /** True if @p pa is backed by RAM. */
    bool isRam(Addr pa, unsigned len = 1) const;

    /** Device covering @p pa, or nullptr. */
    MmioDevice *deviceAt(Addr pa) const;

    /** Base address of the region owned by @p dev, if registered. */
    std::optional<Addr> regionBase(const MmioDevice *dev) const;

    /** Perform a physical read. */
    BusAccess read(CpuId cpu, Addr pa, unsigned len);

    /** Perform a physical write. */
    BusAccess write(CpuId cpu, Addr pa, std::uint64_t value, unsigned len);

    PhysMem &ram() { return ram_; }
    const PhysMem &ram() const { return ram_; }

    /** Cycles a cached RAM access costs (uniform approximation). */
    static constexpr Cycles kRamLatency = 1;

  private:
    struct Region
    {
        Addr base;
        Addr size;
        MmioDevice *dev;
    };

    const Region *regionAt(Addr pa) const;
    const Region *regionFor(CpuId cpu, Addr pa) const;

    PhysMem &ram_;
    std::vector<Region> regions_; //!< sorted by base (addDevice keeps order)

    /**
     * Last region each CPU decoded to. CPUs poll the same device registers
     * (GIC, timer) in long runs, so this usually short-circuits the binary
     * search with one range check. Cleared whenever a device is added
     * (push_back moves the Region objects).
     */
    mutable std::vector<const Region *> lastRegion_;
};

} // namespace kvmarm

#endif // KVMARM_MEM_BUS_HH
