/**
 * @file
 * Sparse backing store for a machine's physical RAM.
 *
 * Pages are materialized on first touch so a simulated 2 GiB machine costs
 * only what the workload actually writes. Contents are real bytes: virtio
 * rings, migration state checks, and the isolation property tests read them
 * back.
 *
 * Snapshot support is copy-on-write at page granularity: saveState()
 * publishes every materialized page into an immutable shared image and
 * turns this PhysMem into a COW client of it; restoreState() adopts the
 * same image. Reads hit shared image pages directly; the first write to a
 * shared page faults a private machine-owned copy. Any number of machines
 * (origin included) may share one image across host threads — the image is
 * read-only for its whole lifetime, and every mutable page is private to
 * exactly one machine.
 */

#ifndef KVMARM_MEM_PHYS_MEM_HH
#define KVMARM_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>

#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm {

/** Byte-addressable sparse physical memory covering [base, base+size). */
class PhysMem : public Snapshottable
{
  public:
    /**
     * @param base First physical address backed by RAM.
     * @param size RAM size in bytes; must be page aligned.
     */
    PhysMem(Addr base, Addr size);

    Addr base() const { return base_; }
    Addr size() const { return size_; }

    /** True if @p pa (for @p len bytes) lies entirely within RAM. */
    bool contains(Addr pa, unsigned len = 1) const;

    /** Read @p len (1/2/4/8) bytes at @p pa. Unwritten memory reads 0. */
    std::uint64_t read(Addr pa, unsigned len) const;

    /** Write the low @p len bytes of @p value at @p pa. */
    void write(Addr pa, std::uint64_t value, unsigned len);

    /** Bulk copy out of RAM. */
    void readBlock(Addr pa, void *dst, Addr len) const;

    /** Bulk copy into RAM. */
    void writeBlock(Addr pa, const void *src, Addr len);

    /** Zero-fill a page (used when handing fresh pages to a VM). */
    void zeroPage(Addr pa);

    /** Number of distinct pages materialized (private + shared-only). */
    std::size_t touchedPages() const;

    /// @name COW introspection
    /// @{
    /** Writes that had to copy a shared image page into a private one. */
    std::uint64_t cowFaults() const { return cowFaults_; }
    /** Pages this machine owns privately (written since snapshot). */
    std::size_t privatePages() const { return pages_.size(); }
    /** Pages still shared read-only with the snapshot image. */
    std::size_t sharedPages() const { return image_ ? image_->pages.size() : 0; }
    /// @}

    /// @name Snapshottable
    /// @{
    std::string snapshotKey() const override { return "ram"; }
    /** Publishes the page image and becomes a COW client of it (this is
     *  why Snapshottable::saveState is non-const). */
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    /**
     * The immutable page set a snapshot publishes. An ordered map so that
     * anything walking it (touchedPages, future dirty-page diffing) is
     * deterministic without sorting. Never mutated after construction.
     */
    struct SnapshotImage
    {
        std::map<Addr, std::shared_ptr<const Page>> pages;
    };

    Page &pageFor(Addr pa);
    Page &pageForZero(Addr pa);
    const Page *pageForRead(Addr pa) const;
    void checkRange(Addr pa, Addr len) const;
    void cachePrivate(Addr frame, Page *pg) const;
    void invalidateCaches() const;

    Addr base_;
    Addr size_;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /** Shared snapshot image this PhysMem reads through (null before any
     *  snapshot). Read-only; shared with every clone of the snapshot. */
    std::shared_ptr<const SnapshotImage> image_;

    std::uint64_t cowFaults_ = 0;

    /**
     * Last pages touched: accesses cluster heavily (code fetch, stack, the
     * active buffer), so these turn most hash lookups into one compare.
     * Private pages live as long as the PhysMem and never move, and image
     * pages live as long as the image_ reference, so cached pointers stay
     * good until the maps change. The write cache only ever holds private
     * pages; the read cache may hold a shared image page, which is why the
     * two are separate — a write to a read-cached shared page must still
     * take the COW fault path.
     */
    mutable Addr cachedFrame_ = ~static_cast<Addr>(0);
    mutable Page *cachedPage_ = nullptr;
    mutable Addr readFrame_ = ~static_cast<Addr>(0);
    mutable const Page *readPage_ = nullptr;
};

} // namespace kvmarm

#endif // KVMARM_MEM_PHYS_MEM_HH
