/**
 * @file
 * Sparse backing store for a machine's physical RAM.
 *
 * Pages are materialized on first touch so a simulated 2 GiB machine costs
 * only what the workload actually writes. Contents are real bytes: virtio
 * rings, migration state checks, and the isolation property tests read them
 * back.
 */

#ifndef KVMARM_MEM_PHYS_MEM_HH
#define KVMARM_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace kvmarm {

/** Byte-addressable sparse physical memory covering [base, base+size). */
class PhysMem
{
  public:
    /**
     * @param base First physical address backed by RAM.
     * @param size RAM size in bytes; must be page aligned.
     */
    PhysMem(Addr base, Addr size);

    Addr base() const { return base_; }
    Addr size() const { return size_; }

    /** True if @p pa (for @p len bytes) lies entirely within RAM. */
    bool contains(Addr pa, unsigned len = 1) const;

    /** Read @p len (1/2/4/8) bytes at @p pa. Unwritten memory reads 0. */
    std::uint64_t read(Addr pa, unsigned len) const;

    /** Write the low @p len bytes of @p value at @p pa. */
    void write(Addr pa, std::uint64_t value, unsigned len);

    /** Bulk copy out of RAM. */
    void readBlock(Addr pa, void *dst, Addr len) const;

    /** Bulk copy into RAM. */
    void writeBlock(Addr pa, const void *src, Addr len);

    /** Zero-fill a page (used when handing fresh pages to a VM). */
    void zeroPage(Addr pa);

    /** Number of pages materialized so far (for footprint stats). */
    std::size_t touchedPages() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    Page &pageFor(Addr pa);
    const Page *pageForRead(Addr pa) const;
    void checkRange(Addr pa, Addr len) const;

    Addr base_;
    Addr size_;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /**
     * Last page touched: accesses cluster heavily (code fetch, stack, the
     * active buffer), so this turns most hash lookups into one compare.
     * Pages live as long as the PhysMem and never move (they are separate
     * heap allocations owned by the map), so a cached pointer stays good
     * forever; only materialized pages are cached, so it can't go stale
     * the other way either.
     */
    mutable Addr cachedFrame_ = ~static_cast<Addr>(0);
    mutable Page *cachedPage_ = nullptr;
};

} // namespace kvmarm

#endif // KVMARM_MEM_PHYS_MEM_HH
