#include "mem/bus.hh"

#include "sim/logging.hh"

namespace kvmarm {

void
Bus::addDevice(Addr base, Addr size, MmioDevice *dev)
{
    if (size == 0 || base + size < base)
        fatal("Bus: bad region for %s", dev->name().c_str());
    if (base < ram_.base() + ram_.size() && base + size > ram_.base())
        fatal("Bus: region for %s overlaps RAM", dev->name().c_str());
    for (const Region &r : regions_) {
        if (base < r.base + r.size && base + size > r.base) {
            fatal("Bus: region for %s overlaps %s", dev->name().c_str(),
                  r.dev->name().c_str());
        }
    }
    regions_.push_back({base, size, dev});
}

bool
Bus::isRam(Addr pa, unsigned len) const
{
    return ram_.contains(pa, len);
}

const Bus::Region *
Bus::regionAt(Addr pa) const
{
    for (const Region &r : regions_) {
        if (pa >= r.base && pa < r.base + r.size)
            return &r;
    }
    return nullptr;
}

MmioDevice *
Bus::deviceAt(Addr pa) const
{
    const Region *r = regionAt(pa);
    return r ? r->dev : nullptr;
}

Addr
Bus::regionBase(const MmioDevice *dev) const
{
    for (const Region &r : regions_) {
        if (r.dev == dev)
            return r.base;
    }
    return 0;
}

BusAccess
Bus::read(CpuId cpu, Addr pa, unsigned len)
{
    if (isRam(pa, len))
        return {ram_.read(pa, len), kRamLatency, true};
    if (const Region *r = regionAt(pa)) {
        std::uint64_t v = r->dev->read(cpu, pa - r->base, len);
        return {v, r->dev->accessLatency(), true};
    }
    return {0, 0, false};
}

BusAccess
Bus::write(CpuId cpu, Addr pa, std::uint64_t value, unsigned len)
{
    if (isRam(pa, len)) {
        ram_.write(pa, value, len);
        return {0, kRamLatency, true};
    }
    if (const Region *r = regionAt(pa)) {
        r->dev->write(cpu, pa - r->base, value, len);
        return {0, r->dev->accessLatency(), true};
    }
    return {0, 0, false};
}

} // namespace kvmarm
