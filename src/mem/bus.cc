#include "mem/bus.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace kvmarm {

void
Bus::addDevice(Addr base, Addr size, MmioDevice *dev)
{
    if (size == 0 || base + size < base)
        fatal("Bus: bad region for %s", dev->name().c_str());
    if (base < ram_.base() + ram_.size() && base + size > ram_.base())
        fatal("Bus: region for %s overlaps RAM", dev->name().c_str());
    for (const Region &r : regions_) {
        if (base < r.base + r.size && base + size > r.base) {
            fatal("Bus: region for %s overlaps %s", dev->name().c_str(),
                  r.dev->name().c_str());
        }
    }
    auto pos = std::upper_bound(
        regions_.begin(), regions_.end(), base,
        [](Addr b, const Region &r) { return b < r.base; });
    regions_.insert(pos, {base, size, dev});
    lastRegion_.clear(); // insertion moved the Region objects
}

bool
Bus::isRam(Addr pa, unsigned len) const
{
    return ram_.contains(pa, len);
}

const Bus::Region *
Bus::regionAt(Addr pa) const
{
    // regions_ is sorted by base and non-overlapping: the only candidate is
    // the last region starting at or below pa.
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), pa,
        [](Addr a, const Region &r) { return a < r.base; });
    if (it == regions_.begin())
        return nullptr;
    --it;
    return pa - it->base < it->size ? &*it : nullptr;
}

const Bus::Region *
Bus::regionFor(CpuId cpu, Addr pa) const
{
    if (cpu < lastRegion_.size()) {
        const Region *r = lastRegion_[cpu];
        if (r && pa >= r->base && pa - r->base < r->size)
            return r;
    }
    const Region *r = regionAt(pa);
    if (r) {
        if (cpu >= lastRegion_.size())
            lastRegion_.resize(cpu + 1, nullptr);
        lastRegion_[cpu] = r;
    }
    return r;
}

MmioDevice *
Bus::deviceAt(Addr pa) const
{
    const Region *r = regionAt(pa);
    return r ? r->dev : nullptr;
}

std::optional<Addr>
Bus::regionBase(const MmioDevice *dev) const
{
    for (const Region &r : regions_) {
        if (r.dev == dev)
            return r.base;
    }
    return std::nullopt;
}

BusAccess
Bus::read(CpuId cpu, Addr pa, unsigned len)
{
    if (isRam(pa, len))
        return {ram_.read(pa, len), kRamLatency, true};
    if (const Region *r = regionFor(cpu, pa)) {
        std::uint64_t v = r->dev->read(cpu, pa - r->base, len);
        return {v, r->dev->accessLatency(), true};
    }
    return {0, 0, false};
}

BusAccess
Bus::write(CpuId cpu, Addr pa, std::uint64_t value, unsigned len)
{
    if (isRam(pa, len)) {
        ram_.write(pa, value, len);
        return {0, kRamLatency, true};
    }
    if (const Region *r = regionFor(cpu, pa)) {
        r->dev->write(cpu, pa - r->base, value, len);
        return {0, r->dev->accessLatency(), true};
    }
    return {0, 0, false};
}

} // namespace kvmarm
