#include "mem/phys_mem.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace kvmarm {

PhysMem::PhysMem(Addr base, Addr size) : base_(base), size_(size)
{
    if (!isPageAligned(base) || !isPageAligned(size) || size == 0)
        fatal("PhysMem: base/size must be nonzero and page aligned");
}

bool
PhysMem::contains(Addr pa, unsigned len) const
{
    return pa >= base_ && pa + len <= base_ + size_ && pa + len > pa;
}

void
PhysMem::checkRange(Addr pa, Addr len) const
{
    if (!contains(pa, static_cast<unsigned>(len)))
        panic("PhysMem: access [%#llx,+%llu) outside RAM [%#llx,+%llu)",
              static_cast<unsigned long long>(pa), static_cast<unsigned long long>(len),
              static_cast<unsigned long long>(base_), static_cast<unsigned long long>(size_));
}

void
PhysMem::cachePrivate(Addr frame, Page *pg) const
{
    cachedFrame_ = frame;
    cachedPage_ = pg;
    // Keep the read cache coherent: it may still point at the shared image
    // copy of this frame, which just became stale for this machine.
    readFrame_ = frame;
    readPage_ = pg;
}

void
PhysMem::invalidateCaches() const
{
    cachedFrame_ = ~static_cast<Addr>(0);
    cachedPage_ = nullptr;
    readFrame_ = ~static_cast<Addr>(0);
    readPage_ = nullptr;
}

PhysMem::Page &
PhysMem::pageFor(Addr pa)
{
    Addr frame = pageAlignDown(pa);
    if (frame == cachedFrame_)
        return *cachedPage_;
    auto &slot = pages_[frame];
    if (!slot) {
        slot = std::make_unique<Page>();
        const Page *shared = nullptr;
        if (image_) {
            auto it = image_->pages.find(frame);
            if (it != image_->pages.end())
                shared = it->second.get();
        }
        if (shared) {
            // COW fault: first write to a page still shared with the
            // snapshot image; copy it into a machine-private page.
            *slot = *shared;
            ++cowFaults_;
        } else {
            slot->fill(0);
        }
    }
    cachePrivate(frame, slot.get());
    return *slot;
}

PhysMem::Page &
PhysMem::pageForZero(Addr pa)
{
    // Like pageFor, but the caller is about to zero the whole page, so a
    // shared image page is *not* copied first.
    Addr frame = pageAlignDown(pa);
    if (frame == cachedFrame_)
        return *cachedPage_;
    auto &slot = pages_[frame];
    if (!slot)
        slot = std::make_unique<Page>();
    cachePrivate(frame, slot.get());
    return *slot;
}

const PhysMem::Page *
PhysMem::pageForRead(Addr pa) const
{
    Addr frame = pageAlignDown(pa);
    if (frame == readFrame_)
        return readPage_;
    auto it = pages_.find(frame);
    if (it != pages_.end()) {
        readFrame_ = frame;
        readPage_ = it->second.get();
        return readPage_;
    }
    if (image_) {
        auto jt = image_->pages.find(frame);
        if (jt != image_->pages.end()) {
            readFrame_ = frame;
            readPage_ = jt->second.get();
            return readPage_;
        }
    }
    return nullptr;
}

std::uint64_t
PhysMem::read(Addr pa, unsigned len) const
{
    checkRange(pa, len);
    std::uint64_t v = 0;
    if ((pa & (len - 1)) == 0) {
        // Naturally aligned: cannot cross a page, skip the block loop.
        if (const Page *pg = pageForRead(pa))
            std::memcpy(&v, pg->data() + (pa & (kPageSize - 1)), len);
        return v;
    }
    readBlock(pa, &v, len);
    return v;
}

void
PhysMem::write(Addr pa, std::uint64_t value, unsigned len)
{
    checkRange(pa, len);
    if ((pa & (len - 1)) == 0) {
        std::memcpy(pageFor(pa).data() + (pa & (kPageSize - 1)), &value, len);
        return;
    }
    writeBlock(pa, &value, len);
}

void
PhysMem::readBlock(Addr pa, void *dst, Addr len) const
{
    checkRange(pa, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        Addr off = pa & (kPageSize - 1);
        Addr chunk = std::min<Addr>(len, kPageSize - off);
        const Page *pg = pageForRead(pa);
        if (pg)
            std::memcpy(out, pg->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        pa += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
PhysMem::writeBlock(Addr pa, const void *src, Addr len)
{
    checkRange(pa, len);
    auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        Addr off = pa & (kPageSize - 1);
        Addr chunk = std::min<Addr>(len, kPageSize - off);
        std::memcpy(pageFor(pa).data() + off, in, chunk);
        pa += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
PhysMem::zeroPage(Addr pa)
{
    checkRange(pa, kPageSize);
    if (!isPageAligned(pa))
        panic("PhysMem::zeroPage: unaligned %#llx", static_cast<unsigned long long>(pa));
    pageForZero(pa).fill(0);
}

std::size_t
PhysMem::touchedPages() const
{
    if (!image_)
        return pages_.size();
    std::size_t n = pages_.size();
    for (const auto &[frame, pg] : image_->pages) {
        if (!pages_.count(frame))
            ++n;
    }
    return n;
}

void
PhysMem::saveState(SnapshotWriter &w)
{
    // Publish every page this machine can currently see into one immutable
    // image: the previous image's pages (clone-of-clone chains flatten
    // here) overlaid with this machine's private pages. The private pages
    // move into the image without copying bytes, and this PhysMem becomes
    // a COW client of the new image — symmetric with every clone, so the
    // origin and its clones fault identically from here on.
    auto img = std::make_shared<SnapshotImage>();
    if (image_)
        img->pages = image_->pages;
    std::vector<Addr> frames;
    frames.reserve(pages_.size());
    // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
    for (auto &[frame, pg] : pages_)
        frames.push_back(frame);
    std::sort(frames.begin(), frames.end());
    for (Addr frame : frames) {
        auto it = pages_.find(frame);
        img->pages[frame] = std::shared_ptr<const Page>(it->second.release());
    }
    pages_.clear();
    image_ = img;
    invalidateCaches();

    w.u64(base_);
    w.u64(size_);
    w.u64(cowFaults_);
    w.attach(std::static_pointer_cast<const void>(
        std::shared_ptr<const SnapshotImage>(img)));
}

void
PhysMem::restoreState(SnapshotReader &r)
{
    Addr base = r.u64();
    Addr size = r.u64();
    if (base != base_ || size != size_)
        fatal("PhysMem::restoreState: snapshot RAM [%#llx,+%llu) does not "
              "match this machine's [%#llx,+%llu)",
              static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(size),
              static_cast<unsigned long long>(base_),
              static_cast<unsigned long long>(size_));
    cowFaults_ = r.u64();
    auto img = std::static_pointer_cast<const SnapshotImage>(r.attachment());
    if (!img)
        fatal("PhysMem::restoreState: record carries no page image");
    image_ = std::move(img);
    // Whatever this machine wrote before the restore (boot-time page-table
    // scribbles from its own construction) is superseded by the image.
    pages_.clear();
    invalidateCaches();
}

} // namespace kvmarm
