#include "mem/phys_mem.hh"

#include <cstring>

#include "sim/logging.hh"

namespace kvmarm {

PhysMem::PhysMem(Addr base, Addr size) : base_(base), size_(size)
{
    if (!isPageAligned(base) || !isPageAligned(size) || size == 0)
        fatal("PhysMem: base/size must be nonzero and page aligned");
}

bool
PhysMem::contains(Addr pa, unsigned len) const
{
    return pa >= base_ && pa + len <= base_ + size_ && pa + len > pa;
}

void
PhysMem::checkRange(Addr pa, Addr len) const
{
    if (!contains(pa, static_cast<unsigned>(len)))
        panic("PhysMem: access [%#llx,+%llu) outside RAM [%#llx,+%llu)",
              static_cast<unsigned long long>(pa), static_cast<unsigned long long>(len),
              static_cast<unsigned long long>(base_), static_cast<unsigned long long>(size_));
}

PhysMem::Page &
PhysMem::pageFor(Addr pa)
{
    Addr frame = pageAlignDown(pa);
    if (frame == cachedFrame_)
        return *cachedPage_;
    auto &slot = pages_[frame];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    cachedFrame_ = frame;
    cachedPage_ = slot.get();
    return *slot;
}

const PhysMem::Page *
PhysMem::pageForRead(Addr pa) const
{
    Addr frame = pageAlignDown(pa);
    if (frame == cachedFrame_)
        return cachedPage_;
    auto it = pages_.find(frame);
    if (it == pages_.end())
        return nullptr;
    cachedFrame_ = frame;
    cachedPage_ = it->second.get();
    return it->second.get();
}

std::uint64_t
PhysMem::read(Addr pa, unsigned len) const
{
    checkRange(pa, len);
    std::uint64_t v = 0;
    if ((pa & (len - 1)) == 0) {
        // Naturally aligned: cannot cross a page, skip the block loop.
        if (const Page *pg = pageForRead(pa))
            std::memcpy(&v, pg->data() + (pa & (kPageSize - 1)), len);
        return v;
    }
    readBlock(pa, &v, len);
    return v;
}

void
PhysMem::write(Addr pa, std::uint64_t value, unsigned len)
{
    checkRange(pa, len);
    if ((pa & (len - 1)) == 0) {
        std::memcpy(pageFor(pa).data() + (pa & (kPageSize - 1)), &value, len);
        return;
    }
    writeBlock(pa, &value, len);
}

void
PhysMem::readBlock(Addr pa, void *dst, Addr len) const
{
    checkRange(pa, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        Addr off = pa & (kPageSize - 1);
        Addr chunk = std::min<Addr>(len, kPageSize - off);
        const Page *pg = pageForRead(pa);
        if (pg)
            std::memcpy(out, pg->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        pa += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
PhysMem::writeBlock(Addr pa, const void *src, Addr len)
{
    checkRange(pa, len);
    auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        Addr off = pa & (kPageSize - 1);
        Addr chunk = std::min<Addr>(len, kPageSize - off);
        std::memcpy(pageFor(pa).data() + off, in, chunk);
        pa += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
PhysMem::zeroPage(Addr pa)
{
    checkRange(pa, kPageSize);
    if (!isPageAligned(pa))
        panic("PhysMem::zeroPage: unaligned %#llx", static_cast<unsigned long long>(pa));
    pageFor(pa).fill(0);
}

} // namespace kvmarm
