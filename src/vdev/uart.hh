/**
 * @file
 * A PL011-flavoured UART: the canonical "device emulated in user space"
 * for VMs, and a real bus device natively.
 */

#ifndef KVMARM_VDEV_UART_HH
#define KVMARM_VDEV_UART_HH

#include <string>

#include "mem/bus.hh"
#include "sim/types.hh"

namespace kvmarm::vdev {

/// UART register offsets.
namespace uart {
inline constexpr Addr DR = 0x00; //!< data register
inline constexpr Addr FR = 0x18; //!< flag register (always ready here)
} // namespace uart

/** Console UART; collects output for tests and examples. */
class Uart : public MmioDevice
{
  public:
    explicit Uart(Cycles latency, bool echo_to_stdout = false)
        : latency_(latency), echo_(echo_to_stdout)
    {
    }

    std::string name() const override { return "uart"; }

    std::uint64_t
    read(CpuId, Addr offset, unsigned) override
    {
        return offset == uart::FR ? 0 : 0; // TX always ready
    }

    void
    write(CpuId, Addr offset, std::uint64_t value, unsigned) override
    {
        if (offset == uart::DR) {
            output_ += static_cast<char>(value);
            if (echo_)
                std::fputc(static_cast<int>(value), stdout);
        }
    }

    Cycles accessLatency() const override { return latency_; }

    const std::string &output() const { return output_; }
    void clear() { output_.clear(); }

  private:
    Cycles latency_;
    bool echo_;
    std::string output_;
};

} // namespace kvmarm::vdev

#endif // KVMARM_VDEV_UART_HH
