#include "vdev/qemu.hh"

#include "arm/machine.hh"
#include "sim/logging.hh"
#include "x86/machine.hh"

namespace kvmarm::vdev {

using arm::ArmMachine;
using x86::X86Machine;

DevProfile
usbEthProfile()
{
    // 100 Mb Ethernet behind the Arndale's USB bus: ~17 cycles/byte at
    // 1.7 GHz plus per-packet host controller overhead.
    return {"usb-eth", 16000, 17, 80};
}

DevProfile
ssdProfile()
{
    // External SSD: ~50 us access, ~250 MB/s -> ~7 cycles/byte.
    return {"ssd", 85000, 7, 80};
}

QemuArm::QemuArm(core::Kvm &kvm, core::Vm &vm)
    : kvm_(kvm), vm_(vm), uart_(120)
{
    vm_.setUserMmioHandler(
        [this](arm::ArmCpu &cpu, core::VCpu &vcpu, core::MmioExit &exit) {
            handleMmio(cpu, vcpu, exit);
        });
    kvm_.host().requestIrq(kIothreadSpi, [this](arm::ArmCpu &cpu, IrqId) {
        iothreadIrq(cpu);
    });
    kvm_.host().enableIrq(kvm_.machine().cpu(0), kIothreadSpi);
}

void
QemuArm::addDevice(unsigned slot, const DevProfile &profile)
{
    if (devs_.size() <= slot)
        devs_.resize(slot + 1);
    devs_[slot] = {true, profile, 0};
}

std::uint64_t
QemuArm::completed(unsigned slot) const
{
    return slot < devs_.size() ? devs_[slot].completed : 0;
}

void
QemuArm::handleMmio(arm::ArmCpu &cpu, core::VCpu &vcpu,
                    core::MmioExit &exit)
{
    (void)vcpu;
    cpu.compute(kQemuDeviceWork);

    // UART region.
    if (exit.ipa >= ArmMachine::kUartBase &&
        exit.ipa < ArmMachine::kUartBase + 0x1000) {
        Addr off = exit.ipa - ArmMachine::kUartBase;
        if (exit.isWrite)
            uart_.write(cpu.id(), off, exit.data, exit.len);
        else
            exit.data = uart_.read(cpu.id(), off, exit.len);
        exit.handled = true;
        return;
    }

    // Emulated kick/complete devices in the virtio slots.
    if (exit.ipa >= ArmMachine::kVirtioBase) {
        unsigned slot =
            static_cast<unsigned>((exit.ipa - ArmMachine::kVirtioBase) /
                                  0x1000);
        Addr off = (exit.ipa - ArmMachine::kVirtioBase) % 0x1000;
        if (slot < devs_.size() && devs_[slot].present) {
            EmuDev &dev = devs_[slot];
            if (exit.isWrite && off == modeldev::KICK) {
                Cycles latency = dev.profile.fixedLatency +
                                 exit.data * dev.profile.cyclesPerByte;
                Cycles done = cpu.now() + latency;
                // The completion lands in QEMU's iothread: queue it and
                // signal the host through the iothread interrupt.
                cpu.events().schedule(done, [this, slot, done] {
                    completions_.push_back(slot);
                    kvm_.machine().gicd().raiseSpi(kIothreadSpi, done);
                });
            } else if (!exit.isWrite && off == modeldev::STATUS) {
                exit.data = dev.completed;
            }
            exit.handled = true;
            return;
        }
    }

    exit.handled = false;
}

void
QemuArm::iothreadIrq(arm::ArmCpu &cpu)
{
    // Host-side completion processing: eventfd wakeup, then inject the
    // guest's virtual interrupt through KVM_IRQ_LINE (paper §3.5).
    while (!completions_.empty()) {
        unsigned slot = completions_.front();
        completions_.pop_front();
        cpu.compute(kIothreadWork);
        ++devs_[slot].completed;
        // DMA the used counter into guest memory (virtio used ring).
        Addr ipa = ArmMachine::kRamBase + kUsedPageOffset + slot * 8;
        vm_.stage2().handleRamFault(ipa);
        if (auto pa = vm_.stage2().ipaToPa(ipa))
            kvm_.machine().ram().write(*pa, devs_[slot].completed, 8);
        vm_.irqLine(cpu, kDevSpiBase + slot);
    }
}

QemuX86::QemuX86(kvmx86::KvmX86 &kvm, kvmx86::VmX86 &vm)
    : kvm_(kvm), vm_(vm), uart_(120)
{
    vm_.setUserMmioHandler([this](x86::X86Cpu &cpu, kvmx86::VCpuX86 &vcpu,
                                  kvmx86::X86MmioExit &exit) {
        handleMmio(cpu, vcpu, exit);
    });
    kvm_.host().requestVector(kIothreadVector, [this](x86::X86Cpu &cpu) {
        iothreadIrq(cpu);
    });
}

void
QemuX86::addDevice(unsigned slot, const DevProfile &profile)
{
    if (devs_.size() <= slot)
        devs_.resize(slot + 1);
    devs_[slot] = {true, profile, 0};
}

std::uint64_t
QemuX86::completed(unsigned slot) const
{
    return slot < devs_.size() ? devs_[slot].completed : 0;
}

void
QemuX86::handleMmio(x86::X86Cpu &cpu, kvmx86::VCpuX86 &vcpu,
                    kvmx86::X86MmioExit &exit)
{
    (void)vcpu;
    cpu.compute(kQemuDeviceWork);

    if (exit.isPortIo) {
        // Console on a port: swallow writes.
        exit.handled = true;
        return;
    }
    if (exit.gpa >= X86Machine::kUartMmioBase &&
        exit.gpa < X86Machine::kUartMmioBase + 0x1000) {
        Addr off = exit.gpa - X86Machine::kUartMmioBase;
        if (exit.isWrite)
            uart_.write(cpu.id(), off, exit.data, exit.len);
        else
            exit.data = uart_.read(cpu.id(), off, exit.len);
        exit.handled = true;
        return;
    }
    if (exit.gpa >= X86Machine::kVirtioBase) {
        unsigned slot = static_cast<unsigned>(
            (exit.gpa - X86Machine::kVirtioBase) / 0x1000);
        Addr off = (exit.gpa - X86Machine::kVirtioBase) % 0x1000;
        if (slot < devs_.size() && devs_[slot].present) {
            EmuDev &dev = devs_[slot];
            if (exit.isWrite && off == modeldev::KICK) {
                Cycles latency = dev.profile.fixedLatency +
                                 exit.data * dev.profile.cyclesPerByte;
                Cycles done = cpu.now() + latency;
                cpu.events().schedule(done, [this, slot, done, &cpu] {
                    completions_.push_back(slot);
                    kvm_.machine().apic().postVector(cpu.id(),
                                                     kIothreadVector, done);
                });
            } else if (!exit.isWrite && off == modeldev::STATUS) {
                exit.data = dev.completed;
            }
            exit.handled = true;
            return;
        }
    }
    exit.handled = false;
}

void
QemuX86::iothreadIrq(x86::X86Cpu &cpu)
{
    while (!completions_.empty()) {
        unsigned slot = completions_.front();
        completions_.pop_front();
        cpu.compute(kIothreadWork);
        ++devs_[slot].completed;
        Addr gpa = kUsedPageOffset + slot * 8;
        vm_.handleEptFault(gpa);
        Addr hpa = 0;
        if (vm_.translate(gpa, hpa))
            kvm_.machine().ram().write(hpa, devs_[slot].completed, 8);
        vm_.irqLine(cpu, kDevVectorBase + slot, 0);
    }
}

} // namespace kvmarm::vdev
