/**
 * @file
 * A kick/complete device model standing in for the paper's testbed
 * peripherals (USB 100 Mb Ethernet, eSATA SSD). The software-visible
 * structure is what matters for the reproduction: a doorbell MMIO write
 * starts an operation; after a device-dependent latency a completion
 * interrupt arrives. Natively it is a bus device raising its SPI directly;
 * in a VM the same device is emulated by QEMU (vdev/qemu.hh).
 */

#ifndef KVMARM_VDEV_MODEL_DEV_HH
#define KVMARM_VDEV_MODEL_DEV_HH

#include <functional>
#include <string>

#include "mem/bus.hh"
#include "sim/cpu_base.hh"
#include "sim/types.hh"

namespace kvmarm::vdev {

/// Doorbell device register offsets.
namespace modeldev {
inline constexpr Addr KICK = 0x00;   //!< write: start op (value = nbytes)
inline constexpr Addr STATUS = 0x04; //!< read: completed op count
} // namespace modeldev

/** Offset (from RAM base) of the virtio-style "used counter" page the
 *  devices DMA their completion counts into: interrupts may coalesce, so
 *  drivers read progress from shared memory, exactly as virtio's used
 *  ring works (paper §3.4). One 64-bit counter per slot. */
inline constexpr Addr kUsedPageOffset = 0x2000;

/** Latency/bandwidth profile of a modelled peripheral. */
struct DevProfile
{
    std::string name;
    Cycles fixedLatency;    //!< per-op latency (seek, wire RTT share...)
    Cycles cyclesPerByte;   //!< 1/bandwidth
    Cycles mmioLatency = 80;
};

/** 100 Mb Ethernet on a 1.7 GHz clock: ~0.136 cycles/bit -> 17 c/B; the
 *  per-packet fixed cost covers the USB host controller path. */
DevProfile usbEthProfile();

/** eSATA SSD: ~90us access latency, ~250 MB/s. */
DevProfile ssdProfile();

/**
 * The native attachment: a bus device that completes @p fixedLatency +
 * nbytes * cyclesPerByte after the kick and then raises an interrupt via
 * the machine-specific @p raise_irq callback.
 */
class ModelDevice : public MmioDevice
{
  public:
    using RaiseIrq = std::function<void(Cycles when)>;

    /** Writes the completion count into memory (DMA to the used page). */
    using DmaUsed = std::function<void(std::uint64_t completed)>;

    ModelDevice(const DevProfile &profile, CpuBase &completion_cpu,
                RaiseIrq raise_irq, DmaUsed dma_used = {})
        : profile_(profile), cpu_(completion_cpu),
          raiseIrq_(std::move(raise_irq)), dmaUsed_(std::move(dma_used))
    {
    }

    std::string name() const override { return profile_.name; }

    std::uint64_t
    read(CpuId, Addr offset, unsigned) override
    {
        return offset == modeldev::STATUS ? completed_ : 0;
    }

    void
    write(CpuId, Addr offset, std::uint64_t value, unsigned) override
    {
        if (offset != modeldev::KICK)
            return;
        Cycles done = cpu_.now() + opLatency(static_cast<Addr>(value));
        cpu_.events().schedule(done, [this, done] {
            ++completed_;
            if (dmaUsed_)
                dmaUsed_(completed_);
            raiseIrq_(done);
        });
    }

    Cycles accessLatency() const override { return profile_.mmioLatency; }

    Cycles
    opLatency(Addr nbytes) const
    {
        return profile_.fixedLatency + nbytes * profile_.cyclesPerByte;
    }

    std::uint64_t completed() const { return completed_; }

  private:
    DevProfile profile_;
    CpuBase &cpu_;
    RaiseIrq raiseIrq_;
    DmaUsed dmaUsed_;
    std::uint64_t completed_ = 0;
};

} // namespace kvmarm::vdev

#endif // KVMARM_VDEV_MODEL_DEV_HH
