/**
 * @file
 * Virtio-style shared-memory inter-VM ring device (DESIGN.md §4.10).
 *
 * A VringDevice pairs one VM with a RingChannel endpoint. The guest owns a
 * TX descriptor ring in its RAM; posting a message is: fill a descriptor +
 * payload, bump the avail index, then ring the MMIO doorbell — a Stage-2
 * trap to user space, exactly the paper's trap → Stage-2 → MMIO-emulation
 * path. The device DMAs the payload out of guest memory, cycle-stamps it
 * into the channel, writes back the used index and injects a TX-complete
 * SPI through the vGIC. Deliveries arrive from the channel at
 * send_cycle + latency: the device DMAs the payload into the guest's RX
 * ring, bumps the used index and injects the RX SPI — so every message
 * exercises the full paper path on both machines.
 *
 * All guest-visible effects (ring indices, IRQ injection cycles, payload
 * bytes) are pure functions of simulated execution; the device keeps
 * FNV-1a digests of everything sent and delivered so benches can assert
 * bit-identical message logs across host-thread counts.
 */

#ifndef KVMARM_VDEV_VRING_HH
#define KVMARM_VDEV_VRING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/kvm.hh"
#include "sim/ring_channel.hh"

namespace kvmarm::vdev {

/** Guest-visible vring layout and register map, shared with the guest
 *  driver (workload layer). All ring structures live in guest RAM. */
namespace vringdev {

/** MMIO register block (one 4 KiB page). */
inline constexpr Addr kMmioBase = 0x0C000000;
inline constexpr Addr kMmioSize = 0x1000;

/// Register offsets within the MMIO page.
inline constexpr Addr DOORBELL = 0x00; //!< W: new TX avail index
inline constexpr Addr RX_ACK = 0x08;   //!< W: RX used index consumed
inline constexpr Addr TX_USED = 0x10;  //!< R: TX used (accepted) index
inline constexpr Addr RX_USED = 0x18;  //!< R: RX used (delivered) index
inline constexpr Addr RING_SIZE = 0x20; //!< R: entries per ring

/** Ring header (at the ring's base IPA): size, avail, used, pad (u32s). */
inline constexpr Addr kHdrAvail = 4;
inline constexpr Addr kHdrUsed = 8;
inline constexpr Addr kHdrBytes = 16;
/** Descriptor i at base + kHdrBytes + i*kDescBytes: u64 addr, u32 len,
 *  u32 flags. */
inline constexpr Addr kDescBytes = 16;
/** Payload buffers by convention start one page into the ring region. */
inline constexpr Addr kPayloadOff = 0x1000;

/** Default ring placement (IPA offsets from the RAM base). */
inline constexpr Addr kTxRingOff = 0x40000;
inline constexpr Addr kRxRingOff = 0x60000;

/** Guest SPIs (SPI range is 32..): TX complete and RX delivery. */
inline constexpr IrqId kTxSpi = 56;
inline constexpr IrqId kRxSpi = 57;

/** User-space emulation cost per vring MMIO access. */
inline constexpr Cycles kMmioWork = 500;

} // namespace vringdev

/** One VM's attachment to a shared-memory inter-VM ring. */
class VringDevice
{
  public:
    struct Config
    {
        unsigned entries = 64;       //!< descriptors per ring direction
        std::uint32_t bufBytes = 256; //!< max payload bytes per message
        Addr mmioBase = vringdev::kMmioBase;
        IrqId txSpi = vringdev::kTxSpi;
        IrqId rxSpi = vringdev::kRxSpi;
    };

    /**
     * Installs itself as @p vm's user-space MMIO handler and as the
     * receiver of @p ep. Adds a snapshot blocker on the machine: ring
     * state (in-flight messages, ring progress counters) lives outside
     * the machine's snapshottable component set.
     */
    VringDevice(core::Kvm &kvm, core::Vm &vm, RingChannel::Endpoint &ep,
                const Config &cfg);
    VringDevice(core::Kvm &kvm, core::Vm &vm, RingChannel::Endpoint &ep);
    ~VringDevice();

    VringDevice(const VringDevice &) = delete;
    VringDevice &operator=(const VringDevice &) = delete;

    /** Messages accepted from the guest's TX ring so far. */
    std::uint64_t txCount() const { return txUsed_; }
    /** Messages delivered into the guest's RX ring so far. */
    std::uint64_t rxCount() const { return rxUsed_; }

    /** FNV-1a digest over every (cycle, seq, payload) sent + delivered;
     *  bit-identical runs produce bit-identical digests. */
    std::uint64_t digest() const;

  private:
    void handleMmio(arm::ArmCpu &cpu, core::VCpu &vcpu,
                    core::MmioExit &exit);
    void handleDoorbell(arm::ArmCpu &cpu, std::uint32_t availIdx);
    void deliver(const RingMessage &msg);

    std::uint64_t dmaRead(Addr ipa, unsigned len);
    void dmaWrite(Addr ipa, std::uint64_t value, unsigned len);

    core::Kvm &kvm_;
    core::Vm &vm_;
    RingChannel::Endpoint &ep_;
    Config cfg_;
    Addr txRing_; //!< TX ring base IPA
    Addr rxRing_; //!< RX ring base IPA
    std::uint64_t txUsed_ = 0;  //!< TX descriptors consumed (== sends)
    std::uint64_t rxUsed_ = 0;  //!< RX deliveries completed
    std::uint64_t rxAcked_ = 0; //!< RX deliveries the guest consumed
    std::uint64_t txDigest_ = 0x811c9dc5;
    std::uint64_t rxDigest_ = 0x811c9dc5;
    std::uint64_t blockerToken_ = 0;
};

} // namespace kvmarm::vdev

#endif // KVMARM_VDEV_VRING_HH
