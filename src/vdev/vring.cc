#include "vdev/vring.hh"

#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/vm.hh"
#include "sim/logging.hh"

namespace kvmarm::vdev {

using arm::ArmMachine;

namespace {

/** FNV-1a folds; the digest is a pure function of simulated execution. */
std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xFF;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
foldBytes(std::uint64_t h, const std::vector<std::uint8_t> &bytes)
{
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

VringDevice::VringDevice(core::Kvm &kvm, core::Vm &vm,
                         RingChannel::Endpoint &ep, const Config &cfg)
    : kvm_(kvm), vm_(vm), ep_(ep), cfg_(cfg),
      txRing_(ArmMachine::kRamBase + vringdev::kTxRingOff),
      rxRing_(ArmMachine::kRamBase + vringdev::kRxRingOff)
{
    if (cfg_.entries == 0)
        fatal("VringDevice('%s'): zero-entry ring",
              ep_.channel().name().c_str());
    vm_.setUserMmioHandler(
        [this](arm::ArmCpu &cpu, core::VCpu &vcpu, core::MmioExit &exit) {
            handleMmio(cpu, vcpu, exit);
        });
    // Deliveries arrive at window pulls (machine quiesced) and become
    // ordinary events at their protocol delivery cycle, so the guest sees
    // them through the same event drain as every other device.
    ep_.setReceiver([this](const RingMessage &msg) {
        kvm_.machine().cpu(0).events().schedule(
            msg.deliverCycle, [this, msg] { deliver(msg); });
    });
    blockerToken_ = kvm_.machine().addSnapshotBlocker(
        "vring device on ring '" + ep_.channel().name() +
        "' holds live inter-VM ring state (progress counters and "
        "possibly in-flight messages) that a snapshot cannot capture");
}

VringDevice::VringDevice(core::Kvm &kvm, core::Vm &vm,
                         RingChannel::Endpoint &ep)
    : VringDevice(kvm, vm, ep, Config{})
{
}

VringDevice::~VringDevice()
{
    kvm_.machine().removeSnapshotBlocker(blockerToken_);
}

std::uint64_t
VringDevice::digest() const
{
    return fold(txDigest_, rxDigest_);
}

std::uint64_t
VringDevice::dmaRead(Addr ipa, unsigned len)
{
    vm_.stage2().handleRamFault(ipa);
    auto pa = vm_.stage2().ipaToPa(ipa);
    if (!pa)
        fatal("VringDevice('%s'): DMA read at unmapped IPA 0x%llx",
              ep_.channel().name().c_str(),
              static_cast<unsigned long long>(ipa));
    return kvm_.machine().ram().read(*pa, len);
}

void
VringDevice::dmaWrite(Addr ipa, std::uint64_t value, unsigned len)
{
    vm_.stage2().handleRamFault(ipa);
    auto pa = vm_.stage2().ipaToPa(ipa);
    if (!pa)
        fatal("VringDevice('%s'): DMA write at unmapped IPA 0x%llx",
              ep_.channel().name().c_str(),
              static_cast<unsigned long long>(ipa));
    kvm_.machine().ram().write(*pa, value, len);
}

void
VringDevice::handleMmio(arm::ArmCpu &cpu, core::VCpu &vcpu,
                        core::MmioExit &exit)
{
    (void)vcpu;
    if (exit.ipa < cfg_.mmioBase ||
        exit.ipa >= cfg_.mmioBase + vringdev::kMmioSize) {
        exit.handled = false;
        return;
    }
    cpu.compute(vringdev::kMmioWork);
    Addr off = exit.ipa - cfg_.mmioBase;
    if (exit.isWrite) {
        switch (off) {
          case vringdev::DOORBELL:
            handleDoorbell(cpu, static_cast<std::uint32_t>(exit.data));
            break;
          case vringdev::RX_ACK: {
            std::uint64_t acked = exit.data;
            if (acked < rxAcked_ || acked > rxUsed_)
                fatal("VringDevice('%s'): RX_ACK %llu outside [%llu, %llu]",
                      ep_.channel().name().c_str(),
                      static_cast<unsigned long long>(acked),
                      static_cast<unsigned long long>(rxAcked_),
                      static_cast<unsigned long long>(rxUsed_));
            rxAcked_ = acked;
            break;
          }
          default:
            exit.handled = false;
            return;
        }
    } else {
        switch (off) {
          case vringdev::TX_USED:
            exit.data = txUsed_;
            break;
          case vringdev::RX_USED:
            exit.data = rxUsed_;
            break;
          case vringdev::RING_SIZE:
            exit.data = cfg_.entries;
            break;
          default:
            exit.handled = false;
            return;
        }
    }
    exit.handled = true;
}

void
VringDevice::handleDoorbell(arm::ArmCpu &cpu, std::uint32_t availIdx)
{
    const char *ring = ep_.channel().name().c_str();
    if (availIdx < txUsed_ || availIdx - txUsed_ > cfg_.entries)
        fatal("VringDevice('%s'): doorbell avail index %u with used %llu "
              "(ring holds %u entries)",
              ring, availIdx, static_cast<unsigned long long>(txUsed_),
              cfg_.entries);
    while (txUsed_ < availIdx) {
        std::uint64_t seq = txUsed_;
        unsigned slot = static_cast<unsigned>(seq % cfg_.entries);
        Addr desc = txRing_ + vringdev::kHdrBytes +
                    slot * vringdev::kDescBytes;
        Addr addr = dmaRead(desc, 8);
        std::uint32_t len =
            static_cast<std::uint32_t>(dmaRead(desc + 8, 4));
        if (len == 0 || len > cfg_.bufBytes)
            fatal("VringDevice('%s'): TX descriptor %u has payload length "
                  "%u (buffer holds %u)",
                  ring, slot, len, cfg_.bufBytes);
        std::vector<std::uint8_t> payload(len);
        std::uint32_t got = 0;
        while (got + 8 <= len) {
            std::uint64_t chunk = dmaRead(addr + got, 8);
            for (unsigned b = 0; b < 8; ++b)
                payload[got + b] = (chunk >> (b * 8)) & 0xFF;
            got += 8;
        }
        for (; got < len; ++got)
            payload[got] =
                static_cast<std::uint8_t>(dmaRead(addr + got, 1));

        txDigest_ = fold(txDigest_, cpu.now());
        txDigest_ = fold(txDigest_, seq);
        txDigest_ = foldBytes(txDigest_, payload);

        std::uint64_t sent = ep_.send(cpu.now(), std::move(payload));
        if (sent != seq)
            fatal("VringDevice('%s'): channel send seq %llu but ring seq "
                  "%llu — another sender is sharing this endpoint",
                  ring, static_cast<unsigned long long>(sent),
                  static_cast<unsigned long long>(seq));

        ++txUsed_;
        dmaWrite(txRing_ + vringdev::kHdrUsed, txUsed_ & 0xFFFFFFFF, 4);
        KVMARM_CHECK_ON(kvm_.machine().checkEngine(),
                        ringDoorbell(&kvm_.machine(), cpu.id(), ring, seq,
                                     cpu.now(),
                                     static_cast<std::uint32_t>(txUsed_)));
    }
    // TX completion interrupt: the KVM_IRQ_LINE path through the vGIC.
    vm_.irqLine(cpu, cfg_.txSpi);
}

void
VringDevice::deliver(const RingMessage &msg)
{
    const char *ring = ep_.channel().name().c_str();
    if (rxUsed_ - rxAcked_ >= cfg_.entries)
        fatal("VringDevice('%s'): RX ring overrun — %llu deliveries "
              "outstanding, guest acked %llu, ring holds %u",
              ring, static_cast<unsigned long long>(rxUsed_),
              static_cast<unsigned long long>(rxAcked_), cfg_.entries);
    unsigned slot = static_cast<unsigned>(rxUsed_ % cfg_.entries);
    Addr payloadIpa =
        rxRing_ + vringdev::kPayloadOff + slot * cfg_.bufBytes;
    std::uint32_t len = static_cast<std::uint32_t>(msg.payload.size());
    std::uint32_t put = 0;
    while (put + 8 <= len) {
        std::uint64_t chunk = 0;
        for (unsigned b = 0; b < 8; ++b)
            chunk |= static_cast<std::uint64_t>(msg.payload[put + b])
                     << (b * 8);
        dmaWrite(payloadIpa + put, chunk, 8);
        put += 8;
    }
    for (; put < len; ++put)
        dmaWrite(payloadIpa + put, msg.payload[put], 1);

    Addr desc =
        rxRing_ + vringdev::kHdrBytes + slot * vringdev::kDescBytes;
    dmaWrite(desc, payloadIpa, 8);
    dmaWrite(desc + 8, len, 4);

    rxDigest_ = fold(rxDigest_, msg.deliverCycle);
    rxDigest_ = fold(rxDigest_, msg.seq);
    rxDigest_ = foldBytes(rxDigest_, msg.payload);

    ++rxUsed_;
    dmaWrite(rxRing_ + vringdev::kHdrUsed, rxUsed_ & 0xFFFFFFFF, 4);

    arm::ArmCpu &cpu = kvm_.machine().cpu(0);
    KVMARM_CHECK_ON(kvm_.machine().checkEngine(),
                    ringDeliver(&kvm_.machine(), cpu.id(), ring, msg.seq,
                                msg.deliverCycle,
                                static_cast<std::uint32_t>(rxUsed_)));
    // RX interrupt: same KVM_IRQ_LINE/vGIC injection as a physical
    // device completion.
    vm_.irqLine(cpu, cfg_.rxSpi);
}

} // namespace kvmarm::vdev
