/**
 * @file
 * QEMU-shaped user-space device emulation (paper §3.4): MMIO exits from
 * the VM are routed here; device completions are queued and delivered
 * through a host "iothread" interrupt, whose handler injects the guest's
 * virtual interrupt via the KVM_IRQ_LINE path — exactly the
 * QEMU-eventfd-KVM plumbing of the real stack.
 */

#ifndef KVMARM_VDEV_QEMU_HH
#define KVMARM_VDEV_QEMU_HH

#include <deque>
#include <vector>

#include "core/kvm.hh"
#include "kvmx86/kvm_x86.hh"
#include "vdev/model_dev.hh"
#include "vdev/uart.hh"

namespace kvmarm::vdev {

/** Physical SPI used to signal "QEMU iothread has work" to the host. */
inline constexpr IrqId kIothreadSpi = 40;
/** x86 host vector for the same purpose. */
inline constexpr std::uint8_t kIothreadVector = 0xE2;

/** First guest SPI used for emulated devices (slot i -> kDevSpiBase+i). */
inline constexpr IrqId kDevSpiBase = 48;
/** First guest vector for emulated devices on x86. */
inline constexpr std::uint8_t kDevVectorBase = 0xA0;

/** Cycles QEMU spends in its device model per MMIO access. */
inline constexpr Cycles kQemuDeviceWork = 650;
/** Host-side eventfd/irqfd processing per completion. */
inline constexpr Cycles kIothreadWork = 420;

/** User-space device emulation for one ARM VM. */
class QemuArm
{
  public:
    /** Installs itself as @p vm's user-space MMIO handler and registers
     *  the iothread interrupt with the host kernel. */
    QemuArm(core::Kvm &kvm, core::Vm &vm);

    /** Emulate a kick/complete device in MMIO slot @p slot; completions
     *  raise guest SPI kDevSpiBase + slot. */
    void addDevice(unsigned slot, const DevProfile &profile);

    Uart &uart() { return uart_; }
    std::uint64_t completed(unsigned slot) const;

  private:
    struct EmuDev
    {
        bool present = false;
        DevProfile profile;
        std::uint64_t completed = 0;
    };

    void handleMmio(arm::ArmCpu &cpu, core::VCpu &vcpu,
                    core::MmioExit &exit);
    void iothreadIrq(arm::ArmCpu &cpu);

    core::Kvm &kvm_;
    core::Vm &vm_;
    Uart uart_;
    std::vector<EmuDev> devs_;
    std::deque<unsigned> completions_; //!< slots with a pending irq
};

/** User-space device emulation for one x86 VM. */
class QemuX86
{
  public:
    QemuX86(kvmx86::KvmX86 &kvm, kvmx86::VmX86 &vm);

    void addDevice(unsigned slot, const DevProfile &profile);

    Uart &uart() { return uart_; }
    std::uint64_t completed(unsigned slot) const;

  private:
    struct EmuDev
    {
        bool present = false;
        DevProfile profile;
        std::uint64_t completed = 0;
    };

    void handleMmio(x86::X86Cpu &cpu, kvmx86::VCpuX86 &vcpu,
                    kvmx86::X86MmioExit &exit);
    void iothreadIrq(x86::X86Cpu &cpu);

    kvmx86::KvmX86 &kvm_;
    kvmx86::VmX86 &vm_;
    Uart uart_;
    std::vector<EmuDev> devs_;
    std::deque<unsigned> completions_;
};

} // namespace kvmarm::vdev

#endif // KVMARM_VDEV_QEMU_HH
