#include "x86/machine.hh"

#include "sim/logging.hh"

namespace kvmarm::x86 {

X86CostModel
laptopCosts()
{
    X86CostModel c;
    c.vmexitHw = 316;
    c.vmentryHw = 316;
    c.exitDispatch = 704; // Table 3: hypercall 1336 - trap 632
    c.mmioDecode = 1250;
    c.mmioDispatch = 540;
    c.kernelToUser = 3400;
    c.userToKernel = 3600;
    c.qemuMmioWork = 795;
    return c;
}

X86CostModel
serverCosts()
{
    X86CostModel c;
    c.vmexitHw = 410;
    c.vmentryHw = 411;
    c.exitDispatch = 817; // Table 3: hypercall 1638 - trap 821
    c.mmioDecode = 1060;
    c.mmioDispatch = 540;
    c.kernelToUser = 3900;
    c.userToKernel = 4200;
    c.qemuMmioWork = 827;
    c.apicEmulate = 600;
    c.ipiWire = 2400;
    c.kvmKickCost = 7000;
    return c;
}

X86Machine::X86Machine(const Config &config)
    : config_(config),
      cost_(config.platform == X86Platform::Laptop ? laptopCosts()
                                                   : serverCosts()),
      ram_(kRamBase, config.ramSize), bus_(ram_),
      apic_(*this, config.numCpus)
{
    if (config.numCpus == 0 || config.numCpus > 8)
        fatal("X86Machine: 1-8 CPUs supported");
    bus_.addDevice(kApicBase, 0x1000, &apic_);
    for (CpuId i = 0; i < config.numCpus; ++i) {
        cpus_.push_back(std::make_unique<X86Cpu>(i, *this));
        registerCpu(cpus_.back().get());
    }
}

double
X86Machine::clockHz() const
{
    return config_.platform == X86Platform::Laptop ? 1.8e9 : 3.4e9;
}

} // namespace kvmarm::x86
