/**
 * @file
 * The assembled x86 machine used as the comparison platform: CPUs with
 * VMX, RAM, bus, local APICs, TSC. Two calibrations model the paper's
 * laptop and server testbeds.
 */

#ifndef KVMARM_X86_MACHINE_HH
#define KVMARM_X86_MACHINE_HH

#include <memory>
#include <vector>

#include "mem/bus.hh"
#include "mem/phys_mem.hh"
#include "sim/machine_base.hh"
#include "x86/apic.hh"
#include "x86/cost.hh"
#include "x86/cpu.hh"

namespace kvmarm::x86 {

/** Which of the paper's two x86 testbeds to model. */
enum class X86Platform
{
    Laptop, //!< 2011 MacBook Air, dual 1.8 GHz i7-2677M
    Server, //!< OVH SP3, dual 3.4 GHz Xeon E3-1245v2
};

/** A multicore x86 machine with VMX + EPT but no virtual APIC. */
class X86Machine : public MachineBase
{
  public:
    struct Config
    {
        unsigned numCpus = 2;
        Addr ramSize = 512 * kMiB;
        X86Platform platform = X86Platform::Laptop;
    };

    static constexpr Addr kRamBase = 0;
    static constexpr Addr kUartMmioBase = 0xE0000000;
    static constexpr Addr kVirtioBase = 0xE1000000; //!< 0x1000 per slot

    X86Machine() : X86Machine(Config{}) {}
    explicit X86Machine(const Config &config);

    const Config &config() const { return config_; }
    const X86CostModel &cost() const { return cost_; }

    X86Cpu &cpu(CpuId id) { return *cpus_.at(id); }
    PhysMem &ram() { return ram_; }
    Bus &bus() { return bus_; }
    LocalApic &apic() { return apic_; }

    /** CPU clock in Hz (for the energy model). */
    double clockHz() const;
    double seconds(Cycles c) const { return double(c) / clockHz(); }

  private:
    Config config_;
    X86CostModel cost_;
    PhysMem ram_;
    Bus bus_;
    LocalApic apic_;
    std::vector<std::unique_ptr<X86Cpu>> cpus_;
};

} // namespace kvmarm::x86

#endif // KVMARM_X86_MACHINE_HH
