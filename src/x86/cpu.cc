#include "x86/cpu.hh"

#include "sim/logging.hh"
#include "x86/apic.hh"
#include "x86/machine.hh"

namespace kvmarm::x86 {

const char *
exitReasonName(ExitReason r)
{
    switch (r) {
      case ExitReason::Vmcall: return "vmcall";
      case ExitReason::EptViolation: return "ept";
      case ExitReason::IoInstruction: return "io";
      case ExitReason::Hlt: return "hlt";
      case ExitReason::ExternalInterrupt: return "extint";
      case ExitReason::ApicAccess: return "apic";
      case ExitReason::MsrWrite: return "msr";
    }
    return "?";
}

X86Cpu::X86Cpu(CpuId id, X86Machine &machine)
    : CpuBase(id, machine), machine_(machine)
{
}

std::uint64_t
X86Cpu::accessMem(Addr addr, bool write, std::uint64_t value, unsigned len)
{
    const X86CostModel &cm = machine_.cost();

    if (nonRoot_) {
        // APIC accesses never hit the EPT: this hardware generation has
        // no virtual APIC, every access exits (paper §2).
        if (pageAlignDown(addr) == pageAlignDown(kApicBase)) {
            ExitInfo info;
            info.reason = ExitReason::ApicAccess;
            info.gpa = addr;
            info.apicOffset = addr - kApicBase;
            info.isWrite = write;
            info.len = len;
            info.value = value;
            vmexit(info);
            if (mmioPending_) {
                mmioPending_ = false;
                return mmioValue_;
            }
            return 0;
        }
        Addr hpa = 0;
        while (!vmcs_.ept || !vmcs_.ept->translate(addr, hpa)) {
            ExitInfo info;
            info.reason = ExitReason::EptViolation;
            info.gpa = addr;
            info.isWrite = write;
            info.len = len;
            info.value = value;
            vmexit(info);
            if (mmioPending_) {
                mmioPending_ = false;
                return mmioValue_;
            }
            // KVM mapped the page; retry the translation.
        }
        addCycles(cm.eptWalk / 8); // amortized two-dimensional walk cost
        BusAccess ba = write ? machine_.bus().write(id_, hpa, value, len)
                             : machine_.bus().read(id_, hpa, len);
        if (!ba.ok)
            panic("x86 cpu%u: guest access to bad hpa %#llx", id_,
                  static_cast<unsigned long long>(hpa));
        addCycles(ba.latency);
        return ba.value;
    }

    BusAccess ba = write ? machine_.bus().write(id_, addr, value, len)
                         : machine_.bus().read(id_, addr, len);
    if (!ba.ok)
        panic("x86 cpu%u: access to unmapped pa %#llx", id_,
              static_cast<unsigned long long>(addr));
    addCycles(ba.latency);
    return ba.value;
}

std::uint64_t
X86Cpu::memRead(Addr addr, unsigned len)
{
    return accessMem(addr, false, 0, len);
}

void
X86Cpu::memWrite(Addr addr, std::uint64_t value, unsigned len)
{
    accessMem(addr, true, value, len);
}

std::uint64_t
X86Cpu::rdtsc()
{
    addCycles(machine_.cost().rdtsc);
    return now() - (nonRoot_ ? vmcs_.tscOffset : 0);
}

void
X86Cpu::vmcall(std::uint32_t nr)
{
    ExitInfo info;
    info.reason = ExitReason::Vmcall;
    info.vmcallNr = nr;
    if (!nonRoot_) {
        // From root mode this is how the KVM run loop is entered.
        if (!vmxHandler_)
            panic("x86 cpu%u: vmcall with no VMX handler", id_);
        vmxHandler_->vmexit(*this, info);
        return;
    }
    vmexit(info);
}

std::uint64_t
X86Cpu::portIo(std::uint16_t port, bool write, std::uint64_t value)
{
    if (nonRoot_) {
        ExitInfo info;
        info.reason = ExitReason::IoInstruction;
        info.port = port;
        info.isWrite = write;
        info.value = value;
        vmexit(info);
        if (mmioPending_) {
            mmioPending_ = false;
            return mmioValue_;
        }
        return 0;
    }
    // Native port I/O: modelled as a fixed-latency device access.
    addCycles(machine_.cost().uartLatency);
    return 0;
}

void
X86Cpu::hlt()
{
    if (nonRoot_) {
        ExitInfo info;
        info.reason = ExitReason::Hlt;
        vmexit(info);
        return;
    }
    statHltNative_.inc(stats_, "hlt.native");
    std::uint64_t before = interruptsTaken_;
    waitUntil([this, before] {
        return interruptPending() || interruptsTaken_ > before;
    });
}

void
X86Cpu::wrmsrTscDeadline(std::uint64_t deadline)
{
    if (nonRoot_) {
        ExitInfo info;
        info.reason = ExitReason::MsrWrite;
        info.value = deadline;
        vmexit(info);
        return;
    }
    addCycles(40); // wrmsr
    machine_.apic().programTimer(id_, deadline, 0xEF);
}

void
X86Cpu::syscall(std::uint32_t nr)
{
    if (!userMode_)
        panic("x86 cpu%u: syscall from kernel mode", id_);
    if (!osVectors_)
        panic("x86 cpu%u: syscall with no OS vectors", id_);
    userMode_ = false;
    bool saved_if = ifFlag_;
    addCycles(machine_.cost().kernelEntry);
    osVectors_->syscall(*this, nr);
    addCycles(machine_.cost().kernelEret);
    userMode_ = true;
    ifFlag_ = saved_if;
}

void
X86Cpu::writeCr3(std::uint64_t value)
{
    regs_[Sysreg::CR3] = value;
    addCycles(machine_.cost().tlbFlush);
}

void
X86Cpu::vmentry()
{
    const X86CostModel &cm = machine_.cost();
    // Hardware loads the entire guest state area with one instruction
    // (paper §2) — no software register motion.
    vmcs_.hostRegs = regs_;
    regs_ = vmcs_.guestRegs;
    hostOs_ = osVectors_;
    osVectors_ = vmcs_.guestOs;
    hostUserMode_ = userMode_;
    hostIf_ = ifFlag_;
    userMode_ = vmcs_.guestUserMode;
    ifFlag_ = vmcs_.guestIf;
    nonRoot_ = true;
    addCycles(cm.vmentryHw);
}

void
X86Cpu::vmexit(const ExitInfo &info)
{
    if (!vmxHandler_)
        panic("x86 cpu%u: vmexit with no handler", id_);
    statVmexit_[static_cast<std::size_t>(info.reason)].inc(
        stats_,
        [&] { return std::string("vmexit.") + exitReasonName(info.reason); });
    const X86CostModel &cm = machine_.cost();

    // Hardware saves the guest state and loads host state.
    vmcs_.guestRegs = regs_;
    regs_ = vmcs_.hostRegs;
    vmcs_.guestUserMode = userMode_;
    vmcs_.guestIf = ifFlag_;
    nonRoot_ = false;
    osVectors_ = hostOs_;
    userMode_ = hostUserMode_;
    ifFlag_ = hostIf_;
    addCycles(cm.vmexitHw);

    vmxHandler_->vmexit(*this, info);

    if (stopVmx_) {
        // KVM decided to return to the host (KVM_RUN completes).
        stopVmx_ = false;
        return;
    }
    vmentry();
}

void
X86Cpu::completeMmio(std::uint64_t value)
{
    mmioPending_ = true;
    mmioValue_ = value;
}

bool
X86Cpu::interruptPending() const
{
    std::uint8_t vec = machine_.apic().pendingVector(id_);
    if (vec) {
        if (nonRoot_)
            return true; // external-interrupt exiting, regardless of IF
        if (ifFlag_)
            return true;
    }
    if (nonRoot_ && vmcs_.injectVector && ifFlag_)
        return true;
    return false;
}

void
X86Cpu::takeInterrupt(std::uint8_t vector)
{
    ++interruptsTaken_;
    bool saved_if = ifFlag_;
    bool saved_user = userMode_;
    ifFlag_ = false;
    userMode_ = false;
    addCycles(machine_.cost().kernelEntry);
    osVectors_->interrupt(*this, vector);
    addCycles(machine_.cost().kernelEret);
    ifFlag_ = saved_if;
    userMode_ = saved_user;
}

void
X86Cpu::serviceInterrupts()
{
    if (inIrqService_)
        return;
    inIrqService_ = true;
    Cycles progress_mark = now_;
    for (unsigned guard = 0; guard < 100000; ++guard) {
        if ((guard & 0xFF) == 0xFF) {
            if (now_ == progress_mark)
                break;
            progress_mark = now_;
        }
        std::uint8_t phys = machine_.apic().pendingVector(id_);
        if (phys && nonRoot_) {
            // External interrupts always exit to root mode while a VM
            // runs; the host services them with interrupts re-enabled.
            ExitInfo info;
            info.reason = ExitReason::ExternalInterrupt;
            inIrqService_ = false;
            vmexit(info);
            inIrqService_ = true;
            continue;
        }
        if (phys && !nonRoot_ && ifFlag_ && osVectors_) {
            std::uint8_t vec = machine_.apic().acceptVector(id_);
            takeInterrupt(vec);
            continue;
        }
        if (nonRoot_ && vmcs_.injectVector && ifFlag_ && osVectors_) {
            std::uint8_t vec = vmcs_.injectVector;
            vmcs_.injectVector = 0;
            statIrqInjected_.inc(stats_, "irq.injected");
            takeInterrupt(vec);
            continue;
        }
        inIrqService_ = false;
        return;
    }
    inIrqService_ = false;
    panic("x86 cpu%u: interrupt service livelock", id_);
}

} // namespace kvmarm::x86
