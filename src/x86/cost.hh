/**
 * @file
 * Cycle costs of the modelled x86 machines. Two calibrations ship, for the
 * paper's two testbeds: the 2011 MacBook Air (dual 1.8 GHz i7-2677M) and
 * the OVH SP3 server (dual 3.4 GHz Xeon E3-1245v2). Constants are chosen
 * so the literally-executed Table 3 paths land near the paper's
 * measurements; see tests/core/calibration_test.cc.
 */

#ifndef KVMARM_X86_COST_HH
#define KVMARM_X86_COST_HH

#include "sim/types.hh"

namespace kvmarm::x86 {

/** Cycle cost model of one x86 machine. */
struct X86CostModel
{
    /**
     * One-way hardware VMX transition: the CPU saves/loads the entire
     * VMCS state area with a single instruction (paper §2) — far more
     * state than an ARM Hyp trap banks, hence Table 3's Trap being ~25x
     * ARM's, but the *software* need not move any registers.
     */
    Cycles vmexitHw = 316;
    Cycles vmentryHw = 316;

    /** Kernel-mode exception entry/exit (interrupt gate). */
    Cycles kernelEntry = 120;
    Cycles kernelEret = 90;

    /** KVM's vmexit dispatch (exit-reason decode, run-loop bookkeeping). */
    Cycles exitDispatch = 700;

    /** Software instruction decode + emulate for MMIO exits: x86 KVM runs
     *  a full instruction emulator (paper §5.3 reason 3). */
    Cycles mmioDecode = 1000;

    /** In-kernel MMIO fault processing (kvm_io_bus etc.). */
    Cycles mmioDispatch = 540;

    /** Kernel->user and user->kernel on the KVM_RUN boundary; "x86 KVM
     *  saves and restores additional state lazily when going to user
     *  space" (paper §5.2), making this much costlier than ARM's. */
    Cycles kernelToUser = 3400;
    Cycles userToKernel = 3600;
    Cycles qemuMmioWork = 800;

    /** In-kernel APIC emulation work per trapped access. */
    Cycles apicEmulate = 640;

    /** Event injection via the VMCS on vmentry (hardware assisted). */
    Cycles eventInject = 150;

    /** Physical IPI wire latency, ICR write to remote pin assertion. */
    Cycles ipiWire = 1800;

    /** KVM's software path for kicking a running VCPU out of guest mode
     *  and completing virtual IPI delivery (reschedule-IPI handler,
     *  irq routing, run-loop re-entry bookkeeping): with the wire, "the
     *  underlying hardware IPI on x86 is expensive" (paper §5.2). */
    Cycles kvmKickCost = 3920;

    /** Locking around the emulated APIC/ICR path. */
    Cycles atomicOp = 45;

    /** rdtsc: not privileged, never traps (paper §2). */
    Cycles rdtsc = 24;

    /** APIC MMIO access latency when accessed natively. */
    Cycles apicLatency = 90;
    Cycles uartLatency = 120;
    Cycles virtioLatency = 80;

    /** 4-level EPT walk on a TLB miss. */
    Cycles eptWalk = 160;
    /** Guest page walk without virtualization. */
    Cycles nativeWalk = 60;

    Cycles tlbFlush = 120;
};

/** Calibration for the paper's x86 laptop platform. */
X86CostModel laptopCosts();

/** Calibration for the paper's x86 server platform (same microarch family
 *  at a higher clock: transitions cost more cycles, paper Table 3). */
X86CostModel serverCosts();

} // namespace kvmarm::x86

#endif // KVMARM_X86_COST_HH
