/**
 * @file
 * The x86 CPU model with VMX. The decisive contrast with ARM (paper §2):
 * root mode is orthogonal to the protection rings — the whole host kernel
 * runs in root mode unchanged — and VMX transitions save/restore the
 * entire VMCS state area in hardware with a single instruction, so traps
 * are expensive one-way but world switches need no software state motion.
 */

#ifndef KVMARM_X86_CPU_HH
#define KVMARM_X86_CPU_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/cpu_base.hh"
#include "sim/types.hh"
#include "x86/regs.hh"

namespace kvmarm::x86 {

class X86Machine;

/** Why a VM exit happened (subset of VMX exit reasons). */
enum class ExitReason : std::uint8_t
{
    Vmcall,
    EptViolation,
    IoInstruction, //!< port I/O: exit qualification carries port + size
    Hlt,
    ExternalInterrupt,
    ApicAccess, //!< APIC-access page: offset known, value needs decode
    MsrWrite,   //!< WRMSR (TSC-deadline timer); value in registers
};

/** Number of ExitReason values (for per-reason counter tables). */
inline constexpr std::size_t kNumExitReasons =
    static_cast<std::size_t>(ExitReason::MsrWrite) + 1;

const char *exitReasonName(ExitReason r);

/** VMX exit information (exit reason + qualification). */
struct ExitInfo
{
    ExitReason reason = ExitReason::Vmcall;
    Addr gpa = 0;
    bool isWrite = false;
    unsigned len = 4;
    std::uint64_t value = 0;
    std::uint16_t port = 0;
    Addr apicOffset = 0;
    std::uint32_t vmcallNr = 0;
};

class X86OsVectors;

/** Guest-physical to host-physical view (the EPT), owned by KVM x86. */
class EptView
{
  public:
    virtual ~EptView() = default;
    /** @return true and fill @p hpa on a mapping hit. */
    virtual bool translate(Addr gpa, Addr &hpa) = 0;
};

/** The VMCS: guest and host state areas swapped by hardware. */
struct Vmcs
{
    RegisterFileX86 guestRegs;
    RegisterFileX86 hostRegs;
    bool guestUserMode = false;
    bool guestIf = true; //!< guest RFLAGS.IF
    /** Event injection field: vector injected on the next vmentry. */
    std::uint8_t injectVector = 0;
    /** EPT pointer (EPTP). */
    EptView *ept = nullptr;
    /** Guest kernel receiving the VM's exceptions (VBAR-equivalent). */
    X86OsVectors *guestOs = nullptr;
    /** TSC offset (hardware TSC offsetting, like ARM's CNTVOFF). */
    std::uint64_t tscOffset = 0;
};

/** Handler KVM installs for VM exits (runs in root mode). */
class VmxHandler
{
  public:
    virtual ~VmxHandler() = default;
    virtual void vmexit(class X86Cpu &cpu, const ExitInfo &info) = 0;
    virtual const char *name() const = 0;
};

/** Kernel-mode software on this CPU (host kernel or guest kernel). */
class X86OsVectors
{
  public:
    virtual ~X86OsVectors() = default;
    virtual void interrupt(class X86Cpu &cpu, std::uint8_t vector) = 0;
    virtual void syscall(class X86Cpu &cpu, std::uint32_t nr) = 0;
    virtual const char *name() const = 0;
};

/** One x86 core. */
class X86Cpu : public CpuBase
{
  public:
    X86Cpu(CpuId id, X86Machine &machine);

    X86Machine &machine() { return machine_; }

    /// @name Architectural state
    /// @{
    RegisterFileX86 &regs() { return regs_; }
    bool nonRoot() const { return nonRoot_; }
    bool userMode() const { return userMode_; }
    void setUserMode(bool u) { userMode_ = u; }
    bool interruptsEnabled() const { return ifFlag_; }
    void setIf(bool v) { ifFlag_ = v; }
    Vmcs &vmcs() { return vmcs_; }
    /// @}

    void setVmxHandler(VmxHandler *h) { vmxHandler_ = h; }
    void setOsVectors(X86OsVectors *v) { osVectors_ = v; }
    X86OsVectors *osVectors() { return osVectors_; }

    /// @name Operations issued by simulated software
    /// @{
    void compute(Cycles c) { addCycles(c); }

    /** Memory access; guest-physical addresses go through the EPT in
     *  non-root mode (violations exit to root mode). */
    std::uint64_t memRead(Addr addr, unsigned len = 8);
    void memWrite(Addr addr, std::uint64_t value, unsigned len = 8);

    /** Read the TSC: unprivileged, never exits (paper §2). */
    std::uint64_t rdtsc();

    /** Hypercall. */
    void vmcall(std::uint32_t nr);

    /** Port I/O; exits with full decode info in non-root mode. */
    std::uint64_t portIo(std::uint16_t port, bool write,
                         std::uint64_t value = 0);

    /** Halt until interrupt (exits in non-root mode). */
    void hlt();

    /** WRMSR IA32_TSC_DEADLINE: the oneshot clockevent on this hardware
     *  generation — one decode-free exit in a VM, a direct APIC-timer
     *  program natively. */
    void wrmsrTscDeadline(std::uint64_t deadline);

    /** Syscall into the current kernel. */
    void syscall(std::uint32_t nr);

    /** Write CR3 (context switch); flushes the modelled TLB state. */
    void writeCr3(std::uint64_t value);
    /// @}

    /// @name VMX (used by KVM x86)
    /// @{
    /** Enter the guest context (vmresume): hardware-loads guest state. */
    void vmentry();

    /** Take a VM exit: hardware-saves guest state, runs the handler in
     *  root mode, and re-enters unless the handler parked the VCPU. */
    void vmexit(const ExitInfo &info);

    /** True while executing between vmentry and the final vmexit. */
    void setStopVmx(bool stop) { stopVmx_ = stop; }
    /// @}

    /** Complete a trapped MMIO access with an emulated value. */
    void completeMmio(std::uint64_t value = 0);

    /// @name CpuBase
    /// @{
    bool interruptPending() const override;
    void serviceInterrupts() override;
    /// @}

  private:
    std::uint64_t accessMem(Addr addr, bool write, std::uint64_t value,
                            unsigned len);
    void takeInterrupt(std::uint8_t vector);

    X86Machine &machine_;
    RegisterFileX86 regs_;
    Vmcs vmcs_;
    bool nonRoot_ = false;
    bool userMode_ = false;
    bool ifFlag_ = false;
    bool stopVmx_ = false;
    bool inIrqService_ = false;
    std::uint64_t interruptsTaken_ = 0;
    bool mmioPending_ = false;
    std::uint64_t mmioValue_ = 0;
    VmxHandler *vmxHandler_ = nullptr;
    X86OsVectors *osVectors_ = nullptr;
    X86OsVectors *hostOs_ = nullptr;
    bool hostUserMode_ = false;
    bool hostIf_ = false;

    /// Call-site caches for counters bumped on every VM exit.
    std::array<CachedCounter, kNumExitReasons> statVmexit_;
    CachedCounter statHltNative_;
    CachedCounter statIrqInjected_;
};

} // namespace kvmarm::x86

#endif // KVMARM_X86_CPU_HH
