/**
 * @file
 * Local APIC model (xAPIC, *without* virtual-APIC support: "x86 hardware
 * with virtual APIC support was not yet available at the time of our
 * experiments", paper §5.1). One banked MMIO page per CPU; EOI is a plain
 * MMIO write, which is why guest EOIs must trap to the hypervisor on this
 * generation of hardware.
 */

#ifndef KVMARM_X86_APIC_HH
#define KVMARM_X86_APIC_HH

#include <cstdint>
#include <vector>

#include "mem/bus.hh"
#include "sim/types.hh"

namespace kvmarm::x86 {

class X86Machine;

/// APIC register offsets (subset).
namespace apic {
inline constexpr Addr ID = 0x020;
inline constexpr Addr TPR = 0x080;
inline constexpr Addr EOI = 0x0B0;
inline constexpr Addr ICR_LO = 0x300; //!< write sends the IPI
inline constexpr Addr ICR_HI = 0x310; //!< destination in bits [63:56]
inline constexpr Addr LVT_TIMER = 0x320;
inline constexpr Addr TIMER_INIT = 0x380;
inline constexpr Addr TIMER_CUR = 0x390;
} // namespace apic

inline constexpr Addr kApicBase = 0xFEE00000;

/** Per-CPU local APIC state. */
struct ApicBank
{
    std::vector<std::uint8_t> pending;   //!< pending vectors, unsorted
    std::vector<std::uint8_t> inService; //!< ISR stack, innermost last
    std::uint64_t icrHi = 0;
    bool timerEnabled = false;
    std::uint8_t timerVector = 0xEF;
    std::uint64_t timerDeadline = 0;
    std::uint64_t timerEvent = 0;
};

/** All local APICs of a machine, exposed as one banked MMIO device. */
class LocalApic : public MmioDevice
{
  public:
    LocalApic(X86Machine &machine, unsigned num_cpus);

    /** Post vector @p vec to @p cpu at cycle @p when (wakes idle CPUs). */
    void postVector(CpuId cpu, std::uint8_t vec, Cycles when);

    /** Highest pending vector deliverable to @p cpu, or 0. */
    std::uint8_t pendingVector(CpuId cpu) const;

    /** Deliver (move pending -> in-service); returns the vector. */
    std::uint8_t acceptVector(CpuId cpu);

    /** EOI the innermost in-service interrupt. */
    void eoi(CpuId cpu);

    ApicBank &bank(CpuId cpu) { return banks_.at(cpu); }

    /// @name MmioDevice (native/root-mode access path)
    /// @{
    std::string name() const override { return "lapic"; }
    std::uint64_t read(CpuId cpu, Addr offset, unsigned len) override;
    void write(CpuId cpu, Addr offset, std::uint64_t value,
               unsigned len) override;
    Cycles accessLatency() const override;
    /// @}

    /** Handle an ICR write from @p cpu (also used by KVM's emulation for
     *  the physical kick IPIs it sends). */
    void icrWrite(CpuId cpu, std::uint64_t value);

    /** Program the one-shot APIC timer. */
    void programTimer(CpuId cpu, Cycles deadline, std::uint8_t vector);
    void cancelTimer(CpuId cpu);

  private:
    X86Machine &machine_;
    std::vector<ApicBank> banks_;
};

} // namespace kvmarm::x86

#endif // KVMARM_X86_APIC_HH
