#include "x86/apic.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "x86/machine.hh"

namespace kvmarm::x86 {

LocalApic::LocalApic(X86Machine &machine, unsigned num_cpus)
    : machine_(machine), banks_(num_cpus)
{
}

Cycles
LocalApic::accessLatency() const
{
    return machine_.cost().apicLatency;
}

void
LocalApic::postVector(CpuId cpu, std::uint8_t vec, Cycles when)
{
    machine_.cpuBase(cpu).events().schedule(when, [this, cpu, vec] {
        ApicBank &b = banks_.at(cpu);
        if (std::find(b.pending.begin(), b.pending.end(), vec) ==
            b.pending.end()) {
            b.pending.push_back(vec);
        }
    });
}

std::uint8_t
LocalApic::pendingVector(CpuId cpu) const
{
    const ApicBank &b = banks_.at(cpu);
    std::uint8_t best = 0;
    for (std::uint8_t v : b.pending)
        best = std::max(best, v);
    // Interrupts are only deliverable above the in-service priority.
    if (!b.inService.empty() && best <= b.inService.back())
        return 0;
    return best;
}

std::uint8_t
LocalApic::acceptVector(CpuId cpu)
{
    ApicBank &b = banks_.at(cpu);
    std::uint8_t vec = pendingVector(cpu);
    if (!vec)
        return 0;
    b.pending.erase(std::find(b.pending.begin(), b.pending.end(), vec));
    b.inService.push_back(vec);
    return vec;
}

void
LocalApic::eoi(CpuId cpu)
{
    ApicBank &b = banks_.at(cpu);
    if (b.inService.empty()) {
        warn("lapic: EOI with empty ISR on cpu%u", cpu);
        return;
    }
    b.inService.pop_back();
}

void
LocalApic::icrWrite(CpuId cpu, std::uint64_t value)
{
    ApicBank &b = banks_.at(cpu);
    std::uint8_t vec = value & 0xFF;
    CpuId dest = static_cast<CpuId>((b.icrHi >> 56) & 0xFF);
    unsigned shorthand = (value >> 18) & 0x3;
    Cycles when = machine_.cpuBase(cpu).now() + machine_.cost().ipiWire;
    switch (shorthand) {
      case 0: // destination field
        if (dest < banks_.size())
            postVector(dest, vec, when);
        break;
      case 1: // self
        postVector(cpu, vec, machine_.cpuBase(cpu).now());
        break;
      case 2: // all including self
        for (CpuId c = 0; c < banks_.size(); ++c)
            postVector(c, vec, c == cpu ? machine_.cpuBase(cpu).now() : when);
        break;
      case 3: // all but self
        for (CpuId c = 0; c < banks_.size(); ++c)
            if (c != cpu)
                postVector(c, vec, when);
        break;
    }
}

void
LocalApic::programTimer(CpuId cpu, Cycles deadline, std::uint8_t vector)
{
    ApicBank &b = banks_.at(cpu);
    cancelTimer(cpu);
    b.timerEnabled = true;
    b.timerVector = vector;
    b.timerDeadline = deadline;
    b.timerEvent = machine_.cpuBase(cpu).events().schedule(
        deadline, [this, cpu] {
            ApicBank &bank = banks_.at(cpu);
            bank.timerEvent = 0;
            if (bank.timerEnabled) {
                postVector(cpu, bank.timerVector,
                           machine_.cpuBase(cpu).now());
            }
        });
}

void
LocalApic::cancelTimer(CpuId cpu)
{
    ApicBank &b = banks_.at(cpu);
    if (b.timerEvent) {
        machine_.cpuBase(cpu).events().cancel(b.timerEvent);
        b.timerEvent = 0;
    }
    b.timerEnabled = false;
}

std::uint64_t
LocalApic::read(CpuId cpu, Addr offset, unsigned len)
{
    (void)len;
    ApicBank &b = banks_.at(cpu);
    switch (offset) {
      case apic::ID:
        return std::uint64_t(cpu) << 24;
      case apic::ICR_HI:
        return b.icrHi;
      case apic::TIMER_CUR:
        return b.timerEnabled && b.timerDeadline >
                                     machine_.cpuBase(cpu).now()
                   ? b.timerDeadline - machine_.cpuBase(cpu).now()
                   : 0;
      default:
        return 0;
    }
}

void
LocalApic::write(CpuId cpu, Addr offset, std::uint64_t value, unsigned len)
{
    (void)len;
    ApicBank &b = banks_.at(cpu);
    switch (offset) {
      case apic::EOI:
        eoi(cpu);
        break;
      case apic::ICR_HI:
        b.icrHi = value << 0;
        break;
      case apic::ICR_LO:
        icrWrite(cpu, value);
        break;
      case apic::LVT_TIMER:
        b.timerVector = value & 0xFF;
        if (value & (1u << 16))
            cancelTimer(cpu);
        break;
      case apic::TIMER_INIT:
        programTimer(cpu, machine_.cpuBase(cpu).now() + value,
                     b.timerVector);
        break;
      default:
        break;
    }
}

} // namespace kvmarm::x86
