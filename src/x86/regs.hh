/**
 * @file
 * x86-64 register state for the comparison machine. Unlike ARM, most of
 * this state is saved and restored *by hardware* on VMX transitions (the
 * VMCS), which is the central design difference §2 of the paper draws.
 */

#ifndef KVMARM_X86_REGS_HH
#define KVMARM_X86_REGS_HH

#include <array>
#include <cstdint>

namespace kvmarm::x86 {

/** General purpose registers. */
enum class Gpr : std::uint8_t
{
    RAX, RBX, RCX, RDX, RSI, RDI, RBP, RSP,
    R8, R9, R10, R11, R12, R13, R14, R15,
    RIP, RFLAGS,
    NumRegs,
};

inline constexpr unsigned kNumGprs = static_cast<unsigned>(Gpr::NumRegs);

/** Control/system registers the VMCS covers. */
enum class Sysreg : std::uint8_t
{
    CR0, CR2, CR3, CR4, EFER,
    CS, SS, DS, ES, FS, GS, TR, LDTR,
    GDTR, IDTR,
    FSBASE, GSBASE, KERNELGSBASE,
    SYSENTER_CS, SYSENTER_ESP, SYSENTER_EIP,
    NumRegs,
};

inline constexpr unsigned kNumSysregs =
    static_cast<unsigned>(Sysreg::NumRegs);

/** A full x86 register context (one VMCS guest/host state area). */
struct RegisterFileX86
{
    std::array<std::uint64_t, kNumGprs> gpr{};
    std::array<std::uint64_t, kNumSysregs> sys{};

    std::uint64_t &operator[](Gpr r) { return gpr[unsigned(r)]; }
    std::uint64_t operator[](Gpr r) const { return gpr[unsigned(r)]; }
    std::uint64_t &operator[](Sysreg r) { return sys[unsigned(r)]; }
    std::uint64_t operator[](Sysreg r) const { return sys[unsigned(r)]; }

    bool operator==(const RegisterFileX86 &) const = default;
};

} // namespace kvmarm::x86

#endif // KVMARM_X86_REGS_HH
