#include "host/kernel.hh"

#include "arm/gic.hh"
#include "sim/logging.hh"

namespace kvmarm::host {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::CtrlReg;
using arm::Mode;
using arm::Perms;

HostKernel::HostKernel(ArmMachine &machine, const Config &config)
    : machine_(machine), config_(config),
      mm_(machine.ram(), machine.checkEngine()), timers_(machine),
      stub_(*this)
{
    machine_.registerSnapshottable(&mm_);
    machine_.registerSnapshottable(&timers_);
    machine_.registerSnapshottable(this);
}

HostKernel::~HostKernel()
{
    machine_.unregisterSnapshottable(this);
    machine_.unregisterSnapshottable(&timers_);
    machine_.unregisterSnapshottable(&mm_);
}

void
HostKernel::buildKernelTables()
{
    arm::PageTableEditor editor(
        arm::PtFormat::KernelLpae,
        [this](Addr pa) { return machine_.ram().read(pa, 8); },
        [this](Addr pa, std::uint64_t v) { machine_.ram().write(pa, v, 8); },
        [this] { return mm_.allocPage(); });

    kernelPgd_ = editor.newRoot();

    // Identity-map all of RAM with 2 MiB kernel blocks.
    Perms kernel_mem;
    kernel_mem.user = false;
    for (Addr off = 0; off < machine_.ram().size(); off += arm::kBlock2MSize) {
        Addr pa = ArmMachine::kRamBase + off;
        editor.mapBlock2M(kernelPgd_, pa, pa, kernel_mem);
    }

    // Device mappings (4 KiB device pages).
    Perms dev;
    dev.user = false;
    dev.exec = false;
    dev.device = true;
    const Addr device_pages[] = {
        ArmMachine::kGicdBase, ArmMachine::kGiccBase,
        ArmMachine::kGicvBase, ArmMachine::kGichBase,
        ArmMachine::kUartBase,
    };
    for (Addr base : device_pages)
        editor.map(kernelPgd_, base, base, dev);
    for (unsigned slot = 0; slot < 16; ++slot) {
        Addr base = ArmMachine::kVirtioBase + slot * 0x1000;
        editor.map(kernelPgd_, base, base, dev);
    }
}

void
HostKernel::initGicOnCpu(ArmCpu &cpu)
{
    if (cpu.id() == 0)
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);

    // Enable the banked SGIs and the PPIs the host uses.
    std::uint32_t bank0 = 0xFFFF | (1u << arm::kMaintenancePpi) |
                          (1u << arm::kHypTimerPpi) |
                          (1u << arm::kVirtTimerPpi) |
                          (1u << arm::kPhysTimerPpi);
    cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER, bank0);

    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
}

void
HostKernel::boot(CpuId cpu_id)
{
    ArmCpu &cpu = machine_.cpu(cpu_id);

    if (config_.bootedInHyp) {
        // The bootloader hands over in Hyp mode; the kernel notices and
        // installs the stub so Hyp mode can be re-entered later, then
        // makes the explicit switch to kernel mode (paper §4).
        cpu.setMode(Mode::Hyp);
        cpu.setHypVectors(&stub_);
    }
    cpu.setMode(Mode::Svc);

    if (cpu_id == 0) {
        if (kernelPgd_ == 0)
            buildKernelTables();
    } else {
        // Secondary CPUs wait in the holding pen until the boot CPU has
        // built the kernel mappings.
        while (kernelPgd_ == 0)
            cpu.compute(200);
    }

    cpu.writeCp15_64(CtrlReg::TTBR0Lo, CtrlReg::TTBR0Hi, kernelPgd_);
    cpu.writeCp15(CtrlReg::TTBCR, 0);
    cpu.writeCp15(CtrlReg::CONTEXTIDR, 0);
    cpu.writeCp15(CtrlReg::SCTLR, cpu.readCp15(CtrlReg::SCTLR) | 1);
    cpu.setOsVectors(this);

    initGicOnCpu(cpu);
    cpu.setIrqMasked(false);
}

void
HostKernel::requestIrq(IrqId irq, IrqHandler handler)
{
    if (irq >= arm::kMaxIrqs)
        fatal("HostKernel::requestIrq: bad irq %u", irq);
    handlers_[irq] = std::move(handler);
}

void
HostKernel::enableIrq(ArmCpu &cpu, IrqId irq)
{
    unsigned word = irq / 32;
    cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER + word * 4,
                 1u << (irq % 32));
    if (irq >= arm::kFirstSpi) {
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ITARGETSR + irq,
                     1u << cpu.id());
    }
}

void
HostKernel::irq(ArmCpu &cpu)
{
    std::uint32_t iar = static_cast<std::uint32_t>(
        cpu.memRead(ArmMachine::kGiccBase + arm::gicc::IAR, 4));
    IrqId irq = iar & 0x3FF;
    if (irq == arm::kSpuriousIrq)
        return;

    cpu.compute(config_.costs.irqDispatch);
    if (handlers_[irq])
        handlers_[irq](cpu, irq);
    else
        cpu.stats().counter("host.irq.unhandled").inc();

    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
}

void
HostKernel::svc(ArmCpu &cpu, std::uint32_t num)
{
    // Host user-space syscalls are modelled by their entry/exit cost,
    // which ArmCpu::svc already charged.
    (void)cpu;
    (void)num;
}

bool
HostKernel::pageFault(ArmCpu &cpu, Addr va, bool write, bool user)
{
    (void)cpu;
    warn("host kernel: unexpected stage-1 fault va=%#llx write=%d user=%d",
         static_cast<unsigned long long>(va), write, user);
    return false;
}

void
HostKernel::blockUntil(ArmCpu &cpu, const std::function<bool()> &pred)
{
    bool saved = cpu.irqMasked();
    cpu.setIrqMasked(false);
    cpu.waitUntil(pred);
    cpu.compute(config_.costs.wakeThread);
    cpu.setIrqMasked(saved);
}

void
HostKernel::runInUserspace(ArmCpu &cpu,
                           const std::function<void()> &user_work)
{
    cpu.compute(config_.costs.kernelToUser);
    Mode saved = cpu.mode();
    cpu.setMode(Mode::Usr);
    user_work();
    cpu.setMode(saved);
    cpu.compute(config_.costs.userToKernel);
}

bool
HostKernel::installHypVectors(ArmCpu &cpu, arm::HypVectors *vectors)
{
    if (!config_.bootedInHyp) {
        // Bootloader was Hyp-unaware: KVM/ARM detects this and simply
        // remains disabled (paper §4).
        return false;
    }
    stub_.pendingVectors = vectors;
    cpu.hvc(kHvcSetVectors);
    return true;
}

void
HostKernel::saveState(SnapshotWriter &w)
{
    w.u64(kernelPgd_);
    unsigned ncpus = machine_.config().numCpus;
    w.u32(ncpus);
    for (CpuId i = 0; i < ncpus; ++i) {
        ArmCpu &cpu = machine_.cpu(i);
        HypOwner hyp = HypOwner::None;
        if (cpu.hypVectors() == &stub_)
            hyp = HypOwner::Stub;
        else if (cpu.hypVectors() != nullptr)
            hyp = HypOwner::Hypervisor;
        OsOwner os = OsOwner::None;
        if (cpu.osVectors() == this) {
            os = OsOwner::Host;
        } else if (cpu.osVectors() != nullptr) {
            fatal("HostKernel::saveState: cpu%u OS vectors owned by %s — "
                  "machine not quiesced in host context", i,
                  cpu.osVectors()->name());
        }
        w.u8(static_cast<std::uint8_t>(hyp));
        w.u8(static_cast<std::uint8_t>(os));
    }
    for (const IrqHandler &h : handlers_)
        w.b(static_cast<bool>(h));
}

void
HostKernel::restoreState(SnapshotReader &r)
{
    kernelPgd_ = r.u64();
    std::uint32_t ncpus = r.u32();
    if (ncpus != machine_.config().numCpus)
        fatal("HostKernel: snapshot has %u CPUs, machine has %u", ncpus,
              machine_.config().numCpus);
    restoredHyp_.clear();
    restoredOs_.clear();
    for (std::uint32_t i = 0; i < ncpus; ++i) {
        restoredHyp_.push_back(static_cast<HypOwner>(r.u8()));
        restoredOs_.push_back(static_cast<OsOwner>(r.u8()));
    }
    for (bool &present : restoredHandlerMask_)
        present = r.b();
    verifyRestore_ = true;
}

void
HostKernel::snapshotRebind()
{
    for (CpuId i = 0; i < restoredHyp_.size(); ++i) {
        ArmCpu &cpu = machine_.cpu(i);
        switch (restoredHyp_[i]) {
          case HypOwner::None:
            cpu.setHypVectors(nullptr);
            break;
          case HypOwner::Stub:
            cpu.setHypVectors(&stub_);
            break;
          case HypOwner::Hypervisor:
            // The KVM layer registered after us; its own rebind pass
            // installs its vectors. Leave the slot for it.
            break;
        }
        cpu.setOsVectors(restoredOs_[i] == OsOwner::Host ? this : nullptr);
    }
}

void
HostKernel::snapshotVerify()
{
    if (!verifyRestore_)
        return;
    verifyRestore_ = false;
    for (IrqId irq = 0; irq < arm::kMaxIrqs; ++irq) {
        if (restoredHandlerMask_[irq] != static_cast<bool>(handlers_[irq]))
            fatal("HostKernel: irq %u handler %s after restore — owner "
                  "failed to re-register during rebind", irq,
                  restoredHandlerMask_[irq] ? "missing" : "unexpectedly set");
    }
    for (CpuId i = 0; i < restoredHyp_.size(); ++i) {
        ArmCpu &cpu = machine_.cpu(i);
        if (restoredHyp_[i] == HypOwner::Hypervisor &&
            (cpu.hypVectors() == nullptr || cpu.hypVectors() == &stub_)) {
            fatal("HostKernel: cpu%u Hyp vectors not reinstalled by the "
                  "hypervisor layer after restore", i);
        }
    }
    restoredHyp_.clear();
    restoredOs_.clear();
}

void
HostKernel::HypStub::hypTrap(ArmCpu &cpu, const arm::Hsr &hsr)
{
    if (hsr.ec == arm::ExcClass::Hvc && hsr.iss == kHvcSetVectors) {
        cpu.setHypVectors(pendingVectors);
        return;
    }
    panic("hyp-stub: unexpected trap (%s) — no runtime Hyp vectors "
          "installed", arm::excClassName(hsr.ec));
}

} // namespace kvmarm::host
