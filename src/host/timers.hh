/**
 * @file
 * Host software timers (hrtimer-shaped): the "existing OS functionality to
 * program a software timer" that KVM/ARM leverages to emulate unexpired
 * virtual timers while a VM is descheduled (paper §3.6).
 */

#ifndef KVMARM_HOST_TIMERS_HH
#define KVMARM_HOST_TIMERS_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/types.hh"

namespace kvmarm {
class MachineBase;
} // namespace kvmarm

namespace kvmarm::host {

/** hrtimer-like facade over the per-CPU event queues. */
class SoftTimers
{
  public:
    using Callback = std::function<void()>;

    explicit SoftTimers(MachineBase &machine) : machine_(machine) {}

    /** Arm a one-shot timer on @p cpu at absolute cycle @p when. */
    std::uint64_t start(CpuId cpu, Cycles when, Callback cb);

    /** Cancel; returns false if already fired. */
    bool cancel(std::uint64_t id);

    std::size_t active() const { return live_.size(); }

  private:
    MachineBase &machine_;
    std::uint64_t nextId_ = 1;
    struct Rec
    {
        CpuId cpu;
        std::uint64_t eventId;
    };
    std::unordered_map<std::uint64_t, Rec> live_;
};

} // namespace kvmarm::host

#endif // KVMARM_HOST_TIMERS_HH
