/**
 * @file
 * Host software timers (hrtimer-shaped): the "existing OS functionality to
 * program a software timer" that KVM/ARM leverages to emulate unexpired
 * virtual timers while a VM is descheduled (paper §3.6).
 */

#ifndef KVMARM_HOST_TIMERS_HH
#define KVMARM_HOST_TIMERS_HH

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>

#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm {
class MachineBase;
} // namespace kvmarm

namespace kvmarm::host {

/** hrtimer-like facade over the per-CPU event queues. */
class SoftTimers : public Snapshottable
{
  public:
    using Callback = std::function<void()>;

    explicit SoftTimers(MachineBase &machine) : machine_(machine) {}

    /** Arm a one-shot timer on @p cpu at absolute cycle @p when. */
    std::uint64_t start(CpuId cpu, Cycles when, Callback cb);

    /** Cancel; returns false if already fired. */
    bool cancel(std::uint64_t id);

    std::size_t active() const { return live_.size(); }

    /**
     * Re-attach the callback of a timer that came back from a snapshot.
     * Timer callbacks are owner-supplied closures SoftTimers cannot
     * serialize, so restoreState() leaves each live timer pending and the
     * owning component (e.g. kvm::VTimerEmul) supplies an equivalent
     * callback from its own rebind pass. Fatal if @p id is not a live,
     * pending-rehydrate timer.
     */
    void rehydrate(std::uint64_t id, Callback cb);

    /// @name Snapshottable (HostKernel registers/unregisters this)
    /// @{
    std::string snapshotKey() const override { return "soft-timers"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /** Fatal if any restored timer was never rehydrate()d. */
    void snapshotVerify() override;
    /// @}

  private:
    MachineBase &machine_;
    std::uint64_t nextId_ = 1;
    struct Rec
    {
        CpuId cpu;
        std::uint64_t eventId;
    };
    std::unordered_map<std::uint64_t, Rec> live_;
    /** Restored timer ids whose owner has not called rehydrate() yet. */
    std::set<std::uint64_t> pendingRehydrate_;
};

} // namespace kvmarm::host

#endif // KVMARM_HOST_TIMERS_HH
