/**
 * @file
 * Host kernel memory management: a page allocator with reference counting
 * over machine RAM. This is the "existing kernel memory allocation, page
 * reference counting and page table manipulation code" the highvisor
 * leverages instead of writing its own allocator (paper §3.3) — a
 * bare-metal hypervisor has to bring its own (src/baremetal does).
 */

#ifndef KVMARM_HOST_MM_HH
#define KVMARM_HOST_MM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::check {
class InvariantEngine;
} // namespace kvmarm::check

namespace kvmarm::host {

/** Page-frame allocator with per-page refcounts. */
class Mm : public Snapshottable
{
  public:
    /**
     * @param check_engine the invariant engine the memory-management
     *     clients of this allocator (Stage-2, Hyp page tables) report to.
     *     HostKernel passes its machine's private engine; a null engine
     *     falls back to the process facade, so standalone Mm instances in
     *     unit tests keep reporting somewhere visible.
     */
    explicit Mm(PhysMem &ram,
                check::InvariantEngine *check_engine = nullptr);

    /** The invariant engine Stage-2/Hyp page-table code reports to.
     *  Never null when invariants are compiled in. */
    check::InvariantEngine *checkEngine() const { return checkEngine_; }

    /** Allocate one zeroed page (refcount 1). Fatal when out of memory. */
    Addr allocPage();

    /** Increment a page's refcount (get_page). */
    void getPage(Addr pa);

    /** Decrement a page's refcount; frees the frame at zero (put_page). */
    void putPage(Addr pa);

    /** Refcount of @p pa, 0 if free. */
    unsigned refcount(Addr pa) const;

    std::size_t freePages() const { return freeList_.size(); }
    std::size_t usedPages() const { return refcounts_.size(); }

    /**
     * The get_user_pages-shaped service KVM/ARM calls from its Stage-2
     * fault handler: pin and return a fresh page backing one page of a
     * user (VM) address space. In this model user mappings are always
     * populated on demand, so this allocates.
     */
    Addr getUserPages();

    /** Approximate cycle cost of the get_user_pages path. */
    static constexpr Cycles kGetUserPagesCost = 600;

    /** The RAM this allocator manages. */
    PhysMem &ram() { return ram_; }

    /// @name Snapshottable (HostKernel registers/unregisters this)
    ///
    /// The free list is serialized *verbatim*: its order decides every
    /// future allocPage() address, so restoring it exactly is what makes
    /// a clone's post-restore allocations bit-identical to the origin's.
    /// @{
    std::string snapshotKey() const override { return "mm"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    PhysMem &ram_;
    check::InvariantEngine *checkEngine_;
    std::vector<Addr> freeList_;
    std::unordered_map<Addr, unsigned> refcounts_;
};

} // namespace kvmarm::host

#endif // KVMARM_HOST_MM_HH
