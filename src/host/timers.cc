#include "host/timers.hh"

#include <algorithm>
#include <tuple>
#include <vector>

#include "sim/cpu_base.hh"
#include "sim/logging.hh"
#include "sim/machine_base.hh"

namespace kvmarm::host {

std::uint64_t
SoftTimers::start(CpuId cpu, Cycles when, Callback cb)
{
    std::uint64_t id = nextId_++;
    std::uint64_t event = machine_.cpuBase(cpu).events().schedule(
        when, [this, id, cb = std::move(cb)] {
            live_.erase(id);
            cb();
        });
    live_[id] = {cpu, event};
    return id;
}

bool
SoftTimers::cancel(std::uint64_t id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return false;
    machine_.cpuBase(it->second.cpu).events().cancel(it->second.eventId);
    live_.erase(it);
    return true;
}

void
SoftTimers::rehydrate(std::uint64_t id, Callback cb)
{
    auto pending = pendingRehydrate_.find(id);
    if (pending == pendingRehydrate_.end())
        fatal("SoftTimers::rehydrate: timer %llu is not pending rehydration",
              static_cast<unsigned long long>(id));
    pendingRehydrate_.erase(pending);
    auto it = live_.find(id);
    if (it == live_.end())
        fatal("SoftTimers::rehydrate: timer %llu not live",
              static_cast<unsigned long long>(id));
    machine_.cpuBase(it->second.cpu)
        .events()
        .claim(it->second.eventId, [this, id, cb = std::move(cb)] {
            live_.erase(id);
            cb();
        });
}

void
SoftTimers::saveState(SnapshotWriter &w)
{
    w.u64(nextId_);
    std::vector<std::tuple<std::uint64_t, CpuId, std::uint64_t>> timers;
    timers.reserve(live_.size());
    // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
    for (const auto &[id, rec] : live_)
        timers.emplace_back(id, rec.cpu, rec.eventId);
    std::sort(timers.begin(), timers.end());
    w.u64(timers.size());
    for (const auto &[id, cpu, event] : timers) {
        w.u64(id);
        w.u32(cpu);
        w.u64(event);
    }
}

void
SoftTimers::restoreState(SnapshotReader &r)
{
    nextId_ = r.u64();
    live_.clear();
    pendingRehydrate_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t id = r.u64();
        CpuId cpu = r.u32();
        std::uint64_t event = r.u64();
        live_[id] = {cpu, event};
        pendingRehydrate_.insert(id);
    }
}

void
SoftTimers::snapshotVerify()
{
    if (!pendingRehydrate_.empty())
        fatal("SoftTimers: %zu timer(s) never rehydrated after restore "
              "(first id %llu)",
              pendingRehydrate_.size(),
              static_cast<unsigned long long>(*pendingRehydrate_.begin()));
}

} // namespace kvmarm::host
