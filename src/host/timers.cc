#include "host/timers.hh"

#include "sim/cpu_base.hh"
#include "sim/machine_base.hh"

namespace kvmarm::host {

std::uint64_t
SoftTimers::start(CpuId cpu, Cycles when, Callback cb)
{
    std::uint64_t id = nextId_++;
    std::uint64_t event = machine_.cpuBase(cpu).events().schedule(
        when, [this, id, cb = std::move(cb)] {
            live_.erase(id);
            cb();
        });
    live_[id] = {cpu, event};
    return id;
}

bool
SoftTimers::cancel(std::uint64_t id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return false;
    machine_.cpuBase(it->second.cpu).events().cancel(it->second.eventId);
    live_.erase(it);
    return true;
}

} // namespace kvmarm::host
