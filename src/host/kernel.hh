/**
 * @file
 * The Linux-like host kernel KVM/ARM integrates with: boot (including the
 * boot-in-Hyp-mode protocol of paper §4), identity kernel page tables, the
 * GIC driver and IRQ dispatch layer, page allocation (Mm), software timers
 * (SoftTimers), thread blocking, and kernel<->user transitions for the
 * QEMU-shaped device emulation process.
 */

#ifndef KVMARM_HOST_KERNEL_HH
#define KVMARM_HOST_KERNEL_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "arm/machine.hh"
#include "arm/pagetable.hh"
#include "arm/vectors.hh"
#include "host/mm.hh"
#include "host/timers.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::host {

/** Host-side path costs (transition latencies Linux would incur). */
struct HostCosts
{
    Cycles kernelToUser = 1400; //!< ioctl return into the QEMU process
    Cycles userToKernel = 1650; //!< ioctl entry (KVM_RUN re-entry)
    Cycles irqDispatch = 160;   //!< irq_enter + handler lookup
    Cycles softTimerProgram = 150;
    Cycles wakeThread = 250;    //!< scheduler wakeup of a blocked thread
};

/**
 * The host Linux kernel. One instance per machine; boots on every CPU and
 * serves as the PL1 OsVectors for host execution contexts.
 */
class HostKernel : public arm::OsVectors, public Snapshottable
{
  public:
    struct Config
    {
        /** Bootloader entered the kernel in Hyp mode, letting it install
         *  the stub used to re-enter Hyp later (paper §4). When false,
         *  KVM/ARM must detect this and stay disabled. */
        bool bootedInHyp = true;
        HostCosts costs;
    };

    HostKernel(arm::ArmMachine &machine, const Config &config);
    HostKernel(arm::ArmMachine &machine) : HostKernel(machine, Config{}) {}
    ~HostKernel() override;

    /**
     * Bring up one CPU: on cpu0 also builds the kernel identity mappings
     * and initializes the GIC; enables the MMU, unmasks IRQs, and (when
     * booted in Hyp mode) installs the Hyp stub.
     */
    void boot(CpuId cpu);

    arm::ArmMachine &machine() { return machine_; }
    Mm &mm() { return mm_; }
    SoftTimers &timers() { return timers_; }
    const HostCosts &costs() const { return config_.costs; }
    bool bootedInHyp() const { return config_.bootedInHyp; }

    /** The kernel's Stage-1 root table (shared by all CPUs). */
    Addr kernelPgd() const { return kernelPgd_; }

    /// @name IRQ layer
    /// @{
    using IrqHandler = std::function<void(arm::ArmCpu &, IrqId)>;
    void requestIrq(IrqId irq, IrqHandler handler);
    void enableIrq(arm::ArmCpu &cpu, IrqId irq);
    /// @}

    /// @name Services used by KVM and device emulation
    /// @{
    /** Block the calling CPU's current thread until @p pred holds;
     *  IRQs remain serviceable while blocked. */
    void blockUntil(arm::ArmCpu &cpu, const std::function<bool()> &pred);

    /** Charge a kernel -> user -> kernel round trip around @p user_work,
     *  run with the CPU in user mode (the QEMU process). */
    void runInUserspace(arm::ArmCpu &cpu,
                        const std::function<void()> &user_work);

    /**
     * The paper-§4 protocol for getting code into Hyp mode: the stub
     * installed at boot handles an HVC that swaps in new vectors. Fails
     * (returns false) if the kernel was not booted in Hyp mode.
     */
    bool installHypVectors(arm::ArmCpu &cpu, arm::HypVectors *vectors);
    /// @}

    /// @name arm::OsVectors
    /// @{
    void irq(arm::ArmCpu &cpu) override;
    void svc(arm::ArmCpu &cpu, std::uint32_t num) override;
    bool pageFault(arm::ArmCpu &cpu, Addr va, bool write, bool user) override;
    const char *name() const override { return "host-linux"; }
    /// @}

    /// @name Snapshottable
    ///
    /// Per-CPU vector pointers are saved as *kinds* (null / hyp-stub /
    /// hypervisor-owned, null / host-kernel) and rebound to this instance's
    /// own objects on restore; a hypervisor-owned Hyp vector slot is left
    /// for the KVM layer's own rebind pass (it registers after us). IRQ
    /// handlers are std::functions their owners must re-register during
    /// rebind — snapshotVerify() checks the restored presence mask against
    /// what actually got re-registered.
    /// @{
    std::string snapshotKey() const override { return "host-kernel"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    void snapshotRebind() override;
    void snapshotVerify() override;
    /// @}

  private:
    /** Boot-time stub occupying the Hyp vector slot (paper §4): its only
     *  job is to let the kernel re-enter Hyp mode later. */
    class HypStub : public arm::HypVectors
    {
      public:
        explicit HypStub(HostKernel &kernel) : kernel_(kernel) {}
        void hypTrap(arm::ArmCpu &cpu, const arm::Hsr &hsr) override;
        const char *name() const override { return "hyp-stub"; }

        arm::HypVectors *pendingVectors = nullptr;

      private:
        HostKernel &kernel_;
    };

    static constexpr std::uint32_t kHvcSetVectors = 0xDEAD0001;

    void buildKernelTables();
    void initGicOnCpu(arm::ArmCpu &cpu);

    /** How a CPU's vector-base pointer is encoded in a snapshot. */
    enum class HypOwner : std::uint8_t { None = 0, Stub = 1, Hypervisor = 2 };
    enum class OsOwner : std::uint8_t { None = 0, Host = 1 };

    arm::ArmMachine &machine_;
    Config config_;
    Mm mm_;
    SoftTimers timers_;
    HypStub stub_;
    Addr kernelPgd_ = 0;
    std::array<IrqHandler, arm::kMaxIrqs> handlers_{};

    /** Restore-time scratch consumed by snapshotRebind()/snapshotVerify(). */
    std::vector<HypOwner> restoredHyp_;
    std::vector<OsOwner> restoredOs_;
    std::array<bool, arm::kMaxIrqs> restoredHandlerMask_{};
    bool verifyRestore_ = false;
};

} // namespace kvmarm::host

#endif // KVMARM_HOST_KERNEL_HH
