#include "host/mm.hh"

#include <algorithm>
#include <utility>

#include "check/invariants.hh"
#include "sim/logging.hh"

namespace kvmarm::host {

Mm::Mm(PhysMem &ram, check::InvariantEngine *check_engine)
    : ram_(ram),
      checkEngine_(check_engine ? check_engine : check::processEngine())
{
    // Build the free list high-to-low so early allocations (kernel page
    // tables) come from the top of RAM, away from guest RAM bases.
    Addr base = ram.base();
    Addr npages = ram.size() / kPageSize;
    freeList_.reserve(npages);
    for (Addr i = 0; i < npages; ++i)
        freeList_.push_back(base + i * kPageSize);
}

Addr
Mm::allocPage()
{
    if (freeList_.empty())
        fatal("host::Mm: out of memory (%zu pages in use)", usedPages());
    Addr pa = freeList_.back();
    freeList_.pop_back();
    ram_.zeroPage(pa);
    refcounts_[pa] = 1;
    return pa;
}

void
Mm::getPage(Addr pa)
{
    auto it = refcounts_.find(pageAlignDown(pa));
    if (it == refcounts_.end())
        panic("host::Mm::getPage on free page %#llx", static_cast<unsigned long long>(pa));
    ++it->second;
}

void
Mm::putPage(Addr pa)
{
    pa = pageAlignDown(pa);
    auto it = refcounts_.find(pa);
    if (it == refcounts_.end())
        panic("host::Mm::putPage on free page %#llx", static_cast<unsigned long long>(pa));
    if (--it->second == 0) {
        refcounts_.erase(it);
        freeList_.push_back(pa);
    }
}

unsigned
Mm::refcount(Addr pa) const
{
    auto it = refcounts_.find(pageAlignDown(pa));
    return it == refcounts_.end() ? 0 : it->second;
}

Addr
Mm::getUserPages()
{
    return allocPage();
}

void
Mm::saveState(SnapshotWriter &w)
{
    w.u64(freeList_.size());
    for (Addr pa : freeList_)
        w.u64(pa);
    std::vector<std::pair<Addr, unsigned>> rcs;
    rcs.reserve(refcounts_.size());
    // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
    for (const auto &[pa, rc] : refcounts_)
        rcs.emplace_back(pa, rc);
    std::sort(rcs.begin(), rcs.end());
    w.u64(rcs.size());
    for (const auto &[pa, rc] : rcs) {
        w.u64(pa);
        w.u32(rc);
    }
}

void
Mm::restoreState(SnapshotReader &r)
{
    freeList_.clear();
    std::uint64_t nfree = r.u64();
    freeList_.reserve(nfree);
    for (std::uint64_t i = 0; i < nfree; ++i)
        freeList_.push_back(r.u64());
    refcounts_.clear();
    std::uint64_t nrc = r.u64();
    for (std::uint64_t i = 0; i < nrc; ++i) {
        Addr pa = r.u64();
        refcounts_[pa] = r.u32();
    }
}

} // namespace kvmarm::host
