#include "kvmx86/kvm_x86.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace kvmarm::kvmx86 {

using x86::ExitInfo;
using x86::ExitReason;
using x86::X86Cpu;
using x86::X86Machine;

VCpuX86::VCpuX86(VmX86 &vm, unsigned index, CpuId phys_cpu)
    : vm_(vm), index_(index), physCpu_(phys_cpu)
{
}

void
VCpuX86::run(X86Cpu &cpu,
             const std::function<void(X86Cpu &)> &guest_main)
{
    if (cpu.id() != physCpu_)
        panic("VCpuX86::run on wrong cpu");
    KvmX86 &kvm = vm_.kvm();
    kvm.queueEnter(cpu.id(), this);
    Cycles entered = cpu.now();
    cpu.vmcall(vmcallnr::kRunVcpu);
    guest_main(cpu);
    cpu.vmcall(vmcallnr::kStopVcpu);
    stats.counter("residency.cycles").inc(cpu.now() - entered);
}

VmX86::VmX86(KvmX86 &kvm, Addr guest_ram_size)
    : kvm_(kvm), ramSize_(guest_ram_size)
{
}

VCpuX86 &
VmX86::addVcpu(CpuId phys_cpu)
{
    auto vcpu = std::make_unique<VCpuX86>(
        *this, static_cast<unsigned>(vcpus_.size()), phys_cpu);
    vcpu->tscOffset = kvm_.machine().cpuBase(phys_cpu).now();
    vcpus_.push_back(std::move(vcpu));
    return *vcpus_.back();
}

bool
VmX86::handleEptFault(Addr gpa)
{
    if (gpa >= ramSize_)
        return false;
    Addr page = pageAlignDown(gpa);
    if (!pages_.count(page))
        pages_[page] = kvm_.host().mm().getUserPages();
    return true;
}

bool
VmX86::translate(Addr gpa, Addr &hpa)
{
    auto it = pages_.find(pageAlignDown(gpa));
    if (it == pages_.end())
        return false;
    hpa = it->second | (gpa & (kPageSize - 1));
    return true;
}

void
VmX86::addKernelDevice(Addr base, Addr size, KernelDeviceHandler h)
{
    kernelDevices_.push_back({base, size, std::move(h)});
}

VmX86::KernelDeviceHandler *
VmX86::kernelDeviceAt(Addr gpa, Addr &off)
{
    for (KernelDevice &d : kernelDevices_) {
        if (gpa >= d.base && gpa < d.base + d.size) {
            off = gpa - d.base;
            return &d.handler;
        }
    }
    return nullptr;
}

void
VmX86::irqLine(X86Cpu &current_cpu, std::uint8_t vector,
               unsigned target_vcpu)
{
    if (target_vcpu >= vcpus_.size())
        return;
    kvm_.deliverVirq(current_cpu, *vcpus_[target_vcpu], vector);
}

KvmX86::KvmX86(X86Host &host)
    : host_(host), running_(host.machine().numCpus(), nullptr),
      pendingEnter_(host.machine().numCpus(), nullptr)
{
}

void
KvmX86::initCpu(X86Cpu &cpu)
{
    cpu.setVmxHandler(this);
    if (!vectorsRegistered_) {
        vectorsRegistered_ = true;
        host_.requestVector(kKickVector, [this](X86Cpu &c) {
            c.stats().counter("kvmx86.kick").inc();
            c.compute(machine().cost().kvmKickCost);
        });
    }
}

std::unique_ptr<VmX86>
KvmX86::createVm(Addr guest_ram_size)
{
    return std::make_unique<VmX86>(*this, guest_ram_size);
}

void
KvmX86::enterVm(X86Cpu &cpu, VCpuX86 &vcpu)
{
    running_.at(cpu.id()) = &vcpu;
    x86::Vmcs &vmcs = cpu.vmcs();
    vmcs.guestRegs = vcpu.regs;
    vmcs.guestUserMode = vcpu.guestUserMode;
    vmcs.guestIf = vcpu.guestIf;
    vmcs.ept = &vcpu.vm();
    vmcs.guestOs = vcpu.guestOs;
    vmcs.tscOffset = vcpu.tscOffset;
    vmcs.injectVector = 0;
    injectPending(cpu, vcpu);
    cpu.vmentry();
}

void
KvmX86::saveVcpu(X86Cpu &cpu, VCpuX86 &vcpu)
{
    x86::Vmcs &vmcs = cpu.vmcs();
    vcpu.regs = vmcs.guestRegs;
    vcpu.guestUserMode = vmcs.guestUserMode;
    vcpu.guestIf = vmcs.guestIf;
    if (vmcs.injectVector) {
        // An injected-but-not-yet-taken vector returns to the pending set.
        auto &isr = vcpu.apic.inService;
        auto it = std::find(isr.rbegin(), isr.rend(), vmcs.injectVector);
        if (it != isr.rend())
            isr.erase(std::next(it).base());
        vcpu.apic.pending.push_back(vmcs.injectVector);
        vmcs.injectVector = 0;
    }
}

void
KvmX86::injectPending(X86Cpu &cpu, VCpuX86 &vcpu)
{
    x86::Vmcs &vmcs = cpu.vmcs();
    if (vmcs.injectVector || vcpu.apic.pending.empty())
        return;
    auto best = std::max_element(vcpu.apic.pending.begin(),
                                 vcpu.apic.pending.end());
    if (!vcpu.apic.inService.empty() && *best <= vcpu.apic.inService.back())
        return;
    std::uint8_t vec = *best;
    vcpu.apic.pending.erase(best);
    vcpu.apic.inService.push_back(vec);
    vmcs.injectVector = vec;
    // Hardware event injection on vmentry (paper §2: interrupt delivery
    // itself is cheap; it is EOI that must trap without a virtual APIC).
    cpu.compute(machine().cost().eventInject);
}

void
KvmX86::deliverVirq(X86Cpu &current_cpu, VCpuX86 &target,
                    std::uint8_t vector)
{
    const x86::X86CostModel &cm = machine().cost();
    current_cpu.compute(2 * cm.atomicOp); // irq routing lock
    target.apic.pending.push_back(vector);

    if (target.blocked) {
        // Waking a halted VCPU is a real reschedule IPI to its physical
        // CPU plus the scheduler wakeup there.
        target.kicked = true;
        machine().cpuBase(target.physCpu())
            .kickAt(current_cpu.now() + cm.ipiWire + 800);
        return;
    }
    VCpuX86 *resident = running_.at(target.physCpu());
    if (resident == &target && target.physCpu() != current_cpu.id()) {
        // Physical reschedule IPI to force the target out of guest mode;
        // costed as a native ICR write plus the wire.
        machine().apic().bank(current_cpu.id()).icrHi =
            std::uint64_t(target.physCpu()) << 56;
        current_cpu.memWrite(x86::kApicBase + x86::apic::ICR_LO,
                             kKickVector, 4);
    }
    if (resident == &target && target.physCpu() == current_cpu.id())
        injectPending(current_cpu, target);
}

void
KvmX86::rootVmcall(X86Cpu &cpu, const ExitInfo &info)
{
    if (info.reason != ExitReason::Vmcall)
        panic("kvm-x86: unexpected root-mode exit %s",
              exitReasonName(info.reason));
    if (info.vmcallNr == vmcallnr::kRunVcpu) {
        VCpuX86 *vcpu = pendingEnter_.at(cpu.id());
        if (!vcpu)
            panic("kvm-x86: run with no queued vcpu");
        pendingEnter_.at(cpu.id()) = nullptr;
        enterVm(cpu, *vcpu);
        return;
    }
    panic("kvm-x86: unknown host vmcall %#x", info.vmcallNr);
}

void
KvmX86::handleEpt(X86Cpu &cpu, VCpuX86 &vcpu, const ExitInfo &info)
{
    const x86::X86CostModel &cm = machine().cost();
    if (vcpu.vm().handleEptFault(info.gpa)) {
        vcpu.stats.counter("fault.ept").inc();
        cpu.compute(host::Mm::kGetUserPagesCost);
        return;
    }
    // MMIO: x86 KVM must decode the instruction in software (paper §5.3).
    vcpu.stats.counter("mmio").inc();
    cpu.compute(cm.mmioDecode + cm.mmioDispatch);

    Addr off = 0;
    if (auto *h = vcpu.vm().kernelDeviceAt(info.gpa, off)) {
        vcpu.stats.counter("mmio.kernel").inc();
        std::uint64_t result = (*h)(info.isWrite, off, info.value, info.len);
        cpu.completeMmio(result);
        return;
    }
    X86MmioExit exit;
    exit.gpa = info.gpa;
    exit.isWrite = info.isWrite;
    exit.len = info.len;
    exit.data = info.value;
    userMmioExit(cpu, vcpu, exit);
}

void
KvmX86::userMmioExit(X86Cpu &cpu, VCpuX86 &vcpu, X86MmioExit &exit)
{
    vcpu.stats.counter("mmio.user").inc();
    auto &handler = vcpu.vm().userMmioHandler();
    if (!handler) {
        warn("kvm-x86: MMIO exit with no user-space emulator");
        cpu.completeMmio(0);
        return;
    }
    host_.runInUserspace(cpu, [&] { handler(cpu, vcpu, exit); });
    cpu.completeMmio(exit.data);
}

void
KvmX86::handleApicAccess(X86Cpu &cpu, VCpuX86 &vcpu, const ExitInfo &info)
{
    const x86::X86CostModel &cm = machine().cost();
    vcpu.stats.counter("apic.access").inc();

    if (info.isWrite && info.apicOffset == x86::apic::EOI) {
        // Fast path: no decode needed, the EOI value is ignored. Still a
        // full trap to root mode — Table 3's EOI+ACK on x86.
        cpu.compute(cm.apicEmulate + cm.atomicOp);
        if (!vcpu.apic.inService.empty())
            vcpu.apic.inService.pop_back();
        injectPending(cpu, vcpu);
        cpu.completeMmio(0);
        return;
    }

    // All other APIC registers go through the instruction emulator.
    cpu.compute(cm.mmioDecode + cm.apicEmulate);
    if (info.isWrite) {
        switch (info.apicOffset) {
          case x86::apic::ICR_HI:
            vcpu.apic.icrHi = info.value;
            break;
          case x86::apic::ICR_LO: {
            // Virtual IPI: route to the destination VCPU under the
            // emulation lock (paper §6's x86 analogue).
            cpu.compute(2 * cm.atomicOp);
            std::uint8_t vec = info.value & 0xFF;
            unsigned shorthand = (info.value >> 18) & 0x3;
            unsigned dest = (vcpu.apic.icrHi >> 56) & 0xFF;
            auto &vcpus = vcpu.vm().vcpus();
            if (shorthand == 1) {
                deliverVirq(cpu, vcpu, vec);
            } else if (shorthand == 0 && dest < vcpus.size()) {
                deliverVirq(cpu, *vcpus[dest], vec);
            } else if (shorthand == 3) {
                for (auto &v : vcpus)
                    if (v.get() != &vcpu)
                        deliverVirq(cpu, *v, vec);
            }
            break;
          }
          case x86::apic::TIMER_INIT: {
            // In-kernel APIC timer emulation via a host software timer.
            VCpuX86 *target = &vcpu;
            X86Machine &m = machine();
            CpuId phys = vcpu.physCpu();
            if (vcpu.apic.timerSoftId)
                host_.timers().cancel(vcpu.apic.timerSoftId);
            vcpu.apic.timerSoftId = host_.timers().start(
                phys, cpu.now() + info.value, [this, &m, phys, target] {
                    target->apic.timerSoftId = 0;
                    deliverVirq(m.cpu(phys), *target,
                                target->apic.timerVector);
                });
            break;
          }
          case x86::apic::LVT_TIMER:
            vcpu.apic.timerVector = info.value & 0xFF;
            if ((info.value & (1u << 16)) && vcpu.apic.timerSoftId) {
                host_.timers().cancel(vcpu.apic.timerSoftId);
                vcpu.apic.timerSoftId = 0;
            }
            break;
          default:
            break;
        }
        cpu.completeMmio(0);
        return;
    }

    std::uint64_t result = 0;
    switch (info.apicOffset) {
      case x86::apic::ID:
        result = std::uint64_t(vcpu.index()) << 24;
        break;
      case x86::apic::ICR_HI:
        result = vcpu.apic.icrHi;
        break;
      default:
        break;
    }
    cpu.completeMmio(result);
}

void
KvmX86::handleIo(X86Cpu &cpu, VCpuX86 &vcpu, const ExitInfo &info)
{
    // Port I/O exits carry full decode information in the exit
    // qualification (paper §3.4) — no software decode, straight to QEMU.
    X86MmioExit exit;
    exit.isPortIo = true;
    exit.port = info.port;
    exit.isWrite = info.isWrite;
    exit.data = info.value;
    userMmioExit(cpu, vcpu, exit);
}

void
KvmX86::handleHlt(X86Cpu &cpu, VCpuX86 &vcpu)
{
    vcpu.stats.counter("emul.hlt").inc();
    vcpu.blocked = true;
    host_.blockUntil(cpu, [&] {
        return vcpu.kicked || vcpu.stopRequested ||
               !vcpu.apic.pending.empty();
    });
    vcpu.blocked = false;
    vcpu.kicked = false;
}

void
KvmX86::vmexit(X86Cpu &cpu, const ExitInfo &info)
{
    VCpuX86 *vcpu = running_.at(cpu.id());
    if (!vcpu) {
        rootVmcall(cpu, info);
        return;
    }

    if (info.reason == ExitReason::Vmcall &&
        info.vmcallNr == vmcallnr::kTrapOnly) {
        // Table 3 "Trap": the bare hardware transition cost.
        vcpu->stats.counter("exit.traponly").inc();
        return;
    }

    const x86::X86CostModel &cm = machine().cost();
    vcpu->stats.counter(std::string("exit.") + exitReasonName(info.reason))
        .inc();
    cpu.setIf(true); // host runs with interrupts enabled
    cpu.compute(cm.exitDispatch);

    switch (info.reason) {
      case ExitReason::Vmcall:
        if (info.vmcallNr == vmcallnr::kStopVcpu) {
            saveVcpu(cpu, *vcpu);
            running_.at(cpu.id()) = nullptr;
            cpu.setStopVmx(true);
            return;
        }
        // kTestHypercall and unknown guest hypercalls: no work.
        break;
      case ExitReason::EptViolation:
        handleEpt(cpu, *vcpu, info);
        break;
      case ExitReason::ApicAccess:
        handleApicAccess(cpu, *vcpu, info);
        break;
      case ExitReason::IoInstruction:
        handleIo(cpu, *vcpu, info);
        break;
      case ExitReason::MsrWrite: {
        // TSC-deadline write: in-kernel APIC timer emulation, no decode
        // (the value arrives in registers).
        cpu.compute(cm.apicEmulate);
        vcpu->stats.counter("emul.tscdeadline").inc();
        VCpuX86 *target = vcpu;
        X86Machine &m = machine();
        CpuId phys = vcpu->physCpu();
        if (vcpu->apic.timerSoftId)
            host_.timers().cancel(vcpu->apic.timerSoftId);
        Cycles deadline = info.value + vcpu->tscOffset;
        if (deadline <= cpu.now())
            deadline = cpu.now() + 1;
        vcpu->apic.timerSoftId = host_.timers().start(
            phys, deadline, [this, &m, phys, target] {
                target->apic.timerSoftId = 0;
                deliverVirq(m.cpu(phys), *target,
                            target->apic.timerVector);
            });
        break;
      }
      case ExitReason::Hlt:
        handleHlt(cpu, *vcpu);
        break;
      case ExitReason::ExternalInterrupt:
        // Serviced by the host the moment interrupts were re-enabled.
        break;
    }

    injectPending(cpu, *vcpu);
    // The hardware vmentry is performed by X86Cpu::vmexit's epilogue.
}

} // namespace kvmarm::kvmx86
