/**
 * @file
 * The KVM x86-style hypervisor on the VMX machine model, mirroring the
 * mainline Linux KVM design the paper compares against (§5): the whole
 * hypervisor runs in root mode as ordinary kernel code, hardware VMCS
 * transitions replace ARM's software world switch, EPT faults populate
 * guest memory, the local APIC is emulated in the kernel (EOI and ICR
 * accesses trap — no virtual APIC on this hardware generation), and
 * everything else exits to user-space QEMU.
 */

#ifndef KVMARM_KVMX86_KVM_X86_HH
#define KVMARM_KVMX86_KVM_X86_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kvmx86/host_x86.hh"
#include "sim/stats.hh"
#include "x86/cpu.hh"

namespace kvmarm::kvmx86 {

class KvmX86;
class VmX86;

/// Hypercall numbers (mirror the ARM stack's).
namespace vmcallnr {
inline constexpr std::uint32_t kRunVcpu = 0x4B860001;
inline constexpr std::uint32_t kStopVcpu = 0x4B860002;
inline constexpr std::uint32_t kTrapOnly = 0x4B860003;
inline constexpr std::uint32_t kTestHypercall = 0x4B860004;
} // namespace vmcallnr

/** The vector KVM uses to kick a remote VCPU out of guest mode. */
inline constexpr std::uint8_t kKickVector = 0xF2;
/** Vector of the guest's (virtual) APIC timer. */
inline constexpr std::uint8_t kGuestTimerVector = 0xEF;

/** MMIO exit to user space (KVM_EXIT_MMIO / KVM_EXIT_IO). */
struct X86MmioExit
{
    Addr gpa = 0;
    bool isPortIo = false;
    std::uint16_t port = 0;
    bool isWrite = false;
    unsigned len = 4;
    std::uint64_t data = 0;
    bool handled = false;
};

/** Per-VCPU in-kernel virtual APIC state. */
struct VirtApic
{
    std::vector<std::uint8_t> pending;
    std::vector<std::uint8_t> inService;
    std::uint64_t icrHi = 0;
    std::uint8_t timerVector = kGuestTimerVector;
    std::uint64_t timerSoftId = 0;
};

/** One x86 virtual CPU. */
class VCpuX86
{
  public:
    VCpuX86(VmX86 &vm, unsigned index, CpuId phys_cpu);

    VmX86 &vm() { return vm_; }
    unsigned index() const { return index_; }
    CpuId physCpu() const { return physCpu_; }

    /** Guest context (lives in the VMCS while resident). */
    x86::RegisterFileX86 regs;
    bool guestUserMode = false;
    bool guestIf = true;
    std::uint64_t tscOffset = 0;
    x86::X86OsVectors *guestOs = nullptr;

    VirtApic apic;
    bool blocked = false;
    bool kicked = false;
    bool stopRequested = false;

    void setGuestOs(x86::X86OsVectors *os) { guestOs = os; }

    /** KVM_RUN (mirrors core::VCpu::run). */
    void run(x86::X86Cpu &cpu,
             const std::function<void(x86::X86Cpu &)> &guest_main);

    StatGroup stats;

  private:
    VmX86 &vm_;
    unsigned index_;
    CpuId physCpu_;
};

/** One x86 VM: EPT, VCPUs, devices. */
class VmX86 : public x86::EptView
{
  public:
    VmX86(KvmX86 &kvm, Addr guest_ram_size);

    KvmX86 &kvm() { return kvm_; }
    Addr ramSize() const { return ramSize_; }

    VCpuX86 &addVcpu(CpuId phys_cpu);
    std::vector<std::unique_ptr<VCpuX86>> &vcpus() { return vcpus_; }

    /** Guest-RAM EPT fault (get_user_pages + map). @return false if the
     *  GPA is not guest RAM (treated as MMIO). */
    bool handleEptFault(Addr gpa);

    std::size_t mappedPages() const { return pages_.size(); }

    /// @name x86::EptView
    /// @{
    bool translate(Addr gpa, Addr &hpa) override;
    /// @}

    using KernelDeviceHandler = std::function<std::uint64_t(
        bool is_write, Addr offset, std::uint64_t value, unsigned len)>;
    void addKernelDevice(Addr base, Addr size, KernelDeviceHandler h);
    KernelDeviceHandler *kernelDeviceAt(Addr gpa, Addr &off);

    using UserMmioHandler =
        std::function<void(x86::X86Cpu &, VCpuX86 &, X86MmioExit &)>;
    void setUserMmioHandler(UserMmioHandler h) { userMmio_ = std::move(h); }
    UserMmioHandler &userMmioHandler() { return userMmio_; }

    /** User-space interrupt injection (KVM_IRQ_LINE). */
    void irqLine(x86::X86Cpu &current_cpu, std::uint8_t vector,
                 unsigned target_vcpu = 0);

    static constexpr Addr kKernelTestDevBase = 0xD0000000;

  private:
    struct KernelDevice
    {
        Addr base;
        Addr size;
        KernelDeviceHandler handler;
    };

    KvmX86 &kvm_;
    Addr ramSize_;
    std::unordered_map<Addr, Addr> pages_; //!< gpa page -> hpa page
    std::vector<std::unique_ptr<VCpuX86>> vcpus_;
    std::vector<KernelDevice> kernelDevices_;
    UserMmioHandler userMmio_;
};

/** The KVM x86 module. */
class KvmX86 : public x86::VmxHandler
{
  public:
    explicit KvmX86(X86Host &host);

    void initCpu(x86::X86Cpu &cpu);
    std::unique_ptr<VmX86> createVm(Addr guest_ram_size);

    X86Host &host() { return host_; }
    x86::X86Machine &machine() { return host_.machine(); }

    VCpuX86 *running(CpuId cpu) { return running_.at(cpu); }
    void queueEnter(CpuId cpu, VCpuX86 *vcpu) {
        pendingEnter_.at(cpu) = vcpu;
    }

    /** Deliver a virtual interrupt to @p target (queues it in the virtual
     *  APIC and kicks the VCPU). */
    void deliverVirq(x86::X86Cpu &current_cpu, VCpuX86 &target,
                     std::uint8_t vector);

    /// @name x86::VmxHandler
    /// @{
    void vmexit(x86::X86Cpu &cpu, const x86::ExitInfo &info) override;
    const char *name() const override { return "kvm-x86"; }
    /// @}

  private:
    void rootVmcall(x86::X86Cpu &cpu, const x86::ExitInfo &info);
    void enterVm(x86::X86Cpu &cpu, VCpuX86 &vcpu);
    void saveVcpu(x86::X86Cpu &cpu, VCpuX86 &vcpu);
    void handleEpt(x86::X86Cpu &cpu, VCpuX86 &vcpu,
                   const x86::ExitInfo &info);
    void handleApicAccess(x86::X86Cpu &cpu, VCpuX86 &vcpu,
                          const x86::ExitInfo &info);
    void handleIo(x86::X86Cpu &cpu, VCpuX86 &vcpu,
                  const x86::ExitInfo &info);
    void handleHlt(x86::X86Cpu &cpu, VCpuX86 &vcpu);
    void injectPending(x86::X86Cpu &cpu, VCpuX86 &vcpu);
    void userMmioExit(x86::X86Cpu &cpu, VCpuX86 &vcpu, X86MmioExit &exit);

    X86Host &host_;
    std::vector<VCpuX86 *> running_;
    std::vector<VCpuX86 *> pendingEnter_;
    bool vectorsRegistered_ = false;
};

} // namespace kvmarm::kvmx86

#endif // KVMARM_KVMX86_KVM_X86_HH
