/**
 * @file
 * A slim Linux-like host kernel for the x86 comparison machine. Unlike on
 * ARM, nothing is special here: the entire kernel runs in root mode with
 * its full feature set (paper §2), so no split, no stub, no Hyp page
 * tables — which is precisely the contrast the paper draws.
 */

#ifndef KVMARM_KVMX86_HOST_X86_HH
#define KVMARM_KVMX86_HOST_X86_HH

#include <array>
#include <functional>

#include "host/mm.hh"
#include "host/timers.hh"
#include "x86/machine.hh"

namespace kvmarm::kvmx86 {

/** Host kernel services on the x86 machine. */
class X86Host : public x86::X86OsVectors
{
  public:
    explicit X86Host(x86::X86Machine &machine);

    void boot(CpuId cpu);

    x86::X86Machine &machine() { return machine_; }
    host::Mm &mm() { return mm_; }
    host::SoftTimers &timers() { return timers_; }

    using VectorHandler = std::function<void(x86::X86Cpu &)>;
    void requestVector(std::uint8_t vec, VectorHandler handler);

    /** Block the calling CPU's thread until @p pred holds. */
    void blockUntil(x86::X86Cpu &cpu, const std::function<bool()> &pred);

    /** Kernel -> user -> kernel round trip around @p user_work (the
     *  QEMU process); x86 KVM's lazy state handling makes these edges
     *  expensive (paper §5.2). */
    void runInUserspace(x86::X86Cpu &cpu,
                        const std::function<void()> &user_work);

    /// @name x86::X86OsVectors
    /// @{
    void interrupt(x86::X86Cpu &cpu, std::uint8_t vector) override;
    void syscall(x86::X86Cpu &cpu, std::uint32_t nr) override;
    const char *name() const override { return "x86-host-linux"; }
    /// @}

  private:
    x86::X86Machine &machine_;
    host::Mm mm_;
    host::SoftTimers timers_;
    std::array<VectorHandler, 256> handlers_{};
};

} // namespace kvmarm::kvmx86

#endif // KVMARM_KVMX86_HOST_X86_HH
