#include "kvmx86/host_x86.hh"

#include "sim/logging.hh"

namespace kvmarm::kvmx86 {

using x86::X86Cpu;

X86Host::X86Host(x86::X86Machine &machine)
    : machine_(machine), mm_(machine.ram()), timers_(machine)
{
}

void
X86Host::boot(CpuId cpu_id)
{
    X86Cpu &cpu = machine_.cpu(cpu_id);
    cpu.setOsVectors(this);
    cpu.setIf(true);
}

void
X86Host::requestVector(std::uint8_t vec, VectorHandler handler)
{
    handlers_[vec] = std::move(handler);
}

void
X86Host::interrupt(X86Cpu &cpu, std::uint8_t vector)
{
    cpu.compute(140); // irq_enter + vector dispatch
    if (handlers_[vector])
        handlers_[vector](cpu);
    else
        cpu.stats().counter("x86host.irq.unhandled").inc();
    cpu.memWrite(x86::kApicBase + x86::apic::EOI, 0, 4);
}

void
X86Host::syscall(X86Cpu &cpu, std::uint32_t nr)
{
    (void)cpu;
    (void)nr;
}

void
X86Host::blockUntil(X86Cpu &cpu, const std::function<bool()> &pred)
{
    bool saved = cpu.interruptsEnabled();
    cpu.setIf(true);
    cpu.waitUntil(pred);
    cpu.compute(260); // scheduler wakeup
    cpu.setIf(saved);
}

void
X86Host::runInUserspace(X86Cpu &cpu,
                        const std::function<void()> &user_work)
{
    const x86::X86CostModel &cm = machine_.cost();
    cpu.compute(cm.kernelToUser);
    bool saved = cpu.userMode();
    cpu.setUserMode(true);
    user_work();
    cpu.setUserMode(saved);
    cpu.compute(cm.userToKernel);
}

} // namespace kvmarm::kvmx86
