#include "power/energy.hh"

namespace kvmarm::power {

PowerProfile
arndaleProfile()
{
    return {"arndale", 1.4, 4.4};
}

PowerProfile
x86LaptopProfile()
{
    return {"x86-laptop", 7.5, 21.0};
}

double
watts(const PowerProfile &profile, double utilization)
{
    if (utilization < 0)
        utilization = 0;
    if (utilization > 1)
        utilization = 1;
    return profile.idleWatts +
           (profile.busyWatts - profile.idleWatts) * utilization;
}

double
energyJoules(const PowerProfile &profile, double seconds,
             double utilization)
{
    return watts(profile, utilization) * seconds;
}

} // namespace kvmarm::power
