/**
 * @file
 * Utilization-based platform energy model (paper §5.1-5.2, Figure 7).
 * The paper measured instantaneous power (ARM Energy Probe over a supply
 * shunt; powerstat/ACPI on the x86 laptop) and integrated over the run;
 * this model does the same with a linear idle/busy power curve, which
 * preserves exactly the distinction the paper draws: CPU-bound workloads'
 * energy overhead tracks their performance overhead, while I/O-bound ones
 * (memcached, untar) burn near-idle power either way.
 */

#ifndef KVMARM_POWER_ENERGY_HH
#define KVMARM_POWER_ENERGY_HH

namespace kvmarm::power {

/** Linear power curve of one platform. */
struct PowerProfile
{
    const char *name;
    double idleWatts;
    double busyWatts;
};

/** Arndale board: total SoC + SSD power at the supply (paper §5.1). */
PowerProfile arndaleProfile();

/** 2011 MacBook Air from battery, display/wireless off (paper §5.1). */
PowerProfile x86LaptopProfile();

/** Average power at @p utilization (0..1). */
double watts(const PowerProfile &profile, double utilization);

/** Energy in Joules of a run of @p seconds at @p utilization. */
double energyJoules(const PowerProfile &profile, double seconds,
                    double utilization);

} // namespace kvmarm::power

#endif // KVMARM_POWER_ENERGY_HH
