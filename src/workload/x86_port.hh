/**
 * @file
 * The x86 SysPort: the same miniature Linux on the x86 machine. The
 * architectural differences the paper's comparison hinges on fall out of
 * the op mapping: sched_clock is rdtsc (never traps), the oneshot timer is
 * the APIC timer (every reprogram traps in a VM), reschedule IPIs go
 * through the ICR (trap + decode), and every handled interrupt needs an
 * EOI MMIO write (trap without a virtual APIC).
 */

#ifndef KVMARM_WORKLOAD_X86_PORT_HH
#define KVMARM_WORKLOAD_X86_PORT_HH

#include <array>

#include "workload/sysport.hh"
#include "x86/machine.hh"

namespace kvmarm::wl {

/** State shared by the CPUs of one x86 Linux instance. */
struct X86OsImage
{
    Addr ramSize = 128 * kMiB;
    Addr nextFreePage = 0;
    Addr nextUserPage = 0;
    bool booted = false;
};

/** Per-CPU x86 port; also the OS's interrupt vectors. */
class X86LinuxPort : public SysPort, public x86::X86OsVectors
{
  public:
    X86LinuxPort(x86::X86Cpu &cpu, X86OsImage &image, unsigned index);

    void boot();

    x86::X86Cpu &cpu() { return cpu_; }

    /// @name SysPort
    /// @{
    unsigned cpuIndex() const override { return index_; }
    Cycles now() override { return cpu_.now(); }
    void kernelCompute(Cycles c) override { cpu_.compute(c); }
    void userCompute(Cycles c) override;
    void fpCompute(Cycles c) override { cpu_.compute(c); }
    std::uint64_t schedClock() override { return cpu_.rdtsc(); }
    void timerProgram(Cycles delta) override;
    void syscallEdge() override;
    void contextSwitchMmu() override;
    void sendRescheduleIpi(unsigned target_idx) override;
    void idle() override;
    void demandFault() override;
    void protFault() override;
    void ptSetup(unsigned pages) override;
    void tlbShootdown(bool smp) override;
    void devKick(unsigned slot, Addr nbytes) override;
    std::uint64_t devCompletions(unsigned slot) const override
    {
        return devCompletions_[slot];
    }
    std::uint64_t ipisReceived() const override { return ipis_; }
    std::uint64_t timerIrqsReceived() const override { return timerIrqs_; }
    /// @}

    /// @name x86::X86OsVectors
    /// @{
    void interrupt(x86::X86Cpu &cpu, std::uint8_t vector) override;
    void syscall(x86::X86Cpu &cpu, std::uint32_t nr) override;
    const char *name() const override { return "mini-linux-x86"; }
    /// @}

    static constexpr std::uint8_t kRescheduleVector = 0xFD;
    static constexpr std::uint8_t kTimerVector = 0xEF;
    static constexpr std::uint8_t kShootdownVector = 0xFB;

    /** Shootdown acks this CPU's handler has produced. */
    std::uint64_t shootdownAcks = 0;
    /** Peer port, set by the harness for SMP shootdowns. */
    X86LinuxPort *peer = nullptr;

  private:
    Addr allocPage();

    x86::X86Cpu &cpu_;
    X86OsImage &image_;
    unsigned index_;

    /** Page-cache / slab models: steady-state faults and fork/exec reuse
     *  these GPAs, so their EPT state is warm as on real systems. */
    static constexpr unsigned kPoolPages = 64;
    static constexpr unsigned kSlabPages = 128;
    std::vector<Addr> faultPool_;
    unsigned faultPoolIdx_ = 0;
    std::vector<Addr> slabPool_;
    unsigned slabIdx_ = 0;

    std::uint64_t ipis_ = 0;
    std::uint64_t timerIrqs_ = 0;
    std::array<std::uint64_t, 8> devCompletions_{};
};

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_X86_PORT_HH
