/**
 * @file
 * SysPort: the architecture-dependent substrate a modelled Linux kernel
 * runs on (the arch/ layer). The workload models (lmbench, the Table 2
 * applications) are written once against this interface; the ARM and x86
 * adapters issue real machine operations, so the same workload runs
 * natively and inside a VM on either architecture — which is exactly how
 * the paper obtains its normalized overhead figures.
 */

#ifndef KVMARM_WORKLOAD_SYSPORT_HH
#define KVMARM_WORKLOAD_SYSPORT_HH

#include <cstdint>

#include "sim/types.hh"

namespace kvmarm::wl {

/** Per-CPU architecture port used by the Linux model. */
class SysPort
{
  public:
    virtual ~SysPort() = default;

    /** Index of this CPU within the OS instance (0 or 1). */
    virtual unsigned cpuIndex() const = 0;

    /** Current cycle clock (harness-level measurement only). */
    virtual Cycles now() = 0;

    /// @name Execution
    /// @{
    virtual void kernelCompute(Cycles c) = 0;
    virtual void userCompute(Cycles c) = 0;
    /** A floating point burst (lazy-FP trap behaviour in VMs). */
    virtual void fpCompute(Cycles c) = 0;
    /// @}

    /// @name Clocks and timers (sched_clock + clockevents)
    /// @{
    /** Read the scheduler clock: ARM reads the virtual counter, x86
     *  executes rdtsc. Traps only in the no-vtimers configuration. */
    virtual std::uint64_t schedClock() = 0;

    /** Program the per-CPU oneshot timer @p delta cycles out: direct on
     *  ARM with vtimers, a trapping APIC access on x86. */
    virtual void timerProgram(Cycles delta) = 0;
    /// @}

    /// @name Kernel entries and scheduling
    /// @{
    /** One user->kernel->user syscall edge (entry + exit cost only). */
    virtual void syscallEdge() = 0;

    /** The MMU part of a context switch (table base + ASID / CR3). */
    virtual void contextSwitchMmu() = 0;

    /** Reschedule IPI to the other core (SGI / APIC ICR). */
    virtual void sendRescheduleIpi(unsigned target_idx) = 0;

    /** Enter the idle loop until an interrupt arrives (WFI / HLT). */
    virtual void idle() = 0;
    /// @}

    /// @name Memory management
    /// @{
    /** User touch of a never-mapped page: Stage-1 demand fault, plus the
     *  Stage-2/EPT fault if the backing is cold. */
    virtual void demandFault() = 0;

    /** User write to a read-only page: protection fault + signal. */
    virtual void protFault() = 0;

    /** Page-table setup work for @p pages pages (fork/exec): real table
     *  walks and writes, so the VM case pays nested-walk costs. */
    virtual void ptSetup(unsigned pages) = 0;

    /**
     * Flush remote TLBs after an unmap/protect. ARM broadcasts TLB
     * invalidations in hardware (TLBIMVAIS); x86 must interrupt the other
     * core and wait for its acknowledgment — a real IPI in this model,
     * which is trapping-expensive inside a VM.
     */
    virtual void tlbShootdown(bool smp) = 0;
    /// @}

    /// @name Device I/O (kick/complete model devices)
    /// @{
    /** Ring the doorbell of device @p slot for an @p nbytes operation. */
    virtual void devKick(unsigned slot, Addr nbytes) = 0;

    /** Completion interrupts received so far for @p slot. */
    virtual std::uint64_t devCompletions(unsigned slot) const = 0;
    /// @}

    /// @name Interrupt accounting
    /// @{
    virtual std::uint64_t ipisReceived() const = 0;
    virtual std::uint64_t timerIrqsReceived() const = 0;
    /// @}
};

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_SYSPORT_HH
