#include "workload/harness.hh"

#include <memory>
#include <vector>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "kvmx86/kvm_x86.hh"
#include "sim/logging.hh"
#include "vdev/model_dev.hh"
#include "vdev/qemu.hh"
#include "workload/arm_port.hh"
#include "workload/x86_port.hh"

namespace kvmarm::wl {

using arm::ArmMachine;
using x86::X86Machine;

const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::ArmVgic: return "ARM";
      case Platform::ArmNoVgic: return "ARM no VGIC/vtimers";
      case Platform::X86Laptop: return "x86 laptop";
      case Platform::X86Server: return "x86 server";
    }
    return "?";
}

namespace {

bool
isArm(Platform p)
{
    return p == Platform::ArmVgic || p == Platform::ArmNoVgic;
}

/** LAN peer (the iMac / OVH server): dominated by network RTT. */
vdev::DevProfile
remoteServerProfile()
{
    return {"lan-server", 340000, 17, 80};
}

std::vector<vdev::DevProfile>
deviceProfiles(const DeviceSetup &setup)
{
    std::vector<vdev::DevProfile> profiles(3);
    if (setup.net)
        profiles[0] = vdev::usbEthProfile();
    if (setup.disk)
        profiles[1] = vdev::ssdProfile();
    if (setup.remote)
        profiles[2] = remoteServerProfile();
    profiles[0].name = setup.net ? profiles[0].name : "";
    profiles[1].name = setup.disk ? profiles[1].name : "";
    profiles[2].name = setup.remote ? profiles[2].name : "";
    return profiles;
}

double
utilization(MachineBase &machine, unsigned ncpus)
{
    Cycles total = 0;
    Cycles idle = 0;
    for (unsigned i = 0; i < ncpus; ++i) {
        total += machine.cpuBase(i).now();
        idle += machine.cpuBase(i).idleCycles();
    }
    return total ? 1.0 - double(idle) / double(total) : 0.0;
}

RunMetrics
runArmNative(const Experiment &exp)
{
    ArmMachine::Config mc;
    mc.numCpus = exp.numCpus;
    mc.ramSize = 512 * kMiB;
    ArmMachine machine(mc);

    auto profiles = deviceProfiles(exp.devices);
    std::vector<std::unique_ptr<vdev::ModelDevice>> devs(profiles.size());
    for (unsigned slot = 0; slot < profiles.size(); ++slot) {
        if (profiles[slot].name.empty())
            continue;
        IrqId spi = vdev::kDevSpiBase + slot;
        Addr used = ArmMachine::kRamBase + vdev::kUsedPageOffset + slot * 8;
        devs[slot] = std::make_unique<vdev::ModelDevice>(
            profiles[slot], machine.cpuBase(0),
            [&machine, spi](Cycles when) {
                machine.gicd().raiseSpi(spi, when);
            },
            [&machine, used](std::uint64_t completed) {
                machine.ram().write(used, completed, 8);
            });
        machine.bus().addDevice(ArmMachine::kVirtioBase + slot * 0x1000,
                                0x1000, devs[slot].get());
    }

    ArmOsImage image;
    image.ramSize = 256 * kMiB;
    ArmLinuxPort port0(machine.cpu(0), image, 0);
    std::unique_ptr<ArmLinuxPort> port1;
    if (exp.numCpus == 2)
        port1 = std::make_unique<ArmLinuxPort>(machine.cpu(1), image, 1);

    RunMetrics rm;
    machine.cpu(0).setEntry([&] {
        port0.boot();
        rm.elapsed = exp.work(port0);
    });
    if (port1) {
        machine.cpu(1).setEntry([&] {
            port1->boot();
            exp.side(*port1);
        });
    }
    machine.run();
    rm.cpuUtil = utilization(machine, exp.numCpus);
    rm.seconds = machine.seconds(rm.elapsed);
    return rm;
}

RunMetrics
runArmVirt(const Experiment &exp)
{
    bool vgic = exp.platform == Platform::ArmVgic;
    ArmMachine::Config mc;
    mc.numCpus = exp.numCpus;
    mc.ramSize = 768 * kMiB;
    mc.hwVgic = vgic;
    mc.hwVtimers = vgic;
    ArmMachine machine(mc);
    host::HostKernel hostk(machine);
    core::KvmConfig kc;
    kc.useVgic = vgic;
    kc.useVtimers = vgic;
    core::Kvm kvm(hostk, kc);

    std::unique_ptr<core::Vm> vm;
    std::unique_ptr<vdev::QemuArm> qemu;
    ArmOsImage image;
    image.ramSize = 256 * kMiB;
    ArmLinuxPort port0(machine.cpu(0), image, 0);
    std::unique_ptr<ArmLinuxPort> port1;
    if (exp.numCpus == 2)
        port1 = std::make_unique<ArmLinuxPort>(machine.cpu(1), image, 1);

    auto profiles = deviceProfiles(exp.devices);

    RunMetrics rm;
    bool ready = false;
    machine.cpu(0).setEntry([&] {
        arm::ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        if (!kvm.initCpu(cpu))
            fatal("harness: KVM init failed");
        vm = kvm.createVm(384 * kMiB);
        core::VCpu &vcpu0 = vm->addVcpu(0);
        if (exp.numCpus == 2)
            vm->addVcpu(1);
        qemu = std::make_unique<vdev::QemuArm>(kvm, *vm);
        for (unsigned slot = 0; slot < profiles.size(); ++slot) {
            if (!profiles[slot].name.empty())
                qemu->addDevice(slot, profiles[slot]);
        }
        vcpu0.setGuestOs(&port0);
        ready = true;
        vcpu0.run(cpu, [&](arm::ArmCpu &) {
            port0.boot();
            rm.elapsed = exp.work(port0);
        });
    });
    if (port1) {
        machine.cpu(1).setEntry([&] {
            arm::ArmCpu &cpu = machine.cpu(1);
            hostk.boot(1);
            kvm.initCpu(cpu);
            while (!ready)
                cpu.compute(500);
            core::VCpu &vcpu1 = *vm->vcpus()[1];
            vcpu1.setGuestOs(port1.get());
            vcpu1.run(cpu, [&](arm::ArmCpu &) {
                port1->boot();
                exp.side(*port1);
            });
        });
    }
    machine.run();
    rm.cpuUtil = utilization(machine, exp.numCpus);
    rm.seconds = machine.seconds(rm.elapsed);
    return rm;
}

RunMetrics
runX86Native(const Experiment &exp)
{
    X86Machine::Config mc;
    mc.numCpus = exp.numCpus;
    mc.ramSize = 512 * kMiB;
    mc.platform = exp.platform == Platform::X86Laptop
                      ? x86::X86Platform::Laptop
                      : x86::X86Platform::Server;
    X86Machine machine(mc);

    auto profiles = deviceProfiles(exp.devices);
    std::vector<std::unique_ptr<vdev::ModelDevice>> devs(profiles.size());
    for (unsigned slot = 0; slot < profiles.size(); ++slot) {
        if (profiles[slot].name.empty())
            continue;
        std::uint8_t vec = vdev::kDevVectorBase + slot;
        Addr used = vdev::kUsedPageOffset + slot * 8;
        devs[slot] = std::make_unique<vdev::ModelDevice>(
            profiles[slot], machine.cpuBase(0),
            [&machine, vec](Cycles when) {
                machine.apic().postVector(0, vec, when);
            },
            [&machine, used](std::uint64_t completed) {
                machine.ram().write(used, completed, 8);
            });
        machine.bus().addDevice(X86Machine::kVirtioBase + slot * 0x1000,
                                0x1000, devs[slot].get());
    }

    X86OsImage image;
    image.ramSize = 256 * kMiB;
    X86LinuxPort port0(machine.cpu(0), image, 0);
    std::unique_ptr<X86LinuxPort> port1;
    if (exp.numCpus == 2) {
        port1 = std::make_unique<X86LinuxPort>(machine.cpu(1), image, 1);
        port0.peer = port1.get();
        port1->peer = &port0;
    }

    RunMetrics rm;
    machine.cpu(0).setEntry([&] {
        port0.boot();
        rm.elapsed = exp.work(port0);
    });
    if (port1) {
        machine.cpu(1).setEntry([&] {
            port1->boot();
            exp.side(*port1);
        });
    }
    machine.run();
    rm.cpuUtil = utilization(machine, exp.numCpus);
    rm.seconds = machine.seconds(rm.elapsed);
    return rm;
}

RunMetrics
runX86Virt(const Experiment &exp)
{
    X86Machine::Config mc;
    mc.numCpus = exp.numCpus;
    mc.ramSize = 768 * kMiB;
    mc.platform = exp.platform == Platform::X86Laptop
                      ? x86::X86Platform::Laptop
                      : x86::X86Platform::Server;
    X86Machine machine(mc);
    kvmx86::X86Host hostx(machine);
    kvmx86::KvmX86 kvm(hostx);

    std::unique_ptr<kvmx86::VmX86> vm;
    std::unique_ptr<vdev::QemuX86> qemu;
    X86OsImage image;
    image.ramSize = 256 * kMiB;
    X86LinuxPort port0(machine.cpu(0), image, 0);
    std::unique_ptr<X86LinuxPort> port1;
    if (exp.numCpus == 2) {
        port1 = std::make_unique<X86LinuxPort>(machine.cpu(1), image, 1);
        port0.peer = port1.get();
        port1->peer = &port0;
    }

    auto profiles = deviceProfiles(exp.devices);

    RunMetrics rm;
    bool ready = false;
    machine.cpu(0).setEntry([&] {
        x86::X86Cpu &cpu = machine.cpu(0);
        hostx.boot(0);
        kvm.initCpu(cpu);
        vm = kvm.createVm(384 * kMiB);
        kvmx86::VCpuX86 &vcpu0 = vm->addVcpu(0);
        if (exp.numCpus == 2)
            vm->addVcpu(1);
        qemu = std::make_unique<vdev::QemuX86>(kvm, *vm);
        for (unsigned slot = 0; slot < profiles.size(); ++slot) {
            if (!profiles[slot].name.empty())
                qemu->addDevice(slot, profiles[slot]);
        }
        vcpu0.setGuestOs(&port0);
        ready = true;
        vcpu0.run(cpu, [&](x86::X86Cpu &) {
            port0.boot();
            rm.elapsed = exp.work(port0);
        });
    });
    if (port1) {
        machine.cpu(1).setEntry([&] {
            x86::X86Cpu &cpu = machine.cpu(1);
            hostx.boot(1);
            kvm.initCpu(cpu);
            while (!ready)
                cpu.compute(500);
            kvmx86::VCpuX86 &vcpu1 = *vm->vcpus()[1];
            vcpu1.setGuestOs(port1.get());
            vcpu1.run(cpu, [&](x86::X86Cpu &) {
                port1->boot();
                exp.side(*port1);
            });
        });
    }
    machine.run();
    rm.cpuUtil = utilization(machine, exp.numCpus);
    rm.seconds = machine.seconds(rm.elapsed);
    return rm;
}

} // namespace

RunMetrics
runNative(const Experiment &exp)
{
    if (exp.prepare)
        exp.prepare();
    return isArm(exp.platform) ? runArmNative(exp) : runX86Native(exp);
}

RunMetrics
runVirt(const Experiment &exp)
{
    if (exp.prepare)
        exp.prepare();
    return isArm(exp.platform) ? runArmVirt(exp) : runX86Virt(exp);
}

double
overhead(const Experiment &exp)
{
    RunMetrics native = runNative(exp);
    RunMetrics virt = runVirt(exp);
    return native.elapsed ? double(virt.elapsed) / double(native.elapsed)
                          : 0.0;
}

} // namespace kvmarm::wl
