/**
 * @file
 * The ARM SysPort: a miniature ARM Linux. It boots real Stage-1 page
 * tables, drives the GIC through MMIO, fields IRQs/aborts as the machine's
 * PL1 vectors, and demand-pages its user region. The *same* code runs
 * natively on the machine and inside a KVM/ARM VM — only the environment
 * (Stage-2, trap configuration, device emulation) differs, which is the
 * whole point of full virtualization and of the paper's native-vs-virt
 * methodology.
 */

#ifndef KVMARM_WORKLOAD_ARM_PORT_HH
#define KVMARM_WORKLOAD_ARM_PORT_HH

#include <array>
#include <memory>
#include <optional>

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "arm/pagetable.hh"
#include "workload/sysport.hh"

namespace kvmarm::wl {

/** State shared by the CPUs of one ARM Linux instance (native or guest). */
struct ArmOsImage
{
    Addr ramBase = arm::ArmMachine::kRamBase;
    Addr ramSize = 128 * kMiB;
    Addr pgd = 0;
    Addr nextFreePage = 0; //!< boot-time bump allocator (top-down)
    bool booted = false;

    /** User VA region demand-paged by the port. */
    static constexpr Addr kUserBase = 0x00400000;
    Addr nextUserVa = kUserBase;
};

/** Per-CPU ARM port; also the OS's PL1 exception vectors. */
class ArmLinuxPort : public SysPort, public arm::OsVectors
{
  public:
    ArmLinuxPort(arm::ArmCpu &cpu, ArmOsImage &image, unsigned index);

    /** Bring up this CPU: build tables (first CPU), program the MMU,
     *  initialize the GIC, install vectors, unmask interrupts. Call from
     *  the native boot path or from inside the guest. */
    void boot();

    arm::ArmCpu &cpu() { return cpu_; }

    /// @name SysPort
    /// @{
    unsigned cpuIndex() const override { return index_; }
    Cycles now() override { return cpu_.now(); }
    void kernelCompute(Cycles c) override { cpu_.compute(c); }
    void userCompute(Cycles c) override;
    void fpCompute(Cycles c) override { cpu_.fpOp(c); }
    std::uint64_t schedClock() override { return cpu_.readCntvct(); }
    void timerProgram(Cycles delta) override;
    void syscallEdge() override;
    void contextSwitchMmu() override;
    void sendRescheduleIpi(unsigned target_idx) override;
    void idle() override;
    void demandFault() override;
    void protFault() override;
    void ptSetup(unsigned pages) override;
    void tlbShootdown(bool smp) override;
    void devKick(unsigned slot, Addr nbytes) override;
    std::uint64_t devCompletions(unsigned slot) const override
    {
        return devCompletions_[slot];
    }
    std::uint64_t ipisReceived() const override { return ipis_; }
    std::uint64_t timerIrqsReceived() const override { return timerIrqs_; }
    /// @}

    /// @name arm::OsVectors
    /// @{
    void irq(arm::ArmCpu &cpu) override;
    void svc(arm::ArmCpu &cpu, std::uint32_t num) override;
    bool pageFault(arm::ArmCpu &cpu, Addr va, bool write,
                   bool user) override;
    const char *name() const override { return "mini-linux-arm"; }
    /// @}

  private:
    Addr allocPage();
    arm::PageTableEditor makeEditor();
    void buildKernelTables();
    void gicInit();

    arm::ArmCpu &cpu_;
    ArmOsImage &image_;
    unsigned index_;

    std::uint64_t ipis_ = 0;
    std::uint64_t timerIrqs_ = 0;
    std::array<std::uint64_t, 8> devCompletions_{};

    /** Scratch read-only page for the protection-fault benchmark. */
    std::optional<Addr> roPageVa_;
    bool inProtFaultBench_ = false;
    std::uint64_t protFaults_ = 0;
    std::uint32_t asid_ = 1;

    /** Page-cache model: demand faults recycle these (va, pa) pairs, so
     *  steady-state faults hit warm Stage-2 mappings as on real systems. */
    static constexpr unsigned kPoolPages = 64;
    std::vector<std::pair<Addr, Addr>> faultPool_;
    unsigned faultPoolIdx_ = 0;
    Addr pendingBackingPa_ = 0; //!< backing page the next fault must use

    /** Slab model for fork/exec page-table pages. */
    static constexpr unsigned kSlabPages = 128;
    std::vector<Addr> slabPool_;
    unsigned slabIdx_ = 0;
};

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_ARM_PORT_HH
