/**
 * @file
 * The eight application workloads of Table 2, modelled as transaction
 * loops over SysPort + the kick/complete devices: apache (ApacheBench),
 * mysql (SysBench OLTP), memcached (memslap), kernel compile, untar,
 * curl 1K / curl 1G against a LAN server, and hackbench. SMP runs split
 * each workload's natural pipeline across the two CPUs with real
 * reschedule IPIs and idling, the structure behind Figure 6's divergence
 * between KVM/ARM and KVM x86.
 */

#ifndef KVMARM_WORKLOAD_APPS_HH
#define KVMARM_WORKLOAD_APPS_HH

#include <string>
#include <vector>

#include "workload/harness.hh"

namespace kvmarm::wl {

/** The Table 2 applications. */
enum class App
{
    Apache,
    Mysql,
    Memcached,
    KernelCompile,
    Untar,
    Curl1K,
    Curl1G,
    Hackbench,
};

const char *appName(App app);
std::vector<App> allApps();

/** Fraction of CPU time the workload keeps a core busy natively; the
 *  paper's energy discussion hinges on memcached and untar not being CPU
 *  bound (§5.2). */
bool isCpuBound(App app);

/** Build the harness experiment for @p app (work/side/devices/prepare). */
Experiment makeAppExperiment(App app, Platform platform, bool smp);

/** Performance and energy outcome of one app on one platform. */
struct AppOutcome
{
    double overhead = 0;       //!< virt elapsed / native elapsed
    double energyOverhead = 0; //!< virt Joules / native Joules
    RunMetrics native;
    RunMetrics virt;
};

AppOutcome runApp(App app, Platform platform, bool smp);

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_APPS_HH
