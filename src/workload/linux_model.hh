/**
 * @file
 * The lmbench 3.0 workload models (paper §5.1, Figures 3 and 4), written
 * once against SysPort. Each operation is a composition of the kernel-path
 * events that dominate its cost: syscall edges, scheduler clock reads,
 * context switches, IPIs, faults, and idle transitions — the events whose
 * per-architecture virtualization cost the micro-benchmarks calibrate.
 */

#ifndef KVMARM_WORKLOAD_LINUX_MODEL_HH
#define KVMARM_WORKLOAD_LINUX_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/sysport.hh"

namespace kvmarm::wl {

/** Path-length constants of the modelled Linux kernel (cycles). */
struct LinuxCosts
{
    Cycles userWork = 60;
    Cycles syscallWork = 600;     //!< null syscall kernel body
    Cycles pipeCopy = 2600;       //!< pipe buffer copy + locking
    Cycles sockWork = 3600;       //!< af_unix socket path
    Cycles tcpWork = 7000;        //!< tcp/ip loopback stack
    Cycles wakeup = 600;          //!< try_to_wake_up
    Cycles schedPick = 520;       //!< pick_next_task + runqueue ops
    Cycles switchThread = 980;    //!< switch_to + state save
    unsigned clockReadsPerSwitch = 2; //!< update_rq_clock calls
    Cycles forkWork = 110000;
    unsigned forkPages = 36;      //!< page tables copied/COW-marked
    Cycles execWork = 210000;
    unsigned execPages = 56;      //!< fresh mappings touched by exec
    Cycles tickInterval = 170000; //!< 10 ms tick at 1.7 GHz / NOHZ slice
};

/** The lmbench workloads of Figures 3-4. */
enum class LmWorkload
{
    Fork,
    Exec,
    Pipe,
    Ctxsw,
    ProtFault,
    PageFault,
    AfUnix,
    Tcp,
};

const char *lmWorkloadName(LmWorkload w);
std::vector<LmWorkload> allLmWorkloads();

/** Uniprocessor lmbench operations on one port. */
class LmbenchOps
{
  public:
    explicit LmbenchOps(SysPort &port, const LinuxCosts &costs = {});

    /** Run @p iters iterations of @p w; returns elapsed cycles. */
    Cycles run(LmWorkload w, unsigned iters, bool smp = false);

    /// @name Individual operations
    /// @{
    void nullSyscall();
    void ctxswRound();
    void pipeRound();
    void forkOp(bool smp);
    void execOp(bool smp);
    void protFaultOp(bool smp);
    void pageFaultOp();
    void afUnixRound();
    void tcpRound();
    /// @}

    /** One in-kernel context switch (clock reads + pick + mmu + state). */
    void switchTo();

  private:
    SysPort &port_;
    LinuxCosts costs_;
};

/** Shared state of a two-CPU ping-pong benchmark (pipe/ctxsw SMP). */
struct SmpChannel
{
    std::uint64_t token = 0;  //!< whose turn (round counter)
    std::uint64_t rounds = 0; //!< total rounds to run
    bool done = false;
};

/**
 * One side of the SMP pipe benchmark ("we pinned each benchmark process
 * to a separate CPU", paper §5.1). @p first runs rounds where token is
 * even. Includes the NOHZ idle dance: clock read + timer reprogram before
 * sleeping — the source of the paper's timer-related overheads.
 */
void pipeSmpSide(SysPort &port, SmpChannel &ch, bool first, bool with_copy,
                 const LinuxCosts &costs = {});

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_LINUX_MODEL_HH
