#include "workload/arm_port.hh"

#include "arm/gic.hh"
#include "sim/logging.hh"
#include "vdev/model_dev.hh"
#include "vdev/qemu.hh"

namespace kvmarm::wl {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::CtrlReg;
using arm::Mode;
using arm::Perms;

namespace {
/** Kernel cost of servicing a demand fault (handle_mm_fault path). */
constexpr Cycles kDemandFaultKernelWork = 850;
/** Kernel cost of delivering a SIGSEGV. */
constexpr Cycles kSignalWork = 420;
/** Zeroing a fresh page (cache-resident memset). */
constexpr Cycles kPageZeroWork = 320;
/** Reschedule SGI id (matches Linux's IPI_RESCHEDULE slot). */
constexpr IrqId kRescheduleSgi = 2;
} // namespace

ArmLinuxPort::ArmLinuxPort(ArmCpu &cpu, ArmOsImage &image, unsigned index)
    : cpu_(cpu), image_(image), index_(index)
{
}

Addr
ArmLinuxPort::allocPage()
{
    if (image_.nextFreePage <= image_.ramBase + image_.ramSize / 2)
        fatal("mini-linux-arm: out of page frames");
    image_.nextFreePage -= kPageSize;
    kernelCompute(kPageZeroWork);
    return image_.nextFreePage;
}

arm::PageTableEditor
ArmLinuxPort::makeEditor()
{
    // Table words are read and written through the CPU, so every table
    // touch pays real translation costs (including Stage-2 when in a VM).
    return arm::PageTableEditor(
        arm::PtFormat::KernelLpae,
        [this](Addr pa) { return cpu_.memRead(pa, 8); },
        [this](Addr pa, std::uint64_t v) { cpu_.memWrite(pa, v, 8); },
        [this] { return allocPage(); });
}

void
ArmLinuxPort::buildKernelTables()
{
    image_.nextFreePage = image_.ramBase + image_.ramSize;
    auto editor = makeEditor();
    image_.pgd = editor.newRoot();

    Perms kmem;
    kmem.user = false;
    for (Addr off = 0; off < image_.ramSize; off += arm::kBlock2MSize)
        editor.mapBlock2M(image_.pgd, image_.ramBase + off,
                          image_.ramBase + off, kmem);

    Perms dev;
    dev.user = false;
    dev.exec = false;
    dev.device = true;
    editor.map(image_.pgd, ArmMachine::kGicdBase, ArmMachine::kGicdBase,
               dev);
    editor.map(image_.pgd, ArmMachine::kGiccBase, ArmMachine::kGiccBase,
               dev);
    editor.map(image_.pgd, ArmMachine::kUartBase, ArmMachine::kUartBase,
               dev);
    for (unsigned slot = 0; slot < 4; ++slot) {
        Addr base = ArmMachine::kVirtioBase + slot * 0x1000;
        editor.map(image_.pgd, base, base, dev);
    }
}

void
ArmLinuxPort::gicInit()
{
    if (index_ == 0) {
        cpu_.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);
        // Enable and route the emulated-device SPIs to CPU0.
        cpu_.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER + 4,
                      0xFFu << (vdev::kDevSpiBase - 32));
        for (unsigned slot = 0; slot < 8; ++slot) {
            cpu_.memWrite(ArmMachine::kGicdBase + arm::gicd::ITARGETSR +
                              vdev::kDevSpiBase + slot,
                          0x01);
        }
    }
    // Banked enables: SGIs + the virtual timer PPI.
    cpu_.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER,
                  0xFFFF | (1u << arm::kVirtTimerPpi));
    cpu_.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
    cpu_.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
}

void
ArmLinuxPort::boot()
{
    if (index_ == 0) {
        if (!image_.booted)
            buildKernelTables();
    } else {
        while (!image_.booted)
            cpu_.compute(300);
    }

    cpu_.writeCp15_64(CtrlReg::TTBR0Lo, CtrlReg::TTBR0Hi, image_.pgd);
    cpu_.writeCp15(CtrlReg::TTBCR, 0);
    cpu_.writeCp15(CtrlReg::CONTEXTIDR, 1);
    cpu_.writeCp15(CtrlReg::SCTLR, cpu_.readCp15(CtrlReg::SCTLR) | 1);
    cpu_.setOsVectors(this);
    gicInit();
    cpu_.setIrqMasked(false);
    if (index_ == 0)
        image_.booted = true;
}

void
ArmLinuxPort::userCompute(Cycles c)
{
    Mode saved = cpu_.mode();
    cpu_.setMode(Mode::Usr);
    cpu_.compute(c);
    cpu_.setMode(saved);
}

void
ArmLinuxPort::timerProgram(Cycles delta)
{
    // clockevents_program_event: read the clock, write CTL+CVAL. Direct
    // hardware access with virtual timers (paper §3.6); traps to
    // user-space emulation without them.
    arm::TimerRegs regs;
    regs.enable = true;
    regs.imask = false;
    regs.cval = cpu_.readCntvct() + delta;
    cpu_.writeVirtTimer(regs);
}

void
ArmLinuxPort::syscallEdge()
{
    Mode saved = cpu_.mode();
    cpu_.setMode(Mode::Usr);
    cpu_.svc(0);
    cpu_.setMode(saved);
}

void
ArmLinuxPort::contextSwitchMmu()
{
    // switch_mm: rotate the ASID and point TTBR0 at the (shared, in this
    // model) page tables. ASID tagging avoids a TLB flush.
    asid_ = (asid_ % 3) + 1;
    cpu_.writeCp15(CtrlReg::CONTEXTIDR, asid_);
    cpu_.writeCp15_64(CtrlReg::TTBR0Lo, CtrlReg::TTBR0Hi, image_.pgd);
}

void
ArmLinuxPort::sendRescheduleIpi(unsigned target_idx)
{
    cpu_.memWrite(ArmMachine::kGicdBase + arm::gicd::SGIR,
                  (1u << (16 + target_idx)) | kRescheduleSgi);
}

void
ArmLinuxPort::idle()
{
    cpu_.wfi();
    // Idle-exit bookkeeping; also lets the waking interrupt deliver
    // before the idle loop re-evaluates its condition.
    cpu_.compute(20);
}

void
ArmLinuxPort::demandFault()
{
    Addr va;
    bool fresh = faultPool_.size() < kPoolPages;
    if (fresh) {
        va = image_.nextUserVa;
        image_.nextUserVa += kPageSize;
    } else {
        // Steady state: recycle page-cache pages — unmap an old mapping
        // and fault it back in on warm Stage-2 state, as lmbench's
        // mmap/touch loop does on a real system.
        auto &[pool_va, pool_pa] =
            faultPool_[faultPoolIdx_++ % kPoolPages];
        va = pool_va;
        auto editor = makeEditor();
        editor.unmap(image_.pgd, va);
        cpu_.tlbiVa(va);
        pendingBackingPa_ = pool_pa;
    }

    Mode saved = cpu_.mode();
    cpu_.setMode(Mode::Usr);
    cpu_.memTouch(va, arm::Access::Write);
    cpu_.setMode(saved);

    if (fresh) {
        auto editor = makeEditor();
        Addr pa = editor.lookup(image_.pgd, va).value_or(0);
        faultPool_.emplace_back(va, pageAlignDown(pa));
    }
}

void
ArmLinuxPort::protFault()
{
    auto editor = makeEditor();
    if (!roPageVa_) {
        Addr va = image_.nextUserVa;
        image_.nextUserVa += kPageSize;
        Perms ro;
        ro.user = true;
        ro.write = false;
        editor.map(image_.pgd, va, allocPage(), ro);
        roPageVa_ = va;
    }
    // Hoist the deref next to the guard: both branches above leave the
    // optional engaged, and a local keeps that provable for clang-tidy's
    // unchecked-optional-access flow analysis across the calls below.
    const Addr roVa = *roPageVa_;
    inProtFaultBench_ = true;
    Mode saved = cpu_.mode();
    cpu_.setMode(Mode::Usr);
    cpu_.memTouch(roVa, arm::Access::Write);
    cpu_.setMode(saved);
    inProtFaultBench_ = false;

    // Re-protect for the next iteration (mprotect-style): table write
    // plus the required TLB maintenance.
    Perms ro;
    ro.user = true;
    ro.write = false;
    Addr pa = editor.lookup(image_.pgd, roVa).value_or(0);
    editor.map(image_.pgd, roVa, pageAlignDown(pa), ro);
    cpu_.tlbiVa(roVa);
}

void
ArmLinuxPort::ptSetup(unsigned pages)
{
    auto editor = makeEditor();
    Perms user;
    user.user = true;
    for (unsigned i = 0; i < pages; ++i) {
        Addr va = image_.nextUserVa;
        image_.nextUserVa += kPageSize;
        // Backing comes from the slab/page cache: recycled pages whose
        // Stage-2 state is warm in steady state.
        Addr pa;
        if (slabPool_.size() < kSlabPages) {
            pa = allocPage();
            slabPool_.push_back(pa);
        } else {
            pa = slabPool_[slabIdx_++ % kSlabPages];
            kernelCompute(120); // slab alloc path
        }
        editor.map(image_.pgd, va, pa, user);
    }
}

void
ArmLinuxPort::tlbShootdown(bool smp)
{
    // ARM broadcasts invalidations over the interconnect: no IPI, no
    // waiting on the other core (inner-shareable TLBI).
    (void)smp;
    cpu_.tlbiAll();
}

void
ArmLinuxPort::devKick(unsigned slot, Addr nbytes)
{
    cpu_.memWrite(ArmMachine::kVirtioBase + slot * 0x1000 +
                      vdev::modeldev::KICK,
                  nbytes);
}

void
ArmLinuxPort::irq(ArmCpu &cpu)
{
    std::uint32_t iar = static_cast<std::uint32_t>(
        cpu.memRead(ArmMachine::kGiccBase + arm::gicc::IAR, 4));
    IrqId irq_id = iar & 0x3FF;
    if (irq_id == arm::kSpuriousIrq)
        return;

    cpu.compute(140); // generic IRQ dispatch

    if (irq_id < arm::kNumSgis) {
        ++ipis_;
        cpu.compute(160); // scheduler_ipi
    } else if (irq_id == arm::kVirtTimerPpi) {
        ++timerIrqs_;
        // Oneshot semantics: disable until the next program.
        arm::TimerRegs off;
        cpu.writeVirtTimer(off);
        cpu.compute(450); // hrtimer expiry processing
    } else if (irq_id >= vdev::kDevSpiBase &&
               irq_id < vdev::kDevSpiBase + 8) {
        // Interrupts coalesce; read completion progress from the used
        // counter the device DMAs into memory (virtio style).
        unsigned slot = irq_id - vdev::kDevSpiBase;
        devCompletions_[slot] = cpu.memRead(
            image_.ramBase + vdev::kUsedPageOffset + slot * 8, 8);
        cpu.compute(220); // driver completion handler
    }

    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
}

void
ArmLinuxPort::svc(ArmCpu &cpu, std::uint32_t num)
{
    (void)cpu;
    (void)num;
    // Syscall body costs are charged by the workload model.
}

bool
ArmLinuxPort::pageFault(ArmCpu &cpu, Addr va, bool write, bool user)
{
    if (!user || va >= image_.ramBase)
        return false; // kernel fault: bug

    auto editor = makeEditor();
    std::optional<Addr> mapped = editor.lookup(image_.pgd, va);

    if (mapped && write) {
        // Protection fault on a mapped page.
        cpu.compute(kSignalWork);
        ++protFaults_;
        if (inProtFaultBench_) {
            // The benchmark's SIGSEGV handler mprotects the page RW.
            Perms rw;
            rw.user = true;
            editor.map(image_.pgd, pageAlignDown(va),
                       pageAlignDown(*mapped), rw);
            cpu.tlbiVa(va);
            return true;
        }
        return false;
    }

    // Anonymous demand fault: map a page — from the page cache when the
    // fault path designated one, else a fresh zeroed frame.
    cpu.compute(kDemandFaultKernelWork);
    Addr pa = pendingBackingPa_ ? pendingBackingPa_ : allocPage();
    pendingBackingPa_ = 0;
    Perms rw;
    rw.user = true;
    editor.map(image_.pgd, pageAlignDown(va), pa, rw);
    return true;
}

} // namespace kvmarm::wl
