#include "workload/microbench.hh"

#include <memory>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "sim/logging.hh"

namespace kvmarm::wl {

using arm::ArmCpu;
using arm::ArmMachine;
using core::Kvm;
using core::VCpu;
using core::Vm;

namespace {

/** Shared-guest-memory mailbox addresses (IPAs, VA==IPA, MMU off). */
constexpr Addr kFlagResponse = ArmMachine::kRamBase + 0x1000;

/**
 * The "custom small guest OS": enough of a kernel to take interrupts
 * through the (virtual) GIC CPU interface and run the measurement loops.
 */
class MicroGuestOs : public arm::OsVectors
{
  public:
    void
    irq(ArmCpu &cpu) override
    {
        Cycles t0 = cpu.now();
        std::uint32_t iar = static_cast<std::uint32_t>(
            cpu.memRead(ArmMachine::kGiccBase + arm::gicc::IAR, 4));
        IrqId irq_id = iar & 0x3FF;
        if (irq_id == arm::kSpuriousIrq)
            return;
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
        lastAckEoiCycles = cpu.now() - t0;
        totalAckEoiCycles += lastAckEoiCycles;
        ++irqCount;
        // Respond to IPIs through shared guest memory only after the IPI
        // is complete (the paper measures "until the other core responds
        // and completes the IPI").
        if (irq_id < arm::kNumSgis) {
            ++ipisReceived;
            cpu.memWrite(kFlagResponse, ipisReceived, 4);
        }
    }

    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "micro-guest"; }

    /** Guest boot: enable the distributor, the SGIs, and the CPU
     *  interface — all through (trapped or virtualized) MMIO. */
    void
    boot(ArmCpu &cpu)
    {
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER, 0xFFFF);
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
        cpu.setIrqMasked(false);
    }

    std::uint64_t ipisReceived = 0;
    std::uint64_t irqCount = 0;
    Cycles lastAckEoiCycles = 0;
    Cycles totalAckEoiCycles = 0;
};

/** Full stack for one micro-benchmark column. */
struct MicroStack
{
    explicit MicroStack(const ArmMicroSetup &setup)
    {
        ArmMachine::Config mc;
        mc.numCpus = 2;
        mc.ramSize = 256 * kMiB;
        mc.hwVgic = setup.useVgic;
        mc.hwVtimers = setup.useVtimers;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
        core::KvmConfig kc;
        kc.useVgic = setup.useVgic;
        kc.useVtimers = setup.useVtimers;
        kvm = std::make_unique<Kvm>(*hostk, kc);
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
    std::unique_ptr<Kvm> kvm;
};

} // namespace

MicroResults
runArmMicrobench(const ArmMicroSetup &setup)
{
    MicroStack stack(setup);
    ArmMachine &machine = *stack.machine;
    MicroResults results;
    const unsigned iters = setup.iterations;

    std::unique_ptr<Vm> vm;
    MicroGuestOs guest_os0;
    MicroGuestOs guest_os1;
    bool responder_ready = false;
    bool responder_done = false;

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        stack.hostk->boot(0);
        if (!stack.kvm->initCpu(cpu))
            fatal("microbench: KVM init failed");
        vm = stack.kvm->createVm(128 * kMiB);
        VCpu &vcpu0 = vm->addVcpu(0);
        VCpu &vcpu1 = vm->addVcpu(1);
        vcpu0.setGuestOs(&guest_os0);
        vcpu1.setGuestOs(&guest_os1);

        // In-kernel test device for "I/O Kernel".
        vm->addKernelDevice(Vm::kKernelTestDevBase, 0x1000,
                            [](bool, Addr, std::uint64_t, unsigned) {
                                return std::uint64_t{0};
                            });
        // User-space (QEMU) emulation for everything else ("I/O User").
        vm->setUserMmioHandler([](ArmCpu &c, VCpu &, core::MmioExit &exit) {
            c.compute(800); // QEMU device model work
            exit.handled = true;
            exit.data = 0;
        });

        vcpu0.run(cpu, [&](ArmCpu &c) {
            guest_os0.boot(c);

            // Warm up: map the mailbox page and settle lazy state.
            c.memWrite(kFlagResponse, 0, 4);
            c.hvc(core::hvc::kTestHypercall);

            // --- Hypercall ---
            Cycles t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.hvc(core::hvc::kTestHypercall);
            results.hypercall = (c.now() - t0) / iters;

            // --- Trap (no world switch) ---
            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.hvc(core::hvc::kTrapOnly);
            results.trap = (c.now() - t0) / iters;

            // --- I/O Kernel ---
            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.memWrite(Vm::kKernelTestDevBase, i, 4);
            results.ioKernel = (c.now() - t0) / iters;

            // --- I/O User ---
            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.memWrite(ArmMachine::kUartBase, 'x', 4);
            results.ioUser = (c.now() - t0) / iters;

            // --- IPI round trip (needs the responder on VCPU1) ---
            while (!responder_ready)
                c.compute(200);
            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i) {
                // GICD_SGIR: target list = vcpu1, SGI 5.
                c.memWrite(ArmMachine::kGicdBase + arm::gicd::SGIR,
                           (1u << 17) | 5);
                while (c.memRead(kFlagResponse, 4) < i + 1)
                    c.compute(40);
            }
            results.ipi = (c.now() - t0) / iters;

            // --- EOI+ACK (measured inside the IRQ handler) ---
            guest_os0.totalAckEoiCycles = 0;
            guest_os0.irqCount = 0;
            for (unsigned i = 0; i < iters; ++i) {
                // Self-IPI delivers a virtual interrupt whose handler
                // times its ACK+EOI sequence; the SGIR trap itself forces
                // the world switch that programs the list register.
                c.memWrite(ArmMachine::kGicdBase + arm::gicd::SGIR,
                           (2u << 24) | 7);
                while (guest_os0.irqCount < i + 1)
                    c.compute(40);
            }
            results.eoiAck = guest_os0.irqCount
                                 ? guest_os0.totalAckEoiCycles /
                                       guest_os0.irqCount
                                 : 0;

            responder_done = true;
        });
    });

    machine.cpu(1).setEntry([&] {
        ArmCpu &cpu = machine.cpu(1);
        stack.hostk->boot(1);
        stack.kvm->initCpu(cpu);
        // Spin (stay schedulable) until cpu0 has created the VM.
        while (!vm || vm->vcpus().size() < 2)
            cpu.compute(500);
        VCpu &vcpu1 = *vm->vcpus()[1];

        vcpu1.run(cpu, [&](ArmCpu &c) {
            guest_os1.boot(c);
            responder_ready = true;
            // Actively spin inside the VM (paper: "both are actively
            // running inside the VM") responding to IPIs via the handler.
            while (!responder_done)
                c.compute(120);
        });
    });

    machine.run();
    return results;
}

} // namespace kvmarm::wl
