#include "workload/ring_driver.hh"

#include "arm/gic.hh"
#include "arm/machine.hh"
#include "sim/logging.hh"

namespace kvmarm::wl {

using arm::ArmCpu;
using arm::ArmMachine;
using vdev::vringdev::kHdrAvail;
using vdev::vringdev::kHdrBytes;
using vdev::vringdev::kHdrUsed;
using vdev::vringdev::kDescBytes;
using vdev::vringdev::kPayloadOff;

RingGuestOs::RingGuestOs(const vdev::VringDevice::Config &cfg)
    : cfg_(cfg),
      txRing_(ArmMachine::kRamBase + vdev::vringdev::kTxRingOff),
      rxRing_(ArmMachine::kRamBase + vdev::vringdev::kRxRingOff)
{
}

Addr
RingGuestOs::txDesc(unsigned slot) const
{
    return txRing_ + kHdrBytes + slot * kDescBytes;
}

Addr
RingGuestOs::txBuf(unsigned slot) const
{
    return txRing_ + kPayloadOff + slot * cfg_.bufBytes;
}

Addr
RingGuestOs::rxDesc(unsigned slot) const
{
    return rxRing_ + kHdrBytes + slot * kDescBytes;
}

void
RingGuestOs::irq(ArmCpu &cpu)
{
    std::uint32_t iar = static_cast<std::uint32_t>(
        cpu.memRead(ArmMachine::kGiccBase + arm::gicc::IAR, 4));
    IrqId irq_id = iar & 0x3FF;
    if (irq_id == arm::kSpuriousIrq)
        return;
    if (irq_id == cfg_.txSpi)
        ++txIrqs_;
    else if (irq_id == cfg_.rxSpi)
        ++rxIrqs_;
    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
}

void
RingGuestOs::init(ArmCpu &cpu)
{
    // GIC bring-up: distributor on, ring SPIs enabled and routed to this
    // CPU, CPU interface open at the lowest priority mask.
    cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);
    std::uint32_t bits = (1u << (cfg_.txSpi - 32)) | (1u << (cfg_.rxSpi - 32));
    cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER + 4, bits);
    cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ITARGETSR + cfg_.txSpi,
                 1, 1);
    cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ITARGETSR + cfg_.rxSpi,
                 1, 1);
    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
    cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
    cpu.setIrqMasked(false);

    // Ring headers: size, avail, used.
    for (Addr ring : {txRing_, rxRing_}) {
        cpu.memWrite(ring, cfg_.entries, 4);
        cpu.memWrite(ring + kHdrAvail, 0, 4);
        cpu.memWrite(ring + kHdrUsed, 0, 4);
    }
}

void
RingGuestOs::send(ArmCpu &cpu, std::uint32_t tag, std::uint32_t len)
{
    if (len < 4 || len > cfg_.bufBytes)
        fatal("RingGuestOs::send: payload length %u outside [4, %u]", len,
              cfg_.bufBytes);
    unsigned slot = static_cast<unsigned>(txPosted_ % cfg_.entries);
    Addr buf = txBuf(slot);

    // Deterministic payload: first word is the tag, the rest a
    // tag-derived byte pattern. Every store is a charged guest access.
    std::uint32_t off = 0;
    while (off + 8 <= len) {
        std::uint64_t word = 0;
        for (unsigned b = 0; b < 8; ++b) {
            std::uint32_t i = off + b;
            std::uint8_t byte =
                i < 4 ? static_cast<std::uint8_t>(tag >> (i * 8))
                      : static_cast<std::uint8_t>((tag ^ i) & 0xFF);
            word |= static_cast<std::uint64_t>(byte) << (b * 8);
        }
        cpu.memWrite(buf + off, word, 8);
        off += 8;
    }
    for (; off < len; ++off) {
        std::uint8_t byte =
            off < 4 ? static_cast<std::uint8_t>(tag >> (off * 8))
                    : static_cast<std::uint8_t>((tag ^ off) & 0xFF);
        cpu.memWrite(buf + off, byte, 1);
    }

    Addr desc = txDesc(slot);
    cpu.memWrite(desc, buf, 8);
    cpu.memWrite(desc + 8, len, 4);
    cpu.memWrite(desc + 12, 0, 4);

    ++txPosted_;
    cpu.memWrite(txRing_ + kHdrAvail, txPosted_ & 0xFFFFFFFF, 4);
    // The doorbell: an MMIO store that traps to Hyp, walks Stage-2 and
    // exits to user-space emulation — the paper's full I/O path.
    cpu.memWrite(cfg_.mmioBase + vdev::vringdev::DOORBELL,
                 txPosted_ & 0xFFFFFFFF, 4);
}

std::uint64_t
RingGuestOs::waitRx(ArmCpu &cpu, std::uint64_t target)
{
    // The RX used index in the ring header is written by the device
    // before it injects the RX SPI, and WFI returns immediately when an
    // interrupt is already pending, so this loop has no lost-wakeup
    // window.
    std::uint64_t used;
    while ((used = cpu.memRead(rxRing_ + kHdrUsed, 4)) < target)
        cpu.wfi();
    return used;
}

std::uint32_t
RingGuestOs::consume(ArmCpu &cpu)
{
    std::uint64_t used = cpu.memRead(rxRing_ + kHdrUsed, 4);
    if (rxConsumed_ >= used)
        fatal("RingGuestOs::consume: nothing pending (consumed %llu, "
              "delivered %llu)",
              static_cast<unsigned long long>(rxConsumed_),
              static_cast<unsigned long long>(used));
    unsigned slot = static_cast<unsigned>(rxConsumed_ % cfg_.entries);
    Addr desc = rxDesc(slot);
    Addr buf = cpu.memRead(desc, 8);
    std::uint32_t len = static_cast<std::uint32_t>(cpu.memRead(desc + 8, 4));
    if (len < 4 || len > cfg_.bufBytes)
        fatal("RingGuestOs::consume: RX descriptor %u has length %u", slot,
              len);

    std::uint32_t tag = 0;
    std::uint32_t off = 0;
    while (off + 8 <= len) {
        std::uint64_t word = cpu.memRead(buf + off, 8);
        for (unsigned b = 0; b < 8; ++b) {
            std::uint8_t byte = (word >> (b * 8)) & 0xFF;
            if (off + b < 4)
                tag |= static_cast<std::uint32_t>(byte) << ((off + b) * 8);
            checksum_ ^= byte;
            checksum_ *= 0x100000001b3ull;
        }
        off += 8;
    }
    for (; off < len; ++off) {
        std::uint8_t byte =
            static_cast<std::uint8_t>(cpu.memRead(buf + off, 1));
        if (off < 4)
            tag |= static_cast<std::uint32_t>(byte) << (off * 8);
        checksum_ ^= byte;
        checksum_ *= 0x100000001b3ull;
    }

    ++rxConsumed_;
    cpu.memWrite(cfg_.mmioBase + vdev::vringdev::RX_ACK,
                 rxConsumed_ & 0xFFFFFFFF, 4);
    return tag;
}

void
RingGuestOs::pingPong(ArmCpu &cpu, unsigned rounds, bool initiator,
                      std::uint32_t len)
{
    for (unsigned r = 0; r < rounds; ++r) {
        if (initiator) {
            send(cpu, r, len);
            waitRx(cpu, rxConsumed_ + 1);
            std::uint32_t tag = consume(cpu);
            if (tag != r)
                fatal("RingGuestOs::pingPong: round %u echoed tag %u", r,
                      tag);
        } else {
            waitRx(cpu, rxConsumed_ + 1);
            std::uint32_t tag = consume(cpu);
            send(cpu, tag, len);
        }
    }
}

} // namespace kvmarm::wl
