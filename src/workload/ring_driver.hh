/**
 * @file
 * Guest-side driver for the shared-memory inter-VM ring (DESIGN.md
 * §4.10). Mirrors the register map and ring layout published by
 * vdev::VringDevice: the guest fills a TX descriptor + payload buffer in
 * its own RAM, bumps the avail index and writes the doorbell register —
 * an MMIO trap that walks the full trap → Stage-2 → user-space-emulation
 * path. Received messages show up in the RX ring with an injected SPI;
 * the driver consumes them under a conventional IAR/EOIR interrupt
 * handler and acknowledges through the RX_ACK register.
 *
 * Everything here runs *inside* the guest: every access is a trapped or
 * virtualized guest operation charged to the vCPU, so the driver's
 * behaviour (and its payload checksum) is a pure function of simulated
 * execution.
 */

#ifndef KVMARM_WORKLOAD_RING_DRIVER_HH
#define KVMARM_WORKLOAD_RING_DRIVER_HH

#include <cstdint>

#include "arm/cpu.hh"
#include "arm/vectors.hh"
#include "vdev/vring.hh"

namespace kvmarm::wl {

/** Minimal guest OS that owns one vring endpoint. */
class RingGuestOs : public arm::OsVectors
{
  public:
    explicit RingGuestOs(
        const vdev::VringDevice::Config &cfg = vdev::VringDevice::Config{});

    // arm::OsVectors
    void irq(arm::ArmCpu &cpu) override;
    void svc(arm::ArmCpu &, std::uint32_t) override {}
    bool pageFault(arm::ArmCpu &, Addr, bool, bool) override
    {
        return false;
    }
    const char *name() const override { return "ring-guest"; }

    /** Guest boot: GIC distributor + CPU interface bring-up, enable the
     *  ring SPIs, zero the ring headers. Call once before send/wait. */
    void init(arm::ArmCpu &cpu);

    /**
     * Post one message whose payload is a deterministic pattern derived
     * from @p tag: fills the next TX descriptor and payload buffer, bumps
     * the avail index in the ring header, and rings the doorbell (MMIO
     * trap). The device consumes descriptors synchronously at the
     * doorbell, so the TX ring never backs up.
     */
    void send(arm::ArmCpu &cpu, std::uint32_t tag, std::uint32_t len);

    /** Block (WFI) until at least @p target messages have been delivered
     *  since init. Returns the delivered count (≥ target). */
    std::uint64_t waitRx(arm::ArmCpu &cpu, std::uint64_t target);

    /**
     * Consume the oldest unacknowledged RX message: read the descriptor
     * and payload out of the RX ring, fold the bytes into the guest-side
     * checksum, and write the RX_ACK register. Fatals when nothing is
     * pending. @return the message's tag (first payload word).
     */
    std::uint32_t consume(arm::ArmCpu &cpu);

    /** Messages sent / consumed by this guest so far. */
    std::uint64_t sent() const { return txPosted_; }
    std::uint64_t consumed() const { return rxConsumed_; }
    /** IRQs taken, by kind (TX-complete / RX-delivery). */
    std::uint64_t txIrqs() const { return txIrqs_; }
    std::uint64_t rxIrqs() const { return rxIrqs_; }
    /** FNV-1a over every payload byte this guest consumed, in order. */
    std::uint64_t checksum() const { return checksum_; }

    /**
     * Ping-pong body for one guest of a connected pair: the initiator
     * sends @p rounds tagged messages, waiting for each echo; the
     * responder echoes each received message back. Returns after
     * @p rounds round trips.
     */
    void pingPong(arm::ArmCpu &cpu, unsigned rounds, bool initiator,
                  std::uint32_t len);

  private:
    Addr txDesc(unsigned slot) const;
    Addr txBuf(unsigned slot) const;
    Addr rxDesc(unsigned slot) const;

    vdev::VringDevice::Config cfg_;
    Addr txRing_;
    Addr rxRing_;
    std::uint64_t txPosted_ = 0;   //!< messages posted to the TX ring
    std::uint64_t rxConsumed_ = 0; //!< RX messages consumed + acked
    std::uint64_t txIrqs_ = 0;
    std::uint64_t rxIrqs_ = 0;
    std::uint64_t checksum_ = 0x811c9dc5;
};

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_RING_DRIVER_HH
