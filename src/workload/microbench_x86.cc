#include "workload/microbench_x86.hh"

#include <memory>

#include "kvmx86/kvm_x86.hh"
#include "sim/logging.hh"

namespace kvmarm::wl {

using kvmx86::KvmX86;
using kvmx86::VCpuX86;
using kvmx86::VmX86;
using kvmx86::X86Host;
using x86::X86Cpu;
using x86::X86Machine;

namespace {

constexpr Addr kFlagResponse = 0x1000;
constexpr std::uint8_t kIpiVector = 0xD1;

/** Minimal guest kernel: respond to IPIs and EOI (x86 has no explicit
 *  ACK — the paper's EOI+ACK row measures only EOI here). */
class MicroGuestX86 : public x86::X86OsVectors
{
  public:
    void
    interrupt(X86Cpu &cpu, std::uint8_t vector) override
    {
        Cycles t0 = cpu.now();
        cpu.memWrite(x86::kApicBase + x86::apic::EOI, 0, 4);
        lastEoiCycles = cpu.now() - t0;
        totalEoiCycles += lastEoiCycles;
        ++irqCount;
        if (vector == kIpiVector) {
            ++ipisReceived;
            cpu.memWrite(kFlagResponse, ipisReceived, 4);
        }
    }

    void syscall(X86Cpu &, std::uint32_t) override {}
    const char *name() const override { return "micro-guest-x86"; }

    std::uint64_t ipisReceived = 0;
    std::uint64_t irqCount = 0;
    Cycles lastEoiCycles = 0;
    Cycles totalEoiCycles = 0;
};

} // namespace

MicroResults
runX86Microbench(const X86MicroSetup &setup)
{
    X86Machine::Config mc;
    mc.numCpus = 2;
    mc.ramSize = 256 * kMiB;
    mc.platform = setup.platform;
    X86Machine machine(mc);
    X86Host hostk(machine);
    KvmX86 kvm(hostk);

    MicroResults results;
    const unsigned iters = setup.iterations;

    std::unique_ptr<VmX86> vm;
    MicroGuestX86 guest0;
    MicroGuestX86 guest1;
    bool responder_ready = false;
    bool responder_done = false;

    machine.cpu(0).setEntry([&] {
        X86Cpu &cpu = machine.cpu(0);
        hostk.boot(0);
        kvm.initCpu(cpu);
        vm = kvm.createVm(128 * kMiB);
        VCpuX86 &vcpu0 = vm->addVcpu(0);
        VCpuX86 &vcpu1 = vm->addVcpu(1);
        vcpu0.setGuestOs(&guest0);
        vcpu1.setGuestOs(&guest1);

        vm->addKernelDevice(VmX86::kKernelTestDevBase, 0x1000,
                            [](bool, Addr, std::uint64_t, unsigned) {
                                return std::uint64_t{0};
                            });
        vm->setUserMmioHandler(
            [](X86Cpu &c, VCpuX86 &, kvmx86::X86MmioExit &exit) {
                c.compute(800); // QEMU device model work
                exit.handled = true;
                exit.data = 0;
            });

        vcpu0.run(cpu, [&](X86Cpu &c) {
            c.setIf(true);
            c.memWrite(kFlagResponse, 0, 4);
            c.vmcall(kvmx86::vmcallnr::kTestHypercall);

            Cycles t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.vmcall(kvmx86::vmcallnr::kTestHypercall);
            results.hypercall = (c.now() - t0) / iters;

            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.vmcall(kvmx86::vmcallnr::kTrapOnly);
            results.trap = (c.now() - t0) / iters;

            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.memWrite(VmX86::kKernelTestDevBase, i, 4);
            results.ioKernel = (c.now() - t0) / iters;

            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i)
                c.memWrite(X86Machine::kUartMmioBase, 'x', 4);
            results.ioUser = (c.now() - t0) / iters;

            while (!responder_ready)
                c.compute(200);
            t0 = c.now();
            for (unsigned i = 0; i < iters; ++i) {
                // ICR_HI selects VCPU1, ICR_LO sends — both trap and are
                // emulated by the in-kernel APIC.
                c.memWrite(x86::kApicBase + x86::apic::ICR_HI,
                           std::uint64_t(1) << 56, 4);
                c.memWrite(x86::kApicBase + x86::apic::ICR_LO, kIpiVector,
                           4);
                while (c.memRead(kFlagResponse, 4) < i + 1)
                    c.compute(40);
            }
            results.ipi = (c.now() - t0) / iters;

            guest0.totalEoiCycles = 0;
            guest0.irqCount = 0;
            for (unsigned i = 0; i < iters; ++i) {
                // Self-IPI (shorthand 01) delivers a vector whose handler
                // times its EOI.
                c.memWrite(x86::kApicBase + x86::apic::ICR_LO,
                           (1u << 18) | 0xC0, 4);
                while (guest0.irqCount < i + 1)
                    c.compute(40);
            }
            results.eoiAck = guest0.irqCount
                                 ? guest0.totalEoiCycles / guest0.irqCount
                                 : 0;

            responder_done = true;
        });
    });

    machine.cpu(1).setEntry([&] {
        X86Cpu &cpu = machine.cpu(1);
        hostk.boot(1);
        kvm.initCpu(cpu);
        while (!vm || vm->vcpus().size() < 2)
            cpu.compute(500);
        VCpuX86 &vcpu1 = *vm->vcpus()[1];
        vcpu1.run(cpu, [&](X86Cpu &c) {
            c.setIf(true);
            responder_ready = true;
            while (!responder_done)
                c.compute(120);
        });
    });

    machine.run();
    return results;
}

} // namespace kvmarm::wl
