/**
 * @file
 * The Table 3 micro-benchmarks (paper §5.1: "custom small guest OSes"):
 * Hypercall, Trap, I/O Kernel, I/O User, IPI, and EOI+ACK, measured in
 * cycles on the modelled ARM machine under KVM/ARM, with and without
 * VGIC/vtimers support.
 */

#ifndef KVMARM_WORKLOAD_MICROBENCH_HH
#define KVMARM_WORKLOAD_MICROBENCH_HH

#include "sim/types.hh"

namespace kvmarm::wl {

/** One column of Table 3. */
struct MicroResults
{
    Cycles hypercall = 0; //!< two world switches, no work in the host
    Cycles trap = 0;      //!< hardware mode switch VM->Hyp->VM only
    Cycles ioKernel = 0;  //!< MMIO to a device emulated in the kernel
    Cycles ioUser = 0;    //!< MMIO to a device emulated in user space
    Cycles ipi = 0;       //!< VCPU0 SGI -> VCPU1 responds, round trip
    Cycles eoiAck = 0;    //!< guest interrupt acknowledge + completion
};

/** Configuration of one measured column. */
struct ArmMicroSetup
{
    bool useVgic = true;
    bool useVtimers = true;
    unsigned iterations = 64;
};

/** Run the ARM micro-benchmarks; builds a fresh 2-CPU machine + host +
 *  KVM/ARM stack and a 2-VCPU guest. */
MicroResults runArmMicrobench(const ArmMicroSetup &setup);

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_MICROBENCH_HH
