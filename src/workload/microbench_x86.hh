/**
 * @file
 * The Table 3 micro-benchmarks on the x86 comparison machines (laptop and
 * server calibrations), mirroring workload/microbench.hh.
 */

#ifndef KVMARM_WORKLOAD_MICROBENCH_X86_HH
#define KVMARM_WORKLOAD_MICROBENCH_X86_HH

#include "workload/microbench.hh"
#include "x86/machine.hh"

namespace kvmarm::wl {

struct X86MicroSetup
{
    x86::X86Platform platform = x86::X86Platform::Laptop;
    unsigned iterations = 64;
};

/** Run the x86 micro-benchmarks under the KVM x86-style hypervisor. */
MicroResults runX86Microbench(const X86MicroSetup &setup);

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_MICROBENCH_X86_HH
