/**
 * @file
 * Experiment harness: assembles the four measurement stacks of the paper
 * — native and virtualized execution on the ARM and x86 machines — boots
 * the miniature Linux on 1 or 2 CPUs, runs a workload, and reports elapsed
 * cycles, utilization and wall-clock seconds for the normalized
 * performance and energy figures.
 */

#ifndef KVMARM_WORKLOAD_HARNESS_HH
#define KVMARM_WORKLOAD_HARNESS_HH

#include <functional>

#include "core/types.hh"
#include "workload/sysport.hh"
#include "x86/machine.hh"

namespace kvmarm::wl {

/** The four platform configurations of the evaluation. */
enum class Platform
{
    ArmVgic,    //!< KVM/ARM with VGIC/vtimers
    ArmNoVgic,  //!< KVM/ARM without VGIC/vtimers
    X86Laptop,  //!< KVM x86, laptop calibration
    X86Server,  //!< KVM x86, server calibration
};

const char *platformName(Platform p);

/** Outcome of one measured run. */
struct RunMetrics
{
    Cycles elapsed = 0;   //!< workload duration on CPU0
    double cpuUtil = 0;   //!< busy fraction across CPUs
    double seconds = 0;   //!< elapsed converted at the platform clock
};

/** Workload body on CPU0's port: runs the workload (including any
 *  unmeasured warm-up) and returns the measured elapsed cycles. */
using WorkFn = std::function<Cycles(SysPort &)>;
/** Workload body on CPU1's port (SMP runs only). */
using SideFn = std::function<void(SysPort &)>;

/** Devices the workload may kick (slots are assigned in this order). */
struct DeviceSetup
{
    bool net = false;     //!< slot 0: 100 Mb Ethernet
    bool disk = false;    //!< slot 1: SSD
    bool remote = false;  //!< slot 2: LAN server (RTT-dominated)
};

/** One experiment: same workload run native and virtualized. */
struct Experiment
{
    Platform platform = Platform::ArmVgic;
    unsigned numCpus = 1;
    DeviceSetup devices;
    WorkFn work;   //!< required
    SideFn side;   //!< required when numCpus == 2
    /** Reset shared workload state; invoked before each run. */
    std::function<void()> prepare;
};

/** Run natively (no hypervisor). */
RunMetrics runNative(const Experiment &exp);

/** Run inside a VM under the platform's hypervisor. */
RunMetrics runVirt(const Experiment &exp);

/** Convenience: virt/native overhead of the same experiment. */
double overhead(const Experiment &exp);

} // namespace kvmarm::wl

#endif // KVMARM_WORKLOAD_HARNESS_HH
