#include "workload/apps.hh"

#include <memory>

#include "power/energy.hh"
#include "sim/logging.hh"
#include "workload/linux_model.hh"

namespace kvmarm::wl {

namespace {

constexpr unsigned kNetSlot = 0;
constexpr unsigned kDiskSlot = 1;
constexpr unsigned kRemoteSlot = 2;

/** Cross-CPU pipeline state of one app run. */
struct AppShared
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    bool done = false;
};

/** NOHZ-style wait: re-arm the tick and idle until @p pred holds. */
void
waitFor(SysPort &port, const LinuxCosts &costs,
        const std::function<bool()> &pred)
{
    while (!pred()) {
        (void)port.schedClock();
        port.timerProgram(costs.tickInterval);
        if (!pred()) {
            port.idle();
            port.timerProgram(costs.tickInterval); // idle-exit re-arm
        }
    }
}

/** Wait until device @p slot has delivered @p count completions to this
 *  CPU. */
void
waitDev(SysPort &port, const LinuxCosts &costs, unsigned slot,
        std::uint64_t count)
{
    waitFor(port, costs,
            [&] { return port.devCompletions(slot) >= count; });
}

/** Hand one work item to the worker CPU and wait for it (SMP), or run it
 *  inline through a context switch (UP). */
void
dispatch(SysPort &port, AppShared &sh, bool smp, const LinuxCosts &costs,
         LmbenchOps &ops, const std::function<void(SysPort &)> &item)
{
    if (!smp) {
        ops.switchTo();
        item(port);
        ops.switchTo();
        return;
    }
    ++sh.submitted;
    port.kernelCompute(costs.wakeup);
    port.sendRescheduleIpi(1);
    std::uint64_t want = sh.submitted;
    waitFor(port, costs, [&] { return sh.completed >= want; });
}

/** Queue a work item without waiting (pipelined server); the wakeup IPI
 *  is suppressed when the worker is already running through its backlog
 *  (try_to_wake_up only interrupts idle CPUs). */
void
dispatchAsync(SysPort &port, AppShared &sh, bool smp,
              const LinuxCosts &costs, LmbenchOps &ops,
              const std::function<void(SysPort &)> &item)
{
    if (!smp) {
        ops.switchTo();
        item(port);
        ops.switchTo();
        return;
    }
    ++sh.submitted;
    port.kernelCompute(costs.wakeup);
    if (sh.submitted - sh.completed <= 1)
        port.sendRescheduleIpi(1);
}

/** Worker (CPU1) loop: consume submitted items until done. */
void
workerLoop(SysPort &port, AppShared &sh, const LinuxCosts &costs,
           const std::function<void(SysPort &)> &item)
{
    std::uint64_t handled = 0;
    while (true) {
        waitFor(port, costs,
                [&] { return sh.done || sh.submitted > handled; });
        if (sh.submitted <= handled && sh.done)
            break;
        item(port);
        ++handled;
        sh.completed = handled;
        port.kernelCompute(costs.wakeup);
        // Notify the frontend only when the backlog drains (it only
        // sleeps when everything it queued is outstanding).
        if (sh.completed >= sh.submitted)
            port.sendRescheduleIpi(0);
    }
}

/** Per-app transaction counts (warm-up + measured). */
struct AppCounts
{
    unsigned warm;
    unsigned measured;
};

AppCounts
countsFor(App app)
{
    switch (app) {
      case App::Apache: return {8, 40};
      case App::Mysql: return {6, 30};
      case App::Memcached: return {20, 100};
      case App::KernelCompile: return {2, 8};
      case App::Untar: return {8, 40};
      case App::Curl1K: return {4, 20};
      case App::Curl1G: return {8, 40};
      case App::Hackbench: return {3, 15};
    }
    return {4, 20};
}

/** The worker-side body of one transaction. */
std::function<void(SysPort &)>
workerItem(App app)
{
    LinuxCosts costs;
    switch (app) {
      case App::Apache:
        return [costs](SysPort &p) {
            // Apache worker: parse the request, stat + read the GCC
            // manual page from the page cache, run the output filters and
            // send the response (~0.15 ms of application work per request
            // on a Cortex-A15, matching ~850 req/s across two cores).
            for (int s = 0; s < 10; ++s) {
                p.syscallEdge();
                p.kernelCompute(1800);
            }
            p.userCompute(150000);
            p.kernelCompute(3 * costs.tcpWork); // TCP segmentation
            // Two TX doorbells per response (two TSO segments); virtio
            // notification suppression coalesces the rest.
            p.devKick(kNetSlot, 3000);
            p.devKick(kNetSlot, 3000);
        };
      case App::Mysql:
        return [costs](SysPort &p) {
            // OLTP transaction: parse, optimize, execute over the buffer
            // pool, write the redo log, return the result set.
            for (int s = 0; s < 18; ++s) {
                p.syscallEdge();
                p.kernelCompute(1500);
            }
            p.userCompute(520000);
            p.fpCompute(2500); // aggregate arithmetic
            p.devKick(kDiskSlot, 4096); // redo log write
            p.kernelCompute(costs.tcpWork);
            p.devKick(kNetSlot, 800); // result TX
        };
      case App::Memcached:
        return [costs, pendingTx = 0u](SysPort &p) mutable {
            p.syscallEdge();
            p.kernelCompute(costs.tcpWork); // UDP/TCP rx path
            p.userCompute(42000); // hash + LRU + memcpy
            p.kernelCompute(costs.tcpWork);
            // TX doorbell coalescing (virtio notification suppression):
            // one kick per four responses under memslap load.
            if (++pendingTx == 4) {
                p.devKick(kNetSlot, 4 * 400);
                pendingTx = 0;
            }
        };
      case App::KernelCompile:
        return [](SysPort &p) {
            // One compilation unit: fork+exec cc1, fault in its image,
            // then burn compute.
            LmbenchOps ops(p);
            ops.forkOp(false);
            ops.execOp(false);
            for (int f = 0; f < 24; ++f)
                p.demandFault();
            p.userCompute(2400000);
            p.fpCompute(1500);
        };
      case App::Hackbench:
        return [costs](SysPort &p) {
            p.syscallEdge();
            p.kernelCompute(costs.sockWork);
        };
      default:
        return [](SysPort &) {};
    }
}

/** Frontend (CPU0) body: runs @p txns transactions; returns at the end. */
void
frontend(App app, SysPort &port, AppShared &sh, bool smp, unsigned txns)
{
    LinuxCosts costs;
    LmbenchOps ops(port, costs);
    auto item = workerItem(app);

    // Completion counters on CPU0 at entry (devices route IRQs here).
    std::uint64_t net = port.devCompletions(kNetSlot);
    std::uint64_t disk = port.devCompletions(kDiskSlot);
    std::uint64_t remote = port.devCompletions(kRemoteSlot);

    for (unsigned i = 0; i < txns; ++i) {
        switch (app) {
          case App::Apache: {
            // ~850 req/s is far below NAPI coalescing rates: every
            // request arrives with its own RX interrupt; the 100-way
            // ApacheBench keeps a backlog so worker dispatch pipelines.
            constexpr unsigned kBatch = 4;
            for (unsigned b = 0; b < kBatch; ++b) {
                port.devKick(kNetSlot, 300);
                waitDev(port, costs, kNetSlot, ++net);
                port.kernelCompute(2800); // softirq + accept
                (void)port.schedClock();
                (void)port.schedClock();
                dispatchAsync(port, sh, smp, costs, ops, item);
            }
            if (smp) {
                waitFor(port, costs,
                        [&] { return sh.completed >= sh.submitted; });
            }
            net += 2 * kBatch; // two TX segments per request
            waitDev(port, costs, kNetSlot, net);
            break;
          }

          case App::Mysql: {
            constexpr unsigned kBatch = 4;
            for (unsigned b = 0; b < kBatch; ++b) {
                port.devKick(kNetSlot, 150);
                waitDev(port, costs, kNetSlot, ++net);
                port.kernelCompute(2000);
                (void)port.schedClock();
                dispatchAsync(port, sh, smp, costs, ops, item);
            }
            if (smp) {
                waitFor(port, costs,
                        [&] { return sh.completed >= sh.submitted; });
            }
            disk += kBatch; // group-committed redo log
            waitDev(port, costs, kDiskSlot, disk);
            net += kBatch;
            waitDev(port, costs, kNetSlot, net);
            break;
          }

          case App::Memcached: {
            // memslap's rate is high enough that pairs of requests share
            // an RX interrupt, but not more.
            constexpr unsigned kBatch = 8;
            for (unsigned b = 0; b < kBatch; b += 2) {
                port.devKick(kNetSlot, 200);
                waitDev(port, costs, kNetSlot, ++net);
                port.kernelCompute(900);
                (void)port.schedClock();
                dispatchAsync(port, sh, smp, costs, ops, item);
                dispatchAsync(port, sh, smp, costs, ops, item);
            }
            if (smp) {
                waitFor(port, costs,
                        [&] { return sh.completed >= sh.submitted; });
            }
            net += kBatch / 4; // coalesced TX doorbells
            waitDev(port, costs, kNetSlot, net);
            break;
          }

          case App::KernelCompile:
            if (smp) {
                // Make -j2: one unit on the worker, one locally.
                ++sh.submitted;
                port.kernelCompute(costs.wakeup);
                port.sendRescheduleIpi(1);
                item(port);
                waitFor(port, costs,
                        [&] { return sh.completed >= sh.submitted; });
            } else {
                item(port);
                item(port);
            }
            if (i % 4 == 3) {
                port.devKick(kDiskSlot, 65536); // source/object I/O
                waitDev(port, costs, kDiskSlot, ++disk);
            }
            break;

          case App::Untar:
            port.devKick(kDiskSlot, 65536); // read a compressed block
            waitDev(port, costs, kDiskSlot, ++disk);
            for (int s = 0; s < 20; ++s) {
                port.syscallEdge();
                port.kernelCompute(300);
            }
            port.userCompute(160000); // bunzip2 of the block
            port.devKick(kDiskSlot, 65536); // write extracted file
            waitDev(port, costs, kDiskSlot, ++disk); // writeback
            break;

          case App::Curl1K:
            port.devKick(kRemoteSlot, 100); // connect
            waitDev(port, costs, kRemoteSlot, ++remote);
            port.devKick(kRemoteSlot, 1124); // request + 1 KB response
            waitDev(port, costs, kRemoteSlot, ++remote);
            for (int s = 0; s < 6; ++s)
                port.syscallEdge();
            port.userCompute(2000);
            break;

          case App::Curl1G:
            // One 64 KiB chunk of the stream; wire bound.
            port.devKick(kNetSlot, 65536);
            waitDev(port, costs, kNetSlot, ++net);
            port.kernelCompute(2200); // softirq + checksum
            port.userCompute(5000);
            if (i % 8 == 7)
                port.syscallEdge(); // write to /dev/null
            break;

          case App::Hackbench: {
            // One loop: a burst of socket messages across the groups.
            for (int m = 0; m < 30; ++m) {
                port.kernelCompute(costs.sockWork);
                port.kernelCompute(costs.wakeup);
                if (smp && (m % 4 == 0)) {
                    ++sh.submitted;
                    if (sh.submitted - sh.completed <= 1)
                        port.sendRescheduleIpi(1);
                } else {
                    ops.switchTo();
                    port.syscallEdge();
                }
            }
            if (smp) {
                waitFor(port, costs,
                        [&] { return sh.completed >= sh.submitted; });
            }
            break;
          }
        }
    }
}

} // namespace

const char *
appName(App app)
{
    switch (app) {
      case App::Apache: return "apache";
      case App::Mysql: return "mysql";
      case App::Memcached: return "memcached";
      case App::KernelCompile: return "kernel compile";
      case App::Untar: return "untar";
      case App::Curl1K: return "curl 1K";
      case App::Curl1G: return "curl 1G";
      case App::Hackbench: return "hackbench";
    }
    return "?";
}

std::vector<App>
allApps()
{
    return {App::Apache,  App::Mysql,  App::Memcached,
            App::KernelCompile, App::Untar, App::Curl1K,
            App::Curl1G,  App::Hackbench};
}

bool
isCpuBound(App app)
{
    switch (app) {
      case App::Memcached:
      case App::Untar:
      case App::Curl1K:
      case App::Curl1G:
        return false;
      default:
        return true;
    }
}

Experiment
makeAppExperiment(App app, Platform platform, bool smp)
{
    Experiment exp;
    exp.platform = platform;
    exp.numCpus = smp ? 2 : 1;
    exp.devices.net = true;
    exp.devices.disk = true;
    exp.devices.remote = true;

    auto shared = std::make_shared<AppShared>();
    AppCounts counts = countsFor(app);

    exp.prepare = [shared] { *shared = AppShared{}; };

    exp.work = [app, shared, smp, counts](SysPort &port) -> Cycles {
        frontend(app, port, *shared, smp, counts.warm);
        Cycles t0 = port.now();
        frontend(app, port, *shared, smp, counts.measured);
        Cycles elapsed = port.now() - t0;
        shared->done = true;
        if (smp)
            port.sendRescheduleIpi(1);
        return elapsed;
    };
    if (smp) {
        exp.side = [app, shared](SysPort &port) {
            LinuxCosts costs;
            workerLoop(port, *shared, costs, workerItem(app));
        };
    }
    return exp;
}

AppOutcome
runApp(App app, Platform platform, bool smp)
{
    Experiment exp = makeAppExperiment(app, platform, smp);
    AppOutcome out;
    out.native = runNative(exp);
    out.virt = runVirt(exp);
    out.overhead = out.native.elapsed
                       ? double(out.virt.elapsed) / double(out.native.elapsed)
                       : 0;
    bool arm = platform == Platform::ArmVgic ||
               platform == Platform::ArmNoVgic;
    power::PowerProfile profile =
        arm ? power::arndaleProfile() : power::x86LaptopProfile();
    double en = power::energyJoules(profile, out.native.seconds,
                                    out.native.cpuUtil);
    double ev =
        power::energyJoules(profile, out.virt.seconds, out.virt.cpuUtil);
    out.energyOverhead = en > 0 ? ev / en : 0;
    return out;
}

} // namespace kvmarm::wl
