#include "workload/x86_port.hh"

#include "sim/logging.hh"
#include "vdev/model_dev.hh"
#include "vdev/qemu.hh"

namespace kvmarm::wl {

using x86::X86Cpu;
using x86::X86Machine;

namespace {
constexpr Cycles kDemandFaultKernelWork = 800;
constexpr Cycles kSignalWork = 380;
constexpr Cycles kPageZeroWork = 300;
/** Page-table write work per mapped page (x86 paging is not walked in
 *  detail by this model; see DESIGN.md's substitution notes). */
constexpr Cycles kPtWritesPerPage = 130;
} // namespace

X86LinuxPort::X86LinuxPort(X86Cpu &cpu, X86OsImage &image, unsigned index)
    : cpu_(cpu), image_(image), index_(index)
{
}

Addr
X86LinuxPort::allocPage()
{
    if (image_.nextFreePage <= image_.ramSize / 2)
        fatal("mini-linux-x86: out of page frames");
    image_.nextFreePage -= kPageSize;
    kernelCompute(kPageZeroWork);
    return image_.nextFreePage;
}

void
X86LinuxPort::boot()
{
    if (index_ == 0) {
        image_.nextFreePage = image_.ramSize;
        image_.nextUserPage = 16 * kMiB;
        cpu_.regs()[x86::Sysreg::CR3] = 0x1000;
        image_.booted = true;
    } else {
        while (!image_.booted)
            cpu_.compute(300);
    }
    cpu_.setOsVectors(this);
    cpu_.setIf(true);
}

void
X86LinuxPort::userCompute(Cycles c)
{
    bool saved = cpu_.userMode();
    cpu_.setUserMode(true);
    cpu_.compute(c);
    cpu_.setUserMode(saved);
}

void
X86LinuxPort::timerProgram(Cycles delta)
{
    // clockevents on x86: rdtsc for "now" (free), then reprogram the
    // TSC-deadline timer — a WRMSR that traps to root mode in a VM
    // (paper §2: "executing similar timer functionality by a guest OS on
    // x86 will incur additional traps to root mode"; ARM's virtual timer
    // needs none).
    std::uint64_t now = cpu_.rdtsc();
    cpu_.wrmsrTscDeadline(now + delta);
}

void
X86LinuxPort::syscallEdge()
{
    bool saved = cpu_.userMode();
    cpu_.setUserMode(true);
    cpu_.syscall(0);
    cpu_.setUserMode(saved);
}

void
X86LinuxPort::contextSwitchMmu()
{
    // switch_mm: CR3 write. Does not exit with EPT, but costs a TLB
    // flush (no PCID on this generation's common configuration).
    cpu_.writeCr3(0x1000);
}

void
X86LinuxPort::sendRescheduleIpi(unsigned target_idx)
{
    cpu_.memWrite(x86::kApicBase + x86::apic::ICR_HI,
                  std::uint64_t(target_idx) << 56, 4);
    cpu_.memWrite(x86::kApicBase + x86::apic::ICR_LO, kRescheduleVector, 4);
}

void
X86LinuxPort::idle()
{
    cpu_.hlt();
    cpu_.compute(20); // idle-exit bookkeeping + interrupt delivery point
}

void
X86LinuxPort::demandFault()
{
    // Guest-side fault handling is charged; the backing page comes from
    // the page cache in steady state (warm EPT), cold only while the
    // pool fills.
    Addr page;
    if (faultPool_.size() < kPoolPages) {
        page = image_.nextUserPage;
        image_.nextUserPage += kPageSize;
        (void)allocPage();
        faultPool_.push_back(page);
    } else {
        page = faultPool_[faultPoolIdx_++ % kPoolPages];
    }
    userCompute(30);
    kernelCompute(kDemandFaultKernelWork + kPtWritesPerPage);
    cpu_.memWrite(page, 1, 8);
}

void
X86LinuxPort::protFault()
{
    // mprotect fault + SIGSEGV + re-protect; modelled at cost level (the
    // x86 machine does not walk guest page tables in this repo).
    userCompute(30);
    kernelCompute(kSignalWork + 2 * kPtWritesPerPage);
    cpu_.writeCr3(0x1000); // TLB shootdown of the page
}

void
X86LinuxPort::ptSetup(unsigned pages)
{
    for (unsigned i = 0; i < pages; ++i) {
        Addr page;
        if (slabPool_.size() < kSlabPages) {
            page = image_.nextUserPage;
            image_.nextUserPage += kPageSize;
            (void)allocPage();
            slabPool_.push_back(page);
        } else {
            page = slabPool_[slabIdx_++ % kSlabPages];
            kernelCompute(120); // slab alloc path
        }
        kernelCompute(kPtWritesPerPage);
        cpu_.memWrite(page, 0, 8);
    }
}

void
X86LinuxPort::tlbShootdown(bool smp)
{
    cpu_.writeCr3(0x1000); // local flush
    if (!smp || !peer)
        return;
    // smp_call_function: interrupt the other core and spin until its
    // handler acknowledges — in a VM every leg of this traps.
    std::uint64_t before = peer->shootdownAcks;
    cpu_.memWrite(x86::kApicBase + x86::apic::ICR_HI,
                  std::uint64_t(peer->cpuIndex()) << 56, 4);
    cpu_.memWrite(x86::kApicBase + x86::apic::ICR_LO, kShootdownVector, 4);
    while (peer->shootdownAcks == before)
        cpu_.compute(120);
}

void
X86LinuxPort::devKick(unsigned slot, Addr nbytes)
{
    cpu_.memWrite(X86Machine::kVirtioBase + slot * 0x1000 +
                      vdev::modeldev::KICK,
                  nbytes);
}

void
X86LinuxPort::interrupt(X86Cpu &cpu, std::uint8_t vector)
{
    cpu.compute(140);
    if (vector == kRescheduleVector) {
        ++ipis_;
        cpu.compute(160);
    } else if (vector == kShootdownVector) {
        cpu.writeCr3(0x1000); // flush and acknowledge
        ++shootdownAcks;
    } else if (vector == kTimerVector) {
        ++timerIrqs_;
        cpu.compute(450);
    } else if (vector >= vdev::kDevVectorBase &&
               vector < vdev::kDevVectorBase + 8) {
        unsigned slot = vector - vdev::kDevVectorBase;
        devCompletions_[slot] =
            cpu.memRead(vdev::kUsedPageOffset + slot * 8, 8);
        cpu.compute(220);
    }
    // EOI: a plain MMIO write — and therefore a trap to the hypervisor
    // in a VM on pre-vAPIC hardware (the paper's central x86 cost).
    cpu.memWrite(x86::kApicBase + x86::apic::EOI, 0, 4);
}

void
X86LinuxPort::syscall(X86Cpu &cpu, std::uint32_t nr)
{
    (void)cpu;
    (void)nr;
}

} // namespace kvmarm::wl
