#include "workload/linux_model.hh"

#include "sim/logging.hh"

namespace kvmarm::wl {

const char *
lmWorkloadName(LmWorkload w)
{
    switch (w) {
      case LmWorkload::Fork: return "fork";
      case LmWorkload::Exec: return "exec";
      case LmWorkload::Pipe: return "pipe";
      case LmWorkload::Ctxsw: return "ctxsw";
      case LmWorkload::ProtFault: return "prot fault";
      case LmWorkload::PageFault: return "page fault";
      case LmWorkload::AfUnix: return "af_unix";
      case LmWorkload::Tcp: return "tcp";
    }
    return "?";
}

std::vector<LmWorkload>
allLmWorkloads()
{
    return {LmWorkload::Fork,      LmWorkload::Exec,
            LmWorkload::Pipe,      LmWorkload::Ctxsw,
            LmWorkload::ProtFault, LmWorkload::PageFault,
            LmWorkload::AfUnix,    LmWorkload::Tcp};
}

LmbenchOps::LmbenchOps(SysPort &port, const LinuxCosts &costs)
    : port_(port), costs_(costs)
{
}

void
LmbenchOps::switchTo()
{
    // Dequeue/enqueue both update the runqueue clock: the counter reads
    // that dominate ctxsw/pipe overhead without vtimers (paper §5.2).
    for (unsigned i = 0; i < costs_.clockReadsPerSwitch; ++i)
        (void)port_.schedClock();
    port_.kernelCompute(costs_.schedPick);
    port_.contextSwitchMmu();
    port_.kernelCompute(costs_.switchThread);
}

void
LmbenchOps::nullSyscall()
{
    port_.userCompute(costs_.userWork);
    port_.syscallEdge();
    port_.kernelCompute(costs_.syscallWork);
}

void
LmbenchOps::ctxswRound()
{
    // lat_ctx, two processes, zero working set: one round is two
    // pipe-token handoffs, each blocking and switching.
    for (int leg = 0; leg < 2; ++leg) {
        port_.userCompute(costs_.userWork);
        port_.syscallEdge();
        port_.kernelCompute(costs_.pipeCopy / 2);
        port_.kernelCompute(costs_.wakeup);
        switchTo();
    }
}

void
LmbenchOps::pipeRound()
{
    // lat_pipe: a token bounced between two processes through two pipes.
    for (int leg = 0; leg < 2; ++leg) {
        port_.userCompute(costs_.userWork);
        port_.syscallEdge(); // write
        port_.kernelCompute(costs_.pipeCopy);
        port_.kernelCompute(costs_.wakeup);
        port_.syscallEdge(); // blocking read of the other end
        switchTo();
    }
}

void
LmbenchOps::forkOp(bool smp)
{
    port_.userCompute(costs_.userWork);
    port_.syscallEdge();
    port_.kernelCompute(costs_.forkWork);
    port_.ptSetup(costs_.forkPages);
    // COW-protecting the parent's pages requires flushing stale TLB
    // entries everywhere (the x86/ARM shootdown asymmetry).
    port_.tlbShootdown(smp);
    switchTo(); // child runs
    // Child exits immediately (fork+exit benchmark): teardown + reap.
    port_.kernelCompute(costs_.forkWork / 3);
    port_.tlbShootdown(smp);
    switchTo();
}

void
LmbenchOps::execOp(bool smp)
{
    port_.userCompute(costs_.userWork);
    port_.syscallEdge();
    port_.kernelCompute(costs_.execWork);
    port_.tlbShootdown(smp); // old mm torn down
    port_.ptSetup(costs_.execPages / 4);
    // Touch the new image: demand faults on entry.
    for (unsigned i = 0; i < costs_.execPages; ++i)
        port_.demandFault();
}

void
LmbenchOps::protFaultOp(bool smp)
{
    // lat_sig is single threaded: no remote TLBs share the mm, so x86
    // sends no shootdown IPI; ARM's TLBI broadcasts regardless — part of
    // why protection faults cost KVM/ARM relatively more (paper §5.2).
    (void)smp;
    port_.protFault();
}

void
LmbenchOps::pageFaultOp()
{
    port_.demandFault();
}

void
LmbenchOps::afUnixRound()
{
    for (int leg = 0; leg < 2; ++leg) {
        port_.userCompute(costs_.userWork);
        port_.syscallEdge();
        port_.kernelCompute(costs_.sockWork);
        port_.kernelCompute(costs_.wakeup);
        port_.syscallEdge();
        switchTo();
    }
}

void
LmbenchOps::tcpRound()
{
    for (int leg = 0; leg < 2; ++leg) {
        port_.userCompute(costs_.userWork);
        port_.syscallEdge();
        port_.kernelCompute(costs_.tcpWork);
        // Loopback TX raises the net softirq, which re-reads the clock.
        (void)port_.schedClock();
        port_.kernelCompute(costs_.wakeup);
        port_.syscallEdge();
        switchTo();
    }
}

Cycles
LmbenchOps::run(LmWorkload w, unsigned iters, bool smp)
{
    Cycles t0 = port_.now();
    for (unsigned i = 0; i < iters; ++i) {
        switch (w) {
          case LmWorkload::Fork:
            forkOp(smp);
            break;
          case LmWorkload::Exec:
            execOp(smp);
            break;
          case LmWorkload::Pipe:
            pipeRound();
            break;
          case LmWorkload::Ctxsw:
            ctxswRound();
            break;
          case LmWorkload::ProtFault:
            protFaultOp(smp);
            break;
          case LmWorkload::PageFault:
            pageFaultOp();
            break;
          case LmWorkload::AfUnix:
            afUnixRound();
            break;
          case LmWorkload::Tcp:
            tcpRound();
            break;
        }
    }
    return port_.now() - t0;
}

void
pipeSmpSide(SysPort &port, SmpChannel &ch, bool first, bool with_copy,
            const LinuxCosts &costs)
{
    // Each side runs the legs where (token % 2) matches its parity; the
    // remote wakeup is a real reschedule IPI and the wait is real idle.
    std::uint64_t parity = first ? 0 : 1;
    unsigned other = first ? 1 : 0;

    auto my_turn = [&] { return ch.token % 2 == parity; };

    while (true) {
        // Wait for our turn (blocking read of the pipe -> idle).
        while (!my_turn() && ch.token < ch.rounds) {
            (void)port.schedClock();
            port.timerProgram(costs.tickInterval); // NOHZ re-arm
            // The wakeup IPI may have been consumed while re-arming; only
            // sleep if it is still not our turn (need_resched check).
            if (!my_turn() && ch.token < ch.rounds) {
                port.idle();
                // tick_nohz_idle_exit: re-arm the tick on idle exit —
                // free on ARM's virtual timer, trapping on the x86 APIC.
                port.timerProgram(costs.tickInterval);
            }
        }
        if (ch.token >= ch.rounds)
            break;

        // Our leg: read the token, process, write it back to the peer.
        port.syscallEdge(); // read returns
        if (with_copy)
            port.kernelCompute(costs.pipeCopy);
        port.userCompute(costs.userWork);
        port.syscallEdge(); // write
        if (with_copy)
            port.kernelCompute(costs.pipeCopy);
        for (unsigned i = 0; i < costs.clockReadsPerSwitch; ++i)
            (void)port.schedClock();
        port.kernelCompute(costs.wakeup);
        ++ch.token;
        port.sendRescheduleIpi(other);
    }
    ch.done = true;
}

} // namespace kvmarm::wl
