/**
 * @file
 * Per-operation cycle costs of the modelled Cortex-A15 class machine.
 *
 * Calibration: constants are chosen so that the code paths of the paper's
 * Table 3 micro-benchmarks — which this simulator executes literally, step
 * by step — land near the paper's measured cycle counts on the Arndale
 * board (dual Cortex-A15, 1.7 GHz). The constants themselves are plausible
 * per-operation latencies for that microarchitecture; the *composition* is
 * what the simulation computes. tests/core/calibration_test.cc pins the
 * resulting totals to the paper within a tolerance.
 */

#ifndef KVMARM_ARM_COST_HH
#define KVMARM_ARM_COST_HH

#include "sim/types.hh"

namespace kvmarm::arm {

/** Cycle cost model for one ARM machine. */
struct ArmCostModel
{
    /// @name Mode changes and traps
    /// @{
    /** Hardware cost of taking an exception into Hyp mode. Table 3 "Trap"
     *  = hypTrapEntry + hypEret = 27: ARM only banks a couple of registers
     *  on a Hyp trap, no state is saved automatically (paper §2). */
    Cycles hypTrapEntry = 13;
    Cycles hypEret = 14;

    /** Exception entry to a PL1 mode (SVC/IRQ/ABT) and return. */
    Cycles kernelEntry = 45;
    Cycles kernelEret = 35;
    /// @}

    /// @name Register movement
    /// @{
    Cycles gpRegSave = 2;      //!< per GP register, to/from cached stack
    Cycles ctrlRegAccess = 11; //!< CP15 system register read or write
    Cycles vfpRegAccess = 3;   //!< per 64-bit VFP register
    /// @}

    /// @name MMU
    /// @{
    Cycles tlbFlush = 90;
    Cycles walkPerLevel = 8;       //!< walker overhead per level (plus RAM)
    Cycles stage2Serialize = 50;   //!< ISB/DSB around VTTBR/HCR.VM changes
    /// @}

    /// @name Interconnect and synchronization
    /// @{
    Cycles ipiWire = 1100; //!< GIC SGI wire latency core-to-core
    Cycles atomicOp = 40;  //!< contended ldrex/strex pair (the "unnecessary
                           //!< atomic operations" of §5.2 cost ~300/call)
    /// @}

    /// @name Device MMIO latencies (charged via Bus::accessLatency)
    /// @{
    Cycles gicdLatency = 65;  //!< distributor
    Cycles giccLatency = 140; //!< physical CPU interface
    Cycles gicvLatency = 213; //!< virtual CPU interface (EOI+ACK = 2
                              //!< accesses + issue ≈ Table 3's 427)
    Cycles gichLatency = 73;  //!< hyp control interface; the unoptimized
                              //!< world switch moves 20 registers each
                              //!< direction (§3.5), making VGIC state >50%
                              //!< of hypercall cost (Table 3)
    Cycles uartLatency = 120;
    Cycles virtioLatency = 80;
    /// @}
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_COST_HH
