#include "arm/machine.hh"

#include "sim/logging.hh"

namespace kvmarm::arm {

ArmMachine::ArmMachine(const Config &config)
    : config_(config), ram_(kRamBase, config.ramSize), bus_(ram_),
      gicd_(*this, config.numCpus), gicc_(*this, gicd_, config.numCpus),
      gich_(*this, gicd_, config.numCpus), gicv_(*this, gich_),
      timer_(*this, config.numCpus)
{
    if (config.numCpus == 0 || config.numCpus > 8)
        fatal("ArmMachine: 1-8 CPUs supported, got %u", config.numCpus);

    bus_.addDevice(kGicdBase, kGicRegionSize, &gicd_);
    bus_.addDevice(kGiccBase, kGicRegionSize, &gicc_);
    if (config.hwVgic) {
        bus_.addDevice(kGicvBase, kGicRegionSize, &gicv_);
        bus_.addDevice(kGichBase, kGicRegionSize, &gich_);
    }

    // Snapshot participants, in a fixed order every ArmMachine shares
    // (construction order is what lets a clone pair snapshot records with
    // its own components positionally). CPUs self-register next, then
    // host/hypervisor layers as they are built on top. gicv_ carries no
    // state of its own (it proxies gich_) and is not registered.
    registerSnapshottable(&ram_);
    registerSnapshottable(&gicd_);
    registerSnapshottable(&gicc_);
    registerSnapshottable(&gich_);
    registerSnapshottable(&timer_);

    for (CpuId i = 0; i < config.numCpus; ++i) {
        cpus_.push_back(std::make_unique<ArmCpu>(i, *this));
        registerCpu(cpus_.back().get());
    }
}

} // namespace kvmarm::arm
