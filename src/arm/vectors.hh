/**
 * @file
 * Interfaces through which the machine calls into simulated software.
 *
 * HypVectors is the Hyp-mode exception vector table (installed by the
 * lowvisor, or by a bare-metal hypervisor). OsVectors is a PL1 kernel's
 * vector table; the world switch swaps which kernel — host Linux or the
 * guest OS — receives PL1 exceptions, exactly as VBAR is context switched.
 */

#ifndef KVMARM_ARM_VECTORS_HH
#define KVMARM_ARM_VECTORS_HH

#include <cstdint>

#include "arm/hsr.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

class ArmCpu;

/** Hyp-mode exception vectors. */
class HypVectors
{
  public:
    virtual ~HypVectors() = default;

    /** Any trap into Hyp mode: HVC, sensitive instruction, Stage-2 abort,
     *  or a physical interrupt routed to Hyp (HCR.IMO). */
    virtual void hypTrap(ArmCpu &cpu, const Hsr &hsr) = 0;

    /** Short name for diagnostics. */
    virtual const char *name() const = 0;
};

/** PL1 (kernel mode) exception vectors of whichever OS currently runs. */
class OsVectors
{
  public:
    virtual ~OsVectors() = default;

    /** Hardware or virtual IRQ delivered to kernel mode. The handler must
     *  ACK and EOI through its GIC CPU interface. */
    virtual void irq(ArmCpu &cpu) = 0;

    /** Supervisor call from user mode. */
    virtual void svc(ArmCpu &cpu, std::uint32_t num) = 0;

    /**
     * Stage-1 data/prefetch abort (the OS's own demand paging).
     * @return true if resolved (retry the access), false to kill the
     *         faulting task.
     */
    virtual bool pageFault(ArmCpu &cpu, Addr va, bool write, bool user) = 0;

    virtual const char *name() const = 0;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_VECTORS_HH
