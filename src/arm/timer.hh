/**
 * @file
 * ARM Generic Timer architecture (paper §2, "Timer Virtualization"): a
 * physical counter, and per CPU a physical and a virtual timer. The virtual
 * counter reads CNTPCT - CNTVOFF; kernel-mode access to the *physical*
 * timer is gated by Hyp mode (CNTHCTL), while the virtual timer is always
 * accessible — the property KVM/ARM exploits to let guests program timers
 * without trapping.
 *
 * Timer registers are CP15 system registers, not MMIO; permission checks
 * and trap routing live in ArmCpu, this class keeps the state and fires
 * the PPIs.
 */

#ifndef KVMARM_ARM_TIMER_HH
#define KVMARM_ARM_TIMER_HH

#include <cstdint>
#include <vector>

#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

class ArmMachine;

/** Control/compare state of one timer (CNTx_CTL + CNTx_CVAL). */
struct TimerRegs
{
    bool enable = false;
    bool imask = false; //!< interrupt masked
    std::uint64_t cval = 0;

    bool operator==(const TimerRegs &) const = default;
};

/** All generic-timer state of a machine. */
class GenericTimer : public Snapshottable
{
  public:
    GenericTimer(ArmMachine &machine, unsigned num_cpus);

    /** CNTPCT: the physical counter; ticks with the CPU clock. */
    std::uint64_t physCount(CpuId cpu) const;

    /** CNTVCT = CNTPCT - CNTVOFF. */
    std::uint64_t virtCount(CpuId cpu) const;

    const TimerRegs &phys(CpuId cpu) const { return banks_.at(cpu).phys; }
    const TimerRegs &virt(CpuId cpu) const { return banks_.at(cpu).virt; }

    void setPhys(CpuId cpu, const TimerRegs &regs);
    void setVirt(CpuId cpu, const TimerRegs &regs);

    /** Timer condition met (ISTATUS): counter reached the compare value. */
    bool physIstatus(CpuId cpu) const;
    bool virtIstatus(CpuId cpu) const;

    /** Re-arm firing events; ArmCpu calls this when CNTVOFF changes. */
    void reprogram(CpuId cpu);

    /// @name Snapshottable
    /// @{
    std::string snapshotKey() const override { return "timer"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /** Claim the armed compare-fire events on the restored CPU queues. */
    void snapshotRebind() override;
    /// @}

  private:
    struct Bank
    {
        TimerRegs phys;
        TimerRegs virt;
        std::uint64_t physEvent = 0; //!< pending event id, 0 if none
        std::uint64_t virtEvent = 0;
    };

    void armOne(CpuId cpu, bool virt_timer);
    void fire(CpuId cpu, bool virt_timer);

    ArmMachine &machine_;
    std::vector<Bank> banks_;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_TIMER_HH
