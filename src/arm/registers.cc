#include "arm/registers.hh"

#include "sim/logging.hh"

namespace kvmarm::arm {

const char *
gpRegName(GpReg r)
{
    switch (r) {
      case GpReg::R0: return "r0";
      case GpReg::R1: return "r1";
      case GpReg::R2: return "r2";
      case GpReg::R3: return "r3";
      case GpReg::R4: return "r4";
      case GpReg::R5: return "r5";
      case GpReg::R6: return "r6";
      case GpReg::R7: return "r7";
      case GpReg::R8: return "r8";
      case GpReg::R9: return "r9";
      case GpReg::R10: return "r10";
      case GpReg::R11: return "r11";
      case GpReg::R12: return "r12";
      case GpReg::SpUsr: return "sp_usr";
      case GpReg::LrUsr: return "lr_usr";
      case GpReg::SpSvc: return "sp_svc";
      case GpReg::LrSvc: return "lr_svc";
      case GpReg::SpAbt: return "sp_abt";
      case GpReg::LrAbt: return "lr_abt";
      case GpReg::SpUnd: return "sp_und";
      case GpReg::LrUnd: return "lr_und";
      case GpReg::SpIrq: return "sp_irq";
      case GpReg::LrIrq: return "lr_irq";
      case GpReg::R8Fiq: return "r8_fiq";
      case GpReg::R9Fiq: return "r9_fiq";
      case GpReg::R10Fiq: return "r10_fiq";
      case GpReg::R11Fiq: return "r11_fiq";
      case GpReg::R12Fiq: return "r12_fiq";
      case GpReg::SpFiq: return "sp_fiq";
      case GpReg::LrFiq: return "lr_fiq";
      case GpReg::Pc: return "pc";
      case GpReg::Cpsr: return "cpsr";
      case GpReg::SpsrSvc: return "spsr_svc";
      case GpReg::SpsrAbt: return "spsr_abt";
      case GpReg::SpsrUnd: return "spsr_und";
      case GpReg::SpsrIrq: return "spsr_irq";
      case GpReg::SpsrFiq: return "spsr_fiq";
      case GpReg::ElrHyp: return "elr_hyp";
      case GpReg::NumRegs: break;
    }
    panic("gpRegName: bad register");
}

const char *
ctrlRegName(CtrlReg r)
{
    switch (r) {
      case CtrlReg::MIDR: return "MIDR";
      case CtrlReg::MPIDR: return "MPIDR";
      case CtrlReg::CSSELR: return "CSSELR";
      case CtrlReg::SCTLR: return "SCTLR";
      case CtrlReg::CPACR: return "CPACR";
      case CtrlReg::TTBR0Lo: return "TTBR0_lo";
      case CtrlReg::TTBR0Hi: return "TTBR0_hi";
      case CtrlReg::TTBR1Lo: return "TTBR1_lo";
      case CtrlReg::TTBR1Hi: return "TTBR1_hi";
      case CtrlReg::TTBCR: return "TTBCR";
      case CtrlReg::DACR: return "DACR";
      case CtrlReg::DFSR: return "DFSR";
      case CtrlReg::IFSR: return "IFSR";
      case CtrlReg::ADFSR: return "ADFSR";
      case CtrlReg::AIFSR: return "AIFSR";
      case CtrlReg::DFAR: return "DFAR";
      case CtrlReg::IFAR: return "IFAR";
      case CtrlReg::PARLo: return "PAR_lo";
      case CtrlReg::PARHi: return "PAR_hi";
      case CtrlReg::MAIR0: return "MAIR0";
      case CtrlReg::MAIR1: return "MAIR1";
      case CtrlReg::VBAR: return "VBAR";
      case CtrlReg::CONTEXTIDR: return "CONTEXTIDR";
      case CtrlReg::TPIDRURW: return "TPIDRURW";
      case CtrlReg::TPIDRURO: return "TPIDRURO";
      case CtrlReg::TPIDRPRW: return "TPIDRPRW";
      case CtrlReg::NumRegs: break;
    }
    panic("ctrlRegName: bad register");
}

std::vector<StateInventoryRow>
stateInventory()
{
    // Counts are derived from the register-file definitions so this table
    // can never drift from what the world switch actually saves.
    return {
        {"Context Switch", std::to_string(kNumGpRegs),
         "General Purpose (GP) Registers"},
        {"Context Switch", std::to_string(kNumCtrlRegs),
         "Control Registers"},
        {"Context Switch", "16", "VGIC Control Registers"},
        {"Context Switch", "4", "VGIC List Registers"},
        {"Context Switch", "2", "Arch. Timer Control Registers"},
        {"Context Switch", std::to_string(kNumVfpDataRegs),
         "64-bit VFP registers"},
        {"Context Switch", std::to_string(kNumVfpCtrlRegs),
         "32-bit VFP Control Registers"},
        {"Trap-and-Emulate", "-", "CP14 Trace Registers"},
        {"Trap-and-Emulate", "-", "WFI Instructions"},
        {"Trap-and-Emulate", "-", "SMC Instructions"},
        {"Trap-and-Emulate", "-", "ACTLR Access"},
        {"Trap-and-Emulate", "-", "Cache ops. by Set/Way"},
        {"Trap-and-Emulate", "-", "L2CTLR / L2ECTLR Registers"},
    };
}

} // namespace kvmarm::arm
