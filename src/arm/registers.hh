/**
 * @file
 * The CPU register state visible to kernel- and user-mode software on a
 * Cortex-A15, grouped exactly as the paper's Table 1: 38 general purpose
 * registers and 26 control registers are context switched on every world
 * switch; VFP state (32 x 64-bit + 4 control) is switched lazily; the
 * remaining state is trap-and-emulated.
 */

#ifndef KVMARM_ARM_REGISTERS_HH
#define KVMARM_ARM_REGISTERS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace kvmarm::arm {

/**
 * The 38 general purpose registers of Table 1: r0-r12, the user sp/lr, the
 * banked sp/lr of each PL1 mode, the FIQ bank, pc, cpsr, the banked SPSRs,
 * and the Hyp return address (ELR_hyp).
 */
enum class GpReg : std::uint8_t
{
    R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12,
    SpUsr, LrUsr,
    SpSvc, LrSvc,
    SpAbt, LrAbt,
    SpUnd, LrUnd,
    SpIrq, LrIrq,
    R8Fiq, R9Fiq, R10Fiq, R11Fiq, R12Fiq, SpFiq, LrFiq,
    Pc,
    Cpsr,
    SpsrSvc, SpsrAbt, SpsrUnd, SpsrIrq, SpsrFiq,
    ElrHyp,
    NumRegs,
};

inline constexpr unsigned kNumGpRegs = static_cast<unsigned>(GpReg::NumRegs);
static_assert(kNumGpRegs == 38, "Table 1: 38 general purpose registers");

/**
 * The 26 control (CP15) registers that KVM/ARM context switches during
 * world switches. 64-bit registers (TTBRx, PAR) occupy two slots, matching
 * how the hardware exposes them to 32-bit software.
 */
enum class CtrlReg : std::uint8_t
{
    MIDR,       //!< main ID (shadowed per VM, step 7 of the world switch)
    MPIDR,      //!< multiprocessor affinity (shadowed per VCPU)
    CSSELR,     //!< cache size selection
    SCTLR,      //!< system control
    CPACR,      //!< coprocessor access control
    TTBR0Lo, TTBR0Hi, //!< translation table base 0 (64-bit LPAE)
    TTBR1Lo, TTBR1Hi, //!< translation table base 1 (64-bit LPAE)
    TTBCR,      //!< translation table base control
    DACR,       //!< domain access control
    DFSR,       //!< data fault status
    IFSR,       //!< instruction fault status
    ADFSR,      //!< auxiliary data fault status
    AIFSR,      //!< auxiliary instruction fault status
    DFAR,       //!< data fault address
    IFAR,       //!< instruction fault address
    PARLo, PARHi, //!< physical address after translation (64-bit)
    MAIR0,      //!< memory attribute indirection 0 (PRRR)
    MAIR1,      //!< memory attribute indirection 1 (NMRR)
    VBAR,       //!< vector base address
    CONTEXTIDR, //!< context ID (ASID)
    TPIDRURW,   //!< user read/write thread ID
    TPIDRURO,   //!< user read-only thread ID
    TPIDRPRW,   //!< privileged thread ID
    NumRegs,
};

inline constexpr unsigned kNumCtrlRegs =
    static_cast<unsigned>(CtrlReg::NumRegs);
static_assert(kNumCtrlRegs == 26, "Table 1: 26 control registers");

/** VFP: 32 64-bit data registers plus 4 32-bit control registers. */
inline constexpr unsigned kNumVfpDataRegs = 32;

enum class VfpCtrlReg : std::uint8_t
{
    FPSCR,
    FPEXC,
    FPINST,
    FPINST2,
    NumRegs,
};

inline constexpr unsigned kNumVfpCtrlRegs =
    static_cast<unsigned>(VfpCtrlReg::NumRegs);
static_assert(kNumVfpCtrlRegs == 4, "Table 1: 4 32-bit VFP control regs");

/** Full context-switched register file of one CPU (or one VCPU context). */
struct RegisterFile
{
    std::array<std::uint32_t, kNumGpRegs> gp{};
    std::array<std::uint32_t, kNumCtrlRegs> ctrl{};
    std::array<std::uint64_t, kNumVfpDataRegs> vfp{};
    std::array<std::uint32_t, kNumVfpCtrlRegs> vfpCtrl{};

    std::uint32_t &operator[](GpReg r) { return gp[unsigned(r)]; }
    std::uint32_t operator[](GpReg r) const { return gp[unsigned(r)]; }
    std::uint32_t &operator[](CtrlReg r) { return ctrl[unsigned(r)]; }
    std::uint32_t operator[](CtrlReg r) const { return ctrl[unsigned(r)]; }

    /** Read a 64-bit LPAE register spanning two slots. */
    std::uint64_t
    read64(CtrlReg lo, CtrlReg hi) const
    {
        return (std::uint64_t(ctrl[unsigned(hi)]) << 32) |
               ctrl[unsigned(lo)];
    }

    /** Write a 64-bit LPAE register spanning two slots. */
    void
    write64(CtrlReg lo, CtrlReg hi, std::uint64_t v)
    {
        ctrl[unsigned(lo)] = static_cast<std::uint32_t>(v);
        ctrl[unsigned(hi)] = static_cast<std::uint32_t>(v >> 32);
    }

    bool operator==(const RegisterFile &) const = default;
};

const char *gpRegName(GpReg r);
const char *ctrlRegName(CtrlReg r);

/** One row of the paper's Table 1. */
struct StateInventoryRow
{
    std::string action; //!< "Context Switch" / "Trap-and-Emulate"
    std::string count;  //!< number of registers, or "-"
    std::string what;
};

/** The full Table 1 inventory, derived from the definitions above. */
std::vector<StateInventoryRow> stateInventory();

} // namespace kvmarm::arm

#endif // KVMARM_ARM_REGISTERS_HH
