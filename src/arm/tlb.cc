#include "arm/tlb.hh"

#include <algorithm>

namespace kvmarm::arm {

const TlbEntry *
Tlb::lookup(const TlbKey &key) const
{
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
}

void
Tlb::insert(const TlbKey &key, const TlbEntry &entry)
{
    if (map_.count(key) == 0) {
        while (map_.size() >= capacity_ && !fifo_.empty()) {
            map_.erase(fifo_.front());
            fifo_.pop_front();
        }
        fifo_.push_back(key);
    }
    map_[key] = entry;
}

void
Tlb::flushAll()
{
    map_.clear();
    fifo_.clear();
}

void
Tlb::flushVmid(std::uint8_t vmid)
{
    for (auto it = map_.begin(); it != map_.end();) {
        if (it->first.vmid == vmid)
            it = map_.erase(it);
        else
            ++it;
    }
    fifo_.erase(std::remove_if(fifo_.begin(), fifo_.end(),
                               [vmid](const TlbKey &k) {
                                   return k.vmid == vmid;
                               }),
                fifo_.end());
}

void
Tlb::flushVa(Addr vpage)
{
    for (auto it = map_.begin(); it != map_.end();) {
        if (it->first.vpage == vpage)
            it = map_.erase(it);
        else
            ++it;
    }
    fifo_.erase(std::remove_if(fifo_.begin(), fifo_.end(),
                               [vpage](const TlbKey &k) {
                                   return k.vpage == vpage;
                               }),
                fifo_.end());
}

} // namespace kvmarm::arm
