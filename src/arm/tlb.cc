#include "arm/tlb.hh"

#include "sim/logging.hh"

namespace kvmarm::arm {

namespace {

/** Largest power of two <= @p n (n >= 1). */
std::size_t
floorPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

} // namespace

Tlb::Tlb(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    ways_ = capacity < 4 ? capacity : 4;
    numSets_ = floorPow2(capacity / ways_ ? capacity / ways_ : 1);
    setMask_ = numSets_ - 1;
    slots_.resize(numSets_ * ways_);
    nextWay_.resize(numSets_, 0);
}

const TlbEntry *
Tlb::lookup(const TlbKey &key) const
{
    const Slot *set = &slots_[setIndex(key.vpage) * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].key == key && valid(set[w]))
            return &set[w].entry;
    }
    return nullptr;
}

void
Tlb::insert(const TlbKey &key, const TlbEntry &entry)
{
    const std::size_t si = setIndex(key.vpage);
    Slot *set = &slots_[si * ways_];

    // One probe finds, in order of preference: the existing tagging of
    // this key (update in place, replacement order unchanged) or any
    // invalid slot to fill.
    Slot *victim = nullptr;
    for (std::size_t w = 0; w < ways_; ++w) {
        if (!valid(set[w])) {
            if (!victim)
                victim = &set[w];
            continue;
        }
        if (set[w].key == key) {
            set[w].entry = entry;
            ++epoch_; // a cached copy of the old mapping is now stale
            return;
        }
    }
    if (!victim) {
        // Set full: FIFO within the set, as the old fully-associative
        // implementation evicted oldest-first within its capacity.
        std::uint8_t w = nextWay_[si];
        nextWay_[si] = static_cast<std::uint8_t>((w + 1) % ways_);
        victim = &set[w];
        ++epoch_; // eviction: a cached copy of the victim is now stale
    }
    victim->key = key;
    victim->entry = entry;
    victim->globalGen = globalGen_;
    victim->vmidGen = vmidGen_[key.vmid];
}

void
Tlb::flushAll()
{
    ++globalGen_;
    ++epoch_;
}

void
Tlb::flushVmid(std::uint8_t vmid)
{
    ++vmidGen_[vmid];
    ++epoch_;
}

void
Tlb::flushVa(Addr vpage)
{
    // Every tagging of this VA (any regime/VMID/ASID) indexes to the same
    // set; invalidate them by clearing the slot's generation.
    Slot *set = &slots_[setIndex(vpage) * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].key.vpage == vpage)
            set[w].globalGen = 0;
    }
    ++epoch_;
}

std::size_t
Tlb::size() const
{
    std::size_t n = 0;
    for (const Slot &s : slots_)
        n += valid(s) ? 1 : 0;
    return n;
}

void
Tlb::saveState(SnapshotWriter &w) const
{
    w.u64(numSets_);
    w.u64(ways_);
    for (const Slot &s : slots_)
        w.pod(s);
    for (std::uint8_t nw : nextWay_)
        w.u8(nw);
    w.u64(globalGen_);
    w.pod(vmidGen_);
    w.u64(epoch_);
    w.u64(hits_);
    w.u64(misses_);
}

void
Tlb::restoreState(SnapshotReader &r)
{
    std::uint64_t sets = r.u64();
    std::uint64_t ways = r.u64();
    if (sets != numSets_ || ways != ways_)
        fatal("Tlb::restoreState: geometry mismatch (%llux%llu vs %zux%zu)",
              static_cast<unsigned long long>(sets),
              static_cast<unsigned long long>(ways), numSets_, ways_);
    for (Slot &s : slots_)
        r.pod(s);
    for (std::uint8_t &nw : nextWay_)
        nw = r.u8();
    globalGen_ = r.u64();
    r.pod(vmidGen_);
    epoch_ = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
}

} // namespace kvmarm::arm
