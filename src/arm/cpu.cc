#include "arm/cpu.hh"

#include "arm/gic.hh"
#include "arm/machine.hh"
#include "arm/vgic.hh"

#include <sstream>
#include <cstdio>
#include "sim/logging.hh"

namespace kvmarm::arm {

ArmCpu::ArmCpu(CpuId id, ArmMachine &machine)
    : CpuBase(id, machine), armMachine_(machine),
      checkEngine_(machine.checkEngine()), mmu_(*this)
{
    regs_[CtrlReg::MIDR] = 0x412FC0F0; // Cortex-A15 r2p0
    regs_[CtrlReg::MPIDR] = 0x80000000 | id;
}

ArmMachine &
ArmCpu::machine()
{
    return armMachine_;
}

const ArmMachine &
ArmCpu::machine() const
{
    return armMachine_;
}

void
ArmCpu::trapToHyp(const Hsr &hsr)
{
    if (!hypVectors_) {
        panic("cpu%u: trap to Hyp mode (%s) with no vectors installed — "
              "was the kernel booted in Hyp mode?",
              id_, excClassName(hsr.ec));
    }
    statTrap_[static_cast<std::size_t>(hsr.ec)].inc(
        stats_, [&] { return std::string("trap.") + excClassName(hsr.ec); });

    // Save the trapped-from state; the handler may retarget the ERET via
    // setHypReturn (SPSR_hyp semantics). Nested traps (an IRQ trapping to
    // Hyp during a world switch is impossible — Hyp masks — but PL1
    // handlers invoked inline can trap again) save/restore around the
    // handler call.
    Mode prev_trapped_mode = hypTrappedMode_;
    bool prev_trapped_mask = hypTrappedMask_;
    Mode prev_return_mode = hypReturnMode_;
    bool prev_return_mask = hypReturnMask_;

    hypTrappedMode_ = mode_;
    hypTrappedMask_ = irqMasked_;
    hypReturnMode_ = mode_;
    hypReturnMask_ = irqMasked_;
    setMode(Mode::Hyp);
    regs_[GpReg::ElrHyp] = regs_[GpReg::Pc];
    // Charge the trap entry only after the mode change: interrupts are
    // not deliverable while in Hyp mode.
    addCycles(armMachine_.cost().hypTrapEntry);

    hypVectors_->hypTrap(*this, hsr);

    addCycles(armMachine_.cost().hypEret);
    setMode(hypReturnMode_);
    irqMasked_ = hypReturnMask_;

    hypTrappedMode_ = prev_trapped_mode;
    hypTrappedMask_ = prev_trapped_mask;
    hypReturnMode_ = prev_return_mode;
    hypReturnMask_ = prev_return_mask;
}

bool
ArmCpu::takePageFaultToKernel(Addr va, bool write, Access acc)
{
    if (!osVectors_)
        panic("cpu%u: stage-1 fault at %#llx with no OS vectors", id_,
              static_cast<unsigned long long>(va));
    statFaultStage1_.inc(stats_, "fault.stage1");

    Mode saved_mode = mode_;
    bool saved_mask = irqMasked_;
    bool user = saved_mode == Mode::Usr;
    setMode(Mode::Abt);
    irqMasked_ = true;
    regs_[GpReg::SpsrAbt] = regs_[GpReg::Cpsr];
    regs_[GpReg::LrAbt] = regs_[GpReg::Pc];
    regs_[CtrlReg::DFAR] = static_cast<std::uint32_t>(va);
    regs_[CtrlReg::DFSR] = write ? 0x805 : 0x005;
    addCycles(armMachine_.cost().kernelEntry);

    bool handled = osVectors_->pageFault(*this, va, write, user);

    addCycles(armMachine_.cost().kernelEret);
    setMode(saved_mode);
    irqMasked_ = saved_mask;
    (void)acc;
    return handled;
}

std::uint64_t
ArmCpu::accessMem(Addr va, bool write, std::uint64_t value, unsigned len,
                  bool isv)
{
    Access acc = write ? Access::Write : Access::Read;
    for (int attempt = 0; attempt < 16; ++attempt) {
        TranslateResult tr = mmu_.translate(va, acc, mode_);
        if (tr.cost)
            addCycles(tr.cost);
        if (tr.ok) {
            BusAccess ba = write
                               ? armMachine_.bus().write(id_, tr.pa, value, len)
                               : armMachine_.bus().read(id_, tr.pa, len);
            if (!ba.ok) {
                panic("cpu%u: external abort at PA %#llx (va %#llx)", id_,
                      static_cast<unsigned long long>(tr.pa), static_cast<unsigned long long>(va));
            }
            addCycles(ba.latency);
            return ba.value;
        }
        if (tr.stage2) {
            Hsr hsr;
            hsr.ec = ExcClass::DataAbort;
            hsr.hpfar = pageAlignDown(tr.faultAddr);
            hsr.hdfar = va;
            hsr.isWrite = write;
            hsr.isv = isv;
            hsr.srt = 0;
            hsr.accessLen = static_cast<std::uint8_t>(len);
            hsr.sysValue = static_cast<std::uint32_t>(value);
            trapToHyp(hsr);
            if (mmioPending_) {
                mmioPending_ = false;
                return mmioValue_;
            }
            continue; // the hypervisor mapped the page; retry
        }
        if (!takePageFaultToKernel(va, write, acc)) {
            panic("cpu%u: unhandled stage-1 %s fault at va %#llx (%s)", id_,
                  faultTypeName(tr.fault), static_cast<unsigned long long>(va),
                  modeName(mode_));
        }
    }
    panic("cpu%u: fault livelock at va %#llx", id_, static_cast<unsigned long long>(va));
}

std::uint64_t
ArmCpu::memRead(Addr va, unsigned len, bool isv)
{
    return accessMem(va, false, 0, len, isv);
}

void
ArmCpu::memWrite(Addr va, std::uint64_t value, unsigned len, bool isv)
{
    accessMem(va, true, value, len, isv);
}

void
ArmCpu::memTouch(Addr va, Access acc)
{
    accessMem(va, acc == Access::Write, 0, 4, true);
}

void
ArmCpu::completeMmio(std::uint64_t value)
{
    mmioPending_ = true;
    mmioValue_ = value;
}

void
ArmCpu::svc(std::uint32_t num)
{
    if (mode_ != Mode::Usr)
        panic("cpu%u: svc from non-user mode %s", id_, modeName(mode_));
    if (!osVectors_)
        panic("cpu%u: svc with no OS vectors", id_);

    Mode saved = mode_;
    bool saved_mask = irqMasked_;
    setMode(Mode::Svc);
    irqMasked_ = true;
    regs_[GpReg::SpsrSvc] = regs_[GpReg::Cpsr];
    regs_[GpReg::LrSvc] = regs_[GpReg::Pc];
    addCycles(armMachine_.cost().kernelEntry);

    osVectors_->svc(*this, num);

    addCycles(armMachine_.cost().kernelEret);
    setMode(saved);
    irqMasked_ = saved_mask;
}

void
ArmCpu::hvc(std::uint32_t imm)
{
    if (mode_ == Mode::Usr)
        panic("cpu%u: hvc from user mode is undefined", id_);
    Hsr hsr;
    hsr.ec = ExcClass::Hvc;
    hsr.iss = imm;
    trapToHyp(hsr);
}

void
ArmCpu::smc()
{
    if (hyp_.hcr.tsc && mode_ != Mode::Hyp) {
        Hsr hsr;
        hsr.ec = ExcClass::Smc;
        trapToHyp(hsr);
        return;
    }
    // Native: the secure monitor stub does nothing interesting.
    addCycles(armMachine_.cost().kernelEntry);
}

void
ArmCpu::wfi()
{
    if (hyp_.hcr.twi && mode_ != Mode::Hyp) {
        Hsr hsr;
        hsr.ec = ExcClass::Wfi;
        trapToHyp(hsr);
        return;
    }
    statWfiNative_.inc(stats_, "wfi.native");
    // WFI completes once an interrupt occurs — even if it was serviced
    // while waiting (the wake condition is "interrupt taken or pending",
    // not "still pending").
    std::uint64_t before = interruptsTaken_;
    waitUntil([this, before] {
        return interruptPending() || interruptsTaken_ > before;
    });
}

void
ArmCpu::fpOp(Cycles c)
{
    if (hyp_.trapFpu && mode_ != Mode::Hyp) {
        Hsr hsr;
        hsr.ec = ExcClass::FpTrap;
        trapToHyp(hsr);
        // The hypervisor switched in this VCPU's FP state and cleared the
        // trap; the instruction then re-executes.
    }
    addCycles(c);
}

std::uint32_t
ArmCpu::sensitiveOp(SensitiveOp op, std::uint32_t value)
{
    addCycles(armMachine_.cost().ctrlRegAccess);

    bool trap = false;
    ExcClass ec = ExcClass::Cp15Trap;
    switch (op) {
      case SensitiveOp::ActlrRead:
      case SensitiveOp::ActlrWrite:
        trap = hyp_.hcr.tac;
        break;
      case SensitiveOp::CacheSetWay:
        trap = hyp_.hcr.swio;
        break;
      case SensitiveOp::L2ctlrRead:
      case SensitiveOp::L2ctlrWrite:
      case SensitiveOp::L2ectlrRead:
        trap = hyp_.hcr.tidcp;
        break;
      case SensitiveOp::Cp14Read:
      case SensitiveOp::Cp14Write:
        trap = hyp_.trapCp14;
        ec = ExcClass::Cp14Trap;
        break;
    }

    if (trap && mode_ != Mode::Hyp) {
        Hsr hsr;
        hsr.ec = ec;
        hsr.iss = static_cast<std::uint32_t>(op);
        hsr.sysWrite = op == SensitiveOp::ActlrWrite ||
                       op == SensitiveOp::L2ctlrWrite ||
                       op == SensitiveOp::Cp14Write ||
                       op == SensitiveOp::CacheSetWay;
        hsr.sysValue = value;
        trapToHyp(hsr);
        return static_cast<std::uint32_t>(trappedReadValue_);
    }

    switch (op) {
      case SensitiveOp::ActlrRead:
        return actlr;
      case SensitiveOp::ActlrWrite:
        actlr = value;
        return 0;
      case SensitiveOp::CacheSetWay:
        addCycles(200); // full set/way maintenance is slow
        return 0;
      case SensitiveOp::L2ctlrRead:
        return l2ctlr;
      case SensitiveOp::L2ctlrWrite:
        l2ctlr = value;
        return 0;
      case SensitiveOp::L2ectlrRead:
        return l2ectlr;
      case SensitiveOp::Cp14Read:
        return cp14Dbg;
      case SensitiveOp::Cp14Write:
        cp14Dbg = value;
        return 0;
    }
    return 0;
}

std::uint64_t
ArmCpu::readCntpct()
{
    addCycles(armMachine_.cost().ctrlRegAccess);
    if (privilegeLevel(mode_) <= 1 && !hyp_.pl1PhysTimerAccess) {
        Hsr hsr;
        hsr.ec = ExcClass::TimerTrap;
        hsr.iss = static_cast<std::uint32_t>(TimerAccess::ReadCntpct);
        trapToHyp(hsr);
        return trappedReadValue_;
    }
    return armMachine_.timer().physCount(id_);
}

std::uint64_t
ArmCpu::readCntvct()
{
    addCycles(armMachine_.cost().ctrlRegAccess);
    if (!armMachine_.config().hwVtimers && hyp_.hcr.vm) {
        // Hardware without virtual timers: in a VM the virtual counter
        // does not exist, the access traps and is emulated (in user space
        // on unoptimized KVM/ARM — the Figure 3 pipe/ctxsw anomaly).
        Hsr hsr;
        hsr.ec = ExcClass::TimerTrap;
        hsr.iss = static_cast<std::uint32_t>(TimerAccess::ReadCntvct);
        trapToHyp(hsr);
        return trappedReadValue_;
    }
    return armMachine_.timer().virtCount(id_);
}

TimerRegs
ArmCpu::readPhysTimer()
{
    addCycles(armMachine_.cost().ctrlRegAccess * 2); // CTL + CVAL
    if (privilegeLevel(mode_) <= 1 && !hyp_.pl1PhysTimerAccess) {
        Hsr hsr;
        hsr.ec = ExcClass::TimerTrap;
        hsr.iss = static_cast<std::uint32_t>(TimerAccess::PhysTimer);
        trapToHyp(hsr);
        return TimerRegs{};
    }
    return armMachine_.timer().phys(id_);
}

void
ArmCpu::writePhysTimer(const TimerRegs &regs)
{
    addCycles(armMachine_.cost().ctrlRegAccess * 2);
    if (privilegeLevel(mode_) <= 1 && !hyp_.pl1PhysTimerAccess) {
        Hsr hsr;
        hsr.ec = ExcClass::TimerTrap;
        hsr.iss = static_cast<std::uint32_t>(TimerAccess::PhysTimer);
        hsr.sysWrite = true;
        hsr.sysValue = (regs.enable ? 1u : 0) | (regs.imask ? 2u : 0);
        hsr.sysValue64 = regs.cval;
        trapToHyp(hsr);
        return;
    }
    armMachine_.timer().setPhys(id_, regs);
}

TimerRegs
ArmCpu::readVirtTimer()
{
    addCycles(armMachine_.cost().ctrlRegAccess * 2);
    if (!armMachine_.config().hwVtimers && hyp_.hcr.vm) {
        Hsr hsr;
        hsr.ec = ExcClass::TimerTrap;
        hsr.iss = static_cast<std::uint32_t>(TimerAccess::VirtTimer);
        trapToHyp(hsr);
        return TimerRegs{};
    }
    return armMachine_.timer().virt(id_);
}

void
ArmCpu::writeVirtTimer(const TimerRegs &regs)
{
    addCycles(armMachine_.cost().ctrlRegAccess * 2);
    if (!armMachine_.config().hwVtimers && hyp_.hcr.vm) {
        Hsr hsr;
        hsr.ec = ExcClass::TimerTrap;
        hsr.iss = static_cast<std::uint32_t>(TimerAccess::VirtTimer);
        hsr.sysWrite = true;
        hsr.sysValue = (regs.enable ? 1u : 0) | (regs.imask ? 2u : 0);
        hsr.sysValue64 = regs.cval;
        trapToHyp(hsr);
        return;
    }
    armMachine_.timer().setVirt(id_, regs);
}

void
ArmCpu::writeCntvoff(std::uint64_t off)
{
    KVMARM_CHECK_ON(checkEngine_, hypAccess(id_, mode_, "cntvoff"));
    if (mode_ != Mode::Hyp)
        panic("cpu%u: CNTVOFF write outside Hyp mode", id_);
    addCycles(armMachine_.cost().ctrlRegAccess);
    hyp_.cntvoff = off;
    armMachine_.timer().reprogram(id_);
}

std::uint32_t
ArmCpu::readCp15(CtrlReg r)
{
    addCycles(armMachine_.cost().ctrlRegAccess);
    return regs_[r];
}

void
ArmCpu::writeCp15(CtrlReg r, std::uint32_t v)
{
    addCycles(armMachine_.cost().ctrlRegAccess);
    regs_[r] = v;
}

void
ArmCpu::writeCp15_64(CtrlReg lo, CtrlReg hi, std::uint64_t v)
{
    addCycles(armMachine_.cost().ctrlRegAccess);
    regs_.write64(lo, hi, v);
}

void
ArmCpu::tlbiAll()
{
    addCycles(armMachine_.cost().tlbFlush);
    if (mode_ == Mode::Hyp) {
        mmu_.tlb().flushAll();
    } else {
        std::uint8_t vmid =
            hyp_.hcr.vm ? static_cast<std::uint8_t>(hyp_.vmid()) : 0;
        mmu_.tlb().flushVmid(vmid);
    }
}

void
ArmCpu::tlbiVa(Addr va)
{
    addCycles(35);
    mmu_.tlb().flushVa(pageAlignDown(va));
}

bool
ArmCpu::interruptPending() const
{
    bool phys = armMachine_.gicc().irqLineHigh(id_);
    if (phys && mode_ != Mode::Hyp) {
        if (hyp_.hcr.imo)
            return true; // routed to Hyp regardless of CPSR.I
        if (!irqMasked_)
            return true;
    }
    if (!irqMasked_ && privilegeLevel(mode_) <= 1) {
        if (armMachine_.config().hwVgic && armMachine_.gich().virqLineHigh(id_))
            return true;
        if (hyp_.hcr.vi)
            return true; // software-injected virtual IRQ (no VGIC)
    }
    return false;
}

void
ArmCpu::serviceInterrupts()
{
    if (inIrqService_)
        return;
    inIrqService_ = true;
    // Livelock detection: every real delivery advances the clock, so a
    // large number of iterations without progress means a handler is not
    // EOIing.
    Cycles progress_mark = now_;
    for (unsigned guard = 0; guard < 100000; ++guard) {
        if ((guard & 0xFF) == 0xFF) {
            if (now_ == progress_mark)
                break; // fall through to the panic below
            progress_mark = now_;
        }
        bool phys = armMachine_.gicc().irqLineHigh(id_);
        if (phys && hyp_.hcr.imo && mode_ != Mode::Hyp) {
            statIrqToHyp_.inc(stats_, "irq.toHyp");
            Hsr hsr;
            hsr.ec = ExcClass::Irq;
            inIrqService_ = false;
            trapToHyp(hsr);
            inIrqService_ = true;
            continue;
        }
        if (phys && !irqMasked_ && mode_ != Mode::Hyp && osVectors_) {
            takeIrqToKernel();
            continue;
        }
        if (!irqMasked_ && privilegeLevel(mode_) <= 1 && osVectors_ &&
            ((armMachine_.config().hwVgic &&
              armMachine_.gich().virqLineHigh(id_)) ||
             hyp_.hcr.vi)) {
            statIrqVirtual_.inc(stats_, "irq.virtual");
            takeIrqToKernel();
            continue;
        }
        inIrqService_ = false;
        return;
    }
    inIrqService_ = false;
    {
        std::ostringstream os;
        stats_.dump(os, strfmt("cpu%u.", id_));
        std::fputs(os.str().c_str(), stderr);
    }
    PendingIrq best = armMachine_.gicd().bestPending(id_);
    panic("cpu%u: interrupt service livelock (handler not EOIing?) "
          "mode=%s masked=%d imo=%d physLine=%d virtLine=%d vi=%d "
          "bestPhys=%u os=%s",
          id_, modeName(mode_), irqMasked_, hyp_.hcr.imo,
          armMachine_.gicc().irqLineHigh(id_),
          armMachine_.config().hwVgic && armMachine_.gich().virqLineHigh(id_),
          hyp_.hcr.vi, best.irq, osVectors_ ? osVectors_->name() : "none");
}

void
ArmCpu::takeIrqToKernel()
{
    statIrqToKernel_.inc(stats_, "irq.toKernel");
    ++interruptsTaken_;
    Mode saved = mode_;
    bool saved_mask = irqMasked_;
    setMode(Mode::Irq);
    irqMasked_ = true;
    regs_[GpReg::SpsrIrq] = regs_[GpReg::Cpsr];
    regs_[GpReg::LrIrq] = regs_[GpReg::Pc];
    addCycles(armMachine_.cost().kernelEntry);

    osVectors_->irq(*this);

    addCycles(armMachine_.cost().kernelEret);
    setMode(saved);
    irqMasked_ = saved_mask;
}

void
ArmCpu::saveState(SnapshotWriter &w)
{
    CpuBase::saveState(w);
    w.u8(static_cast<std::uint8_t>(mode_));
    w.b(irqMasked_);
    w.pod(regs_);
    w.pod(hyp_);
    w.b(mmioPending_);
    w.u64(mmioValue_);
    w.u64(trappedReadValue_);
    w.b(inIrqService_);
    w.u64(interruptsTaken_);
    w.u8(static_cast<std::uint8_t>(hypReturnMode_));
    w.b(hypReturnMask_);
    w.u8(static_cast<std::uint8_t>(hypTrappedMode_));
    w.b(hypTrappedMask_);
    w.u32(actlr);
    w.u32(l2ctlr);
    w.u32(l2ectlr);
    w.u32(cp14Dbg);
    mmu_.saveState(w);
}

void
ArmCpu::restoreState(SnapshotReader &r)
{
    CpuBase::restoreState(r);
    // Direct member writes, not setMode()/hypSys(): this is the host
    // materializing hardware state, not simulated software accessing it,
    // so no privilege/mode-change invariant events fire.
    mode_ = static_cast<Mode>(r.u8());
    irqMasked_ = r.b();
    r.pod(regs_);
    r.pod(hyp_);
    mmioPending_ = r.b();
    mmioValue_ = r.u64();
    trappedReadValue_ = r.u64();
    inIrqService_ = r.b();
    interruptsTaken_ = r.u64();
    hypReturnMode_ = static_cast<Mode>(r.u8());
    hypReturnMask_ = r.b();
    hypTrappedMode_ = static_cast<Mode>(r.u8());
    hypTrappedMask_ = r.b();
    actlr = r.u32();
    l2ctlr = r.u32();
    l2ectlr = r.u32();
    cp14Dbg = r.u32();
    mmu_.restoreState(r);
    // Software vectors (hypVectors_/osVectors_) are raw pointers into the
    // host kernel and hypervisor objects; their owners reinstall them in
    // their own snapshotRebind passes.
}

} // namespace kvmarm::arm
