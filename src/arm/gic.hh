/**
 * @file
 * ARM Generic Interrupt Controller v2 (paper §2, "Interrupt
 * Virtualization"): one distributor routing SGIs/PPIs/SPIs, plus a banked
 * per-CPU interface for ACK (IAR) and EOI. Both are memory mapped; the
 * distributor is shared, the CPU interface is banked by the accessing core.
 */

#ifndef KVMARM_ARM_GIC_HH
#define KVMARM_ARM_GIC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/bus.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

class ArmMachine;

/// Interrupt ID space (GICv2).
inline constexpr IrqId kNumSgis = 16;           //!< 0-15, inter-processor
inline constexpr IrqId kFirstPpi = 16;          //!< 16-31, per-CPU private
inline constexpr IrqId kFirstSpi = 32;          //!< 32+, shared peripherals
inline constexpr IrqId kMaxIrqs = 160;
inline constexpr IrqId kSpuriousIrq = 1023;

/// Well-known PPIs on a Cortex-A15 class core.
inline constexpr IrqId kMaintenancePpi = 25; //!< VGIC maintenance interrupt
inline constexpr IrqId kVirtTimerPpi = 27;   //!< virtual generic timer
inline constexpr IrqId kHypTimerPpi = 26;    //!< hyp generic timer
inline constexpr IrqId kPhysTimerPpi = 30;   //!< non-secure phys timer

/// Distributor register offsets (subset of GICv2).
namespace gicd {
inline constexpr Addr CTLR = 0x000;
inline constexpr Addr TYPER = 0x004;
inline constexpr Addr ISENABLER = 0x100; //!< 0x100-0x17C, set-enable
inline constexpr Addr ICENABLER = 0x180; //!< clear-enable
inline constexpr Addr ISPENDR = 0x200;   //!< set-pending
inline constexpr Addr ICPENDR = 0x280;   //!< clear-pending
inline constexpr Addr IPRIORITYR = 0x400; //!< byte per IRQ
inline constexpr Addr ITARGETSR = 0x800;  //!< byte per IRQ (CPU mask)
inline constexpr Addr ICFGR = 0xC00;
inline constexpr Addr SGIR = 0xF00; //!< software generated interrupt
} // namespace gicd

/// CPU interface register offsets (shared by GICC and GICV).
namespace gicc {
inline constexpr Addr CTLR = 0x00;
inline constexpr Addr PMR = 0x04;  //!< priority mask
inline constexpr Addr BPR = 0x08;  //!< binary point
inline constexpr Addr IAR = 0x0C;  //!< acknowledge (read)
inline constexpr Addr EOIR = 0x10; //!< end of interrupt (write)
inline constexpr Addr RPR = 0x14;  //!< running priority
inline constexpr Addr HPPIR = 0x18; //!< highest priority pending
} // namespace gicc

/** Highest-priority pending interrupt for one CPU. */
struct PendingIrq
{
    IrqId irq = kSpuriousIrq;
    std::uint8_t priority = 0xFF;
    CpuId source = 0; //!< originating core, for SGIs
};

/**
 * The GIC distributor: global interrupt state and routing. Device models
 * assert wires through raiseSpi/raisePpi; kernels configure it over MMIO.
 */
class GicDistributor : public MmioDevice, public Snapshottable
{
  public:
    GicDistributor(ArmMachine &machine, unsigned num_cpus);

    /// @name Wire-level interface for device models
    /// @{
    /**
     * Assert a shared peripheral interrupt. The pending state is applied
     * on the routed target CPU's event queue at cycle @p when (callers add
     * their interconnect latency), which also wakes an idle target.
     */
    void raiseSpi(IrqId irq, Cycles when);

    /** Assert a private interrupt on @p cpu (called from that CPU's own
     *  execution context, e.g. its timer). */
    void raisePpi(CpuId cpu, IrqId irq);

    /** Deassert a private interrupt (level-triggered sources). */
    void clearPpi(CpuId cpu, IrqId irq);
    /// @}

    /// @name Queries used by the CPU interfaces
    /// @{
    PendingIrq bestPending(CpuId cpu) const;
    /** Consume (ack) @p irq for @p cpu; SGIs consume one source at a
     *  time. */
    void acknowledge(CpuId cpu, IrqId irq, CpuId source);
    /// @}

    bool enabled() const { return ctlr_ & 1; }

    /// @name MmioDevice
    /// @{
    std::string name() const override { return "gicd"; }
    std::uint64_t read(CpuId cpu, Addr offset, unsigned len) override;
    void write(CpuId cpu, Addr offset, std::uint64_t value,
               unsigned len) override;
    Cycles accessLatency() const override;
    /// @}

    /// @name Snapshottable
    /// @{
    std::string snapshotKey() const override { return "gicd"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /** Re-claims the in-flight delivery events on their target CPUs'
     *  restored queues. */
    void snapshotRebind() override;
    /// @}

  private:
    /**
     * A wire assertion scheduled on a target CPU's event queue but not yet
     * delivered (SPI raise or cross-CPU SGI). Tracked so snapshots can
     * describe the pending delivery and a restored distributor can rebuild
     * the exact callback for the restored event.
     */
    struct Inflight
    {
        std::uint64_t token; //!< distributor-local handle
        std::uint64_t eventId;
        CpuId target;
        bool isSgi;
        IrqId irq; //!< SPI id, or SGI id when isSgi
        CpuId src; //!< SGI source CPU
    };

    void writeSgir(CpuId src, std::uint32_t value);
    void setSgiPending(CpuId target, IrqId sgi, CpuId source);
    CpuId routeSpi(IrqId irq) const;
    void dropInflight(std::uint64_t token);
    void spiDelivered(IrqId irq, std::uint64_t token);
    void sgiDelivered(CpuId target, IrqId sgi, CpuId src,
                      std::uint64_t token);

    /** Note a state change that can alter bestPending() results. */
    void touch() { ++version_; }

    ArmMachine &machine_;
    unsigned numCpus_;
    std::uint32_t ctlr_ = 0;

    // Shared SPI state.
    std::array<bool, kMaxIrqs> enabled_{};
    std::array<bool, kMaxIrqs> pending_{};
    std::array<std::uint8_t, kMaxIrqs> priority_{};
    std::array<std::uint8_t, kMaxIrqs> targets_{};

    // Banked SGI/PPI state.
    struct Bank
    {
        std::array<std::uint16_t, kNumSgis> sgiSources{}; //!< src bitmask
        std::array<bool, 32> ppiPending{};
        std::array<bool, 32> enabled{};
        std::array<std::uint8_t, 32> priority{};
    };
    std::vector<Bank> banks_;

    /**
     * bestPending() is a pure function of distributor state, yet it is
     * polled on the CPUs' interrupt lines every time simulated time
     * advances — far more often than the state changes. Every mutation
     * bumps version_; each CPU caches its last answer with the version it
     * was computed at, so the common poll is one integer compare instead
     * of a scan over the whole IRQ space.
     */
    std::uint64_t version_ = 1;
    struct PendingCache
    {
        std::uint64_t version = 0; //!< 0 never matches (version_ starts at 1)
        PendingIrq best;
    };
    mutable std::vector<PendingCache> pendingCache_;

    std::vector<Inflight> inflight_;
    std::uint64_t nextInflightToken_ = 1;
};

/**
 * The physical GIC CPU interface (GICC): banked per core; the host kernel
 * ACKs and EOIs hardware interrupts here.
 */
class GicCpuInterface : public MmioDevice, public Snapshottable
{
  public:
    GicCpuInterface(ArmMachine &machine, GicDistributor &dist,
                    unsigned num_cpus);

    /** True if an enabled interrupt should be signalled to @p cpu. */
    bool irqLineHigh(CpuId cpu) const;

    /// @name MmioDevice
    /// @{
    std::string name() const override { return "gicc"; }
    std::uint64_t read(CpuId cpu, Addr offset, unsigned len) override;
    void write(CpuId cpu, Addr offset, std::uint64_t value,
               unsigned len) override;
    Cycles accessLatency() const override;
    /// @}

    /// @name Snapshottable
    /// @{
    std::string snapshotKey() const override { return "gicc"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    struct Bank
    {
        bool enabled = false;
        std::uint8_t pmr = 0xFF;
        /** Acked-but-not-EOIed interrupts, innermost last. */
        std::vector<PendingIrq> activeStack;
    };

    std::uint8_t runningPriority(const Bank &b) const;
    IrqId acknowledgeIrq(CpuId cpu);
    void endOfInterrupt(CpuId cpu, std::uint32_t value);

    ArmMachine &machine_;
    GicDistributor &dist_;
    std::vector<Bank> banks_;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_GIC_HH
