/**
 * @file
 * GICv2 hardware virtualization support: the VGIC (paper §2).
 *
 * Per CPU there is a *hyp control interface* (GICH) holding the list
 * registers through which the hypervisor injects virtual interrupts, and a
 * *virtual CPU interface* (GICV) which the VM sees in place of the physical
 * GICC, letting the guest ACK and EOI virtual interrupts without trapping.
 */

#ifndef KVMARM_ARM_VGIC_HH
#define KVMARM_ARM_VGIC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arm/gic.hh"
#include "mem/bus.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

class ArmMachine;

/** Number of list registers on a Cortex-A15. */
inline constexpr unsigned kNumListRegs = 4;

/** List register state field. */
enum class LrState : std::uint8_t
{
    Empty = 0,
    Pending = 1,
    Active = 2,
    PendingActive = 3,
};

/** One VGIC list register. */
struct ListReg
{
    IrqId virq = 0;
    std::uint8_t priority = 0;
    LrState state = LrState::Empty;
    bool hw = false;    //!< linked to a physical interrupt
    IrqId pirq = 0;     //!< physical id when hw is set
    CpuId source = 0;   //!< source vcpu for virtual SGIs

    std::uint32_t pack() const;
    static ListReg unpack(std::uint32_t raw);
    bool operator==(const ListReg &) const = default;
};

/// GICH (hyp control interface) register offsets.
namespace gich {
inline constexpr Addr HCR = 0x00;  //!< bit0 EN, bit1 UIE (underflow irq)
inline constexpr Addr VTR = 0x04;  //!< type: number of LRs
inline constexpr Addr VMCR = 0x08; //!< VM view of GICV CTLR/PMR/BPR
inline constexpr Addr MISR = 0x10; //!< maintenance interrupt status
inline constexpr Addr EISR0 = 0x20;
inline constexpr Addr EISR1 = 0x24;
inline constexpr Addr ELRSR0 = 0x30; //!< empty list register status
inline constexpr Addr ELRSR1 = 0x34;
inline constexpr Addr APR0 = 0xF0; //!< active priorities
inline constexpr Addr APR1 = 0xF4;
inline constexpr Addr APR2 = 0xF8;
inline constexpr Addr APR3 = 0xFC;
inline constexpr Addr LR0 = 0x100; //!< list registers, 4 bytes apart
} // namespace gich

/**
 * The 16 VGIC control registers a world switch must move (Table 1): the
 * twelve GICH registers plus the four words of VM-interface configuration
 * mirrored through VMCR. Offsets into the GICH region.
 */
inline constexpr std::array<Addr, 16> kVgicCtrlSaveList = {
    gich::HCR,   gich::VTR,   gich::VMCR,  gich::MISR,
    gich::EISR0, gich::EISR1, gich::ELRSR0, gich::ELRSR1,
    gich::APR0,  gich::APR1,  gich::APR2,  gich::APR3,
    // VM-interface configuration words (CTLR/PMR/BPR/running state),
    // accessed through the VMCR aliases at these implementation-defined
    // offsets on the modelled core.
    0x200, 0x204, 0x208, 0x20C,
};

/** Per-CPU VGIC state, shared between the GICH and GICV interfaces. */
struct VgicBank
{
    bool en = false;   //!< GICH_HCR.EN: virtual interface enabled
    bool uie = false;  //!< GICH_HCR.UIE: maintenance irq on empty LRs
    bool vmEnabled = false;    //!< VM's GICV_CTLR enable (via VMCR)
    std::uint8_t vmPmr = 0xFF; //!< VM's priority mask (via VMCR)
    std::array<std::uint32_t, 4> apr{};
    std::array<ListReg, kNumListRegs> lr{};
};

/**
 * GICH: the hypervisor's per-CPU control interface for virtual interrupts.
 */
class VgicHypInterface : public MmioDevice, public Snapshottable
{
  public:
    VgicHypInterface(ArmMachine &machine, GicDistributor &dist,
                     unsigned num_cpus);

    VgicBank &bank(CpuId cpu) { return banks_.at(cpu); }
    const VgicBank &bank(CpuId cpu) const { return banks_.at(cpu); }

    /** Empty-LR bitmask (ELRSR semantics). */
    std::uint32_t emptyLrMask(CpuId cpu) const;

    /** True if the virtual interface should assert the guest's IRQ line. */
    bool virqLineHigh(CpuId cpu) const;

    /** Raise the maintenance interrupt if the underflow condition holds. */
    void checkMaintenance(CpuId cpu);

    /// @name MmioDevice
    /// @{
    std::string name() const override { return "gich"; }
    std::uint64_t read(CpuId cpu, Addr offset, unsigned len) override;
    void write(CpuId cpu, Addr offset, std::uint64_t value,
               unsigned len) override;
    Cycles accessLatency() const override;
    /// @}

    /// @name Snapshottable
    /// @{
    std::string snapshotKey() const override { return "gich"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    ArmMachine &machine_;
    GicDistributor &dist_;
    std::vector<VgicBank> banks_;
};

/**
 * GICV: the CPU interface the VM sees. Stage-2 maps the VM's idea of the
 * GICC base address here, so guest ACK/EOI never trap (paper §3.5).
 */
class VgicCpuInterface : public MmioDevice
{
  public:
    VgicCpuInterface(ArmMachine &machine, VgicHypInterface &hyp);

    /// @name MmioDevice
    /// @{
    std::string name() const override { return "gicv"; }
    std::uint64_t read(CpuId cpu, Addr offset, unsigned len) override;
    void write(CpuId cpu, Addr offset, std::uint64_t value,
               unsigned len) override;
    Cycles accessLatency() const override;
    /// @}

  private:
    IrqId acknowledgeVirq(CpuId cpu);
    void endOfVirq(CpuId cpu, std::uint32_t value);

    ArmMachine &machine_;
    VgicHypInterface &hyp_;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_VGIC_HH
