/**
 * @file
 * LPAE-style page tables: descriptor encoding, a three-level walker, and an
 * editor for building/modifying tables in simulated RAM.
 *
 * Three formats are modelled, because their *differences* drive KVM/ARM's
 * design (paper §2, §3.1): the kernel-mode Stage-1 format (two table base
 * registers, user/nG bits), the Hyp-mode Stage-1 format (single base
 * register, several bits mandated — which is why the kernel's page tables
 * cannot simply be reused in Hyp mode), and the Stage-2 format (S2AP
 * permissions, IPA->PA).
 */

#ifndef KVMARM_ARM_PAGETABLE_HH
#define KVMARM_ARM_PAGETABLE_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/types.hh"

namespace kvmarm::arm {

/** Translation table format. */
enum class PtFormat : std::uint8_t
{
    KernelLpae, //!< PL0/PL1 Stage-1 (what Linux kernel mode uses)
    HypLpae,    //!< PL2 Stage-1 (different mandated bits, no user/ASID)
    Stage2,     //!< IPA -> PA (S2AP permission encoding)
};

/** Kind of access being translated. */
enum class Access : std::uint8_t { Read, Write, Exec };

/** MMU fault classification. */
enum class FaultType : std::uint8_t
{
    None,
    Translation, //!< invalid descriptor at some level
    AccessFlag,  //!< AF clear (KernelLpae only)
    Permission,
    BadFormat,   //!< descriptor violates the regime's mandated bits
    Bus,         //!< table fetch hit unmapped physical memory
};

const char *faultTypeName(FaultType f);

/** Page permissions and memory type carried by a leaf descriptor. */
struct Perms
{
    bool read = true;
    bool write = true;
    bool exec = true;
    bool user = false;   //!< PL0 accessible (Stage-1 only)
    bool device = false; //!< device memory type

    bool operator==(const Perms &) const = default;
};

/** Result of a table walk. */
struct WalkResult
{
    FaultType fault = FaultType::Translation;
    int level = 1;      //!< level the walk ended at
    Addr pa = 0;        //!< output address (valid when fault == None)
    Perms perms;
    unsigned tableReads = 0; //!< memory accesses the walk performed

    bool ok() const { return fault == FaultType::None; }
};

/**
 * Descriptor bit layout (64-bit entries, 4 KiB granule):
 *  - bit 0: valid
 *  - bit 1: 1 = table (L1/L2) or page (L3); 0 at L2 = 2 MiB block
 *  - bits [39:12]: output / next-table address
 *  - bit 6: Stage-1: user accessible (AP[1]); Stage-2: read permitted
 *  - bit 7: Stage-1: read-only (AP[2]);      Stage-2: write permitted
 *  - bits [5:2]: memory attribute (0 = device, nonzero = normal)
 *  - bit 10: access flag (AF)
 *  - bit 11: nG (KernelLpae only; must be 0 in HypLpae)
 *  - bit 54: execute never (XN)
 */
namespace desc {
inline constexpr std::uint64_t kValid = 1ull << 0;
inline constexpr std::uint64_t kTable = 1ull << 1;
inline constexpr std::uint64_t kUserOrS2Read = 1ull << 6;
inline constexpr std::uint64_t kRoOrS2Write = 1ull << 7;
inline constexpr std::uint64_t kAf = 1ull << 10;
inline constexpr std::uint64_t kNg = 1ull << 11;
inline constexpr std::uint64_t kXn = 1ull << 54;
inline constexpr std::uint64_t kAddrMask = 0x000000FFFFFFF000ull;
inline constexpr std::uint64_t kAttrShift = 2;
inline constexpr std::uint64_t kAttrMask = 0xFull << kAttrShift;
} // namespace desc

/** Encode a leaf descriptor for @p fmt. */
std::uint64_t encodeLeaf(Addr pa, const Perms &p, PtFormat fmt);

/** Decode a leaf's permissions; returns BadFormat/AccessFlag violations. */
FaultType decodeLeaf(std::uint64_t d, PtFormat fmt, Perms &out);

/**
 * Walk a three-level table rooted at @p root translating @p va.
 *
 * @param reader Fetches a 64-bit descriptor at a table physical address;
 *        returns std::nullopt to abort the walk (nested Stage-2 fault or
 *        bus error) — the result then reports FaultType::Bus at the
 *        current level and the caller reconstructs the real cause.
 */
WalkResult walkTable(
    Addr root, Addr va, PtFormat fmt,
    const std::function<std::optional<std::uint64_t>(Addr)> &reader);

/**
 * Builds and edits page tables through read/write/alloc callbacks, so the
 * same code serves the host kernel (direct PhysMem), the highvisor
 * (Stage-2 tables in host memory) and guest kernels (tables in guest RAM,
 * written through the guest's own memory accesses).
 */
class PageTableEditor
{
  public:
    using Reader = std::function<std::uint64_t(Addr)>;
    using Writer = std::function<void(Addr, std::uint64_t)>;
    /** Returns the physical address of a fresh zeroed page. */
    using PageAlloc = std::function<Addr()>;

    PageTableEditor(PtFormat fmt, Reader r, Writer w, PageAlloc alloc);

    /** Allocate and return a zeroed root table. */
    Addr newRoot();

    /** Map one 4 KiB page. Replaces any existing mapping. */
    void map(Addr root, Addr va, Addr pa, const Perms &p);

    /** Map one 2 MiB block at L2 (va/pa 2 MiB aligned). */
    void mapBlock2M(Addr root, Addr va, Addr pa, const Perms &p);

    /** Remove a 4 KiB mapping. @return true if a mapping existed. */
    bool unmap(Addr root, Addr va);

    /** Look up a mapping without faulting (for table management). */
    std::optional<Addr> lookup(Addr root, Addr va) const;

  private:
    Addr ensureTable(Addr table, unsigned index);

    PtFormat fmt_;
    Reader read_;
    Writer write_;
    PageAlloc alloc_;
};

/** Index of @p va at walk level @p level (1-3). */
unsigned ptIndex(Addr va, int level);

inline constexpr Addr kBlock2MSize = 2 * kMiB;

} // namespace kvmarm::arm

#endif // KVMARM_ARM_PAGETABLE_HH
