/**
 * @file
 * A simple unified TLB caching completed translations (combined Stage-1 +
 * Stage-2), tagged by regime, VMID and ASID as on hardware, with FIFO
 * replacement.
 */

#ifndef KVMARM_ARM_TLB_HH
#define KVMARM_ARM_TLB_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "arm/pagetable.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

/** Translation regime a TLB entry belongs to. */
enum class TlbRegime : std::uint8_t
{
    Pl0Pl1, //!< kernel/user Stage-1 (+ Stage-2 when in a VM)
    Hyp,    //!< Hyp-mode Stage-1
};

struct TlbKey
{
    TlbRegime regime;
    std::uint8_t vmid;
    std::uint32_t asid;
    Addr vpage;

    bool operator==(const TlbKey &) const = default;
};

struct TlbKeyHash
{
    std::size_t
    operator()(const TlbKey &k) const
    {
        std::size_t h = k.vpage * 0x9E3779B97F4A7C15ull;
        h ^= (std::size_t(k.asid) << 17) ^ (std::size_t(k.vmid) << 9) ^
             std::size_t(k.regime);
        return h;
    }
};

struct TlbEntry
{
    Addr ppage = 0;
    Perms s1Perms;      //!< Stage-1 permissions (identity when S1 off)
    Perms s2Perms;      //!< Stage-2 permissions (all-allow when S2 off)
    bool hasStage2 = false;
    bool device = false;
};

/** Fully associative, FIFO-replaced TLB. */
class Tlb
{
  public:
    explicit Tlb(std::size_t capacity = 256) : capacity_(capacity) {}

    const TlbEntry *lookup(const TlbKey &key) const;
    void insert(const TlbKey &key, const TlbEntry &entry);

    void flushAll();
    void flushVmid(std::uint8_t vmid);
    void flushVa(Addr vpage);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return map_.size(); }

    /** Count a lookup outcome (maintained by the MMU). */
    void countHit() { ++hits_; }
    void countMiss() { ++misses_; }

  private:
    std::size_t capacity_;
    std::unordered_map<TlbKey, TlbEntry, TlbKeyHash> map_;
    std::deque<TlbKey> fifo_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_TLB_HH
