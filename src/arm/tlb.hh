/**
 * @file
 * A simple unified TLB caching completed translations (combined Stage-1 +
 * Stage-2), tagged by regime, VMID and ASID as on hardware.
 *
 * Implemented as a fixed-size set-associative array indexed by page number,
 * with per-set FIFO (round-robin) replacement. Flushes are O(1): entries
 * carry generation tags, and `flushAll`/`flushVmid` invalidate by bumping
 * the matching generation counter instead of erasing entries. `flushVa`
 * touches exactly one set (the index depends only on the page number, so
 * every tagging of a VA lives in the same set).
 */

#ifndef KVMARM_ARM_TLB_HH
#define KVMARM_ARM_TLB_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arm/pagetable.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

/** Translation regime a TLB entry belongs to. */
enum class TlbRegime : std::uint8_t
{
    Pl0Pl1, //!< kernel/user Stage-1 (+ Stage-2 when in a VM)
    Hyp,    //!< Hyp-mode Stage-1
};

struct TlbKey
{
    TlbRegime regime;
    std::uint8_t vmid;
    std::uint32_t asid;
    Addr vpage;

    bool operator==(const TlbKey &) const = default;
};

struct TlbEntry
{
    Addr ppage = 0;
    Perms s1Perms;      //!< Stage-1 permissions (identity when S1 off)
    Perms s2Perms;      //!< Stage-2 permissions (all-allow when S2 off)
    bool hasStage2 = false;
    bool device = false;
};

/** Set-associative TLB with generation-counter invalidation. */
class Tlb
{
  public:
    explicit Tlb(std::size_t capacity = 256);

    const TlbEntry *lookup(const TlbKey &key) const;
    void insert(const TlbKey &key, const TlbEntry &entry);

    void flushAll();
    void flushVmid(std::uint8_t vmid);
    void flushVa(Addr vpage);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Number of currently valid entries (diagnostics/tests; O(capacity)). */
    std::size_t size() const;

    /** Entries the array can hold (sets x ways). */
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Monotonic count of events that may invalidate a previously returned
     * entry: flushes of any kind, evictions, and in-place updates. Front
     * side caches (the MMU micro-TLB) snapshot this and drop their copy
     * when it moves, so they can never return state the TLB no longer
     * holds.
     */
    std::uint64_t epoch() const { return epoch_; }

    /** Count a lookup outcome (maintained by the MMU). */
    void countHit() { ++hits_; }
    void countMiss() { ++misses_; }

    /// @name Snapshot support (the owning Mmu drives these)
    ///
    /// The whole array is serialized — slots, replacement cursors, and
    /// generation/epoch counters — so a restored machine's TLB is warm in
    /// exactly the origin's state and every future hit/miss/eviction
    /// sequence is cycle-identical.
    /// @{
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);
    /// @}

  private:
    struct Slot
    {
        TlbKey key{};
        TlbEntry entry{};
        /** Valid iff globalGen == Tlb::globalGen_ and vmidGen ==
         *  Tlb::vmidGen_[key.vmid]. Zero-initialized slots are invalid
         *  because globalGen_ starts at 1 and only increments. */
        std::uint64_t globalGen = 0;
        std::uint64_t vmidGen = 0;
    };

    bool
    valid(const Slot &s) const
    {
        return s.globalGen == globalGen_ && s.vmidGen == vmidGen_[s.key.vmid];
    }

    std::size_t setIndex(Addr vpage) const
    {
        return (vpage >> kPageShift) & setMask_;
    }

    std::size_t numSets_;
    std::size_t ways_;
    std::size_t setMask_;
    std::vector<Slot> slots_;           //!< set-major, numSets_ * ways_
    std::vector<std::uint8_t> nextWay_; //!< per-set FIFO replacement cursor
    std::uint64_t globalGen_ = 1;
    std::array<std::uint64_t, 256> vmidGen_{};
    std::uint64_t epoch_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_TLB_HH
