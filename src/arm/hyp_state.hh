/**
 * @file
 * Hyp-mode configuration state: the lowvisor's "own dedicated configuration
 * registers only for use in Hyp mode" (paper §3.2). This state is never
 * part of the VM-visible context and is not context switched; it is what
 * the world switch *programs* to change worlds.
 */

#ifndef KVMARM_ARM_HYP_STATE_HH
#define KVMARM_ARM_HYP_STATE_HH

#include <cstdint>

#include "sim/types.hh"

namespace kvmarm::arm {

/** Hyp Configuration Register (HCR) trap bits used by KVM/ARM. */
struct Hcr
{
    bool vm = false;  //!< enable Stage-2 translation for PL0/PL1
    bool swio = false; //!< trap set/way cache operations
    bool imo = false; //!< physical IRQs route to Hyp mode
    bool fmo = false; //!< physical FIQs route to Hyp mode
    bool twi = false; //!< trap WFI
    bool twe = false; //!< trap WFE
    bool tsc = false; //!< trap SMC
    bool tac = false; //!< trap ACTLR accesses
    bool tidcp = false; //!< trap implementation-defined CP15 (L2CTLR...)
    bool vi = false;  //!< assert a virtual IRQ to the guest (software
                      //!< injection path used when there is no VGIC)

    bool operator==(const Hcr &) const = default;
};

/** Full Hyp-mode control state of one physical CPU. */
struct HypState
{
    Hcr hcr;

    /** Stage-2 translation table base + VMID (VTTBR). */
    std::uint64_t vttbr = 0;

    /** Hyp-mode Stage-1 translation table base (HTTBR). */
    Addr httbr = 0;

    /** Hyp-mode MMU enable (HSCTLR.M). */
    bool hsctlrM = false;

    /** Hyp debug config: trap CP14 debug/trace accesses (HDCR.TDE etc.). */
    bool trapCp14 = false;

    /** Trap VFP/coprocessor accesses for lazy FP switching (HCPTR). */
    bool trapFpu = false;

    /** CNTHCTL: PL1 access to the physical counter/timer. When false,
     *  kernel-mode physical timer accesses trap to Hyp. */
    bool pl1PhysTimerAccess = true;

    /** Virtual counter offset: CNTVCT = CNTPCT - CNTVOFF. */
    std::uint64_t cntvoff = 0;

    /** Hyp stack pointer and Hyp-local thread register (HTPIDR): the
     *  lowvisor keeps its per-CPU data pointer here. */
    std::uint32_t hypSp = 0;
    std::uint32_t htpidr = 0;

    /** VMID currently programmed (bits of VTTBR). */
    std::uint16_t vmid() const { return (vttbr >> 48) & 0xff; }
};

/** Number of HCR trap-control knobs written during a world switch; the
 *  cost model charges one system-register write per knob group. */
inline constexpr unsigned kWorldSwitchTrapConfigWrites = 5;

} // namespace kvmarm::arm

#endif // KVMARM_ARM_HYP_STATE_HH
