#include "arm/gic.hh"

#include "arm/machine.hh"
#include "sim/logging.hh"

namespace kvmarm::arm {

namespace {

/** Default priority for unconfigured interrupts. */
constexpr std::uint8_t kDefaultPrio = 0xA0;

} // namespace

GicDistributor::GicDistributor(ArmMachine &machine, unsigned num_cpus)
    : machine_(machine), numCpus_(num_cpus), banks_(num_cpus),
      pendingCache_(num_cpus)
{
    priority_.fill(kDefaultPrio);
    targets_.fill(0x01); // SPIs target CPU0 until reconfigured
    for (Bank &b : banks_)
        b.priority.fill(kDefaultPrio);
}

Cycles
GicDistributor::accessLatency() const
{
    return machine_.cost().gicdLatency;
}

void
GicDistributor::raiseSpi(IrqId irq, Cycles when)
{
    if (irq < kFirstSpi || irq >= kMaxIrqs)
        panic("GicDistributor::raiseSpi: bad irq %u", irq);
    CpuId target = routeSpi(irq);
    std::uint64_t token = nextInflightToken_++;
    std::uint64_t ev = machine_.cpuBase(target).events().schedule(
        when, [this, irq, token] { spiDelivered(irq, token); });
    inflight_.push_back({token, ev, target, false, irq, 0});
}

void
GicDistributor::spiDelivered(IrqId irq, std::uint64_t token)
{
    dropInflight(token);
    pending_[irq] = true;
    touch();
}

void
GicDistributor::sgiDelivered(CpuId target, IrqId sgi, CpuId src,
                             std::uint64_t token)
{
    dropInflight(token);
    setSgiPending(target, sgi, src);
}

void
GicDistributor::dropInflight(std::uint64_t token)
{
    for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
        if (it->token == token) {
            inflight_.erase(it);
            return;
        }
    }
    panic("GicDistributor: delivery fired for unknown in-flight token %llu",
          static_cast<unsigned long long>(token));
}

CpuId
GicDistributor::routeSpi(IrqId irq) const
{
    std::uint8_t mask = targets_[irq];
    for (CpuId c = 0; c < numCpus_; ++c) {
        if (mask & (1u << c))
            return c;
    }
    return 0;
}

void
GicDistributor::raisePpi(CpuId cpu, IrqId irq)
{
    if (irq >= kFirstSpi)
        panic("GicDistributor::raisePpi: %u is not a PPI/SGI", irq);
    banks_.at(cpu).ppiPending[irq] = true;
    touch();
}

void
GicDistributor::clearPpi(CpuId cpu, IrqId irq)
{
    banks_.at(cpu).ppiPending[irq] = false;
    touch();
}

void
GicDistributor::setSgiPending(CpuId target, IrqId sgi, CpuId source)
{
    banks_.at(target).sgiSources[sgi] |= (1u << source);
    touch();
}

void
GicDistributor::writeSgir(CpuId src, std::uint32_t value)
{
    unsigned filter = bits(value, 25, 24);
    std::uint8_t target_list = static_cast<std::uint8_t>(bits(value, 23, 16));
    IrqId sgi = static_cast<IrqId>(bits(value, 3, 0));

    std::uint8_t mask = 0;
    switch (filter) {
      case 0:
        mask = target_list;
        break;
      case 1: // all but self
        mask = static_cast<std::uint8_t>(((1u << numCpus_) - 1) & ~(1u << src));
        break;
      case 2: // self
        mask = static_cast<std::uint8_t>(1u << src);
        break;
      default:
        return;
    }

    Cycles now = machine_.cpuBase(src).now();
    for (CpuId t = 0; t < numCpus_; ++t) {
        if (!(mask & (1u << t)))
            continue;
        if (t == src) {
            setSgiPending(t, sgi, src);
        } else {
            std::uint64_t token = nextInflightToken_++;
            std::uint64_t ev = machine_.cpuBase(t).events().schedule(
                now + machine_.cost().ipiWire,
                [this, t, sgi, src, token] {
                    sgiDelivered(t, sgi, src, token);
                });
            inflight_.push_back({token, ev, t, true, sgi, src});
        }
    }
}

PendingIrq
GicDistributor::bestPending(CpuId cpu) const
{
    PendingCache &cache = pendingCache_.at(cpu);
    if (cache.version == version_)
        return cache.best;

    PendingIrq best;
    if (!enabled()) {
        cache = {version_, best};
        return best;
    }

    const Bank &bank = banks_.at(cpu);

    auto consider = [&](IrqId irq, std::uint8_t prio, CpuId source) {
        if (prio < best.priority ||
            (prio == best.priority && irq < best.irq)) {
            best = {irq, prio, source};
        }
    };

    for (IrqId sgi = 0; sgi < kNumSgis; ++sgi) {
        std::uint16_t sources = bank.sgiSources[sgi];
        if (sources && bank.enabled[sgi]) {
            CpuId src = 0;
            while (!(sources & (1u << src)))
                ++src;
            consider(sgi, bank.priority[sgi], src);
        }
    }
    for (IrqId ppi = kFirstPpi; ppi < kFirstSpi; ++ppi) {
        if (bank.ppiPending[ppi] && bank.enabled[ppi])
            consider(ppi, bank.priority[ppi], 0);
    }
    for (IrqId spi = kFirstSpi; spi < kMaxIrqs; ++spi) {
        if (pending_[spi] && enabled_[spi] &&
            (targets_[spi] & (1u << cpu))) {
            consider(spi, priority_[spi], 0);
        }
    }
    cache = {version_, best};
    return best;
}

void
GicDistributor::acknowledge(CpuId cpu, IrqId irq, CpuId source)
{
    Bank &bank = banks_.at(cpu);
    if (irq < kNumSgis)
        bank.sgiSources[irq] &= static_cast<std::uint16_t>(~(1u << source));
    else if (irq < kFirstSpi)
        bank.ppiPending[irq] = false;
    else if (irq < kMaxIrqs)
        pending_[irq] = false;
    touch();
}

std::uint64_t
GicDistributor::read(CpuId cpu, Addr offset, unsigned len)
{
    (void)len;
    Bank &bank = banks_.at(cpu);
    if (offset == gicd::CTLR)
        return ctlr_;
    if (offset == gicd::TYPER)
        return ((numCpus_ - 1) << 5) | (kMaxIrqs / 32 - 1);
    if (offset >= gicd::ISENABLER && offset < gicd::ISENABLER + 0x80) {
        unsigned word = (offset - gicd::ISENABLER) / 4;
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 32; ++i) {
            IrqId irq = word * 32 + i;
            if (irq >= kMaxIrqs)
                break;
            bool en = irq < kFirstSpi ? bank.enabled[irq] : enabled_[irq];
            v |= en ? (1u << i) : 0;
        }
        return v;
    }
    if (offset >= gicd::IPRIORITYR && offset < gicd::IPRIORITYR + kMaxIrqs) {
        IrqId irq = static_cast<IrqId>(offset - gicd::IPRIORITYR);
        return irq < kFirstSpi ? bank.priority[irq] : priority_[irq];
    }
    if (offset >= gicd::ITARGETSR && offset < gicd::ITARGETSR + kMaxIrqs) {
        IrqId irq = static_cast<IrqId>(offset - gicd::ITARGETSR);
        return irq < kFirstSpi ? (1u << cpu) : targets_[irq];
    }
    if (offset >= gicd::ISPENDR && offset < gicd::ISPENDR + 0x80) {
        unsigned word = (offset - gicd::ISPENDR) / 4;
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 32; ++i) {
            IrqId irq = word * 32 + i;
            if (irq >= kMaxIrqs)
                break;
            bool p;
            if (irq < kNumSgis)
                p = bank.sgiSources[irq] != 0;
            else if (irq < kFirstSpi)
                p = bank.ppiPending[irq];
            else
                p = pending_[irq];
            v |= p ? (1u << i) : 0;
        }
        return v;
    }
    return 0;
}

void
GicDistributor::write(CpuId cpu, Addr offset, std::uint64_t value,
                      unsigned len)
{
    (void)len;
    touch(); // every register write may change what is pending for whom
    Bank &bank = banks_.at(cpu);
    std::uint32_t v = static_cast<std::uint32_t>(value);
    if (offset == gicd::CTLR) {
        ctlr_ = v;
        return;
    }
    if (offset == gicd::SGIR) {
        writeSgir(cpu, v);
        return;
    }
    if (offset >= gicd::ISENABLER && offset < gicd::ISENABLER + 0x80) {
        unsigned word = (offset - gicd::ISENABLER) / 4;
        for (unsigned i = 0; i < 32; ++i) {
            IrqId irq = word * 32 + i;
            if (irq >= kMaxIrqs || !(v & (1u << i)))
                continue;
            if (irq < kFirstSpi)
                bank.enabled[irq] = true;
            else
                enabled_[irq] = true;
        }
        return;
    }
    if (offset >= gicd::ICENABLER && offset < gicd::ICENABLER + 0x80) {
        unsigned word = (offset - gicd::ICENABLER) / 4;
        for (unsigned i = 0; i < 32; ++i) {
            IrqId irq = word * 32 + i;
            if (irq >= kMaxIrqs || !(v & (1u << i)))
                continue;
            if (irq < kFirstSpi)
                bank.enabled[irq] = false;
            else
                enabled_[irq] = false;
        }
        return;
    }
    if (offset >= gicd::ICPENDR && offset < gicd::ICPENDR + 0x80) {
        unsigned word = (offset - gicd::ICPENDR) / 4;
        for (unsigned i = 0; i < 32; ++i) {
            IrqId irq = word * 32 + i;
            if (irq >= kMaxIrqs || !(v & (1u << i)))
                continue;
            if (irq < kNumSgis)
                bank.sgiSources[irq] = 0;
            else if (irq < kFirstSpi)
                bank.ppiPending[irq] = false;
            else
                pending_[irq] = false;
        }
        return;
    }
    if (offset >= gicd::IPRIORITYR && offset < gicd::IPRIORITYR + kMaxIrqs) {
        IrqId irq = static_cast<IrqId>(offset - gicd::IPRIORITYR);
        std::uint8_t prio = static_cast<std::uint8_t>(v);
        if (irq < kFirstSpi)
            bank.priority[irq] = prio;
        else
            priority_[irq] = prio;
        return;
    }
    if (offset >= gicd::ITARGETSR && offset < gicd::ITARGETSR + kMaxIrqs) {
        IrqId irq = static_cast<IrqId>(offset - gicd::ITARGETSR);
        if (irq >= kFirstSpi)
            targets_[irq] = static_cast<std::uint8_t>(v);
        return;
    }
    // ICFGR and other writes accepted and ignored (edge/level config is
    // not modelled; sources behave as edge-triggered once pending).
}

void
GicDistributor::saveState(SnapshotWriter &w)
{
    w.u32(ctlr_);
    w.pod(enabled_);
    w.pod(pending_);
    w.pod(priority_);
    w.pod(targets_);
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &b : banks_)
        w.pod(b);
    w.u32(static_cast<std::uint32_t>(inflight_.size()));
    for (const Inflight &f : inflight_)
        w.pod(f);
    w.u64(nextInflightToken_);
}

void
GicDistributor::restoreState(SnapshotReader &r)
{
    ctlr_ = r.u32();
    r.pod(enabled_);
    r.pod(pending_);
    r.pod(priority_);
    r.pod(targets_);
    std::uint32_t nbanks = r.u32();
    if (nbanks != banks_.size())
        fatal("gicd: snapshot has %u banks, machine has %zu", nbanks,
              banks_.size());
    for (Bank &b : banks_)
        r.pod(b);
    inflight_.clear();
    std::uint32_t nflight = r.u32();
    for (std::uint32_t i = 0; i < nflight; ++i) {
        Inflight f;
        r.pod(f);
        inflight_.push_back(f);
    }
    nextInflightToken_ = r.u64();
    touch(); // drop any memoized bestPending from before the restore
}

void
GicDistributor::snapshotRebind()
{
    // The in-flight deliveries' events were recreated (callback-less) by
    // their target CPUs' queue restores; give each one back the exact
    // callback raiseSpi/writeSgir installed originally.
    for (const Inflight &f : inflight_) {
        auto &q = machine_.cpuBase(f.target).events();
        if (f.isSgi) {
            q.claim(f.eventId,
                    [this, t = f.target, sgi = f.irq, src = f.src,
                     token = f.token] { sgiDelivered(t, sgi, src, token); });
        } else {
            q.claim(f.eventId, [this, irq = f.irq, token = f.token] {
                spiDelivered(irq, token);
            });
        }
    }
}

GicCpuInterface::GicCpuInterface(ArmMachine &machine, GicDistributor &dist,
                                 unsigned num_cpus)
    : machine_(machine), dist_(dist), banks_(num_cpus)
{
}

void
GicCpuInterface::saveState(SnapshotWriter &w)
{
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &b : banks_) {
        w.b(b.enabled);
        w.u8(b.pmr);
        w.u32(static_cast<std::uint32_t>(b.activeStack.size()));
        for (const PendingIrq &p : b.activeStack)
            w.pod(p);
    }
}

void
GicCpuInterface::restoreState(SnapshotReader &r)
{
    std::uint32_t nbanks = r.u32();
    if (nbanks != banks_.size())
        fatal("gicc: snapshot has %u banks, machine has %zu", nbanks,
              banks_.size());
    for (Bank &b : banks_) {
        b.enabled = r.b();
        b.pmr = r.u8();
        b.activeStack.clear();
        std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            PendingIrq p;
            r.pod(p);
            b.activeStack.push_back(p);
        }
    }
}

Cycles
GicCpuInterface::accessLatency() const
{
    return machine_.cost().giccLatency;
}

std::uint8_t
GicCpuInterface::runningPriority(const Bank &b) const
{
    return b.activeStack.empty() ? 0xFF : b.activeStack.back().priority;
}

bool
GicCpuInterface::irqLineHigh(CpuId cpu) const
{
    const Bank &b = banks_.at(cpu);
    if (!b.enabled || !dist_.enabled())
        return false;
    PendingIrq best = dist_.bestPending(cpu);
    return best.irq != kSpuriousIrq && best.priority < b.pmr &&
           best.priority < runningPriority(b);
}

IrqId
GicCpuInterface::acknowledgeIrq(CpuId cpu)
{
    Bank &b = banks_.at(cpu);
    PendingIrq best = dist_.bestPending(cpu);
    if (best.irq == kSpuriousIrq || best.priority >= b.pmr ||
        best.priority >= runningPriority(b)) {
        return kSpuriousIrq;
    }
    dist_.acknowledge(cpu, best.irq, best.source);
    b.activeStack.push_back(best);
    // IAR encodes the source CPU of an SGI in bits [12:10].
    return best.irq | (best.irq < kNumSgis ? (best.source << 10) : 0);
}

void
GicCpuInterface::endOfInterrupt(CpuId cpu, std::uint32_t value)
{
    Bank &b = banks_.at(cpu);
    IrqId irq = value & 0x3FF;
    for (auto it = b.activeStack.rbegin(); it != b.activeStack.rend(); ++it) {
        if (it->irq == irq) {
            b.activeStack.erase(std::next(it).base());
            return;
        }
    }
    warn("gicc: EOI for inactive irq %u on cpu%u", irq, cpu);
}

std::uint64_t
GicCpuInterface::read(CpuId cpu, Addr offset, unsigned len)
{
    (void)len;
    Bank &b = banks_.at(cpu);
    switch (offset) {
      case gicc::CTLR:
        return b.enabled ? 1 : 0;
      case gicc::PMR:
        return b.pmr;
      case gicc::IAR:
        return acknowledgeIrq(cpu);
      case gicc::RPR:
        return runningPriority(b);
      case gicc::HPPIR:
        return dist_.bestPending(cpu).irq;
      default:
        return 0;
    }
}

void
GicCpuInterface::write(CpuId cpu, Addr offset, std::uint64_t value,
                       unsigned len)
{
    (void)len;
    Bank &b = banks_.at(cpu);
    switch (offset) {
      case gicc::CTLR:
        b.enabled = value & 1;
        break;
      case gicc::PMR:
        b.pmr = static_cast<std::uint8_t>(value);
        break;
      case gicc::EOIR:
        endOfInterrupt(cpu, static_cast<std::uint32_t>(value));
        break;
      default:
        break;
    }
}

} // namespace kvmarm::arm
