/**
 * @file
 * The ARM CPU model. Simulated software (guest kernels, the host kernel,
 * the hypervisor) issues architectural operations through this class; the
 * CPU consults its mode, the Hyp trap configuration and the MMU to either
 * perform them — charging their native cost — or raise an exception.
 *
 * Exceptions are serviced *synchronously*: a trap calls the installed
 * Hyp-mode vectors (the lowvisor), which may world switch, run host and
 * user-space code inline, and world switch back before the trapped
 * operation resumes — the transparency property of full virtualization.
 */

#ifndef KVMARM_ARM_CPU_HH
#define KVMARM_ARM_CPU_HH

#include <array>
#include <cstdint>

#include "arm/hsr.hh"
#include "arm/hyp_state.hh"
#include "check/invariants.hh"
#include "arm/mmu.hh"
#include "arm/modes.hh"
#include "arm/registers.hh"
#include "arm/timer.hh"
#include "arm/vectors.hh"
#include "sim/cpu_base.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

class ArmMachine;

/** One Cortex-A15-class core. */
class ArmCpu : public CpuBase
{
  public:
    /** VA boundary between the TTBR0 (user) and TTBR1 (kernel) spaces
     *  when TTBCR enables the split: the familiar 3 GB / 1 GB layout. */
    static constexpr Addr kKernelSplit = 0xC0000000;

    ArmCpu(CpuId id, ArmMachine &machine);

    ArmMachine &machine();
    const ArmMachine &machine() const;

    /// @name Architectural state
    /// @{
    Mode mode() const { return mode_; }
    /** Set the current mode; legal only for PL1/PL2 software models and
     *  the world switch. */
    void
    setMode(Mode m)
    {
        KVMARM_CHECK_ON(checkEngine_,
                        modeChange(&armMachine_, id_, mode_, m, hyp_.hcr.vm));
        mode_ = m;
    }

    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }

    /** Raw Hyp configuration state: hardware consulting (or tests
     *  arranging) its own state. Software models must use hypSys(). */
    HypState &hyp() { return hyp_; }
    const HypState &hyp() const { return hyp_; }

    /** Hyp configuration state accessed *as software* (an MRC/MCR to the
     *  virtualization-extension registers): raises the privilege
     *  invariant hook, which flags any access outside Hyp mode. */
    HypState &
    hypSys(const char *reg)
    {
        KVMARM_CHECK_ON(checkEngine_, hypAccess(id_, mode_, reg));
        return hyp_;
    }

    Mmu &mmu() { return mmu_; }

    bool irqMasked() const { return irqMasked_; }
    void setIrqMasked(bool m) { irqMasked_ = m; }
    /// @}

    /// @name Software vectors
    /// @{
    void setHypVectors(HypVectors *v) { hypVectors_ = v; }
    HypVectors *hypVectors() { return hypVectors_; }
    void setOsVectors(OsVectors *v) { osVectors_ = v; }
    OsVectors *osVectors() { return osVectors_; }
    /// @}

    /// @name Operations issued by simulated software
    /// @{
    /** Execute for @p c cycles without architectural side effects. */
    void compute(Cycles c) { addCycles(c); }

    /** Load through the MMU; Stage-2 faults trap to Hyp (and may be
     *  completed by MMIO emulation), Stage-1 faults go to the current
     *  kernel. @p isv models whether the instruction populates the MMIO
     *  syndrome (paper §4). */
    std::uint64_t memRead(Addr va, unsigned len = 4, bool isv = true);

    /** Store through the MMU (same fault behaviour as memRead). */
    void memWrite(Addr va, std::uint64_t value, unsigned len = 4,
                  bool isv = true);

    /** Touch @p va (translate + fault handling) without data movement. */
    void memTouch(Addr va, Access acc);

    /** Supervisor call from user mode into the current kernel. */
    void svc(std::uint32_t num);

    /** Hypercall from kernel mode into Hyp mode. */
    void hvc(std::uint32_t imm);

    /** Secure monitor call; trapped when HCR.TSC is set. */
    void smc();

    /** Wait for interrupt: trapped in VMs (HCR.TWI), idles natively. */
    void wfi();

    /** A VFP/NEON operation of @p c cycles; traps when lazy FP switching
     *  has FP disabled (HCPTR). */
    void fpOp(Cycles c);

    /** Access a sensitive register/instruction (Table 1's
     *  trap-and-emulate group). Returns the read value for reads. */
    std::uint32_t sensitiveOp(SensitiveOp op, std::uint32_t value = 0);

    /** Read the physical counter; PL1 access is gated by CNTHCTL. */
    std::uint64_t readCntpct();

    /** Read the virtual counter (CNTVCT); never traps when the hardware
     *  has virtual timer support. */
    std::uint64_t readCntvct();

    TimerRegs readPhysTimer();
    void writePhysTimer(const TimerRegs &regs);
    TimerRegs readVirtTimer();
    void writeVirtTimer(const TimerRegs &regs);

    /** Program CNTVOFF; Hyp mode only. */
    void writeCntvoff(std::uint64_t off);

    /** Context-switched CP15 registers (no traps, Table 1 top group). */
    std::uint32_t readCp15(CtrlReg r);
    void writeCp15(CtrlReg r, std::uint32_t v);
    void writeCp15_64(CtrlReg lo, CtrlReg hi, std::uint64_t v);

    /** TLB invalidate-all for the current translation regime. */
    void tlbiAll();

    /** TLB invalidate by VA (TLBIMVA). */
    void tlbiVa(Addr va);
    /// @}

    /// @name Trap plumbing
    /// @{
    /** Take a synchronous trap into Hyp mode (also used by tests). */
    void trapToHyp(const Hsr &hsr);

    /** Complete a trapped MMIO access with emulation: the faulting
     *  load/store does not retry; loads return @p value. */
    void completeMmio(std::uint64_t value = 0);

    /**
     * Choose the mode/mask the ERET at the end of the current Hyp trap
     * returns to (hardware: the handler writes SPSR_hyp). The world switch
     * uses this to land in the other world. Defaults to the trapped-from
     * state.
     */
    void
    setHypReturn(Mode m, bool irq_masked)
    {
        hypReturnMode_ = m;
        hypReturnMask_ = irq_masked;
    }

    /** Mode the current Hyp trap came from (SPSR_hyp.M). */
    Mode hypTrappedMode() const { return hypTrappedMode_; }
    bool hypTrappedIrqMask() const { return hypTrappedMask_; }

    /** Provide the result of a trapped system-register read. */
    void setTrappedReadValue(std::uint64_t v) { trappedReadValue_ = v; }
    /// @}

    /// @name CpuBase
    /// @{
    bool interruptPending() const override;
    void serviceInterrupts() override;
    /// @}

    /// @name Snapshottable (extends CpuBase with the ARM register state)
    /// @{
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

    /// @name Implementation-defined hardware registers (ACTLR group)
    /// @{
    std::uint32_t actlr = 0x00000041;
    std::uint32_t l2ctlr = 0x02020000;
    std::uint32_t l2ectlr = 0;
    std::uint32_t cp14Dbg = 0;
    /// @}

  private:
    void takeIrqToKernel();
    bool takePageFaultToKernel(Addr va, bool write, Access acc);
    std::uint64_t accessMem(Addr va, bool write, std::uint64_t value,
                            unsigned len, bool isv);

    ArmMachine &armMachine_;
    /** The owning machine's invariant engine (null when the check layer is
     *  compiled out), cached so the inline hooks above cost one pointer
     *  load + branch without needing the complete ArmMachine type. */
    check::InvariantEngine *checkEngine_;
    Mode mode_ = Mode::Svc;
    bool irqMasked_ = true; //!< CPSR.I; kernels unmask after boot
    RegisterFile regs_;
    HypState hyp_;
    Mmu mmu_;
    HypVectors *hypVectors_ = nullptr;
    OsVectors *osVectors_ = nullptr;

    bool mmioPending_ = false;
    std::uint64_t mmioValue_ = 0;
    std::uint64_t trappedReadValue_ = 0;

    /// Call-site caches for counters bumped on every trap/interrupt.
    std::array<CachedCounter, kNumExcClasses> statTrap_;
    CachedCounter statFaultStage1_;
    CachedCounter statWfiNative_;
    CachedCounter statIrqToHyp_;
    CachedCounter statIrqVirtual_;
    CachedCounter statIrqToKernel_;

    bool inIrqService_ = false;
    std::uint64_t interruptsTaken_ = 0;
    Mode hypReturnMode_ = Mode::Svc;
    bool hypReturnMask_ = false;
    Mode hypTrappedMode_ = Mode::Svc;
    bool hypTrappedMask_ = false;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_CPU_HH
