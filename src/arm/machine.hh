/**
 * @file
 * The assembled ARM machine: CPUs, RAM, bus, GIC (+VGIC), generic timers.
 * The memory map is a clean Arndale-like layout; the same map doubles as
 * the guest-physical (IPA) layout of VMs, with the twist that a VM's view
 * of the GICC address is Stage-2 mapped to the physical GICV (paper §3.5).
 */

#ifndef KVMARM_ARM_MACHINE_HH
#define KVMARM_ARM_MACHINE_HH

#include <memory>
#include <vector>

#include "arm/cost.hh"
#include "arm/cpu.hh"
#include "arm/gic.hh"
#include "arm/timer.hh"
#include "arm/vgic.hh"
#include "mem/bus.hh"
#include "mem/phys_mem.hh"
#include "sim/machine_base.hh"

namespace kvmarm::arm {

/** A multicore ARMv7 machine with virtualization extensions. */
class ArmMachine : public MachineBase
{
  public:
    struct Config
    {
        unsigned numCpus = 2;
        Addr ramSize = 512 * kMiB;
        bool hwVgic = true;    //!< GICv2 virtualization extensions present
        bool hwVtimers = true; //!< generic-timer virtualization present
        /** CPU clock in Hz; Arndale's Cortex-A15 runs at 1.7 GHz. Used to
         *  convert cycles to seconds for the energy model. */
        double clockHz = 1.7e9;
        ArmCostModel cost;
    };

    /// @name Physical memory map
    /// @{
    static constexpr Addr kGicdBase = 0x08000000;
    static constexpr Addr kGiccBase = 0x08010000;
    static constexpr Addr kGicvBase = 0x08020000;
    static constexpr Addr kGichBase = 0x08030000;
    static constexpr Addr kUartBase = 0x09000000;
    static constexpr Addr kVirtioBase = 0x0A000000; //!< 0x1000 per slot
    static constexpr Addr kGicRegionSize = 0x1000;
    static constexpr Addr kRamBase = 0x80000000;
    /// @}

    ArmMachine() : ArmMachine(Config{}) {}
    explicit ArmMachine(const Config &config);

    const Config &config() const { return config_; }
    const ArmCostModel &cost() const { return config_.cost; }

    ArmCpu &cpu(CpuId id) { return *cpus_.at(id); }
    PhysMem &ram() { return ram_; }
    Bus &bus() { return bus_; }
    GicDistributor &gicd() { return gicd_; }
    GicCpuInterface &gicc() { return gicc_; }
    VgicHypInterface &gich() { return gich_; }
    const VgicHypInterface &gich() const { return gich_; }
    VgicCpuInterface &gicv() { return gicv_; }
    GenericTimer &timer() { return timer_; }

    /** Seconds of simulated time corresponding to @p c cycles. */
    double seconds(Cycles c) const { return double(c) / config_.clockHz; }

  private:
    Config config_;
    PhysMem ram_;
    Bus bus_;
    GicDistributor gicd_;
    GicCpuInterface gicc_;
    VgicHypInterface gich_;
    VgicCpuInterface gicv_;
    GenericTimer timer_;
    std::vector<std::unique_ptr<ArmCpu>> cpus_;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_MACHINE_HH
