#include "arm/vgic.hh"

#include "arm/machine.hh"
#include "check/invariants.hh"
#include "sim/logging.hh"

namespace kvmarm::arm {

std::uint32_t
ListReg::pack() const
{
    return (virq & 0x3FF) | ((pirq & 0x3FF) << 10) |
           ((source & 0x7) << 20) | (std::uint32_t(priority) << 23) |
           (std::uint32_t(state) << 28) | (hw ? (1u << 31) : 0);
}

ListReg
ListReg::unpack(std::uint32_t raw)
{
    ListReg lr;
    lr.virq = raw & 0x3FF;
    lr.pirq = (raw >> 10) & 0x3FF;
    lr.source = (raw >> 20) & 0x7;
    lr.priority = static_cast<std::uint8_t>((raw >> 23) & 0x1F);
    lr.state = static_cast<LrState>((raw >> 28) & 0x3);
    lr.hw = raw & (1u << 31);
    return lr;
}

VgicHypInterface::VgicHypInterface(ArmMachine &machine, GicDistributor &dist,
                                   unsigned num_cpus)
    : machine_(machine), dist_(dist), banks_(num_cpus)
{
}

Cycles
VgicHypInterface::accessLatency() const
{
    return machine_.cost().gichLatency;
}

std::uint32_t
VgicHypInterface::emptyLrMask(CpuId cpu) const
{
    const VgicBank &b = banks_.at(cpu);
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < kNumListRegs; ++i) {
        if (b.lr[i].state == LrState::Empty)
            mask |= 1u << i;
    }
    return mask;
}

bool
VgicHypInterface::virqLineHigh(CpuId cpu) const
{
    const VgicBank &b = banks_.at(cpu);
    if (!b.en || !b.vmEnabled)
        return false;
    for (const ListReg &lr : b.lr) {
        if ((lr.state == LrState::Pending ||
             lr.state == LrState::PendingActive) &&
            lr.priority < b.vmPmr) {
            return true;
        }
    }
    return false;
}

void
VgicHypInterface::checkMaintenance(CpuId cpu)
{
    const VgicBank &b = banks_.at(cpu);
    if (b.en && b.uie &&
        emptyLrMask(cpu) == (1u << kNumListRegs) - 1) {
        KVMARM_CHECK_ON(machine_.checkEngine(), maintenanceIrq(cpu, b));
        dist_.raisePpi(cpu, kMaintenancePpi);
    }
}

std::uint64_t
VgicHypInterface::read(CpuId cpu, Addr offset, unsigned len)
{
    (void)len;
    VgicBank &b = banks_.at(cpu);
    switch (offset) {
      case gich::HCR:
        return (b.en ? 1u : 0) | (b.uie ? 2u : 0);
      case gich::VTR:
        return kNumListRegs - 1;
      case gich::VMCR:
        return (b.vmEnabled ? 1u : 0) | (std::uint32_t(b.vmPmr) << 24);
      case gich::MISR:
        return (b.uie && emptyLrMask(cpu) == (1u << kNumListRegs) - 1)
                   ? 2u // U bit: underflow
                   : 0u;
      case gich::EISR0:
      case gich::EISR1:
        return 0;
      case gich::ELRSR0:
        return emptyLrMask(cpu);
      case gich::ELRSR1:
        return 0;
      case gich::APR0:
      case gich::APR1:
      case gich::APR2:
      case gich::APR3:
        return b.apr[(offset - gich::APR0) / 4];
      default:
        if (offset >= gich::LR0 && offset < gich::LR0 + 4 * kNumListRegs)
            return b.lr[(offset - gich::LR0) / 4].pack();
        // VMCR alias words in the save list read as zero.
        return 0;
    }
}

void
VgicHypInterface::write(CpuId cpu, Addr offset, std::uint64_t value,
                        unsigned len)
{
    (void)len;
    VgicBank &b = banks_.at(cpu);
    std::uint32_t v = static_cast<std::uint32_t>(value);
    switch (offset) {
      case gich::HCR:
        b.en = v & 1;
        b.uie = v & 2;
        return;
      case gich::VMCR:
        b.vmEnabled = v & 1;
        b.vmPmr = static_cast<std::uint8_t>(v >> 24);
        return;
      case gich::APR0:
      case gich::APR1:
      case gich::APR2:
      case gich::APR3:
        b.apr[(offset - gich::APR0) / 4] = v;
        return;
      default:
        if (offset >= gich::LR0 && offset < gich::LR0 + 4 * kNumListRegs) {
            unsigned idx = (offset - gich::LR0) / 4;
            b.lr[idx] = ListReg::unpack(v);
            KVMARM_CHECK_ON(machine_.checkEngine(), vgicLrWrite(cpu, idx, b));
            return;
        }
        // VTR/MISR/EISR/ELRSR and alias words are read-only; ignore.
        return;
    }
}

VgicCpuInterface::VgicCpuInterface(ArmMachine &machine,
                                   VgicHypInterface &hyp)
    : machine_(machine), hyp_(hyp)
{
}

Cycles
VgicCpuInterface::accessLatency() const
{
    return machine_.cost().gicvLatency;
}

IrqId
VgicCpuInterface::acknowledgeVirq(CpuId cpu)
{
    VgicBank &b = hyp_.bank(cpu);
    if (!b.en || !b.vmEnabled)
        return kSpuriousIrq;

    int best = -1;
    for (unsigned i = 0; i < kNumListRegs; ++i) {
        const ListReg &lr = b.lr[i];
        if (lr.state != LrState::Pending &&
            lr.state != LrState::PendingActive)
            continue;
        if (lr.priority >= b.vmPmr)
            continue;
        if (best < 0 || lr.priority < b.lr[best].priority)
            best = static_cast<int>(i);
    }
    if (best < 0)
        return kSpuriousIrq;

    ListReg &lr = b.lr[best];
    lr.state = (lr.state == LrState::Pending) ? LrState::Active
                                              : LrState::PendingActive;
    return lr.virq | (lr.virq < kNumSgis ? (lr.source << 10) : 0);
}

void
VgicCpuInterface::endOfVirq(CpuId cpu, std::uint32_t value)
{
    VgicBank &b = hyp_.bank(cpu);
    IrqId virq = value & 0x3FF;
    for (ListReg &lr : b.lr) {
        if (lr.virq != virq)
            continue;
        if (lr.state == LrState::Active) {
            lr = ListReg{}; // now empty
            hyp_.checkMaintenance(cpu);
            return;
        }
        if (lr.state == LrState::PendingActive) {
            lr.state = LrState::Pending;
            return;
        }
    }
    warn("gicv: EOI for inactive virq %u on cpu%u", virq, cpu);
}

std::uint64_t
VgicCpuInterface::read(CpuId cpu, Addr offset, unsigned len)
{
    (void)len;
    VgicBank &b = hyp_.bank(cpu);
    switch (offset) {
      case gicc::CTLR:
        return b.vmEnabled ? 1 : 0;
      case gicc::PMR:
        return b.vmPmr;
      case gicc::IAR:
        return acknowledgeVirq(cpu);
      case gicc::HPPIR: {
        IrqId best = kSpuriousIrq;
        std::uint8_t prio = 0xFF;
        for (const ListReg &lr : b.lr) {
            if ((lr.state == LrState::Pending ||
                 lr.state == LrState::PendingActive) &&
                lr.priority < prio) {
                best = lr.virq;
                prio = lr.priority;
            }
        }
        return best;
      }
      default:
        return 0;
    }
}

void
VgicCpuInterface::write(CpuId cpu, Addr offset, std::uint64_t value,
                        unsigned len)
{
    (void)len;
    VgicBank &b = hyp_.bank(cpu);
    switch (offset) {
      case gicc::CTLR:
        b.vmEnabled = value & 1;
        break;
      case gicc::PMR:
        b.vmPmr = static_cast<std::uint8_t>(value);
        break;
      case gicc::EOIR:
        endOfVirq(cpu, static_cast<std::uint32_t>(value));
        break;
      default:
        break;
    }
}

void
VgicHypInterface::saveState(SnapshotWriter &w)
{
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const VgicBank &b : banks_)
        w.pod(b);
}

void
VgicHypInterface::restoreState(SnapshotReader &r)
{
    std::uint32_t nbanks = r.u32();
    if (nbanks != banks_.size())
        fatal("gich: snapshot has %u banks, machine has %zu", nbanks,
              banks_.size());
    for (VgicBank &b : banks_)
        r.pod(b);
}

} // namespace kvmarm::arm
