#include "arm/pagetable.hh"

#include "sim/logging.hh"

namespace kvmarm::arm {

const char *
faultTypeName(FaultType f)
{
    switch (f) {
      case FaultType::None: return "none";
      case FaultType::Translation: return "translation";
      case FaultType::AccessFlag: return "access-flag";
      case FaultType::Permission: return "permission";
      case FaultType::BadFormat: return "bad-format";
      case FaultType::Bus: return "bus";
    }
    return "?";
}

unsigned
ptIndex(Addr va, int level)
{
    switch (level) {
      case 1:
        return (va >> 30) & 0x3;
      case 2:
        return (va >> 21) & 0x1FF;
      case 3:
        return (va >> 12) & 0x1FF;
      default:
        panic("ptIndex: bad level %d", level);
    }
}

std::uint64_t
encodeLeaf(Addr pa, const Perms &p, PtFormat fmt)
{
    std::uint64_t d = desc::kValid | desc::kTable | (pa & desc::kAddrMask);
    switch (fmt) {
      case PtFormat::KernelLpae:
        d |= desc::kAf;
        if (p.user)
            d |= desc::kUserOrS2Read;
        if (!p.write)
            d |= desc::kRoOrS2Write;
        if (!p.exec)
            d |= desc::kXn;
        d |= (p.device ? 0ull : 1ull) << desc::kAttrShift;
        break;
      case PtFormat::HypLpae:
        // Hyp mode mandates AF set, no user bit, no nG (paper §2).
        if (p.user)
            panic("encodeLeaf: Hyp regime has no user mappings");
        d |= desc::kAf;
        if (!p.write)
            d |= desc::kRoOrS2Write;
        if (!p.exec)
            d |= desc::kXn;
        d |= (p.device ? 0ull : 1ull) << desc::kAttrShift;
        break;
      case PtFormat::Stage2:
        d |= desc::kAf;
        if (p.read)
            d |= desc::kUserOrS2Read;
        if (p.write)
            d |= desc::kRoOrS2Write;
        if (!p.exec)
            d |= desc::kXn;
        d |= (p.device ? 0ull : 0xFull) << desc::kAttrShift;
        break;
    }
    return d;
}

FaultType
decodeLeaf(std::uint64_t d, PtFormat fmt, Perms &out)
{
    std::uint64_t attr = (d & desc::kAttrMask) >> desc::kAttrShift;
    out = Perms{};
    out.exec = !(d & desc::kXn);
    out.device = attr == 0;

    switch (fmt) {
      case PtFormat::KernelLpae:
        if (!(d & desc::kAf))
            return FaultType::AccessFlag;
        out.user = d & desc::kUserOrS2Read;
        out.read = true;
        out.write = !(d & desc::kRoOrS2Write);
        break;
      case PtFormat::HypLpae:
        // The walker enforces the mandated bits: a descriptor built for
        // the kernel regime (user bit or nG set, or AF clear) is rejected.
        if (d & desc::kUserOrS2Read)
            return FaultType::BadFormat;
        if (d & desc::kNg)
            return FaultType::BadFormat;
        if (!(d & desc::kAf))
            return FaultType::BadFormat;
        out.user = false;
        out.read = true;
        out.write = !(d & desc::kRoOrS2Write);
        break;
      case PtFormat::Stage2:
        out.user = true;
        out.read = d & desc::kUserOrS2Read;
        out.write = d & desc::kRoOrS2Write;
        break;
    }
    return FaultType::None;
}

WalkResult
walkTable(Addr root, Addr va, PtFormat fmt,
          const std::function<std::optional<std::uint64_t>(Addr)> &reader)
{
    WalkResult res;
    Addr table = root;

    for (int level = 1; level <= 3; ++level) {
        res.level = level;
        Addr entry_pa = table + ptIndex(va, level) * 8;
        std::optional<std::uint64_t> d = reader(entry_pa);
        ++res.tableReads;
        if (!d) {
            res.fault = FaultType::Bus;
            return res;
        }
        if (!(*d & desc::kValid)) {
            res.fault = FaultType::Translation;
            return res;
        }
        bool is_table = *d & desc::kTable;
        if (level == 2 && !is_table) {
            // 2 MiB block leaf.
            res.fault = decodeLeaf(*d, fmt, res.perms);
            if (res.fault != FaultType::None)
                return res;
            res.pa = (*d & desc::kAddrMask & ~(kBlock2MSize - 1)) |
                     (va & (kBlock2MSize - 1));
            return res;
        }
        if (level == 3) {
            if (!is_table) {
                res.fault = FaultType::BadFormat;
                return res;
            }
            res.fault = decodeLeaf(*d, fmt, res.perms);
            if (res.fault != FaultType::None)
                return res;
            res.pa = (*d & desc::kAddrMask) | (va & (kPageSize - 1));
            return res;
        }
        if (!is_table) {
            // Blocks at L1 are not modelled.
            res.fault = FaultType::BadFormat;
            return res;
        }
        table = *d & desc::kAddrMask;
    }
    panic("walkTable: fell off the walk");
}

PageTableEditor::PageTableEditor(PtFormat fmt, Reader r, Writer w,
                                 PageAlloc alloc)
    : fmt_(fmt), read_(std::move(r)), write_(std::move(w)),
      alloc_(std::move(alloc))
{
}

Addr
PageTableEditor::newRoot()
{
    return alloc_();
}

Addr
PageTableEditor::ensureTable(Addr table, unsigned index)
{
    Addr entry_pa = table + index * 8;
    std::uint64_t d = read_(entry_pa);
    if (d & desc::kValid) {
        if (!(d & desc::kTable))
            fatal("PageTableEditor: page overlaps an existing 2M block");
        return d & desc::kAddrMask;
    }
    Addr next = alloc_();
    write_(entry_pa, desc::kValid | desc::kTable | (next & desc::kAddrMask));
    return next;
}

void
PageTableEditor::map(Addr root, Addr va, Addr pa, const Perms &p)
{
    if (!isPageAligned(va) || !isPageAligned(pa))
        fatal("PageTableEditor::map: unaligned va/pa");
    Addr l2 = ensureTable(root, ptIndex(va, 1));
    Addr l3 = ensureTable(l2, ptIndex(va, 2));
    write_(l3 + ptIndex(va, 3) * 8, encodeLeaf(pa, p, fmt_));
}

void
PageTableEditor::mapBlock2M(Addr root, Addr va, Addr pa, const Perms &p)
{
    if (va % kBlock2MSize || pa % kBlock2MSize)
        fatal("PageTableEditor::mapBlock2M: unaligned va/pa");
    Addr l2 = ensureTable(root, ptIndex(va, 1));
    std::uint64_t d = encodeLeaf(pa, p, fmt_);
    d &= ~desc::kTable; // block, not page
    write_(l2 + ptIndex(va, 2) * 8, d);
}

bool
PageTableEditor::unmap(Addr root, Addr va)
{
    std::uint64_t d1 = read_(root + ptIndex(va, 1) * 8);
    if (!(d1 & desc::kValid))
        return false;
    Addr l2 = d1 & desc::kAddrMask;
    std::uint64_t d2 = read_(l2 + ptIndex(va, 2) * 8);
    if (!(d2 & desc::kValid))
        return false;
    if (!(d2 & desc::kTable)) {
        // Unmapping inside a block: clear the whole block.
        write_(l2 + ptIndex(va, 2) * 8, 0);
        return true;
    }
    Addr l3 = d2 & desc::kAddrMask;
    Addr entry = l3 + ptIndex(va, 3) * 8;
    std::uint64_t d3 = read_(entry);
    if (!(d3 & desc::kValid))
        return false;
    write_(entry, 0);
    return true;
}

std::optional<Addr>
PageTableEditor::lookup(Addr root, Addr va) const
{
    WalkResult r = walkTable(root, va, fmt_,
                             [this](Addr pa) -> std::optional<std::uint64_t> {
                                 return read_(pa);
                             });
    if (!r.ok())
        return std::nullopt;
    return r.pa;
}

} // namespace kvmarm::arm
