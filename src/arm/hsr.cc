#include "arm/hsr.hh"

namespace kvmarm::arm {

const char *
excClassName(ExcClass ec)
{
    switch (ec) {
      case ExcClass::Unknown: return "unknown";
      case ExcClass::Wfi: return "wfi";
      case ExcClass::Cp15Trap: return "cp15";
      case ExcClass::Cp14Trap: return "cp14";
      case ExcClass::Hvc: return "hvc";
      case ExcClass::Smc: return "smc";
      case ExcClass::PrefetchAbort: return "iabt";
      case ExcClass::DataAbort: return "dabt";
      case ExcClass::Irq: return "irq";
      case ExcClass::TimerTrap: return "timer";
      case ExcClass::FpTrap: return "fp";
    }
    return "?";
}

} // namespace kvmarm::arm
