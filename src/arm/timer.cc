#include "arm/timer.hh"

#include "arm/cpu.hh"
#include "arm/gic.hh"
#include "arm/machine.hh"
#include "sim/logging.hh"

namespace kvmarm::arm {

GenericTimer::GenericTimer(ArmMachine &machine, unsigned num_cpus)
    : machine_(machine), banks_(num_cpus)
{
}

std::uint64_t
GenericTimer::physCount(CpuId cpu) const
{
    // The counter ticks at CPU frequency in this model (CNTFRQ == clk).
    return machine_.cpuBase(cpu).now();
}

std::uint64_t
GenericTimer::virtCount(CpuId cpu) const
{
    return physCount(cpu) - machine_.cpu(cpu).hyp().cntvoff;
}

void
GenericTimer::setPhys(CpuId cpu, const TimerRegs &regs)
{
    banks_.at(cpu).phys = regs;
    armOne(cpu, false);
}

void
GenericTimer::setVirt(CpuId cpu, const TimerRegs &regs)
{
    banks_.at(cpu).virt = regs;
    armOne(cpu, true);
}

bool
GenericTimer::physIstatus(CpuId cpu) const
{
    const Bank &b = banks_.at(cpu);
    return b.phys.enable && physCount(cpu) >= b.phys.cval;
}

bool
GenericTimer::virtIstatus(CpuId cpu) const
{
    const Bank &b = banks_.at(cpu);
    return b.virt.enable && virtCount(cpu) >= b.virt.cval;
}

void
GenericTimer::reprogram(CpuId cpu)
{
    armOne(cpu, false);
    armOne(cpu, true);
}

void
GenericTimer::armOne(CpuId cpu, bool virt_timer)
{
    Bank &b = banks_.at(cpu);
    TimerRegs &t = virt_timer ? b.virt : b.phys;
    std::uint64_t &event = virt_timer ? b.virtEvent : b.physEvent;
    auto &q = machine_.cpuBase(cpu).events();

    if (event) {
        q.cancel(event);
        event = 0;
    }
    if (!t.enable || t.imask)
        return;

    // Absolute cycle at which the compare fires: the physical counter is
    // the CPU clock; the virtual timer's deadline is shifted by CNTVOFF.
    std::uint64_t offset =
        virt_timer ? machine_.cpu(cpu).hyp().cntvoff : 0;
    Cycles deadline = t.cval + offset;
    Cycles now = machine_.cpuBase(cpu).now();
    if (deadline < now)
        deadline = now;

    event = q.schedule(deadline, [this, cpu, virt_timer] {
        fire(cpu, virt_timer);
    });
}

void
GenericTimer::saveState(SnapshotWriter &w)
{
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &b : banks_)
        w.pod(b);
}

void
GenericTimer::restoreState(SnapshotReader &r)
{
    std::uint32_t nbanks = r.u32();
    if (nbanks != banks_.size())
        fatal("timer: snapshot has %u banks, machine has %zu", nbanks,
              banks_.size());
    for (Bank &b : banks_)
        r.pod(b);
}

void
GenericTimer::snapshotRebind()
{
    for (CpuId cpu = 0; cpu < banks_.size(); ++cpu) {
        const Bank &b = banks_[cpu];
        auto &q = machine_.cpuBase(cpu).events();
        if (b.physEvent)
            q.claim(b.physEvent, [this, cpu] { fire(cpu, false); });
        if (b.virtEvent)
            q.claim(b.virtEvent, [this, cpu] { fire(cpu, true); });
    }
}

void
GenericTimer::fire(CpuId cpu, bool virt_timer)
{
    Bank &b = banks_.at(cpu);
    std::uint64_t &event = virt_timer ? b.virtEvent : b.physEvent;
    event = 0;
    bool status = virt_timer ? virtIstatus(cpu) : physIstatus(cpu);
    const TimerRegs &t = virt_timer ? b.virt : b.phys;
    if (status && !t.imask) {
        machine_.gicd().raisePpi(cpu,
                                 virt_timer ? kVirtTimerPpi : kPhysTimerPpi);
    }
}

} // namespace kvmarm::arm
