/**
 * @file
 * Per-CPU MMU: drives Stage-1 and Stage-2 translation for the current
 * execution context, including the nested case (Stage-1 table fetches of a
 * VM are themselves Stage-2 translated), and caches results in a TLB.
 */

#ifndef KVMARM_ARM_MMU_HH
#define KVMARM_ARM_MMU_HH

#include "arm/modes.hh"
#include "arm/pagetable.hh"
#include "arm/tlb.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

class ArmCpu;

/** Outcome of a translation attempt. */
struct TranslateResult
{
    bool ok = false;
    Addr pa = 0;
    bool device = false;
    Cycles cost = 0; //!< cycles spent walking (0 on a TLB hit)
    Perms perms;     //!< leaf permissions of the final stage walked

    /// @name Fault information (when !ok)
    /// @{
    bool stage2 = false;   //!< fault belongs to Stage-2 (traps to Hyp)
    FaultType fault = FaultType::None;
    Addr faultAddr = 0;    //!< VA for Stage-1 faults, IPA for Stage-2
    int level = 0;
    /// @}
};

/** MMU of one ArmCpu. */
class Mmu
{
  public:
    explicit Mmu(ArmCpu &cpu);

    /** Translate @p va for an access of kind @p acc in mode @p mode. */
    TranslateResult translate(Addr va, Access acc, Mode mode);

    /** Stage-2 only translation of an IPA (also used by tests). */
    TranslateResult stage2Translate(Addr ipa, Access acc);

    Tlb &tlb() { return tlb_; }

    /// @name Snapshot support (serialized inside the owning ArmCpu record)
    /// @{
    void
    saveState(SnapshotWriter &w) const
    {
        w.pod(microCode_);
        w.pod(microData_);
        tlb_.saveState(w);
    }

    void
    restoreState(SnapshotReader &r)
    {
        r.pod(microCode_);
        r.pod(microData_);
        tlb_.restoreState(r);
    }
    /// @}

  private:
    /**
     * One-entry "micro-TLB" in front of the set-associative lookup: the
     * last page translated for instruction fetches and the last page for
     * data accesses. Straight-line guest execution stays within a page for
     * long stretches, so most translations are resolved by a key compare.
     *
     * A micro entry is a *copy* of a main-TLB entry, valid only while the
     * TLB's invalidation epoch is unchanged (any flush, eviction or
     * remap bumps it), so it can never outlive the entry it shadows and
     * simulated cycle attribution is identical with or without it.
     */
    struct MicroTlbEntry
    {
        TlbKey key{};
        TlbEntry entry{};
        std::uint64_t epoch = 0;
        bool valid = false;
    };

    TranslateResult translateHyp(Addr va, Access acc);
    TranslateResult walkStage2(Addr ipa, Access acc, Cycles &cost);

    const TlbEntry *microLookup(const TlbKey &key, Access acc);
    void microFill(const TlbKey &key, const TlbEntry &entry, Access acc);

    ArmCpu &cpu_;
    Tlb tlb_;
    MicroTlbEntry microCode_;
    MicroTlbEntry microData_;
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_MMU_HH
