/**
 * @file
 * Hyp Syndrome Register (HSR) modelling: what the hardware tells Hyp mode
 * about why it trapped. The MMIO syndrome-valid (ISV) distinction matters:
 * a class of instructions does not populate the syndrome, forcing the
 * hypervisor to load and decode the instruction from guest memory (paper
 * §4, the MMIO instruction decode KVM/ARM had to drop).
 */

#ifndef KVMARM_ARM_HSR_HH
#define KVMARM_ARM_HSR_HH

#include <cstddef>
#include <cstdint>

#include "arm/registers.hh"
#include "sim/types.hh"

namespace kvmarm::arm {

/** Exception classes Hyp mode can observe (subset of HSR.EC). */
enum class ExcClass : std::uint8_t
{
    Unknown,
    Wfi,          //!< trapped WFI/WFE (HCR.TWI/TWE)
    Cp15Trap,     //!< trapped CP15 access (ACTLR, set/way ops, L2CTLR...)
    Cp14Trap,     //!< trapped CP14 debug/trace access
    Hvc,          //!< hypercall
    Smc,          //!< trapped secure monitor call
    PrefetchAbort, //!< Stage-2 instruction abort
    DataAbort,    //!< Stage-2 data abort (page fault or MMIO)
    Irq,          //!< physical interrupt taken to Hyp (HCR.IMO)
    TimerTrap,    //!< trapped timer/counter access (CNTHCTL or no vtimers)
    FpTrap,       //!< trapped VFP access (HCPTR, lazy FP switching)
};

/** Number of ExcClass values (for per-class counter tables). */
inline constexpr std::size_t kNumExcClasses =
    static_cast<std::size_t>(ExcClass::FpTrap) + 1;

/** Sensitive operations KVM/ARM traps and emulates (Table 1, bottom). */
enum class SensitiveOp : std::uint8_t
{
    ActlrRead,
    ActlrWrite,
    CacheSetWay,
    L2ctlrRead,
    L2ctlrWrite,
    L2ectlrRead,
    Cp14Read,
    Cp14Write,
};

/** Which timer register a TimerTrap refers to (Hsr::iss). */
enum class TimerAccess : std::uint8_t
{
    ReadCntpct,
    ReadCntvct,
    PhysTimer,
    VirtTimer,
};

const char *excClassName(ExcClass ec);

/** Decoded trap syndrome passed to the Hyp-mode trap handler. */
struct Hsr
{
    ExcClass ec = ExcClass::Unknown;

    /// @name Data/prefetch abort fields
    /// @{
    Addr hpfar = 0;     //!< faulting IPA (page-aligned, as on hardware)
    Addr hdfar = 0;     //!< faulting VA
    bool isWrite = false;
    /** Instruction syndrome valid: register, width, and direction below
     *  are populated. False models the old-style instructions that force
     *  software decode. */
    bool isv = false;
    std::uint8_t srt = 0;      //!< source/target GP register index
    std::uint8_t accessLen = 4; //!< access width in bytes
    /// @}

    /// @name CP15/CP14 trap fields
    /// @{
    CtrlReg creg = CtrlReg::SCTLR;
    bool sysWrite = false;
    std::uint32_t sysValue = 0;
    std::uint64_t sysValue64 = 0; //!< 64-bit payload (timer CVAL, MMIO data)
    std::uint32_t iss = 0; //!< raw class-specific syndrome (e.g. HVC imm)
    /// @}
};

} // namespace kvmarm::arm

#endif // KVMARM_ARM_HSR_HH
