/**
 * @file
 * ARMv7 CPU modes and privilege levels (paper §2, Figure 1).
 *
 * TrustZone's secure world is modelled only far enough to reproduce the
 * paper's point that it cannot host a trap-and-emulate hypervisor: the
 * machine powers up in Monitor mode and the boot path transitions to the
 * non-secure world, where Hyp mode (PL2) is the only mode strictly more
 * privileged than kernel mode.
 */

#ifndef KVMARM_ARM_MODES_HH
#define KVMARM_ARM_MODES_HH

#include <cstdint>

namespace kvmarm::arm {

/** ARMv7 processor modes. */
enum class Mode : std::uint8_t
{
    Usr, //!< PL0 user
    Fiq, //!< PL1 fast interrupt
    Irq, //!< PL1 interrupt
    Svc, //!< PL1 supervisor ("kernel mode")
    Mon, //!< Secure PL1 monitor
    Abt, //!< PL1 abort
    Und, //!< PL1 undefined
    Hyp, //!< PL2 hypervisor
};

/** Privilege level of a mode: 0, 1 or 2. */
constexpr unsigned
privilegeLevel(Mode m)
{
    switch (m) {
      case Mode::Usr:
        return 0;
      case Mode::Hyp:
        return 2;
      default:
        return 1;
    }
}

/** True for any PL1 mode (the "kernel mode" family). */
constexpr bool
isKernel(Mode m)
{
    return privilegeLevel(m) == 1;
}

constexpr const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Usr: return "usr";
      case Mode::Fiq: return "fiq";
      case Mode::Irq: return "irq";
      case Mode::Svc: return "svc";
      case Mode::Mon: return "mon";
      case Mode::Abt: return "abt";
      case Mode::Und: return "und";
      case Mode::Hyp: return "hyp";
    }
    return "?";
}

} // namespace kvmarm::arm

#endif // KVMARM_ARM_MODES_HH
