#include "arm/mmu.hh"

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "sim/logging.hh"

namespace kvmarm::arm {

namespace {

/** All-permissive Stage-1 identity permissions (MMU off). */
Perms
identityPerms()
{
    Perms p;
    p.user = true;
    return p;
}

bool
checkS1Perms(const Perms &p, Access acc, Mode mode)
{
    if (mode == Mode::Usr && !p.user)
        return false;
    switch (acc) {
      case Access::Read:
        return p.read;
      case Access::Write:
        return p.write;
      case Access::Exec:
        return p.exec;
    }
    return false;
}

bool
checkS2Perms(const Perms &p, Access acc)
{
    switch (acc) {
      case Access::Read:
      case Access::Exec:
        return p.read;
      case Access::Write:
        return p.write;
    }
    return false;
}

} // namespace

Mmu::Mmu(ArmCpu &cpu) : cpu_(cpu)
{
}

const TlbEntry *
Mmu::microLookup(const TlbKey &key, Access acc)
{
    MicroTlbEntry &m = acc == Access::Exec ? microCode_ : microData_;
    if (m.valid && m.epoch == tlb_.epoch() && m.key == key)
        return &m.entry;
    return nullptr;
}

void
Mmu::microFill(const TlbKey &key, const TlbEntry &entry, Access acc)
{
    MicroTlbEntry &m = acc == Access::Exec ? microCode_ : microData_;
    m.key = key;
    m.entry = entry;
    m.epoch = tlb_.epoch();
    m.valid = true;
}

TranslateResult
Mmu::walkStage2(Addr ipa, Access acc, Cycles &cost)
{
    TranslateResult res;
    const ArmCostModel &cm = cpu_.machine().cost();
    PhysMem &ram = cpu_.machine().ram();

    Addr root = cpu_.hyp().vttbr & desc::kAddrMask;
    if (!root)
        panic("Mmu: Stage-2 enabled with no VTTBR programmed");

    WalkResult wr = walkTable(
        root, ipa, PtFormat::Stage2,
        [&](Addr table_pa) -> std::optional<std::uint64_t> {
            if (!ram.contains(table_pa, 8))
                return std::nullopt;
            cost += Bus::kRamLatency + cm.walkPerLevel;
            return ram.read(table_pa, 8);
        });

    if (!wr.ok()) {
        res.stage2 = true;
        res.fault = wr.fault;
        res.faultAddr = ipa;
        res.level = wr.level;
        return res;
    }
    if (!checkS2Perms(wr.perms, acc)) {
        res.stage2 = true;
        res.fault = FaultType::Permission;
        res.faultAddr = ipa;
        res.level = wr.level;
        return res;
    }
    res.ok = true;
    res.pa = wr.pa;
    res.device = wr.perms.device;
    res.perms = wr.perms;
    return res;
}

TranslateResult
Mmu::stage2Translate(Addr ipa, Access acc)
{
    Cycles cost = 0;
    TranslateResult r = walkStage2(ipa, acc, cost);
    r.cost = cost;
    return r;
}

TranslateResult
Mmu::translateHyp(Addr va, Access acc)
{
    TranslateResult res;
    const ArmCostModel &cm = cpu_.machine().cost();
    PhysMem &ram = cpu_.machine().ram();

    if (!cpu_.hyp().hsctlrM) {
        res.ok = true;
        res.pa = va;
        res.device = !ram.contains(va);
        return res;
    }

    TlbKey key{TlbRegime::Hyp, 0, 0, pageAlignDown(va)};
    if (const TlbEntry *e = microLookup(key, acc)) {
        // Fast path: same page as the last Hyp access of this kind. Taken
        // only when the access succeeds; permission problems fall through
        // to the full lookup for precise fault reporting.
        if (checkS1Perms(e->s1Perms, acc, Mode::Hyp)) {
            tlb_.countHit();
            res.ok = true;
            res.pa = e->ppage | (va & (kPageSize - 1));
            res.device = e->device;
            return res;
        }
    }
    if (const TlbEntry *e = tlb_.lookup(key)) {
        tlb_.countHit();
        if (!checkS1Perms(e->s1Perms, acc, Mode::Hyp)) {
            res.fault = FaultType::Permission;
            res.faultAddr = va;
            return res;
        }
        microFill(key, *e, acc);
        res.ok = true;
        res.pa = e->ppage | (va & (kPageSize - 1));
        res.device = e->device;
        return res;
    }
    tlb_.countMiss();

    Cycles cost = 0;
    WalkResult wr = walkTable(
        cpu_.hyp().httbr, va, PtFormat::HypLpae,
        [&](Addr table_pa) -> std::optional<std::uint64_t> {
            if (!ram.contains(table_pa, 8))
                return std::nullopt;
            cost += Bus::kRamLatency + cm.walkPerLevel;
            return ram.read(table_pa, 8);
        });
    res.cost = cost;

    if (!wr.ok()) {
        res.fault = wr.fault;
        res.faultAddr = va;
        res.level = wr.level;
        return res;
    }
    if (!checkS1Perms(wr.perms, acc, Mode::Hyp)) {
        res.fault = FaultType::Permission;
        res.faultAddr = va;
        return res;
    }

    TlbEntry entry;
    entry.ppage = pageAlignDown(wr.pa);
    entry.s1Perms = wr.perms;
    entry.device = wr.perms.device;
    tlb_.insert(key, entry);
    microFill(key, entry, acc); // after insert: epoch may have moved

    res.ok = true;
    res.pa = wr.pa;
    res.device = wr.perms.device;
    return res;
}

TranslateResult
Mmu::translate(Addr va, Access acc, Mode mode)
{
    if (mode == Mode::Hyp)
        return translateHyp(va, acc);

    TranslateResult res;
    const ArmCostModel &cm = cpu_.machine().cost();
    PhysMem &ram = cpu_.machine().ram();
    const RegisterFile &regs = cpu_.regs();

    bool s1_on = regs[CtrlReg::SCTLR] & 1;
    bool s2_on = cpu_.hyp().hcr.vm;
    std::uint8_t vmid = s2_on ? std::uint8_t(cpu_.hyp().vmid()) : 0;
    std::uint32_t asid = s1_on ? regs[CtrlReg::CONTEXTIDR] : 0;

    TlbKey key{TlbRegime::Pl0Pl1, vmid, asid, pageAlignDown(va)};
    if (const TlbEntry *e = microLookup(key, acc)) {
        // Fast path: same page as the last access of this kind. Taken only
        // when the access fully succeeds; permission problems fall through
        // to the full lookup/walk for precise fault reporting.
        if (checkS1Perms(e->s1Perms, acc, mode) &&
            (!e->hasStage2 || checkS2Perms(e->s2Perms, acc))) {
            tlb_.countHit();
            res.ok = true;
            res.pa = e->ppage | (va & (kPageSize - 1));
            res.device = e->device;
            return res;
        }
    }
    if (const TlbEntry *e = tlb_.lookup(key)) {
        if (!checkS1Perms(e->s1Perms, acc, mode)) {
            tlb_.countHit();
            res.fault = FaultType::Permission;
            res.faultAddr = va;
            res.level = 3;
            return res;
        }
        if (e->hasStage2 && !checkS2Perms(e->s2Perms, acc)) {
            // Rare: fall through to a full walk so the Stage-2 fault is
            // reported with precise IPA/level information.
        } else {
            tlb_.countHit();
            microFill(key, *e, acc);
            res.ok = true;
            res.pa = e->ppage | (va & (kPageSize - 1));
            res.device = e->device;
            return res;
        }
    }
    tlb_.countMiss();

    Cycles cost = 0;
    Addr ipa = va;
    Perms s1_perms = identityPerms();

    if (s1_on) {
        // Two table base registers: the familiar split between the user
        // address space (TTBR0) and the kernel address space (TTBR1),
        // paper §3.1. TTBCR == 0 disables the split.
        Addr root;
        if (regs[CtrlReg::TTBCR] != 0 && va >= ArmCpu::kKernelSplit)
            root = regs.read64(CtrlReg::TTBR1Lo, CtrlReg::TTBR1Hi) &
                   desc::kAddrMask;
        else
            root = regs.read64(CtrlReg::TTBR0Lo, CtrlReg::TTBR0Hi) &
                   desc::kAddrMask;

        TranslateResult nested_fault;
        bool have_nested_fault = false;

        WalkResult wr = walkTable(
            root, va, PtFormat::KernelLpae,
            [&](Addr table_ipa) -> std::optional<std::uint64_t> {
                Addr table_pa = table_ipa;
                if (s2_on) {
                    TranslateResult r2 =
                        walkStage2(table_ipa, Access::Read, cost);
                    if (!r2.ok) {
                        nested_fault = r2;
                        have_nested_fault = true;
                        return std::nullopt;
                    }
                    table_pa = r2.pa;
                }
                if (!ram.contains(table_pa, 8))
                    return std::nullopt;
                cost += Bus::kRamLatency + cm.walkPerLevel;
                return ram.read(table_pa, 8);
            });

        if (have_nested_fault) {
            nested_fault.cost = cost;
            return nested_fault;
        }
        if (!wr.ok()) {
            res.fault = wr.fault;
            res.faultAddr = va;
            res.level = wr.level;
            res.cost = cost;
            return res;
        }
        s1_perms = wr.perms;
        ipa = wr.pa;
        if (!checkS1Perms(s1_perms, acc, mode)) {
            res.fault = FaultType::Permission;
            res.faultAddr = va;
            res.level = wr.level;
            res.cost = cost;
            return res;
        }
    }

    Perms s2_perms = identityPerms();
    Addr pa = ipa;
    bool device = s1_perms.device;
    if (s2_on) {
        TranslateResult r2 = walkStage2(ipa, acc, cost);
        if (!r2.ok) {
            r2.cost = cost;
            return r2;
        }
        pa = r2.pa;
        device = device || r2.device;
        s2_perms = r2.perms;
    }

    TlbEntry entry;
    entry.ppage = pageAlignDown(pa);
    entry.s1Perms = s1_on ? s1_perms : identityPerms();
    entry.s2Perms = s2_perms;
    entry.hasStage2 = s2_on;
    entry.device = device;
    tlb_.insert(key, entry);
    microFill(key, entry, acc); // after insert: epoch may have moved

    res.ok = true;
    res.pa = pa;
    res.device = device;
    res.cost = cost;
    return res;
}

} // namespace kvmarm::arm
