#include "core/stage2_mmu.hh"

#include <algorithm>
#include <utility>

#include "check/invariants.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::Perms;

Stage2Mmu::Stage2Mmu(host::Mm &mm, std::uint16_t vmid, Addr ipa_ram_base,
                     Addr ipa_ram_size)
    : mm_(mm), vmid_(vmid), ipaRamBase_(ipa_ram_base),
      ipaRamSize_(ipa_ram_size),
      editor_(arm::PtFormat::Stage2,
              [this](Addr pa) { return mm_.ram().read(pa, 8); },
              [this](Addr pa, std::uint64_t v) { mm_.ram().write(pa, v, 8); },
              [this] {
                  Addr pa = mm_.allocPage();
                  tablePages_.push_back(pa);
                  KVMARM_CHECK_ON(mm_.checkEngine(),
                                  protectPage(&mm_, pa, "stage2-table"));
                  return pa;
              })
{
    root_ = editor_.newRoot();
}

Stage2Mmu::~Stage2Mmu()
{
    releaseAll();
}

std::uint64_t
Stage2Mmu::vttbr() const
{
    return root_ | (std::uint64_t(vmid_ & 0xFF) << 48);
}

bool
Stage2Mmu::isGuestRam(Addr ipa) const
{
    return ipa >= ipaRamBase_ && ipa < ipaRamBase_ + ipaRamSize_;
}

bool
Stage2Mmu::handleRamFault(Addr ipa)
{
    if (!isGuestRam(ipa))
        return false;
    Addr page_ipa = pageAlignDown(ipa);
    if (ramPages_.count(page_ipa)) {
        // Already mapped: a racing VCPU resolved it; nothing to do.
        return true;
    }
    Addr pa = mm_.getUserPages();
    Perms p;
    p.user = true;
    editor_.map(root_, page_ipa, pa, p);
    ramPages_[page_ipa] = pa;
    KVMARM_CHECK_ON(mm_.checkEngine(),
                    stage2Map(&mm_, vmid_, page_ipa, pa, false));
    return true;
}

void
Stage2Mmu::mapDevicePage(Addr ipa, Addr pa)
{
    Perms p;
    p.user = true;
    p.exec = false;
    p.device = true;
    editor_.map(root_, pageAlignDown(ipa), pageAlignDown(pa), p);
    KVMARM_CHECK_ON(mm_.checkEngine(),
                    stage2Map(&mm_, vmid_, pageAlignDown(ipa),
                              pageAlignDown(pa), true));
}

bool
Stage2Mmu::unmapPage(Addr ipa)
{
    Addr page_ipa = pageAlignDown(ipa);
    auto it = ramPages_.find(page_ipa);
    if (it == ramPages_.end())
        return false;
    editor_.unmap(root_, page_ipa);
    KVMARM_CHECK_ON(mm_.checkEngine(),
                    stage2Unmap(&mm_, vmid_, page_ipa, it->second));
    mm_.putPage(it->second);
    ramPages_.erase(it);
    return true;
}

std::optional<Addr>
Stage2Mmu::ipaToPa(Addr ipa) const
{
    auto it = ramPages_.find(pageAlignDown(ipa));
    if (it == ramPages_.end())
        return std::nullopt;
    return it->second | (ipa & (kPageSize - 1));
}

std::string
Stage2Mmu::snapshotKey() const
{
    return "stage2-" + std::to_string(vmid_);
}

void
Stage2Mmu::saveState(SnapshotWriter &w)
{
    w.u64(ipaRamBase_);
    w.u64(ipaRamSize_);
    w.u64(root_);
    w.u64(tablePages_.size());
    for (Addr pa : tablePages_)
        w.u64(pa);
    std::vector<std::pair<Addr, Addr>> pages(
        // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
        ramPages_.begin(), ramPages_.end());
    std::sort(pages.begin(), pages.end());
    w.u64(pages.size());
    for (const auto &[ipa, pa] : pages) {
        w.u64(ipa);
        w.u64(pa);
    }
}

void
Stage2Mmu::restoreState(SnapshotReader &r)
{
    if (r.u64() != ipaRamBase_ || r.u64() != ipaRamSize_)
        fatal("stage2 vmid=%u: snapshot RAM geometry differs from this "
              "VM's", vmid_);

    // Retract this instance's current state from the invariant engine, in
    // sorted order (same rationale as releaseAll), then declare the
    // restored state: protect the table pages before mapping through
    // them, mirroring the live build order. No Mm refcount traffic: Mm's
    // own restore carries the allocator state.
    std::vector<std::pair<Addr, Addr>> current(
        // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
        ramPages_.begin(), ramPages_.end());
    std::sort(current.begin(), current.end());
    for (const auto &[ipa, pa] : current)
        KVMARM_CHECK_ON(mm_.checkEngine(),
                        stage2Unmap(&mm_, vmid_, ipa, pa));
    ramPages_.clear();
    for (Addr pa : tablePages_)
        KVMARM_CHECK_ON(mm_.checkEngine(), unprotectPage(&mm_, pa));
    tablePages_.clear();

    root_ = r.u64();
    std::uint64_t ntables = r.u64();
    tablePages_.reserve(ntables);
    for (std::uint64_t i = 0; i < ntables; ++i) {
        Addr pa = r.u64();
        tablePages_.push_back(pa);
        KVMARM_CHECK_ON(mm_.checkEngine(),
                        protectPage(&mm_, pa, "stage2-table"));
    }
    std::uint64_t nram = r.u64();
    for (std::uint64_t i = 0; i < nram; ++i) {
        Addr ipa = r.u64();
        Addr pa = r.u64();
        ramPages_[ipa] = pa;
        KVMARM_CHECK_ON(mm_.checkEngine(),
                        stage2Map(&mm_, vmid_, ipa, pa, false));
    }
}

void
Stage2Mmu::releaseAll()
{
    // Release in sorted IPA order, not hash-bucket order: putPage()
    // rebuilds the free list in release order, so bucket-order teardown
    // would make every post-teardown allocation address depend on the
    // hash map's internal layout.
    std::vector<std::pair<Addr, Addr>> pages(
        // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
        ramPages_.begin(), ramPages_.end());
    std::sort(pages.begin(), pages.end());
    for (auto &[ipa, pa] : pages) {
        KVMARM_CHECK_ON(mm_.checkEngine(),
                        stage2Unmap(&mm_, vmid_, ipa, pa));
        mm_.putPage(pa);
    }
    ramPages_.clear();
    for (Addr pa : tablePages_) {
        KVMARM_CHECK_ON(mm_.checkEngine(), unprotectPage(&mm_, pa));
        mm_.putPage(pa);
    }
    tablePages_.clear();
    root_ = 0;
}

} // namespace kvmarm::core
