#include "core/lowvisor.hh"

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/kvm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmCpu;
using arm::ExcClass;
using arm::Hsr;
using arm::Mode;

Lowvisor::Lowvisor(Kvm &kvm)
    : kvm_(kvm), ws_(kvm), running_(kvm.machine().numCpus(), nullptr),
      pendingEnter_(kvm.machine().numCpus(), nullptr)
{
}

void
Lowvisor::hypTrap(ArmCpu &cpu, const Hsr &hsr)
{
    VCpu *vcpu = running_.at(cpu.id());
    if (!vcpu) {
        hostHvc(cpu, hsr);
        return;
    }

    // Light traps the lowvisor disposes of without a world switch.
    if (hsr.ec == ExcClass::Hvc && hsr.iss == hvc::kTrapOnly) {
        // Table 3 "Trap": enter Hyp mode and return immediately.
        vcpu->hotStats.exitTraponly.inc(vcpu->stats, "exit.traponly");
        return;
    }
    if (hsr.ec == ExcClass::FpTrap) {
        // Lazy VFP switch, handled entirely in Hyp mode (paper §3.2).
        vcpu->hotStats.exitFp.inc(vcpu->stats, "exit.fp");
        ws_.switchFpuToVm(cpu, *vcpu);
        vcpu->fpuLoaded = true;
        cpu.hypSys("hcptr").trapFpu = false;
        return;
    }
    if (hsr.ec == ExcClass::Hvc && hsr.iss == hvc::kStopVcpu) {
        exitToHost(cpu, *vcpu);
        return;
    }

    guestTrap(cpu, *vcpu, hsr);
}

void
Lowvisor::guestTrap(ArmCpu &cpu, VCpu &vcpu, const Hsr &hsr)
{
    const auto &cm = cpu.machine().cost();
    vcpu.hotStats.exitByClass[static_cast<std::size_t>(hsr.ec)].inc(
        vcpu.stats,
        [&] { return std::string("exit.") + arm::excClassName(hsr.ec); });
    KVMARM_TRACE(Debug, "cpu%u: guest exit %s", cpu.id(),
                 arm::excClassName(hsr.ec));

    // First half of the split-mode double trap: world switch to the host
    // and ERET into kernel mode, where the highvisor handles the exit.
    ws_.toHost(cpu, vcpu);
    cpu.compute(cm.hypEret);
    cpu.setMode(Mode::Svc);
    cpu.setIrqMasked(false);

    kvm_.highvisor().handleExit(cpu, vcpu, hsr);

    if (vcpu.stopRequested) {
        // Leave the CPU in the host; the guest harness observes the stop
        // flag and winds down via kStopVcpu.
    }

    // Second half of the double trap: the highvisor traps back into Hyp
    // mode to re-enter the VM.
    cpu.setIrqMasked(true);
    cpu.setMode(Mode::Hyp);
    cpu.compute(cm.hypTrapEntry);
    ws_.toVm(cpu, vcpu);
}

void
Lowvisor::enterVm(ArmCpu &cpu, VCpu &vcpu)
{
    running_.at(cpu.id()) = &vcpu;
    ws_.toVm(cpu, vcpu);
}

void
Lowvisor::exitToHost(ArmCpu &cpu, VCpu &vcpu)
{
    ws_.toHost(cpu, vcpu);
    running_.at(cpu.id()) = nullptr;
}

void
Lowvisor::saveState(SnapshotWriter &w)
{
    unsigned ncpus = static_cast<unsigned>(running_.size());
    for (CpuId i = 0; i < ncpus; ++i) {
        if (running_[i] || pendingEnter_[i])
            fatal("lowvisor: cpu%u has a resident/queued VCPU — machine "
                  "not quiesced for snapshot", i);
    }
    w.u32(ncpus);
    for (CpuId i = 0; i < ncpus; ++i) {
        w.pod(ws_.hostCtx_.at(i));
        w.pod(ws_.hostFpu_.at(i));
    }
}

void
Lowvisor::restoreState(SnapshotReader &r)
{
    std::uint32_t ncpus = r.u32();
    if (ncpus != running_.size())
        fatal("lowvisor: snapshot has %u CPUs, machine has %zu", ncpus,
              running_.size());
    for (CpuId i = 0; i < ncpus; ++i) {
        r.pod(ws_.hostCtx_.at(i));
        r.pod(ws_.hostFpu_.at(i));
        running_[i] = nullptr;
        pendingEnter_[i] = nullptr;
    }
}

void
Lowvisor::hostHvc(ArmCpu &cpu, const Hsr &hsr)
{
    if (hsr.ec == ExcClass::Irq) {
        // A physical interrupt routed to Hyp with no VM resident can only
        // be a leftover; let the host service it after ERET.
        return;
    }
    if (hsr.ec != ExcClass::Hvc)
        panic("lowvisor: unexpected trap from host: %s",
              arm::excClassName(hsr.ec));
    if (hsr.iss == hvc::kRunVcpu) {
        VCpu *vcpu = pendingEnter_.at(cpu.id());
        if (!vcpu)
            panic("lowvisor: kRunVcpu with no VCPU queued on cpu%u",
                  cpu.id());
        pendingEnter_.at(cpu.id()) = nullptr;
        enterVm(cpu, *vcpu);
        return;
    }
    if (hsr.iss == hvc::kTrapOnly)
        return;
    if (hsr.iss == hvc::kInitCpu) {
        // Per-CPU Hyp init runs in Hyp mode: program HTTBR and enable the
        // Hyp-mode MMU for this CPU (paper §4).
        kvm_.hypMem().enableOnCpu(cpu);
        return;
    }
    panic("lowvisor: unknown host hypercall %#x", hsr.iss);
}

} // namespace kvmarm::core
