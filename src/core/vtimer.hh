/**
 * @file
 * Virtual timer support (paper §3.6): guests program the hardware virtual
 * timer directly; on world switch out an unexpired timer is re-armed as a
 * host software timer whose callback injects the virtual timer interrupt
 * through the virtual distributor. When KVM runs without hardware virtual
 * timers, all guest timer/counter accesses are emulated in user space.
 */

#ifndef KVMARM_CORE_VTIMER_HH
#define KVMARM_CORE_VTIMER_HH

#include <cstdint>
#include <functional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "arm/hsr.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::arm {
class ArmCpu;
} // namespace kvmarm::arm

namespace kvmarm::core {

class Kvm;
class VCpu;

/** KVM/ARM's virtual timer logic. */
class VTimerEmul : public Snapshottable
{
  public:
    explicit VTimerEmul(Kvm &kvm);

    /** World switch out: stash the guest timer, disable the hardware
     *  instance, and arm a host software timer if the guest timer was
     *  unexpired (the multiplexing of §3.6). Runs in Hyp mode. */
    void onWorldSwitchOut(arm::ArmCpu &cpu, VCpu &vcpu);

    /** World switch in: cancel the software timer, program CNTVOFF and
     *  restore the guest timer onto the hardware. Runs in Hyp mode. */
    void onWorldSwitchIn(arm::ArmCpu &cpu, VCpu &vcpu);

    /** Host IRQ handler body for the virtual timer PPI: the guest's
     *  hardware virtual timer fired (as a *hardware* interrupt) while the
     *  VM was running; inject the corresponding virtual interrupt. */
    void onHostVtimerIrq(arm::ArmCpu &cpu, VCpu &vcpu);

    /** Emulate a trapped timer/counter access (no-vtimers configuration);
     *  runs the emulation in user space. */
    void emulateTrappedAccess(arm::ArmCpu &cpu, VCpu &vcpu,
                              arm::TimerAccess which, bool is_write,
                              std::uint32_t ctl, std::uint64_t cval);

    /// @name Snapshottable (Kvm registers this)
    ///
    /// Armed soft timers are serialized as (vmid, vcpu index, timer id)
    /// tuples — never by pointer — and resolved back to VCpu objects via
    /// the Kvm VM registry during rebind, where each timer's injection
    /// callback is re-attached through SoftTimers::rehydrate().
    /// @{
    std::string snapshotKey() const override { return "vtimer"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    void snapshotRebind() override;
    /// @}

  private:
    void cancelSoftTimer(VCpu &vcpu);

    /** The §3.6 injection a parked soft timer performs when it fires. */
    std::function<void()> injectCallback(VCpu &vcpu);

    Kvm &kvm_;
    /** vcpu -> active host soft-timer id. */
    // domlint: allow(pointer-order) — lookup-only table (find/erase/insert by key); the one iteration, in saveState, sorts by (vmid, vcpu) before any order-dependent use
    std::unordered_map<const VCpu *, std::uint64_t> softTimers_;

    /** Restore-time scratch consumed by snapshotRebind(). */
    std::vector<std::tuple<std::uint16_t, std::uint32_t, std::uint64_t>>
        rebindTimers_;
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_VTIMER_HH
