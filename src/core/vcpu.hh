/**
 * @file
 * A virtual CPU: the complete guest-visible CPU context (Table 1's
 * context-switched state), trap-and-emulate shadow state, run control, and
 * the user-space register access API (GET/SET_ONE_REG) used for debugging
 * and VM migration (paper §4).
 */

#ifndef KVMARM_CORE_VCPU_HH
#define KVMARM_CORE_VCPU_HH

#include <array>
#include <functional>

#include "arm/hsr.hh"
#include "arm/modes.hh"
#include "arm/registers.hh"
#include "arm/timer.hh"
#include "arm/vectors.hh"
#include "arm/vgic.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace kvmarm::arm {
class ArmCpu;
} // namespace kvmarm::arm

namespace kvmarm::core {

class Vm;

/** Serializable VCPU state, the unit of user-space save/restore. */
struct VcpuState
{
    arm::RegisterFile regs;
    arm::Mode mode = arm::Mode::Svc;
    bool irqMasked = true;
    arm::VgicBank vgic;
    arm::TimerRegs vtimer;
    std::uint64_t vtimerOffsetTicks = 0; //!< CNTVCT at save time
    std::uint32_t shadowActlr = 0;
    std::uint32_t shadowCp14 = 0;

    bool operator==(const VcpuState &) const = default;
};

/** One virtual CPU, pinned 1:1 to a physical CPU. */
class VCpu : public Snapshottable
{
  public:
    VCpu(Vm &vm, unsigned index, CpuId phys_cpu);
    ~VCpu() override;

    Vm &vm() { return vm_; }
    unsigned index() const { return index_; }
    CpuId physCpu() const { return physCpu_; }

    /// @name Guest context (world-switched)
    /// @{
    arm::RegisterFile regs;
    arm::Mode guestMode = arm::Mode::Svc;
    bool guestIrqMasked = true;
    arm::OsVectors *guestOs = nullptr;
    arm::VgicBank vgicShadow;
    arm::TimerRegs vtimerShadow;
    std::uint64_t cntvoff = 0;
    bool fpuLoaded = false; //!< guest VFP state is on the hardware
    /// @}

    /// @name Trap-and-emulate shadow state (Table 1 bottom group)
    /// @{
    std::uint32_t shadowActlr = 0x00000041;
    std::uint32_t shadowCp14 = 0;
    /// @}

    /// @name Run control
    /// @{
    bool blocked = false;       //!< parked in WFI emulation
    bool kicked = false;        //!< wake request from another thread
    bool stopRequested = false; //!< PSCI SYSTEM_OFF observed
    /// @}

    /** Hardware list registers currently hold live state (lazy-VGIC
     *  bookkeeping). */
    bool vgicHwLive = false;

    /** Deliverable virtual interrupt exists in the software-emulated GIC
     *  (no-VGIC configuration); mirrored into HCR.VI on VM entry. */
    bool softVirqPending = false;

    /** Set the guest kernel that receives this VCPU's PL1 exceptions. */
    void setGuestOs(arm::OsVectors *os) { guestOs = os; }

    /**
     * KVM_RUN: world switch in, execute @p guest_main as the guest (every
     * trap world-switches to the highvisor and back inline), world switch
     * out when it returns. Must be called on this VCPU's physical CPU.
     */
    void run(arm::ArmCpu &cpu,
             const std::function<void(arm::ArmCpu &)> &guest_main);

    /// @name User-space state access (GET_ONE_REG/SET_ONE_REG-shaped)
    /// @{
    std::uint32_t getOneReg(arm::GpReg r) const { return regs[r]; }
    void setOneReg(arm::GpReg r, std::uint32_t v) { regs[r] = v; }
    std::uint32_t getOneReg(arm::CtrlReg r) const { return regs[r]; }
    void setOneReg(arm::CtrlReg r, std::uint32_t v) { regs[r] = v; }

    /** Snapshot everything user space may save (migration source side). */
    VcpuState saveState(arm::ArmCpu &cpu) const;

    /** Restore a snapshot (migration destination side). */
    void restoreState(arm::ArmCpu &cpu, const VcpuState &state);
    /// @}

    /** Per-VCPU statistics: exit counts by reason, residency cycles. */
    StatGroup stats;

    /**
     * Call-site caches for the counters bumped on every exit / world
     * switch (see CachedCounter). Grouped so the lowvisor, world switch
     * and highvisor can share them without each growing its own table.
     */
    struct HotStats
    {
        std::array<CachedCounter, arm::kNumExcClasses> exitByClass;
        CachedCounter exitTraponly;
        CachedCounter exitFp;
        CachedCounter worldSwitchIn;
        CachedCounter worldSwitchOut;
        CachedCounter residencyCycles;
        CachedCounter faultStage2;
        CachedCounter mmioDecoded;
        CachedCounter mmioKernel;
        CachedCounter mmioUser;
        CachedCounter mmioVdist;
        CachedCounter emulWfi;
        CachedCounter emulSysreg;
        CachedCounter emulHypercall;
    } hotStats;

    /// @name Snapshottable (machine-level, for whole-machine clone)
    ///
    /// Serializes the full guest context plus run-control flags and the
    /// per-VCPU stats — distinct from the user-space VcpuState facade
    /// above, which models only what GET_ONE_REG-era migration moves.
    /// The guest OS pointer is harness-owned and saved as presence only;
    /// a clone must setGuestOs() before restoring if one was installed.
    /// @{
    std::string snapshotKey() const override;
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    void snapshotVerify() override;
    /// @}

  private:
    Vm &vm_;
    unsigned index_;
    CpuId physCpu_;
    bool restoredGuestOsPresent_ = false;
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_VCPU_HH
