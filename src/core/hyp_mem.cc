#include "core/hyp_mem.hh"

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "check/invariants.hh"

namespace kvmarm::core {

using arm::ArmMachine;
using arm::Perms;

HypMem::HypMem(arm::ArmMachine &machine, host::Mm &mm)
    : machine_(machine), mm_(mm)
{
}

HypMem::~HypMem()
{
    for (Addr pa : pages_) {
        KVMARM_CHECK_ON(mm_.checkEngine(), unprotectPage(&mm_, pa));
        mm_.putPage(pa);
    }
}

void
HypMem::build()
{
    if (root_)
        return;

    // Hyp mode uses a different page table format from kernel mode, so
    // the host kernel's tables cannot simply be reused (paper §3.1); the
    // highvisor builds dedicated Hyp-format tables mapping code and
    // shared data at the same virtual addresses as in kernel mode.
    arm::PageTableEditor editor(
        arm::PtFormat::HypLpae,
        [this](Addr pa) { return mm_.ram().read(pa, 8); },
        [this](Addr pa, std::uint64_t v) { mm_.ram().write(pa, v, 8); },
        [this] {
            Addr pa = mm_.allocPage();
            pages_.push_back(pa);
            KVMARM_CHECK_ON(mm_.checkEngine(),
                            protectPage(&mm_, pa, "hyp-table"));
            return pa;
        });

    root_ = editor.newRoot();

    Perms hyp_mem;
    hyp_mem.user = false;
    for (Addr off = 0; off < machine_.ram().size();
         off += arm::kBlock2MSize) {
        Addr pa = ArmMachine::kRamBase + off;
        editor.mapBlock2M(root_, pa, pa, hyp_mem);
    }

    // Device interfaces the lowvisor programs during world switches.
    Perms dev;
    dev.user = false;
    dev.exec = false;
    dev.device = true;
    editor.map(root_, ArmMachine::kGicdBase, ArmMachine::kGicdBase, dev);
    editor.map(root_, ArmMachine::kGiccBase, ArmMachine::kGiccBase, dev);
    if (machine_.config().hwVgic) {
        editor.map(root_, ArmMachine::kGichBase, ArmMachine::kGichBase, dev);
        editor.map(root_, ArmMachine::kGicvBase, ArmMachine::kGicvBase, dev);
    }
}

void
HypMem::saveState(SnapshotWriter &w)
{
    w.u64(root_);
    w.u64(pages_.size());
    for (Addr pa : pages_)
        w.u64(pa);
}

void
HypMem::restoreState(SnapshotReader &r)
{
    // Retract whatever tables this instance built (none, on a clone) from
    // the invariant engine, then declare the restored set. No Mm refcount
    // traffic here: Mm's own restore carries the allocator state.
    for (Addr pa : pages_)
        KVMARM_CHECK_ON(mm_.checkEngine(), unprotectPage(&mm_, pa));
    pages_.clear();

    root_ = r.u64();
    std::uint64_t npages = r.u64();
    pages_.reserve(npages);
    for (std::uint64_t i = 0; i < npages; ++i) {
        Addr pa = r.u64();
        pages_.push_back(pa);
        KVMARM_CHECK_ON(mm_.checkEngine(),
                        protectPage(&mm_, pa, "hyp-table"));
    }
}

void
HypMem::enableOnCpu(arm::ArmCpu &cpu)
{
    arm::HypState &h = cpu.hypSys("httbr");
    h.httbr = root_;
    h.hsctlrM = true;
}

} // namespace kvmarm::core
