/**
 * @file
 * The highvisor (paper §3.1): the kernel-mode bulk of KVM/ARM. Runs as
 * part of the host kernel and leverages its services — memory allocation
 * via get_user_pages for Stage-2 faults, software timers for virtual timer
 * multiplexing, the scheduler for WFI blocking — plus MMIO decode and
 * emulation dispatch (in-kernel devices, the virtual distributor, or exits
 * to user space).
 */

#ifndef KVMARM_CORE_HIGHVISOR_HH
#define KVMARM_CORE_HIGHVISOR_HH

#include "arm/hsr.hh"
#include "sim/types.hh"

namespace kvmarm::arm {
class ArmCpu;
} // namespace kvmarm::arm

namespace kvmarm::core {

class Kvm;
class VCpu;

/** Kernel-mode exit handling. */
class Highvisor
{
  public:
    explicit Highvisor(Kvm &kvm);

    /** Handle a guest exit; runs in kernel mode after the world switch to
     *  the host. */
    void handleExit(arm::ArmCpu &cpu, VCpu &vcpu, const arm::Hsr &hsr);

  private:
    void handleDataAbort(arm::ArmCpu &cpu, VCpu &vcpu, const arm::Hsr &hsr);
    void handleMmio(arm::ArmCpu &cpu, VCpu &vcpu, Addr ipa,
                    const arm::Hsr &hsr);
    void handleWfi(arm::ArmCpu &cpu, VCpu &vcpu);
    void handleSysTrap(arm::ArmCpu &cpu, VCpu &vcpu, const arm::Hsr &hsr);
    void handleHvc(arm::ArmCpu &cpu, VCpu &vcpu, const arm::Hsr &hsr);

    Kvm &kvm_;
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_HIGHVISOR_HH
