/**
 * @file
 * The virtual distributor (paper §3.5): a software model of the GIC
 * distributor living in the highvisor. Guest distributor accesses trap
 * here; it keeps per-interrupt software state and, whenever a VM is
 * scheduled, programs the hardware list registers to inject pending
 * virtual interrupts.
 */

#ifndef KVMARM_CORE_VGIC_EMUL_HH
#define KVMARM_CORE_VGIC_EMUL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arm/gic.hh"
#include "arm/vgic.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::arm {
class ArmCpu;
} // namespace kvmarm::arm

namespace kvmarm::core {

class Vm;
class VCpu;

/** Software GIC distributor state for one VM. */
class VgicDistEmul : public Snapshottable
{
  public:
    explicit VgicDistEmul(Vm &vm);

    /// @name Guest MMIO emulation (in-kernel, reached via Stage-2 traps)
    /// @{
    std::uint64_t handleMmio(arm::ArmCpu &cpu, VCpu &vcpu, Addr offset,
                             bool is_write, std::uint64_t value,
                             unsigned len);
    /// @}

    /// @name Injection
    /// @{
    /** Inject a shared interrupt (KVM_IRQ_LINE path from user space). */
    void injectSpi(arm::ArmCpu &current_cpu, IrqId irq);

    /** Inject a private interrupt to a specific VCPU (virtual timer). */
    void injectPpi(arm::ArmCpu &current_cpu, VCpu &target, IrqId ppi);
    /// @}

    /// @name World-switch integration
    /// @{
    /** Move software-pending interrupts into the VCPU's shadow list
     *  registers (runs when the VCPU is scheduled in). */
    void flushToShadow(VCpu &vcpu);

    /** Digest the shadow list registers after a world switch out: EOIed
     *  slots free their interrupt, still-pending ones return to software
     *  state. */
    void syncFromShadow(VCpu &vcpu);

    /** True if @p vcpu has deliverable interrupts (wake condition for
     *  WFI-blocked VCPUs). */
    bool hasPendingFor(const VCpu &vcpu) const;
    /// @}

    /// @name Software CPU-interface emulation (no-VGIC configuration)
    /// @{
    /** Emulated IAR read: acknowledge the best pending interrupt. */
    std::uint32_t softAck(VCpu &vcpu);

    /** Emulated EOIR write. */
    void softEoi(VCpu &vcpu, std::uint32_t value);
    /// @}

    /** Cycles charged per emulated distributor access for the software
     *  locking the emulation needs (paper §6). */
    Cycles lockCost() const;

    /// @name Snapshottable (Vm registers this)
    /// @{
    std::string snapshotKey() const override;
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    void writeSgir(arm::ArmCpu &cpu, VCpu &sender, std::uint32_t value);
    void setSgiPending(unsigned target_idx, IrqId sgi, unsigned source_idx);
    void kickVcpu(arm::ArmCpu &current_cpu, VCpu &target);
    unsigned routeSpi(IrqId irq) const;

    Vm &vm_;
    bool ctlrEnabled_ = false;

    // Shared SPI state.
    std::array<bool, arm::kMaxIrqs> spiEnabled_{};
    std::array<bool, arm::kMaxIrqs> spiPending_{};
    std::array<std::uint8_t, arm::kMaxIrqs> spiPriority_{};
    std::array<std::uint8_t, arm::kMaxIrqs> spiTargets_{};

    // Banked SGI/PPI state, one bank per VCPU.
    struct Bank
    {
        Bank() { priority.fill(0xA0); }
        std::array<std::uint16_t, arm::kNumSgis> sgiSources{};
        std::array<bool, 32> ppiPending{};
        std::array<bool, 32> enabled{};
        std::array<std::uint8_t, 32> priority{};
        /** Acked-but-not-EOIed interrupts of the software CPU-interface
         *  emulation (no-VGIC mode). */
        std::vector<IrqId> softActive;
    };
    std::vector<Bank> banks_;

    Bank &bankFor(const VCpu &vcpu);
    const Bank &bankFor(const VCpu &vcpu) const;

    /** One deliverable interrupt candidate. */
    struct Cand
    {
        IrqId irq = arm::kSpuriousIrq;
        std::uint8_t prio = 0xFF;
        unsigned source = 0;
    };

    /** Best deliverable interrupt for @p vcpu, spurious if none. */
    Cand bestCandidate(const VCpu &vcpu) const;

    /** Remove @p c from the software pending state. */
    void consume(VCpu &vcpu, const Cand &c);

    /** Recompute the software-injection pending flag (no-VGIC mode). */
    void updateSoftPending(VCpu &vcpu);
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_VGIC_EMUL_HH
