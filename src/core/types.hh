/**
 * @file
 * Shared KVM/ARM types: configuration, hypercall numbers, and the MMIO
 * exit structure handed to user-space device emulation.
 */

#ifndef KVMARM_CORE_TYPES_HH
#define KVMARM_CORE_TYPES_HH

#include <cstdint>

#include "sim/types.hh"

namespace kvmarm::core {

/** KVM/ARM build/runtime configuration. */
struct KvmConfig
{
    /** Use the hardware VGIC (requires machine hwVgic). When false, all
     *  interrupt ACK/EOI and injection is emulated via user space — the
     *  paper's "ARM no VGIC/vtimers" configuration. */
    bool useVgic = true;

    /** Use hardware virtual timers (requires machine hwVtimers). When
     *  false, guest counter/timer accesses trap and are emulated in user
     *  space. */
    bool useVtimers = true;

    /** Lazily context switch VFP state via HCPTR traps (paper §3.2:
     *  "defers switching certain register state until absolutely
     *  necessary"). */
    bool lazyFpu = true;

    /** Ablation (paper §5.2): skip list-register save/restore when no
     *  virtual interrupts are in flight, instead of the unoptimized
     *  full-state context switch the merged KVM/ARM performs. */
    bool lazyVgic = false;

    /** Decode MMIO instructions in software when the syndrome is invalid
     *  (the out-of-tree feature KVM/ARM had to drop, paper §4). When
     *  false, such accesses are fatal to the VM. */
    bool mmioDecodeFallback = true;

    /** Cycles the in-kernel exit dispatcher costs per exit. */
    Cycles exitDispatchCost = 240;

    /** Cycles of MMIO fault processing: IPA reconstruction, kvm_io_bus
     *  lookup, emulation dispatch. */
    Cycles mmioFaultCost = 570;

    /** Cycles of the virtual distributor's SGIR emulation beyond the
     *  lock: routing and per-target bookkeeping (paper §6). */
    Cycles sgirEmulationCost = 500;

    /** Cycles of KVM's kick path: the host-side reschedule-IPI handler
     *  plus run-loop bookkeeping to get the VCPU back into the guest
     *  (kvm_vcpu_kick and friends). */
    Cycles kickHandlerCost = 2750;

    /** Cycles of QEMU's user-space GIC device model per access. */
    Cycles qemuGicCost = 1100;

    /** Cycles to software-emulate the guest's IRQ exception entry when
     *  injecting without a VGIC (banked register writes, pending-state
     *  bookkeeping on the entry path). */
    Cycles viInjectCost = 700;

    /** Cycles of software MMIO instruction decode (when !ISV). */
    Cycles mmioDecodeCost = 480;
};

/** Hypercall function numbers (HVC immediates) used by the stack. */
namespace hvc {
inline constexpr std::uint32_t kRunVcpu = 0x4B000001;    //!< host -> enter VM
inline constexpr std::uint32_t kStopVcpu = 0x4B000002;   //!< guest run ends
inline constexpr std::uint32_t kTrapOnly = 0x4B000003;   //!< Table 3 "Trap"
inline constexpr std::uint32_t kTestHypercall = 0x4B000004; //!< "Hypercall"
inline constexpr std::uint32_t kInitCpu = 0x4B000005; //!< per-CPU Hyp init
inline constexpr std::uint32_t kPsciOff = 0x84000008;    //!< PSCI SYSTEM_OFF
} // namespace hvc

/** One MMIO exit delivered to user space (KVM_EXIT_MMIO-shaped). */
struct MmioExit
{
    Addr ipa = 0;
    bool isWrite = false;
    unsigned len = 4;
    std::uint64_t data = 0;    //!< write payload, or read result (out)
    bool handled = false;      //!< set by the emulator
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_TYPES_HH
