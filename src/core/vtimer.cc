#include "core/vtimer.hh"

#include <algorithm>

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/kvm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmCpu;
using arm::TimerAccess;
using arm::TimerRegs;

VTimerEmul::VTimerEmul(Kvm &kvm) : kvm_(kvm)
{
}

void
VTimerEmul::cancelSoftTimer(VCpu &vcpu)
{
    auto it = softTimers_.find(&vcpu);
    if (it != softTimers_.end()) {
        kvm_.host().timers().cancel(it->second);
        softTimers_.erase(it);
    }
}

void
VTimerEmul::onWorldSwitchIn(ArmCpu &cpu, VCpu &vcpu)
{
    if (!kvm_.config().useVtimers) {
        // Guests get no direct timer access at all; everything traps.
        cpu.hypSys("cnthctl").pl1PhysTimerAccess = false;
        return;
    }

    cancelSoftTimer(vcpu);
    // Program the virtual counter offset and hand the hardware virtual
    // timer to the guest; physical timer access stays hypervisor-only.
    cpu.writeCntvoff(vcpu.cntvoff);
    kvm_.machine().timer().setVirt(cpu.id(), vcpu.vtimerShadow);
    KVMARM_CHECK_ON(kvm_.machine().checkEngine(),
                    stateTransfer(&kvm_.machine(), cpu.id(),
                                  check::StateClass::Timer,
                                  check::Xfer::RestoreGuest));
    cpu.compute(2 * cpu.machine().cost().ctrlRegAccess);
    cpu.hypSys("cnthctl").pl1PhysTimerAccess = false;
}

void
VTimerEmul::onWorldSwitchOut(ArmCpu &cpu, VCpu &vcpu)
{
    cpu.hypSys("cnthctl").pl1PhysTimerAccess = true;
    if (!kvm_.config().useVtimers)
        return;

    // Save the guest timer (the 2 architected timer control registers of
    // Table 1) and disable the hardware instance for the host.
    vcpu.vtimerShadow = kvm_.machine().timer().virt(cpu.id());
    kvm_.machine().timer().setVirt(cpu.id(), TimerRegs{});
    KVMARM_CHECK_ON(kvm_.machine().checkEngine(),
                    stateTransfer(&kvm_.machine(), cpu.id(),
                                  check::StateClass::Timer,
                                  check::Xfer::SaveGuest));
    cpu.compute(2 * cpu.machine().cost().ctrlRegAccess);

    // Multiplexing (paper §3.6): if the guest timer is unexpired, program
    // a host software timer for the moment it would have fired.
    const TimerRegs &t = vcpu.vtimerShadow;
    if (!t.enable || t.imask)
        return;
    Cycles deadline = t.cval + vcpu.cntvoff;
    if (deadline <= cpu.now())
        return; // already expired; the hardware PPI is pending/handled

    cpu.compute(kvm_.host().costs().softTimerProgram);
    softTimers_[&vcpu] =
        kvm_.host().timers().start(cpu.id(), deadline, injectCallback(vcpu));
}

std::function<void()>
VTimerEmul::injectCallback(VCpu &vcpu)
{
    arm::ArmMachine &machine = kvm_.machine();
    CpuId phys = vcpu.physCpu();
    VCpu *target = &vcpu;
    return [this, &machine, phys, target] {
        softTimers_.erase(target);
        // Runs from the host timer context on the VCPU's physical CPU:
        // raise the virtual timer interrupt via the virtual distributor
        // (paper §3.6).
        target->vm().vdist().injectPpi(machine.cpu(phys), *target,
                                       arm::kVirtTimerPpi);
    };
}

void
VTimerEmul::saveState(SnapshotWriter &w)
{
    std::vector<std::tuple<std::uint16_t, std::uint32_t, std::uint64_t>>
        timers;
    timers.reserve(softTimers_.size());
    // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
    for (const auto &[vcpu, id] : softTimers_) {
        timers.emplace_back(const_cast<VCpu *>(vcpu)->vm().vmid(),
                            vcpu->index(), id);
    }
    std::sort(timers.begin(), timers.end());
    w.u64(timers.size());
    for (const auto &[vmid, index, id] : timers) {
        w.u32(vmid);
        w.u32(index);
        w.u64(id);
    }
}

void
VTimerEmul::restoreState(SnapshotReader &r)
{
    softTimers_.clear();
    rebindTimers_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint16_t vmid = static_cast<std::uint16_t>(r.u32());
        std::uint32_t index = r.u32();
        std::uint64_t id = r.u64();
        rebindTimers_.emplace_back(vmid, index, id);
    }
}

void
VTimerEmul::snapshotRebind()
{
    for (const auto &[vmid, index, id] : rebindTimers_) {
        Vm *vm = kvm_.findVm(vmid);
        if (!vm)
            fatal("vtimer: restored soft timer for unknown VM %u — create "
                  "the VM before restoring the snapshot", vmid);
        VCpu *vcpu = vm->vcpu(index);
        softTimers_[vcpu] = id;
        kvm_.host().timers().rehydrate(id, injectCallback(*vcpu));
    }
    rebindTimers_.clear();
}

void
VTimerEmul::onHostVtimerIrq(ArmCpu &cpu, VCpu &vcpu)
{
    // The guest's hardware virtual timer fired as a *hardware* interrupt
    // (architectural limitation, paper §3.6); the highvisor ACK/EOIs it
    // (done by the host IRQ path) and injects the virtual counterpart.
    vcpu.stats.counter("vtimer.hwfire").inc();
    // Prevent immediate re-fire while the VM is out: mask the hardware
    // instance; the guest's view is restored at the next switch in.
    TimerRegs cur = kvm_.machine().timer().virt(cpu.id());
    vcpu.vtimerShadow = cur;
    kvm_.machine().timer().setVirt(cpu.id(), TimerRegs{});
    vcpu.vm().vdist().injectPpi(cpu, vcpu, arm::kVirtTimerPpi);
}

void
VTimerEmul::emulateTrappedAccess(ArmCpu &cpu, VCpu &vcpu, TimerAccess which,
                                 bool is_write, std::uint32_t ctl,
                                 std::uint64_t cval)
{
    // Without virtual timer hardware, timer and counter accesses are
    // emulated by the user-space machine model (QEMU) — the cause of the
    // large pipe/ctxsw overheads in Figure 3's no-vtimers runs.
    vcpu.stats.counter("vtimer.trapped").inc();
    kvm_.host().runInUserspace(cpu, [&] {
        cpu.compute(500); // QEMU timer device model
        switch (which) {
          case TimerAccess::ReadCntvct:
            cpu.setTrappedReadValue(
                kvm_.machine().timer().physCount(cpu.id()) - vcpu.cntvoff);
            return;
          case TimerAccess::ReadCntpct:
            cpu.setTrappedReadValue(
                kvm_.machine().timer().physCount(cpu.id()) - vcpu.cntvoff);
            return;
          case TimerAccess::VirtTimer:
          case TimerAccess::PhysTimer: {
            if (!is_write) {
                cpu.setTrappedReadValue(
                    (vcpu.vtimerShadow.enable ? 1u : 0) |
                    (vcpu.vtimerShadow.imask ? 2u : 0));
                return;
            }
            // Emulated timer reprogram: QEMU keeps the compare value and
            // arms a host timer that injects the interrupt.
            vcpu.vtimerShadow.enable = ctl & 1;
            vcpu.vtimerShadow.imask = ctl & 2;
            vcpu.vtimerShadow.cval = cval;
            cancelSoftTimer(vcpu);
            if (vcpu.vtimerShadow.enable && !vcpu.vtimerShadow.imask) {
                Cycles deadline = vcpu.vtimerShadow.cval + vcpu.cntvoff;
                if (deadline <= cpu.now())
                    deadline = cpu.now() + 1;
                softTimers_[&vcpu] = kvm_.host().timers().start(
                    vcpu.physCpu(), deadline, injectCallback(vcpu));
            }
            return;
          }
        }
    });
}

} // namespace kvmarm::core
