#include "core/vtimer.hh"

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/kvm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmCpu;
using arm::TimerAccess;
using arm::TimerRegs;

VTimerEmul::VTimerEmul(Kvm &kvm) : kvm_(kvm)
{
}

void
VTimerEmul::cancelSoftTimer(VCpu &vcpu)
{
    auto it = softTimers_.find(&vcpu);
    if (it != softTimers_.end()) {
        kvm_.host().timers().cancel(it->second);
        softTimers_.erase(it);
    }
}

void
VTimerEmul::onWorldSwitchIn(ArmCpu &cpu, VCpu &vcpu)
{
    if (!kvm_.config().useVtimers) {
        // Guests get no direct timer access at all; everything traps.
        cpu.hypSys("cnthctl").pl1PhysTimerAccess = false;
        return;
    }

    cancelSoftTimer(vcpu);
    // Program the virtual counter offset and hand the hardware virtual
    // timer to the guest; physical timer access stays hypervisor-only.
    cpu.writeCntvoff(vcpu.cntvoff);
    kvm_.machine().timer().setVirt(cpu.id(), vcpu.vtimerShadow);
    KVMARM_CHECK_ON(kvm_.machine().checkEngine(),
                    stateTransfer(&kvm_.machine(), cpu.id(),
                                  check::StateClass::Timer,
                                  check::Xfer::RestoreGuest));
    cpu.compute(2 * cpu.machine().cost().ctrlRegAccess);
    cpu.hypSys("cnthctl").pl1PhysTimerAccess = false;
}

void
VTimerEmul::onWorldSwitchOut(ArmCpu &cpu, VCpu &vcpu)
{
    cpu.hypSys("cnthctl").pl1PhysTimerAccess = true;
    if (!kvm_.config().useVtimers)
        return;

    // Save the guest timer (the 2 architected timer control registers of
    // Table 1) and disable the hardware instance for the host.
    vcpu.vtimerShadow = kvm_.machine().timer().virt(cpu.id());
    kvm_.machine().timer().setVirt(cpu.id(), TimerRegs{});
    KVMARM_CHECK_ON(kvm_.machine().checkEngine(),
                    stateTransfer(&kvm_.machine(), cpu.id(),
                                  check::StateClass::Timer,
                                  check::Xfer::SaveGuest));
    cpu.compute(2 * cpu.machine().cost().ctrlRegAccess);

    // Multiplexing (paper §3.6): if the guest timer is unexpired, program
    // a host software timer for the moment it would have fired.
    const TimerRegs &t = vcpu.vtimerShadow;
    if (!t.enable || t.imask)
        return;
    Cycles deadline = t.cval + vcpu.cntvoff;
    if (deadline <= cpu.now())
        return; // already expired; the hardware PPI is pending/handled

    cpu.compute(kvm_.host().costs().softTimerProgram);
    arm::ArmMachine &machine = kvm_.machine();
    CpuId phys = cpu.id();
    VCpu *target = &vcpu;
    softTimers_[&vcpu] = kvm_.host().timers().start(
        phys, deadline, [this, &machine, phys, target] {
            softTimers_.erase(target);
            // Runs from the host timer context on the VCPU's physical
            // CPU: raise the virtual timer interrupt via the virtual
            // distributor (paper §3.6).
            target->vm().vdist().injectPpi(machine.cpu(phys), *target,
                                           arm::kVirtTimerPpi);
        });
}

void
VTimerEmul::onHostVtimerIrq(ArmCpu &cpu, VCpu &vcpu)
{
    // The guest's hardware virtual timer fired as a *hardware* interrupt
    // (architectural limitation, paper §3.6); the highvisor ACK/EOIs it
    // (done by the host IRQ path) and injects the virtual counterpart.
    vcpu.stats.counter("vtimer.hwfire").inc();
    // Prevent immediate re-fire while the VM is out: mask the hardware
    // instance; the guest's view is restored at the next switch in.
    TimerRegs cur = kvm_.machine().timer().virt(cpu.id());
    vcpu.vtimerShadow = cur;
    kvm_.machine().timer().setVirt(cpu.id(), TimerRegs{});
    vcpu.vm().vdist().injectPpi(cpu, vcpu, arm::kVirtTimerPpi);
}

void
VTimerEmul::emulateTrappedAccess(ArmCpu &cpu, VCpu &vcpu, TimerAccess which,
                                 bool is_write, std::uint32_t ctl,
                                 std::uint64_t cval)
{
    // Without virtual timer hardware, timer and counter accesses are
    // emulated by the user-space machine model (QEMU) — the cause of the
    // large pipe/ctxsw overheads in Figure 3's no-vtimers runs.
    vcpu.stats.counter("vtimer.trapped").inc();
    kvm_.host().runInUserspace(cpu, [&] {
        cpu.compute(500); // QEMU timer device model
        switch (which) {
          case TimerAccess::ReadCntvct:
            cpu.setTrappedReadValue(
                kvm_.machine().timer().physCount(cpu.id()) - vcpu.cntvoff);
            return;
          case TimerAccess::ReadCntpct:
            cpu.setTrappedReadValue(
                kvm_.machine().timer().physCount(cpu.id()) - vcpu.cntvoff);
            return;
          case TimerAccess::VirtTimer:
          case TimerAccess::PhysTimer: {
            if (!is_write) {
                cpu.setTrappedReadValue(
                    (vcpu.vtimerShadow.enable ? 1u : 0) |
                    (vcpu.vtimerShadow.imask ? 2u : 0));
                return;
            }
            // Emulated timer reprogram: QEMU keeps the compare value and
            // arms a host timer that injects the interrupt.
            vcpu.vtimerShadow.enable = ctl & 1;
            vcpu.vtimerShadow.imask = ctl & 2;
            vcpu.vtimerShadow.cval = cval;
            cancelSoftTimer(vcpu);
            if (vcpu.vtimerShadow.enable && !vcpu.vtimerShadow.imask) {
                Cycles deadline = vcpu.vtimerShadow.cval + vcpu.cntvoff;
                if (deadline <= cpu.now())
                    deadline = cpu.now() + 1;
                arm::ArmMachine &machine = kvm_.machine();
                CpuId phys = vcpu.physCpu();
                VCpu *target = &vcpu;
                softTimers_[&vcpu] = kvm_.host().timers().start(
                    phys, deadline, [this, &machine, phys, target] {
                        softTimers_.erase(target);
                        target->vm().vdist().injectPpi(machine.cpu(phys),
                                                       *target,
                                                       arm::kVirtTimerPpi);
                    });
            }
            return;
          }
        }
    });
}

} // namespace kvmarm::core
