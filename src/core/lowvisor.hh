/**
 * @file
 * The lowvisor (paper §3.1): the only KVM/ARM component running in Hyp
 * mode. Three jobs: configure the execution context, perform world
 * switches, and field every trap — doing the minimal amount of work before
 * deferring to the highvisor in kernel mode. Split-mode virtualization's
 * double trap is visible here: a guest trap enters Hyp, world switches to
 * the host, and re-entering the guest requires trapping into Hyp again.
 */

#ifndef KVMARM_CORE_LOWVISOR_HH
#define KVMARM_CORE_LOWVISOR_HH

#include <vector>

#include "arm/vectors.hh"
#include "core/world_switch.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::core {

class Kvm;
class VCpu;

/** Hyp-mode exception vectors of KVM/ARM. */
class Lowvisor : public arm::HypVectors, public Snapshottable
{
  public:
    explicit Lowvisor(Kvm &kvm);

    /** The VCPU resident (running or handling an exit) on @p cpu. */
    VCpu *running(CpuId cpu) { return running_.at(cpu); }

    /** Arm the next kHvcRunVcpu on @p cpu to enter @p vcpu. */
    void queueEnter(CpuId cpu, VCpu *vcpu) { pendingEnter_.at(cpu) = vcpu; }

    WorldSwitch &worldSwitch() { return ws_; }

    /// @name arm::HypVectors
    /// @{
    void hypTrap(arm::ArmCpu &cpu, const arm::Hsr &hsr) override;
    const char *name() const override { return "kvm-lowvisor"; }
    /// @}

    /// @name Snapshottable (Kvm registers this; covers WorldSwitch too)
    ///
    /// Snapshots only exist at quiescence: saveState() is fatal if any
    /// VCPU is resident or queued to enter, so running_/pendingEnter_ are
    /// serialized implicitly as all-null. The world switch's parked host
    /// contexts (stale once the per-CPU fibers unwound, but compared by
    /// nothing and restored verbatim for faithfulness) ride along.
    /// @{
    std::string snapshotKey() const override { return "lowvisor"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    void enterVm(arm::ArmCpu &cpu, VCpu &vcpu);
    void exitToHost(arm::ArmCpu &cpu, VCpu &vcpu);
    void guestTrap(arm::ArmCpu &cpu, VCpu &vcpu, const arm::Hsr &hsr);
    void hostHvc(arm::ArmCpu &cpu, const arm::Hsr &hsr);

    Kvm &kvm_;
    WorldSwitch ws_;
    std::vector<VCpu *> running_;
    std::vector<VCpu *> pendingEnter_;
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_LOWVISOR_HH
