#include "core/kvm.hh"

#include <algorithm>

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

namespace {

/** Clamp requested features to what the hardware provides. */
KvmConfig
clampConfig(KvmConfig cfg, const arm::ArmMachine::Config &hw)
{
    cfg.useVgic = cfg.useVgic && hw.hwVgic;
    cfg.useVtimers = cfg.useVtimers && hw.hwVtimers;
    return cfg;
}

} // namespace

Kvm::Kvm(host::HostKernel &host, const KvmConfig &config)
    : host_(host), config_(clampConfig(config, host.machine().config())),
      hypMem_(host.machine(), host.mm()), lowvisor_(*this),
      highvisor_(*this), vtimer_(*this)
{
    // Fixed registration order (see ArmMachine's constructor): the KVM
    // layer's stateful components follow the host kernel's. Highvisor is
    // stateless and not registered.
    machine().registerSnapshottable(&hypMem_);
    machine().registerSnapshottable(&lowvisor_);
    machine().registerSnapshottable(&vtimer_);
    machine().registerSnapshottable(this);
}

Kvm::~Kvm()
{
    machine().unregisterSnapshottable(this);
    machine().unregisterSnapshottable(&vtimer_);
    machine().unregisterSnapshottable(&lowvisor_);
    machine().unregisterSnapshottable(&hypMem_);
}

void
Kvm::unregisterVm(Vm *vm)
{
    auto it = std::find(vms_.begin(), vms_.end(), vm);
    if (it != vms_.end())
        vms_.erase(it);
}

Vm *
Kvm::findVm(std::uint16_t vmid)
{
    for (Vm *vm : vms_)
        if (vm->vmid() == vmid)
            return vm;
    return nullptr;
}

void
Kvm::saveState(SnapshotWriter &w)
{
    w.b(enabled_);
    w.b(irqHandlersRegistered_);
    w.u32(nextVmid_);
    unsigned ncpus = machine().numCpus();
    w.u32(ncpus);
    for (CpuId i = 0; i < ncpus; ++i)
        w.b(machine().cpu(i).hypVectors() == &lowvisor_);
}

void
Kvm::restoreState(SnapshotReader &r)
{
    enabled_ = r.b();
    rebindIrqHandlers_ = r.b();
    // Force re-registration during rebind: a clone's handler table starts
    // empty, and on a self-restore requestIrq simply overwrites.
    irqHandlersRegistered_ = false;
    nextVmid_ = static_cast<std::uint16_t>(r.u32());
    std::uint32_t ncpus = r.u32();
    if (ncpus != machine().numCpus())
        fatal("kvm: snapshot has %u CPUs, machine has %u", ncpus,
              machine().numCpus());
    rebindHypOnCpu_.clear();
    for (std::uint32_t i = 0; i < ncpus; ++i)
        rebindHypOnCpu_.push_back(r.b());
}

void
Kvm::snapshotRebind()
{
    if (rebindIrqHandlers_) {
        rebindIrqHandlers_ = false;
        registerHostIrqHandlers();
    }
    for (CpuId i = 0; i < rebindHypOnCpu_.size(); ++i)
        if (rebindHypOnCpu_[i])
            machine().cpu(i).setHypVectors(&lowvisor_);
    rebindHypOnCpu_.clear();
}

void
Kvm::registerHostIrqHandlers()
{
    if (irqHandlersRegistered_)
        return;
    irqHandlersRegistered_ = true;

    // Virtual timer PPI: the guest's hardware virtual timer fires as a
    // hardware interrupt; inject the virtual counterpart (paper §3.6).
    host_.requestIrq(arm::kVirtTimerPpi,
                     [this](arm::ArmCpu &cpu, IrqId) {
                         if (VCpu *v = lowvisor_.running(cpu.id()))
                             vtimer_.onHostVtimerIrq(cpu, *v);
                     });

    // VGIC maintenance interrupt: no action needed beyond the world
    // switch that already happened — the next entry refills the LRs.
    host_.requestIrq(arm::kMaintenancePpi, [](arm::ArmCpu &cpu, IrqId) {
        cpu.stats().counter("kvm.maintenance").inc();
    });

    // The host timer tick KVM uses to preempt a running guest when a
    // same-CPU software injection needs delivery (hrtimer semantics).
    host_.requestIrq(arm::kHypTimerPpi, [](arm::ArmCpu &cpu, IrqId) {
        cpu.stats().counter("kvm.tick").inc();
    });

    // Kick SGI: its only purpose is to force the target out of guest
    // mode so the next entry picks up new virtual interrupt state.
    host_.requestIrq(kKickSgi, [this](arm::ArmCpu &cpu, IrqId) {
        cpu.stats().counter("kvm.kick").inc();
        cpu.compute(config_.kickHandlerCost);
    });
}

bool
Kvm::initCpu(arm::ArmCpu &cpu)
{
    if (!host_.bootedInHyp()) {
        warn("kvm [cpu%u]: kernel not booted in Hyp mode; KVM/ARM "
             "disabled (paper §4)", cpu.id());
        return false;
    }
    hypMem_.build();
    if (!host_.installHypVectors(cpu, &lowvisor_))
        return false;
    // Enable the Hyp MMU from Hyp mode itself: HTTBR/HSCTLR are Hyp-only
    // registers, so per-CPU enablement is a hypercall into the lowvisor
    // (the same protocol the boot stub uses, paper §4).
    cpu.hvc(hvc::kInitCpu);
    registerHostIrqHandlers();
    enabled_ = true;
    return true;
}

std::unique_ptr<Vm>
Kvm::createVm(Addr guest_ram_size)
{
    if (!enabled_)
        fatal("Kvm::createVm before successful initCpu");
    return std::make_unique<Vm>(*this, nextVmid_++, guest_ram_size);
}

} // namespace kvmarm::core
