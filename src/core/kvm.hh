/**
 * @file
 * Top-level KVM/ARM module: initialization (the boot-in-Hyp-mode protocol
 * of paper §4, per-CPU Hyp setup) and VM creation. The public entry point
 * of the library's core.
 */

#ifndef KVMARM_CORE_KVM_HH
#define KVMARM_CORE_KVM_HH

#include <memory>
#include <vector>

#include "core/highvisor.hh"
#include "core/hyp_mem.hh"
#include "core/lowvisor.hh"
#include "core/types.hh"
#include "core/vm.hh"
#include "core/vtimer.hh"
#include "host/kernel.hh"
#include "sim/snapshot.hh"

namespace kvmarm::core {

/** The KVM/ARM hypervisor module loaded into a host kernel. */
class Kvm : public Snapshottable
{
  public:
    /** @param config Requested features are clamped to what the machine's
     *  hardware provides (no VGIC hardware -> no VGIC use). */
    Kvm(host::HostKernel &host, const KvmConfig &config);
    Kvm(host::HostKernel &host) : Kvm(host, KvmConfig{}) {}
    ~Kvm() override;

    /**
     * Per-CPU initialization, run on each booted CPU: builds the Hyp page
     * tables (once), installs the lowvisor as the runtime Hyp vectors via
     * the boot stub, and registers the host IRQ handlers KVM needs.
     *
     * @return false if Hyp mode is unavailable (kernel not booted in Hyp
     *         mode) — KVM/ARM then remains disabled, paper §4.
     */
    bool initCpu(arm::ArmCpu &cpu);

    /** True once initCpu succeeded somewhere. */
    bool enabled() const { return enabled_; }

    /** Create a VM with @p guest_ram_size of RAM. */
    std::unique_ptr<Vm> createVm(Addr guest_ram_size);

    host::HostKernel &host() { return host_; }
    arm::ArmMachine &machine() { return host_.machine(); }
    const KvmConfig &config() const { return config_; }
    Lowvisor &lowvisor() { return lowvisor_; }
    Highvisor &highvisor() { return highvisor_; }
    VTimerEmul &vtimer() { return vtimer_; }
    HypMem &hypMem() { return hypMem_; }

    /** SGI the host uses to kick a remote VCPU out of guest mode. */
    static constexpr IrqId kKickSgi = 1;

    /// @name VM registry
    ///
    /// Live VMs, in creation order. Lets snapshot rebind passes resolve a
    /// (vmid, vcpu index) pair back to an object — VM-keyed state (e.g.
    /// armed virtual-timer soft timers) is serialized by id, never by
    /// pointer. Vm's constructor/destructor maintain the registry.
    /// @{
    void registerVm(Vm *vm) { vms_.push_back(vm); }
    void unregisterVm(Vm *vm);
    Vm *findVm(std::uint16_t vmid);
    /// @}

    /**
     * Clone-construction priming: mark KVM enabled so createVm() can run
     * on a machine that never booted. A clone rebuilds its VM skeletons
     * first and then adopts all hypervisor state from the snapshot via
     * MachineBase::restoreSnapshot(), so per-CPU init never executes.
     */
    void primeForRestore() { enabled_ = true; }

    /// @name Snapshottable
    /// @{
    std::string snapshotKey() const override { return "kvm"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /** Re-register host IRQ handlers and reinstall the lowvisor as the
     *  Hyp vectors on the CPUs that had it installed at snapshot time. */
    void snapshotRebind() override;
    /// @}

  private:
    void registerHostIrqHandlers();

    host::HostKernel &host_;
    KvmConfig config_;
    HypMem hypMem_;
    Lowvisor lowvisor_;
    Highvisor highvisor_;
    VTimerEmul vtimer_;
    bool enabled_ = false;
    bool irqHandlersRegistered_ = false;
    std::uint16_t nextVmid_ = 1;
    std::vector<Vm *> vms_;

    /** Restore-time scratch consumed by snapshotRebind(). */
    bool rebindIrqHandlers_ = false;
    std::vector<bool> rebindHypOnCpu_;
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_KVM_HH
