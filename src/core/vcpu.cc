#include "core/vcpu.hh"

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "core/kvm.hh"
#include "core/vm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmCpu;

VCpu::VCpu(Vm &vm, unsigned index, CpuId phys_cpu)
    : vm_(vm), index_(index), physCpu_(phys_cpu)
{
    // Shadow ID registers (world switch step 7): the VM sees its own
    // MPIDR based on the VCPU index, and the host's MIDR.
    regs[arm::CtrlReg::MIDR] = 0x412FC0F0;
    regs[arm::CtrlReg::MPIDR] = 0x80000000 | index;

    vm_.kvm().machine().registerSnapshottable(this);
}

VCpu::~VCpu()
{
    vm_.kvm().machine().unregisterSnapshottable(this);
}

std::string
VCpu::snapshotKey() const
{
    return "vcpu-" + std::to_string(vm_.vmid()) + "-" +
           std::to_string(index_);
}

void
VCpu::saveState(SnapshotWriter &w)
{
    w.b(guestOs != nullptr);
    w.pod(regs);
    w.u8(static_cast<std::uint8_t>(guestMode));
    w.b(guestIrqMasked);
    w.pod(vgicShadow);
    w.pod(vtimerShadow);
    w.u64(cntvoff);
    w.b(fpuLoaded);
    w.u32(shadowActlr);
    w.u32(shadowCp14);
    w.b(blocked);
    w.b(kicked);
    w.b(stopRequested);
    w.b(vgicHwLive);
    w.b(softVirqPending);
    saveStats(w, stats);
}

void
VCpu::restoreState(SnapshotReader &r)
{
    restoredGuestOsPresent_ = r.b();
    r.pod(regs);
    guestMode = static_cast<arm::Mode>(r.u8());
    guestIrqMasked = r.b();
    r.pod(vgicShadow);
    r.pod(vtimerShadow);
    cntvoff = r.u64();
    fpuLoaded = r.b();
    shadowActlr = r.u32();
    shadowCp14 = r.u32();
    blocked = r.b();
    kicked = r.b();
    stopRequested = r.b();
    vgicHwLive = r.b();
    softVirqPending = r.b();
    restoreStats(r, stats);
}

void
VCpu::snapshotVerify()
{
    if (restoredGuestOsPresent_ && !guestOs)
        fatal("vcpu%u (vm %u): snapshot had a guest OS installed — "
              "setGuestOs() before restoring", index_, vm_.vmid());
    restoredGuestOsPresent_ = false;
}

void
VCpu::run(ArmCpu &cpu, const std::function<void(ArmCpu &)> &guest_main)
{
    if (cpu.id() != physCpu_)
        panic("VCpu::run: vcpu%u is pinned to cpu%u, ran on cpu%u", index_,
              physCpu_, cpu.id());
    if (cpu.mode() != arm::Mode::Svc)
        panic("VCpu::run must be entered from host kernel mode");

    Lowvisor &low = vm_.kvm().lowvisor();
    low.queueEnter(cpu.id(), this);
    Cycles entered = cpu.now();

    cpu.hvc(hvc::kRunVcpu);
    // The CPU is now in the guest world; run the guest. Every trap it
    // takes world switches to the highvisor and back behind its back.
    guest_main(cpu);
    // Final exit back to the host.
    cpu.hvc(hvc::kStopVcpu);

    hotStats.residencyCycles.inc(stats, "residency.cycles",
                                 cpu.now() - entered);
}

VcpuState
VCpu::saveState(ArmCpu &cpu) const
{
    if (vm_.kvm().lowvisor().running(physCpu_) == this)
        panic("VCpu::saveState while the VCPU is resident");
    VcpuState s;
    s.regs = regs;
    s.mode = guestMode;
    s.irqMasked = guestIrqMasked;
    s.vgic = vgicShadow;
    s.vtimer = vtimerShadow;
    s.vtimerOffsetTicks = cpu.now() - cntvoff; // current CNTVCT
    s.shadowActlr = shadowActlr;
    s.shadowCp14 = shadowCp14;
    return s;
}

void
VCpu::restoreState(ArmCpu &cpu, const VcpuState &s)
{
    regs = s.regs;
    guestMode = s.mode;
    guestIrqMasked = s.irqMasked;
    vgicShadow = s.vgic;
    vtimerShadow = s.vtimer;
    // Preserve the guest's virtual time across the move: CNTVCT continues
    // from where it was saved.
    cntvoff = cpu.now() - s.vtimerOffsetTicks;
    shadowActlr = s.shadowActlr;
    shadowCp14 = s.shadowCp14;
}

} // namespace kvmarm::core
