#include "core/world_switch.hh"

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/kvm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::ListReg;
using arm::LrState;
using arm::Mode;

WorldSwitch::WorldSwitch(Kvm &kvm)
    : kvm_(kvm), hostCtx_(kvm.machine().numCpus()),
      hostFpu_(kvm.machine().numCpus())
{
}

void
WorldSwitch::switchFpuToVm(ArmCpu &cpu, VCpu &vcpu)
{
    check::InvariantEngine *const ck = cpu.machine().checkEngine();
    const auto &cm = cpu.machine().cost();
    FpuPark &park = hostFpu_.at(cpu.id());
    park.vfp = cpu.regs().vfp;
    park.vfpCtrl = cpu.regs().vfpCtrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Fpu,
                               check::Xfer::SaveHost));
    cpu.regs().vfp = vcpu.regs.vfp;
    cpu.regs().vfpCtrl = vcpu.regs.vfpCtrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Fpu,
                               check::Xfer::RestoreGuest));
    cpu.compute(2 * (arm::kNumVfpDataRegs * cm.vfpRegAccess +
                     arm::kNumVfpCtrlRegs * cm.ctrlRegAccess));
}

void
WorldSwitch::switchFpuToHost(ArmCpu &cpu, VCpu &vcpu)
{
    check::InvariantEngine *const ck = cpu.machine().checkEngine();
    const auto &cm = cpu.machine().cost();
    FpuPark &park = hostFpu_.at(cpu.id());
    vcpu.regs.vfp = cpu.regs().vfp;
    vcpu.regs.vfpCtrl = cpu.regs().vfpCtrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Fpu,
                               check::Xfer::SaveGuest));
    cpu.regs().vfp = park.vfp;
    cpu.regs().vfpCtrl = park.vfpCtrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Fpu,
                               check::Xfer::RestoreHost));
    cpu.compute(2 * (arm::kNumVfpDataRegs * cm.vfpRegAccess +
                     arm::kNumVfpCtrlRegs * cm.ctrlRegAccess));
}

void
WorldSwitch::restoreVgic(ArmCpu &cpu, VCpu &vcpu)
{
    check::InvariantEngine *const ck = cpu.machine().checkEngine();
    const KvmConfig &cfg = kvm_.config();
    const Addr gich = ArmMachine::kGichBase;
    arm::VgicBank &sh = vcpu.vgicShadow;

    bool any_lr = false;
    for (const ListReg &lr : sh.lr)
        any_lr |= lr.state != LrState::Empty;

    std::uint32_t hcr = (sh.en ? 1u : 0) | (sh.uie ? 2u : 0);
    std::uint32_t vmcr =
        (sh.vmEnabled ? 1u : 0) | (std::uint32_t(sh.vmPmr) << 24);

    if (cfg.lazyVgic && !any_lr) {
        // Optimization of §5.2/§6: nothing in flight, touch only the
        // enable and the VM-interface configuration.
        cpu.memWrite(gich + arm::gich::HCR, hcr);
        cpu.memWrite(gich + arm::gich::VMCR, vmcr);
        vcpu.vgicHwLive = false;
        KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                                   check::StateClass::Vgic,
                                   check::Xfer::RestoreGuest));
        return;
    }

    // Unoptimized KVM/ARM: completely context switch all VGIC state —
    // the 16 control registers and 4 list registers of Table 1 — over
    // MMIO on every switch (paper §3.5).
    for (Addr off : arm::kVgicCtrlSaveList) {
        std::uint32_t v = 0;
        if (off == arm::gich::HCR)
            v = hcr;
        else if (off == arm::gich::VMCR)
            v = vmcr;
        else if (off >= arm::gich::APR0 && off <= arm::gich::APR3)
            v = sh.apr[(off - arm::gich::APR0) / 4];
        cpu.memWrite(gich + off, v);
    }
    for (unsigned i = 0; i < arm::kNumListRegs; ++i)
        cpu.memWrite(gich + arm::gich::LR0 + 4 * i, sh.lr[i].pack());
    vcpu.vgicHwLive = true;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Vgic,
                               check::Xfer::RestoreGuest));
}

void
WorldSwitch::saveVgic(ArmCpu &cpu, VCpu &vcpu)
{
    check::InvariantEngine *const ck = cpu.machine().checkEngine();
    const KvmConfig &cfg = kvm_.config();
    const Addr gich = ArmMachine::kGichBase;
    arm::VgicBank &sh = vcpu.vgicShadow;

    if (cfg.lazyVgic && !vcpu.vgicHwLive) {
        // Check the empty status and pick up VM-interface changes only.
        (void)cpu.memRead(gich + arm::gich::ELRSR0, 4);
        std::uint32_t vmcr = static_cast<std::uint32_t>(
            cpu.memRead(gich + arm::gich::VMCR, 4));
        sh.vmEnabled = vmcr & 1;
        sh.vmPmr = static_cast<std::uint8_t>(vmcr >> 24);
        cpu.memWrite(gich + arm::gich::HCR, 0);
        KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                                   check::StateClass::Vgic,
                                   check::Xfer::SaveGuest));
        return;
    }

    for (Addr off : arm::kVgicCtrlSaveList) {
        std::uint32_t v =
            static_cast<std::uint32_t>(cpu.memRead(gich + off, 4));
        if (off == arm::gich::HCR) {
            sh.en = v & 1;
            sh.uie = v & 2;
        } else if (off == arm::gich::VMCR) {
            sh.vmEnabled = v & 1;
            sh.vmPmr = static_cast<std::uint8_t>(v >> 24);
        } else if (off >= arm::gich::APR0 && off <= arm::gich::APR3) {
            sh.apr[(off - arm::gich::APR0) / 4] = v;
        }
    }
    for (unsigned i = 0; i < arm::kNumListRegs; ++i) {
        sh.lr[i] = ListReg::unpack(static_cast<std::uint32_t>(
            cpu.memRead(gich + arm::gich::LR0 + 4 * i, 4)));
    }
    // Disable the virtual interface while the host runs.
    cpu.memWrite(gich + arm::gich::HCR, 0);
    vcpu.vgicHwLive = false;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Vgic,
                               check::Xfer::SaveGuest));
}

void
WorldSwitch::toVm(ArmCpu &cpu, VCpu &vcpu)
{
    check::InvariantEngine *const ck = cpu.machine().checkEngine();
    const auto &cm = cpu.machine().cost();
    const KvmConfig &cfg = kvm_.config();
    HostContext &host = hostCtx_.at(cpu.id());
    KVMARM_CHECK_ON(ck, worldSwitchBegin(&cpu.machine(), cpu.id(),
                                  check::SwitchDir::ToVm));

    // Entry bookkeeping, including the atomic operations the mainline
    // world switch performs (the ~300-cycle optimization opportunity of
    // paper §5.2 that missed v3.10).
    cpu.compute(4 * cm.atomicOp);

    // (1) Store all host GP registers on the Hyp stack.
    host.regs.gp = cpu.regs().gp;
    host.valid = true;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Gp,
                               check::Xfer::SaveHost));
    cpu.compute(arm::kNumGpRegs * cm.gpRegSave);

    // (2) Configure the VGIC for the VM.
    if (cfg.useVgic) {
        vcpu.vm().vdist().flushToShadow(vcpu);
        restoreVgic(cpu, vcpu);
    }

    // (3) Configure the timers for the VM.
    kvm_.vtimer().onWorldSwitchIn(cpu, vcpu);

    // (4) Save all host-specific configuration registers onto the Hyp
    //     stack. Hyp mode has its own configuration registers, so this
    //     does not disturb the executing lowvisor (paper §3.2).
    host.regs.ctrl = cpu.regs().ctrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Ctrl,
                               check::Xfer::SaveHost));
    cpu.compute(arm::kNumCtrlRegs * cm.ctrlRegAccess);

    // (5) Load the VM's configuration registers — including (7) the
    //     VM-specific shadow ID registers (MIDR/MPIDR slots).
    cpu.regs().ctrl = vcpu.regs.ctrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Ctrl,
                               check::Xfer::RestoreGuest));
    cpu.compute(arm::kNumCtrlRegs * cm.ctrlRegAccess);

    // (6) Configure Hyp mode to trap FP (lazily), interrupts, WFI/WFE,
    //     SMC, sensitive configuration registers and debug accesses.
    arm::HypState &h = cpu.hypSys("hcr");
    h.hcr.imo = true;
    h.hcr.fmo = true;
    h.hcr.twi = true;
    h.hcr.twe = true;
    h.hcr.tsc = true;
    h.hcr.tac = true;
    h.hcr.swio = true;
    h.hcr.tidcp = true;
    h.trapCp14 = true;
    h.hcr.vi = !cfg.useVgic && vcpu.softVirqPending;
    if (h.hcr.vi) {
        // Without a VGIC the hypervisor must emulate the interrupt
        // delivery itself on the entry path.
        cpu.compute(cfg.viInjectCost);
    }
    if (cfg.lazyFpu) {
        h.trapFpu = !vcpu.fpuLoaded;
    } else {
        h.trapFpu = false;
        switchFpuToVm(cpu, vcpu);
    }
    cpu.compute(arm::kWorldSwitchTrapConfigWrites * cm.ctrlRegAccess);

    // (8) Set the Stage-2 page table base register (VTTBR) and enable
    //     Stage-2 address translation.
    h.vttbr = vcpu.vm().stage2().vttbr();
    h.hcr.vm = true;
    cpu.compute(cm.stage2Serialize);

    // (9) Restore all guest GP registers.
    cpu.regs().gp = vcpu.regs.gp;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Gp,
                               check::Xfer::RestoreGuest));
    cpu.compute(arm::kNumGpRegs * cm.gpRegSave);

    // (10) Trap into either user or kernel mode: performed by the ERET at
    //      the end of the current Hyp trap.
    cpu.setOsVectors(vcpu.guestOs);
    cpu.setHypReturn(vcpu.guestMode, vcpu.guestIrqMasked);
    vcpu.hotStats.worldSwitchIn.inc(vcpu.stats, "worldswitch.in");
    KVMARM_TRACE(Debug, "cpu%u: world switch in (vcpu %u)", cpu.id(),
                 vcpu.index());
    KVMARM_CHECK_ON(ck, worldSwitchEnd(&cpu.machine(), cpu.id(),
                                check::SwitchDir::ToVm, cpu.hyp()));
}

void
WorldSwitch::toHost(ArmCpu &cpu, VCpu &vcpu)
{
    check::InvariantEngine *const ck = cpu.machine().checkEngine();
    const auto &cm = cpu.machine().cost();
    const KvmConfig &cfg = kvm_.config();
    HostContext &host = hostCtx_.at(cpu.id());
    if (!host.valid)
        panic("WorldSwitch::toHost with no saved host context");
    KVMARM_CHECK_ON(ck, worldSwitchBegin(&cpu.machine(), cpu.id(),
                                  check::SwitchDir::ToHost));

    // Capture the guest's interrupted mode/mask (SPSR_hyp).
    vcpu.guestMode = cpu.hypTrappedMode();
    vcpu.guestIrqMasked = cpu.hypTrappedIrqMask();
    cpu.compute(4 * cm.atomicOp);

    // (1) Store all VM GP registers.
    vcpu.regs.gp = cpu.regs().gp;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Gp,
                               check::Xfer::SaveGuest));
    cpu.compute(arm::kNumGpRegs * cm.gpRegSave);

    // (2) Disable Stage-2 translation.
    arm::HypState &h = cpu.hypSys("hcr");
    h.hcr.vm = false;
    cpu.compute(cm.stage2Serialize);

    // (3) Configure Hyp mode to not trap any register access or
    //     instructions.
    h.hcr.imo = false;
    h.hcr.fmo = false;
    h.hcr.twi = false;
    h.hcr.twe = false;
    h.hcr.tsc = false;
    h.hcr.tac = false;
    h.hcr.swio = false;
    h.hcr.tidcp = false;
    h.hcr.vi = false;
    h.trapCp14 = false;
    if (vcpu.fpuLoaded || !cfg.lazyFpu) {
        switchFpuToHost(cpu, vcpu);
        vcpu.fpuLoaded = false;
    }
    h.trapFpu = false;
    cpu.compute(arm::kWorldSwitchTrapConfigWrites * cm.ctrlRegAccess);

    // (4) Save all VM-specific configuration registers.
    vcpu.regs.ctrl = cpu.regs().ctrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Ctrl,
                               check::Xfer::SaveGuest));
    cpu.compute(arm::kNumCtrlRegs * cm.ctrlRegAccess);

    // (5) Load the host's configuration registers onto the hardware.
    cpu.regs().ctrl = host.regs.ctrl;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Ctrl,
                               check::Xfer::RestoreHost));
    cpu.compute(arm::kNumCtrlRegs * cm.ctrlRegAccess);

    // (6) Configure the timers for the host.
    kvm_.vtimer().onWorldSwitchOut(cpu, vcpu);

    // (7) Save VM-specific VGIC state.
    if (cfg.useVgic) {
        saveVgic(cpu, vcpu);
        vcpu.vm().vdist().syncFromShadow(vcpu);
    }

    // (8) Restore all host GP registers.
    cpu.regs().gp = host.regs.gp;
    KVMARM_CHECK_ON(ck, stateTransfer(&cpu.machine(), cpu.id(),
                               check::StateClass::Gp,
                               check::Xfer::RestoreHost));
    cpu.compute(arm::kNumGpRegs * cm.gpRegSave);

    // (9) Trap into kernel mode.
    cpu.setOsVectors(&kvm_.host());
    cpu.setHypReturn(Mode::Svc, false);
    vcpu.hotStats.worldSwitchOut.inc(vcpu.stats, "worldswitch.out");
    KVMARM_TRACE(Debug, "cpu%u: world switch out (vcpu %u)", cpu.id(),
                 vcpu.index());
    KVMARM_CHECK_ON(ck, worldSwitchEnd(&cpu.machine(), cpu.id(),
                                check::SwitchDir::ToHost, cpu.hyp()));
}

} // namespace kvmarm::core
