/**
 * @file
 * A virtual machine: guest memory geometry, Stage-2 tables, the virtual
 * distributor, in-kernel device regions, the user-space (QEMU) MMIO exit
 * handler, and the KVM_IRQ_LINE injection entry point.
 */

#ifndef KVMARM_CORE_VM_HH
#define KVMARM_CORE_VM_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/stage2_mmu.hh"
#include "core/types.hh"
#include "core/vcpu.hh"
#include "core/vgic_emul.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::core {

class Kvm;

/** One guest virtual machine. */
class Vm : public Snapshottable
{
  public:
    Vm(Kvm &kvm, std::uint16_t vmid, Addr guest_ram_size);
    ~Vm();

    Vm(const Vm &) = delete;
    Vm &operator=(const Vm &) = delete;

    Kvm &kvm() { return kvm_; }
    std::uint16_t vmid() const { return vmid_; }

    /** Guest RAM window in IPA space (mirrors the machine's layout). */
    Addr ramBase() const;
    Addr ramSize() const { return ramSize_; }

    Stage2Mmu &stage2() { return stage2_; }
    VgicDistEmul &vdist() { return vdist_; }

    /** Create a VCPU pinned to physical CPU @p phys_cpu. */
    VCpu &addVcpu(CpuId phys_cpu);
    std::vector<std::unique_ptr<VCpu>> &vcpus() { return vcpus_; }
    VCpu *vcpu(unsigned idx) { return vcpus_.at(idx).get(); }

    /** The VCPU currently resident on physical CPU @p phys, if any. */
    VCpu *runningOn(CpuId phys);

    /// @name Device plumbing
    /// @{
    using KernelDeviceHandler =
        std::function<std::uint64_t(bool is_write, Addr offset,
                                    std::uint64_t value, unsigned len)>;

    /** Register an in-kernel emulated device (KVM_CREATE_DEVICE-shaped);
     *  MMIO to [base, base+size) is handled without exiting to user
     *  space. */
    void addKernelDevice(Addr base, Addr size, KernelDeviceHandler handler);

    /** Find an in-kernel device covering @p ipa. */
    KernelDeviceHandler *kernelDeviceAt(Addr ipa, Addr &offset_out);

    using UserMmioHandler =
        std::function<void(arm::ArmCpu &, VCpu &, MmioExit &)>;

    /** Install the user-space (QEMU) MMIO exit handler. */
    void setUserMmioHandler(UserMmioHandler handler) {
        userMmio_ = std::move(handler);
    }
    UserMmioHandler &userMmioHandler() { return userMmio_; }

    /** User-space virtual interrupt injection (KVM_IRQ_LINE, paper §3.5):
     *  emulated devices raise SPIs through the virtual distributor. */
    void irqLine(arm::ArmCpu &current_cpu, IrqId spi);
    /// @}

    /** Guest-physical address of the in-kernel test device used by the
     *  Table 3 "I/O Kernel" micro-benchmark. */
    static constexpr Addr kKernelTestDevBase = 0x0B000000;

    /// @name Snapshottable
    ///
    /// A VM's serializable state lives in its registered components
    /// (stage2, vdist, vcpus); what the Vm record itself carries is the
    /// *skeleton* — vmid, RAM geometry, VCPU count, in-kernel device
    /// regions — which restoreState() cross-checks against this instance,
    /// because a clone must rebuild the skeleton (createVm / addVcpu /
    /// addKernelDevice, in origin order) before restoring. Device handler
    /// and user-MMIO closures cannot be serialized; the rebuild supplies
    /// them.
    /// @{
    std::string snapshotKey() const override;
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    struct KernelDevice
    {
        Addr base;
        Addr size;
        KernelDeviceHandler handler;
    };

    Kvm &kvm_;
    std::uint16_t vmid_;
    Addr ramSize_;
    Stage2Mmu stage2_;
    VgicDistEmul vdist_;
    std::vector<std::unique_ptr<VCpu>> vcpus_;
    std::vector<KernelDevice> kernelDevices_;
    UserMmioHandler userMmio_;
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_VM_HH
