/**
 * @file
 * Hyp-mode memory management (paper §3.1): Hyp mode has its own address
 * space with its own page table format, so the host kernel's tables cannot
 * be reused. The highvisor explicitly builds Hyp-format tables mapping the
 * code and data the lowvisor touches — at the same virtual addresses as in
 * kernel mode — plus the device interfaces the world switch accesses.
 */

#ifndef KVMARM_CORE_HYP_MEM_HH
#define KVMARM_CORE_HYP_MEM_HH

#include "arm/pagetable.hh"
#include "host/mm.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::arm {
class ArmCpu;
class ArmMachine;
} // namespace kvmarm::arm

namespace kvmarm::core {

/** Builder/owner of the Hyp-mode Stage-1 tables (shared by all CPUs). */
class HypMem : public Snapshottable
{
  public:
    HypMem(arm::ArmMachine &machine, host::Mm &mm);
    ~HypMem();

    HypMem(const HypMem &) = delete;
    HypMem &operator=(const HypMem &) = delete;

    /** Build the tables (idempotent): identity map RAM (Hyp code/data and
     *  the structures shared with the highvisor live at kernel virtual
     *  addresses == physical addresses in this model) and the GIC
     *  regions the world switch programs. */
    void build();

    /** Program HTTBR/HSCTLR on @p cpu (per-CPU part of KVM init). */
    void enableOnCpu(arm::ArmCpu &cpu);

    Addr root() const { return root_; }

    /// @name Snapshottable (Kvm registers this)
    ///
    /// Table *contents* live in machine RAM and come back with the RAM
    /// image; what is serialized here is the ownership bookkeeping (root,
    /// table-page list, in allocation order). restoreState() replays the
    /// page-protection invariant events so the restoring machine's engine
    /// tracks the restored table set, not the construction-time one.
    /// @{
    std::string snapshotKey() const override { return "hyp-mem"; }
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    arm::ArmMachine &machine_;
    host::Mm &mm_;
    Addr root_ = 0;
    std::vector<Addr> pages_;
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_HYP_MEM_HH
