/**
 * @file
 * The world switch (paper §3.2): the explicit, software-performed exchange
 * of all Table 1 state between the host and a VM. ARM provides no hardware
 * save/restore (unlike x86's VMCS), so every step below is a real sequence
 * of register moves and MMIO accesses whose costs this simulator charges
 * — which is precisely why VGIC state dominates Table 3's hypercall cost.
 *
 * Runs entirely in Hyp mode; this is the bulk of the lowvisor.
 */

#ifndef KVMARM_CORE_WORLD_SWITCH_HH
#define KVMARM_CORE_WORLD_SWITCH_HH

#include <vector>

#include "arm/registers.hh"
#include "sim/types.hh"

namespace kvmarm::arm {
class ArmCpu;
} // namespace kvmarm::arm

namespace kvmarm::core {

class Kvm;
class VCpu;

/** Host-side context saved across a VM residence on one physical CPU. */
struct HostContext
{
    arm::RegisterFile regs;
    bool valid = false;
};

/** Performs the host<->VM state exchanges. */
class WorldSwitch
{
  public:
    explicit WorldSwitch(Kvm &kvm);

    /**
     * Host -> VM (the ten steps of §3.2): save host GP registers,
     * configure the VGIC and timers for the VM, swap configuration
     * registers, program the trap configuration and shadow IDs, enable
     * Stage-2 translation, restore guest GP registers. The caller (the
     * lowvisor) performs the final trap into guest mode.
     */
    void toVm(arm::ArmCpu &cpu, VCpu &vcpu);

    /**
     * VM -> host (the nine steps of §3.2): save guest GP registers,
     * disable Stage-2, clear traps, swap configuration registers back,
     * save the guest timer and VGIC state, restore host GP registers.
     */
    void toHost(arm::ArmCpu &cpu, VCpu &vcpu);

    HostContext &hostContext(CpuId cpu) { return hostCtx_.at(cpu); }

  private:
    void saveVgic(arm::ArmCpu &cpu, VCpu &vcpu);
    void restoreVgic(arm::ArmCpu &cpu, VCpu &vcpu);
    void switchFpuToVm(arm::ArmCpu &cpu, VCpu &vcpu);
    void switchFpuToHost(arm::ArmCpu &cpu, VCpu &vcpu);

    Kvm &kvm_;
    std::vector<HostContext> hostCtx_;
    /** Host VFP state parked while a guest's is on the hardware. */
    struct FpuPark
    {
        std::array<std::uint64_t, arm::kNumVfpDataRegs> vfp{};
        std::array<std::uint32_t, arm::kNumVfpCtrlRegs> vfpCtrl{};
    };
    std::vector<FpuPark> hostFpu_;

    friend class Lowvisor; // lazy FP trap handling switches FPU in Hyp
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_WORLD_SWITCH_HH
