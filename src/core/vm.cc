#include "core/vm.hh"

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmMachine;

Vm::Vm(Kvm &kvm, std::uint16_t vmid, Addr guest_ram_size)
    : kvm_(kvm), vmid_(vmid), ramSize_(guest_ram_size),
      stage2_(kvm.host().mm(), vmid, ArmMachine::kRamBase, guest_ram_size),
      vdist_(*this)
{
    if (!kvm.enabled())
        fatal("Vm: KVM/ARM is not initialized (no Hyp mode?)");
    if (kvm_.config().useVgic) {
        // The VM sees the VGIC virtual CPU interface at the address where
        // it expects the GIC CPU interface (paper §3.5); the hypervisor
        // control interface stays unmapped and inaccessible.
        stage2_.mapDevicePage(ArmMachine::kGiccBase, ArmMachine::kGicvBase);
    }
}

Vm::~Vm() = default;

Addr
Vm::ramBase() const
{
    return ArmMachine::kRamBase;
}

VCpu &
Vm::addVcpu(CpuId phys_cpu)
{
    if (phys_cpu >= kvm_.machine().numCpus())
        fatal("Vm::addVcpu: no physical cpu %u", phys_cpu);
    auto vcpu = std::make_unique<VCpu>(
        *this, static_cast<unsigned>(vcpus_.size()), phys_cpu);
    // Guest virtual time starts at zero: CNTVCT = CNTPCT - CNTVOFF.
    vcpu->cntvoff = kvm_.machine().cpuBase(phys_cpu).now();
    vcpus_.push_back(std::move(vcpu));
    return *vcpus_.back();
}

VCpu *
Vm::runningOn(CpuId phys)
{
    VCpu *v = kvm_.lowvisor().running(phys);
    return (v && &v->vm() == this) ? v : nullptr;
}

void
Vm::addKernelDevice(Addr base, Addr size, KernelDeviceHandler handler)
{
    kernelDevices_.push_back({base, size, std::move(handler)});
}

Vm::KernelDeviceHandler *
Vm::kernelDeviceAt(Addr ipa, Addr &offset_out)
{
    for (KernelDevice &d : kernelDevices_) {
        if (ipa >= d.base && ipa < d.base + d.size) {
            offset_out = ipa - d.base;
            return &d.handler;
        }
    }
    return nullptr;
}

void
Vm::irqLine(arm::ArmCpu &current_cpu, IrqId spi)
{
    vdist_.injectSpi(current_cpu, spi);
}

} // namespace kvmarm::core
