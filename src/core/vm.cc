#include "core/vm.hh"

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmMachine;

Vm::Vm(Kvm &kvm, std::uint16_t vmid, Addr guest_ram_size)
    : kvm_(kvm), vmid_(vmid), ramSize_(guest_ram_size),
      stage2_(kvm.host().mm(), vmid, ArmMachine::kRamBase, guest_ram_size),
      vdist_(*this)
{
    if (!kvm.enabled())
        fatal("Vm: KVM/ARM is not initialized (no Hyp mode?)");
    if (kvm_.config().useVgic) {
        // The VM sees the VGIC virtual CPU interface at the address where
        // it expects the GIC CPU interface (paper §3.5); the hypervisor
        // control interface stays unmapped and inaccessible.
        stage2_.mapDevicePage(ArmMachine::kGiccBase, ArmMachine::kGicvBase);
    }
    kvm_.registerVm(this);
    kvm_.machine().registerSnapshottable(&stage2_);
    kvm_.machine().registerSnapshottable(&vdist_);
    kvm_.machine().registerSnapshottable(this);
}

Vm::~Vm()
{
    kvm_.machine().unregisterSnapshottable(this);
    kvm_.machine().unregisterSnapshottable(&vdist_);
    kvm_.machine().unregisterSnapshottable(&stage2_);
    kvm_.unregisterVm(this);
}

std::string
Vm::snapshotKey() const
{
    return "vm-" + std::to_string(vmid_);
}

void
Vm::saveState(SnapshotWriter &w)
{
    w.u32(vmid_);
    w.u64(ramSize_);
    w.u32(static_cast<std::uint32_t>(vcpus_.size()));
    w.u32(static_cast<std::uint32_t>(kernelDevices_.size()));
    for (const KernelDevice &d : kernelDevices_) {
        w.u64(d.base);
        w.u64(d.size);
    }
    w.b(static_cast<bool>(userMmio_));
}

void
Vm::restoreState(SnapshotReader &r)
{
    if (r.u32() != vmid_)
        fatal("vm-%u: snapshot vmid differs — clone VMs in origin order",
              vmid_);
    if (r.u64() != ramSize_)
        fatal("vm-%u: snapshot guest RAM size differs", vmid_);
    std::uint32_t nvcpus = r.u32();
    if (nvcpus != vcpus_.size())
        fatal("vm-%u: snapshot has %u VCPUs, this VM has %zu — addVcpu "
              "before restoring", vmid_, nvcpus, vcpus_.size());
    std::uint32_t ndevs = r.u32();
    if (ndevs != kernelDevices_.size())
        fatal("vm-%u: snapshot has %u kernel devices, this VM has %zu — "
              "addKernelDevice before restoring", vmid_, ndevs,
              kernelDevices_.size());
    for (std::uint32_t i = 0; i < ndevs; ++i) {
        Addr base = r.u64();
        Addr size = r.u64();
        if (base != kernelDevices_[i].base || size != kernelDevices_[i].size)
            fatal("vm-%u: kernel device %u region differs from snapshot",
                  vmid_, i);
    }
    bool had_user_mmio = r.b();
    if (had_user_mmio && !userMmio_)
        fatal("vm-%u: snapshot expects a user-space MMIO handler — "
              "setUserMmioHandler before restoring", vmid_);
}

Addr
Vm::ramBase() const
{
    return ArmMachine::kRamBase;
}

VCpu &
Vm::addVcpu(CpuId phys_cpu)
{
    if (phys_cpu >= kvm_.machine().numCpus())
        fatal("Vm::addVcpu: no physical cpu %u", phys_cpu);
    auto vcpu = std::make_unique<VCpu>(
        *this, static_cast<unsigned>(vcpus_.size()), phys_cpu);
    // Guest virtual time starts at zero: CNTVCT = CNTPCT - CNTVOFF.
    vcpu->cntvoff = kvm_.machine().cpuBase(phys_cpu).now();
    vcpus_.push_back(std::move(vcpu));
    return *vcpus_.back();
}

VCpu *
Vm::runningOn(CpuId phys)
{
    VCpu *v = kvm_.lowvisor().running(phys);
    return (v && &v->vm() == this) ? v : nullptr;
}

void
Vm::addKernelDevice(Addr base, Addr size, KernelDeviceHandler handler)
{
    kernelDevices_.push_back({base, size, std::move(handler)});
}

Vm::KernelDeviceHandler *
Vm::kernelDeviceAt(Addr ipa, Addr &offset_out)
{
    for (KernelDevice &d : kernelDevices_) {
        if (ipa >= d.base && ipa < d.base + d.size) {
            offset_out = ipa - d.base;
            return &d.handler;
        }
    }
    return nullptr;
}

void
Vm::irqLine(arm::ArmCpu &current_cpu, IrqId spi)
{
    vdist_.injectSpi(current_cpu, spi);
}

} // namespace kvmarm::core
