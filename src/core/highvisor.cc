#include "core/highvisor.hh"

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "core/kvm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::ExcClass;
using arm::Hsr;
using arm::SensitiveOp;

Highvisor::Highvisor(Kvm &kvm) : kvm_(kvm)
{
}

void
Highvisor::handleExit(ArmCpu &cpu, VCpu &vcpu, const Hsr &hsr)
{
    cpu.compute(kvm_.config().exitDispatchCost);

    switch (hsr.ec) {
      case ExcClass::DataAbort:
      case ExcClass::PrefetchAbort:
        handleDataAbort(cpu, vcpu, hsr);
        return;
      case ExcClass::Wfi:
        handleWfi(cpu, vcpu);
        return;
      case ExcClass::Cp15Trap:
      case ExcClass::Cp14Trap:
        handleSysTrap(cpu, vcpu, hsr);
        return;
      case ExcClass::TimerTrap:
        kvm_.vtimer().emulateTrappedAccess(
            cpu, vcpu, static_cast<arm::TimerAccess>(hsr.iss), hsr.sysWrite,
            hsr.sysValue, hsr.sysValue64);
        return;
      case ExcClass::Hvc:
        handleHvc(cpu, vcpu, hsr);
        return;
      case ExcClass::Smc:
        // Emulated as an architecturally-undefined no-op: KVM/ARM traps
        // SMC so a guest cannot reach the secure monitor (Table 1).
        vcpu.stats.counter("emul.smc").inc();
        return;
      case ExcClass::Irq:
        // The host kernel serviced the physical interrupt the moment the
        // world switch re-enabled interrupts; nothing further to do.
        return;
      default:
        panic("highvisor: unexpected exit class %s",
              arm::excClassName(hsr.ec));
    }
}

void
Highvisor::handleDataAbort(ArmCpu &cpu, VCpu &vcpu, const Hsr &hsr)
{
    Addr ipa = hsr.hpfar | (hsr.hdfar & (kPageSize - 1));

    if (vcpu.vm().stage2().isGuestRam(ipa)) {
        // Stage-2 page fault on normal memory: allocate through the host
        // kernel (get_user_pages) and map it — paper §3.3.
        vcpu.hotStats.faultStage2.inc(vcpu.stats, "fault.stage2");
        cpu.compute(host::Mm::kGetUserPagesCost);
        vcpu.vm().stage2().handleRamFault(ipa);
        return;
    }

    handleMmio(cpu, vcpu, ipa, hsr);
}

void
Highvisor::handleMmio(ArmCpu &cpu, VCpu &vcpu, Addr ipa, const Hsr &hsr)
{
    const KvmConfig &cfg = kvm_.config();
    cpu.compute(cfg.mmioFaultCost);
    KVMARM_TRACE(Debug, "cpu%u: MMIO %s at ipa %#llx", cpu.id(),
                 hsr.isWrite ? "write" : "read",
                 static_cast<unsigned long long>(ipa));

    if (!hsr.isv) {
        // The instruction did not populate the syndrome register; load
        // and decode it in software (the out-of-tree decoder, paper §4).
        if (!cfg.mmioDecodeFallback) {
            panic("highvisor: MMIO at %#llx without syndrome and decode "
                  "support disabled", static_cast<unsigned long long>(ipa));
        }
        vcpu.hotStats.mmioDecoded.inc(vcpu.stats, "mmio.decoded");
        cpu.compute(cfg.mmioDecodeCost);
    }

    VgicDistEmul &vdist = vcpu.vm().vdist();

    // The virtual distributor: in-kernel when the VGIC is in use,
    // emulated in user space (QEMU's GIC model) otherwise.
    if (ipa >= ArmMachine::kGicdBase &&
        ipa < ArmMachine::kGicdBase + ArmMachine::kGicRegionSize) {
        Addr off = ipa - ArmMachine::kGicdBase;
        std::uint64_t result = 0;
        if (cfg.useVgic) {
            vcpu.hotStats.mmioVdist.inc(vcpu.stats, "mmio.vdist");
            result = vdist.handleMmio(cpu, vcpu, off, hsr.isWrite,
                                      hsr.sysValue, hsr.accessLen);
        } else {
            vcpu.stats.counter("mmio.user.gicd").inc();
            kvm_.host().runInUserspace(cpu, [&] {
                cpu.compute(cfg.qemuGicCost); // QEMU GIC device model
                result = vdist.handleMmio(cpu, vcpu, off, hsr.isWrite,
                                          hsr.sysValue, hsr.accessLen);
            });
        }
        cpu.completeMmio(result);
        return;
    }

    // The CPU interface only faults when there is no VGIC (otherwise
    // Stage-2 maps it straight onto the hardware GICV); ACK and EOI are
    // then emulated in user space — the dominant cost of the paper's
    // no-VGIC configuration.
    if (ipa >= ArmMachine::kGiccBase &&
        ipa < ArmMachine::kGiccBase + ArmMachine::kGicRegionSize) {
        Addr off = ipa - ArmMachine::kGiccBase;
        std::uint64_t result = 0;
        vcpu.stats.counter("mmio.user.gicc").inc();
        kvm_.host().runInUserspace(cpu, [&] {
            cpu.compute(cfg.qemuGicCost); // QEMU GIC device model
            if (!hsr.isWrite && off == arm::gicc::IAR)
                result = vdist.softAck(vcpu);
            else if (hsr.isWrite && off == arm::gicc::EOIR)
                vdist.softEoi(vcpu, static_cast<std::uint32_t>(hsr.sysValue));
            else if (!hsr.isWrite && off == arm::gicc::CTLR)
                result = 1;
            // CTLR/PMR writes accepted.
        });
        cpu.completeMmio(result);
        return;
    }

    // In-kernel emulated devices (KVM_CREATE_DEVICE-shaped).
    Addr dev_off = 0;
    if (auto *handler = vcpu.vm().kernelDeviceAt(ipa, dev_off)) {
        vcpu.hotStats.mmioKernel.inc(vcpu.stats, "mmio.kernel");
        std::uint64_t result =
            (*handler)(hsr.isWrite, dev_off, hsr.sysValue, hsr.accessLen);
        cpu.completeMmio(result);
        return;
    }

    // Everything else exits to user space (QEMU), paper §3.4.
    vcpu.hotStats.mmioUser.inc(vcpu.stats, "mmio.user");
    MmioExit exit;
    exit.ipa = ipa;
    exit.isWrite = hsr.isWrite;
    exit.len = hsr.accessLen;
    exit.data = hsr.sysValue;
    auto &handler = vcpu.vm().userMmioHandler();
    if (!handler) {
        warn("highvisor: MMIO exit at %#llx with no user-space emulator",
             static_cast<unsigned long long>(ipa));
        cpu.completeMmio(0);
        return;
    }
    kvm_.host().runInUserspace(cpu,
                               [&] { handler(cpu, vcpu, exit); });
    if (!exit.handled)
        warn("qemu: unhandled MMIO %s at %#llx",
             exit.isWrite ? "write" : "read", static_cast<unsigned long long>(ipa));
    cpu.completeMmio(exit.data);
}

void
Highvisor::handleWfi(ArmCpu &cpu, VCpu &vcpu)
{
    // Block the VCPU thread on the host scheduler until a virtual
    // interrupt is deliverable (paper §3.2: WFI "should only be performed
    // by the hypervisor to maintain control of the hardware").
    vcpu.hotStats.emulWfi.inc(vcpu.stats, "emul.wfi");
    vcpu.blocked = true;
    VgicDistEmul &vdist = vcpu.vm().vdist();
    kvm_.host().blockUntil(cpu, [&] {
        return vcpu.kicked || vcpu.stopRequested || vcpu.softVirqPending ||
               vdist.hasPendingFor(vcpu);
    });
    vcpu.blocked = false;
    vcpu.kicked = false;
}

void
Highvisor::handleSysTrap(ArmCpu &cpu, VCpu &vcpu, const Hsr &hsr)
{
    auto op = static_cast<SensitiveOp>(hsr.iss);
    vcpu.hotStats.emulSysreg.inc(vcpu.stats, "emul.sysreg");
    switch (op) {
      case SensitiveOp::ActlrRead:
        cpu.setTrappedReadValue(vcpu.shadowActlr);
        return;
      case SensitiveOp::ActlrWrite:
        // The shadow ACTLR is read-only to guests; writes are ignored.
        return;
      case SensitiveOp::CacheSetWay:
        // Emulated by cleaning the affected guest pages; modelled as its
        // processing cost.
        cpu.compute(900);
        return;
      case SensitiveOp::L2ctlrRead: {
        // Report the VM's core count, not the host's.
        std::uint32_t ncpu =
            static_cast<std::uint32_t>(vcpu.vm().vcpus().size());
        cpu.setTrappedReadValue(((ncpu - 1) << 24) | 0x020000);
        return;
      }
      case SensitiveOp::L2ctlrWrite:
        return;
      case SensitiveOp::L2ectlrRead:
        cpu.setTrappedReadValue(0);
        return;
      case SensitiveOp::Cp14Read:
        cpu.setTrappedReadValue(vcpu.shadowCp14);
        return;
      case SensitiveOp::Cp14Write:
        vcpu.shadowCp14 = hsr.sysValue;
        return;
    }
    panic("highvisor: unknown sensitive op %u", hsr.iss);
}

void
Highvisor::handleHvc(ArmCpu &cpu, VCpu &vcpu, const Hsr &hsr)
{
    switch (hsr.iss) {
      case hvc::kTestHypercall:
        // Table 3 "Hypercall": two world switches and no work.
        vcpu.hotStats.emulHypercall.inc(vcpu.stats, "emul.hypercall");
        return;
      case hvc::kPsciOff:
        // PSCI SYSTEM_OFF: request every VCPU of the VM to stop.
        for (auto &v : vcpu.vm().vcpus()) {
            v->stopRequested = true;
            if (v->blocked)
                cpu.machine().cpuBase(v->physCpu()).kickAt(cpu.now());
        }
        return;
      default:
        vcpu.stats.counter("emul.hvc.unknown").inc();
        return;
    }
}

} // namespace kvmarm::core
