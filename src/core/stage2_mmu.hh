/**
 * @file
 * Stage-2 page table management and fault handling (paper §3.3): the
 * highvisor allocates guest memory by calling the host kernel's
 * get_user_pages-shaped service and installs IPA->PA translations; all
 * other IPAs fault, which is both the isolation mechanism and the MMIO
 * trapping mechanism.
 */

#ifndef KVMARM_CORE_STAGE2_MMU_HH
#define KVMARM_CORE_STAGE2_MMU_HH

#include <unordered_map>

#include "arm/pagetable.hh"
#include "host/mm.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace kvmarm::core {

/** Owner of one VM's Stage-2 translation tables. */
class Stage2Mmu : public Snapshottable
{
  public:
    Stage2Mmu(host::Mm &mm, std::uint16_t vmid, Addr ipa_ram_base,
              Addr ipa_ram_size);
    ~Stage2Mmu();

    Stage2Mmu(const Stage2Mmu &) = delete;
    Stage2Mmu &operator=(const Stage2Mmu &) = delete;

    /** VTTBR value: table root plus VMID. */
    std::uint64_t vttbr() const;

    std::uint16_t vmid() const { return vmid_; }

    /** True if @p ipa lies in the VM's RAM window. */
    bool isGuestRam(Addr ipa) const;

    /**
     * Handle a Stage-2 translation fault on guest RAM: allocate a host
     * page (get_user_pages) and map it. @return false if @p ipa is not
     * RAM (caller treats the access as MMIO).
     */
    bool handleRamFault(Addr ipa);

    /** Map one IPA page to a physical device page (e.g. the VM's GICC
     *  address onto the physical GICV, paper §3.5). */
    void mapDevicePage(Addr ipa, Addr pa);

    /** Remove a mapping (swap/ballooning paths); frees the backing page. */
    bool unmapPage(Addr ipa);

    /** Translate an IPA the highvisor wants to touch directly (e.g. to
     *  read a guest instruction for MMIO decode). */
    std::optional<Addr> ipaToPa(Addr ipa) const;

    /** Release every page the VM holds (VM teardown). */
    void releaseAll();

    std::size_t mappedRamPages() const { return ramPages_.size(); }

    /// @name Snapshottable (Vm registers this)
    ///
    /// Table contents come back with the RAM image; this serializes the
    /// bookkeeping (root, table pages in allocation order, RAM mappings
    /// sorted by IPA). restoreState() replays the Stage-2 invariant events
    /// — unmap/unprotect the current state, protect-then-map the restored
    /// state — so the restoring machine's engine converges on the
    /// snapshot. Device mappings are not replayed: they are established by
    /// VM construction, which a clone performs identically.
    /// @{
    std::string snapshotKey() const override;
    void saveState(SnapshotWriter &w) override;
    void restoreState(SnapshotReader &r) override;
    /// @}

  private:
    host::Mm &mm_;
    std::uint16_t vmid_;
    Addr ipaRamBase_;
    Addr ipaRamSize_;
    arm::PageTableEditor editor_;
    Addr root_ = 0;
    /** IPA page -> backing host page, for teardown and refcounting. */
    std::unordered_map<Addr, Addr> ramPages_;
    std::vector<Addr> tablePages_; //!< pages consumed by the tables
};

} // namespace kvmarm::core

#endif // KVMARM_CORE_STAGE2_MMU_HH
