#include "core/vgic_emul.hh"

#include <algorithm>

#include "arm/cpu.hh"
#include "arm/machine.hh"
#include "core/kvm.hh"
#include "core/vm.hh"
#include "sim/logging.hh"

namespace kvmarm::core {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::ListReg;
using arm::LrState;

namespace {
constexpr std::uint8_t kDefaultPrio = 0xA0;
} // namespace

VgicDistEmul::VgicDistEmul(Vm &vm) : vm_(vm)
{
    spiPriority_.fill(kDefaultPrio);
    spiTargets_.fill(0x01);
}

VgicDistEmul::Bank &
VgicDistEmul::bankFor(const VCpu &vcpu)
{
    if (banks_.size() <= vcpu.index())
        banks_.resize(vcpu.index() + 1);
    return banks_[vcpu.index()];
}

const VgicDistEmul::Bank &
VgicDistEmul::bankFor(const VCpu &vcpu) const
{
    return const_cast<VgicDistEmul *>(this)->bankFor(vcpu);
}

std::string
VgicDistEmul::snapshotKey() const
{
    return "vdist-" + std::to_string(vm_.vmid());
}

void
VgicDistEmul::saveState(SnapshotWriter &w)
{
    w.b(ctlrEnabled_);
    w.pod(spiEnabled_);
    w.pod(spiPending_);
    w.pod(spiPriority_);
    w.pod(spiTargets_);
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &bank : banks_) {
        w.pod(bank.sgiSources);
        w.pod(bank.ppiPending);
        w.pod(bank.enabled);
        w.pod(bank.priority);
        w.u32(static_cast<std::uint32_t>(bank.softActive.size()));
        for (IrqId irq : bank.softActive)
            w.u32(irq);
    }
}

void
VgicDistEmul::restoreState(SnapshotReader &r)
{
    ctlrEnabled_ = r.b();
    r.pod(spiEnabled_);
    r.pod(spiPending_);
    r.pod(spiPriority_);
    r.pod(spiTargets_);
    std::uint32_t nbanks = r.u32();
    banks_.clear();
    banks_.resize(nbanks);
    for (Bank &bank : banks_) {
        r.pod(bank.sgiSources);
        r.pod(bank.ppiPending);
        r.pod(bank.enabled);
        r.pod(bank.priority);
        std::uint32_t nactive = r.u32();
        bank.softActive.clear();
        for (std::uint32_t i = 0; i < nactive; ++i)
            bank.softActive.push_back(r.u32());
    }
}

Cycles
VgicDistEmul::lockCost() const
{
    // The emulated distributor is shared VM state: every access takes the
    // distributor lock (paper §6: "this emulated access must be
    // synchronized between virtual cores using a software locking
    // mechanism, which adds significant overhead for IPIs").
    return 2 * vm_.kvm().machine().cost().atomicOp;
}

VgicDistEmul::Cand
VgicDistEmul::bestCandidate(const VCpu &vcpu) const
{
    Cand best;
    if (!ctlrEnabled_)
        return best;
    const Bank &bank = bankFor(vcpu);

    auto consider = [&](IrqId irq, std::uint8_t prio, unsigned src) {
        if (prio < best.prio || (prio == best.prio && irq < best.irq))
            best = {irq, prio, src};
    };

    for (IrqId sgi = 0; sgi < arm::kNumSgis; ++sgi) {
        std::uint16_t sources = bank.sgiSources[sgi];
        if (sources && bank.enabled[sgi]) {
            unsigned src = 0;
            while (!(sources & (1u << src)))
                ++src;
            consider(sgi, bank.priority[sgi], src);
        }
    }
    for (IrqId ppi = arm::kFirstPpi; ppi < arm::kFirstSpi; ++ppi) {
        if (bank.ppiPending[ppi] && bank.enabled[ppi])
            consider(ppi, bank.priority[ppi], 0);
    }
    for (IrqId spi = arm::kFirstSpi; spi < arm::kMaxIrqs; ++spi) {
        if (spiPending_[spi] && spiEnabled_[spi] &&
            (spiTargets_[spi] & (1u << vcpu.index()))) {
            consider(spi, spiPriority_[spi], 0);
        }
    }
    return best;
}

void
VgicDistEmul::consume(VCpu &vcpu, const Cand &c)
{
    Bank &bank = bankFor(vcpu);
    if (c.irq < arm::kNumSgis)
        bank.sgiSources[c.irq] &=
            static_cast<std::uint16_t>(~(1u << c.source));
    else if (c.irq < arm::kFirstSpi)
        bank.ppiPending[c.irq] = false;
    else
        spiPending_[c.irq] = false;
}

void
VgicDistEmul::updateSoftPending(VCpu &vcpu)
{
    vcpu.softVirqPending = bestCandidate(vcpu).irq != arm::kSpuriousIrq;
}

bool
VgicDistEmul::hasPendingFor(const VCpu &vcpu) const
{
    if (bestCandidate(vcpu).irq != arm::kSpuriousIrq)
        return true;
    for (const ListReg &lr : vcpu.vgicShadow.lr) {
        if (lr.state == LrState::Pending || lr.state == LrState::PendingActive)
            return true;
    }
    return false;
}

void
VgicDistEmul::flushToShadow(VCpu &vcpu)
{
    arm::VgicBank &sh = vcpu.vgicShadow;
    sh.en = true;

    // Fill every empty list register with the best software-pending
    // interrupt ("the distributor will program the list registers the
    // next time the VCPU runs", paper §3.5).
    for (ListReg &lr : sh.lr) {
        if (lr.state != LrState::Empty)
            continue;
        Cand c = bestCandidate(vcpu);
        if (c.irq == arm::kSpuriousIrq)
            break;
        consume(vcpu, c);
        lr = ListReg{};
        lr.virq = c.irq;
        lr.priority = c.prio >> 3; // 5-bit LR priority field
        lr.state = LrState::Pending;
        lr.source = static_cast<CpuId>(c.source);
    }

    // More pending than list registers: enable the underflow maintenance
    // interrupt so the hypervisor refills when the LRs drain.
    sh.uie = bestCandidate(vcpu).irq != arm::kSpuriousIrq;
}

void
VgicDistEmul::syncFromShadow(VCpu &vcpu)
{
    Bank &bank = bankFor(vcpu);
    for (ListReg &lr : vcpu.vgicShadow.lr) {
        switch (lr.state) {
          case LrState::Empty:
            // Delivered and EOIed (or never used); nothing to do.
            break;
          case LrState::Pending:
            // Never acknowledged: return it to the software pending state
            // so it can be rerouted (e.g. if the VCPU migrates).
            if (lr.virq < arm::kNumSgis)
                bank.sgiSources[lr.virq] |=
                    static_cast<std::uint16_t>(1u << lr.source);
            else if (lr.virq < arm::kFirstSpi)
                bank.ppiPending[lr.virq] = true;
            else
                spiPending_[lr.virq] = true;
            lr = ListReg{};
            break;
          case LrState::Active:
          case LrState::PendingActive:
            // Guest is mid-handler; the slot stays occupied in the shadow
            // and is rewritten at the next entry.
            break;
        }
    }
}

void
VgicDistEmul::kickVcpu(ArmCpu &current_cpu, VCpu &target)
{
    const auto &cm = vm_.kvm().machine().cost();
    if (target.blocked) {
        target.kicked = true;
        vm_.kvm().machine().cpuBase(target.physCpu())
            .kickAt(current_cpu.now() + cm.ipiWire);
        return;
    }
    VCpu *resident = vm_.kvm().lowvisor().running(target.physCpu());
    if (resident == &target && target.physCpu() != current_cpu.id()) {
        // Force the remote VCPU out of guest mode with a physical SGI so
        // it picks up the new virtual interrupt state. When the caller is
        // the user-space emulator, the SGI is sent via an ioctl into the
        // kernel.
        arm::Mode saved = current_cpu.mode();
        if (saved == arm::Mode::Usr) {
            const host::HostCosts &hc = vm_.kvm().host().costs();
            current_cpu.compute(hc.userToKernel + hc.kernelToUser);
            current_cpu.setMode(arm::Mode::Svc);
        }
        std::uint32_t sgir = (1u << (16 + target.physCpu())) | Kvm::kKickSgi;
        current_cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::SGIR, sgir);
        current_cpu.setMode(saved);
    }
    if (resident == &target && target.physCpu() == current_cpu.id()) {
        // Same-CPU injection (e.g. the vtimer-emulation hrtimer firing
        // under the running guest): surface it as the host timer's
        // physical PPI so the guest exits and the next entry delivers
        // the virtual interrupt. If an exit is already in flight the
        // host just acknowledges the tick.
        vm_.kvm().machine().gicd().raisePpi(current_cpu.id(),
                                            arm::kHypTimerPpi);
    }
}

void
VgicDistEmul::injectSpi(ArmCpu &current_cpu, IrqId irq)
{
    if (irq < arm::kFirstSpi || irq >= arm::kMaxIrqs)
        fatal("vgic: injectSpi with bad irq %u", irq);
    current_cpu.compute(lockCost());
    spiPending_[irq] = true;
    unsigned target = routeSpi(irq);
    if (target < vm_.vcpus().size()) {
        VCpu &vcpu = *vm_.vcpus()[target];
        if (!vm_.kvm().config().useVgic)
            updateSoftPending(vcpu);
        kickVcpu(current_cpu, vcpu);
    }
}

void
VgicDistEmul::injectPpi(ArmCpu &current_cpu, VCpu &target, IrqId ppi)
{
    if (ppi < arm::kFirstPpi || ppi >= arm::kFirstSpi)
        fatal("vgic: injectPpi with bad ppi %u", ppi);
    current_cpu.compute(lockCost());
    bankFor(target).ppiPending[ppi] = true;
    if (!vm_.kvm().config().useVgic)
        updateSoftPending(target);
    kickVcpu(current_cpu, target);
}

unsigned
VgicDistEmul::routeSpi(IrqId irq) const
{
    std::uint8_t mask = spiTargets_[irq];
    for (unsigned i = 0; i < 8; ++i) {
        if (mask & (1u << i))
            return i;
    }
    return 0;
}

std::uint32_t
VgicDistEmul::softAck(VCpu &vcpu)
{
    Cand c = bestCandidate(vcpu);
    if (c.irq == arm::kSpuriousIrq) {
        updateSoftPending(vcpu);
        return arm::kSpuriousIrq;
    }
    consume(vcpu, c);
    bankFor(vcpu).softActive.push_back(c.irq);
    updateSoftPending(vcpu);
    return c.irq | (c.irq < arm::kNumSgis ? (c.source << 10) : 0);
}

void
VgicDistEmul::softEoi(VCpu &vcpu, std::uint32_t value)
{
    IrqId irq = value & 0x3FF;
    auto &active = bankFor(vcpu).softActive;
    auto it = std::find(active.rbegin(), active.rend(), irq);
    if (it == active.rend()) {
        warn("vgic: soft EOI for inactive irq %u", irq);
        return;
    }
    active.erase(std::next(it).base());
    updateSoftPending(vcpu);
}

void
VgicDistEmul::writeSgir(ArmCpu &cpu, VCpu &sender, std::uint32_t value)
{
    unsigned filter = bits(value, 25, 24);
    std::uint8_t target_list = static_cast<std::uint8_t>(bits(value, 23, 16));
    IrqId sgi = static_cast<IrqId>(bits(value, 3, 0));
    unsigned nvcpus = static_cast<unsigned>(vm_.vcpus().size());

    std::uint8_t mask = 0;
    switch (filter) {
      case 0:
        mask = target_list;
        break;
      case 1:
        mask = static_cast<std::uint8_t>(((1u << nvcpus) - 1) &
                                         ~(1u << sender.index()));
        break;
      case 2:
        mask = static_cast<std::uint8_t>(1u << sender.index());
        break;
      default:
        return;
    }

    // Sending a virtual IPI requires the distributor lock plus routing
    // and per-target bookkeeping (paper §6).
    cpu.compute(2 * lockCost() + vm_.kvm().config().sgirEmulationCost);

    for (unsigned t = 0; t < nvcpus; ++t) {
        if (!(mask & (1u << t)))
            continue;
        VCpu &target = *vm_.vcpus()[t];
        setSgiPending(t, sgi, sender.index());
        if (!vm_.kvm().config().useVgic)
            updateSoftPending(target);
        if (t != sender.index())
            kickVcpu(cpu, target);
    }
}

void
VgicDistEmul::setSgiPending(unsigned target_idx, IrqId sgi,
                            unsigned source_idx)
{
    if (banks_.size() <= target_idx)
        banks_.resize(target_idx + 1);
    banks_[target_idx].sgiSources[sgi] |=
        static_cast<std::uint16_t>(1u << source_idx);
}

std::uint64_t
VgicDistEmul::handleMmio(ArmCpu &cpu, VCpu &vcpu, Addr offset, bool is_write,
                         std::uint64_t value, unsigned len)
{
    (void)len;
    cpu.compute(lockCost());
    Bank &bank = bankFor(vcpu);
    std::uint32_t v = static_cast<std::uint32_t>(value);

    if (is_write) {
        if (offset == arm::gicd::CTLR) {
            ctlrEnabled_ = v & 1;
            for (auto &vc : vm_.vcpus())
                updateSoftPending(*vc);
        } else if (offset == arm::gicd::SGIR) {
            writeSgir(cpu, vcpu, v);
        } else if (offset >= arm::gicd::ISENABLER &&
                   offset < arm::gicd::ISENABLER + 0x80) {
            unsigned word = (offset - arm::gicd::ISENABLER) / 4;
            for (unsigned i = 0; i < 32; ++i) {
                IrqId irq = word * 32 + i;
                if (irq >= arm::kMaxIrqs || !(v & (1u << i)))
                    continue;
                if (irq < arm::kFirstSpi)
                    bank.enabled[irq] = true;
                else
                    spiEnabled_[irq] = true;
            }
        } else if (offset >= arm::gicd::ICENABLER &&
                   offset < arm::gicd::ICENABLER + 0x80) {
            unsigned word = (offset - arm::gicd::ICENABLER) / 4;
            for (unsigned i = 0; i < 32; ++i) {
                IrqId irq = word * 32 + i;
                if (irq >= arm::kMaxIrqs || !(v & (1u << i)))
                    continue;
                if (irq < arm::kFirstSpi)
                    bank.enabled[irq] = false;
                else
                    spiEnabled_[irq] = false;
            }
        } else if (offset >= arm::gicd::IPRIORITYR &&
                   offset < arm::gicd::IPRIORITYR + arm::kMaxIrqs) {
            IrqId irq = static_cast<IrqId>(offset - arm::gicd::IPRIORITYR);
            if (irq < arm::kFirstSpi)
                bank.priority[irq] = static_cast<std::uint8_t>(v);
            else
                spiPriority_[irq] = static_cast<std::uint8_t>(v);
        } else if (offset >= arm::gicd::ITARGETSR &&
                   offset < arm::gicd::ITARGETSR + arm::kMaxIrqs) {
            IrqId irq = static_cast<IrqId>(offset - arm::gicd::ITARGETSR);
            if (irq >= arm::kFirstSpi)
                spiTargets_[irq] = static_cast<std::uint8_t>(v);
        }
        return 0;
    }

    if (offset == arm::gicd::CTLR)
        return ctlrEnabled_ ? 1 : 0;
    if (offset == arm::gicd::TYPER)
        return ((vm_.vcpus().size() - 1) << 5) | (arm::kMaxIrqs / 32 - 1);
    if (offset >= arm::gicd::IPRIORITYR &&
        offset < arm::gicd::IPRIORITYR + arm::kMaxIrqs) {
        IrqId irq = static_cast<IrqId>(offset - arm::gicd::IPRIORITYR);
        return irq < arm::kFirstSpi ? bank.priority[irq] : spiPriority_[irq];
    }
    if (offset >= arm::gicd::ITARGETSR &&
        offset < arm::gicd::ITARGETSR + arm::kMaxIrqs) {
        IrqId irq = static_cast<IrqId>(offset - arm::gicd::ITARGETSR);
        return irq < arm::kFirstSpi ? (1u << vcpu.index())
                                    : spiTargets_[irq];
    }
    if (offset >= arm::gicd::ISPENDR && offset < arm::gicd::ISPENDR + 0x80) {
        unsigned word = (offset - arm::gicd::ISPENDR) / 4;
        std::uint32_t out = 0;
        for (unsigned i = 0; i < 32; ++i) {
            IrqId irq = word * 32 + i;
            if (irq >= arm::kMaxIrqs)
                break;
            bool p;
            if (irq < arm::kNumSgis)
                p = bank.sgiSources[irq] != 0;
            else if (irq < arm::kFirstSpi)
                p = bank.ppiPending[irq];
            else
                p = spiPending_[irq];
            out |= p ? (1u << i) : 0;
        }
        return out;
    }
    return 0;
}

} // namespace kvmarm::core
