#!/usr/bin/env bash
# Regenerate the BENCH_*.json trajectory at the repo root.
#
#   tools/bench.sh              build + run every bench
#   tools/bench.sh host_tput    run one bench by name
#
# host_tput and fleet_tput write their JSON themselves (preserving the
# recorded pre-optimization baseline section; pass --rebaseline through
# REBASE=1). The google-benchmark benches emit their JSON via
# --benchmark_out.
#
# Every BENCH_*.json written here is validated before the script succeeds:
# it must parse as JSON and carry the sections its schema promises
# (schema_version + a non-empty "current" for the native benches, a
# non-empty "benchmarks" array for google-benchmark output). A malformed
# file fails the whole run instead of being committed silently.
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
BUILD=${BUILD:-build}

validate_json() { # <file>
    local file=$1
    if [ ! -s "$file" ]; then
        echo "bench.sh: $file: missing or empty" >&2
        return 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$file" <<'EOF'
import json
import sys

path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
except Exception as e:
    sys.exit(f"bench.sh: {path}: not parseable JSON: {e}")
if not isinstance(doc, dict):
    sys.exit(f"bench.sh: {path}: top level is not an object")
if "schema_version" in doc:
    if not doc.get("current"):
        sys.exit(f"bench.sh: {path}: missing or empty 'current' section")
    if doc.get("bench") in ("host_tput", "fleet_tput", "fleet_clone",
                            "fleet_ring", "fleet_pool"):
        # The throughput benches must record which KVMARM_CHECK modes the
        # run covered ("off,enforce", or "disabled" under the
        # -DKVMARM_INVARIANTS=OFF kill switch).
        mode = doc.get("kvmarm_check")
        if mode not in ("off,enforce", "disabled"):
            sys.exit(
                f"bench.sh: {path}: missing or invalid 'kvmarm_check' "
                f"field (got {mode!r})")
elif "benchmarks" in doc:
    if not doc["benchmarks"]:
        sys.exit(f"bench.sh: {path}: empty 'benchmarks' array")
else:
    sys.exit(
        f"bench.sh: {path}: neither 'schema_version' (native schema) "
        "nor 'benchmarks' (google-benchmark schema) present")
EOF
    else
        # Minimal fallback: the schema marker must at least be present.
        if ! grep -q '"schema_version"\|"benchmarks"' "$file"; then
            echo "bench.sh: $file: no schema marker found" >&2
            return 1
        fi
        if grep -q '"bench": "\(host_tput\|fleet_tput\|fleet_clone\|fleet_ring\|fleet_pool\)"' "$file" &&
            ! grep -q '"kvmarm_check"' "$file"; then
            echo "bench.sh: $file: missing 'kvmarm_check' field" >&2
            return 1
        fi
    fi
}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target \
    host_tput fleet_tput fleet_clone fleet_ring fleet_pool \
    table1_state table3_micro table4_loc \
    fig3_lmbench_up fig4_lmbench_smp fig5_apps_up fig6_apps_smp \
    fig7_energy ablation_split_mode ablation_vgic ablation_ipi \
    ablation_lazy_fpu >/dev/null

selected=${*:-all}

run_gbench() { # <name>
    local name=$1
    if [ "$selected" != all ] && [[ " $selected " != *" $name "* ]]; then
        return 0
    fi
    echo "==== bench: $name ===="
    "$BUILD/bench/$name" \
        --benchmark_out="BENCH_$name.json" --benchmark_out_format=json
    validate_json "BENCH_$name.json"
}

if [ "$selected" = all ] || [[ " $selected " == *" host_tput "* ]]; then
    echo "==== bench: host_tput ===="
    "$BUILD/bench/host_tput" ${REBASE:+--rebaseline} \
        --out BENCH_host_tput.json
    validate_json BENCH_host_tput.json
fi

if [ "$selected" = all ] || [[ " $selected " == *" fleet_tput "* ]]; then
    echo "==== bench: fleet_tput ===="
    "$BUILD/bench/fleet_tput" ${REBASE:+--rebaseline} \
        --out BENCH_fleet.json
    validate_json BENCH_fleet.json
fi

if [ "$selected" = all ] || [[ " $selected " == *" fleet_clone "* ]]; then
    echo "==== bench: fleet_clone ===="
    "$BUILD/bench/fleet_clone" ${REBASE:+--rebaseline} \
        --out BENCH_fleet_clone.json
    validate_json BENCH_fleet_clone.json
fi

if [ "$selected" = all ] || [[ " $selected " == *" fleet_ring "* ]]; then
    echo "==== bench: fleet_ring ===="
    "$BUILD/bench/fleet_ring" ${REBASE:+--rebaseline} \
        --out BENCH_fleet_ring.json
    validate_json BENCH_fleet_ring.json
fi

if [ "$selected" = all ] || [[ " $selected " == *" fleet_pool "* ]]; then
    echo "==== bench: fleet_pool ===="
    "$BUILD/bench/fleet_pool" ${REBASE:+--rebaseline} \
        --out BENCH_fleet_pool.json
    validate_json BENCH_fleet_pool.json
fi

for b in table1_state table3_micro table4_loc fig3_lmbench_up \
    fig4_lmbench_smp fig5_apps_up fig6_apps_smp fig7_energy \
    ablation_split_mode ablation_vgic ablation_ipi ablation_lazy_fpu; do
    run_gbench "$b"
done

echo "==== bench: done ===="
