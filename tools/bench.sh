#!/usr/bin/env bash
# Regenerate the BENCH_*.json trajectory at the repo root.
#
#   tools/bench.sh              build + run every bench
#   tools/bench.sh host_tput    run one bench by name
#
# host_tput writes BENCH_host_tput.json itself (preserving the recorded
# pre-optimization baseline section; pass --rebaseline through REBASE=1).
# The google-benchmark benches emit their JSON via --benchmark_out.
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
BUILD=${BUILD:-build}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target \
    host_tput table1_state table3_micro table4_loc \
    fig3_lmbench_up fig4_lmbench_smp fig5_apps_up fig6_apps_smp \
    fig7_energy ablation_split_mode ablation_vgic ablation_ipi \
    ablation_lazy_fpu >/dev/null

selected=${*:-all}

run_gbench() { # <name>
    local name=$1
    if [ "$selected" != all ] && [[ " $* " != *" $name "* ]] &&
        [[ " $selected " != *" $name "* ]]; then
        return 0
    fi
    echo "==== bench: $name ===="
    "$BUILD/bench/$name" \
        --benchmark_out="BENCH_$name.json" --benchmark_out_format=json
}

if [ "$selected" = all ] || [[ " $selected " == *" host_tput "* ]]; then
    echo "==== bench: host_tput ===="
    "$BUILD/bench/host_tput" ${REBASE:+--rebaseline} \
        --out BENCH_host_tput.json
fi

for b in table1_state table3_micro table4_loc fig3_lmbench_up \
    fig4_lmbench_smp fig5_apps_up fig6_apps_smp fig7_energy \
    ablation_split_mode ablation_vgic ablation_ipi ablation_lazy_fpu; do
    run_gbench "$b"
done

echo "==== bench: done ===="
