#!/usr/bin/env bash
# CI driver: builds and tests the three supported configurations and runs
# the static checks. Usable locally (tools/ci.sh) and from the GitHub
# workflow; each leg can be run alone (tools/ci.sh asan).
#
#   release    RelWithDebInfo, default checker mode (Off at runtime)
#   asan       AddressSanitizer + UBSan, whole test suite
#   tsan       ThreadSanitizer, fleet executor tests + fleet smoke bench
#   enforce    release binaries, whole suite under KVMARM_CHECK=enforce
#   nochecks   KVMARM_INVARIANTS=OFF compile check (hooks compile away)
#   bench      host_tput/fleet_tput --smoke + table3_micro vs the golden
#   domlint    full-tree domlint + the fixture corpus (must-fire/must-pass)
#   lint       domlint + clang-tidy (or strict-GCC fallback) on changed files
#   threadsafety  clang -Wthread-safety on the annotated locking TUs
#   format     tools/format.sh --check
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

run_suite() { # <build-dir> [env...]
    local dir=$1
    shift
    env "$@" ctest --test-dir "$dir" --output-on-failure
}

leg_release() {
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-ci-release -j"$JOBS"
    run_suite build-ci-release
    # Fleet determinism and clone bit-identity must also hold with every
    # machine's invariant engine live: per-VM sim cycles are compared
    # across thread counts (and against snapshot clones) while each engine
    # checks its own machine.
    env KVMARM_CHECK=enforce ctest --test-dir build-ci-release \
        --output-on-failure -R 'FleetDeterminism|FleetClone|FleetStress'
}

leg_asan() {
    cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DKVMARM_SANITIZE=address,undefined
    cmake --build build-ci-asan -j"$JOBS"
    # ASan and the invariant checker compose: enforce while sanitized.
    run_suite build-ci-asan KVMARM_CHECK=enforce \
        ASAN_OPTIONS=detect_stack_use_after_return=0
}

leg_tsan() {
    # The fleet executor is the one place host threads run concurrently;
    # TSan must see zero races across the worker pool, the mutexed logging
    # writer, the invariant engine, and the annotated fiber switches.
    # ctest selects by the sanitize-thread label tests/CMakeLists derives
    # from KVMARM_SANITIZE.
    cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DKVMARM_SANITIZE=thread
    cmake --build build-ci-tsan -j"$JOBS" \
        --target fleet_tput fleet_clone fleet_ring fleet_pool \
        fleet_test fleet_stress_test
    TSAN_OPTIONS=halt_on_error=1 \
        ctest --test-dir build-ci-tsan --output-on-failure \
        -L sanitize-thread -R '^Fleet'
    # The seeded stress schedule under TSan: live submissions, mid-run
    # spawns, ring rendezvous and park/notify all race-checked at up to
    # 8 workers (the suite sweeps 1/2/4/8 internally).
    TSAN_OPTIONS=halt_on_error=1 \
        ctest --test-dir build-ci-tsan --output-on-failure -L stress
    # Enforce-mode fleet under TSan: the per-machine engines' checked hot
    # path takes no locks, so this is the proof it is race-free.
    TSAN_OPTIONS=halt_on_error=1 \
        env KVMARM_CHECK=enforce ctest --test-dir build-ci-tsan \
        --output-on-failure -L sanitize-thread \
        -R 'FleetDeterminism|FleetClone'
    # fleet_tput --smoke sweeps both check modes itself (the *_enforce
    # rows), so one TSan run covers the unchecked and checked hot paths.
    TSAN_OPTIONS=halt_on_error=1 build-ci-tsan/bench/fleet_tput --smoke
    # fleet_clone --smoke under TSan: 8 worker threads concurrently
    # COW-fault private pages out of one shared snapshot image — the race
    # TSan is here to rule out.
    TSAN_OPTIONS=halt_on_error=1 build-ci-tsan/bench/fleet_clone --smoke
    # fleet_ring --smoke under TSan: communicating VMs park/notify through
    # the ring-channel mutex and the fleet work queues while exchanging
    # cycle-stamped messages; the bench's built-in bit-identity gate runs
    # with race detection live.
    TSAN_OPTIONS=halt_on_error=1 build-ci-tsan/bench/fleet_ring --smoke
    # fleet_pool --smoke under TSan: worker threads submit clone jobs into
    # the live channel from inside running jobs while other workers steal
    # them — the scheduler-mutation race TSan is here to rule out.
    TSAN_OPTIONS=halt_on_error=1 build-ci-tsan/bench/fleet_pool --smoke
}

leg_enforce() {
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-ci-release -j"$JOBS"
    run_suite build-ci-release KVMARM_CHECK=enforce
}

leg_nochecks() {
    cmake -B build-ci-nochecks -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DKVMARM_INVARIANTS=OFF
    cmake --build build-ci-nochecks -j"$JOBS"
    run_suite build-ci-nochecks
}

leg_bench() {
    # Wall-clock fast paths must not disturb simulated cycle attribution:
    # smoke-run the throughput bench, then re-run the Table 3 bench and
    # require its cycle table to match the committed golden output exactly.
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-ci-release -j"$JOBS" \
        --target host_tput fleet_tput fleet_clone fleet_ring fleet_pool \
        table3_micro
    build-ci-release/bench/host_tput --smoke
    build-ci-release/bench/fleet_tput --smoke
    build-ci-release/bench/fleet_clone --smoke
    build-ci-release/bench/fleet_ring --smoke
    build-ci-release/bench/fleet_pool --smoke
    build-ci-release/bench/table3_micro 2>/dev/null | sed -n '/===/,$p' \
        > build-ci-release/table3_micro.out
    diff -u bench/golden/table3_micro.txt build-ci-release/table3_micro.out
    echo "table3_micro matches golden cycle counts"
}

leg_domlint() {
    # The domain-aware pass must be clean over the whole tree (every
    # finding fixed or carrying a justified suppression), and the fixture
    # corpus proves each rule family still fires and each suppression
    # form still parses.
    tools/domlint
    tests/domlint/run_fixtures.sh
}

leg_lint() {
    tools/lint.sh --changed
}

leg_threadsafety() {
    # Clang thread-safety analysis over the annotated locking surfaces.
    # sim/thread_annotations.hh expands to no-ops under GCC, so this leg
    # is the one that actually checks the GUARDED_BY/ACQUIRE/RELEASE
    # contracts on the invariant-engine facade, the logging writer, and
    # the fleet deques. Skips (successfully) when clang is not installed
    # locally; the GitHub workflow installs clang so CI always runs it.
    local cxx=""
    for c in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
             clang++-15 clang++-14; do
        if command -v "$c" >/dev/null 2>&1; then
            cxx=$c
            break
        fi
    done
    if [ -z "$cxx" ]; then
        echo "threadsafety: clang++ not found; skipping (CI installs it)"
        return 0
    fi
    local rc=0
    for f in src/check/invariants.cc src/sim/logging.cc src/sim/fleet.cc \
             src/sim/ring_channel.cc; do
        echo "$cxx -Wthread-safety $f"
        "$cxx" -std=c++20 -fsyntax-only -Isrc \
            -Wthread-safety -Werror=thread-safety-analysis "$f" || rc=1
    done
    if [ "$rc" -ne 0 ]; then
        echo "threadsafety: analysis findings above" >&2
        return 1
    fi
    echo "threadsafety: clean"
}

leg_format() {
    tools/format.sh --check
}

legs=${*:-release asan tsan enforce nochecks bench domlint lint threadsafety format}
for leg in $legs; do
    echo "==== ci leg: $leg ===="
    "leg_$leg"
done
echo "==== ci: all legs passed ===="
