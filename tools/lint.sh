#!/usr/bin/env bash
# Static-analysis driver.
#
#   tools/lint.sh [--changed] [files...]
#
# Runs clang-tidy (with the repo's .clang-tidy profile) over the given
# files, over the files changed relative to the default branch (--changed),
# or over every C++ source in src/. When clang-tidy is not installed the
# script falls back to a strict-warning GCC pass (-Wall -Wextra -Werror
# plus a few extras), so CI always has a working lint leg.
set -u

cd "$(dirname "$0")/.."

mode=all
files=()
while [ $# -gt 0 ]; do
    case "$1" in
      --changed) mode=changed ;;
      -h|--help) sed -n '2,12p' "$0"; exit 0 ;;
      *) mode=explicit; files+=("$1") ;;
    esac
    shift
done

collect_files() {
    case "$mode" in
      explicit)
        printf '%s\n' "${files[@]}" ;;
      changed)
        # Files touched relative to the merge base with the default branch;
        # fall back to the last commit's files on a detached/shallow tree.
        local base
        base=$(git merge-base HEAD origin/main 2>/dev/null ||
               git rev-parse HEAD~1 2>/dev/null || true)
        if [ -n "$base" ]; then
            git diff --name-only --diff-filter=d "$base" -- \
                'src/*.cc' 'src/*.hh' 'tests/*.cc' 'bench/*.cc'
        fi ;;
      all)
        find src -name '*.cc' | sort ;;
    esac
}

mapfile -t targets < <(collect_files | grep -E '\.(cc|hh)$' || true)
if [ ${#targets[@]} -eq 0 ]; then
    echo "lint: no files to check"
    exit 0
fi

# clang-tidy needs a compilation database.
ensure_compdb() {
    if [ ! -f build/compile_commands.json ]; then
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
}

if command -v clang-tidy >/dev/null 2>&1; then
    ensure_compdb
    status=0
    for f in "${targets[@]}"; do
        case "$f" in
          *.hh) continue ;; # headers are covered via HeaderFilterRegex
        esac
        echo "clang-tidy $f"
        clang-tidy -p build --quiet "$f" || status=1
    done
    exit $status
fi

echo "lint: clang-tidy not found; using strict-warning GCC pass"
status=0
for f in "${targets[@]}"; do
    case "$f" in
      *.hh) continue ;;
    esac
    echo "g++ -fsyntax-only $f"
    g++ -std=c++20 -fsyntax-only -Isrc \
        -Wall -Wextra -Werror -Wshadow -Wnon-virtual-dtor \
        -Wold-style-cast -Woverloaded-virtual "$f" || status=1
done
exit $status
