#!/usr/bin/env bash
# Static-analysis driver.
#
#   tools/lint.sh [--changed] [--domlint-only] [files...]
#
# Always runs tools/domlint (the repo's domain-aware pass: determinism,
# ordered iteration, hook coverage, ownership) over the selected files,
# then clang-tidy (with the repo's .clang-tidy profile) over them. With no
# selection, both passes cover the full tree; --changed selects the files
# changed relative to the default branch; explicit paths select just
# those. --domlint-only skips the clang-tidy/GCC leg for fast local
# iteration. When clang-tidy is not installed the second pass falls back
# to a strict-warning GCC pass (-Wall -Wextra -Werror plus a few extras),
# so CI always has a working lint leg.
set -u

cd "$(dirname "$0")/.."

mode=all
domlint_only=0
files=()
while [ $# -gt 0 ]; do
    case "$1" in
      --changed) mode=changed ;;
      --domlint-only) domlint_only=1 ;;
      -h|--help) sed -n '2,15p' "$0"; exit 0 ;;
      *) mode=explicit; files+=("$1") ;;
    esac
    shift
done

# Merge base with the default branch for --changed. Shallow CI checkouts
# often have no origin remote (or no origin/main ref), so fall back to a
# local main branch, then to the previous commit. Every candidate is
# probed under `if` so a failing git call reports and falls through
# instead of tripping a caller's `set -e`.
merge_base() {
    local base ref
    for ref in origin/main main; do
        if base=$(git merge-base HEAD "$ref" 2>/dev/null); then
            echo "$base"
            return 0
        fi
    done
    if base=$(git rev-parse --verify -q HEAD~1); then
        echo "lint: no merge base with origin/main or main;" \
             "diffing against HEAD~1" >&2
        echo "$base"
        return 0
    fi
    echo "lint: cannot determine a diff base (single-commit tree?);" \
         "checking nothing" >&2
    return 1
}

collect_files() {
    case "$mode" in
      explicit)
        printf '%s\n' "${files[@]}" ;;
      changed)
        local base
        if base=$(merge_base); then
            git diff --name-only --diff-filter=d "$base" -- \
                'src/*.cc' 'src/*.hh' 'tests/*.cc' 'bench/*.cc'
        fi ;;
      all)
        find src -name '*.cc' -o -name '*.hh' | sort ;;
    esac
}

mapfile -t targets < <(collect_files | grep -E '\.(cc|hh)$' || true)
if [ ${#targets[@]} -eq 0 ]; then
    echo "lint: no files to check"
    exit 0
fi

status=0

# Pass 1: domlint. The full-tree run also covers the whole hook manifest;
# a file-scoped run checks only the manifest entries for those files.
if [ "$mode" = all ]; then
    tools/domlint || status=1
else
    tools/domlint "${targets[@]}" || status=1
fi

if [ "$domlint_only" -eq 1 ]; then
    exit $status
fi

# Pass 2: clang-tidy (needs a compilation database), or strict GCC.
ensure_compdb() {
    if [ ! -f build/compile_commands.json ]; then
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
}

if command -v clang-tidy >/dev/null 2>&1; then
    ensure_compdb
    for f in "${targets[@]}"; do
        case "$f" in
          *.hh) continue ;; # headers are covered via HeaderFilterRegex
          tests/*|bench/*) continue ;; # profile targets src/ TUs
        esac
        echo "clang-tidy $f"
        clang-tidy -p build --quiet "$f" || status=1
    done
    exit $status
fi

echo "lint: clang-tidy not found; using strict-warning GCC pass"
for f in "${targets[@]}"; do
    case "$f" in
      *.hh) continue ;;
      tests/*|bench/*) continue ;;
    esac
    echo "g++ -fsyntax-only $f"
    g++ -std=c++20 -fsyntax-only -Isrc \
        -Wall -Wextra -Werror -Wshadow -Wnon-virtual-dtor \
        -Wold-style-cast -Woverloaded-virtual "$f" || status=1
done
exit $status
