#!/usr/bin/env bash
# Formatting driver.
#
#   tools/format.sh           # rewrite sources in place
#   tools/format.sh --check   # fail if any file would change
#
# Uses clang-format with the repo's .clang-format profile. When
# clang-format is not installed the script only runs cheap built-in
# hygiene checks (trailing whitespace, tabs in C++ sources) so it stays
# meaningful in minimal containers.
set -u

cd "$(dirname "$0")/.."

check=0
[ "${1:-}" = "--check" ] && check=1

mapfile -t targets < <(find src tests bench examples \
    \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \) 2>/dev/null | sort)
if [ ${#targets[@]} -eq 0 ]; then
    echo "format: no files found"
    exit 0
fi

status=0
if command -v clang-format >/dev/null 2>&1; then
    if [ $check -eq 1 ]; then
        for f in "${targets[@]}"; do
            if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
                echo "format: $f needs reformatting"
                status=1
            fi
        done
    else
        clang-format -i "${targets[@]}"
    fi
else
    echo "format: clang-format not found; running hygiene checks only"
fi

# Hygiene checks that need no external tool.
for f in "${targets[@]}"; do
    if grep -nP ' +$' "$f" >/dev/null; then
        echo "format: $f has trailing whitespace"
        status=1
    fi
    if grep -nP '\t' "$f" >/dev/null; then
        echo "format: $f contains tab characters"
        status=1
    fi
done

exit $status
