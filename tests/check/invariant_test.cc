/**
 * @file
 * Tests for the split-mode invariant checker: each built-in rule is
 * exercised with a deliberately injected violation (proving the rule
 * fires), with the nearest legal behaviour (proving it stays quiet), and
 * the full KVM/ARM stack is driven under Enforce mode to prove the real
 * hypervisor paths are violation-free.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/kvm.hh"
#include "core/stage2_mmu.hh"
#include "host/kernel.hh"
#include "host/mm.hh"
#include "sim/fleet.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::Mode;
using check::CheckMode;
using check::ScopedCheckMode;
using check::StateClass;
using check::SwitchDir;
using check::Xfer;

#if !KVMARM_INVARIANTS_ENABLED

TEST(InvariantTest, HooksCompiledOut)
{
    GTEST_SKIP() << "built with -DKVMARM_INVARIANTS=OFF";
}

#else // KVMARM_INVARIANTS_ENABLED

ArmMachine::Config
smallMachine(unsigned cpus = 1)
{
    ArmMachine::Config mc;
    mc.numCpus = cpus;
    mc.ramSize = 64 * kMiB;
    return mc;
}

/** A Hyp state programmed the way a correct toVm leaves it. */
arm::HypState
guestEntryHypState()
{
    arm::HypState h;
    h.hcr.vm = true;
    h.hcr.imo = true;
    h.hcr.fmo = true;
    h.hcr.twi = true;
    h.hcr.twe = true;
    h.hcr.tsc = true;
    h.hcr.tac = true;
    h.hcr.swio = true;
    h.hcr.tidcp = true;
    h.vttbr = 0x8000000 | (5ull << 48);
    return h;
}

// ---------------------------------------------------------------- privilege

TEST(PrivilegeRule, FlagsHypRegisterAccessOutsideHypMode)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine machine(smallMachine());
    ArmCpu &cpu = machine.cpu(0); // boots in Svc mode

    cpu.hypSys("hcr");
    EXPECT_EQ(check::engine().violationCount("privilege"), 1u);

    // The same access from Hyp mode is legal.
    cpu.setMode(Mode::Hyp);
    cpu.hypSys("hcr");
    cpu.setMode(Mode::Svc);
    EXPECT_EQ(check::engine().violationCount("privilege"), 1u);
}

TEST(PrivilegeRule, EnforceModeThrowsFatalError)
{
    ScopedCheckMode scoped(CheckMode::Enforce);
    ArmMachine machine(smallMachine());
    EXPECT_THROW(machine.cpu(0).hypSys("vttbr"), FatalError);
}

TEST(PrivilegeRule, OffModeRecordsNothing)
{
    ScopedCheckMode scoped(CheckMode::Off);
    ArmMachine machine(smallMachine());
    machine.cpu(0).hypSys("hcr");
    EXPECT_EQ(check::engine().violationCount(), 0u);
}

// --------------------------------------------------------------- ws-pairing

/** Drive the pairing ledger through one switch cycle at the event level. */
class WsPairingTest : public ::testing::Test
{
  protected:
    void
    enterGuest(bool with_fpu = false)
    {
        auto &eng = check::engine();
        eng.worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
        eng.stateTransfer(&dom, 0, StateClass::Gp, Xfer::SaveHost);
        eng.stateTransfer(&dom, 0, StateClass::Ctrl, Xfer::SaveHost);
        eng.stateTransfer(&dom, 0, StateClass::Gp, Xfer::RestoreGuest);
        eng.stateTransfer(&dom, 0, StateClass::Ctrl, Xfer::RestoreGuest);
        if (with_fpu) {
            eng.stateTransfer(&dom, 0, StateClass::Fpu, Xfer::SaveHost);
            eng.stateTransfer(&dom, 0, StateClass::Fpu, Xfer::RestoreGuest);
        }
        eng.worldSwitchEnd(&dom, 0, SwitchDir::ToVm, guestEntryHypState());
    }

    void
    exitGuest(bool restore_ctrl, bool with_fpu = false)
    {
        auto &eng = check::engine();
        eng.worldSwitchBegin(&dom, 0, SwitchDir::ToHost);
        eng.stateTransfer(&dom, 0, StateClass::Gp, Xfer::SaveGuest);
        eng.stateTransfer(&dom, 0, StateClass::Ctrl, Xfer::SaveGuest);
        if (with_fpu) {
            eng.stateTransfer(&dom, 0, StateClass::Fpu, Xfer::SaveGuest);
            eng.stateTransfer(&dom, 0, StateClass::Fpu, Xfer::RestoreHost);
        }
        eng.stateTransfer(&dom, 0, StateClass::Gp, Xfer::RestoreHost);
        if (restore_ctrl)
            eng.stateTransfer(&dom, 0, StateClass::Ctrl, Xfer::RestoreHost);
        eng.worldSwitchEnd(&dom, 0, SwitchDir::ToHost, arm::HypState{});
    }

    int dom = 0; //!< stand-in domain token
};

TEST_F(WsPairingTest, CompleteSwitchCycleIsClean)
{
    ScopedCheckMode scoped(CheckMode::Log);
    enterGuest();
    exitGuest(true);
    EXPECT_EQ(check::engine().violationCount("ws-pairing"), 0u);
}

TEST_F(WsPairingTest, FlagsSkippedHostRestore)
{
    ScopedCheckMode scoped(CheckMode::Log);
    enterGuest();
    exitGuest(false); // ctrl registers saved in toVm but never restored
    EXPECT_EQ(check::engine().violationCount("ws-pairing"), 1u);
}

TEST_F(WsPairingTest, FlagsGuestEntryWithoutHostSave)
{
    ScopedCheckMode scoped(CheckMode::Log);
    auto &eng = check::engine();
    eng.worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    // Only GP moved; ctrl registers were never saved or loaded.
    eng.stateTransfer(&dom, 0, StateClass::Gp, Xfer::SaveHost);
    eng.stateTransfer(&dom, 0, StateClass::Gp, Xfer::RestoreGuest);
    eng.worldSwitchEnd(&dom, 0, SwitchDir::ToVm, guestEntryHypState());
    EXPECT_EQ(check::engine().violationCount("ws-pairing"), 2u);
}

TEST_F(WsPairingTest, LazyFpuTransferJoinsTheOpenEpoch)
{
    ScopedCheckMode scoped(CheckMode::Log);
    enterGuest();
    // Guest touches VFP mid-run: the deferred switch happens via the
    // HCPTR trap while the epoch is open.
    auto &eng = check::engine();
    eng.stateTransfer(&dom, 0, StateClass::Fpu, Xfer::SaveHost);
    eng.stateTransfer(&dom, 0, StateClass::Fpu, Xfer::RestoreGuest);
    exitGuest(true, /*with_fpu=*/true);
    EXPECT_EQ(check::engine().violationCount("ws-pairing"), 0u);
}

TEST_F(WsPairingTest, FlagsLazyFpuLoadedButNeverSavedBack)
{
    ScopedCheckMode scoped(CheckMode::Log);
    enterGuest(/*with_fpu=*/true);
    exitGuest(true, /*with_fpu=*/false); // guest VFP state dropped
    // Two asymmetries: host VFP saved but never restored, and guest VFP
    // loaded but never captured back.
    EXPECT_EQ(check::engine().violationCount("ws-pairing"), 2u);
}

// ---------------------------------------------------------- stage2-isolation

TEST(Stage2IsolationRule, FlagsCrossVmPhysicalPage)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int mm = 0;
    auto &eng = check::engine();
    eng.stage2Map(&mm, 1, 0x80000000, 0x1000, false);
    eng.stage2Map(&mm, 2, 0x80000000, 0x2000, false); // distinct pa: fine
    EXPECT_EQ(eng.violationCount("stage2-isolation"), 0u);
    eng.stage2Map(&mm, 2, 0x80001000, 0x1000, false); // vm1's page
    EXPECT_EQ(eng.violationCount("stage2-isolation"), 1u);
    // After vm1 unmaps it, the page may change owners.
    eng.stage2Unmap(&mm, 1, 0x80000000, 0x1000);
    eng.stage2Map(&mm, 3, 0x80000000, 0x1000, false);
    EXPECT_EQ(eng.violationCount("stage2-isolation"), 1u);
}

TEST(Stage2IsolationRule, FlagsMappingOfProtectedHypPage)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int mm = 0;
    auto &eng = check::engine();
    eng.protectPage(&mm, 0x5000, "hyp-table");
    eng.stage2Map(&mm, 1, 0x80000000, 0x5000, false);
    EXPECT_EQ(eng.violationCount("stage2-isolation"), 1u);
    // Unprotecting releases the page for guest use.
    eng.unprotectPage(&mm, 0x5000);
    eng.stage2Map(&mm, 1, 0x80001000, 0x5000, false);
    EXPECT_EQ(eng.violationCount("stage2-isolation"), 1u);
}

TEST(Stage2IsolationRule, FlagsDevicePassthroughOfAnotherVmsRam)
{
    // Real-object injection: vm A faults in a RAM page, then vm B gets the
    // same physical page mapped as a passthrough device region.
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine machine(smallMachine());
    host::Mm mm(machine.ram());
    core::Stage2Mmu vm_a(mm, 1, ArmMachine::kRamBase, 16 * kMiB);
    core::Stage2Mmu vm_b(mm, 2, ArmMachine::kRamBase, 16 * kMiB);

    ASSERT_TRUE(vm_a.handleRamFault(ArmMachine::kRamBase + 0x1000));
    Addr stolen = *vm_a.ipaToPa(ArmMachine::kRamBase + 0x1000);
    EXPECT_EQ(check::engine().violationCount("stage2-isolation"), 0u);

    vm_b.mapDevicePage(ArmMachine::kGicvBase, stolen);
    EXPECT_EQ(check::engine().violationCount("stage2-isolation"), 1u);
}

TEST(Stage2IsolationRule, SharedDeviceInterfaceIsLegal)
{
    // Both VMs map the GICV hardware interface: device pages have no
    // single RAM owner and are legitimately shared (paper §3.5).
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine machine(smallMachine());
    host::Mm mm(machine.ram());
    core::Stage2Mmu vm_a(mm, 1, ArmMachine::kRamBase, 16 * kMiB);
    core::Stage2Mmu vm_b(mm, 2, ArmMachine::kRamBase, 16 * kMiB);
    vm_a.mapDevicePage(ArmMachine::kGiccBase, ArmMachine::kGicvBase);
    vm_b.mapDevicePage(ArmMachine::kGiccBase, ArmMachine::kGicvBase);
    EXPECT_EQ(check::engine().violationCount("stage2-isolation"), 0u);
}

// -------------------------------------------------------------- trap-config

TEST(TrapConfigRule, CleanGuestEntryPasses)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    eng.worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    eng.worldSwitchEnd(&dom, 0, SwitchDir::ToVm, guestEntryHypState());
    EXPECT_EQ(eng.violationCount("trap-config"), 0u);
}

TEST(TrapConfigRule, FlagsMissingTrapBitsAtGuestEntry)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    arm::HypState h = guestEntryHypState();
    h.hcr.tsc = false;  // SMC would reach the guest unmediated
    h.hcr.twi = false;  // WFI would idle the physical CPU
    eng.worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    eng.worldSwitchEnd(&dom, 0, SwitchDir::ToVm, h);
    EXPECT_EQ(eng.violationCount("trap-config"), 2u);
}

TEST(TrapConfigRule, FlagsGuestEntryWithoutStage2)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    arm::HypState h = guestEntryHypState();
    h.hcr.vm = false;
    h.vttbr = 0;
    eng.worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    eng.worldSwitchEnd(&dom, 0, SwitchDir::ToVm, h);
    // Stage-2 disabled + null VTTBR root.
    EXPECT_EQ(eng.violationCount("trap-config"), 2u);
}

TEST(TrapConfigRule, FlagsHostReturnWithGuestConfiguration)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    eng.worldSwitchBegin(&dom, 0, SwitchDir::ToHost);
    // Stage-2 and the trap set were left enabled: the host would run
    // under the guest's translation regime.
    eng.worldSwitchEnd(&dom, 0, SwitchDir::ToHost, guestEntryHypState());
    EXPECT_EQ(eng.violationCount("trap-config"), 2u);
}

TEST(TrapConfigRule, FlagsKernelModeWithWrongStage2State)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    // Enter the guest world, then observe a PL1 transition with Stage-2
    // off: the "guest" would see host physical memory.
    eng.worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    eng.worldSwitchEnd(&dom, 0, SwitchDir::ToVm, guestEntryHypState());
    eng.modeChange(&dom, 0, Mode::Hyp, Mode::Svc, /*stage2_on=*/false);
    EXPECT_EQ(eng.violationCount("trap-config"), 1u);
}

// --------------------------------------------------------------------- vgic

class VgicRuleTest : public ::testing::Test
{
  protected:
    VgicRuleTest() : machine(smallMachine()) {}

    void
    writeLr(unsigned idx, IrqId virq, arm::LrState state, CpuId source = 0)
    {
        arm::ListReg lr;
        lr.virq = virq;
        lr.state = state;
        lr.source = source;
        machine.gich().write(0, arm::gich::LR0 + 4 * idx, lr.pack(), 4);
    }

    ArmMachine machine;
};

TEST_F(VgicRuleTest, FlagsDuplicatePendingVirq)
{
    ScopedCheckMode scoped(CheckMode::Log);
    writeLr(0, 40, arm::LrState::Pending);
    EXPECT_EQ(check::engine().violationCount("vgic"), 0u);
    writeLr(1, 40, arm::LrState::Pending); // same SPI queued twice
    EXPECT_EQ(check::engine().violationCount("vgic"), 1u);
}

TEST_F(VgicRuleTest, SgisFromDistinctSourcesMayCoexist)
{
    ScopedCheckMode scoped(CheckMode::Log);
    writeLr(0, 5, arm::LrState::Pending, /*source=*/0);
    writeLr(1, 5, arm::LrState::Pending, /*source=*/1);
    EXPECT_EQ(check::engine().violationCount("vgic"), 0u);
    writeLr(2, 5, arm::LrState::Pending, /*source=*/1); // same source twice
    EXPECT_EQ(check::engine().violationCount("vgic"), 1u);
}

TEST_F(VgicRuleTest, FlagsMaintenanceIrqWithoutUnderflow)
{
    ScopedCheckMode scoped(CheckMode::Log);
    auto &eng = check::engine();

    // Genuine underflow: enabled, underflow irq requested, all LRs empty.
    arm::VgicBank bank;
    bank.en = true;
    bank.uie = true;
    eng.maintenanceIrq(0, bank);
    EXPECT_EQ(eng.violationCount("vgic"), 0u);

    // An LR still holds a pending interrupt: not an underflow.
    bank.lr[2].virq = 40;
    bank.lr[2].state = arm::LrState::Pending;
    eng.maintenanceIrq(0, bank);
    EXPECT_EQ(eng.violationCount("vgic"), 1u);

    // Interface disabled: the interrupt should never have been raised.
    arm::VgicBank off;
    off.uie = true;
    eng.maintenanceIrq(0, off);
    EXPECT_EQ(eng.violationCount("vgic"), 2u);
}

// ------------------------------------------------------ full-stack coverage

/** A guest that exercises hypercalls, Stage-2 faults and VFP. */
class ProbeGuestOs : public arm::OsVectors
{
  public:
    void irq(ArmCpu &cpu) override
    {
        std::uint32_t iar = static_cast<std::uint32_t>(
            cpu.memRead(ArmMachine::kGiccBase + arm::gicc::IAR, 4));
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
    }
    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "probe-guest"; }
};

/**
 * The paper's whole split-mode stack — boot, per-CPU Hyp init via
 * hypercall, guest residency with world switches, lazy VFP, Stage-2
 * demand paging, VGIC interrupt delivery — runs under Enforce mode: any
 * invariant violation anywhere in those paths throws and fails the test.
 */
TEST(FullStackInvariants, WholeGuestLifecycleIsViolationFree)
{
    ScopedCheckMode scoped(CheckMode::Enforce);

    ArmMachine::Config mc = smallMachine(2);
    ArmMachine machine(mc);
    host::HostKernel hostk(machine);
    core::Kvm kvm(hostk);
    ProbeGuestOs guest_os;

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        ASSERT_TRUE(kvm.initCpu(cpu));

        auto vm = kvm.createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest_os);

        vcpu.run(cpu, [&](ArmCpu &c) {
            c.memWrite(ArmMachine::kRamBase + 0x1000, 0xAB, 4);
            c.hvc(core::hvc::kTestHypercall);
            c.fpOp(50); // lazy VFP switch via the HCPTR trap
            c.sensitiveOp(arm::SensitiveOp::ActlrRead);
            c.hvc(core::hvc::kTestHypercall);
            EXPECT_EQ(c.memRead(ArmMachine::kRamBase + 0x1000, 4), 0xABu);
        });
    });
    machine.run();

    EXPECT_EQ(check::engine().violationCount(), 0u);
}

// ------------------------------------------------------------------- engine

TEST(InvariantEngine, CustomRulesCanBeRegistered)
{
    class CountingRule : public check::InvariantRule
    {
      public:
        const char *name() const override { return "counting"; }
        void
        onHypAccess(check::InvariantEngine &,
                    const check::HypAccessEvent &) override
        {
            ++events;
        }
        int events = 0;
    };

    ScopedCheckMode scoped(CheckMode::Log);
    auto rule = std::make_unique<CountingRule>();
    CountingRule *raw = rule.get();
    check::engine().addRule(std::move(rule));

    check::engine().hypAccess(0, Mode::Hyp, "hcr");
    check::engine().hypAccess(0, Mode::Svc, "hcr");
    EXPECT_EQ(raw->events, 2);
    // The built-in privilege rule saw the second access too.
    EXPECT_EQ(check::engine().violationCount("privilege"), 1u);
}

TEST(InvariantEngine, ResetClearsViolationsAndShadowState)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine machine(smallMachine());
    machine.cpu(0).hypSys("hcr");
    EXPECT_EQ(check::engine().violationCount(), 1u);
    check::engine().reset();
    EXPECT_EQ(check::engine().violationCount(), 0u);
}

// --------------------------------------------------------- engine sharding

TEST(EngineSharding, MachinesOwnPrivateEngines)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine a(smallMachine());
    ArmMachine b(smallMachine());

    check::InvariantEngine *ea = a.checkEngine();
    check::InvariantEngine *eb = b.checkEngine();
    ASSERT_NE(ea, nullptr);
    ASSERT_NE(eb, nullptr);
    EXPECT_NE(ea, eb);
    EXPECT_NE(ea, &check::engine());
    EXPECT_NE(eb, &check::engine());

    // Machines created inside the scope inherited the facade's mode.
    EXPECT_EQ(ea->mode(), CheckMode::Log);
    EXPECT_TRUE(ea->active());
}

TEST(EngineSharding, ViolationInOneVmStaysInItsEngine)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine a(smallMachine());
    ArmMachine b(smallMachine());

    // VM A commits a privilege violation; VM B does legal work only.
    a.cpu(0).hypSys("hcr"); // Svc-mode access to a Hyp register
    b.cpu(0).setMode(Mode::Hyp);
    b.cpu(0).hypSys("hcr");
    b.cpu(0).setMode(Mode::Svc);

    EXPECT_EQ(a.checkEngine()->violationCount(), 1u);
    EXPECT_EQ(a.checkEngine()->violationCount("privilege"), 1u);
    EXPECT_TRUE(b.checkEngine()->violations().empty());
    EXPECT_EQ(b.checkEngine()->violationCount(), 0u);

    // Both machines observed events; only A recorded a violation.
    EXPECT_GT(a.checkEngine()->eventCount(), 0u);
    EXPECT_GT(b.checkEngine()->eventCount(), 0u);

    // The facade aggregates across engines, so legacy process-wide
    // interrogation still sees A's violation.
    EXPECT_EQ(check::engine().violationCount("privilege"), 1u);
}

TEST(EngineSharding, RuleShadowStateIsNotShared)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine a(smallMachine());
    ArmMachine b(smallMachine());
    check::InvariantEngine *ea = a.checkEngine();
    check::InvariantEngine *eb = b.checkEngine();
    int dom = 0;

    // Open a ws-pairing epoch for the same (domain, cpu) key in both
    // engines. With shared shadow state the second begin would be flagged
    // as "toVm entered twice"; private ledgers stay quiet.
    ea->worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    eb->worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    EXPECT_EQ(ea->violationCount("ws-pairing"), 0u);
    EXPECT_EQ(eb->violationCount("ws-pairing"), 0u);

    // A genuine double entry in A is still caught — and only in A.
    ea->worldSwitchBegin(&dom, 0, SwitchDir::ToVm);
    EXPECT_EQ(ea->violationCount("ws-pairing"), 1u);
    EXPECT_EQ(eb->violationCount("ws-pairing"), 0u);
}

// --------------------------------------------------------------- ring-order

TEST(RingOrderRule, CleanMessageStreamPasses)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    for (std::uint64_t i = 0; i < 4; ++i) {
        eng.ringDoorbell(&dom, 0, "ring0", i, 1000 * (i + 1),
                         static_cast<std::uint32_t>(i + 1));
        eng.ringDeliver(&dom, 0, "ring0", i, 1000 * (i + 1) + 500,
                        static_cast<std::uint32_t>(i + 1));
    }
    EXPECT_EQ(eng.violationCount("ring-order"), 0u);
}

TEST(RingOrderRule, FlagsSequenceGapAndReplay)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    eng.ringDoorbell(&dom, 0, "ring0", 0, 1000, 1);
    eng.ringDoorbell(&dom, 0, "ring0", 2, 2000, 2); // skipped seq 1
    EXPECT_EQ(eng.violationCount("ring-order"), 1u);
    eng.ringDoorbell(&dom, 0, "ring0", 2, 3000, 3); // replayed seq 2
    EXPECT_EQ(eng.violationCount("ring-order"), 2u);
}

TEST(RingOrderRule, FlagsCycleRegression)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    eng.ringDeliver(&dom, 0, "ring0", 0, 5000, 1);
    eng.ringDeliver(&dom, 0, "ring0", 1, 4000, 2); // behind predecessor
    EXPECT_EQ(eng.violationCount("ring-order"), 1u);
}

TEST(RingOrderRule, FlagsRingIndexJump)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int dom = 0;
    auto &eng = check::engine();
    eng.ringDoorbell(&dom, 0, "ring0", 0, 1000, 1);
    eng.ringDoorbell(&dom, 0, "ring0", 1, 2000, 3); // avail idx 1 -> 3
    EXPECT_EQ(eng.violationCount("ring-order"), 1u);
}

TEST(RingOrderRule, DirectionsAndDomainsTrackIndependently)
{
    ScopedCheckMode scoped(CheckMode::Log);
    int domA = 0, domB = 0;
    auto &eng = check::engine();
    // Doorbell and delivery keep separate sequence state for one ring...
    eng.ringDoorbell(&domA, 0, "ring0", 0, 1000, 1);
    eng.ringDeliver(&domA, 1, "ring0", 0, 1500, 1);
    // ...and the same ring name in a different machine starts fresh.
    eng.ringDoorbell(&domB, 0, "ring0", 0, 800, 1);
    EXPECT_EQ(eng.violationCount("ring-order"), 0u);
}

TEST(RingOrderRule, EnforceModeThrowsOnViolation)
{
    ScopedCheckMode scoped(CheckMode::Enforce);
    int dom = 0;
    auto &eng = check::engine();
    eng.ringDoorbell(&dom, 0, "ring0", 0, 1000, 1);
    EXPECT_THROW(eng.ringDoorbell(&dom, 0, "ring0", 5, 2000, 2), FatalError);
}

TEST(EngineSharding, FacadePropagatesModeToLiveEngines)
{
    // Machine constructed before any ScopedCheckMode (VgicRuleTest
    // pattern): it inherits whatever mode the facade currently carries
    // (Off by default, or the KVMARM_CHECK env selection under the CI
    // enforce leg), and a later facade setMode must reach it.
    ArmMachine machine(smallMachine());
    EXPECT_EQ(machine.checkEngine()->mode(), check::engine().mode());
    {
        ScopedCheckMode scoped(CheckMode::Enforce);
        EXPECT_EQ(machine.checkEngine()->mode(), CheckMode::Enforce);
        EXPECT_THROW(machine.cpu(0).hypSys("vttbr"), FatalError);
    }
    // Scope exit turns every engine back off and clears its log.
    EXPECT_EQ(machine.checkEngine()->mode(), CheckMode::Off);
    EXPECT_EQ(machine.checkEngine()->violationCount(), 0u);
}

// ------------------------------------------------------------------- epoch

TEST(EpochProtocol, MidRunAggregationMatchesPostRunTotals)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine machine(smallMachine());
    ASSERT_NE(machine.checkEngine(), nullptr);

    constexpr std::uint64_t kViolations = 3;
    std::uint64_t epochId = check::engine().beginEpoch();
    EXPECT_EQ(check::engine().aggregateEpoch().violations, 0u);

    Fleet fleet(2);
    fleet.start();
    std::atomic<bool> committed{false};
    std::atomic<bool> allowPublish{false};
    std::atomic<bool> published{false};
    std::atomic<bool> release{false};
    fleet.submit("violator", [&] {
        for (std::uint64_t i = 0; i < kViolations; ++i)
            machine.checkEngine()->hypAccess(0, Mode::Svc, "hcr");
        committed = true;
        while (!allowPublish)
            std::this_thread::yield();
        machine.publishCheckEpoch(); // the quiesce-boundary publish
        published = true;
        while (!release)
            std::this_thread::yield();
    });

    // Violations recorded but not yet published: invisible to the live
    // sample — aggregation never reads state the machine thread is
    // mutating, which is the whole point of the epoch protocol.
    while (!committed)
        std::this_thread::yield();
    EXPECT_EQ(check::engine().aggregateEpoch().violations, 0u);

    // After the publish the sample sees them — while the job is still
    // occupying a worker, with no stop-the-world anywhere.
    allowPublish = true;
    while (!published)
        std::this_thread::yield();
    check::EpochReport mid = check::engine().aggregateEpoch();
    EXPECT_EQ(mid.epoch, epochId);
    EXPECT_EQ(mid.violations, kViolations);
    release = true;
    fleet.shutdown();

    // Post-run, fully quiesced: the live sample already had the totals.
    EXPECT_EQ(check::engine().aggregateEpoch().violations, kViolations);
    EXPECT_EQ(check::engine().violationCount("privilege"), kViolations);
}

TEST(EpochProtocol, RunExitPublishesAutomatically)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine machine(smallMachine());
    check::engine().beginEpoch();
    machine.checkEngine()->hypAccess(0, Mode::Svc, "hcr");
    EXPECT_EQ(check::engine().aggregateEpoch().violations, 0u); // live only
    machine.run(); // no CPU entries: returns at once — and publishes
    EXPECT_EQ(check::engine().aggregateEpoch().violations, 1u);
}

TEST(EpochProtocol, RetiredEnginesKeepCounting)
{
    ScopedCheckMode scoped(CheckMode::Log);
    check::engine().beginEpoch();
    {
        ArmMachine machine(smallMachine());
        machine.checkEngine()->hypAccess(0, Mode::Svc, "hcr");
    } // the machine (and its engine) dies with the fleet job
    // A completed VM's violations survive into the epoch sample (the
    // dying engine retires its exact live count)...
    EXPECT_EQ(check::engine().aggregateEpoch().violations, 1u);
    // ...even though exact log aggregation no longer sees the engine.
    EXPECT_EQ(check::engine().violationCount("privilege"), 0u);
}

TEST(EpochProtocol, WindowsRebaselineAndMachineEnginesRejectEpochCalls)
{
    ScopedCheckMode scoped(CheckMode::Log);
    ArmMachine machine(smallMachine());
    machine.checkEngine()->hypAccess(0, Mode::Svc, "hcr");
    machine.publishCheckEpoch();

    std::uint64_t e1 = check::engine().beginEpoch();
    std::uint64_t e2 = check::engine().beginEpoch();
    EXPECT_EQ(e2, e1 + 1);
    EXPECT_EQ(check::engine().aggregateEpoch().violations, 0u);

    machine.checkEngine()->hypAccess(0, Mode::Svc, "vttbr");
    machine.publishCheckEpoch();
    check::EpochReport rep = check::engine().aggregateEpoch();
    EXPECT_EQ(rep.epoch, e2);
    EXPECT_EQ(rep.violations, 1u);
    EXPECT_GE(rep.engines, 2u); // at least the facade + this machine

    // Epochs are a facade protocol; machine engines reject them loudly.
    EXPECT_THROW(machine.checkEngine()->beginEpoch(), FatalError);
    EXPECT_THROW(machine.checkEngine()->aggregateEpoch(), FatalError);
}

#endif // KVMARM_INVARIANTS_ENABLED

} // namespace
} // namespace kvmarm
