/** @file Stats unit tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace kvmarm {
namespace {

TEST(Stats, CounterIncrements)
{
    StatGroup g;
    g.counter("a").inc();
    g.counter("a").inc(4);
    EXPECT_EQ(g.counterValue("a"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(Stats, ScalarAggregates)
{
    Scalar s;
    s.sample(2.0);
    s.sample(6.0);
    s.sample(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Stats, ResetClearsEverything)
{
    StatGroup g;
    g.counter("c").inc(7);
    g.scalar("s").sample(3.0);
    g.resetAll();
    EXPECT_EQ(g.counterValue("c"), 0u);
    EXPECT_EQ(g.scalar("s").count(), 0u);
}

TEST(Stats, DumpContainsNames)
{
    StatGroup g;
    g.counter("traps.hvc").inc(3);
    std::ostringstream os;
    g.dump(os, "cpu0.");
    EXPECT_NE(os.str().find("cpu0.traps.hvc"), std::string::npos);
    EXPECT_NE(os.str().find("3"), std::string::npos);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad config %d", 7), FatalError);
    try {
        fatal("value=%d", 42);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value=42"),
                  std::string::npos);
    }
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    Rng r(99);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(r.range(17), 17u);
    }
}

} // namespace
} // namespace kvmarm
