/** @file Fiber unit tests. */

#include <gtest/gtest.h>

#include "sim/fiber.hh"

namespace kvmarm {
namespace {

TEST(Fiber, RunsToCompletion)
{
    int x = 0;
    Fiber f([&] { x = 42; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> trace;
    Fiber f([&] {
        trace.push_back(1);
        Fiber::yield();
        trace.push_back(3);
        Fiber::yield();
        trace.push_back(5);
    });
    f.resume();
    trace.push_back(2);
    f.resume();
    trace.push_back(4);
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, TwoFibersInterleave)
{
    std::vector<int> trace;
    Fiber a([&] {
        trace.push_back(10);
        Fiber::yield();
        trace.push_back(12);
    });
    Fiber b([&] {
        trace.push_back(20);
        Fiber::yield();
        trace.push_back(22);
    });
    a.resume();
    b.resume();
    a.resume();
    b.resume();
    EXPECT_EQ(trace, (std::vector<int>{10, 20, 12, 22}));
    EXPECT_TRUE(a.finished());
    EXPECT_TRUE(b.finished());
}

TEST(Fiber, CurrentTracksExecution)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, DeepStackSurvives)
{
    // Simulated software nests deeply (guest op -> trap -> host -> QEMU).
    std::function<int(int)> recurse = [&](int n) -> int {
        volatile char pad[512];
        pad[0] = static_cast<char>(n);
        pad[511] = pad[0];
        if (n == 0)
            return 0;
        return recurse(n - 1) + 1;
    };
    int result = 0;
    Fiber f([&] { result = recurse(400); });
    f.resume();
    EXPECT_EQ(result, 400);
}

} // namespace
} // namespace kvmarm
