/**
 * @file
 * Deterministic randomized fleet stress test: a seeded PRNG (sim/random.hh)
 * generates a schedule of pool operations — external submissions before and
 * during the run, snapshot/clone spawns from inside job bodies, ring-paired
 * communicating VMs, park/notify ping-pong, and a mid-schedule drain epoch —
 * and the whole schedule executes against the long-lived Fleet pool at 1,
 * 2, 4 and 8 workers (and again under Enforce checking). The invariant
 * under test is the fleet's core determinism contract (DESIGN.md §4.11):
 * every VM's simulated execution depends only on its submission key and
 * workload spec, so per-VM sim_cycles, stat dumps and ring digests must be
 * bit-identical across every worker count and check mode.
 *
 * The plan is generated from the seed BEFORE execution (no RNG draw ever
 * happens on a worker thread), so a failing seed replays exactly. Tier-1
 * runs a fixed seed set; set KVMARM_STRESS_SEED=<n> to reproduce or
 * explore a specific schedule.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "sim/fleet.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/ring_channel.hh"
#include "vdev/vring.hh"
#include "workload/ring_driver.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

/** Seeded workload shape for one VM (drawn at plan time, never on a
 *  worker thread). */
struct VmSpec
{
    std::uint64_t warmPages = 0;
    std::uint64_t warmHvc = 0;
    std::uint64_t reads = 0;
    std::uint64_t hvcs = 0;
    std::uint64_t freshPages = 0;
};

/** One root entry of the generated schedule. */
struct RootSpec
{
    enum class Kind
    {
        Compute,  //!< one self-contained VM job
        Spawner,  //!< VM that snapshots itself and spawns clone VMs mid-run
        RingPair, //!< two communicating VMs on one RingChannel
        ParkPair, //!< two mutually-waking resumable jobs (no VM)
    };

    Kind kind = Kind::Compute;
    VmSpec self;
    std::vector<VmSpec> clones; //!< Spawner: one workload per spawned clone
    unsigned rounds = 0;        //!< RingPair / ParkPair
    std::size_t outcomeBase = 0;
    bool secondWave = false; //!< submitted after the mid-schedule drain
};

struct Plan
{
    std::uint64_t seed = 0;
    std::vector<RootSpec> roots;
    std::size_t outcomes = 0;
};

/** Everything observable one VM produced. Rings store (digest, checksum)
 *  in blob; machine jobs store the full stat dump. */
struct Outcome
{
    Cycles simCycles = 0;
    std::string blob;

    bool
    operator==(const Outcome &o) const
    {
        return simCycles == o.simCycles && blob == o.blob;
    }
};

VmSpec
drawVm(Rng &rng)
{
    VmSpec s;
    s.warmPages = 24 + rng.range(40);
    s.warmHvc = 20 + rng.range(60);
    s.reads = 200 + rng.range(400);
    s.hvcs = 20 + rng.range(60);
    s.freshPages = 8 + rng.range(16);
    return s;
}

Plan
makePlan(std::uint64_t seed)
{
    Rng rng(seed);
    Plan plan;
    plan.seed = seed;
    constexpr unsigned kRoots = 6;
    for (unsigned i = 0; i < kRoots; ++i) {
        RootSpec r;
        // Roots 0/1 are pinned to the two heavyweight kinds so every seed
        // covers the spawn and ring paths; the rest of the schedule is up
        // to the seed.
        unsigned kind = i == 0 ? 1 : i == 1 ? 2 : unsigned(rng.range(4));
        switch (kind) {
          case 0:
            r.kind = RootSpec::Kind::Compute;
            r.self = drawVm(rng);
            break;
          case 1:
            r.kind = RootSpec::Kind::Spawner;
            r.self = drawVm(rng);
            for (std::uint64_t c = 0, n = 2 + rng.range(3); c < n; ++c)
                r.clones.push_back(drawVm(rng));
            break;
          case 2:
            r.kind = RootSpec::Kind::RingPair;
            r.rounds = static_cast<unsigned>(8 + rng.range(16));
            break;
          default:
            r.kind = RootSpec::Kind::ParkPair;
            r.rounds = static_cast<unsigned>(4 + rng.range(8));
            break;
        }
        r.secondWave = i >= 4; // roots 4..5 land after the first drain
        r.outcomeBase = plan.outcomes;
        switch (r.kind) {
          case RootSpec::Kind::Compute: plan.outcomes += 1; break;
          case RootSpec::Kind::Spawner:
            plan.outcomes += 1 + r.clones.size();
            break;
          case RootSpec::Kind::RingPair: plan.outcomes += 2; break;
          case RootSpec::Kind::ParkPair: break;
        }
        plan.roots.push_back(std::move(r));
    }
    return plan;
}

/** A full-stack snapshot-capable VM, the fleet_clone two-phase shape:
 *  boot/warm leg that quiesces, then a workload leg. */
class StressVm
{
  public:
    StressVm() : machine_(makeConfig()), hostk_(machine_), kvm_(hostk_) {}

    ArmMachine &machine() { return machine_; }

    void
    bootAndWarm(const VmSpec &spec)
    {
        machine_.cpu(0).setEntry([this, &spec] {
            ArmCpu &cpu = machine_.cpu(0);
            hostk_.boot(0);
            if (!kvm_.initCpu(cpu))
                fatal("fleet_stress: KVM init failed");
            buildVmSkeleton();
            vcpu_->run(cpu, [this, &spec](ArmCpu &c) {
                const Addr base = vm_->ramBase();
                for (std::uint64_t i = 0; i < spec.warmPages; ++i)
                    c.memWrite(base + Addr(i) * kPageSize,
                               0xA0000000u + static_cast<std::uint32_t>(i),
                               4);
                for (std::uint64_t i = 0; i < spec.warmHvc; ++i)
                    c.hvc(core::hvc::kTestHypercall);
            });
        });
        machine_.run();
    }

    void
    cloneFrom(const MachineSnapshot &snap)
    {
        kvm_.primeForRestore();
        buildVmSkeleton();
        machine_.restoreSnapshot(snap);
    }

    void
    runWorkload(const VmSpec &spec, Outcome &out)
    {
        machine_.cpu(0).setEntry([this, &spec, &out] {
            ArmCpu &cpu = machine_.cpu(0);
            vcpu_->run(cpu, [this, &spec, &out](ArmCpu &c) {
                const Addr base = vm_->ramBase();
                Cycles sim0 = c.now();
                for (std::uint64_t i = 0; i < spec.reads; ++i)
                    c.memRead(base + ((i & 63) * 8), 4);
                for (std::uint64_t i = 0; i < spec.hvcs; ++i)
                    c.hvc(core::hvc::kTestHypercall);
                const Addr fresh = base + 16 * kMiB;
                for (std::uint64_t i = 0; i < spec.freshPages; ++i)
                    c.memWrite(fresh + Addr(i) * kPageSize,
                               0xB000 + static_cast<std::uint32_t>(i), 4);
                out.simCycles = c.now() - sim0;
            });
        });
        machine_.run();

        std::ostringstream os;
        machine_.cpu(0).stats().dump(os, "cpu0.");
        vcpu_->stats.dump(os, "vcpu.");
        out.blob = os.str();
    }

  private:
    static ArmMachine::Config
    makeConfig()
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 64 * kMiB;
        return mc;
    }

    void
    buildVmSkeleton()
    {
        vm_ = kvm_.createVm(32 * kMiB);
        vcpu_ = &vm_->addVcpu(0);
    }

    ArmMachine machine_;
    host::HostKernel hostk_;
    core::Kvm kvm_;
    std::unique_ptr<core::Vm> vm_;
    core::VCpu *vcpu_ = nullptr;
};

/** One communicating VM of a ring pair (the fleet_ring resumable shape). */
class StressRingVm
{
  public:
    StressRingVm(const std::string &name, RingChannel::Endpoint &ep,
                 bool initiator, unsigned rounds)
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 64 * kMiB;
        machine_ = std::make_unique<ArmMachine>(mc);
        hostk_ = std::make_unique<host::HostKernel>(*machine_);
        kvm_ = std::make_unique<core::Kvm>(*hostk_, core::KvmConfig{});
        pacer_ = std::make_unique<RingPacer>(*machine_, name);
        pacer_->attach(ep);

        machine_->cpu(0).setEntry([this, &ep, initiator, rounds] {
            ArmCpu &cpu = machine_->cpu(0);
            hostk_->boot(0);
            if (!kvm_->initCpu(cpu))
                fatal("fleet_stress: KVM init failed");
            vm_ = kvm_->createVm(32 * kMiB);
            core::VCpu &vcpu = vm_->addVcpu(0);
            guest_ = std::make_unique<wl::RingGuestOs>();
            vcpu.setGuestOs(guest_.get());
            dev_ = std::make_unique<vdev::VringDevice>(*kvm_, *vm_, ep);

            vcpu.run(cpu, [this, initiator, rounds](ArmCpu &c) {
                guest_->init(c);
                Cycles sim0 = c.now();
                guest_->pingPong(c, rounds, initiator, /*payload=*/48);
                simCycles_ = c.now() - sim0;
            });
        });
    }

    Fleet::StepOutcome
    step()
    {
        return pacer_->step() == RingPacer::Step::Done
                   ? Fleet::StepOutcome::Done
                   : Fleet::StepOutcome::Blocked;
    }

    RingPacer &pacer() { return *pacer_; }

    Outcome
    outcome() const
    {
        Outcome o;
        o.simCycles = simCycles_;
        std::ostringstream os;
        os << "digest=" << dev_->digest() << " checksum=" << guest_->checksum()
           << " tx=" << dev_->txCount();
        o.blob = os.str();
        return o;
    }

  private:
    // Declaration order is destruction safety: device and pacer deregister
    // from the machine, so the machine must outlive both.
    std::unique_ptr<ArmMachine> machine_;
    std::unique_ptr<host::HostKernel> hostk_;
    std::unique_ptr<core::Kvm> kvm_;
    std::unique_ptr<RingPacer> pacer_;
    std::unique_ptr<wl::RingGuestOs> guest_;
    std::unique_ptr<core::Vm> vm_;
    std::unique_ptr<vdev::VringDevice> dev_;
    Cycles simCycles_ = 0;
};

/** Mutually-waking resumable pair state (pure scheduling, no VM). */
struct ParkPairState
{
    std::array<std::size_t, 2> idx{};
    std::atomic<unsigned> turnsA{0};
    std::atomic<unsigned> turnsB{0};
};

/** Execute @p plan on a pool of @p threads workers and return the outcome
 *  table. The schedule: ring/park pairs are submitted before start() (their
 *  notify wiring must exist before any step runs), wave-1 compute/spawner
 *  roots go through the live channel, a drain closes epoch 1, wave-2 roots
 *  form epoch 2, and shutdown() retires the pool. */
std::vector<Outcome>
runPlan(const Plan &plan, unsigned threads)
{
    SCOPED_TRACE("seed=" + std::to_string(plan.seed) +
                 " threads=" + std::to_string(threads));
    Fleet fleet(threads);
    std::vector<Outcome> outcomes(plan.outcomes);
    std::vector<std::unique_ptr<RingChannel>> channels;
    std::vector<std::unique_ptr<StressRingVm>> ringVms;
    std::vector<std::unique_ptr<ParkPairState>> parkPairs;
    std::vector<Fleet::JobResult> results;

    auto submitMachineRoot = [&fleet, &outcomes](const RootSpec &root,
                                                 std::size_t rootNo) {
        const std::string name = "root" + std::to_string(rootNo);
        if (root.kind == RootSpec::Kind::Compute) {
            fleet.submit(name, [&root, &outcomes] {
                StressVm vm;
                vm.bootAndWarm(root.self);
                vm.runWorkload(root.self, outcomes[root.outcomeBase]);
            });
            return;
        }
        // Spawner: boot, quiesce, snapshot, spawn clone jobs through the
        // live channel from inside this job body, then keep running.
        fleet.submit(name, [&fleet, &root, &outcomes, name] {
            StressVm vm;
            vm.bootAndWarm(root.self);
            std::shared_ptr<const MachineSnapshot> snap =
                vm.machine().takeSnapshot();
            for (std::size_t c = 0; c < root.clones.size(); ++c) {
                const VmSpec &cspec = root.clones[c];
                std::size_t slot = root.outcomeBase + 1 + c;
                fleet.submit(name + "-clone" + std::to_string(c),
                             [snap, &cspec, &outcomes, slot] {
                                 StressVm clone;
                                 clone.cloneFrom(*snap);
                                 clone.runWorkload(cspec, outcomes[slot]);
                             });
            }
            vm.runWorkload(root.self, outcomes[root.outcomeBase]);
        });
    };

    // Pre-start submissions: pairs whose notify wiring must be in place
    // before any worker steps them.
    for (std::size_t i = 0; i < plan.roots.size(); ++i) {
        const RootSpec &root = plan.roots[i];
        if (root.kind == RootSpec::Kind::RingPair) {
            channels.push_back(std::make_unique<RingChannel>(
                "stress-ring" + std::to_string(i), /*latency=*/20'000));
            RingChannel &ch = *channels.back();
            const char *half[2] = {"a", "b"};
            for (unsigned h = 0; h < 2; ++h) {
                ringVms.push_back(std::make_unique<StressRingVm>(
                    "root" + std::to_string(i) + half[h], ch.end(h),
                    /*initiator=*/h == 0, root.rounds));
                StressRingVm *rv = ringVms.back().get();
                std::size_t slot = root.outcomeBase + h;
                std::size_t idx = fleet.submitResumable(
                    "root" + std::to_string(i) + "-ring" + half[h],
                    [rv, &outcomes, slot] {
                        Fleet::StepOutcome o = rv->step();
                        if (o == Fleet::StepOutcome::Done)
                            outcomes[slot] = rv->outcome();
                        return o;
                    });
                rv->pacer().setWakeHook(
                    [&fleet, idx] { fleet.notify(idx); });
            }
        } else if (root.kind == RootSpec::Kind::ParkPair) {
            parkPairs.push_back(std::make_unique<ParkPairState>());
            ParkPairState *ps = parkPairs.back().get();
            const unsigned rounds = root.rounds;
            ps->idx[0] = fleet.submitResumable(
                "root" + std::to_string(i) + "-parkA",
                [&fleet, ps, rounds] {
                    unsigned t = ++ps->turnsA;
                    fleet.notify(ps->idx[1]);
                    return t < rounds ? Fleet::StepOutcome::Blocked
                                      : Fleet::StepOutcome::Done;
                });
            ps->idx[1] = fleet.submitResumable(
                "root" + std::to_string(i) + "-parkB",
                [&fleet, ps, rounds] {
                    unsigned t = ++ps->turnsB;
                    fleet.notify(ps->idx[0]);
                    return t < rounds ? Fleet::StepOutcome::Blocked
                                      : Fleet::StepOutcome::Done;
                });
        }
    }

    fleet.start();

    // Wave 1 through the live channel, then the mid-schedule drain.
    for (std::size_t i = 0; i < plan.roots.size(); ++i) {
        const RootSpec &root = plan.roots[i];
        if (root.secondWave || (root.kind != RootSpec::Kind::Compute &&
                                root.kind != RootSpec::Kind::Spawner))
            continue;
        submitMachineRoot(root, i);
    }
    for (Fleet::JobResult &r : fleet.drain())
        results.push_back(std::move(r));

    // Wave 2: a second epoch over the same (still-live) workers.
    for (std::size_t i = 0; i < plan.roots.size(); ++i) {
        const RootSpec &root = plan.roots[i];
        if (!root.secondWave || (root.kind != RootSpec::Kind::Compute &&
                                 root.kind != RootSpec::Kind::Spawner))
            continue;
        submitMachineRoot(root, i);
    }
    for (Fleet::JobResult &r : fleet.shutdown())
        results.push_back(std::move(r));

    for (const Fleet::JobResult &r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    for (const auto &ps : parkPairs) {
        EXPECT_EQ(ps->turnsA.load(), ps->turnsB.load());
        EXPECT_GT(ps->turnsA.load(), 0u);
    }
    EXPECT_EQ(fleet.epoch(), 2u);
    return outcomes;
}

void
expectSameOutcomes(const std::vector<Outcome> &got,
                   const std::vector<Outcome> &ref)
{
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("outcome " + std::to_string(i));
        EXPECT_EQ(got[i].simCycles, ref[i].simCycles);
        EXPECT_EQ(got[i].blob, ref[i].blob);
        EXPECT_GT(got[i].simCycles, 0u); // every slot was actually filled
    }
}

std::vector<std::uint64_t>
stressSeeds()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before any worker
    if (const char *env = std::getenv("KVMARM_STRESS_SEED"))
        return {std::strtoull(env, nullptr, 0)};
    return {0x5eedf1ee7ull, 0xa11cebabeull}; // the fixed tier-1 seed set
}

TEST(FleetStress, SeededScheduleIsBitIdenticalAcrossWorkerCounts)
{
    for (std::uint64_t seed : stressSeeds()) {
        Plan plan = makePlan(seed);
        std::vector<Outcome> ref = runPlan(plan, 1);
        for (unsigned threads : {2u, 4u, 8u}) {
            SCOPED_TRACE("seed=" + std::to_string(seed) +
                         " threads=" + std::to_string(threads));
            expectSameOutcomes(runPlan(plan, threads), ref);
        }
    }
}

#if KVMARM_INVARIANTS_ENABLED
TEST(FleetStress, EnforceModeScheduleMatchesUncheckedBitForBit)
{
    // Checking charges no simulated cycles, so the same schedule under
    // Enforce must reproduce the unchecked outcomes exactly — at any
    // worker count.
    const std::uint64_t seed = stressSeeds().front();
    Plan plan = makePlan(seed);
    std::vector<Outcome> ref = runPlan(plan, 1);
    check::ScopedCheckMode enforce(check::CheckMode::Enforce);
    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("enforce threads=" + std::to_string(threads));
        expectSameOutcomes(runPlan(plan, threads), ref);
    }
}
#endif // KVMARM_INVARIANTS_ENABLED

} // namespace
} // namespace kvmarm
