/** @file EventQueue unit tests. */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace kvmarm {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.nextEventTime(), 10u);
    EXPECT_EQ(q.runDue(25), 2u);
    EXPECT_EQ(q.runDue(100), 1u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoStableAtSameTime)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runDue(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // double cancel fails
    EXPECT_EQ(q.runDue(100), 0u);
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextEventTimeSkipsCancelled)
{
    EventQueue q;
    auto id = q.schedule(5, [] {});
    q.schedule(20, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextEventTime(), 20u);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        ++fired;
        q.schedule(10, [&] { ++fired; }); // due immediately
    });
    EXPECT_EQ(q.runDue(10), 2u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastEventsRunOnNextDrain)
{
    EventQueue q;
    bool ran = false;
    q.schedule(5, [&] { ran = true; });
    EXPECT_EQ(q.runDue(1000), 1u);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, OnScheduleHookFires)
{
    EventQueue q;
    Cycles seen = 0;
    q.onSchedule = [&](Cycles when) { seen = when; };
    q.schedule(42, [] {});
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, OnScheduleHookSeesEverySchedule)
{
    // The machine scheduler's prompt-wake guarantee rests on this hook
    // reporting every schedule with its exact time — including times that
    // are earlier than events already queued.
    EventQueue q;
    std::vector<Cycles> seen;
    q.onSchedule = [&](Cycles when) { seen.push_back(when); };
    q.schedule(500, [] {});
    q.schedule(300, [] {});
    q.schedule(400, [] {});
    EXPECT_EQ(seen, (std::vector<Cycles>{500, 300, 400}));
}

TEST(EventQueue, OnScheduleHookNotInvokedByCancelOrRun)
{
    EventQueue q;
    unsigned hooks = 0;
    q.onSchedule = [&](Cycles) { ++hooks; };
    auto id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(hooks, 2u);
    q.cancel(id);
    q.runDue(100);
    EXPECT_EQ(hooks, 2u); // cancel and runDue are not schedules
}

TEST(EventQueue, OnScheduleHookFiresForEventScheduledByEvent)
{
    // A callback scheduling a follow-up (timer re-arm, IPI chain) must
    // still announce it: the owning CPU may be mid-drain while another
    // CPU's yield threshold depends on hearing about the new event.
    EventQueue q;
    std::vector<Cycles> seen;
    q.onSchedule = [&](Cycles when) { seen.push_back(when); };
    q.schedule(10, [&] { q.schedule(25, [] {}); });
    q.runDue(10);
    EXPECT_EQ(seen, (std::vector<Cycles>{10, 25}));
    EXPECT_EQ(q.nextEventTime(), 25u);
}

} // namespace
} // namespace kvmarm
