/** @file EventQueue unit tests. */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "arm/machine.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace kvmarm {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.nextEventTime(), 10u);
    EXPECT_EQ(q.runDue(25), 2u);
    EXPECT_EQ(q.runDue(100), 1u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoStableAtSameTime)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runDue(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // double cancel fails
    EXPECT_EQ(q.runDue(100), 0u);
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextEventTimeSkipsCancelled)
{
    EventQueue q;
    auto id = q.schedule(5, [] {});
    q.schedule(20, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextEventTime(), 20u);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        ++fired;
        q.schedule(10, [&] { ++fired; }); // due immediately
    });
    EXPECT_EQ(q.runDue(10), 2u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastEventsRunOnNextDrain)
{
    EventQueue q;
    bool ran = false;
    q.schedule(5, [&] { ran = true; });
    EXPECT_EQ(q.runDue(1000), 1u);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, OnScheduleHookFires)
{
    EventQueue q;
    Cycles seen = 0;
    q.onSchedule = [&](Cycles when) { seen = when; };
    q.schedule(42, [] {});
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, OnScheduleHookSeesEverySchedule)
{
    // The machine scheduler's prompt-wake guarantee rests on this hook
    // reporting every schedule with its exact time — including times that
    // are earlier than events already queued.
    EventQueue q;
    std::vector<Cycles> seen;
    q.onSchedule = [&](Cycles when) { seen.push_back(when); };
    q.schedule(500, [] {});
    q.schedule(300, [] {});
    q.schedule(400, [] {});
    EXPECT_EQ(seen, (std::vector<Cycles>{500, 300, 400}));
}

TEST(EventQueue, OnScheduleHookNotInvokedByCancelOrRun)
{
    EventQueue q;
    unsigned hooks = 0;
    q.onSchedule = [&](Cycles) { ++hooks; };
    auto id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(hooks, 2u);
    q.cancel(id);
    q.runDue(100);
    EXPECT_EQ(hooks, 2u); // cancel and runDue are not schedules
}

TEST(EventQueue, OnScheduleHookFiresForEventScheduledByEvent)
{
    // A callback scheduling a follow-up (timer re-arm, IPI chain) must
    // still announce it: the owning CPU may be mid-drain while another
    // CPU's yield threshold depends on hearing about the new event.
    EventQueue q;
    std::vector<Cycles> seen;
    q.onSchedule = [&](Cycles when) { seen.push_back(when); };
    q.schedule(10, [&] { q.schedule(25, [] {}); });
    q.runDue(10);
    EXPECT_EQ(seen, (std::vector<Cycles>{10, 25}));
    EXPECT_EQ(q.nextEventTime(), 25u);
}

TEST(EventQueuePool, SteadyStateSchedulingNeverTouchesTheHeap)
{
    // The free list must absorb all schedule/run churn: heap allocations
    // are bounded by the peak number of simultaneously pending events, not
    // by the total number of events ever scheduled.
    EventQueue q;
    for (unsigned round = 0; round < 200; ++round) {
        for (unsigned i = 0; i < 4; ++i)
            q.schedule(Cycles(round) * 10 + i, [] {});
        q.runDue(Cycles(round) * 10 + 9);
    }
    EXPECT_EQ(q.heapAllocs(), 4u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueuePool, CancelledEventsAreRecycled)
{
    EventQueue q;
    for (unsigned round = 0; round < 50; ++round) {
        auto id = q.schedule(1000, [] {});
        q.cancel(id);
        q.runDue(0); // pops the tombstone and recycles it
    }
    EXPECT_EQ(q.heapAllocs(), 1u);
}

TEST(EventQueuePool, CallbackRescheduleReusesTheFiredEventStruct)
{
    // Timer re-arm is the hot pooling case: the fired event is recycled
    // before its callback runs, so the re-arm schedule() reuses it.
    EventQueue q;
    unsigned fired = 0;
    std::function<void()> rearm = [&] {
        if (++fired < 10)
            q.schedule(Cycles(fired) * 10, rearm);
    };
    q.schedule(0, rearm);
    for (Cycles t = 0; t <= 100; t += 10)
        q.runDue(t);
    EXPECT_EQ(fired, 10u);
    EXPECT_EQ(q.heapAllocs(), 1u);
}

TEST(EventQueueSnapshot, RestoreRecreatesEventsWithExactOrderAndIds)
{
    EventQueue q;
    auto late = q.schedule(20, [] {});
    auto early = q.schedule(10, [] {});
    auto kick = q.schedule(10, [] {}, EventQueue::Kind::Kick);
    auto dead = q.schedule(15, [] {});
    q.cancel(dead);
    (void)kick;

    SnapshotWriter w;
    q.saveState(w);
    SnapshotRecord rec = w.finish("events");

    EventQueue r;
    SnapshotReader rd(rec);
    r.restoreState(rd);
    EXPECT_TRUE(rd.done()) << "restore left unread bytes";
    EXPECT_EQ(r.size(), 3u); // cancelled event was not saved
    EXPECT_EQ(r.nextEventTime(), 10u);

    std::vector<int> order;
    r.claim(early, [&] { order.push_back(1); });
    r.claim(late, [&] { order.push_back(2); });
    r.verifyAllClaimed(); // the Kick event rehydrated itself
    EXPECT_EQ(r.runDue(100), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));

    // The id counter was restored too: new events must never collide with
    // ids that components hold across the snapshot.
    EXPECT_GT(r.schedule(30, [] {}), dead);
}

TEST(EventQueueSnapshot, RestoreDropsWhatWasPendingBefore)
{
    EventQueue q;
    q.schedule(10, [] {});
    SnapshotWriter w;
    q.saveState(w);
    SnapshotRecord rec = w.finish("events");

    EventQueue r;
    bool stale_ran = false;
    r.schedule(5, [&] { stale_ran = true; });
    SnapshotReader rd(rec);
    r.restoreState(rd);
    r.claim(1, [] {}); // the one saved event (first id ever issued)
    EXPECT_EQ(r.size(), 1u);
    r.runDue(100);
    EXPECT_FALSE(stale_ran);
}

TEST(EventQueueSnapshot, UnclaimedGenericEventIsFatal)
{
    EventQueue q;
    q.schedule(10, [] {});
    SnapshotWriter w;
    q.saveState(w);
    SnapshotRecord rec = w.finish("events");

    EventQueue r;
    SnapshotReader rd(rec);
    r.restoreState(rd);
    EXPECT_THROW(r.verifyAllClaimed(), FatalError);
}

TEST(EventQueueSnapshot, BogusClaimsAreFatal)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    SnapshotWriter w;
    q.saveState(w);
    SnapshotRecord rec = w.finish("events");

    EventQueue r;
    SnapshotReader rd(rec);
    r.restoreState(rd);
    EXPECT_THROW(r.claim(id + 1000, [] {}), FatalError); // unknown id
    r.claim(id, [] {});
    EXPECT_THROW(r.claim(id, [] {}), FatalError); // double claim
}

TEST(EventQueueKicks, SameCycleKicksCoalesce)
{
    // A storm of kicks at one cycle (e.g. every ring doorbell in a burst
    // waking the same blocked CPU) must cost one pending event, not N.
    EventQueue q;
    auto id0 = q.schedule(100, [] {}, EventQueue::Kind::Kick);
    auto id1 = q.schedule(100, [] {}, EventQueue::Kind::Kick);
    auto id2 = q.schedule(100, [] {}, EventQueue::Kind::Kick);
    EXPECT_EQ(id1, id0); // the live kick's id is returned
    EXPECT_EQ(id2, id0);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.kicksCoalesced(), 2u);
}

TEST(EventQueueKicks, DistinctCyclesAndKindsDoNotCoalesce)
{
    EventQueue q;
    q.schedule(100, [] {}, EventQueue::Kind::Kick);
    q.schedule(200, [] {}, EventQueue::Kind::Kick); // different cycle
    q.schedule(100, [] {});                         // Generic at same cycle
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.kicksCoalesced(), 0u);
}

TEST(EventQueueKicks, CoalescedKickStillFiresOnSchedule)
{
    // The machine scheduler's prompt-wake guarantee rests on onSchedule
    // firing for EVERY kick — eliding the hook for a coalesced kick would
    // let a running CPU keep a stale yield threshold and change
    // interleavings (breaking bit-identical sim_cycles).
    EventQueue q;
    std::vector<Cycles> seen;
    q.onSchedule = [&](Cycles when) { seen.push_back(when); };
    q.schedule(100, [] {}, EventQueue::Kind::Kick);
    q.schedule(100, [] {}, EventQueue::Kind::Kick);
    q.schedule(100, [] {}, EventQueue::Kind::Kick);
    EXPECT_EQ(seen, (std::vector<Cycles>{100, 100, 100}));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueKicks, KickMayCoalesceAgainAfterRunning)
{
    EventQueue q;
    q.schedule(100, [] {}, EventQueue::Kind::Kick);
    q.schedule(100, [] {}, EventQueue::Kind::Kick);
    EXPECT_EQ(q.runDue(150), 1u);
    // The kick ran; a new kick at the same cycle is a fresh event (past
    // events run on the next drain, so this is still well-formed).
    auto id = q.schedule(100, [] {}, EventQueue::Kind::Kick);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.kicksCoalesced(), 1u);
    EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueKicks, CancelledKickNoLongerCoalesces)
{
    EventQueue q;
    auto id = q.schedule(100, [] {}, EventQueue::Kind::Kick);
    EXPECT_TRUE(q.cancel(id));
    auto id2 = q.schedule(100, [] {}, EventQueue::Kind::Kick);
    EXPECT_NE(id2, id);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.kicksCoalesced(), 0u);
}

TEST(EventQueueKicks, CpuKickAtCoalesces)
{
    // CpuBase::kickAt goes through the same path: a blocked CPU kicked N
    // times for the same wake cycle holds one pending kick event.
    arm::ArmMachine::Config mc;
    mc.numCpus = 1;
    mc.ramSize = 32 * kMiB;
    arm::ArmMachine machine(mc);
    CpuBase &cpu = machine.cpu(0);
    std::size_t before = cpu.events().size();
    cpu.kickAt(5000);
    cpu.kickAt(5000);
    cpu.kickAt(5000);
    EXPECT_EQ(cpu.events().size(), before + 1);
    EXPECT_EQ(cpu.events().kicksCoalesced(), 2u);
    bool woke = false;
    machine.cpu(0).setEntry([&] {
        cpu.waitUntil([&] { return cpu.now() >= 5000; });
        woke = true;
    });
    machine.run();
    EXPECT_TRUE(woke);
    EXPECT_GE(cpu.now(), 5000u);
}

} // namespace
} // namespace kvmarm
