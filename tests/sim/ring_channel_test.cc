/**
 * @file
 * RingChannel / RingPacer tests: the deterministic cross-machine channel
 * and its conservative time-window rendezvous protocol (DESIGN.md §4.10).
 *
 * Covers the protocol edge cases: zero lookahead is rejected outright,
 * window-order delivery, snapshot blockers while an endpoint is attached,
 * a peer terminating mid-wait unblocking the waiter with an error instead
 * of a hang, true rendezvous deadlock detection, and bit-identical
 * ping-pong execution between serial round-robin and parked/fleet-driven
 * stepping.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arm/machine.hh"
#include "sim/fleet.hh"
#include "sim/logging.hh"
#include "sim/ring_channel.hh"

namespace kvmarm {
namespace {

using arm::ArmMachine;

ArmMachine::Config
smallConfig()
{
    ArmMachine::Config c;
    c.numCpus = 1;
    c.ramSize = 32 * kMiB;
    return c;
}

std::vector<std::uint8_t>
bytes(std::initializer_list<std::uint8_t> b)
{
    return std::vector<std::uint8_t>(b);
}

TEST(RingChannel, ZeroLookaheadIsRejected)
{
    // Zero latency means zero lookahead: no window in which the two
    // machines could ever run concurrently. Reject, don't serialize.
    EXPECT_THROW(RingChannel("z", 0), FatalError);
}

TEST(RingChannel, DeliversInWindowOrder)
{
    RingChannel ch("order", 100);
    std::vector<std::uint64_t> seqs;
    std::vector<Cycles> cycles;
    ch.end(1).setReceiver([&](const RingMessage &m) {
        seqs.push_back(m.seq);
        cycles.push_back(m.deliverCycle);
    });
    EXPECT_EQ(ch.end(0).send(10, bytes({1})), 0u);  // delivers at 110
    EXPECT_EQ(ch.end(0).send(50, bytes({2})), 1u);  // delivers at 150
    EXPECT_EQ(ch.end(0).send(210, bytes({3})), 2u); // delivers at 310

    ch.pull(1, 0, 100); // nothing deliverable yet
    EXPECT_TRUE(seqs.empty());
    ch.pull(1, 100, 200);
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1}));
    EXPECT_EQ(cycles, (std::vector<Cycles>{110, 150}));
    ch.pull(1, 200, 400);
    EXPECT_EQ(seqs.size(), 3u);
    EXPECT_EQ(ch.messagesSent(0), 3u);
}

TEST(RingChannel, MessageBelowPullWindowIsAProtocolViolation)
{
    RingChannel ch("below", 100);
    ch.end(1).setReceiver([](const RingMessage &) {});
    ch.end(0).send(10, bytes({1})); // delivers at 110
    // A pacer that skipped the [100, 200) window would silently reorder
    // time; the channel refuses.
    EXPECT_THROW(ch.pull(1, 200, 300), FatalError);
}

TEST(RingChannel, SendToClosedOrAbortedPeerIsFatal)
{
    {
        RingChannel ch("closed", 100);
        ch.close(1);
        EXPECT_THROW(ch.end(0).send(10, bytes({1})), FatalError);
    }
    {
        RingChannel ch("aborted", 100);
        ch.abort(1, "peer died");
        EXPECT_THROW(ch.end(0).send(10, bytes({1})), FatalError);
    }
}

/** A machine whose entry ping-pongs @p rounds payloads over @p ep. */
struct PingMachine
{
    PingMachine(RingChannel::Endpoint &ep, bool initiator, unsigned rounds)
        : machine(smallConfig()), pacer(machine, initiator ? "ping" : "pong")
    {
        pacer.attach(ep);
        CpuBase &cpu = machine.cpu(0);
        ep.setReceiver([this, &cpu](const RingMessage &msg) {
            cpu.events().schedule(msg.deliverCycle, [this, msg] {
                ++received;
                lastPayload = msg.payload;
                digest = digest * 1099511628211ull + msg.deliverCycle;
            });
        });
        machine.cpu(0).setEntry([this, &ep, &cpu, initiator, rounds] {
            for (unsigned r = 0; r < rounds; ++r) {
                if (initiator) {
                    cpu.addCycles(700); // compose
                    ep.send(cpu.now(), {std::uint8_t(r)});
                    std::uint64_t want = received + 1;
                    cpu.waitUntil([this, want] { return received >= want; });
                } else {
                    std::uint64_t want = received + 1;
                    cpu.waitUntil([this, want] { return received >= want; });
                    cpu.addCycles(300); // "process"
                    ep.send(cpu.now(), lastPayload);
                }
            }
        });
    }

    Fleet::StepOutcome
    step()
    {
        return pacer.step() == RingPacer::Step::Done
                   ? Fleet::StepOutcome::Done
                   : Fleet::StepOutcome::Blocked;
    }

    ArmMachine machine;
    RingPacer pacer;
    std::uint64_t received = 0;
    std::uint64_t digest = 0x811c9dc5;
    std::vector<std::uint8_t> lastPayload;
};

/** Serial round-robin driver; fatals if a full round makes no progress. */
void
driveSerial(std::vector<PingMachine *> vms)
{
    while (true) {
        bool all_done = true;
        bool progress = false;
        for (PingMachine *vm : vms) {
            std::uint64_t w0 = vm->pacer.windowsRun();
            Fleet::StepOutcome s = vm->step();
            if (s != Fleet::StepOutcome::Done)
                all_done = false;
            if (s == Fleet::StepOutcome::Done ||
                vm->pacer.windowsRun() != w0)
                progress = true;
        }
        if (all_done)
            return;
        ASSERT_TRUE(progress) << "round-robin wedged";
    }
}

struct PingResult
{
    Cycles cycles0, cycles1;
    std::uint64_t digest0, digest1;
};

PingResult
runPingPongSerial(unsigned rounds, Cycles latency)
{
    RingChannel ch("pp", latency);
    PingMachine a(ch.end(0), true, rounds);
    PingMachine b(ch.end(1), false, rounds);
    driveSerial({&a, &b});
    return {a.machine.cpu(0).now(), b.machine.cpu(0).now(), a.digest,
            b.digest};
}

PingResult
runPingPongFleet(unsigned rounds, Cycles latency, unsigned threads)
{
    RingChannel ch("pp", latency);
    Fleet fleet(threads);
    PingMachine a(ch.end(0), true, rounds);
    PingMachine b(ch.end(1), false, rounds);
    std::size_t ia = fleet.addResumable("a", [&a] { return a.step(); });
    std::size_t ib = fleet.addResumable("b", [&b] { return b.step(); });
    a.pacer.setWakeHook([&fleet, ia] { fleet.notify(ia); });
    b.pacer.setWakeHook([&fleet, ib] { fleet.notify(ib); });
    for (const Fleet::JobResult &j : fleet.run())
        EXPECT_TRUE(j.ok) << j.name << ": " << j.error;
    return {a.machine.cpu(0).now(), b.machine.cpu(0).now(), a.digest,
            b.digest};
}

TEST(RingPacer, PingPongIsBitIdenticalSerialVsFleet)
{
    const unsigned rounds = 40;
    const Cycles latency = 5000;
    PingResult ref = runPingPongSerial(rounds, latency);
    EXPECT_GT(ref.digest0, 0x811c9dc5u); // messages actually flowed
    for (unsigned threads : {1u, 2u, 4u}) {
        PingResult r = runPingPongFleet(rounds, latency, threads);
        EXPECT_EQ(r.cycles0, ref.cycles0) << threads << " threads";
        EXPECT_EQ(r.cycles1, ref.cycles1) << threads << " threads";
        EXPECT_EQ(r.digest0, ref.digest0) << threads << " threads";
        EXPECT_EQ(r.digest1, ref.digest1) << threads << " threads";
    }
}

TEST(RingPacer, RepeatedSerialRunsAreBitIdentical)
{
    PingResult a = runPingPongSerial(25, 3000);
    PingResult b = runPingPongSerial(25, 3000);
    EXPECT_EQ(a.cycles0, b.cycles0);
    EXPECT_EQ(a.cycles1, b.cycles1);
    EXPECT_EQ(a.digest0, b.digest0);
    EXPECT_EQ(a.digest1, b.digest1);
}

TEST(RingPacer, AttachedEndpointBlocksSnapshotBothSides)
{
    // In-flight messages live outside the machines: snapshotting either
    // endpoint's machine must fatal with a ring diagnostic, never drop
    // messages silently.
    RingChannel ch("snap", 1000);
    ArmMachine ma(smallConfig());
    ArmMachine mb(smallConfig());
    RingPacer pa(ma, "a");
    RingPacer pb(mb, "b");
    pa.attach(ch.end(0));
    pb.attach(ch.end(1));
    try {
        ma.takeSnapshot();
        FAIL() << "snapshot of a ring-attached machine must fatal";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("snap"), std::string::npos)
            << "diagnostic must name the ring: " << e.what();
    }
    EXPECT_THROW(mb.takeSnapshot(), FatalError);
}

TEST(RingPacer, PeerTerminatingMidWaitUnblocksWithError)
{
    // Machine A parks waiting for a message that will never come; its
    // peer aborts (e.g. the peer's job failed). A's next step must fatal
    // with the peer's reason — not hang, not silently complete.
    RingChannel ch("err", 2000);
    auto a = std::make_unique<PingMachine>(ch.end(0), true, 3);
    // Step A until it blocks on the (never-publishing) peer.
    while (a->step() == Fleet::StepOutcome::Done)
        FAIL() << "initiator cannot finish without a peer";
    ch.abort(1, "peer job crashed");
    try {
        a->step();
        FAIL() << "step after peer abort must fatal";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("terminated abnormally"),
                  std::string::npos)
            << e.what();
    }
}

TEST(RingPacer, PacerDestructionAbortsItsEndpoints)
{
    // Destroying a pacer mid-run (job teardown) must unblock the peer
    // with an error on its next send/step.
    RingChannel ch("dtor", 2000);
    {
        ArmMachine mb(smallConfig());
        RingPacer pb(mb, "b");
        pb.attach(ch.end(1));
        // pb destroyed before its machine ran to completion.
    }
    RingChannel::PeerView v = ch.peerView(0);
    EXPECT_TRUE(v.aborted);
    EXPECT_NE(v.abortReason.find("destroyed"), std::string::npos);
    EXPECT_THROW(ch.end(0).send(0, bytes({1})), FatalError);
}

TEST(RingPacer, RendezvousDeadlockIsDetected)
{
    // A waits forever; B finishes without ever sending. Once B closes
    // with nothing in flight, no future window can feed A: that's a
    // deadlock, and it must be reported, not spun on.
    RingChannel ch("dead", 2000);
    ArmMachine ma(smallConfig());
    RingPacer pa(ma, "a");
    pa.attach(ch.end(0));
    bool never = false;
    ma.cpu(0).setEntry(
        [&] { ma.cpu(0).waitUntil([&] { return never; }); });

    ArmMachine mb(smallConfig());
    RingPacer pb(mb, "b");
    pb.attach(ch.end(1));
    mb.cpu(0).setEntry([&] { mb.cpu(0).compute(100); });

    EXPECT_EQ(pb.step(), RingPacer::Step::Done); // B finishes, closes
    try {
        while (pa.step() == RingPacer::Step::Blocked) {
        }
        FAIL() << "A can neither finish nor block forever";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("rendezvous deadlock"),
                  std::string::npos)
            << e.what();
    }
    // The deadlock abort must also poison the channel for the peer side.
    EXPECT_TRUE(ch.peerView(1).aborted);
}

TEST(RingPacer, AttachAfterFirstStepIsRejected)
{
    RingChannel ch1("one", 1000);
    RingChannel ch2("two", 1000);
    ArmMachine ma(smallConfig());
    RingPacer pa(ma, "a");
    pa.attach(ch1.end(0));
    ma.cpu(0).setEntry([&] { ma.cpu(0).compute(10); });
    pa.step();
    EXPECT_THROW(pa.attach(ch2.end(0)), FatalError);
}

} // namespace
} // namespace kvmarm