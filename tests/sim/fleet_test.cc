/**
 * @file
 * Fleet executor tests: job completion across thread counts, round-robin
 * dealing with job stealing, error capture, and queue reuse.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sim/fleet.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

TEST(Fleet, RunsEveryJobAndKeepsSubmissionOrder)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        Fleet fleet(threads);
        std::atomic<unsigned> ran{0};
        for (int i = 0; i < 12; ++i) {
            fleet.add("job" + std::to_string(i), [&ran] { ++ran; });
        }
        std::vector<Fleet::JobResult> results = fleet.run();
        EXPECT_EQ(ran.load(), 12u);
        ASSERT_EQ(results.size(), 12u);
        for (int i = 0; i < 12; ++i) {
            EXPECT_TRUE(results[i].ok);
            EXPECT_EQ(results[i].name, "job" + std::to_string(i));
            EXPECT_LT(results[i].worker, fleet.threads());
        }
        EXPECT_EQ(fleet.stats().jobsRun, 12u);
    }
}

TEST(Fleet, StealsFromALoadedWorker)
{
    // Two workers, round-robin deal: worker 0 gets jobs 0/2/4/6, worker 1
    // gets 1/3/5/7. Job 0 parks worker 0 until every other job has run —
    // which can only happen if worker 1 steals worker 0's remaining jobs.
    Fleet fleet(2);
    std::atomic<unsigned> others{0};
    fleet.add("long", [&others] {
        // Parking, not sleeping: deterministic on any host core count.
        while (others.load() < 7)
            std::this_thread::yield();
    });
    for (int i = 1; i < 8; ++i)
        fleet.add("short" + std::to_string(i), [&others] { ++others; });

    std::vector<Fleet::JobResult> results = fleet.run();
    for (const Fleet::JobResult &r : results)
        EXPECT_TRUE(r.ok) << r.name;
    EXPECT_EQ(fleet.stats().jobsRun, 8u);
    // Jobs 2/4/6 were dealt to the parked worker 0; worker 1 stole them.
    EXPECT_GE(fleet.stats().jobsStolen, 3u);
    EXPECT_TRUE(results[2].stolen);
    EXPECT_EQ(results[2].worker, 1u);
}

TEST(Fleet, CapturesJobExceptionsWithoutKillingTheFleet)
{
    Fleet fleet(2);
    fleet.add("ok0", [] {});
    fleet.add("boom", [] { fatal("deliberate fleet-test failure"); });
    fleet.add("ok1", [] {});

    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("deliberate fleet-test failure"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok);
    EXPECT_EQ(fleet.stats().jobsRun, 3u);
}

TEST(Fleet, ZeroThreadsMeansHardwareConcurrency)
{
    Fleet fleet(0);
    EXPECT_GE(fleet.threads(), 1u);
    bool ran = false;
    fleet.add("probe", [&ran] { ran = true; });
    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(results[0].ok);
}

TEST(Fleet, QueueMayBeRefilledAndRerun)
{
    Fleet fleet(2);
    int first = 0, second = 0;
    fleet.add("a", [&first] { ++first; });
    EXPECT_EQ(fleet.run().size(), 1u);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(fleet.stats().jobsRun, 1u);

    fleet.add("b", [&second] { ++second; });
    fleet.add("c", [&second] { ++second; });
    EXPECT_EQ(fleet.run().size(), 2u);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 2);
    EXPECT_EQ(fleet.stats().jobsRun, 2u); // stats are per run()

    EXPECT_TRUE(fleet.run().empty()); // drained queue: no-op
}

TEST(Fleet, RejectsEmptyJob)
{
    Fleet fleet(1);
    EXPECT_THROW(fleet.add("hollow", Fleet::JobFn{}), FatalError);
}

TEST(Fleet, WallTimeIsMeasuredPerJob)
{
    Fleet fleet(1);
    fleet.add("sleepy", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_GE(results[0].wallSeconds, 0.015);
}

} // namespace
} // namespace kvmarm
