/**
 * @file
 * Fleet executor tests: job completion across thread counts, round-robin
 * dealing with job stealing, error capture, late-submission rejection,
 * fault-injection isolation, and queue reuse.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "sim/fleet.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

TEST(Fleet, RunsEveryJobAndKeepsSubmissionOrder)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        Fleet fleet(threads);
        std::atomic<unsigned> ran{0};
        for (int i = 0; i < 12; ++i) {
            fleet.add("job" + std::to_string(i), [&ran] { ++ran; });
        }
        std::vector<Fleet::JobResult> results = fleet.run();
        EXPECT_EQ(ran.load(), 12u);
        ASSERT_EQ(results.size(), 12u);
        for (int i = 0; i < 12; ++i) {
            EXPECT_TRUE(results[i].ok);
            EXPECT_EQ(results[i].name, "job" + std::to_string(i));
            EXPECT_LT(results[i].worker, fleet.threads());
        }
        EXPECT_EQ(fleet.stats().jobsRun, 12u);
    }
}

TEST(Fleet, StealsFromALoadedWorker)
{
    // Two workers, round-robin deal: worker 0 gets jobs 0/2/4/6, worker 1
    // gets 1/3/5/7. Job 0 parks worker 0 until every other job has run —
    // which can only happen if worker 1 steals worker 0's remaining jobs.
    Fleet fleet(2);
    std::atomic<unsigned> others{0};
    fleet.add("long", [&others] {
        // Parking, not sleeping: deterministic on any host core count.
        while (others.load() < 7)
            std::this_thread::yield();
    });
    for (int i = 1; i < 8; ++i)
        fleet.add("short" + std::to_string(i), [&others] { ++others; });

    std::vector<Fleet::JobResult> results = fleet.run();
    for (const Fleet::JobResult &r : results)
        EXPECT_TRUE(r.ok) << r.name;
    EXPECT_EQ(fleet.stats().jobsRun, 8u);
    // Jobs 2/4/6 were dealt to the parked worker 0; worker 1 stole them.
    EXPECT_GE(fleet.stats().jobsStolen, 3u);
    EXPECT_TRUE(results[2].stolen);
    EXPECT_EQ(results[2].worker, 1u);
}

TEST(Fleet, CapturesJobExceptionsWithoutKillingTheFleet)
{
    Fleet fleet(2);
    fleet.add("ok0", [] {});
    fleet.add("boom", [] { fatal("deliberate fleet-test failure"); });
    fleet.add("ok1", [] {});

    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("deliberate fleet-test failure"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok);
    EXPECT_EQ(fleet.stats().jobsRun, 3u);
}

TEST(Fleet, ZeroThreadsMeansHardwareConcurrency)
{
    Fleet fleet(0);
    EXPECT_GE(fleet.threads(), 1u);
    bool ran = false;
    fleet.add("probe", [&ran] { ran = true; });
    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(results[0].ok);
}

TEST(Fleet, QueueMayBeRefilledAndRerun)
{
    Fleet fleet(2);
    int first = 0, second = 0;
    fleet.add("a", [&first] { ++first; });
    EXPECT_EQ(fleet.run().size(), 1u);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(fleet.stats().jobsRun, 1u);

    fleet.add("b", [&second] { ++second; });
    fleet.add("c", [&second] { ++second; });
    EXPECT_EQ(fleet.run().size(), 2u);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 2);
    EXPECT_EQ(fleet.stats().jobsRun, 2u); // stats are per run()

    EXPECT_TRUE(fleet.run().empty()); // drained queue: no-op
}

TEST(Fleet, RejectsEmptyJob)
{
    Fleet fleet(1);
    EXPECT_THROW(fleet.add("hollow", Fleet::JobFn{}), FatalError);
}

TEST(Fleet, AddDuringRunIsAHardError)
{
    // The round-robin deal happens before any worker starts, so a job
    // submitted mid-run would be silently dropped; it must fail loudly
    // instead. The misuse comes from a job body — the one place it can
    // happen after run() begins.
    Fleet fleet(2);
    fleet.add("late-submitter", [&fleet] {
        fleet.add("too-late", [] {});
    });
    fleet.add("innocent", [] {});

    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("while run() is in progress"),
              std::string::npos)
        << results[0].error;
    EXPECT_TRUE(results[1].ok);

    // The fleet survives the misuse: submission works again after run().
    bool ran = false;
    fleet.add("after", [&ran] { ran = true; });
    EXPECT_TRUE(fleet.run()[0].ok);
    EXPECT_TRUE(ran);
}

/** Everything observable a full-stack VM job produced. */
struct VmOutcome
{
    Cycles simCycles = 0;
    std::string statDump;
};

/**
 * One self-contained full-stack VM (machine + host kernel + KVM + 1-VCPU
 * guest) with an index-dependent workload mix. When @p fail is set the
 * guest runs a truncated workload and the job throws before producing any
 * results, modelling a VM job dying half-way through a fleet run while
 * other jobs are still in flight.
 */
VmOutcome
runFleetVm(unsigned index, bool fail = false)
{
    VmOutcome out;
    arm::ArmMachine::Config mc;
    mc.numCpus = 1;
    mc.ramSize = 64 * kMiB;
    arm::ArmMachine machine(mc);
    host::HostKernel hostk(machine);
    core::Kvm kvm(hostk, core::KvmConfig{});

    machine.cpu(0).setEntry([&] {
        arm::ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        ASSERT_TRUE(kvm.initCpu(cpu));
        std::unique_ptr<core::Vm> vm = kvm.createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);

        vcpu.run(cpu, [&](arm::ArmCpu &c) {
            Cycles sim0 = c.now();
            const Addr page = vm->ramBase() + 0x4000;
            for (std::uint64_t i = 0; i < 500 + 100 * index; ++i)
                c.memRead(page + ((i & 31) * 8), 4);
            if (fail)
                return; // dies before finishing its workload
            for (std::uint64_t i = 0; i < 50 + 10 * index; ++i)
                c.hvc(core::hvc::kTestHypercall);
            out.simCycles = c.now() - sim0;
        });
    });
    machine.run();
    if (fail)
        fatal("fleet-test: injected VM failure");

    std::ostringstream os;
    machine.cpu(0).stats().dump(os, "cpu0.");
    out.statDump = os.str();
    return out;
}

TEST(Fleet, FaultInjectedJobLeavesSurvivorsBitIdentical)
{
    // Reference run: 6 VMs, nobody fails.
    constexpr unsigned kVms = 6;
    std::vector<VmOutcome> clean(kVms);
    {
        Fleet fleet(4);
        for (unsigned i = 0; i < kVms; ++i) {
            fleet.add("vm" + std::to_string(i),
                      [i, &clean] { clean[i] = runFleetVm(i); });
        }
        for (const Fleet::JobResult &r : fleet.run())
            ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    }

    // Same fleet, but VM 2 throws mid-workload.
    std::vector<VmOutcome> faulty(kVms);
    Fleet fleet(4);
    for (unsigned i = 0; i < kVms; ++i) {
        fleet.add("vm" + std::to_string(i), [i, &faulty] {
            faulty[i] = runFleetVm(i, /*fail=*/i == 2);
        });
    }
    std::vector<Fleet::JobResult> results = fleet.run();

    EXPECT_FALSE(results[2].ok);
    EXPECT_NE(results[2].error.find("injected VM failure"),
              std::string::npos);
    EXPECT_EQ(fleet.stats().jobsRun, kVms);

    // Every surviving VM's simulated execution is bit-identical to the
    // no-failure fleet: a dying job takes nothing and disturbs nothing.
    for (unsigned i = 0; i < kVms; ++i) {
        if (i == 2)
            continue;
        SCOPED_TRACE("vm" + std::to_string(i));
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_GT(faulty[i].simCycles, 0u);
        EXPECT_EQ(faulty[i].simCycles, clean[i].simCycles);
        EXPECT_EQ(faulty[i].statDump, clean[i].statDump);
    }
}

TEST(Fleet, WallTimeIsMeasuredPerJob)
{
    Fleet fleet(1);
    fleet.add("sleepy", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_GE(results[0].wallSeconds, 0.015);
}

TEST(Fleet, ResumableJobParksAndResumesOnNotify)
{
    for (unsigned threads : {1u, 2u}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        Fleet fleet(threads);
        std::atomic<unsigned> waiterSteps{0};
        std::atomic<bool> started{false};
        std::size_t waiter = fleet.addResumable("waiter", [&] {
            started = true;
            return ++waiterSteps == 1 ? Fleet::StepOutcome::Blocked
                                      : Fleet::StepOutcome::Done;
        });
        // A notify before the first step would target a Queued job (a
        // no-op); wait until the waiter has actually started stepping.
        fleet.add("waker", [&] {
            while (!started)
                std::this_thread::yield();
            fleet.notify(waiter);
        });

        std::vector<Fleet::JobResult> results = fleet.run();
        EXPECT_TRUE(results[0].ok) << results[0].error;
        EXPECT_TRUE(results[1].ok) << results[1].error;
        EXPECT_EQ(waiterSteps.load(), 2u);
        EXPECT_EQ(results[0].steps, 2u);
        if (threads == 1)
            EXPECT_GE(fleet.stats().jobsParked, 1u);
    }
}

TEST(Fleet, NotifyWhileRunningIsLatchedNotLost)
{
    // The classic lost-wakeup: the notify lands while the job is still
    // executing the step that is about to return Blocked. The fleet must
    // latch it and convert the park into an immediate re-queue.
    Fleet fleet(2);
    std::atomic<bool> stepStarted{false};
    std::atomic<bool> notified{false};
    std::atomic<unsigned> steps{0};
    std::size_t waiter = fleet.addResumable("waiter", [&] {
        if (++steps == 1) {
            stepStarted = true;
            // Hold the step open until the notify has already happened.
            while (!notified)
                std::this_thread::yield();
            return Fleet::StepOutcome::Blocked;
        }
        return Fleet::StepOutcome::Done;
    });
    fleet.add("waker", [&] {
        while (!stepStarted)
            std::this_thread::yield();
        fleet.notify(waiter); // waiter is mid-step: must latch
        notified = true;
    });
    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(steps.load(), 2u);
}

TEST(Fleet, ParkedJobWithNoWakerIsAFleetDeadlock)
{
    // A job that parks with no runnable peer left to wake it must be
    // failed with a diagnostic, not hang the fleet forever.
    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        Fleet fleet(threads);
        fleet.addResumable("stuck",
                           [] { return Fleet::StepOutcome::Blocked; });
        fleet.add("bystander", [] {});
        std::vector<Fleet::JobResult> results = fleet.run();
        EXPECT_FALSE(results[0].ok);
        EXPECT_NE(results[0].error.find("fleet rendezvous deadlock"),
                  std::string::npos)
            << results[0].error;
        EXPECT_TRUE(results[1].ok);
    }
}

TEST(Fleet, SingleThreadAlternatesCommunicatingJobs)
{
    // Two mutually-waking resumable jobs on ONE worker thread: parking
    // must degrade to serial alternation, never a blocked worker.
    Fleet fleet(1);
    constexpr unsigned kRounds = 10;
    unsigned turnsA = 0, turnsB = 0; // single thread: no atomics needed
    std::size_t ia = 0, ib = 0;
    ia = fleet.addResumable("a", [&] {
        ++turnsA;
        EXPECT_EQ(turnsA, turnsB + 1); // strict A,B,A,B alternation
        fleet.notify(ib);
        return turnsA < kRounds ? Fleet::StepOutcome::Blocked
                                : Fleet::StepOutcome::Done;
    });
    ib = fleet.addResumable("b", [&] {
        ++turnsB;
        EXPECT_EQ(turnsB, turnsA);
        fleet.notify(ia);
        return turnsB < kRounds ? Fleet::StepOutcome::Blocked
                                : Fleet::StepOutcome::Done;
    });
    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_TRUE(results[1].ok) << results[1].error;
    EXPECT_EQ(turnsA, kRounds);
    EXPECT_EQ(turnsB, kRounds);
}

TEST(Fleet, NotifyOutsideRunIsHarmless)
{
    Fleet fleet(1);
    std::size_t idx =
        fleet.addResumable("x", [] { return Fleet::StepOutcome::Done; });
    fleet.notify(idx);        // before run: no-op
    fleet.notify(idx + 1000); // out of range: no-op
    std::vector<Fleet::JobResult> results = fleet.run();
    EXPECT_TRUE(results[0].ok);
    fleet.notify(idx); // after run: no-op
}

TEST(Fleet, SubmitFeedsALivePoolAcrossEpochs)
{
    Fleet fleet(2);
    std::atomic<unsigned> ran{0};
    fleet.submit("pre-start", [&ran] { ++ran; }); // queued until start()
    EXPECT_FALSE(fleet.poolLive());
    fleet.start();
    EXPECT_TRUE(fleet.poolLive());
    for (int i = 0; i < 5; ++i)
        fleet.submit("live" + std::to_string(i), [&ran] { ++ran; });

    std::vector<Fleet::JobResult> first = fleet.drain();
    EXPECT_EQ(ran.load(), 6u);
    ASSERT_EQ(first.size(), 6u);
    // Result order is the external submission order, not completion order.
    EXPECT_EQ(first[0].name, "pre-start");
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(first[i + 1].name, "live" + std::to_string(i));
        EXPECT_EQ(first[i + 1].submitter, Fleet::kExternalSubmitter);
    }
    EXPECT_EQ(fleet.epoch(), 1u);

    // The pool survives the drain: a second epoch over the same workers.
    fleet.submit("second-epoch", [&ran] { ++ran; });
    std::vector<Fleet::JobResult> second = fleet.drain();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].ok);
    EXPECT_EQ(second[0].name, "second-epoch");
    EXPECT_EQ(ran.load(), 7u);
    EXPECT_EQ(fleet.epoch(), 2u);

    EXPECT_TRUE(fleet.shutdown().empty());
    EXPECT_FALSE(fleet.poolLive());
}

TEST(Fleet, JobsCanSpawnJobsWithDeterministicResultOrder)
{
    // "VMs spawning VMs": a running job submits children through the live
    // channel. Results come out keyed by (submitter, seq) path — children
    // directly after their parent in spawn order, external jobs in
    // submission order — no matter which worker finished first.
    for (unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        Fleet fleet(threads);
        fleet.start();
        std::atomic<unsigned> children{0};
        fleet.submit("parent", [&fleet, &children] {
            for (int c = 0; c < 4; ++c) {
                fleet.submit("child" + std::to_string(c),
                             [&children] { ++children; });
            }
        });
        fleet.submit("bystander", [] {});

        std::vector<Fleet::JobResult> results = fleet.drain();
        ASSERT_EQ(results.size(), 6u);
        EXPECT_EQ(results[0].name, "parent");
        for (int c = 0; c < 4; ++c) {
            EXPECT_EQ(results[c + 1].name, "child" + std::to_string(c));
            EXPECT_NE(results[c + 1].submitter, Fleet::kExternalSubmitter);
            EXPECT_EQ(results[c + 1].seq, static_cast<std::uint64_t>(c));
            EXPECT_TRUE(results[c + 1].ok);
        }
        EXPECT_EQ(results[5].name, "bystander");
        EXPECT_EQ(children.load(), 4u);
        EXPECT_EQ(fleet.stats().jobsSpawned, 4u);
        fleet.shutdown();
    }
}

TEST(Fleet, DrainWaitsForInFlightSpawns)
{
    // The drain starts while the spawner is still submitting; every
    // transitively spawned job must be included in the same epoch.
    Fleet fleet(2);
    fleet.start();
    std::atomic<unsigned> depth{0};
    std::function<void(unsigned)> spawnChain =
        [&fleet, &depth, &spawnChain](unsigned level) {
            ++depth;
            if (level < 5) {
                fleet.submit("level" + std::to_string(level + 1),
                             [&spawnChain, level] { spawnChain(level + 1); });
            }
        };
    fleet.submit("level0", [&spawnChain] { spawnChain(0); });

    std::vector<Fleet::JobResult> results = fleet.drain();
    EXPECT_EQ(depth.load(), 6u);
    ASSERT_EQ(results.size(), 6u);
    for (const Fleet::JobResult &r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    // Each level spawned the next: the path ordering walks the chain.
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(results[i].name, "level" + std::to_string(i));
    fleet.shutdown();
}

TEST(Fleet, SpawnedChildFailureIsCapturedWithoutWedgingTheWorkers)
{
    Fleet fleet(2);
    fleet.start();
    fleet.submit("parent", [&fleet] {
        fleet.submit("doomed-child",
                     [] { fatal("deliberate spawned-child failure"); });
        fleet.submit("healthy-child", [] {});
    });

    std::vector<Fleet::JobResult> results = fleet.drain();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("deliberate spawned-child failure"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok);

    // No worker was wedged by the child's exception: the pool still takes
    // and finishes work.
    bool ran = false;
    fleet.submit("after-failure", [&ran] { ran = true; });
    std::vector<Fleet::JobResult> second = fleet.drain();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].ok);
    EXPECT_TRUE(ran);
    fleet.shutdown();
}

TEST(Fleet, SubmitAfterShutdownIsAHardError)
{
    Fleet fleet(1);
    fleet.start();
    fleet.submit("only", [] {});
    std::vector<Fleet::JobResult> last = fleet.shutdown();
    ASSERT_EQ(last.size(), 1u);
    EXPECT_TRUE(last[0].ok);

    EXPECT_THROW(fleet.submit("too-late", [] {}), FatalError);
    try {
        fleet.submit("too-late", [] {});
        FAIL() << "submit after shutdown() must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("after shutdown()"),
                  std::string::npos)
            << e.what();
    }
    // The channel is closed for good: restart and re-shutdown are errors.
    EXPECT_THROW(fleet.start(), FatalError);
    EXPECT_THROW(fleet.shutdown(), FatalError);
}

TEST(Fleet, ParkedJobSurvivesBetweenEpochsUntilNotified)
{
    // Between drains a parked job is NOT a rendezvous deadlock: the owner
    // can still notify() it. Only a drain turns "parked with no runnable
    // peer" into a failure.
    Fleet fleet(2);
    fleet.start();
    std::atomic<unsigned> steps{0};
    std::size_t waiter = fleet.submitResumable("waiter", [&steps] {
        return ++steps == 1 ? Fleet::StepOutcome::Blocked
                            : Fleet::StepOutcome::Done;
    });
    // Let the first step park the job.
    while (steps.load() == 0)
        std::this_thread::yield();
    fleet.notify(waiter); // external wake between epochs
    std::vector<Fleet::JobResult> results = fleet.drain();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(steps.load(), 2u);
    fleet.shutdown();
}

TEST(Fleet, RunMayCarryMidRunSpawnsDeterministically)
{
    // The legacy batch call accepts submissions from job bodies too (the
    // batch is just one pool epoch); the result layout is identical at any
    // worker count.
    std::vector<std::string> refNames;
    for (unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        Fleet fleet(threads);
        for (int i = 0; i < 3; ++i) {
            fleet.add("root" + std::to_string(i), [&fleet, i] {
                for (int c = 0; c < 2; ++c) {
                    fleet.submit("spawn" + std::to_string(i) +
                                     std::to_string(c),
                                 [] {});
                }
            });
        }
        std::vector<Fleet::JobResult> results = fleet.run();
        ASSERT_EQ(results.size(), 9u);
        std::vector<std::string> names;
        names.reserve(results.size());
        for (const Fleet::JobResult &r : results) {
            EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
            names.push_back(r.name);
        }
        if (refNames.empty())
            refNames = names;
        else
            EXPECT_EQ(names, refNames);
    }
}

} // namespace
} // namespace kvmarm
