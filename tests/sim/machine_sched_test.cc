/**
 * @file
 * Machine scheduler tests: deterministic min-clock interleaving, idle
 * fast-forward, cross-CPU wakes — including the regression where a
 * running CPU's yield threshold went stale after a cross-CPU event was
 * scheduled, letting a spin-wait run megacycles past the wake.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"

namespace kvmarm {
namespace {

using arm::ArmMachine;

ArmMachine::Config
smallConfig(unsigned cpus)
{
    ArmMachine::Config c;
    c.numCpus = cpus;
    c.ramSize = 32 * kMiB;
    return c;
}

TEST(MachineSched, SingleCpuRunsToCompletion)
{
    ArmMachine machine(smallConfig(1));
    bool done = false;
    machine.cpu(0).setEntry([&] {
        machine.cpu(0).compute(12345);
        done = true;
    });
    machine.run();
    EXPECT_TRUE(done);
    EXPECT_GE(machine.cpu(0).now(), 12345u);
}

TEST(MachineSched, TwoCpusStayWithinQuantum)
{
    ArmMachine machine(smallConfig(2));
    machine.setQuantum(500);
    Cycles max_skew = 0;
    auto spin = [&](CpuId id) {
        for (int i = 0; i < 2000; ++i) {
            machine.cpu(id).compute(50);
            Cycles a = machine.cpu(0).now();
            Cycles b = machine.cpu(1).now();
            Cycles skew = a > b ? a - b : b - a;
            max_skew = std::max(max_skew, skew);
        }
    };
    machine.cpu(0).setEntry([&] { spin(0); });
    machine.cpu(1).setEntry([&] { spin(1); });
    machine.run();
    // Bounded lockstep: one CPU never runs more than quantum + one op
    // ahead of the other.
    EXPECT_LE(max_skew, 500u + 100u);
}

TEST(MachineSched, IdleCpuFastForwardsToEvent)
{
    ArmMachine machine(smallConfig(1));
    arm::ArmCpu &cpu = machine.cpu(0);
    bool fired = false;
    machine.cpu(0).setEntry([&] {
        cpu.events().schedule(1000000, [&] { fired = true; });
        cpu.waitUntil([&] { return fired; });
    });
    machine.run();
    EXPECT_TRUE(fired);
    EXPECT_GE(cpu.now(), 1000000u);
    EXPECT_GE(cpu.idleCycles(), 900000u);
}

TEST(MachineSched, CrossCpuWakeIsPrompt)
{
    // Regression: a spinning CPU0 must notice CPU1's wake event promptly
    // even though CPU0's yield threshold was computed before the event
    // existed.
    ArmMachine machine(smallConfig(2));
    bool woke = false;
    Cycles wake_seen_at = 0;
    machine.cpu(0).setEntry([&] {
        arm::ArmCpu &c0 = machine.cpu(0);
        c0.compute(2000);
        // Schedule a wake for CPU1 at ~+300 cycles, then spin.
        machine.cpu(1).events().schedule(c0.now() + 300, [&] {
            woke = true;
        });
        while (!woke)
            c0.compute(50);
        wake_seen_at = c0.now();
    });
    machine.cpu(1).setEntry([&] {
        machine.cpu(1).waitUntil([&] { return woke; });
    });
    machine.run();
    // CPU0 observed the wake within a few quanta, not megacycles later.
    EXPECT_LT(wake_seen_at, 2000u + 300u + 3 * machine.quantum());
}

TEST(MachineSched, IdleFastForwardServicesCrossCpuWakesInOrder)
{
    // The invariant the fleet executor must not disturb: a CPU blocked in
    // waitUntil fast-forwards its clock from event to event, servicing
    // cross-CPU wakes in timestamp order (FIFO-stable at equal times) and
    // never before their scheduled time — even when the events were
    // scheduled out of order by another CPU via the onSchedule hook path.
    ArmMachine machine(smallConfig(2));
    arm::ArmCpu &c0 = machine.cpu(0);
    arm::ArmCpu &c1 = machine.cpu(1);

    struct Wake
    {
        Cycles when;    //!< requested event time
        Cycles service; //!< cpu1's clock when the callback ran
        unsigned seq;   //!< schedule order on cpu0
    };
    std::vector<Wake> wakes;
    unsigned fired = 0;

    machine.cpu(0).setEntry([&] {
        c0.compute(100);
        // Out-of-order schedule times, including a same-time pair whose
        // FIFO rank is the only thing that orders them.
        const Cycles times[] = {900, 500, 700, 700, 1400};
        for (unsigned i = 0; i < 5; ++i) {
            Cycles when = times[i];
            c1.events().schedule(when, [&, when, i] {
                wakes.push_back({when, c1.now(), i});
                ++fired;
            });
        }
        c0.compute(100);
    });
    machine.cpu(1).setEntry([&] {
        c1.waitUntil([&] { return fired == 5; });
    });
    machine.run();

    ASSERT_EQ(wakes.size(), 5u);
    // Timestamp order, with the idle clock fast-forwarded to each event
    // time but never past it (and never backwards).
    const Cycles expect_when[] = {500, 700, 700, 900, 1400};
    // The 700-cycle pair keeps its schedule order (seq 2 before seq 3).
    const unsigned expect_seq[] = {1, 2, 3, 0, 4};
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(wakes[i].when, expect_when[i]) << "wake " << i;
        EXPECT_EQ(wakes[i].seq, expect_seq[i]) << "wake " << i;
        EXPECT_GE(wakes[i].service, wakes[i].when) << "wake " << i;
        if (i > 0) {
            EXPECT_GE(wakes[i].service, wakes[i - 1].service);
        }
    }
    // Idle fast-forward jumped straight to the earliest pending event, so
    // the first wake ran exactly at its scheduled time.
    EXPECT_EQ(wakes[0].service, 500u);
    EXPECT_GE(c1.idleCycles(), 400u);
}

TEST(MachineSched, SingleCpuResultIsQuantumIndependent)
{
    // The single-CPU fast path never computes a yield threshold (there is
    // no laggard CPU to stay near), so the quantum setting must have no
    // observable effect on a 1-CPU machine's simulation.
    auto run_with_quantum = [](Cycles quantum) {
        ArmMachine machine(smallConfig(1));
        machine.setQuantum(quantum);
        arm::ArmCpu &cpu = machine.cpu(0);
        bool fired = false;
        machine.cpu(0).setEntry([&] {
            cpu.compute(777);
            cpu.events().schedule(cpu.now() + 5000, [&] { fired = true; });
            cpu.waitUntil([&] { return fired; });
            cpu.compute(333);
        });
        machine.run();
        return cpu.now();
    };
    EXPECT_EQ(run_with_quantum(1), run_with_quantum(1000000));
}

TEST(MachineSched, SingleCpuTwoPhaseRunPreservesClockAndEvents)
{
    // The snapshot/clone flow runs a machine in two legs: boot to quiesce,
    // then (possibly after takeSnapshot) set a new entry and run again.
    // The second leg must continue the same timeline, and a future event
    // left pending by leg one must survive the gap and fire on time.
    ArmMachine machine(smallConfig(1));
    arm::ArmCpu &cpu = machine.cpu(0);
    Cycles fired_at = 0;
    machine.cpu(0).setEntry([&] {
        cpu.compute(1000);
        cpu.events().schedule(5000, [&] { fired_at = cpu.now(); });
    });
    machine.run();
    Cycles leg1_end = cpu.now();
    EXPECT_GE(leg1_end, 1000u);
    EXPECT_EQ(fired_at, 0u) << "event fired before its time";
    EXPECT_EQ(cpu.events().size(), 1u);

    machine.cpu(0).setEntry([&] {
        // Small steps: the event fires when the clock first drains past
        // its time, so fine granularity pins the observed fire time.
        for (int i = 0; i < 100; ++i)
            cpu.compute(100);
    });
    machine.run();
    EXPECT_GE(cpu.now(), leg1_end + 10000);
    EXPECT_GE(fired_at, 5000u);
    EXPECT_LT(fired_at, 5100u);
    EXPECT_TRUE(cpu.events().empty());
}

TEST(MachineSched, SingleCpuStopRequestAbandonsTheFiber)
{
    // Without the stop request this entry would be a deadlock panic; the
    // single-CPU loop must check the stop flag before diagnosing one.
    ArmMachine machine(smallConfig(1));
    machine.cpu(0).setEntry([&] {
        machine.cpu(0).compute(1000);
        machine.requestStop();
        machine.cpu(0).waitUntil([] { return false; }); // parked forever
    });
    machine.run();
    EXPECT_TRUE(machine.stopRequested());
}

TEST(MachineSched, DeadlockIsDetected)
{
    ArmMachine machine(smallConfig(1));
    machine.cpu(0).setEntry([&] {
        machine.cpu(0).waitUntil([] { return false; }); // never satisfied
    });
    EXPECT_DEATH(machine.run(), "deadlock");
}

TEST(MachineSched, StopRequestAbandonsFibers)
{
    ArmMachine machine(smallConfig(2));
    machine.cpu(0).setEntry([&] {
        machine.cpu(0).compute(1000);
        machine.requestStop();
    });
    machine.cpu(1).setEntry([&] {
        while (true)
            machine.cpu(1).compute(100); // never finishes on its own
    });
    machine.run(); // returns because of requestStop
    EXPECT_TRUE(machine.stopRequested());
}

} // namespace
} // namespace kvmarm
