/**
 * @file
 * User-space save/restore + migration tests (paper §4): the ONE_REG-style
 * accessors, full state snapshots, cross-machine restore including
 * virtual-time continuity, and the trap-and-emulate shadow state.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "power/energy.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::GpReg;

class NullGuestOs : public arm::OsVectors
{
  public:
    void irq(ArmCpu &) override {}
    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "null-guest"; }
};

struct Stack
{
    Stack()
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 128 * kMiB;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
        kvm = std::make_unique<core::Kvm>(*hostk);
    }
    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
    std::unique_ptr<core::Kvm> kvm;
};

TEST(Migration, OneRegAccessorsReadAndWriteContext)
{
    Stack s;
    NullGuestOs os;
    s.machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = s.machine->cpu(0);
        s.hostk->boot(0);
        s.kvm->initCpu(cpu);
        auto vm = s.kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&os);

        vcpu.setOneReg(GpReg::R3, 0x33330003);
        vcpu.setOneReg(arm::CtrlReg::TPIDRURO, 0x12121212);
        vcpu.run(cpu, [&](ArmCpu &c) {
            EXPECT_EQ(c.regs()[GpReg::R3], 0x33330003u);
            EXPECT_EQ(c.readCp15(arm::CtrlReg::TPIDRURO), 0x12121212u);
            c.regs()[GpReg::R3] = 0x44440004;
        });
        EXPECT_EQ(vcpu.getOneReg(GpReg::R3), 0x44440004u);
    });
    s.machine->run();
}

TEST(Migration, SnapshotRoundTripsFullState)
{
    Stack s;
    NullGuestOs os;
    s.machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = s.machine->cpu(0);
        s.hostk->boot(0);
        s.kvm->initCpu(cpu);
        auto vm = s.kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&os);
        vcpu.shadowActlr = 0x777;
        vcpu.run(cpu, [&](ArmCpu &c) {
            c.regs()[GpReg::R9] = 0x99;
            c.sensitiveOp(arm::SensitiveOp::Cp14Write, 0xD14);
        });
        core::VcpuState snap = vcpu.saveState(cpu);

        // Clobber, then restore.
        vcpu.regs = arm::RegisterFile{};
        vcpu.shadowCp14 = 0;
        vcpu.restoreState(cpu, snap);
        EXPECT_EQ(vcpu.regs[GpReg::R9], 0x99u);
        EXPECT_EQ(vcpu.shadowCp14, 0xD14u);
        EXPECT_EQ(vcpu.shadowActlr, 0x777u);

        // Snapshot equality is deep.
        EXPECT_EQ(vcpu.saveState(cpu).regs, snap.regs);
    });
    s.machine->run();
}

TEST(Migration, VirtualTimeContinuesOnTargetMachine)
{
    NullGuestOs os;
    core::VcpuState snap;
    std::uint64_t vtime_at_save = 0;

    {
        Stack a;
        a.machine->cpu(0).setEntry([&] {
            ArmCpu &cpu = a.machine->cpu(0);
            a.hostk->boot(0);
            a.kvm->initCpu(cpu);
            auto vm = a.kvm->createVm(32 * kMiB);
            core::VCpu &vcpu = vm->addVcpu(0);
            vcpu.setGuestOs(&os);
            vcpu.run(cpu, [&](ArmCpu &c) {
                c.compute(50000);
                vtime_at_save = c.readCntvct();
            });
            snap = vcpu.saveState(cpu);
        });
        a.machine->run();
    }
    {
        Stack b;
        b.machine->cpu(0).setEntry([&] {
            ArmCpu &cpu = b.machine->cpu(0);
            b.hostk->boot(0);
            b.kvm->initCpu(cpu);
            cpu.compute(999999); // target machine clock is way ahead
            auto vm = b.kvm->createVm(32 * kMiB);
            core::VCpu &vcpu = vm->addVcpu(0);
            vcpu.setGuestOs(&os);
            vcpu.restoreState(cpu, snap);
            vcpu.run(cpu, [&](ArmCpu &c) {
                std::uint64_t vtime = c.readCntvct();
                EXPECT_GE(vtime, vtime_at_save);
                EXPECT_LT(vtime, vtime_at_save + 50000)
                    << "guest virtual time jumped across migration";
            });
        });
        b.machine->run();
    }
}

TEST(Energy, ModelBehavesLinearly)
{
    power::PowerProfile p = power::arndaleProfile();
    EXPECT_DOUBLE_EQ(power::watts(p, 0.0), p.idleWatts);
    EXPECT_DOUBLE_EQ(power::watts(p, 1.0), p.busyWatts);
    EXPECT_DOUBLE_EQ(power::watts(p, 2.0), p.busyWatts); // clamped
    EXPECT_NEAR(power::energyJoules(p, 10.0, 0.5),
                10.0 * (p.idleWatts + p.busyWatts) / 2, 1e-9);
    EXPECT_LT(power::arndaleProfile().busyWatts,
              power::x86LaptopProfile().idleWatts); // the paper's point
}

} // namespace
} // namespace kvmarm
