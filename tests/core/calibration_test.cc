/**
 * @file
 * Calibration tests: pin every cell of the paper's Table 3 to within a
 * tolerance, so cost-model regressions are caught. The constants in
 * arm/cost.hh and x86/cost.hh were chosen once; these tests assert the
 * *composed paths* (which the simulator executes literally) still land
 * where the paper measured them.
 */

#include <gtest/gtest.h>

#include "workload/microbench.hh"
#include "workload/microbench_x86.hh"

namespace kvmarm {
namespace {

/** Relative tolerance: the looser bound covers the no-VGIC IPI path,
 *  whose absolute composition the paper does not break down. */
constexpr double kTightTol = 0.08;
constexpr double kLooseTol = 0.16;

void
expectNearRel(double measured, double paper, double tol, const char *what)
{
    EXPECT_NEAR(measured / paper, 1.0, tol)
        << what << ": measured " << measured << " vs paper " << paper;
}

TEST(Calibration, ArmWithVgicVtimers)
{
    wl::MicroResults r = wl::runArmMicrobench({true, true, 64});
    expectNearRel(double(r.hypercall), 5326, kTightTol, "hypercall");
    EXPECT_EQ(r.trap, 27u);
    expectNearRel(double(r.ioKernel), 5990, kTightTol, "io kernel");
    expectNearRel(double(r.ioUser), 10119, kTightTol, "io user");
    expectNearRel(double(r.ipi), 14366, kTightTol, "ipi");
    expectNearRel(double(r.eoiAck), 427, kTightTol, "eoi+ack");
}

TEST(Calibration, ArmWithoutVgicVtimers)
{
    wl::MicroResults r = wl::runArmMicrobench({false, false, 64});
    expectNearRel(double(r.hypercall), 2270, kTightTol, "hypercall");
    EXPECT_EQ(r.trap, 27u);
    expectNearRel(double(r.ioKernel), 2850, kTightTol, "io kernel");
    expectNearRel(double(r.ioUser), 6704, kTightTol, "io user");
    expectNearRel(double(r.ipi), 32951, kLooseTol, "ipi");
    expectNearRel(double(r.eoiAck), 13726, kTightTol, "eoi+ack");
}

TEST(Calibration, X86Laptop)
{
    wl::MicroResults r = wl::runX86Microbench({x86::X86Platform::Laptop, 64});
    expectNearRel(double(r.hypercall), 1336, kTightTol, "hypercall");
    expectNearRel(double(r.trap), 632, kTightTol, "trap");
    expectNearRel(double(r.ioKernel), 3190, kTightTol, "io kernel");
    expectNearRel(double(r.ioUser), 10985, kTightTol, "io user");
    expectNearRel(double(r.ipi), 17138, kTightTol, "ipi");
    expectNearRel(double(r.eoiAck), 2043, kTightTol, "eoi+ack");
}

TEST(Calibration, X86Server)
{
    wl::MicroResults r = wl::runX86Microbench({x86::X86Platform::Server, 64});
    expectNearRel(double(r.hypercall), 1638, kTightTol, "hypercall");
    expectNearRel(double(r.trap), 821, kTightTol, "trap");
    expectNearRel(double(r.ioKernel), 3291, kTightTol, "io kernel");
    expectNearRel(double(r.ioUser), 12218, kTightTol, "io user");
    expectNearRel(double(r.ipi), 21177, kTightTol, "ipi");
    expectNearRel(double(r.eoiAck), 2305, kTightTol, "eoi+ack");
}

/** The paper's qualitative Table 3 claims, independent of calibration. */
TEST(Calibration, QualitativeClaims)
{
    wl::MicroResults arm = wl::runArmMicrobench({true, true, 64});
    wl::MicroResults arm_no = wl::runArmMicrobench({false, false, 64});
    wl::MicroResults lap =
        wl::runX86Microbench({x86::X86Platform::Laptop, 64});

    // "saving and restoring VGIC state ... accounts for over half of the
    // cost of a world switch on ARM"
    EXPECT_GT(arm.hypercall - arm_no.hypercall, arm.hypercall / 2);

    // "trapping to ARM's Hyp mode is potentially faster than trapping to
    // Intel's root mode" — by over an order of magnitude here.
    EXPECT_LT(arm.trap * 10, lap.trap);

    // "Despite its higher world switch cost, ARM is faster than x86" (IPI)
    EXPECT_GT(arm.hypercall, lap.hypercall);
    EXPECT_LT(arm.ipi, lap.ipi);

    // "the operation is roughly 5 times faster on ARM than x86" (EOI+ACK)
    EXPECT_NEAR(double(lap.eoiAck) / double(arm.eoiAck), 5.0, 1.5);

    // "ARM without VGIC/vtimers is significantly slower ... because
    // sending, EOIing and ACKing interrupts trap to the hypervisor"
    EXPECT_GT(arm_no.ipi, 2 * arm.ipi);
    EXPECT_GT(arm_no.eoiAck, 20 * arm.eoiAck);
}

} // namespace
} // namespace kvmarm
