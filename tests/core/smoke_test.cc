/**
 * @file
 * End-to-end smoke tests: boot the host, initialize KVM/ARM, create a VM
 * and drive it through the fundamental paths — hypercalls, Stage-2 faults,
 * sensitive-instruction emulation, WFI blocking, and state preservation
 * across world switches.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::GpReg;
using arm::Mode;
using core::Kvm;
using core::VCpu;
using core::Vm;

/** Fixture assembling machine + host + KVM on one CPU. */
class KvmSmokeTest : public ::testing::Test
{
  protected:
    KvmSmokeTest()
    {
        ArmMachine::Config mc;
        mc.numCpus = 2;
        mc.ramSize = 256 * kMiB;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
        kvm = std::make_unique<Kvm>(*hostk);
    }

    /** Boot + KVM init on cpu0, then run @p body there. */
    void
    runOnCpu0(const std::function<void(ArmCpu &)> &body)
    {
        machine->cpu(0).setEntry([this, body] {
            ArmCpu &cpu = machine->cpu(0);
            hostk->boot(0);
            ASSERT_TRUE(kvm->initCpu(cpu));
            body(cpu);
        });
        machine->run();
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
    std::unique_ptr<Kvm> kvm;
};

/** A minimal guest kernel for smoke testing. */
class StubGuestOs : public arm::OsVectors
{
  public:
    void irq(ArmCpu &cpu) override
    {
        ++irqs;
        // ACK + EOI through the (virtualized) GIC CPU interface.
        std::uint32_t iar = static_cast<std::uint32_t>(
            cpu.memRead(ArmMachine::kGiccBase + arm::gicc::IAR, 4));
        lastIrq = iar & 0x3FF;
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
    }
    void svc(ArmCpu &, std::uint32_t) override { ++syscalls; }
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "stub-guest"; }

    int irqs = 0;
    int syscalls = 0;
    IrqId lastIrq = 0;
};

TEST_F(KvmSmokeTest, HostBootsAndKvmInitializes)
{
    runOnCpu0([&](ArmCpu &cpu) {
        EXPECT_TRUE(kvm->enabled());
        EXPECT_EQ(cpu.mode(), Mode::Svc);
        EXPECT_FALSE(cpu.irqMasked());
        // Hyp stage-1 tables exist and are active.
        EXPECT_TRUE(cpu.hyp().hsctlrM);
        EXPECT_NE(cpu.hyp().httbr, 0u);
    });
}

TEST_F(KvmSmokeTest, KvmDisabledWithoutHypBoot)
{
    host::HostKernel::Config hc;
    hc.bootedInHyp = false;
    auto host2 = std::make_unique<host::HostKernel>(*machine, hc);
    auto kvm2 = std::make_unique<Kvm>(*host2);
    machine->cpu(0).setEntry([&] {
        host2->boot(0);
        EXPECT_FALSE(kvm2->initCpu(machine->cpu(0)));
        EXPECT_FALSE(kvm2->enabled());
    });
    machine->run();
}

TEST_F(KvmSmokeTest, GuestRunsAndHypercalls)
{
    StubGuestOs guest_os;
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest_os);

        Cycles before = cpu.now();
        vcpu.run(cpu, [&](ArmCpu &c) {
            EXPECT_EQ(c.mode(), Mode::Svc);
            EXPECT_TRUE(c.hyp().hcr.vm); // Stage-2 on while guest runs
            c.hvc(core::hvc::kTestHypercall);
            c.hvc(core::hvc::kTestHypercall);
        });

        EXPECT_EQ(cpu.mode(), Mode::Svc);
        EXPECT_FALSE(cpu.hyp().hcr.vm); // Stage-2 off back in the host
        EXPECT_GT(cpu.now(), before);
        EXPECT_EQ(vcpu.stats.counterValue("exit.hvc"), 2u);
        // Each hypercall = world switch out + in, plus the run's own pair.
        EXPECT_EQ(vcpu.stats.counterValue("worldswitch.out"), 3u);
        EXPECT_EQ(vcpu.stats.counterValue("worldswitch.in"), 3u);
    });
}

TEST_F(KvmSmokeTest, GuestMemoryFaultsInOnDemand)
{
    StubGuestOs guest_os;
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest_os);

        vcpu.run(cpu, [&](ArmCpu &c) {
            // Guest MMU off: VA == IPA. Touch three pages.
            c.memWrite(ArmMachine::kRamBase + 0x0000, 0xAB, 4);
            c.memWrite(ArmMachine::kRamBase + 0x5000, 0xCD, 4);
            EXPECT_EQ(c.memRead(ArmMachine::kRamBase + 0x0000, 4), 0xABu);
            EXPECT_EQ(c.memRead(ArmMachine::kRamBase + 0x5000, 4), 0xCDu);
        });

        EXPECT_EQ(vcpu.stats.counterValue("fault.stage2"), 2u);
        EXPECT_EQ(vm->stage2().mappedRamPages(), 2u);
    });
}

TEST_F(KvmSmokeTest, SensitiveInstructionsAreEmulated)
{
    StubGuestOs guest_os;
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest_os);
        vcpu.shadowActlr = 0x1234;

        vcpu.run(cpu, [&](ArmCpu &c) {
            // ACTLR reads return the VM's shadow, not the hardware value.
            EXPECT_EQ(c.sensitiveOp(arm::SensitiveOp::ActlrRead), 0x1234u);
            // Writes to the read-only shadow are swallowed.
            c.sensitiveOp(arm::SensitiveOp::ActlrWrite, 0xDEAD);
            EXPECT_EQ(c.sensitiveOp(arm::SensitiveOp::ActlrRead), 0x1234u);
            // L2CTLR reports the VM's core count (1), not the host's (2).
            std::uint32_t l2 = c.sensitiveOp(arm::SensitiveOp::L2ctlrRead);
            EXPECT_EQ(l2 >> 24, 0u);
            // CP14 debug state is per-VM shadow state.
            c.sensitiveOp(arm::SensitiveOp::Cp14Write, 0xBEEF);
            EXPECT_EQ(c.sensitiveOp(arm::SensitiveOp::Cp14Read), 0xBEEFu);
        });

        // The hardware ACTLR was never touched by the guest.
        EXPECT_EQ(cpu.actlr, 0x00000041u);
        EXPECT_EQ(vcpu.shadowCp14, 0xBEEFu);
        EXPECT_GE(vcpu.stats.counterValue("exit.cp15"), 4u);
        EXPECT_GE(vcpu.stats.counterValue("exit.cp14"), 2u);
    });
}

TEST_F(KvmSmokeTest, GuestStatePreservedAcrossWorldSwitches)
{
    StubGuestOs guest_os;
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest_os);

        // Plant sentinels in the host registers; they must survive the
        // guest residency.
        cpu.regs()[GpReg::R7] = 0x11112222;
        cpu.regs()[arm::CtrlReg::TPIDRPRW] = 0x33334444;

        vcpu.run(cpu, [&](ArmCpu &c) {
            // Guest sets its own values...
            c.regs()[GpReg::R7] = 0x55556666;
            c.writeCp15(arm::CtrlReg::TPIDRPRW, 0x77778888);
            // ...which must survive a trap to the hypervisor.
            c.hvc(core::hvc::kTestHypercall);
            EXPECT_EQ(c.regs()[GpReg::R7], 0x55556666u);
            EXPECT_EQ(c.readCp15(arm::CtrlReg::TPIDRPRW), 0x77778888u);
        });

        // Host state restored.
        EXPECT_EQ(cpu.regs()[GpReg::R7], 0x11112222u);
        EXPECT_EQ(cpu.regs()[arm::CtrlReg::TPIDRPRW], 0x33334444u);
        // Guest state captured in the VCPU context.
        EXPECT_EQ(vcpu.regs[GpReg::R7], 0x55556666u);
        EXPECT_EQ(vcpu.regs[arm::CtrlReg::TPIDRPRW], 0x77778888u);
    });
}

} // namespace
} // namespace kvmarm
