/**
 * @file
 * Unit tests for the Stage-2 table manager (get_user_pages integration,
 * device mappings, refcounted teardown) and the Hyp memory manager
 * (Hyp-format tables, same-VA mapping, walkability from the Hyp regime).
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/hyp_mem.hh"
#include "core/stage2_mmu.hh"
#include "host/mm.hh"

namespace kvmarm {
namespace {

using arm::ArmMachine;

class Stage2Test : public ::testing::Test
{
  protected:
    Stage2Test()
        : machine(ArmMachine::Config{.numCpus = 1,
                                     .ramSize = 64 * kMiB,
                                     .hwVgic = true,
                                     .hwVtimers = true,
                                     .clockHz = 1.7e9,
                                     .cost = {}}),
          mm(machine.ram())
    {
    }

    ArmMachine machine;
    host::Mm mm;
};

TEST_F(Stage2Test, RamFaultAllocatesAndMaps)
{
    core::Stage2Mmu s2(mm, 5, ArmMachine::kRamBase, 16 * kMiB);
    Addr ipa = ArmMachine::kRamBase + 0x3000;
    EXPECT_FALSE(s2.ipaToPa(ipa).has_value());
    EXPECT_TRUE(s2.handleRamFault(ipa));
    auto pa = s2.ipaToPa(ipa + 0x24);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa & 0xFFF, 0x24u);
    EXPECT_EQ(mm.refcount(*pa), 1u);
    EXPECT_EQ(s2.mappedRamPages(), 1u);
    // Idempotent on a racing second fault.
    EXPECT_TRUE(s2.handleRamFault(ipa));
    EXPECT_EQ(s2.mappedRamPages(), 1u);
}

TEST_F(Stage2Test, NonRamIpaIsMmio)
{
    core::Stage2Mmu s2(mm, 5, ArmMachine::kRamBase, 16 * kMiB);
    EXPECT_FALSE(s2.handleRamFault(ArmMachine::kGicdBase));
    EXPECT_FALSE(
        s2.handleRamFault(ArmMachine::kRamBase + 16 * kMiB)); // past end
    EXPECT_TRUE(s2.isGuestRam(ArmMachine::kRamBase));
    EXPECT_FALSE(s2.isGuestRam(ArmMachine::kRamBase + 16 * kMiB));
}

TEST_F(Stage2Test, VttbrEncodesVmid)
{
    core::Stage2Mmu s2(mm, 7, ArmMachine::kRamBase, kMiB);
    EXPECT_EQ((s2.vttbr() >> 48) & 0xFF, 7u);
    EXPECT_NE(s2.vttbr() & arm::desc::kAddrMask, 0u);
}

TEST_F(Stage2Test, UnmapReleasesBacking)
{
    core::Stage2Mmu s2(mm, 5, ArmMachine::kRamBase, kMiB);
    Addr ipa = ArmMachine::kRamBase;
    s2.handleRamFault(ipa);
    Addr pa = pageAlignDown(*s2.ipaToPa(ipa));
    EXPECT_TRUE(s2.unmapPage(ipa));
    EXPECT_EQ(mm.refcount(pa), 0u);
    EXPECT_FALSE(s2.ipaToPa(ipa).has_value());
    EXPECT_FALSE(s2.unmapPage(ipa));
}

TEST_F(Stage2Test, ReleaseAllReturnsTables)
{
    std::size_t free_before = mm.freePages();
    {
        core::Stage2Mmu s2(mm, 5, ArmMachine::kRamBase, kMiB);
        for (Addr off = 0; off < 16 * kPageSize; off += kPageSize)
            s2.handleRamFault(ArmMachine::kRamBase + off);
        EXPECT_LT(mm.freePages(), free_before - 16); // + table pages
    }
    EXPECT_EQ(mm.freePages(), free_before);
}

TEST_F(Stage2Test, HypMemMapsAtSameAddresses)
{
    core::HypMem hyp(machine, mm);
    hyp.build();
    hyp.build(); // idempotent
    arm::ArmCpu &cpu = machine.cpu(0);
    // Per-CPU Hyp enablement touches HTTBR/HSCTLR, so it runs in Hyp mode
    // (the real path gets there via the kInitCpu hypercall).
    cpu.setMode(arm::Mode::Hyp);
    hyp.enableOnCpu(cpu);
    cpu.setMode(arm::Mode::Svc);
    EXPECT_TRUE(cpu.hyp().hsctlrM);

    // Hyp VAs == kernel VAs for shared data (paper §3.1): a RAM address
    // translates to itself in the Hyp regime.
    machine.cpu(0).setEntry([&] {
        auto r = cpu.mmu().translate(ArmMachine::kRamBase + 0x123,
                                     arm::Access::Read, arm::Mode::Hyp);
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(r.pa, ArmMachine::kRamBase + 0x123);
        // And the GICH interface the world switch programs is reachable.
        auto g = cpu.mmu().translate(ArmMachine::kGichBase,
                                     arm::Access::Write, arm::Mode::Hyp);
        ASSERT_TRUE(g.ok);
        EXPECT_TRUE(g.device);
    });
    machine.run();
}

} // namespace
} // namespace kvmarm
