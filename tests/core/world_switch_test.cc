/**
 * @file
 * World switch tests: full-state preservation (property test over random
 * register values), VGIC shadow movement, timer handoff, lazy FPU.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "sim/random.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::GpReg;
using arm::Mode;

class NullGuestOs : public arm::OsVectors
{
  public:
    void irq(ArmCpu &) override {}
    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "null-guest"; }
};

class WorldSwitchTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    WorldSwitchTest()
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 128 * kMiB;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
        kvm = std::make_unique<core::Kvm>(*hostk);
    }

    void
    runOnCpu0(const std::function<void(ArmCpu &)> &body)
    {
        machine->cpu(0).setEntry([this, body] {
            hostk->boot(0);
            ASSERT_TRUE(kvm->initCpu(machine->cpu(0)));
            body(machine->cpu(0));
        });
        machine->run();
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
    std::unique_ptr<core::Kvm> kvm;
    NullGuestOs guestOs;
};

/** Property: for any register values, host and guest state both survive
 *  a residency with multiple switches (seeded sweep). */
TEST_P(WorldSwitchTest, RandomStateSurvivesResidency)
{
    Rng rng(GetParam() * 7919 + 13);
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guestOs);

        // Random host state.
        arm::RegisterFile host_regs;
        for (auto &r : host_regs.gp)
            r = static_cast<std::uint32_t>(rng.next());
        for (auto &r : host_regs.vfp)
            r = rng.next();
        host_regs.ctrl = cpu.regs().ctrl; // keep live MMU state
        cpu.regs().gp = host_regs.gp;
        cpu.regs().vfp = host_regs.vfp;

        // Random guest state, set through the ONE_REG-style interface.
        arm::RegisterFile guest_regs = vcpu.regs;
        for (auto &r : guest_regs.gp)
            r = static_cast<std::uint32_t>(rng.next());
        vcpu.regs.gp = guest_regs.gp;

        // ELR_hyp is legitimately banked by every trap (the hardware
        // writes the preferred return address), so it is excluded from
        // the invariance check.
        auto same_except_elr = [](const auto &a, const auto &b) {
            for (unsigned i = 0; i < arm::kNumGpRegs; ++i) {
                if (i == unsigned(GpReg::ElrHyp))
                    continue;
                if (a[i] != b[i])
                    return false;
            }
            return true;
        };

        vcpu.run(cpu, [&](ArmCpu &c) {
            EXPECT_TRUE(same_except_elr(c.regs().gp, guest_regs.gp));
            c.hvc(core::hvc::kTestHypercall); // extra switch pair
            EXPECT_TRUE(same_except_elr(c.regs().gp, guest_regs.gp));
        });

        EXPECT_TRUE(same_except_elr(cpu.regs().gp, host_regs.gp));
        EXPECT_EQ(cpu.regs().vfp, host_regs.vfp);
        EXPECT_TRUE(same_except_elr(vcpu.regs.gp, guest_regs.gp));
    });
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSwitchTest,
                         ::testing::Range(0u, 8u));

TEST_F(WorldSwitchTest, TrapConfigurationAppliesOnlyInGuest)
{
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guestOs);

        EXPECT_FALSE(cpu.hyp().hcr.twi);
        vcpu.run(cpu, [&](ArmCpu &c) {
            EXPECT_TRUE(c.hyp().hcr.twi);
            EXPECT_TRUE(c.hyp().hcr.tsc);
            EXPECT_TRUE(c.hyp().hcr.imo);
            EXPECT_TRUE(c.hyp().hcr.vm);
            EXPECT_FALSE(c.hyp().pl1PhysTimerAccess);
        });
        EXPECT_FALSE(cpu.hyp().hcr.twi);
        EXPECT_FALSE(cpu.hyp().hcr.vm);
        EXPECT_TRUE(cpu.hyp().pl1PhysTimerAccess);
    });
}

TEST_F(WorldSwitchTest, GuestModePreservedAcrossExits)
{
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guestOs);
        vcpu.guestIrqMasked = true;

        vcpu.run(cpu, [&](ArmCpu &c) {
            EXPECT_EQ(c.mode(), Mode::Svc);
            EXPECT_TRUE(c.irqMasked());
            c.hvc(core::hvc::kTestHypercall);
            EXPECT_EQ(c.mode(), Mode::Svc);
            EXPECT_TRUE(c.irqMasked());
            c.setIrqMasked(false);
            c.hvc(core::hvc::kTestHypercall);
            EXPECT_FALSE(c.irqMasked());
        });
        EXPECT_FALSE(cpu.irqMasked()); // host was unmasked
    });
}

TEST_F(WorldSwitchTest, LazyFpuPreservesBothFpFiles)
{
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guestOs);
        vcpu.regs.vfp[5] = 0xAAAA5555AAAA5555ull;
        cpu.regs().vfp[5] = 0x1234123412341234ull;

        vcpu.run(cpu, [&](ArmCpu &c) {
            // Until the guest uses FP, the hardware still holds host FP.
            EXPECT_EQ(c.regs().vfp[5], 0x1234123412341234ull);
            EXPECT_EQ(vcpu.stats.counterValue("exit.fp"), 0u);
            c.fpOp(100); // HCPTR trap: lowvisor switches FP in Hyp mode
            EXPECT_EQ(c.regs().vfp[5], 0xAAAA5555AAAA5555ull);
            EXPECT_EQ(vcpu.stats.counterValue("exit.fp"), 1u);
            c.regs().vfp[5] = 0xBBBB0000BBBB0000ull; // guest modifies
            c.fpOp(100); // no second trap
            EXPECT_EQ(vcpu.stats.counterValue("exit.fp"), 1u);
        });
        // Host FP restored; guest's modification captured.
        EXPECT_EQ(cpu.regs().vfp[5], 0x1234123412341234ull);
        EXPECT_EQ(vcpu.regs.vfp[5], 0xBBBB0000BBBB0000ull);
    });
}

TEST_F(WorldSwitchTest, VgicShadowMovesThroughHardware)
{
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guestOs);

        vcpu.run(cpu, [&](ArmCpu &c) {
            // The virtual interface is live while the guest runs.
            EXPECT_TRUE(machine->gich().bank(0).en);
            // Enable the VM view through GICV (the stage-2-mapped GICC).
            c.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
            c.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
            c.hvc(core::hvc::kTestHypercall);
            // Still enabled after the round trip (captured + restored).
            EXPECT_TRUE(machine->gich().bank(0).vmEnabled);
        });
        // Back in the host: the virtual interface is off.
        EXPECT_FALSE(machine->gich().bank(0).en);
        // But the VM's configuration is preserved in the shadow.
        EXPECT_TRUE(vcpu.vgicShadow.vmEnabled);
    });
}

TEST_F(WorldSwitchTest, GuestTimerDoesNotFireForHost)
{
    runOnCpu0([&](ArmCpu &cpu) {
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guestOs);

        vcpu.run(cpu, [&](ArmCpu &c) {
            arm::TimerRegs t;
            t.enable = true;
            t.cval = c.readCntvct() + 1000000;
            c.writeVirtTimer(t);
        });
        // After the switch out the hardware virtual timer is disabled;
        // the guest's programmed deadline lives in the shadow.
        EXPECT_FALSE(machine->timer().virt(0).enable);
        EXPECT_TRUE(vcpu.vtimerShadow.enable);
    });
}

} // namespace
} // namespace kvmarm
