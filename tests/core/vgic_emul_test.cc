/**
 * @file
 * Virtual distributor tests (paper §3.5): guest configuration via trapped
 * MMIO, virtual IPIs between VCPUs, list-register flush/sync across world
 * switches, LR overflow via the maintenance mechanism, user-space
 * injection (KVM_IRQ_LINE), and WFI wakeups.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

/** Guest kernel counting interrupts per id. */
class CountingGuest : public arm::OsVectors
{
  public:
    void
    irq(ArmCpu &cpu) override
    {
        std::uint32_t iar = static_cast<std::uint32_t>(cpu.memRead(
            ArmMachine::kGiccBase + arm::gicc::IAR, 4));
        IrqId id = iar & 0x3FF;
        if (id != arm::kSpuriousIrq) {
            ++received[id];
            if (id < arm::kNumSgis)
                lastSgiSource = (iar >> 10) & 0x7;
            cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
        }
    }
    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "counting-guest"; }

    void
    boot(ArmCpu &cpu)
    {
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER, 0xFFFF);
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER + 4,
                     0xFFFFFFFF);
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
        cpu.setIrqMasked(false);
    }

    std::map<IrqId, int> received;
    unsigned lastSgiSource = 99;
};

class VgicEmulTest : public ::testing::Test
{
  protected:
    VgicEmulTest()
    {
        ArmMachine::Config mc;
        mc.numCpus = 2;
        mc.ramSize = 256 * kMiB;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
        kvm = std::make_unique<core::Kvm>(*hostk);
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
    std::unique_ptr<core::Kvm> kvm;
    CountingGuest guest0, guest1;
};

TEST_F(VgicEmulTest, TrappedDistributorConfigRoundTrips)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        kvm->initCpu(cpu);
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest0);
        vcpu.run(cpu, [&](ArmCpu &c) {
            guest0.boot(c);
            // Priorities and reads go through the emulated distributor.
            c.memWrite(ArmMachine::kGicdBase + arm::gicd::IPRIORITYR + 50,
                       0x30);
            EXPECT_EQ(c.memRead(ArmMachine::kGicdBase +
                                    arm::gicd::IPRIORITYR + 50,
                                4),
                      0x30u);
            EXPECT_EQ(c.memRead(ArmMachine::kGicdBase + arm::gicd::CTLR, 4),
                      1u);
        });
        EXPECT_GE(vcpu.stats.counterValue("mmio.vdist"), 5u);
    });
    machine->run();
}

TEST_F(VgicEmulTest, UserSpaceInjectionDeliversSpi)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        kvm->initCpu(cpu);
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest0);
        vcpu.run(cpu, [&](ArmCpu &c) {
            guest0.boot(c);
            // KVM_IRQ_LINE from "user space" (host context here).
            vm->irqLine(c, 60);
            // Delivery happens at the next world switch in; force one.
            c.hvc(core::hvc::kTestHypercall);
            c.compute(10);
            EXPECT_EQ(guest0.received[60], 1);
        });
    });
    machine->run();
}

TEST_F(VgicEmulTest, LrOverflowDeliversEverything)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        kvm->initCpu(cpu);
        auto vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest0);
        vcpu.run(cpu, [&](ArmCpu &c) {
            guest0.boot(c);
            // Inject more SPIs than there are list registers (4).
            for (IrqId irq = 48; irq < 48 + 7; ++irq)
                vm->irqLine(c, irq);
            c.hvc(core::hvc::kTestHypercall);
            // Handlers EOI; the maintenance path refills until drained.
            for (int spin = 0; spin < 16; ++spin)
                c.compute(500);
            int total = 0;
            for (IrqId irq = 48; irq < 48 + 7; ++irq)
                total += guest0.received[irq];
            EXPECT_EQ(total, 7);
        });
    });
    machine->run();
}

TEST_F(VgicEmulTest, VirtualIpiCrossVcpu)
{
    std::unique_ptr<core::Vm> vm;
    bool peer_ready = false, done = false;

    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        kvm->initCpu(cpu);
        vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu0 = vm->addVcpu(0);
        vm->addVcpu(1);
        vcpu0.setGuestOs(&guest0);
        vcpu0.run(cpu, [&](ArmCpu &c) {
            guest0.boot(c);
            while (!peer_ready)
                c.compute(200);
            // Virtual SGI 9 to VCPU1 through the trapped distributor.
            c.memWrite(ArmMachine::kGicdBase + arm::gicd::SGIR,
                       (1u << 17) | 9);
            while (guest1.received[9] < 1)
                c.compute(200);
            done = true;
        });
    });
    machine->cpu(1).setEntry([&] {
        ArmCpu &cpu = machine->cpu(1);
        hostk->boot(1);
        kvm->initCpu(cpu);
        while (!vm || vm->vcpus().size() < 2)
            cpu.compute(300);
        core::VCpu &vcpu1 = *vm->vcpus()[1];
        vcpu1.setGuestOs(&guest1);
        vcpu1.run(cpu, [&](ArmCpu &c) {
            guest1.boot(c);
            peer_ready = true;
            while (!done)
                c.compute(150);
        });
    });
    machine->run();
    EXPECT_EQ(guest1.received[9], 1);
    EXPECT_EQ(guest1.lastSgiSource, 0u); // sender was vcpu0
}

TEST_F(VgicEmulTest, InjectionWakesWfiBlockedVcpu)
{
    std::unique_ptr<core::Vm> vm;
    bool peer_in_wfi_phase = false, done = false;

    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        kvm->initCpu(cpu);
        vm = kvm->createVm(32 * kMiB);
        core::VCpu &vcpu0 = vm->addVcpu(0);
        vm->addVcpu(1);
        vcpu0.setGuestOs(&guest0);
        vcpu0.run(cpu, [&](ArmCpu &c) {
            guest0.boot(c);
            while (!peer_in_wfi_phase)
                c.compute(300);
            c.compute(5000); // let the peer actually block
            c.memWrite(ArmMachine::kGicdBase + arm::gicd::SGIR,
                       (1u << 17) | 2);
            while (guest1.received[2] < 1)
                c.compute(300);
            done = true;
        });
    });
    machine->cpu(1).setEntry([&] {
        ArmCpu &cpu = machine->cpu(1);
        hostk->boot(1);
        kvm->initCpu(cpu);
        while (!vm || vm->vcpus().size() < 2)
            cpu.compute(300);
        core::VCpu &vcpu1 = *vm->vcpus()[1];
        vcpu1.setGuestOs(&guest1);
        vcpu1.run(cpu, [&](ArmCpu &c) {
            guest1.boot(c);
            peer_in_wfi_phase = true;
            while (guest1.received[2] < 1) {
                c.wfi(); // trapped; KVM blocks the VCPU until wakeup
                c.compute(10);
            }
            while (!done)
                c.compute(300);
        });
    });
    machine->run();
    EXPECT_GE(guest1.received[2], 1);
    // The WFI really was emulated by blocking.
    EXPECT_GE(vm->vcpus()[1]->stats.counterValue("emul.wfi"), 1u);
}

} // namespace
} // namespace kvmarm
