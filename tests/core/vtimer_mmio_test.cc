/**
 * @file
 * Virtual timer (paper §3.6) and MMIO path (paper §3.4/§4) tests: direct
 * guest timer programming, software-timer multiplexing while descheduled,
 * hardware-fire injection, MMIO decode fallback, in-kernel devices, and
 * the no-VGIC/vtimers configuration.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

class TimerGuest : public arm::OsVectors
{
  public:
    void
    irq(ArmCpu &cpu) override
    {
        std::uint32_t iar = static_cast<std::uint32_t>(cpu.memRead(
            ArmMachine::kGiccBase + arm::gicc::IAR, 4));
        if ((iar & 0x3FF) == arm::kVirtTimerPpi) {
            ++timerIrqs;
            arm::TimerRegs off;
            cpu.writeVirtTimer(off); // oneshot
        }
        if ((iar & 0x3FF) != arm::kSpuriousIrq)
            cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
    }
    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "timer-guest"; }

    void
    boot(ArmCpu &cpu)
    {
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);
        cpu.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER,
                     0xFFFF | (1u << arm::kVirtTimerPpi));
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
        cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
        cpu.setIrqMasked(false);
    }

    int timerIrqs = 0;
};

class VtimerMmioTest : public ::testing::Test
{
  protected:
    void
    build(bool vgic_vtimers)
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 128 * kMiB;
        mc.hwVgic = vgic_vtimers;
        mc.hwVtimers = vgic_vtimers;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
        core::KvmConfig kc;
        kc.useVgic = vgic_vtimers;
        kc.useVtimers = vgic_vtimers;
        kvm = std::make_unique<core::Kvm>(*hostk, kc);
    }

    void
    runGuest(const std::function<void(ArmCpu &, core::Vm &)> &body)
    {
        machine->cpu(0).setEntry([&, body] {
            ArmCpu &cpu = machine->cpu(0);
            hostk->boot(0);
            ASSERT_TRUE(kvm->initCpu(cpu));
            vm = kvm->createVm(32 * kMiB);
            core::VCpu &vcpu = vm->addVcpu(0);
            vcpu.setGuestOs(&guest);
            vcpu.run(cpu,
                     [&](ArmCpu &c) { body(c, *vm); });
        });
        machine->run();
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
    std::unique_ptr<core::Kvm> kvm;
    std::unique_ptr<core::Vm> vm;
    TimerGuest guest;
};

TEST_F(VtimerMmioTest, GuestTimerFiresWhileRunning)
{
    build(true);
    runGuest([&](ArmCpu &c, core::Vm &) {
        guest.boot(c);
        arm::TimerRegs t;
        t.enable = true;
        t.cval = c.readCntvct() + 20000;
        c.writeVirtTimer(t); // direct, no trap (paper §3.6)
        auto exits_before = vm->vcpus()[0]->stats.counterValue("exit.timer");
        EXPECT_EQ(exits_before, 0u);
        c.compute(60000);
        EXPECT_EQ(guest.timerIrqs, 1);
    });
}

TEST_F(VtimerMmioTest, DescheduledTimerFiresViaSoftTimer)
{
    build(true);
    runGuest([&](ArmCpu &c, core::Vm &) {
        guest.boot(c);
        arm::TimerRegs t;
        t.enable = true;
        t.cval = c.readCntvct() + 30000;
        c.writeVirtTimer(t);
        // WFI: the VCPU is descheduled with the timer unexpired; KVM
        // programs a host software timer and injects on expiry.
        c.wfi();
        c.compute(10); // delivery point after the ERET
        EXPECT_EQ(guest.timerIrqs, 1);
    });
    EXPECT_GE(vm->vcpus()[0]->stats.counterValue("emul.wfi"), 1u);
}

TEST_F(VtimerMmioTest, NoVtimersTimerAccessesTrapToUserspace)
{
    build(false);
    runGuest([&](ArmCpu &c, core::Vm &) {
        guest.boot(c);
        auto &stats = vm->vcpus()[0]->stats;
        std::uint64_t before = stats.counterValue("vtimer.trapped");
        (void)c.readCntvct(); // traps: emulated in user space
        EXPECT_EQ(stats.counterValue("vtimer.trapped"), before + 1);

        arm::TimerRegs t;
        t.enable = true;
        t.cval = c.readCntvct() + 30000;
        c.writeVirtTimer(t); // traps; QEMU arms a host timer
        c.compute(80000);
        EXPECT_EQ(guest.timerIrqs, 1); // delivered via HCR.VI injection
    });
}

TEST_F(VtimerMmioTest, InKernelDeviceAvoidsUserspace)
{
    build(true);
    runGuest([&](ArmCpu &c, core::Vm &vmref) {
        std::uint64_t dev_value = 0;
        vmref.addKernelDevice(
            core::Vm::kKernelTestDevBase, 0x1000,
            [&](bool is_write, Addr off, std::uint64_t v,
                unsigned) -> std::uint64_t {
                if (is_write)
                    dev_value = v + off;
                return dev_value;
            });
        c.memWrite(core::Vm::kKernelTestDevBase + 8, 34, 4);
        EXPECT_EQ(c.memRead(core::Vm::kKernelTestDevBase, 4), 42u);
        auto &stats = vm->vcpus()[0]->stats;
        EXPECT_EQ(stats.counterValue("mmio.kernel"), 2u);
        EXPECT_EQ(stats.counterValue("mmio.user"), 0u);
    });
}

TEST_F(VtimerMmioTest, MmioWithoutSyndromeIsDecoded)
{
    build(true);
    runGuest([&](ArmCpu &c, core::Vm &vmref) {
        bool wrote = false;
        vmref.addKernelDevice(core::Vm::kKernelTestDevBase, 0x1000,
                              [&](bool w, Addr, std::uint64_t,
                                  unsigned) -> std::uint64_t {
                                  wrote |= w;
                                  return 0;
                              });
        // isv=false models the old-style instructions that do not
        // populate the syndrome: KVM decodes from memory (paper §4).
        c.memWrite(core::Vm::kKernelTestDevBase, 7, 4, /*isv=*/false);
        EXPECT_TRUE(wrote);
        EXPECT_EQ(vm->vcpus()[0]->stats.counterValue("mmio.decoded"), 1u);
    });
}

TEST_F(VtimerMmioTest, UnbackedMmioGoesToUserspace)
{
    build(true);
    runGuest([&](ArmCpu &c, core::Vm &vmref) {
        core::MmioExit seen;
        vmref.setUserMmioHandler(
            [&](ArmCpu &, core::VCpu &, core::MmioExit &exit) {
                seen = exit;
                exit.handled = true;
                exit.data = 0x77;
            });
        std::uint64_t v = c.memRead(0x0C000010, 4);
        EXPECT_EQ(v, 0x77u);
        EXPECT_EQ(seen.ipa, 0x0C000010u);
        EXPECT_FALSE(seen.isWrite);
    });
}

TEST_F(VtimerMmioTest, PsciSystemOffStopsAllVcpus)
{
    build(true);
    runGuest([&](ArmCpu &c, core::Vm &) {
        c.hvc(core::hvc::kPsciOff);
        EXPECT_TRUE(vm->vcpus()[0]->stopRequested);
    });
}

} // namespace
} // namespace kvmarm
