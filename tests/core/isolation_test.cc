/**
 * @file
 * Isolation property tests (paper §3.3: "a VM cannot access memory
 * belonging to the hypervisor or other VMs, including any sensitive
 * data"): random guest accesses only ever reach pages the Stage-2 tables
 * granted to that VM; two VMs never share a backing frame; the VM's view
 * of the GIC never exposes the hypervisor control interface.
 */

#include <gtest/gtest.h>

#include <set>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "sim/random.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

class NullGuestOs : public arm::OsVectors
{
  public:
    void irq(ArmCpu &) override {}
    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "null-guest"; }
};

class IsolationTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    IsolationTest()
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 256 * kMiB;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
        kvm = std::make_unique<core::Kvm>(*hostk);
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
    std::unique_ptr<core::Kvm> kvm;
    NullGuestOs guestOs;
};

/** Property: every Stage-2 translation a VM can obtain resolves to a
 *  frame the host allocator handed to THAT VM. */
TEST_P(IsolationTest, RandomAccessesStayInOwnFrames)
{
    Rng rng(GetParam() * 104729 + 7);
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        ASSERT_TRUE(kvm->initCpu(cpu));

        auto vm_a = kvm->createVm(16 * kMiB);
        auto vm_b = kvm->createVm(16 * kMiB);
        core::VCpu &vcpu_a = vm_a->addVcpu(0);
        core::VCpu &vcpu_b = vm_b->addVcpu(0);
        vcpu_a.setGuestOs(&guestOs);
        vcpu_b.setGuestOs(&guestOs);

        // Plant a secret in a host-owned page.
        Addr secret_page = hostk->mm().allocPage();
        machine->ram().write(secret_page, 0x5EC12E7, 8);

        // VM A writes a tag to many random pages of its RAM.
        vcpu_a.run(cpu, [&](ArmCpu &c) {
            for (int i = 0; i < 48; ++i) {
                Addr ipa = ArmMachine::kRamBase +
                           pageAlignDown(rng.range(16 * kMiB));
                c.memWrite(ipa, 0xAAAA0000 + i, 8);
            }
        });

        // Every frame VM A obtained is exclusive: refcounted to VM A and
        // distinct from the secret page.
        std::set<Addr> a_frames;
        for (Addr off = 0; off < 16 * kMiB; off += kPageSize) {
            if (auto pa = vm_a->stage2().ipaToPa(ArmMachine::kRamBase + off))
                a_frames.insert(pageAlignDown(*pa));
        }
        EXPECT_FALSE(a_frames.count(secret_page));

        // VM B reads the same random IPAs: it must see zeroed pages (its
        // own fresh frames), never VM A's tags or the secret.
        vcpu_b.run(cpu, [&](ArmCpu &c) {
            Rng rng2(GetParam() * 104729 + 7);
            for (int i = 0; i < 48; ++i) {
                Addr ipa = ArmMachine::kRamBase +
                           pageAlignDown(rng2.range(16 * kMiB));
                std::uint64_t v = c.memRead(ipa, 8);
                EXPECT_EQ(v, 0u) << "VM B observed foreign data";
            }
        });

        for (Addr off = 0; off < 16 * kMiB; off += kPageSize) {
            if (auto pa =
                    vm_b->stage2().ipaToPa(ArmMachine::kRamBase + off)) {
                EXPECT_FALSE(a_frames.count(pageAlignDown(*pa)))
                    << "VMs share a backing frame";
            }
        }
    });
    machine->run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolationTest, ::testing::Range(0u, 6u));

TEST_F(IsolationTest, GichIsInvisibleToTheVm)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        ASSERT_TRUE(kvm->initCpu(cpu));
        auto vm = kvm->createVm(16 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guestOs);

        vcpu.run(cpu, [&](ArmCpu &c) {
            // Writing the hyp control interface from the VM must NOT
            // reach the hardware: the access faults and goes to user
            // space, which doesn't model that region.
            c.memWrite(ArmMachine::kGichBase + arm::gich::HCR, 0, 4);
            EXPECT_TRUE(machine->gich().bank(0).en)
                << "VM disabled the hypervisor's GICH!";
            // The GICC address, in contrast, reaches GICV transparently.
            c.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1, 4);
            EXPECT_TRUE(machine->gich().bank(0).vmEnabled);
        });
        EXPECT_GE(vcpu.stats.counterValue("mmio.user"), 1u);
    });
    machine->run();
}

TEST_F(IsolationTest, TeardownReturnsEveryFrame)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hostk->boot(0);
        ASSERT_TRUE(kvm->initCpu(cpu));
        std::size_t free_before = hostk->mm().freePages();
        {
            auto vm = kvm->createVm(16 * kMiB);
            core::VCpu &vcpu = vm->addVcpu(0);
            vcpu.setGuestOs(&guestOs);
            vcpu.run(cpu, [&](ArmCpu &c) {
                for (Addr off = 0; off < 32 * kPageSize; off += kPageSize)
                    c.memWrite(ArmMachine::kRamBase + off, 1, 8);
            });
            EXPECT_LT(hostk->mm().freePages(), free_before);
        }
        EXPECT_EQ(hostk->mm().freePages(), free_before);
    });
    machine->run();
}

} // namespace
} // namespace kvmarm
