/** @file Bare-metal Hyp-resident hypervisor tests (the ablation baseline). */

#include <gtest/gtest.h>

#include "baremetal/baremetal_hv.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::Mode;

class NullOs : public arm::OsVectors
{
  public:
    void irq(ArmCpu &) override {}
    void svc(ArmCpu &, std::uint32_t) override {}
    bool pageFault(ArmCpu &, Addr, bool, bool) override { return false; }
    const char *name() const override { return "bm-guest"; }
};

class BareMetalTest : public ::testing::Test
{
  protected:
    BareMetalTest()
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 256 * kMiB;
        machine = std::make_unique<ArmMachine>(mc);
        hv = std::make_unique<baremetal::BareMetalHv>(*machine);
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<baremetal::BareMetalHv> hv;
    NullOs guestOs;
};

TEST_F(BareMetalTest, GuestRunsUnderStaticStage2)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hv->boot(cpu);
        hv->createGuest(8 * kMiB);
        hv->runGuest(cpu, [&](ArmCpu &c) {
            EXPECT_EQ(c.mode(), Mode::Svc);
            EXPECT_TRUE(c.hyp().hcr.vm);
            // Static allocation: memory never Stage-2 faults.
            c.memWrite(ArmMachine::kRamBase + 0x1000, 0x42, 8);
            EXPECT_EQ(c.memRead(ArmMachine::kRamBase + 0x1000, 8), 0x42u);
        }, &guestOs);
        EXPECT_EQ(cpu.mode(), Mode::Hyp);
        EXPECT_FALSE(cpu.hyp().hcr.vm);
    });
    machine->run();
}

TEST_F(BareMetalTest, HypercallNeedsNoWorldSwitch)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hv->boot(cpu);
        hv->createGuest(8 * kMiB);
        hv->runGuest(cpu, [&](ArmCpu &c) {
            Cycles t0 = c.now();
            c.hvc(baremetal::bmhvc::kTestHypercall);
            Cycles cost = c.now() - t0;
            // Orders of magnitude below KVM/ARM's ~5.3k world switch.
            EXPECT_LT(cost, 600u);
        }, &guestOs);
        EXPECT_EQ(hv->stats.counterValue("bm.hypercall"), 1u);
    });
    machine->run();
}

TEST_F(BareMetalTest, InHypervisorDeviceEmulation)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hv->boot(cpu);
        hv->createGuest(8 * kMiB);
        hv->runGuest(cpu, [&](ArmCpu &c) {
            c.memWrite(baremetal::BareMetalHv::kHypDevBase, 7, 4);
        }, &guestOs);
        EXPECT_EQ(hv->stats.counterValue("bm.iodev"), 1u);
    });
    machine->run();
}

TEST_F(BareMetalTest, GuestMemoryIsThePartition)
{
    machine->cpu(0).setEntry([&] {
        ArmCpu &cpu = machine->cpu(0);
        hv->boot(cpu);
        hv->createGuest(4 * kMiB);
        hv->runGuest(cpu, [&](ArmCpu &c) {
            c.memWrite(ArmMachine::kRamBase, 0xAB, 8);
        }, &guestOs);
        // IPA 0 of the guest is the static partition base (+64 MiB).
        EXPECT_EQ(machine->ram().read(ArmMachine::kRamBase + 64 * kMiB, 8),
                  0xABu);
    });
    machine->run();
}

} // namespace
} // namespace kvmarm
