/**
 * @file
 * KVM x86 hypervisor tests: run loop, EPT faulting, in-kernel APIC
 * emulation (EOI/ICR/timer), HLT blocking and event injection — the
 * comparison baseline's behaviors.
 */

#include <gtest/gtest.h>

#include "kvmx86/kvm_x86.hh"

namespace kvmarm {
namespace {

using kvmx86::KvmX86;
using kvmx86::VCpuX86;
using kvmx86::VmX86;
using kvmx86::X86Host;
using x86::X86Cpu;
using x86::X86Machine;

class CountingGuestX86 : public x86::X86OsVectors
{
  public:
    void
    interrupt(X86Cpu &cpu, std::uint8_t vec) override
    {
        ++received[vec];
        cpu.memWrite(x86::kApicBase + x86::apic::EOI, 0, 4);
    }
    void syscall(X86Cpu &, std::uint32_t) override {}
    const char *name() const override { return "guest-x86"; }

    std::map<std::uint8_t, int> received;
};

class KvmX86Test : public ::testing::Test
{
  protected:
    KvmX86Test()
    {
        X86Machine::Config mc;
        mc.numCpus = 2;
        mc.ramSize = 128 * kMiB;
        machine = std::make_unique<X86Machine>(mc);
        hostx = std::make_unique<X86Host>(*machine);
        kvm = std::make_unique<KvmX86>(*hostx);
    }

    void
    runOnCpu0(const std::function<void(X86Cpu &)> &body)
    {
        machine->cpu(0).setEntry([this, body] {
            hostx->boot(0);
            kvm->initCpu(machine->cpu(0));
            body(machine->cpu(0));
        });
        machine->run();
    }

    std::unique_ptr<X86Machine> machine;
    std::unique_ptr<X86Host> hostx;
    std::unique_ptr<KvmX86> kvm;
    CountingGuestX86 guest;
};

TEST_F(KvmX86Test, GuestRunsAndHypercalls)
{
    runOnCpu0([&](X86Cpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpuX86 &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest);
        vcpu.run(cpu, [&](X86Cpu &c) {
            EXPECT_TRUE(c.nonRoot());
            c.vmcall(kvmx86::vmcallnr::kTestHypercall);
        });
        EXPECT_FALSE(cpu.nonRoot());
        EXPECT_EQ(vcpu.stats.counterValue("exit.vmcall"), 2u); // +stop
    });
}

TEST_F(KvmX86Test, EptFaultsPopulateMemory)
{
    runOnCpu0([&](X86Cpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpuX86 &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest);
        vcpu.run(cpu, [&](X86Cpu &c) {
            c.memWrite(0x5000, 0xAB, 8);
            EXPECT_EQ(c.memRead(0x5000, 8), 0xABu);
        });
        EXPECT_EQ(vcpu.stats.counterValue("fault.ept"), 1u);
        EXPECT_EQ(vm->mappedPages(), 1u);
    });
}

TEST_F(KvmX86Test, GuestStateSurvivesResidency)
{
    runOnCpu0([&](X86Cpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpuX86 &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest);
        cpu.regs()[x86::Gpr::RBX] = 0x1234;
        vcpu.regs[x86::Gpr::RBX] = 0x5678;

        vcpu.run(cpu, [&](X86Cpu &c) {
            EXPECT_EQ(c.regs()[x86::Gpr::RBX], 0x5678u);
            c.regs()[x86::Gpr::RBX] = 0x9ABC;
            c.vmcall(kvmx86::vmcallnr::kTestHypercall);
            EXPECT_EQ(c.regs()[x86::Gpr::RBX], 0x9ABCu);
        });
        EXPECT_EQ(cpu.regs()[x86::Gpr::RBX], 0x1234u);
        EXPECT_EQ(vcpu.regs[x86::Gpr::RBX], 0x9ABCu);
    });
}

TEST_F(KvmX86Test, EoiTrapsAndIsEmulated)
{
    runOnCpu0([&](X86Cpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpuX86 &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest);
        vcpu.run(cpu, [&](X86Cpu &c) {
            c.setIf(true);
            vm->irqLine(c, 0xA5, 0);
            c.vmcall(kvmx86::vmcallnr::kTestHypercall); // entry injects
            c.compute(10);
            EXPECT_EQ(guest.received[0xA5], 1);
        });
        // The handler's EOI was an APIC-access exit (no vAPIC, paper §2).
        EXPECT_GE(vcpu.stats.counterValue("apic.access"), 1u);
        EXPECT_TRUE(vcpu.apic.inService.empty());
    });
}

TEST_F(KvmX86Test, VirtualIpiAcrossVcpus)
{
    std::unique_ptr<VmX86> vm;
    CountingGuestX86 guest1;
    bool ready = false, done = false;

    machine->cpu(0).setEntry([&] {
        X86Cpu &cpu = machine->cpu(0);
        hostx->boot(0);
        kvm->initCpu(cpu);
        vm = kvm->createVm(64 * kMiB);
        VCpuX86 &vcpu0 = vm->addVcpu(0);
        vm->addVcpu(1);
        vcpu0.setGuestOs(&guest);
        vcpu0.run(cpu, [&](X86Cpu &c) {
            c.setIf(true);
            while (!ready)
                c.compute(200);
            c.memWrite(x86::kApicBase + x86::apic::ICR_HI,
                       std::uint64_t(1) << 56, 4);
            c.memWrite(x86::kApicBase + x86::apic::ICR_LO, 0xC1, 4);
            while (guest1.received[0xC1] < 1)
                c.compute(200);
            done = true;
        });
    });
    machine->cpu(1).setEntry([&] {
        X86Cpu &cpu = machine->cpu(1);
        hostx->boot(1);
        kvm->initCpu(cpu);
        while (!vm || vm->vcpus().size() < 2)
            cpu.compute(300);
        VCpuX86 &vcpu1 = *vm->vcpus()[1];
        vcpu1.setGuestOs(&guest1);
        vcpu1.run(cpu, [&](X86Cpu &c) {
            c.setIf(true);
            ready = true;
            while (!done)
                c.compute(150);
        });
    });
    machine->run();
    EXPECT_EQ(guest1.received[0xC1], 1);
}

TEST_F(KvmX86Test, HltBlocksUntilInjection)
{
    runOnCpu0([&](X86Cpu &cpu) {
        auto vm = kvm->createVm(64 * kMiB);
        VCpuX86 &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest);
        vcpu.run(cpu, [&](X86Cpu &c) {
            c.setIf(true);
            // Guest timer via TSC deadline, then halt until it fires.
            c.wrmsrTscDeadline(c.rdtsc() + 40000);
            c.hlt();
            c.compute(10);
            EXPECT_EQ(guest.received[kvmx86::kGuestTimerVector], 1);
        });
        EXPECT_GE(vcpu.stats.counterValue("exit.hlt"), 1u);
        EXPECT_GE(vcpu.stats.counterValue("emul.tscdeadline"), 1u);
    });
}

} // namespace
} // namespace kvmarm
