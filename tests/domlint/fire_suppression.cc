// domlint fixture — MUST FIRE: suppression (malformed allow comments).
// The first suppression lacks a justification, so it is itself a finding
// and does not suppress the wall-clock hit on the next line; the second
// names a rule id that does not exist.
#include <chrono>

namespace kvmarm::fixture {

double
badSuppressions()
{
    // domlint: allow(wall-clock)
    auto t = std::chrono::steady_clock::now();
    // domlint: allow(not-a-rule) — this rule id does not exist
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace kvmarm::fixture
