#!/usr/bin/env bash
# ctest driver for the domlint fixture corpus.
#
# Every must-fire fixture has to make tools/domlint exit 1 *and* report
# the expected rule id; every must-pass fixture has to come back clean.
# Fixtures live outside src/, so they run under --all-rules (the flag
# that applies every rule regardless of path).
set -u

cd "$(dirname "$0")/../.."
D=tests/domlint
fail=0

expect_fire() { # expect_fire <rule> <domlint-args...>
    local rule="$1" out rc
    shift
    out=$(tools/domlint --all-rules "$@" 2>&1) && rc=0 || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "FAIL: expected exit 1 from 'domlint --all-rules $*' (got $rc)"
        echo "$out"
        fail=1
    elif ! grep -q "domlint\[$rule\]" <<<"$out"; then
        echo "FAIL: expected a [$rule] finding from 'domlint --all-rules $*'"
        echo "$out"
        fail=1
    else
        echo "ok (fires $rule): $*"
    fi
}

expect_pass() { # expect_pass <domlint-args...>
    local out rc
    out=$(tools/domlint --all-rules "$@" 2>&1) && rc=0 || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: expected exit 0 from 'domlint --all-rules $*' (got $rc)"
        echo "$out"
        fail=1
    else
        echo "ok (clean): $*"
    fi
}

# Family 1: determinism (wall clock, randomness, build stamps).
expect_fire wall-clock  --no-hooks "$D/fire_determinism.cc"
expect_fire rng         --no-hooks "$D/fire_determinism.cc"
expect_fire build-stamp --no-hooks "$D/fire_determinism.cc"
expect_pass             --no-hooks "$D/pass_determinism.cc"

# Family 2: ordered iteration.
expect_fire unordered-iter --no-hooks "$D/fire_unordered_iter.cc"
expect_fire pointer-order  --no-hooks "$D/fire_unordered_iter.cc"
expect_pass                --no-hooks "$D/pass_unordered_iter.cc"

# Family 3: hook coverage (fixture-local manifests).
expect_fire hook-coverage --manifest "$D/fire_hooks.manifest" \
    "$D/fire_hooks.cc"
expect_pass               --manifest "$D/pass_hooks.manifest" \
    "$D/pass_hooks.cc"

# Family 4: ownership.
expect_fire ownership-static --no-hooks "$D/fire_ownership.cc"
expect_fire ownership-sync   --no-hooks "$D/fire_ownership.cc"
expect_pass                  --no-hooks "$D/pass_ownership.cc"

# Suppression grammar.
expect_fire suppression --no-hooks "$D/fire_suppression.cc"
expect_pass             --no-hooks "$D/pass_suppression.cc"

exit $fail
