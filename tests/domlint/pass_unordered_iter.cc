// domlint fixture — MUST PASS: unordered containers may be used for
// lookup, and iteration is fine once the walk is snapshotted and sorted
// (with the snapshot line carrying the justification).
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kvmarm::fixture {

struct PageTable {
    std::unordered_map<std::uint64_t, std::uint64_t> pages;

    std::uint64_t
    releaseAllSorted()
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> snap(
            // domlint: allow(unordered-iter) — snapshot is sorted below before any order-dependent use
            pages.begin(), pages.end());
        std::sort(snap.begin(), snap.end());
        std::uint64_t sum = 0;
        for (auto &[ipa, pa] : snap)
            sum += ipa ^ pa;
        return sum;
    }

    std::uint64_t
    lookupOnly(std::uint64_t ipa) const
    {
        auto it = pages.find(ipa);
        return it == pages.end() ? 0 : it->second;
    }
};

} // namespace kvmarm::fixture
