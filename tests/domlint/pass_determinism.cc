// domlint fixture — MUST PASS: sim-time arithmetic is deterministic, and
// wall-clock measurement is fine when it carries a justified suppression.
#include <chrono>
#include <cstdint>

namespace kvmarm::fixture {

std::uint64_t
nextDeadline(std::uint64_t now_ticks, std::uint64_t period)
{
    return now_ticks + period;
}

double
wallSecondsForReport()
{
    // domlint: allow(wall-clock) — measurement only, printed in the bench report; never feeds sim state
    auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace kvmarm::fixture
