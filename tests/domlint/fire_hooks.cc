// domlint fixture — MUST FIRE: hook-coverage. The manifest
// (fire_hooks.manifest) lists Stage2::mapPage as a guarded-state mutator,
// but the body carries no KVMARM_CHECK / KVMARM_CHECK_ON hook.

namespace kvmarm::fixture {

struct Stage2 {
    int maps = 0;
    void mapPage(unsigned long ipa, unsigned long pa);
};

void
Stage2::mapPage(unsigned long ipa, unsigned long pa)
{
    maps += static_cast<int>(ipa != pa);
}

} // namespace kvmarm::fixture
