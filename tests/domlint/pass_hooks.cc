// domlint fixture — MUST PASS: the manifest-listed mutator carries its
// invariant hook. The real macros live in src/check/invariants.hh; the
// rule only requires the KVMARM_CHECK token inside the definition body.
#define KVMARM_CHECK_ON(engine, call) ((void)0)

namespace kvmarm::fixture {

struct Stage2 {
    int maps = 0;
    void *engine = nullptr;
    void mapPage(unsigned long ipa, unsigned long pa);
};

void
Stage2::mapPage(unsigned long ipa, unsigned long pa)
{
    maps += static_cast<int>(ipa != pa);
    KVMARM_CHECK_ON(engine, stage2Map(ipa, pa));
}

} // namespace kvmarm::fixture
