// domlint fixture — MUST FIRE: unordered-iter (range-for and iterator
// walk over an unordered container) and pointer-order (pointer-keyed
// ordered container).
#include <cstdint>
#include <map>
#include <unordered_map>

namespace kvmarm::fixture {

struct Obj;

struct PageTable {
    std::unordered_map<std::uint64_t, std::uint64_t> pages;
    std::map<Obj *, int> byOwner;

    std::uint64_t
    releaseAllBucketOrder()
    {
        std::uint64_t sum = 0;
        for (auto &kv : pages)
            sum += kv.second;
        return sum;
    }

    std::uint64_t
    firstBucketOrder()
    {
        return pages.begin()->second;
    }
};

} // namespace kvmarm::fixture
