// domlint fixture — MUST FIRE: ownership-static (namespace-scope mutable
// global, thread_local, function-local mutable static) and ownership-sync
// (mutex/atomic outside the shared-ownership allowlist).
#include <atomic>
#include <mutex>

namespace kvmarm::fixture {

int gLiveMachines;
std::mutex gFixtureMutex;
std::atomic<int> gEvents{0};
thread_local int tlsScratch;

int
nextSerial()
{
    static int counter = 0;
    return ++counter;
}

} // namespace kvmarm::fixture
