// domlint fixture — MUST PASS: machine-owned state lives in members;
// immutable statics and constants are fine.

namespace kvmarm::fixture {

constexpr unsigned long kGuestRamBase = 0x40000000;

struct Machine {
    int counter = 0;
    unsigned long ticks = 0;

    int nextSerial() { return ++counter; }
    void advance(unsigned long n) { ticks += n; }
};

inline const char *
machineTag()
{
    static const char tag[] = "machine";
    return tag;
}

} // namespace kvmarm::fixture
