// domlint fixture — MUST PASS: both suppression forms, each with a
// justification. A standalone comment covers the next non-blank line; a
// trailing comment covers its own line.
#include <chrono>
#include <cstdlib>

namespace kvmarm::fixture {

double
wallNow()
{
    // domlint: allow(wall-clock) — measurement only for the report; never feeds simulated state
    auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int
hostNoise()
{
    return rand(); // domlint: allow(rng) -- fixture exercising the trailing-comment suppression form
}

} // namespace kvmarm::fixture
