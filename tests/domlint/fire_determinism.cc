// domlint fixture — MUST FIRE: wall-clock, rng, build-stamp.
//
// Never compiled; scanned by tests/domlint/run_fixtures.sh with
// `tools/domlint --all-rules --no-hooks`.
#include <chrono>
#include <cstdlib>

namespace kvmarm::fixture {

long
simSeedFromHost()
{
    auto now = std::chrono::steady_clock::now();
    long jitter = rand();
    const char *stamp = __DATE__ " " __TIME__;
    (void)stamp;
    return now.time_since_epoch().count() + jitter;
}

} // namespace kvmarm::fixture
