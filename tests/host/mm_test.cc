/** @file Host memory manager tests. */

#include <gtest/gtest.h>

#include "host/mm.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

TEST(HostMm, AllocReturnsZeroedDistinctPages)
{
    PhysMem ram(0x80000000, kMiB);
    ram.write(0x80000000 + kMiB - kPageSize, 0xFF, 1);
    host::Mm mm(ram);
    Addr a = mm.allocPage();
    Addr b = mm.allocPage();
    EXPECT_NE(a, b);
    EXPECT_TRUE(isPageAligned(a));
    EXPECT_EQ(ram.read(a, 8), 0u); // zeroed even if previously dirty
    EXPECT_EQ(mm.refcount(a), 1u);
}

TEST(HostMm, RefcountLifecycle)
{
    PhysMem ram(0, kMiB);
    host::Mm mm(ram);
    Addr a = mm.allocPage();
    std::size_t free_before = mm.freePages();
    mm.getPage(a);
    mm.putPage(a);
    EXPECT_EQ(mm.refcount(a), 1u);
    EXPECT_EQ(mm.freePages(), free_before);
    mm.putPage(a + 123); // sub-page addresses resolve to the frame
    EXPECT_EQ(mm.refcount(a), 0u);
    EXPECT_EQ(mm.freePages(), free_before + 1);
}

TEST(HostMm, FreedPagesAreReused)
{
    PhysMem ram(0, 4 * kPageSize);
    host::Mm mm(ram);
    Addr a = mm.allocPage();
    mm.putPage(a);
    Addr b = mm.allocPage();
    EXPECT_EQ(a, b);
}

TEST(HostMm, ExhaustionIsFatal)
{
    PhysMem ram(0, 2 * kPageSize);
    host::Mm mm(ram);
    mm.allocPage();
    mm.allocPage();
    EXPECT_THROW(mm.allocPage(), FatalError);
}

TEST(HostMm, PutOnFreePagePanics)
{
    PhysMem ram(0, kMiB);
    host::Mm mm(ram);
    EXPECT_DEATH(mm.putPage(0x2000), "free page");
}

TEST(HostMm, GetUserPagesAllocates)
{
    PhysMem ram(0, kMiB);
    host::Mm mm(ram);
    Addr a = mm.getUserPages();
    EXPECT_EQ(mm.refcount(a), 1u);
}

} // namespace
} // namespace kvmarm
