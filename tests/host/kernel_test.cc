/** @file Host kernel tests: boot, IRQ layer, hyp stub, user transitions. */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "host/kernel.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;
using arm::Mode;

class HostKernelTest : public ::testing::Test
{
  protected:
    HostKernelTest()
    {
        ArmMachine::Config mc;
        mc.numCpus = 2;
        mc.ramSize = 128 * kMiB;
        machine = std::make_unique<ArmMachine>(mc);
        hostk = std::make_unique<host::HostKernel>(*machine);
    }

    std::unique_ptr<ArmMachine> machine;
    std::unique_ptr<host::HostKernel> hostk;
};

TEST_F(HostKernelTest, BootEnablesMmuAndInterrupts)
{
    machine->cpu(0).setEntry([&] {
        hostk->boot(0);
        ArmCpu &cpu = machine->cpu(0);
        EXPECT_EQ(cpu.mode(), Mode::Svc);
        EXPECT_FALSE(cpu.irqMasked());
        EXPECT_TRUE(cpu.regs()[arm::CtrlReg::SCTLR] & 1);
        EXPECT_EQ(cpu.osVectors(), hostk.get());
        // Kernel identity mapping works: a RAM read through the MMU.
        machine->ram().write(ArmMachine::kRamBase + 0x100, 0x77, 4);
        EXPECT_EQ(cpu.memRead(ArmMachine::kRamBase + 0x100, 4), 0x77u);
    });
    machine->run();
}

TEST_F(HostKernelTest, SecondaryCpuWaitsForBootCpu)
{
    bool cpu1_booted = false;
    machine->cpu(1).setEntry([&] {
        hostk->boot(1); // spins until cpu0 builds the tables
        cpu1_booted = true;
        EXPECT_TRUE(machine->cpu(1).regs()[arm::CtrlReg::SCTLR] & 1);
    });
    machine->cpu(0).setEntry([&] {
        machine->cpu(0).compute(5000); // let cpu1 reach the holding pen
        hostk->boot(0);
    });
    machine->run();
    EXPECT_TRUE(cpu1_booted);
}

TEST_F(HostKernelTest, IrqDispatchAcksAndRoutes)
{
    machine->cpu(0).setEntry([&] {
        hostk->boot(0);
        ArmCpu &cpu = machine->cpu(0);
        int handled = 0;
        hostk->requestIrq(50, [&](ArmCpu &, IrqId irq) {
            EXPECT_EQ(irq, 50u);
            ++handled;
        });
        hostk->enableIrq(cpu, 50);
        machine->gicd().raiseSpi(50, cpu.now());
        cpu.compute(10);
        EXPECT_EQ(handled, 1);
        // Line dropped after ACK/EOI: no re-delivery.
        cpu.compute(10);
        EXPECT_EQ(handled, 1);
    });
    machine->run();
}

TEST_F(HostKernelTest, HypStubInstallsRuntimeVectors)
{
    class DummyHyp : public arm::HypVectors
    {
        void hypTrap(ArmCpu &, const arm::Hsr &) override {}
        const char *name() const override { return "dummy"; }
    } dummy;

    machine->cpu(0).setEntry([&] {
        hostk->boot(0);
        ArmCpu &cpu = machine->cpu(0);
        EXPECT_NE(cpu.hypVectors(), &dummy);
        EXPECT_TRUE(hostk->installHypVectors(cpu, &dummy));
        EXPECT_EQ(cpu.hypVectors(), &dummy);
    });
    machine->run();
}

TEST_F(HostKernelTest, NoHypBootMeansNoVectors)
{
    host::HostKernel::Config hc;
    hc.bootedInHyp = false;
    auto host2 = std::make_unique<host::HostKernel>(*machine, hc);
    class DummyHyp : public arm::HypVectors
    {
        void hypTrap(ArmCpu &, const arm::Hsr &) override {}
        const char *name() const override { return "dummy"; }
    } dummy;
    machine->cpu(0).setEntry([&] {
        host2->boot(0);
        EXPECT_FALSE(
            host2->installHypVectors(machine->cpu(0), &dummy));
        EXPECT_EQ(machine->cpu(0).hypVectors(), nullptr);
    });
    machine->run();
}

TEST_F(HostKernelTest, RunInUserspaceChargesTransitions)
{
    machine->cpu(0).setEntry([&] {
        hostk->boot(0);
        ArmCpu &cpu = machine->cpu(0);
        Cycles t0 = cpu.now();
        bool ran = false;
        hostk->runInUserspace(cpu, [&] {
            ran = true;
            EXPECT_EQ(cpu.mode(), Mode::Usr);
        });
        EXPECT_TRUE(ran);
        EXPECT_EQ(cpu.mode(), Mode::Svc);
        EXPECT_GE(cpu.now() - t0, hostk->costs().kernelToUser +
                                      hostk->costs().userToKernel);
    });
    machine->run();
}

TEST_F(HostKernelTest, BlockUntilWakesOnTimer)
{
    machine->cpu(0).setEntry([&] {
        hostk->boot(0);
        ArmCpu &cpu = machine->cpu(0);
        bool flag = false;
        hostk->timers().start(0, cpu.now() + 50000, [&] { flag = true; });
        hostk->blockUntil(cpu, [&] { return flag; });
        EXPECT_TRUE(flag);
    });
    machine->run();
}

TEST_F(HostKernelTest, SoftTimerCancel)
{
    machine->cpu(0).setEntry([&] {
        hostk->boot(0);
        ArmCpu &cpu = machine->cpu(0);
        bool fired = false;
        auto id =
            hostk->timers().start(0, cpu.now() + 1000, [&] { fired = true; });
        EXPECT_TRUE(hostk->timers().cancel(id));
        cpu.compute(5000);
        EXPECT_FALSE(fired);
        EXPECT_FALSE(hostk->timers().cancel(id));
    });
    machine->run();
}

} // namespace
} // namespace kvmarm
