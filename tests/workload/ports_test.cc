/**
 * @file
 * SysPort adapter tests: the miniature ARM Linux's real demand paging,
 * page-cache recycling, protection-fault cycle and IRQ accounting, plus
 * the x86 port's trap-free sched_clock and shootdown handshake.
 */

#include <gtest/gtest.h>

#include "workload/arm_port.hh"
#include "workload/x86_port.hh"

namespace kvmarm::wl {
namespace {

using arm::ArmMachine;

class ArmPortTest : public ::testing::Test
{
  protected:
    ArmPortTest()
        : machine(ArmMachine::Config{.numCpus = 1,
                                     .ramSize = 512 * kMiB,
                                     .hwVgic = true,
                                     .hwVtimers = true,
                                     .clockHz = 1.7e9,
                                     .cost = {}})
    {
        image.ramSize = 128 * kMiB;
    }

    void
    run(const std::function<void(ArmLinuxPort &)> &body)
    {
        ArmLinuxPort port(machine.cpu(0), image, 0);
        machine.cpu(0).setEntry([&] {
            port.boot();
            body(port);
        });
        machine.run();
    }

    ArmMachine machine;
    ArmOsImage image;
};

TEST_F(ArmPortTest, DemandFaultsUseRealPageTables)
{
    run([&](ArmLinuxPort &port) {
        auto &cpu = port.cpu();
        std::uint64_t faults_before =
            cpu.stats().counterValue("fault.stage1");
        for (int i = 0; i < 10; ++i)
            port.demandFault();
        EXPECT_EQ(cpu.stats().counterValue("fault.stage1"),
                  faults_before + 10);
    });
}

TEST_F(ArmPortTest, PageCacheRecyclesBackingFrames)
{
    run([&](ArmLinuxPort &port) {
        // Fill the pool, then go steady-state: the allocator must not be
        // consumed further (pages recycle).
        for (unsigned i = 0; i < 64; ++i)
            port.demandFault();
        Addr free_marker = image.nextFreePage;
        for (unsigned i = 0; i < 32; ++i)
            port.demandFault();
        EXPECT_EQ(image.nextFreePage, free_marker);
    });
}

TEST_F(ArmPortTest, ProtFaultTakesRealPermissionFault)
{
    run([&](ArmLinuxPort &port) {
        auto &cpu = port.cpu();
        std::uint64_t before = cpu.stats().counterValue("fault.stage1");
        port.protFault();
        port.protFault();
        EXPECT_EQ(cpu.stats().counterValue("fault.stage1"), before + 2);
    });
}

TEST_F(ArmPortTest, TimerAndIdleRoundTrip)
{
    run([&](ArmLinuxPort &port) {
        EXPECT_EQ(port.timerIrqsReceived(), 0u);
        port.timerProgram(30000);
        port.idle();
        EXPECT_EQ(port.timerIrqsReceived(), 1u);
        // sched_clock is monotonic and trap-free here.
        std::uint64_t a = port.schedClock();
        std::uint64_t b = port.schedClock();
        EXPECT_GE(b, a);
    });
}

TEST_F(ArmPortTest, SyscallEdgeEntersUserMode)
{
    run([&](ArmLinuxPort &port) {
        Cycles t0 = port.now();
        port.syscallEdge();
        EXPECT_GT(port.now(), t0);
        EXPECT_EQ(port.cpu().mode(), arm::Mode::Svc);
    });
}

TEST(X86PortTest, SchedClockIsRdtscAndShootdownHandshakes)
{
    x86::X86Machine machine(x86::X86Machine::Config{
        .numCpus = 2, .ramSize = 128 * kMiB,
        .platform = x86::X86Platform::Laptop});
    X86OsImage image;
    image.ramSize = 64 * kMiB;
    X86LinuxPort p0(machine.cpu(0), image, 0);
    X86LinuxPort p1(machine.cpu(1), image, 1);
    p0.peer = &p1;
    p1.peer = &p0;
    bool done = false;

    machine.cpu(0).setEntry([&] {
        p0.boot();
        std::uint64_t a = p0.schedClock();
        std::uint64_t b = p0.schedClock();
        EXPECT_GE(b, a);
        // Shootdown waits for the peer's ack.
        std::uint64_t acks = p1.shootdownAcks;
        p0.tlbShootdown(true);
        EXPECT_EQ(p1.shootdownAcks, acks + 1);
        done = true;
    });
    machine.cpu(1).setEntry([&] {
        p1.boot();
        while (!done) {
            p1.timerProgram(200000);
            p1.idle();
        }
    });
    machine.run();
    EXPECT_TRUE(done);
}

TEST(X86PortTest, UpShootdownSkipsIpi)
{
    x86::X86Machine machine(x86::X86Machine::Config{
        .numCpus = 1, .ramSize = 64 * kMiB,
        .platform = x86::X86Platform::Laptop});
    X86OsImage image;
    X86LinuxPort p0(machine.cpu(0), image, 0);
    machine.cpu(0).setEntry([&] {
        p0.boot();
        Cycles t0 = p0.now();
        p0.tlbShootdown(false); // local flush only
        EXPECT_LT(p0.now() - t0, 1000u);
    });
    machine.run();
}

} // namespace
} // namespace kvmarm::wl
