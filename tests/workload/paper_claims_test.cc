/**
 * @file
 * The paper's headline evaluation claims (§5.2), asserted end to end on
 * the full stacks — the figure orderings that must hold regardless of
 * cost-model drift.
 */

#include <gtest/gtest.h>

#include "workload/apps.hh"
#include "workload/harness.hh"
#include "workload/linux_model.hh"

namespace kvmarm::wl {
namespace {

double
lmOverhead(Platform p, LmWorkload w, bool smp)
{
    Experiment exp;
    exp.platform = p;
    exp.numCpus = smp ? 2 : 1;
    bool pingpong = smp && (w == LmWorkload::Pipe || w == LmWorkload::Ctxsw);
    if (!pingpong) {
        exp.work = [w, smp](SysPort &port) -> Cycles {
            LmbenchOps ops(port);
            ops.run(w, 40, smp);
            return ops.run(w, 50, smp);
        };
        if (smp) {
            exp.side = [](SysPort &port) {
                LinuxCosts costs;
                for (int i = 0; i < 3000; ++i) {
                    (void)port.schedClock();
                    port.timerProgram(3 * costs.tickInterval);
                    port.idle();
                }
            };
        }
    } else {
        auto ch = std::make_shared<SmpChannel>();
        bool copy = w == LmWorkload::Pipe;
        exp.prepare = [ch] {
            *ch = SmpChannel{};
            ch->rounds = 160;
        };
        exp.work = [ch, copy](SysPort &port) -> Cycles {
            Cycles t0 = port.now();
            pipeSmpSide(port, *ch, true, copy);
            return port.now() - t0;
        };
        exp.side = [ch, copy](SysPort &port) {
            pipeSmpSide(port, *ch, false, copy);
        };
    }
    return overhead(exp);
}

TEST(PaperClaims, Fig4ForkExecArmBeatsX86)
{
    // "KVM/ARM has less overhead than KVM x86 fork and exec" (SMP).
    EXPECT_LE(lmOverhead(Platform::ArmVgic, LmWorkload::Fork, true),
              lmOverhead(Platform::X86Laptop, LmWorkload::Fork, true));
}

TEST(PaperClaims, Fig4ProtFaultArmWorseThanX86)
{
    // "...but more for protection faults."
    EXPECT_GT(lmOverhead(Platform::ArmVgic, LmWorkload::ProtFault, true),
              lmOverhead(Platform::X86Laptop, LmWorkload::ProtFault, true));
}

TEST(PaperClaims, Fig4PipeWorstAndX86WorstOfAll)
{
    double arm_pipe = lmOverhead(Platform::ArmVgic, LmWorkload::Pipe, true);
    double x86_pipe =
        lmOverhead(Platform::X86Laptop, LmWorkload::Pipe, true);
    double arm_afunix =
        lmOverhead(Platform::ArmVgic, LmWorkload::AfUnix, true);
    // Pipe is among the worst overheads for both systems...
    EXPECT_GT(arm_pipe, 1.5);
    EXPECT_GT(arm_pipe, arm_afunix);
    // ...and KVM x86 is worse than KVM/ARM for it.
    EXPECT_GT(x86_pipe, arm_pipe);
}

TEST(PaperClaims, Fig4NoVgicPaysForEveryAckAndEoi)
{
    // "Without VGIC/vtimers, KVM/ARM also incurs high overhead ...
    // because it then also traps to the hypervisor to ACK and EOI."
    double with = lmOverhead(Platform::ArmVgic, LmWorkload::Pipe, true);
    double without =
        lmOverhead(Platform::ArmNoVgic, LmWorkload::Pipe, true);
    EXPECT_GT(without, 1.5 * with);
}

TEST(PaperClaims, Fig6ServerWorkloadsFavorArmOnMulticore)
{
    // "significantly lower performance overhead for two important
    // applications, Apache and MySQL, on multicore platforms."
    AppOutcome arm_apache = runApp(App::Apache, Platform::ArmVgic, true);
    AppOutcome x86_apache = runApp(App::Apache, Platform::X86Laptop, true);
    AppOutcome arm_mysql = runApp(App::Mysql, Platform::ArmVgic, true);
    AppOutcome x86_mysql = runApp(App::Mysql, Platform::X86Laptop, true);
    EXPECT_LT(arm_apache.overhead, x86_apache.overhead);
    EXPECT_LT(arm_mysql.overhead, x86_mysql.overhead);
    // "KVM/ARM performs within 10% of running directly on the hardware"
    // for the server workloads.
    EXPECT_LT(arm_apache.overhead, 1.15);
    EXPECT_LT(arm_mysql.overhead, 1.10);
}

TEST(PaperClaims, Fig7EnergyShape)
{
    // CPU-bound: energy overhead tracks performance overhead closely.
    AppOutcome compile =
        runApp(App::KernelCompile, Platform::ArmVgic, true);
    EXPECT_NEAR(compile.energyOverhead, compile.overhead, 0.05);
    // I/O-bound: power stays near idle; the paper's untar exception —
    // ARM's energy overhead exceeds the x86 laptop's.
    AppOutcome arm_untar = runApp(App::Untar, Platform::ArmVgic, true);
    AppOutcome x86_untar = runApp(App::Untar, Platform::X86Laptop, true);
    EXPECT_LT(arm_untar.native.cpuUtil, 0.3);
    EXPECT_GE(arm_untar.energyOverhead, x86_untar.energyOverhead);
}

} // namespace
} // namespace kvmarm::wl
