/**
 * @file
 * Workload layer tests: the miniature Linux boots identically native and
 * as a guest, lmbench operations are deterministic, overheads behave
 * (virt >= native within tolerance), and the harness' four stacks run.
 */

#include <gtest/gtest.h>

#include "workload/apps.hh"
#include "workload/harness.hh"
#include "workload/linux_model.hh"

namespace kvmarm::wl {
namespace {

TEST(Workload, NullSyscallNeverTraps)
{
    // Null syscalls stay inside the guest: zero overhead on every
    // platform with hardware support.
    for (Platform p : {Platform::ArmVgic, Platform::X86Laptop}) {
        Experiment exp;
        exp.platform = p;
        exp.numCpus = 1;
        exp.work = [](SysPort &port) -> Cycles {
            Cycles t0 = port.now();
            LmbenchOps ops(port);
            for (int i = 0; i < 100; ++i)
                ops.nullSyscall();
            return port.now() - t0;
        };
        double oh = overhead(exp);
        EXPECT_NEAR(oh, 1.0, 0.01) << platformName(p);
    }
}

TEST(Workload, DeterministicAcrossRuns)
{
    // The whole simulation is deterministic: identical experiments give
    // identical cycle counts.
    Experiment exp;
    exp.platform = Platform::ArmVgic;
    exp.numCpus = 1;
    exp.work = [](SysPort &port) -> Cycles {
        LmbenchOps ops(port);
        return ops.run(LmWorkload::Pipe, 40);
    };
    RunMetrics a = runVirt(exp);
    RunMetrics b = runVirt(exp);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(runNative(exp).elapsed, runNative(exp).elapsed);
}

TEST(Workload, VirtualizationNeverSpeedsUpLmbench)
{
    for (LmWorkload w : allLmWorkloads()) {
        Experiment exp;
        exp.platform = Platform::ArmVgic;
        exp.numCpus = 1;
        exp.work = [w](SysPort &port) -> Cycles {
            LmbenchOps ops(port);
            ops.run(w, 30);
            return ops.run(w, 30);
        };
        EXPECT_GE(overhead(exp), 0.999) << lmWorkloadName(w);
    }
}

TEST(Workload, NoVtimersHurtsClockHeavyWorkloads)
{
    auto pipe_overhead = [](Platform p) {
        Experiment exp;
        exp.platform = p;
        exp.numCpus = 1;
        exp.work = [](SysPort &port) -> Cycles {
            LmbenchOps ops(port);
            ops.run(LmWorkload::Pipe, 30);
            return ops.run(LmWorkload::Pipe, 40);
        };
        return overhead(exp);
    };
    double with = pipe_overhead(Platform::ArmVgic);
    double without = pipe_overhead(Platform::ArmNoVgic);
    EXPECT_LT(with, 1.05);
    EXPECT_GT(without, 2.0); // "the difference is substantial" (paper)
}

TEST(Workload, AppOutcomesAreSane)
{
    AppOutcome out = runApp(App::Untar, Platform::ArmVgic, false);
    EXPECT_GT(out.native.elapsed, 0u);
    EXPECT_GE(out.overhead, 0.98);
    EXPECT_LT(out.overhead, 1.6);
    EXPECT_GT(out.energyOverhead, 0.9);
    // untar is I/O bound: low utilization (paper §5.2).
    EXPECT_LT(out.native.cpuUtil, 0.4);
    EXPECT_FALSE(isCpuBound(App::Untar));
    EXPECT_TRUE(isCpuBound(App::KernelCompile));
}

TEST(Workload, SmpPingPongCompletes)
{
    auto ch = std::make_shared<SmpChannel>();
    Experiment exp;
    exp.platform = Platform::ArmVgic;
    exp.numCpus = 2;
    exp.prepare = [ch] {
        *ch = SmpChannel{};
        ch->rounds = 60;
    };
    exp.work = [ch](SysPort &port) -> Cycles {
        Cycles t0 = port.now();
        pipeSmpSide(port, *ch, true, true);
        return port.now() - t0;
    };
    exp.side = [ch](SysPort &port) { pipeSmpSide(port, *ch, false, true); };

    RunMetrics native = runNative(exp);
    EXPECT_EQ(ch->token, 60u);
    RunMetrics virt = runVirt(exp);
    EXPECT_EQ(ch->token, 60u);
    EXPECT_GT(virt.elapsed, native.elapsed);
}

TEST(Workload, AllAppsRunOnAllPlatformsUp)
{
    // Broad integration sweep: every app on every platform, UP.
    for (App app : allApps()) {
        AppOutcome out = runApp(app, Platform::ArmVgic, false);
        EXPECT_GT(out.overhead, 0.97) << appName(app);
        EXPECT_LT(out.overhead, 4.0) << appName(app);
    }
}

} // namespace
} // namespace kvmarm::wl
