/** @file PhysMem unit tests. */

#include <gtest/gtest.h>

#include "mem/phys_mem.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

TEST(PhysMem, ReadsBackWrites)
{
    PhysMem mem(0x80000000, 4 * kMiB);
    mem.write(0x80000000, 0xDEADBEEF, 4);
    mem.write(0x80000010, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(0x80000000, 4), 0xDEADBEEFu);
    EXPECT_EQ(mem.read(0x80000010, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x80000014, 4), 0x11223344u);
}

TEST(PhysMem, UnwrittenReadsZero)
{
    PhysMem mem(0, kMiB);
    EXPECT_EQ(mem.read(0x1000, 8), 0u);
    EXPECT_EQ(mem.touchedPages(), 0u);
}

TEST(PhysMem, SparseAllocation)
{
    PhysMem mem(0, kGiB); // only touched pages materialize
    mem.write(123 * kPageSize, 1, 1);
    mem.write(9000 * kPageSize, 2, 1);
    EXPECT_EQ(mem.touchedPages(), 2u);
}

TEST(PhysMem, CrossPageBlockCopy)
{
    PhysMem mem(0, kMiB);
    std::vector<std::uint8_t> in(3 * kPageSize);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i * 7);
    mem.writeBlock(kPageSize / 2, in.data(), in.size());
    std::vector<std::uint8_t> out(in.size());
    mem.readBlock(kPageSize / 2, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(PhysMem, ZeroPageClears)
{
    PhysMem mem(0, kMiB);
    mem.write(kPageSize + 8, 0xAB, 1);
    mem.zeroPage(kPageSize);
    EXPECT_EQ(mem.read(kPageSize + 8, 1), 0u);
}

TEST(PhysMem, ContainsChecksBounds)
{
    PhysMem mem(0x1000, 2 * kPageSize);
    EXPECT_TRUE(mem.contains(0x1000));
    EXPECT_TRUE(mem.contains(0x1000 + 2 * kPageSize - 1));
    EXPECT_FALSE(mem.contains(0xFFF));
    EXPECT_FALSE(mem.contains(0x1000 + 2 * kPageSize));
    EXPECT_FALSE(mem.contains(0x1000 + 2 * kPageSize - 2, 4));
}

TEST(PhysMem, RejectsUnalignedConstruction)
{
    EXPECT_THROW(PhysMem(0x123, kPageSize), FatalError);
    EXPECT_THROW(PhysMem(0, kPageSize + 5), FatalError);
    EXPECT_THROW(PhysMem(0, 0), FatalError);
}

TEST(PhysMem, OutOfRangeAccessPanics)
{
    PhysMem mem(0, kPageSize);
    EXPECT_DEATH(mem.read(kPageSize, 4), "outside RAM");
}

} // namespace
} // namespace kvmarm
