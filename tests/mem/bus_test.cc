/** @file Bus / MMIO routing unit tests. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/bus.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

/** Scratch device recording accesses. */
class ScratchDev : public MmioDevice
{
  public:
    explicit ScratchDev(Cycles latency = 77) : latency_(latency) {}
    std::string name() const override { return "scratch"; }
    std::uint64_t
    read(CpuId cpu, Addr offset, unsigned) override
    {
        lastCpu = cpu;
        lastOffset = offset;
        return 0xAB00 | offset;
    }
    void
    write(CpuId cpu, Addr offset, std::uint64_t value, unsigned) override
    {
        lastCpu = cpu;
        lastOffset = offset;
        lastValue = value;
    }
    Cycles accessLatency() const override { return latency_; }

    CpuId lastCpu = 99;
    Addr lastOffset = 0;
    std::uint64_t lastValue = 0;

  private:
    Cycles latency_;
};

class BusTest : public ::testing::Test
{
  protected:
    BusTest() : ram(0x80000000, kMiB), bus(ram) {}
    PhysMem ram;
    Bus bus;
    ScratchDev dev;
};

TEST_F(BusTest, RoutesRamAccesses)
{
    auto w = bus.write(0, 0x80000100, 0x55, 4);
    EXPECT_TRUE(w.ok);
    EXPECT_EQ(w.latency, Bus::kRamLatency);
    auto r = bus.read(1, 0x80000100, 4);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 0x55u);
}

TEST_F(BusTest, RoutesDeviceAccessesWithOffsetAndInitiator)
{
    bus.addDevice(0x09000000, 0x1000, &dev);
    auto r = bus.read(1, 0x09000018, 4);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 0xAB18u);
    EXPECT_EQ(r.latency, 77u);
    EXPECT_EQ(dev.lastCpu, 1u);
    EXPECT_EQ(dev.lastOffset, 0x18u);

    bus.write(0, 0x09000020, 42, 4);
    EXPECT_EQ(dev.lastValue, 42u);
    EXPECT_EQ(dev.lastCpu, 0u);
}

TEST_F(BusTest, UnmappedAddressFails)
{
    auto r = bus.read(0, 0x01234567, 4);
    EXPECT_FALSE(r.ok);
}

TEST_F(BusTest, RejectsOverlappingRegions)
{
    bus.addDevice(0x09000000, 0x1000, &dev);
    ScratchDev other;
    EXPECT_THROW(bus.addDevice(0x09000800, 0x1000, &other), FatalError);
    EXPECT_THROW(bus.addDevice(0x80000000, 0x1000, &other), FatalError);
}

TEST_F(BusTest, RegionBaseLookup)
{
    ScratchDev unregistered;
    EXPECT_EQ(bus.regionBase(&unregistered), std::nullopt);
    bus.addDevice(0x09000000, 0x1000, &dev);
    ASSERT_TRUE(bus.regionBase(&dev).has_value());
    EXPECT_EQ(*bus.regionBase(&dev), 0x09000000u);
    EXPECT_EQ(bus.regionBase(&unregistered), std::nullopt);
    EXPECT_EQ(bus.deviceAt(0x09000FFF), &dev);
    EXPECT_EQ(bus.deviceAt(0x09001000), nullptr);
}

TEST_F(BusTest, ManyRegionsDecodeCorrectly)
{
    // Registered out of order; the bus keeps its table sorted for binary
    // search, so decode must still land on the right device.
    std::vector<std::unique_ptr<ScratchDev>> devs;
    for (int i = 7; i >= 0; --i) {
        devs.push_back(std::make_unique<ScratchDev>());
        bus.addDevice(0x09000000 + Addr(i) * 0x10000, 0x1000,
                      devs.back().get());
    }
    for (int i = 0; i < 8; ++i) {
        Addr base = 0x09000000 + Addr(i) * 0x10000;
        EXPECT_EQ(bus.deviceAt(base), devs[7 - i].get());
        EXPECT_EQ(bus.deviceAt(base + 0xFFF), devs[7 - i].get());
        EXPECT_EQ(bus.deviceAt(base + 0x1000), nullptr);
        ASSERT_TRUE(bus.regionBase(devs[7 - i].get()).has_value());
        EXPECT_EQ(*bus.regionBase(devs[7 - i].get()), base);
    }
    EXPECT_EQ(bus.deviceAt(0x08FFFFFF), nullptr);
}

} // namespace
} // namespace kvmarm
