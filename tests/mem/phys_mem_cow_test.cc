/**
 * @file
 * PhysMem copy-on-write unit tests: saveState publishes an immutable page
 * image and turns the origin into a COW client; restoreState adopts the
 * same image; reads share, the first write to a shared page faults a
 * private copy (ISSUE 8 tentpole; DESIGN.md §4.9).
 */

#include <gtest/gtest.h>

#include "mem/phys_mem.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace kvmarm {
namespace {

/** Save @p mem into a record keyed like MachineBase would. */
SnapshotRecord
save(PhysMem &mem)
{
    SnapshotWriter w;
    mem.saveState(w);
    return w.finish(mem.snapshotKey());
}

/** Restore @p rec into @p mem. */
void
restore(PhysMem &mem, const SnapshotRecord &rec)
{
    SnapshotReader r(rec);
    mem.restoreState(r);
    ASSERT_TRUE(r.done()) << "restore left unread bytes";
}

TEST(PhysMemCow, CloneSharesReadsAndFaultsPrivateCopiesOnWrite)
{
    PhysMem origin(0, 4 * kMiB);
    origin.write(0x0000, 0x11111111u, 4);
    origin.write(kPageSize, 0x22222222u, 4);
    origin.write(2 * kPageSize, 0x33333333u, 4);
    SnapshotRecord rec = save(origin);

    // The origin itself became a COW client: its pages moved into the
    // shared image and it owns nothing privately until it writes again.
    EXPECT_EQ(origin.privatePages(), 0u);
    EXPECT_EQ(origin.sharedPages(), 3u);
    EXPECT_EQ(origin.read(0x0000, 4), 0x11111111u);

    PhysMem clone(0, 4 * kMiB);
    restore(clone, rec);
    EXPECT_EQ(clone.sharedPages(), 3u);
    EXPECT_EQ(clone.privatePages(), 0u);

    // Reads are served from the shared image with no copying.
    EXPECT_EQ(clone.read(0x0000, 4), 0x11111111u);
    EXPECT_EQ(clone.read(kPageSize, 4), 0x22222222u);
    EXPECT_EQ(clone.cowFaults(), 0u);

    // First write to a shared page faults exactly one private copy.
    clone.write(0x0000, 0xAAAAAAAAu, 4);
    EXPECT_EQ(clone.cowFaults(), 1u);
    EXPECT_EQ(clone.privatePages(), 1u);
    clone.write(0x0004, 0xBBBBBBBBu, 4); // same page: no second fault
    EXPECT_EQ(clone.cowFaults(), 1u);

    // The write is visible to the clone only; origin still reads the
    // snapshot-time bytes through the untouched image.
    EXPECT_EQ(clone.read(0x0000, 4), 0xAAAAAAAAu);
    EXPECT_EQ(origin.read(0x0000, 4), 0x11111111u);
}

TEST(PhysMemCow, CowFaultCopiesTheWholePage)
{
    PhysMem origin(0, kMiB);
    origin.write(0x10, 0x1234u, 2);
    origin.write(0x800, 0xCAFEBABEu, 4);
    SnapshotRecord rec = save(origin);

    PhysMem clone(0, kMiB);
    restore(clone, rec);
    clone.write(0x10, 0x9999u, 2);

    // The faulted private page carries the rest of the page's bytes.
    EXPECT_EQ(clone.read(0x10, 2), 0x9999u);
    EXPECT_EQ(clone.read(0x800, 4), 0xCAFEBABEu);
}

TEST(PhysMemCow, WritesToFreshPagesAreNotCowFaults)
{
    PhysMem origin(0, kMiB);
    origin.write(0, 1, 1);
    SnapshotRecord rec = save(origin);

    PhysMem clone(0, kMiB);
    restore(clone, rec);
    // A page the snapshot never materialized is plain sparse allocation.
    clone.write(5 * kPageSize, 0x55u, 1);
    EXPECT_EQ(clone.cowFaults(), 0u);
    EXPECT_EQ(clone.privatePages(), 1u);
}

TEST(PhysMemCow, ZeroPageOnSharedPageTakesTheFaultPath)
{
    PhysMem origin(0, kMiB);
    origin.write(kPageSize + 8, 0xABu, 1);
    SnapshotRecord rec = save(origin);

    PhysMem clone(0, kMiB);
    restore(clone, rec);
    clone.zeroPage(kPageSize);
    EXPECT_EQ(clone.read(kPageSize + 8, 1), 0u);
    // The image page is untouched; the origin still sees the old byte.
    EXPECT_EQ(origin.read(kPageSize + 8, 1), 0xABu);
}

TEST(PhysMemCow, BlockOpsRespectCow)
{
    PhysMem origin(0, kMiB);
    std::vector<std::uint8_t> fill(2 * kPageSize, 0x5A);
    origin.writeBlock(0, fill.data(), fill.size());
    SnapshotRecord rec = save(origin);

    PhysMem clone(0, kMiB);
    restore(clone, rec);

    // readBlock across shared pages copies out without faulting.
    std::vector<std::uint8_t> out(2 * kPageSize);
    clone.readBlock(0, out.data(), out.size());
    EXPECT_EQ(out, fill);
    EXPECT_EQ(clone.cowFaults(), 0u);

    // writeBlock across shared pages faults each page it touches.
    std::vector<std::uint8_t> in(kPageSize + 16, 0xC3);
    clone.writeBlock(kPageSize - 8, in.data(), in.size());
    EXPECT_EQ(clone.cowFaults(), 2u);
    EXPECT_EQ(clone.read(kPageSize - 8, 1), 0xC3u);
    EXPECT_EQ(origin.read(kPageSize - 8, 1), 0x5Au);
}

TEST(PhysMemCow, CloneOfCloneFlattensTheChain)
{
    PhysMem origin(0, kMiB);
    origin.write(0, 0x11u, 1);           // page 0: from the first image
    SnapshotRecord rec1 = save(origin);

    PhysMem clone1(0, kMiB);
    restore(clone1, rec1);
    clone1.write(kPageSize, 0x22u, 1);   // page 1: clone1-private
    clone1.write(0, 0x99u, 1);           // page 0: COW-modified by clone1
    SnapshotRecord rec2 = save(clone1);

    PhysMem clone2(0, kMiB);
    restore(clone2, rec2);
    // The grandchild reads through ONE flat image — clone1's private and
    // modified pages overlaid on what it inherited.
    EXPECT_EQ(clone2.sharedPages(), 2u);
    EXPECT_EQ(clone2.read(0, 1), 0x99u);
    EXPECT_EQ(clone2.read(kPageSize, 1), 0x22u);
    // And the first-generation image is untouched by all of that.
    EXPECT_EQ(origin.read(0, 1), 0x11u);
    EXPECT_EQ(origin.read(kPageSize, 1), 0u);
}

TEST(PhysMemCow, TouchedPagesCountsPrivateAndSharedOnce)
{
    PhysMem origin(0, kMiB);
    origin.write(0, 1, 1);
    origin.write(kPageSize, 2, 1);
    SnapshotRecord rec = save(origin);

    PhysMem clone(0, kMiB);
    restore(clone, rec);
    EXPECT_EQ(clone.touchedPages(), 2u);
    clone.write(0, 9, 1); // COW fault: page 0 now private AND in the image
    EXPECT_EQ(clone.touchedPages(), 2u);
    clone.write(7 * kPageSize, 3, 1);
    EXPECT_EQ(clone.touchedPages(), 3u);
}

TEST(PhysMemCow, RestoreRejectsGeometryMismatch)
{
    PhysMem origin(0, kMiB);
    origin.write(0, 1, 1);
    SnapshotRecord rec = save(origin);

    PhysMem wrong_size(0, 2 * kMiB);
    SnapshotReader r1(rec);
    EXPECT_THROW(wrong_size.restoreState(r1), FatalError);

    PhysMem wrong_base(kPageSize, kMiB);
    SnapshotReader r2(rec);
    EXPECT_THROW(wrong_base.restoreState(r2), FatalError);
}

TEST(PhysMemCow, RepeatedSnapshotsArePossible)
{
    // A machine that was already a COW client can be snapshotted again
    // (fleet golden-image refresh); each save publishes a fresh flat image.
    PhysMem mem(0, kMiB);
    mem.write(0, 0xA1u, 1);
    SnapshotRecord rec1 = save(mem);
    mem.write(kPageSize, 0xB2u, 1);
    SnapshotRecord rec2 = save(mem);

    PhysMem from1(0, kMiB);
    restore(from1, rec1);
    PhysMem from2(0, kMiB);
    restore(from2, rec2);

    EXPECT_EQ(from1.read(0, 1), 0xA1u);
    EXPECT_EQ(from1.read(kPageSize, 1), 0u);
    EXPECT_EQ(from2.read(0, 1), 0xA1u);
    EXPECT_EQ(from2.read(kPageSize, 1), 0xB2u);
}

} // namespace
} // namespace kvmarm
