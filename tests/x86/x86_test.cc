/**
 * @file
 * x86 machine model tests: VMX transitions with hardware state swap, EPT
 * routing, APIC behavior (IPIs, EOI, timer), rdtsc/TSC offsetting, and
 * the exit taxonomy the comparison depends on.
 */

#include <gtest/gtest.h>

#include "x86/machine.hh"

namespace kvmarm::x86 {
namespace {

/** Minimal EPT: identity over the first N bytes. */
class IdentityEpt : public EptView
{
  public:
    explicit IdentityEpt(Addr limit) : limit_(limit) {}
    bool
    translate(Addr gpa, Addr &hpa) override
    {
        if (gpa >= limit_)
            return false;
        hpa = gpa;
        return true;
    }

  private:
    Addr limit_;
};

/** Records exits and re-enters (or stops). */
class RecordingVmx : public VmxHandler
{
  public:
    void
    vmexit(X86Cpu &cpu, const ExitInfo &info) override
    {
        exits.push_back(info);
        if (info.reason == ExitReason::Vmcall && info.vmcallNr == 0xDEAD)
            cpu.setStopVmx(true);
        if (info.reason == ExitReason::EptViolation ||
            info.reason == ExitReason::ApicAccess ||
            info.reason == ExitReason::IoInstruction) {
            cpu.completeMmio(0x99);
        }
    }
    const char *name() const override { return "recording-vmx"; }

    std::vector<ExitInfo> exits;
};

class X86Test : public ::testing::Test
{
  protected:
    X86Test()
    {
        X86Machine::Config mc;
        mc.numCpus = 2;
        mc.ramSize = 64 * kMiB;
        machine = std::make_unique<X86Machine>(mc);
        machine->cpu(0).setVmxHandler(&vmx);
    }

    void
    run(const std::function<void()> &body)
    {
        machine->cpu(0).setEntry(body);
        machine->run();
    }

    X86Cpu &cpu() { return machine->cpu(0); }

    std::unique_ptr<X86Machine> machine;
    RecordingVmx vmx;
    IdentityEpt ept{32 * kMiB};
};

TEST_F(X86Test, VmcsSwapsFullStateInHardware)
{
    run([&] {
        cpu().regs()[Gpr::RAX] = 0x1111; // host value
        cpu().regs()[Sysreg::CR3] = 0x2222;
        cpu().vmcs().guestRegs[Gpr::RAX] = 0x3333;
        cpu().vmcs().guestRegs[Sysreg::CR3] = 0x4444;
        cpu().vmcs().ept = &ept;

        Cycles t0 = cpu().now();
        cpu().vmentry();
        // Guest state loaded wholesale at fixed hardware cost.
        EXPECT_EQ(cpu().regs()[Gpr::RAX], 0x3333u);
        EXPECT_EQ(cpu().regs()[Sysreg::CR3], 0x4444u);
        EXPECT_TRUE(cpu().nonRoot());
        EXPECT_EQ(cpu().now() - t0, machine->cost().vmentryHw);

        cpu().regs()[Gpr::RAX] = 0x5555; // guest modifies
        cpu().vmcall(0xDEAD);            // exit and stop
        EXPECT_FALSE(cpu().nonRoot());
        EXPECT_EQ(cpu().regs()[Gpr::RAX], 0x1111u); // host restored
        EXPECT_EQ(cpu().vmcs().guestRegs[Gpr::RAX], 0x5555u);
    });
}

TEST_F(X86Test, EptViolationExitsWithGpa)
{
    run([&] {
        cpu().vmcs().ept = &ept;
        cpu().vmentry();
        cpu().memWrite(10 * kMiB, 7, 8); // mapped: no exit
        EXPECT_TRUE(vmx.exits.empty());
        (void)cpu().memRead(40 * kMiB + 0x24, 4); // beyond the EPT
        ASSERT_EQ(vmx.exits.size(), 1u);
        EXPECT_EQ(vmx.exits[0].reason, ExitReason::EptViolation);
        EXPECT_EQ(vmx.exits[0].gpa, 40 * kMiB + 0x24);
        cpu().vmcall(0xDEAD);
    });
}

TEST_F(X86Test, ApicAccessAlwaysExitsInGuest)
{
    run([&] {
        cpu().vmcs().ept = &ept;
        cpu().vmentry();
        cpu().memWrite(kApicBase + apic::EOI, 0, 4);
        ASSERT_EQ(vmx.exits.size(), 1u);
        EXPECT_EQ(vmx.exits[0].reason, ExitReason::ApicAccess);
        EXPECT_EQ(vmx.exits[0].apicOffset, apic::EOI);
        EXPECT_TRUE(vmx.exits[0].isWrite);
        cpu().vmcall(0xDEAD);
        // Natively the same access goes straight to the device.
        machine->apic().bank(0).inService.push_back(0x40);
        cpu().memWrite(kApicBase + apic::EOI, 0, 4);
        EXPECT_TRUE(machine->apic().bank(0).inService.empty());
    });
}

TEST_F(X86Test, RdtscNeverExitsAndHonorsOffset)
{
    run([&] {
        cpu().vmcs().ept = &ept;
        cpu().vmcs().tscOffset = 5000;
        cpu().compute(10000);
        std::uint64_t host_tsc = cpu().rdtsc();
        cpu().vmentry();
        std::uint64_t guest_tsc = cpu().rdtsc();
        EXPECT_TRUE(vmx.exits.empty()); // no trap (paper §2)
        EXPECT_LT(guest_tsc, host_tsc + 1000);
        EXPECT_GE(host_tsc, guest_tsc); // offset subtracted
        cpu().vmcall(0xDEAD);
    });
}

TEST_F(X86Test, PortIoExitsWithFullDecodeInfo)
{
    run([&] {
        cpu().vmcs().ept = &ept;
        cpu().vmentry();
        cpu().portIo(0x3F8, true, 'x');
        ASSERT_EQ(vmx.exits.size(), 1u);
        EXPECT_EQ(vmx.exits[0].reason, ExitReason::IoInstruction);
        EXPECT_EQ(vmx.exits[0].port, 0x3F8);
        EXPECT_EQ(vmx.exits[0].value, 'x');
        cpu().vmcall(0xDEAD);
    });
}

TEST_F(X86Test, ApicIpiDeliversAcrossCpus)
{
    bool handled = false;
    class Os : public X86OsVectors
    {
      public:
        explicit Os(bool &flag) : flag_(flag) {}
        void
        interrupt(X86Cpu &cpu, std::uint8_t vec) override
        {
            if (vec == 0xD0)
                flag_ = true;
            cpu.memWrite(kApicBase + apic::EOI, 0, 4);
        }
        void syscall(X86Cpu &, std::uint32_t) override {}
        const char *name() const override { return "os"; }

      private:
        bool &flag_;
    } os(handled);

    machine->cpu(0).setEntry([&] {
        machine->cpu(0).memWrite(kApicBase + apic::ICR_HI,
                                 std::uint64_t(1) << 56, 4);
        machine->cpu(0).memWrite(kApicBase + apic::ICR_LO, 0xD0, 4);
        while (!handled)
            machine->cpu(0).compute(100);
    });
    machine->cpu(1).setEntry([&] {
        machine->cpu(1).setOsVectors(&os);
        machine->cpu(1).setIf(true);
        while (!handled)
            machine->cpu(1).compute(100);
    });
    machine->run();
    EXPECT_TRUE(handled);
}

TEST_F(X86Test, ApicTimerFiresVector)
{
    int fired = 0;
    class Os : public X86OsVectors
    {
      public:
        explicit Os(int &n) : n_(n) {}
        void
        interrupt(X86Cpu &cpu, std::uint8_t vec) override
        {
            if (vec == 0xEF)
                ++n_;
            cpu.memWrite(kApicBase + apic::EOI, 0, 4);
        }
        void syscall(X86Cpu &, std::uint32_t) override {}
        const char *name() const override { return "os"; }

      private:
        int &n_;
    } os(fired);

    machine->cpu(0).setEntry([&] {
        X86Cpu &c = machine->cpu(0);
        c.setOsVectors(&os);
        c.setIf(true);
        c.memWrite(kApicBase + apic::LVT_TIMER, 0xEF, 4);
        c.memWrite(kApicBase + apic::TIMER_INIT, 5000, 4);
        c.compute(10000);
        EXPECT_EQ(fired, 1);
        // TSC-deadline flavour too.
        c.wrmsrTscDeadline(c.rdtsc() + 4000);
        c.compute(10000);
        EXPECT_EQ(fired, 2);
    });
    machine->run();
}

TEST_F(X86Test, HltWaitsForInterrupt)
{
    run([&] {
        class Os : public X86OsVectors
        {
          public:
            void
            interrupt(X86Cpu &cpu, std::uint8_t) override
            {
                cpu.memWrite(kApicBase + apic::EOI, 0, 4);
            }
            void syscall(X86Cpu &, std::uint32_t) override {}
            const char *name() const override { return "os"; }
        } os;
        cpu().setOsVectors(&os);
        cpu().setIf(true);
        machine->apic().postVector(0, 0x55, cpu().now() + 20000);
        Cycles t0 = cpu().now();
        cpu().hlt();
        EXPECT_GE(cpu().now() - t0, 19000u);
    });
}

} // namespace
} // namespace kvmarm::x86
