/**
 * @file
 * Integration tests across all modules: an SMP guest with devices, timers
 * and IPIs running end to end; two VMs timesharing... a machine; VCPU
 * migration between machines; and the no-VGIC configuration running the
 * same full stack.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "vdev/qemu.hh"
#include "workload/arm_port.hh"
#include "workload/linux_model.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

TEST(Integration, SmpGuestWithDevicesTimersAndIpis)
{
    ArmMachine::Config mc;
    mc.numCpus = 2;
    mc.ramSize = 768 * kMiB;
    ArmMachine machine(mc);
    host::HostKernel hostk(machine);
    core::Kvm kvm(hostk);

    std::unique_ptr<core::Vm> vm;
    std::unique_ptr<vdev::QemuArm> qemu;
    wl::ArmOsImage image;
    image.ramSize = 128 * kMiB;
    wl::ArmLinuxPort port0(machine.cpu(0), image, 0);
    wl::ArmLinuxPort port1(machine.cpu(1), image, 1);
    bool ready = false, done = false;

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        ASSERT_TRUE(kvm.initCpu(cpu));
        vm = kvm.createVm(256 * kMiB);
        core::VCpu &vcpu0 = vm->addVcpu(0);
        vm->addVcpu(1);
        qemu = std::make_unique<vdev::QemuArm>(kvm, *vm);
        qemu->addDevice(0, vdev::usbEthProfile());
        qemu->addDevice(1, vdev::ssdProfile());
        vcpu0.setGuestOs(&port0);
        ready = true;

        vcpu0.run(cpu, [&](ArmCpu &c) {
            port0.boot();
            // Demand paging with real guest page tables.
            for (int i = 0; i < 20; ++i)
                port0.demandFault();
            // A timer tick.
            int ticks_before = static_cast<int>(port0.timerIrqsReceived());
            port0.timerProgram(30000);
            port0.idle();
            EXPECT_GT(static_cast<int>(port0.timerIrqsReceived()),
                      ticks_before);
            // Device I/O through QEMU and back via KVM_IRQ_LINE.
            port0.devKick(0, 1500);
            while (port0.devCompletions(0) < 1)
                port0.idle();
            port0.devKick(1, 4096);
            while (port0.devCompletions(1) < 1)
                port0.idle();
            // Cross-VCPU IPI.
            std::uint64_t peer_ipis = port1.ipisReceived();
            port0.sendRescheduleIpi(1);
            while (port1.ipisReceived() == peer_ipis)
                c.compute(300);
            done = true;
        });
    });
    machine.cpu(1).setEntry([&] {
        ArmCpu &cpu = machine.cpu(1);
        hostk.boot(1);
        kvm.initCpu(cpu);
        while (!ready || vm->vcpus().size() < 2)
            cpu.compute(400);
        core::VCpu &vcpu1 = *vm->vcpus()[1];
        vcpu1.setGuestOs(&port1);
        vcpu1.run(cpu, [&](ArmCpu &c) {
            port1.boot();
            while (!done)
                c.compute(250);
        });
    });
    machine.run();

    EXPECT_TRUE(done);
    EXPECT_GE(vm->vcpus()[0]->stats.counterValue("fault.stage2"), 15u);
    EXPECT_GE(vm->vcpus()[0]->stats.counterValue("mmio.user"), 2u);
}

TEST(Integration, SameGuestCodeRunsNativeAndVirtualized)
{
    // The miniature Linux runs unmodified in both environments — the
    // "runs unmodified guest operating systems" property.
    auto run_native = [] {
        ArmMachine machine(ArmMachine::Config{
            .numCpus = 1, .ramSize = 512 * kMiB, .hwVgic = true,
            .hwVtimers = true, .clockHz = 1.7e9, .cost = {}});
        wl::ArmOsImage image;
        image.ramSize = 128 * kMiB;
        wl::ArmLinuxPort port(machine.cpu(0), image, 0);
        std::uint64_t checks = 0;
        machine.cpu(0).setEntry([&] {
            port.boot();
            wl::LmbenchOps ops(port);
            ops.run(wl::LmWorkload::PageFault, 30);
            ops.run(wl::LmWorkload::ProtFault, 10);
            checks = port.timerIrqsReceived() + 1;
        });
        machine.run();
        return checks;
    };
    auto run_virt = [] {
        ArmMachine machine(ArmMachine::Config{
            .numCpus = 1, .ramSize = 768 * kMiB, .hwVgic = true,
            .hwVtimers = true, .clockHz = 1.7e9, .cost = {}});
        host::HostKernel hostk(machine);
        core::Kvm kvm(hostk);
        wl::ArmOsImage image;
        image.ramSize = 128 * kMiB;
        wl::ArmLinuxPort port(machine.cpu(0), image, 0);
        std::uint64_t checks = 0;
        machine.cpu(0).setEntry([&] {
            hostk.boot(0);
            kvm.initCpu(machine.cpu(0));
            auto vm = kvm.createVm(256 * kMiB);
            core::VCpu &vcpu = vm->addVcpu(0);
            vcpu.setGuestOs(&port);
            vcpu.run(machine.cpu(0), [&](ArmCpu &) {
                port.boot();
                wl::LmbenchOps ops(port);
                ops.run(wl::LmWorkload::PageFault, 30);
                ops.run(wl::LmWorkload::ProtFault, 10);
                checks = port.timerIrqsReceived() + 1;
            });
        });
        machine.run();
        return checks;
    };
    EXPECT_EQ(run_native(), run_virt());
}

TEST(Integration, TwoVmsTimeshareOneCpu)
{
    ArmMachine::Config mc;
    mc.numCpus = 1;
    mc.ramSize = 512 * kMiB;
    ArmMachine machine(mc);
    host::HostKernel hostk(machine);
    core::Kvm kvm(hostk);

    class MarkGuest : public arm::OsVectors
    {
      public:
        void irq(ArmCpu &) override {}
        void svc(ArmCpu &, std::uint32_t) override {}
        bool pageFault(ArmCpu &, Addr, bool, bool) override
        {
            return false;
        }
        const char *name() const override { return "mark-guest"; }
    } os;

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        ASSERT_TRUE(kvm.initCpu(cpu));
        auto vm_a = kvm.createVm(32 * kMiB);
        auto vm_b = kvm.createVm(32 * kMiB);
        core::VCpu &va = vm_a->addVcpu(0);
        core::VCpu &vb = vm_b->addVcpu(0);
        va.setGuestOs(&os);
        vb.setGuestOs(&os);

        // The host alternates the two VMs on the one physical core; each
        // writes and re-checks its own memory (distinct VMIDs, distinct
        // Stage-2 tables).
        for (int round = 0; round < 4; ++round) {
            va.run(cpu, [&](ArmCpu &c) {
                Addr a = ArmMachine::kRamBase + 0x1000;
                std::uint64_t prev = c.memRead(a, 8);
                EXPECT_EQ(prev, std::uint64_t(round) * 2);
                c.memWrite(a, prev + 2, 8);
            });
            vb.run(cpu, [&](ArmCpu &c) {
                Addr a = ArmMachine::kRamBase + 0x1000;
                std::uint64_t prev = c.memRead(a, 8);
                EXPECT_EQ(prev, std::uint64_t(round) * 3);
                c.memWrite(a, prev + 3, 8);
            });
        }
        EXPECT_NE(vm_a->stage2().vmid(), vm_b->stage2().vmid());
    });
    machine.run();
}

TEST(Integration, NoVgicStackRunsTheSameGuest)
{
    ArmMachine::Config mc;
    mc.numCpus = 1;
    mc.ramSize = 512 * kMiB;
    mc.hwVgic = false;
    mc.hwVtimers = false;
    ArmMachine machine(mc);
    host::HostKernel hostk(machine);
    core::KvmConfig kc;
    kc.useVgic = false;
    kc.useVtimers = false;
    core::Kvm kvm(hostk, kc);

    wl::ArmOsImage image;
    image.ramSize = 64 * kMiB;
    wl::ArmLinuxPort port(machine.cpu(0), image, 0);

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        ASSERT_TRUE(kvm.initCpu(cpu));
        auto vm = kvm.createVm(128 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&port);
        vcpu.run(cpu, [&](ArmCpu &) {
            port.boot();
            // Timer interrupt delivered through HCR.VI + user-space GIC.
            port.timerProgram(40000);
            port.idle();
            EXPECT_GE(port.timerIrqsReceived(), 1u);
        });
        // The ACK/EOI pair went to user space.
        EXPECT_GE(vcpu.stats.counterValue("mmio.user.gicc"), 2u);
        EXPECT_GE(vcpu.stats.counterValue("vtimer.trapped"), 2u);
    });
    machine.run();
}

} // namespace
} // namespace kvmarm
