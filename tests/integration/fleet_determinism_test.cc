/**
 * @file
 * Fleet determinism: a VM's simulated execution is bit-identical whether
 * it runs solo on the calling thread, in a 4-VM fleet on 1 worker thread,
 * or in the same fleet on 8 worker threads. Both the cycle clock and the
 * full stat-dump text must match — the fleet executor may change only
 * wall-clock time, never simulated behavior (ISSUE 4 acceptance; DESIGN.md
 * §4.7).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "sim/fleet.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

/** Everything observable a VM run produced. */
struct VmRun
{
    Cycles simCycles = 0;
    std::string statDump;
};

/**
 * One full-stack VM: private machine + host kernel + KVM + 1-VCPU guest
 * running a mixed workload whose proportions depend on @p index, so the
 * four fleet members genuinely differ from each other.
 */
VmRun
runOneVm(unsigned index)
{
    VmRun run;
    ArmMachine::Config mc;
    mc.numCpus = 1;
    mc.ramSize = 64 * kMiB;
    ArmMachine machine(mc);
    host::HostKernel hostk(machine);
    core::Kvm kvm(hostk, core::KvmConfig{});

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        ASSERT_TRUE(kvm.initCpu(cpu));
        std::unique_ptr<core::Vm> vm = kvm.createVm(32 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vm->addKernelDevice(core::Vm::kKernelTestDevBase, 0x1000,
                            [](bool, Addr, std::uint64_t, unsigned) {
                                return std::uint64_t{0};
                            });

        vcpu.run(cpu, [&](ArmCpu &c) {
            Cycles sim0 = c.now();
            // Mixed per-index workload: compute, world switches, MMIO,
            // and Stage-2 faults in index-dependent proportions.
            const Addr page = vm->ramBase() + 0x10000;
            for (std::uint64_t i = 0; i < 2000 + 500 * index; ++i)
                c.memRead(page + ((i & 63) * 8), 4);
            for (std::uint64_t i = 0; i < 100 + 25 * index; ++i)
                c.hvc(core::hvc::kTestHypercall);
            for (std::uint64_t i = 0; i < 50 + 10 * index; ++i)
                c.memWrite(core::Vm::kKernelTestDevBase,
                           static_cast<std::uint32_t>(i), 4);
            const Addr fresh = vm->ramBase() + 0x800000;
            for (std::uint64_t i = 0; i < 32 + 8 * index; ++i)
                c.memRead(fresh + Addr(i) * kPageSize, 4);
            run.simCycles = c.now() - sim0;
        });
    });
    machine.run();

    std::ostringstream os;
    machine.cpu(0).stats().dump(os, "cpu0.");
    run.statDump = os.str();
    return run;
}

/** Run the whole 4-VM fleet at @p threads worker threads. */
std::vector<VmRun>
runFleet(unsigned threads)
{
    constexpr unsigned kVms = 4;
    std::vector<VmRun> runs(kVms);
    Fleet fleet(threads);
    for (unsigned i = 0; i < kVms; ++i) {
        fleet.add("vm" + std::to_string(i),
                  [i, &runs] { runs[i] = runOneVm(i); });
    }
    for (const Fleet::JobResult &r : fleet.run())
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    return runs;
}

TEST(FleetDeterminism, SoloAndFleetRunsAreBitIdentical)
{
    // Reference: each VM config run solo, no fleet involved.
    std::vector<VmRun> solo;
    for (unsigned i = 0; i < 4; ++i)
        solo.push_back(runOneVm(i));

    // The workloads really are distinct per VM.
    for (unsigned i = 1; i < 4; ++i)
        ASSERT_NE(solo[i].simCycles, solo[0].simCycles);

    std::vector<VmRun> fleet1 = runFleet(1);
    std::vector<VmRun> fleet8 = runFleet(8);

    for (unsigned i = 0; i < 4; ++i) {
        SCOPED_TRACE("vm" + std::to_string(i));
        EXPECT_GT(solo[i].simCycles, 0u);
        EXPECT_EQ(fleet1[i].simCycles, solo[i].simCycles);
        EXPECT_EQ(fleet8[i].simCycles, solo[i].simCycles);
        EXPECT_FALSE(solo[i].statDump.empty());
        EXPECT_EQ(fleet1[i].statDump, solo[i].statDump);
        EXPECT_EQ(fleet8[i].statDump, solo[i].statDump);
    }
}

TEST(FleetDeterminism, RepeatedFleetRunsAreBitIdentical)
{
    // Same thread count twice: wall time may differ, simulation may not.
    std::vector<VmRun> a = runFleet(8);
    std::vector<VmRun> b = runFleet(8);
    for (unsigned i = 0; i < 4; ++i) {
        SCOPED_TRACE("vm" + std::to_string(i));
        EXPECT_EQ(a[i].simCycles, b[i].simCycles);
        EXPECT_EQ(a[i].statDump, b[i].statDump);
    }
}

} // namespace
} // namespace kvmarm
