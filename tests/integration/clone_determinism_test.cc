/**
 * @file
 * Snapshot/clone determinism: a clone restored from a quiesced machine
 * snapshot must replay its workload with per-VM sim_cycles and stat dumps
 * bit-identical to (a) the origin machine continuing past the snapshot and
 * (b) an independent cold-booted machine running the same phases — across
 * invariant check modes, with COW isolation between sibling clones, with
 * pending events in flight at the snapshot point, and through clone-of-
 * clone chains (ISSUE 8 acceptance; DESIGN.md §4.9).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arm/machine.hh"
#include "check/invariants.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "sim/fleet.hh"
#include "sim/logging.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

constexpr Addr kGuestRam = 32 * kMiB;

/** Everything observable a VM workload leg produced. */
struct VmRun
{
    Cycles simCycles = 0;
    std::string statDump;
};

/**
 * One full-stack cloneable VM: machine + host kernel + KVM + 1-VCPU guest.
 * Two-phase lifecycle: a boot/warmup leg that quiesces (so a snapshot can
 * be taken), then a workload leg. A clone skips the boot leg entirely —
 * it rebuilds the VM skeleton and adopts all state from a snapshot.
 */
class CloneableVm
{
  public:
    CloneableVm()
        : machine_(makeConfig()), hostk_(machine_), kvm_(hostk_)
    {
    }

    ArmMachine &machine() { return machine_; }
    core::Vm &vm() { return *vm_; }

    /** Boot/warmup leg: boot host + KVM, create the VM, fault in guest
     *  pages and exercise hypercalls/MMIO, then quiesce. */
    void coldBoot()
    {
        machine_.cpu(0).setEntry([this] {
            ArmCpu &cpu = machine_.cpu(0);
            hostk_.boot(0);
            ASSERT_TRUE(kvm_.initCpu(cpu));
            buildVmSkeleton();
            vcpu_->run(cpu, [this](ArmCpu &c) { warmup(c); });
        });
        machine_.run();
    }

    /** Clone path: rebuild the VM skeleton (same calls, same order as the
     *  origin's boot leg) and adopt the snapshot. Never boots. */
    void cloneFrom(const MachineSnapshot &snap)
    {
        kvm_.primeForRestore();
        buildVmSkeleton();
        machine_.restoreSnapshot(snap);
    }

    /** Workload leg, from a quiesced machine (booted or cloned). */
    VmRun runWorkload(unsigned index)
    {
        VmRun run;
        machine_.cpu(0).setEntry([this, &run, index] {
            ArmCpu &cpu = machine_.cpu(0);
            vcpu_->run(cpu, [this, &run, index](ArmCpu &c) {
                Cycles sim0 = c.now();
                workload(c, index);
                run.simCycles = c.now() - sim0;
            });
        });
        machine_.run();

        std::ostringstream os;
        machine_.cpu(0).stats().dump(os, "cpu0.");
        vcpu_->stats.dump(os, "vcpu.");
        run.statDump = os.str();
        return run;
    }

    /** Run a tiny guest body (for targeted read/write probes). */
    void runGuest(const std::function<void(ArmCpu &)> &body)
    {
        machine_.cpu(0).setEntry([this, &body] {
            vcpu_->run(machine_.cpu(0), body);
        });
        machine_.run();
    }

  private:
    static ArmMachine::Config makeConfig()
    {
        ArmMachine::Config mc;
        mc.numCpus = 1;
        mc.ramSize = 64 * kMiB;
        return mc;
    }

    void buildVmSkeleton()
    {
        vm_ = kvm_.createVm(kGuestRam);
        vcpu_ = &vm_->addVcpu(0);
        vm_->addKernelDevice(core::Vm::kKernelTestDevBase, 0x1000,
                             [](bool, Addr, std::uint64_t, unsigned) {
                                 return std::uint64_t{0};
                             });
    }

    /** Fault in a spread of guest pages and touch the trap paths, so the
     *  snapshot carries a populated Stage-2 and warm caches. */
    void warmup(ArmCpu &c)
    {
        const Addr base = vm_->ramBase();
        for (unsigned i = 0; i < 192; ++i)
            c.memWrite(base + Addr(i) * kPageSize, 0xA0000000u + i, 4);
        for (unsigned i = 0; i < 40; ++i)
            c.hvc(core::hvc::kTestHypercall);
        for (unsigned i = 0; i < 10; ++i)
            c.memWrite(core::Vm::kKernelTestDevBase, i, 4);
    }

    /** Index-varied mixed workload (as in the fleet determinism test). */
    void workload(ArmCpu &c, unsigned index)
    {
        const Addr base = vm_->ramBase();
        for (std::uint64_t i = 0; i < 1000 + 250 * index; ++i)
            c.memRead(base + ((i & 63) * 8), 4);
        for (std::uint64_t i = 0; i < 60 + 15 * index; ++i)
            c.hvc(core::hvc::kTestHypercall);
        for (std::uint64_t i = 0; i < 30 + 6 * index; ++i)
            c.memWrite(core::Vm::kKernelTestDevBase,
                       static_cast<std::uint32_t>(i), 4);
        // Fresh pages: Stage-2 faults after the snapshot point, which in a
        // clone also COW-fault the shared RAM image.
        const Addr fresh = base + 0x1000000;
        for (std::uint64_t i = 0; i < 24 + 4 * index; ++i)
            c.memWrite(fresh + Addr(i) * kPageSize, 0xB000 + i, 4);
    }

    ArmMachine machine_;
    host::HostKernel hostk_;
    core::Kvm kvm_;
    std::unique_ptr<core::Vm> vm_;
    core::VCpu *vcpu_ = nullptr;
};

/** Snapshot an origin and return (snapshot, origin) ready for workloads. */
std::shared_ptr<const MachineSnapshot>
bootAndSnapshot(CloneableVm &origin)
{
    origin.coldBoot();
    return origin.machine().takeSnapshot();
}

TEST(FleetCloneDeterminism, CloneMatchesColdBootAndContinuingOrigin)
{
    CloneableVm origin;
    auto snap = bootAndSnapshot(origin);

    // Reference 1: an independent machine cold-booting through the same
    // phases. Reference 2: the origin itself continuing past the snapshot.
    CloneableVm cold;
    cold.coldBoot();

    CloneableVm clone;
    clone.cloneFrom(*snap);

    VmRun cold_run = cold.runWorkload(2);
    VmRun origin_run = origin.runWorkload(2);
    VmRun clone_run = clone.runWorkload(2);

    EXPECT_GT(cold_run.simCycles, 0u);
    EXPECT_EQ(origin_run.simCycles, cold_run.simCycles)
        << "taking a snapshot perturbed the origin's simulation";
    EXPECT_EQ(clone_run.simCycles, cold_run.simCycles)
        << "clone's workload diverged from cold boot";
    EXPECT_FALSE(cold_run.statDump.empty());
    EXPECT_EQ(origin_run.statDump, cold_run.statDump);
    EXPECT_EQ(clone_run.statDump, cold_run.statDump);

    // The clone really did share RAM: it faulted private copies only for
    // the pages its workload wrote.
    EXPECT_GT(clone.machine().ram().cowFaults(), 0u);
    EXPECT_GT(clone.machine().ram().sharedPages(), 0u);
}

TEST(FleetCloneDeterminism, BitIdenticalAcrossCheckModes)
{
    // The full boot -> snapshot -> clone -> workload cycle runs inside
    // each mode scope (machine engines inherit the facade mode at
    // construction); simulated results must not depend on the mode.
    const check::CheckMode modes[] = {check::CheckMode::Off,
                                      check::CheckMode::Log,
                                      check::CheckMode::Enforce};
    std::vector<VmRun> clone_runs;
    std::vector<VmRun> cold_runs;
    for (check::CheckMode mode : modes) {
        check::ScopedCheckMode scope(mode);
        CloneableVm origin;
        auto snap = bootAndSnapshot(origin);
        CloneableVm clone;
        clone.cloneFrom(*snap);
        clone_runs.push_back(clone.runWorkload(1));
        cold_runs.push_back(origin.runWorkload(1));
    }
    for (std::size_t m = 0; m < clone_runs.size(); ++m) {
        SCOPED_TRACE("mode " + std::to_string(m));
        EXPECT_EQ(clone_runs[m].simCycles, cold_runs[m].simCycles);
        EXPECT_EQ(clone_runs[m].statDump, cold_runs[m].statDump);
        EXPECT_EQ(clone_runs[m].simCycles, clone_runs[0].simCycles);
        EXPECT_EQ(clone_runs[m].statDump, clone_runs[0].statDump);
    }
}

TEST(FleetCloneIsolation, SiblingClonesDoNotSeeEachOthersWrites)
{
    CloneableVm origin;
    auto snap = bootAndSnapshot(origin);

    // The warmup wrote 0xA0000000 to the first guest page; both clones
    // inherit that page via the shared image.
    CloneableVm clone_a;
    clone_a.cloneFrom(*snap);
    CloneableVm clone_b;
    clone_b.cloneFrom(*snap);

    std::uint64_t a_before = 0, a_after = 0, b_sees = 0, origin_sees = 0;

    clone_a.runGuest([&](ArmCpu &c) {
        Addr pa = clone_a.vm().ramBase();
        a_before = c.memRead(pa, 4);
        c.memWrite(pa, 0xDEAD0001u, 4);
        a_after = c.memRead(pa, 4);
    });
    clone_b.runGuest([&](ArmCpu &c) {
        b_sees = c.memRead(clone_b.vm().ramBase(), 4);
    });
    origin.runGuest([&](ArmCpu &c) {
        origin_sees = c.memRead(origin.vm().ramBase(), 4);
    });

    EXPECT_EQ(a_before, 0xA0000000u);
    EXPECT_EQ(a_after, 0xDEAD0001u);
    EXPECT_EQ(b_sees, 0xA0000000u) << "clone B saw clone A's write";
    EXPECT_EQ(origin_sees, 0xA0000000u) << "origin saw clone A's write";
    EXPECT_GE(clone_a.machine().ram().cowFaults(), 1u);
}

TEST(FleetCloneEdge, PendingTimerEventSurvivesSnapshot)
{
    // Machine + host kernel only: arm the per-CPU virtual timer so a
    // compare-fire event is pending in the queue at the snapshot point,
    // then check the clone delivers it at the same simulated cycle.
    auto run_leg2 = [](ArmMachine &m) {
        m.cpu(0).setEntry([&m] { m.cpu(0).compute(200000); });
        m.run();
        std::ostringstream os;
        m.cpu(0).stats().dump(os, "cpu0.");
        return os.str();
    };

    ArmMachine::Config mc;
    mc.numCpus = 1;
    mc.ramSize = 16 * kMiB;

    ArmMachine origin(mc);
    host::HostKernel origin_host(origin);
    origin.cpu(0).setEntry([&] {
        origin_host.boot(0);
        arm::TimerRegs t;
        t.enable = true;
        t.cval = origin.cpu(0).now() + 100000; // fires during leg 2
        origin.timer().setVirt(0, t);
    });
    origin.run();
    ASSERT_GT(origin.cpu(0).events().size(), 0u)
        << "timer event should be pending at the snapshot point";
    auto snap = origin.takeSnapshot();

    ArmMachine clone(mc);
    host::HostKernel clone_host(clone);
    clone.restoreSnapshot(*snap);

    std::string origin_dump = run_leg2(origin);
    std::string clone_dump = run_leg2(clone);
    EXPECT_EQ(origin.cpu(0).now(), clone.cpu(0).now());
    EXPECT_EQ(origin_dump, clone_dump);
    // The PPI really fired (host has no handler for it -> counted).
    EXPECT_NE(origin_dump.find("host.irq.unhandled"), std::string::npos);
}

TEST(FleetCloneEdge, CloneOfCloneMatchesFirstClone)
{
    CloneableVm origin;
    auto snap = bootAndSnapshot(origin);

    CloneableVm clone1;
    clone1.cloneFrom(*snap);
    // Re-snapshot the clone immediately: the grandchild restores through
    // a flattened image chain (clone1's private pages overlaid on the
    // origin image).
    auto snap2 = clone1.machine().takeSnapshot();

    CloneableVm clone2;
    clone2.cloneFrom(*snap2);

    VmRun run1 = clone1.runWorkload(3);
    VmRun run2 = clone2.runWorkload(3);
    VmRun run0 = origin.runWorkload(3);

    EXPECT_EQ(run1.simCycles, run0.simCycles);
    EXPECT_EQ(run2.simCycles, run0.simCycles);
    EXPECT_EQ(run1.statDump, run0.statDump);
    EXPECT_EQ(run2.statDump, run0.statDump);
}

TEST(FleetCloneFleet, EightClonesFromOneSnapshotMatchSoloClones)
{
    CloneableVm origin;
    auto snap = bootAndSnapshot(origin);

    // Reference: one clone per workload index, run serially.
    std::vector<VmRun> solo(4);
    for (unsigned i = 0; i < 4; ++i) {
        CloneableVm c;
        c.cloneFrom(*snap);
        solo[i] = c.runWorkload(i);
    }

    // 8 clones (2 per index) spun up from the same shared snapshot on a
    // 4-thread fleet; every clone must match its solo reference.
    std::vector<VmRun> fleet_runs(8);
    Fleet fleet(4);
    for (unsigned i = 0; i < 8; ++i) {
        fleet.add("clone" + std::to_string(i), [i, &snap, &fleet_runs] {
            CloneableVm c;
            c.cloneFrom(*snap);
            fleet_runs[i] = c.runWorkload(i % 4);
        });
    }
    for (const Fleet::JobResult &r : fleet.run())
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;

    for (unsigned i = 0; i < 8; ++i) {
        SCOPED_TRACE("clone" + std::to_string(i));
        EXPECT_EQ(fleet_runs[i].simCycles, solo[i % 4].simCycles);
        EXPECT_EQ(fleet_runs[i].statDump, solo[i % 4].statDump);
    }
}

} // namespace
} // namespace kvmarm
