/**
 * @file
 * Device emulation tests: UART capture, the kick/complete device model
 * (latency math, used-counter DMA, interrupt coalescing), and the QEMU
 * iothread injection path into a VM.
 */

#include <gtest/gtest.h>

#include "arm/machine.hh"
#include "core/kvm.hh"
#include "host/kernel.hh"
#include "vdev/model_dev.hh"
#include "vdev/qemu.hh"

namespace kvmarm {
namespace {

using arm::ArmCpu;
using arm::ArmMachine;

TEST(Uart, CapturesOutput)
{
    vdev::Uart uart(100);
    uart.write(0, vdev::uart::DR, 'h', 4);
    uart.write(0, vdev::uart::DR, 'i', 4);
    EXPECT_EQ(uart.output(), "hi");
    EXPECT_EQ(uart.accessLatency(), 100u);
    uart.clear();
    EXPECT_TRUE(uart.output().empty());
}

TEST(ModelDevice, LatencyIsFixedPlusPerByte)
{
    vdev::DevProfile p{"dev", 1000, 10, 50};
    ArmMachine machine(ArmMachine::Config{
        .numCpus = 1, .ramSize = 32 * kMiB, .hwVgic = true,
        .hwVtimers = true, .clockHz = 1.7e9, .cost = {}});
    int irqs = 0;
    Cycles fired_at = 0;
    vdev::ModelDevice dev(p, machine.cpuBase(0), [&](Cycles when) {
        ++irqs;
        fired_at = when;
    });
    EXPECT_EQ(dev.opLatency(100), 2000u);

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        cpu.compute(500);
        dev.write(0, vdev::modeldev::KICK, 100, 4);
        cpu.compute(5000);
        EXPECT_EQ(irqs, 1);
        EXPECT_EQ(dev.completed(), 1u);
        EXPECT_EQ(dev.read(0, vdev::modeldev::STATUS, 4), 1u);
        EXPECT_GE(fired_at, 2500u);
    });
    machine.run();
}

TEST(ModelDevice, DmaWritesUsedCounter)
{
    vdev::DevProfile p{"dev", 100, 0, 50};
    ArmMachine machine(ArmMachine::Config{
        .numCpus = 1, .ramSize = 32 * kMiB, .hwVgic = true,
        .hwVtimers = true, .clockHz = 1.7e9, .cost = {}});
    Addr used = ArmMachine::kRamBase + vdev::kUsedPageOffset;
    vdev::ModelDevice dev(
        p, machine.cpuBase(0), [](Cycles) {},
        [&](std::uint64_t completed) {
            machine.ram().write(used, completed, 8);
        });
    machine.cpu(0).setEntry([&] {
        // Three kicks in a burst: even if interrupts coalesce, the used
        // counter carries the full count (virtio semantics).
        dev.write(0, vdev::modeldev::KICK, 0, 4);
        dev.write(0, vdev::modeldev::KICK, 0, 4);
        dev.write(0, vdev::modeldev::KICK, 0, 4);
        machine.cpu(0).compute(1000);
        EXPECT_EQ(machine.ram().read(used, 8), 3u);
    });
    machine.run();
}

TEST(QemuArm, EmulatesUartAndDevicesForVm)
{
    ArmMachine machine(ArmMachine::Config{
        .numCpus = 1, .ramSize = 256 * kMiB, .hwVgic = true,
        .hwVtimers = true, .clockHz = 1.7e9, .cost = {}});
    host::HostKernel hostk(machine);
    core::Kvm kvm(hostk);

    class DevGuest : public arm::OsVectors
    {
      public:
        void
        irq(ArmCpu &cpu) override
        {
            std::uint32_t iar = static_cast<std::uint32_t>(cpu.memRead(
                ArmMachine::kGiccBase + arm::gicc::IAR, 4));
            IrqId id = iar & 0x3FF;
            if (id >= vdev::kDevSpiBase && id < vdev::kDevSpiBase + 8) {
                completions = cpu.memRead(
                    ArmMachine::kRamBase + vdev::kUsedPageOffset +
                        (id - vdev::kDevSpiBase) * 8,
                    8);
            }
            if (id != arm::kSpuriousIrq)
                cpu.memWrite(ArmMachine::kGiccBase + arm::gicc::EOIR, iar);
        }
        void svc(ArmCpu &, std::uint32_t) override {}
        bool pageFault(ArmCpu &, Addr, bool, bool) override
        {
            return false;
        }
        const char *name() const override { return "dev-guest"; }
        std::uint64_t completions = 0;
    } guest;

    machine.cpu(0).setEntry([&] {
        ArmCpu &cpu = machine.cpu(0);
        hostk.boot(0);
        ASSERT_TRUE(kvm.initCpu(cpu));
        auto vm = kvm.createVm(64 * kMiB);
        core::VCpu &vcpu = vm->addVcpu(0);
        vcpu.setGuestOs(&guest);
        vdev::QemuArm qemu(kvm, *vm);
        qemu.addDevice(0, vdev::usbEthProfile());

        vcpu.run(cpu, [&](ArmCpu &c) {
            // Guest GIC bring-up.
            c.memWrite(ArmMachine::kGicdBase + arm::gicd::CTLR, 1);
            c.memWrite(ArmMachine::kGicdBase + arm::gicd::ISENABLER + 4,
                       0xFFu << (vdev::kDevSpiBase - 32));
            c.memWrite(ArmMachine::kGicdBase + arm::gicd::ITARGETSR +
                           vdev::kDevSpiBase,
                       1);
            c.memWrite(ArmMachine::kGiccBase + arm::gicc::PMR, 0xFF);
            c.memWrite(ArmMachine::kGiccBase + arm::gicc::CTLR, 1);
            c.setIrqMasked(false);

            // UART through user space.
            c.memWrite(ArmMachine::kUartBase + vdev::uart::DR, 'V', 4);

            // Kick the net device and wait for its completion interrupt.
            c.memWrite(ArmMachine::kVirtioBase + vdev::modeldev::KICK,
                       256);
            while (guest.completions < 1)
                c.compute(2000);
        });

        EXPECT_EQ(qemu.uart().output(), "V");
        EXPECT_EQ(qemu.completed(0), 1u);
        EXPECT_EQ(guest.completions, 1u);
        // The completion travelled host-iothread -> KVM_IRQ_LINE -> LR.
        EXPECT_GE(cpu.stats().counterValue("host.irq.unhandled"), 0u);
    });
    machine.run();
}

} // namespace
} // namespace kvmarm
